// Package activeiter is a from-scratch Go implementation of "Meta
// Diagram based Active Social Networks Alignment" (Ren, Aggarwal, Zhang —
// ICDE 2019): inferring the one-to-one anchor links connecting the shared
// users of two attributed heterogeneous social networks, using
// inter-network meta diagram features, PU learning with a cardinality
// constraint, and an active-learning query strategy.
//
// # Quick start
//
//	pair, _ := activeiter.GenerateDataset(activeiter.SmallDataset())
//	aligner, _ := activeiter.New(pair, activeiter.Options{Budget: 50})
//	train, test := pair.Anchors[:40], pair.Anchors[40:]
//	cands := append(test, negatives...)
//	res, _ := aligner.Align(train, cands, activeiter.NewTruthOracle(pair))
//	for _, a := range res.PredictedAnchors() { ... }
//
// The packages under internal/ hold the substrates: sparse and dense
// linear algebra, the heterogeneous network store, the meta diagram
// algebra and counting engine, cardinality-constrained matching, the SVM
// baseline, and the experiment harness that regenerates every table and
// figure of the paper (see cmd/experiments). Beyond the single-pair
// Aligner, PartitionedAligner shards large candidate spaces across
// in-process pipelines and DistributedAligner ships those shards to
// worker processes — multi-round active learning included
// (Options.Rounds). A trained alignment persists as a serving artifact
// (BuildSnapshot/WriteSnapshot/OpenSnapshot) that cmd/alignd answers
// match/candidate/score queries from online. docs/ARCHITECTURE.md
// walks the whole design; docs/WIRE.md specifies the worker wire
// protocol; docs/SNAPSHOT.md the artifact format.
package activeiter

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

// Re-exported data model types. Aliases keep the internal packages as the
// single source of truth while giving users a public name.
type (
	// Network is an attributed heterogeneous social network.
	Network = hetnet.Network
	// AlignedPair couples two networks with ground-truth anchor links.
	AlignedPair = hetnet.AlignedPair
	// Anchor is a (user-in-network-1, user-in-network-2) index pair.
	Anchor = hetnet.Anchor
	// NodeType and LinkType name the heterogeneous categories.
	NodeType = hetnet.NodeType
	LinkType = hetnet.LinkType
	// Oracle answers anchor-link label queries during active learning.
	Oracle = active.Oracle
)

// Standard schema vocabulary, re-exported from the data model.
const (
	User      = hetnet.User
	Post      = hetnet.Post
	Word      = hetnet.Word
	Location  = hetnet.Location
	Timestamp = hetnet.Timestamp

	Follow   = hetnet.Follow
	Write    = hetnet.Write
	At       = hetnet.At
	Checkin  = hetnet.Checkin
	Contains = hetnet.Contains
)

// NewSocialNetwork returns an empty network pre-declared with the
// Foursquare/Twitter-style schema of the paper's Figure 2.
func NewSocialNetwork(name string) *Network { return hetnet.NewSocialNetwork(name) }

// NewAlignedPair couples two networks with an empty anchor set.
func NewAlignedPair(g1, g2 *Network) *AlignedPair { return hetnet.NewAlignedPair(g1, g2) }

// NewTruthOracle builds an oracle answering from the pair's ground-truth
// anchors — the stand-in for a human labeler in experiments.
func NewTruthOracle(pair *AlignedPair) Oracle { return active.NewTruthOracle(pair) }

// FeatureSet selects which meta diagram features the aligner extracts.
type FeatureSet int

const (
	// FullFeatures uses all 31 meta paths and meta diagrams (the MPMD
	// feature space of the paper).
	FullFeatures FeatureSet = iota
	// PathFeatures uses only the 6 meta paths (the MP feature space).
	PathFeatures
	// ExtendedFeatures adds the word attribute (P7 and its diagram
	// families, 58 features) — the paper's data model carries words but
	// its evaluation does not use them; enable this when your posts have
	// textual content.
	ExtendedFeatures
)

// StrategyKind selects the active query strategy.
type StrategyKind string

const (
	// StrategyConflict is the paper's conflict-aware false-negative
	// strategy (the default).
	StrategyConflict StrategyKind = "conflict"
	// StrategyRandom queries uniformly (the ActiveIter-Rand baseline).
	StrategyRandom StrategyKind = "random"
	// StrategyUncertainty queries the scores nearest the threshold.
	StrategyUncertainty StrategyKind = "uncertainty"
)

// Options configures an Aligner. The zero value is a usable default:
// full features, no active learning.
type Options struct {
	// Features selects the feature space; default FullFeatures.
	Features FeatureSet
	// Budget is the number of oracle label queries allowed (the paper's
	// b). Zero disables active learning (the Iter-MPMD setting).
	Budget int
	// BatchSize is the per-round query batch (the paper's k, default 5).
	BatchSize int
	// Strategy picks the query strategy; default StrategyConflict.
	Strategy StrategyKind
	// C is the ridge fit weight (default 1).
	C float64
	// Threshold is the link-selection cutoff; nil means the paper's 0.5.
	// An explicit zero (Ptr(0)) is honored as a real boundary. The active
	// uncertainty strategy queries around this same cutoff.
	Threshold *float64
	// ExactSelection swaps the greedy ½-approximation for the Hungarian
	// optimum — slower, for ablations.
	ExactSelection bool
	// Seed drives every random choice; fixed seed ⇒ identical runs.
	Seed int64
	// Partitions splits the candidate space into this many overlapping
	// partitions when aligning through PartitionedAligner or
	// DistributedAligner; ≤ 1 means monolithic. Plain Aligner ignores it.
	Partitions int
	// Workers caps shard-execution concurrency: concurrent partition
	// pipelines in PartitionedAligner, concurrent worker connections in
	// DistributedAligner. 0 means min(partitions, GOMAXPROCS). Plain
	// Aligner ignores it.
	Workers int
	// Rounds (DistributedAligner only) lifts the active loop to the
	// coordinator: the query budget splits across this many
	// retrain-after-labels rounds over one sticky worker session — round
	// 1 ships each shard once, later rounds ship only the new oracle
	// labels to the workers already holding the shard warm. ≤ 1 means
	// the single-shot dispatch. The other aligners ignore it.
	Rounds int
	// ShardRetries (DistributedAligner only) is how many times a failed
	// shard is re-dispatched on a fresh connection — with capped
	// exponential backoff — before the shard degrades to the in-process
	// fallback. 0 means the default (2); negative disables retries.
	ShardRetries int
	// ShardTimeout (DistributedAligner only) bounds one shard attempt
	// end to end; a worker hung past it converts into a retryable
	// failure. 0 means the default (2 minutes); negative disables
	// per-shard deadlines.
	ShardTimeout time.Duration
	// HedgeAfter (DistributedAligner only), when positive, enables
	// straggler hedging: a shard in flight longer than
	// max(HedgeAfter, 2×P90 of completed shards) is raced on a second
	// connection and the first finish wins. Zero disables hedging.
	HedgeAfter time.Duration
	// NoFallback (DistributedAligner only) disables graceful
	// degradation: by default a shard that exhausts its transport
	// retries runs in-process over a private loopback worker instead of
	// aborting the run (see DistributedMetrics.Fallbacks).
	NoFallback bool
	// OracleConfig, when set, interposes a simulated labeler panel
	// between the training loop and the oracle passed to Align: every
	// query is replicated across OracleConfig.Replicas labelers drawn
	// from the configured pool (honest / noisy / adversarial /
	// colluding, all backed by the caller's oracle as ground truth) and
	// resolved by majority vote, with contradiction tracking and
	// per-labeler trust scores. Inspect the last run's ledger through
	// the aligner's Panel() accessor. Nil (the default) queries the
	// caller's oracle directly.
	OracleConfig *OracleConfig
}

// Ptr wraps a value for the pointer-typed option fields (e.g.
// Options{Threshold: activeiter.Ptr(0.7)}).
func Ptr[T any](v T) *T { return &v }

// validate rejects option values that would otherwise be silently
// misinterpreted downstream (a negative budget, for instance, skips
// core's oracle validation because only Budget > 0 is checked there).
func (o Options) validate() error {
	if _, err := o.strategy(); err != nil {
		return err
	}
	switch {
	case o.Budget < 0:
		return fmt.Errorf("activeiter: negative Budget %d (use 0 to disable active learning)", o.Budget)
	case o.BatchSize < 0:
		return fmt.Errorf("activeiter: negative BatchSize %d (use 0 for the paper's default of 5)", o.BatchSize)
	case o.C < 0 || math.IsNaN(o.C) || math.IsInf(o.C, 0):
		return fmt.Errorf("activeiter: invalid ridge weight C %v (use 0 for the default of 1)", o.C)
	case o.Partitions < 0:
		return fmt.Errorf("activeiter: negative Partitions %d (use 0 or 1 for monolithic alignment)", o.Partitions)
	case o.Workers < 0:
		return fmt.Errorf("activeiter: negative Workers %d (use 0 for the GOMAXPROCS default)", o.Workers)
	case o.Rounds < 0:
		return fmt.Errorf("activeiter: negative Rounds %d (use 0 or 1 for single-shot dispatch)", o.Rounds)
	case o.HedgeAfter < 0:
		return fmt.Errorf("activeiter: negative HedgeAfter %v (use 0 to disable hedging)", o.HedgeAfter)
	}
	if o.Threshold != nil && (math.IsNaN(*o.Threshold) || math.IsInf(*o.Threshold, 0)) {
		return fmt.Errorf("activeiter: non-finite Threshold %v", *o.Threshold)
	}
	if o.OracleConfig != nil {
		if err := o.OracleConfig.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (o Options) strategy() (active.Strategy, error) {
	switch o.Strategy {
	case "", StrategyConflict:
		return active.Conflict{}, nil
	case StrategyRandom:
		return active.Random{}, nil
	case StrategyUncertainty:
		return active.Uncertainty{}, nil
	default:
		return nil, fmt.Errorf("activeiter: unknown strategy %q", o.Strategy)
	}
}

// Aligner runs meta diagram feature extraction and the ActiveIter
// training loop over one aligned pair. Create it once per pair; Align
// may be called repeatedly with different training folds.
type Aligner struct {
	pair      *AlignedPair
	counter   *metadiag.Counter
	extractor *metadiag.Extractor
	opts      Options
	panel     *OraclePanel
}

// New builds an aligner over the pair.
func New(pair *AlignedPair, opts Options) (*Aligner, error) {
	if pair == nil {
		return nil, errors.New("activeiter: nil pair")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		return nil, err
	}
	return &Aligner{
		pair:      pair,
		counter:   counter,
		extractor: metadiag.NewExtractor(counter, opts.features(), true),
		opts:      opts,
	}, nil
}

// features resolves the configured feature list.
func (o Options) features() []schema.Named {
	switch o.Features {
	case PathFeatures:
		return schema.StandardLibrary().PathsOnly()
	case ExtendedFeatures:
		return schema.ExtendedLibrary().All()
	default:
		return schema.StandardLibrary().All()
	}
}

// FeatureNames returns the feature vector layout (diagram IDs plus the
// trailing bias).
func (a *Aligner) FeatureNames() []string { return a.extractor.Names() }

// FeatureVector returns the proximity feature vector of the candidate
// link (i, j) under the current training anchors.
func (a *Aligner) FeatureVector(i, j int) ([]float64, error) {
	out := make([]float64, a.extractor.Dim())
	if err := a.extractor.FeatureVector(i, j, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CandidatePairs proposes unlabeled candidate links by meta diagram
// evidence: every pair connected by at least one diagram instance is
// scored by total proximity and each user keeps its perUser best
// counterparts. Use this instead of sampling when aligning real
// networks without ground-truth negatives — the result feeds directly
// into Align as the candidate pool. trainPos are the known anchors (the
// paths may traverse them, and they are excluded from the proposals).
func (a *Aligner) CandidatePairs(trainPos []Anchor, perUser int) ([]Anchor, error) {
	a.counter.SetAnchors(trainPos)
	if err := a.extractor.Recompute(); err != nil {
		return nil, err
	}
	return a.counter.Candidates(a.opts.features(), perUser)
}

// Result is a completed alignment run.
type Result struct {
	inner *core.Result
	links []Anchor
}

// PredictedAnchors returns the links inferred (or queried) positive.
func (r *Result) PredictedAnchors() []Anchor {
	var out []Anchor
	for idx, l := range r.links {
		if r.inner.Y[idx] == 1 {
			out = append(out, l)
		}
	}
	return out
}

// Label returns the final label of candidate (i, j) and whether it was
// part of the pool.
func (r *Result) Label(i, j int) (float64, bool) { return r.inner.LabelOf(i, j) }

// WasQueried reports whether (i, j) was labeled by the oracle.
func (r *Result) WasQueried(i, j int) bool { return r.inner.WasQueried(i, j) }

// QueryCount returns the oracle queries spent.
func (r *Result) QueryCount() int { return r.inner.QueryCount() }

// ConvergenceTrace returns Δy per internal iteration of the first
// optimization round (the series in the paper's Figure 3).
func (r *Result) ConvergenceTrace() []float64 { return r.inner.FirstRoundDeltas() }

// Weights returns the learned feature weights (aligned with
// Aligner.FeatureNames).
func (r *Result) Weights() []float64 { return r.inner.W }

// Raw exposes the internal training result for advanced inspection.
func (r *Result) Raw() *core.Result { return r.inner }

// Predictor is an inductive scorer over feature vectors, detached from
// the training pool: use it to rank user pairs that did not exist at
// training time.
type Predictor = core.Predictor

// Predictor builds an inductive scorer from the trained weights.
// threshold ≤ 0 uses the paper's ½.
func (r *Result) Predictor(threshold float64) (*Predictor, error) {
	return core.NewPredictor(r.inner, threshold)
}

// Align trains on the labeled positive anchors trainPos and infers
// labels for every candidate link. Candidates must contain the unlabeled
// pool (test positives and sampled negatives); trainPos links are added
// to the pool automatically. The oracle may be nil when Budget is 0.
func (a *Aligner) Align(trainPos []Anchor, candidates []Anchor, oracle Oracle) (*Result, error) {
	return a.align(trainPos, candidates, oracle, nil)
}

// align is the shared core of Align and AlignPrelabeled.
func (a *Aligner) align(trainPos []Anchor, candidates []Anchor, oracle Oracle, pre []WeightedLabel) (*Result, error) {
	if len(trainPos) == 0 {
		return nil, core.ErrNoPositives
	}
	oracle, panel, err := a.opts.wrapOracle(oracle)
	if err != nil {
		return nil, err
	}
	a.panel = panel
	// The meta paths may only traverse *known* anchors: restrict the
	// counter to the training positives and recompute features.
	a.counter.SetAnchors(trainPos)
	if err := a.extractor.Recompute(); err != nil {
		return nil, err
	}
	links := make([]Anchor, 0, len(trainPos)+len(candidates))
	links = append(links, trainPos...)
	seen := make(map[int64]bool, len(links))
	for _, l := range trainPos {
		seen[hetnet.Key(l.I, l.J)] = true
	}
	for _, l := range candidates {
		if !seen[hetnet.Key(l.I, l.J)] {
			seen[hetnet.Key(l.I, l.J)] = true
			links = append(links, l)
		}
	}
	for _, wl := range pre {
		if !seen[hetnet.Key(wl.Link.I, wl.Link.J)] {
			seen[hetnet.Key(wl.Link.I, wl.Link.J)] = true
			links = append(links, wl.Link)
		}
	}
	x, err := a.extractor.FeatureMatrix(links)
	if err != nil {
		return nil, err
	}
	labeled := make([]int, len(trainPos))
	for i := range labeled {
		labeled[i] = i
	}
	strategy, err := a.opts.strategy()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		C:              a.opts.C,
		Threshold:      a.opts.Threshold,
		Budget:         a.opts.Budget,
		BatchSize:      a.opts.BatchSize,
		Strategy:       strategy,
		ExactSelection: a.opts.ExactSelection,
		Seed:           a.opts.Seed,
	}
	if a.opts.Budget == 0 {
		cfg.Strategy = nil
	}
	preIdx, preY := mapPrelabels(links, len(trainPos), pre)
	res, err := core.Train(core.Problem{
		Links:       links,
		X:           x,
		LabeledPos:  labeled,
		Prelabeled:  preIdx,
		PrelabeledY: preY,
		Oracle:      oracle,
	}, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{inner: res, links: links}, nil
}
