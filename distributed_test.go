package activeiter

import (
	"fmt"
	"io"
	"os"
	"testing"

	"github.com/activeiter/activeiter/internal/distrib"
)

// workerEnv re-executes this test binary as a wire worker so the
// subprocess-transport property test crosses a real process boundary
// without a prebuilt binary.
const workerEnv = "ACTIVEITER_FACADE_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		err := ServeWorker(struct {
			io.Reader
			io.Writer
		}{os.Stdin, os.Stdout})
		if err != nil && err != io.EOF {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// assertSameAsPartitioned compares a distributed result with the
// in-process partitioned reference over the full pool.
func assertSameAsPartitioned(t *testing.T, got, want *PartitionedResult, pool []Anchor) {
	t.Helper()
	ga, wa := got.PredictedAnchors(), want.PredictedAnchors()
	if len(ga) != len(wa) {
		t.Fatalf("distributed predicted %d anchors, partitioned %d", len(ga), len(wa))
	}
	for i := range wa {
		if ga[i] != wa[i] {
			t.Fatalf("anchor %d: distributed %v, partitioned %v", i, ga[i], wa[i])
		}
	}
	if got.QueryCount() != want.QueryCount() {
		t.Errorf("query counts: distributed %d, partitioned %d", got.QueryCount(), want.QueryCount())
	}
	if got.Rejected != want.Rejected {
		t.Errorf("rejected: distributed %d, partitioned %d", got.Rejected, want.Rejected)
	}
	for _, l := range pool {
		gl, gok := got.Label(l.I, l.J)
		wl, wok := want.Label(l.I, l.J)
		if gok != wok || gl != wl {
			t.Fatalf("label(%d,%d): distributed %v/%v, partitioned %v/%v", l.I, l.J, gl, gok, wl, wok)
		}
		if got.WasQueried(l.I, l.J) != want.WasQueried(l.I, l.J) {
			t.Fatalf("queried(%d,%d) diverges", l.I, l.J)
		}
	}
}

// TestDistributedMatchesPartitioned is the facade-level acceptance
// property: for the same Options (seed, K, budget), a K-shard
// distributed run — over the loopback transport and over genuine
// subprocess workers — produces the same globally one-to-one alignment
// as PartitionedAligner.
func TestDistributedMatchesPartitioned(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	candidates := append(append([]Anchor{}, testPos...), neg...)
	pool := append(append([]Anchor{}, trainPos...), candidates...)
	opts := Options{Budget: 10, Seed: 3, Partitions: 3, Workers: 2}
	oracle := NewTruthOracle(pair)

	ref, err := NewPartitioned(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Align(trainPos, candidates, oracle)
	if err != nil {
		t.Fatal(err)
	}

	transports := map[string]ShardTransport{
		"loopback": NewLoopbackTransport(),
	}
	if exe, err := os.Executable(); err == nil && !testing.Short() {
		// The worker command is this test binary re-executed in worker
		// mode (see TestMain) — a genuine subprocess speaking the wire
		// protocol over stdio, like `activeiter -worker` does.
		transports["subprocess"] = &distrib.Exec{
			Cmd:    exe,
			Env:    append(os.Environ(), workerEnv+"=1"),
			Stderr: os.Stderr,
		}
	}
	for name, tr := range transports {
		t.Run(name, func(t *testing.T) {
			da, err := NewDistributed(pair, opts, tr)
			if err != nil {
				t.Fatal(err)
			}
			got, err := da.Align(trainPos, candidates, oracle)
			if err != nil {
				t.Fatal(err)
			}
			assertSameAsPartitioned(t, got, want, pool)
			m := da.Metrics()
			if m == nil || m.JobBytes <= 0 {
				t.Errorf("metrics missing after Align: %+v", m)
			}
			// The shared evaluation path scores the distributed result
			// like any other.
			dm := EvaluateAlignment(got, testPos, neg)
			wm := EvaluateAlignment(want, testPos, neg)
			if dm != wm {
				t.Errorf("metrics diverge: distributed %+v, partitioned %+v", dm, wm)
			}
		})
	}
}

// TestNewDistributedValidation pins constructor error paths.
func TestNewDistributedValidation(t *testing.T) {
	pair, _, _, _ := testFixture(t)
	if _, err := NewDistributed(nil, Options{}, NewLoopbackTransport()); err == nil {
		t.Error("nil pair accepted")
	}
	if _, err := NewDistributed(pair, Options{}, nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewDistributed(pair, Options{Workers: -1}, NewLoopbackTransport()); err == nil {
		t.Error("negative Workers accepted")
	}
	if _, err := NewDistributed(pair, Options{Partitions: -2}, NewLoopbackTransport()); err == nil {
		t.Error("negative Partitions accepted")
	}
}

// TestDistributedRoundsSession: Options.Rounds > 1 drives the sticky
// session — the run completes, every shard past round 1 is served from
// the workers' warm caches, the delta bytes are a sliver of the full-job
// bytes, and all rounds' oracle answers are visible through WasQueried.
func TestDistributedRoundsSession(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	candidates := append(append([]Anchor{}, testPos...), neg...)
	opts := Options{Budget: 12, Seed: 3, Partitions: 3, Workers: 2, Rounds: 3}
	oracle := NewTruthOracle(pair)

	da, err := NewDistributed(pair, opts, NewLoopbackTransport())
	if err != nil {
		t.Fatal(err)
	}
	res, err := da.Align(trainPos, candidates, oracle)
	if err != nil {
		t.Fatal(err)
	}
	m := da.Metrics()
	if m == nil {
		t.Fatal("no metrics after session Align")
	}
	if m.CacheHits == 0 {
		t.Error("multi-round session produced no cache hits")
	}
	if m.DeltaBytes <= 0 {
		t.Error("multi-round session shipped no delta bytes")
	}
	// 3 shards ship cold once; rounds 2 and 3 should be all deltas.
	if wantHits := (opts.Rounds - 1) * opts.Partitions; m.CacheHits != wantHits {
		t.Errorf("cache hits = %d, want %d", m.CacheHits, wantHits)
	}
	if m.DeltaBytes >= m.JobBytes {
		t.Errorf("deltas (%d bytes) not smaller than cold jobs (%d bytes)", m.DeltaBytes, m.JobBytes)
	}
	if m.Queries > opts.Budget {
		t.Errorf("session spent %d queries over budget %d", m.Queries, opts.Budget)
	}
	// The result's Reports accumulate across rounds, so QueryCount keeps
	// the single-shot contract — total oracle spend — on retry-free runs.
	if m.Retries == 0 && res.QueryCount() != m.Queries {
		t.Errorf("result QueryCount %d != session oracle round-trips %d", res.QueryCount(), m.Queries)
	}
	// Every oracle answer across rounds is excluded from evaluation via
	// WasQueried on the final result. Distinct queried links can trail
	// the round-trip count — overlapping shards may both query a border
	// link within one round — but never exceed it.
	queried := 0
	for _, l := range append(append([]Anchor{}, trainPos...), candidates...) {
		if res.WasQueried(l.I, l.J) {
			queried++
		}
	}
	if queried == 0 || queried > m.Queries {
		t.Errorf("final result reports %d queried links, session answered %d round-trips", queried, m.Queries)
	}
	if len(res.PredictedAnchors()) == 0 {
		t.Error("session alignment predicted nothing")
	}
}

// TestOptionsRoundsValidation: negative Rounds is rejected up front.
func TestOptionsRoundsValidation(t *testing.T) {
	pair, _, _, _ := testFixture(t)
	if _, err := NewDistributed(pair, Options{Rounds: -1}, NewLoopbackTransport()); err == nil {
		t.Error("negative Rounds accepted")
	}
	if _, err := NewDistributed(pair, Options{HedgeAfter: -1}, NewLoopbackTransport()); err == nil {
		t.Error("negative HedgeAfter accepted")
	}
}

// unreachableTransport models a fully-down fabric at the facade level.
type unreachableTransport struct{}

func (unreachableTransport) Dial() (io.ReadWriteCloser, error) {
	return nil, fmt.Errorf("dial: network unreachable")
}

// TestDistributedFallbackKnobs: with the transport fully down, the
// default options degrade every shard to the in-process path and still
// produce the partitioned reference alignment — and NoFallback turns
// the same situation into a hard error.
func TestDistributedFallbackKnobs(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	candidates := append(append([]Anchor{}, testPos...), neg...)
	pool := append(append([]Anchor{}, trainPos...), candidates...)
	opts := Options{Budget: 10, Seed: 3, Partitions: 3, Workers: 2, ShardRetries: -1}
	oracle := NewTruthOracle(pair)

	ref, err := NewPartitioned(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Align(trainPos, candidates, oracle)
	if err != nil {
		t.Fatal(err)
	}

	da, err := NewDistributed(pair, opts, unreachableTransport{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := da.Align(trainPos, candidates, oracle)
	if err != nil {
		t.Fatalf("dead transport should degrade, not fail: %v", err)
	}
	assertSameAsPartitioned(t, got, want, pool)
	m := da.Metrics()
	if m == nil || m.Fallbacks != opts.Partitions {
		t.Errorf("Fallbacks = %+v, want %d degraded shards", m, opts.Partitions)
	}

	opts.NoFallback = true
	da, err = NewDistributed(pair, opts, unreachableTransport{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := da.Align(trainPos, candidates, oracle); err == nil {
		t.Error("NoFallback over a dead transport should fail the run")
	}
}
