package activeiter

import (
	"fmt"
	"io"
	"os"
	"testing"

	"github.com/activeiter/activeiter/internal/distrib"
)

// workerEnv re-executes this test binary as a wire worker so the
// subprocess-transport property test crosses a real process boundary
// without a prebuilt binary.
const workerEnv = "ACTIVEITER_FACADE_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		err := ServeWorker(struct {
			io.Reader
			io.Writer
		}{os.Stdin, os.Stdout})
		if err != nil && err != io.EOF {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// assertSameAsPartitioned compares a distributed result with the
// in-process partitioned reference over the full pool.
func assertSameAsPartitioned(t *testing.T, got, want *PartitionedResult, pool []Anchor) {
	t.Helper()
	ga, wa := got.PredictedAnchors(), want.PredictedAnchors()
	if len(ga) != len(wa) {
		t.Fatalf("distributed predicted %d anchors, partitioned %d", len(ga), len(wa))
	}
	for i := range wa {
		if ga[i] != wa[i] {
			t.Fatalf("anchor %d: distributed %v, partitioned %v", i, ga[i], wa[i])
		}
	}
	if got.QueryCount() != want.QueryCount() {
		t.Errorf("query counts: distributed %d, partitioned %d", got.QueryCount(), want.QueryCount())
	}
	if got.Rejected != want.Rejected {
		t.Errorf("rejected: distributed %d, partitioned %d", got.Rejected, want.Rejected)
	}
	for _, l := range pool {
		gl, gok := got.Label(l.I, l.J)
		wl, wok := want.Label(l.I, l.J)
		if gok != wok || gl != wl {
			t.Fatalf("label(%d,%d): distributed %v/%v, partitioned %v/%v", l.I, l.J, gl, gok, wl, wok)
		}
		if got.WasQueried(l.I, l.J) != want.WasQueried(l.I, l.J) {
			t.Fatalf("queried(%d,%d) diverges", l.I, l.J)
		}
	}
}

// TestDistributedMatchesPartitioned is the facade-level acceptance
// property: for the same Options (seed, K, budget), a K-shard
// distributed run — over the loopback transport and over genuine
// subprocess workers — produces the same globally one-to-one alignment
// as PartitionedAligner.
func TestDistributedMatchesPartitioned(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	candidates := append(append([]Anchor{}, testPos...), neg...)
	pool := append(append([]Anchor{}, trainPos...), candidates...)
	opts := Options{Budget: 10, Seed: 3, Partitions: 3, Workers: 2}
	oracle := NewTruthOracle(pair)

	ref, err := NewPartitioned(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Align(trainPos, candidates, oracle)
	if err != nil {
		t.Fatal(err)
	}

	transports := map[string]ShardTransport{
		"loopback": NewLoopbackTransport(),
	}
	if exe, err := os.Executable(); err == nil && !testing.Short() {
		// The worker command is this test binary re-executed in worker
		// mode (see TestMain) — a genuine subprocess speaking the wire
		// protocol over stdio, like `activeiter -worker` does.
		transports["subprocess"] = &distrib.Exec{
			Cmd:    exe,
			Env:    append(os.Environ(), workerEnv+"=1"),
			Stderr: os.Stderr,
		}
	}
	for name, tr := range transports {
		t.Run(name, func(t *testing.T) {
			da, err := NewDistributed(pair, opts, tr)
			if err != nil {
				t.Fatal(err)
			}
			got, err := da.Align(trainPos, candidates, oracle)
			if err != nil {
				t.Fatal(err)
			}
			assertSameAsPartitioned(t, got, want, pool)
			m := da.Metrics()
			if m == nil || m.JobBytes <= 0 {
				t.Errorf("metrics missing after Align: %+v", m)
			}
			// The shared evaluation path scores the distributed result
			// like any other.
			dm := EvaluateAlignment(got, testPos, neg)
			wm := EvaluateAlignment(want, testPos, neg)
			if dm != wm {
				t.Errorf("metrics diverge: distributed %+v, partitioned %+v", dm, wm)
			}
		})
	}
}

// TestNewDistributedValidation pins constructor error paths.
func TestNewDistributedValidation(t *testing.T) {
	pair, _, _, _ := testFixture(t)
	if _, err := NewDistributed(nil, Options{}, NewLoopbackTransport()); err == nil {
		t.Error("nil pair accepted")
	}
	if _, err := NewDistributed(pair, Options{}, nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewDistributed(pair, Options{Workers: -1}, NewLoopbackTransport()); err == nil {
		t.Error("negative Workers accepted")
	}
	if _, err := NewDistributed(pair, Options{Partitions: -2}, NewLoopbackTransport()); err == nil {
		t.Error("negative Partitions accepted")
	}
}
