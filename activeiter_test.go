package activeiter

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// testFixture generates a tiny pair and splits its anchors.
func testFixture(t *testing.T) (*AlignedPair, []Anchor, []Anchor, []Anchor) {
	t.Helper()
	pair, err := GenerateDataset(TinyDataset())
	if err != nil {
		t.Fatal(err)
	}
	anchors := pair.Anchors
	nTrain := len(anchors) / 4
	trainPos := anchors[:nTrain]
	testPos := anchors[nTrain:]
	rng := rand.New(rand.NewSource(11))
	neg, err := SampleNegatives(pair, 10*len(anchors), rng)
	if err != nil {
		t.Fatal(err)
	}
	return pair, trainPos, testPos, neg
}

func TestAlignEndToEnd(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	aligner, err := New(pair, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands := append(append([]Anchor{}, testPos...), neg...)
	res, err := aligner.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluateAlignment(res, testPos, neg)
	if m.F1 <= 0.2 {
		t.Errorf("end-to-end F1 = %v, expected meaningful recovery on tiny data", m.F1)
	}
	if m.Precision < m.Recall {
		t.Logf("note: precision %v < recall %v (acceptable)", m.Precision, m.Recall)
	}
	// Predicted anchors obey one-to-one.
	seenI, seenJ := map[int]bool{}, map[int]bool{}
	for _, a := range res.PredictedAnchors() {
		if seenI[a.I] || seenJ[a.J] {
			t.Fatal("predicted anchors violate one-to-one")
		}
		seenI[a.I] = true
		seenJ[a.J] = true
	}
}

func TestAlignWithBudgetImprovesOrMatches(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)

	plain, err := New(pair, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resPlain, err := plain.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}

	activeAl, err := New(pair, Options{Budget: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resActive, err := activeAl.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}
	if resActive.QueryCount() != 20 {
		t.Errorf("QueryCount = %d, want 20", resActive.QueryCount())
	}
	mPlain := EvaluateAlignment(resPlain, testPos, neg)
	mActive := EvaluateAlignment(resActive, testPos, neg)
	// On tiny data the improvement can be small, but active must not be
	// drastically worse.
	if mActive.F1 < mPlain.F1-0.1 {
		t.Errorf("active F1 %v much worse than plain %v", mActive.F1, mPlain.F1)
	}
}

func TestAlignValidation(t *testing.T) {
	pair, trainPos, testPos, _ := testFixture(t)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil pair should fail")
	}
	if _, err := New(pair, Options{Strategy: "bogus"}); err == nil {
		t.Error("unknown strategy should fail")
	}
	aligner, err := New(pair, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aligner.Align(nil, testPos, nil); err == nil {
		t.Error("no training positives should fail")
	}
	if _, err := aligner.Align(trainPos, testPos, nil); err != nil {
		t.Errorf("valid align failed: %v", err)
	}
}

func TestAlignDeduplicatesCandidates(t *testing.T) {
	pair, trainPos, testPos, _ := testFixture(t)
	aligner, err := New(pair, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Candidates repeating training links and themselves must not break
	// the pool.
	cands := append(append([]Anchor{}, testPos...), testPos...)
	cands = append(cands, trainPos...)
	res, err := aligner.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.links); got != len(trainPos)+len(testPos) {
		t.Errorf("pool size %d, want %d", got, len(trainPos)+len(testPos))
	}
}

func TestFeatureNamesAndVector(t *testing.T) {
	pair, trainPos, _, _ := testFixture(t)
	aligner, err := New(pair, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := aligner.FeatureNames()
	if len(names) != 32 {
		t.Errorf("full feature names = %d, want 32", len(names))
	}
	pathsOnly, err := New(pair, Options{Features: PathFeatures})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pathsOnly.FeatureNames()); got != 7 {
		t.Errorf("path feature names = %d, want 7 (6 paths + bias)", got)
	}
	// Feature vectors are defined only after anchors are set; Align sets
	// them, but FeatureVector must work standalone too (uses pair's full
	// anchors initially).
	v, err := aligner.FeatureVector(trainPos[0].I, trainPos[0].J)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 32 || v[31] != 1 {
		t.Errorf("feature vector shape wrong: len=%d bias=%v", len(v), v[len(v)-1])
	}
}

func TestJSONRoundTripThroughFacade(t *testing.T) {
	pair, _, _, _ := testFixture(t)
	var buf bytes.Buffer
	if err := WriteAlignedJSON(pair, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAlignedJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Anchors) != len(pair.Anchors) {
		t.Error("anchors lost in round trip")
	}
}

func TestEvaluateAlignmentExcludesQueried(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	aligner, err := New(pair, Options{Budget: 10, Strategy: StrategyRandom, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cands := append(append([]Anchor{}, testPos...), neg...)
	res, err := aligner.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluateAlignment(res, testPos, neg)
	total := m.TP + m.FP + m.TN + m.FN
	if total != len(testPos)+len(neg)-res.QueryCount() {
		// Queried links may include training-pool-only links; the bound
		// is: evaluated ≥ pools − queries.
		if total < len(testPos)+len(neg)-res.QueryCount() {
			t.Errorf("evaluated %d pairs, want ≥ %d", total, len(testPos)+len(neg)-res.QueryCount())
		}
	}
}

func TestConvergenceTraceExposed(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	aligner, err := New(pair, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cands := append(append([]Anchor{}, testPos...), neg...)
	res, err := aligner.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.ConvergenceTrace()
	if len(tr) == 0 {
		t.Fatal("no convergence trace")
	}
	if tr[len(tr)-1] != 0 {
		t.Errorf("did not converge: %v", tr)
	}
	if len(res.Weights()) != 32 {
		t.Errorf("weights = %d", len(res.Weights()))
	}
	if res.Raw() == nil {
		t.Error("Raw should expose the inner result")
	}
}

// Regression: New used to accept negative Budget/BatchSize/C silently —
// a negative Budget in particular skipped core's oracle validation
// (only Budget > 0 is checked there) and quietly disabled active
// learning. Invalid options must fail fast with a descriptive error.
func TestNewRejectsInvalidOptions(t *testing.T) {
	pair, _, _, _ := testFixture(t)
	bad := []Options{
		{Budget: -5},
		{BatchSize: -1},
		{C: -0.5},
		{C: math.NaN()},
		{C: math.Inf(1)},
		{Partitions: -2},
		{Threshold: Ptr(math.NaN())},
		{Threshold: Ptr(math.Inf(1))},
	}
	for _, opts := range bad {
		if _, err := New(pair, opts); err == nil {
			t.Errorf("New(%+v) accepted invalid options", opts)
		}
	}
	// The boundary values stay legal: zeros mean "default/disabled".
	if _, err := New(pair, Options{Budget: 0, BatchSize: 0, C: 0, Threshold: Ptr(0.0)}); err != nil {
		t.Errorf("zero-valued options rejected: %v", err)
	}
}
