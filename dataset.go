package activeiter

import (
	"io"
	"math/rand"

	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
)

// GeneratorConfig parameterizes the synthetic aligned-network generator
// that substitutes for the paper's Foursquare–Twitter crawl (see
// DESIGN.md §3).
type GeneratorConfig = datagen.Config

// TinyDataset is the smallest preset — suits unit tests.
func TinyDataset() GeneratorConfig { return datagen.Tiny() }

// SmallDataset is the default experiment scale.
func SmallDataset() GeneratorConfig { return datagen.Small() }

// PaperShapeDataset tracks Table II's ratios at 1/5 linear scale.
func PaperShapeDataset() GeneratorConfig { return datagen.PaperShape() }

// FullScaleDataset reproduces the crawl's user and link magnitudes.
func FullScaleDataset() GeneratorConfig { return datagen.FullScale() }

// XLScaleDataset is ~10× the crawl — the partitioned-alignment stress
// scale.
func XLScaleDataset() GeneratorConfig { return datagen.XLScale() }

// GenerateDataset synthesizes an aligned pair from the configuration.
// Identical configs generate identical pairs.
func GenerateDataset(cfg GeneratorConfig) (*AlignedPair, error) {
	return datagen.Generate(cfg)
}

// WriteAlignedJSON serializes an aligned pair.
func WriteAlignedJSON(pair *AlignedPair, w io.Writer) error { return pair.WriteJSON(w) }

// ReadAlignedJSON deserializes and validates an aligned pair written by
// WriteAlignedJSON.
func ReadAlignedJSON(r io.Reader) (*AlignedPair, error) { return hetnet.ReadAlignedJSON(r) }

// SampleNegatives draws count distinct non-anchor user pairs uniformly —
// the NP-ratio negative pool of the paper's protocol. The rng seeds the
// sampling; use rand.New(rand.NewSource(seed)) for reproducibility.
func SampleNegatives(pair *AlignedPair, count int, rng *rand.Rand) ([]Anchor, error) {
	return eval.SampleNegatives(pair, count, rng)
}

// Metrics reports binary classification quality for an alignment run.
type Metrics struct {
	F1, Precision, Recall, Accuracy float64
	TP, FP, TN, FN                  int
}

// AlignmentResult is the read-side contract shared by monolithic and
// partitioned alignment results: final labels plus the oracle audit.
type AlignmentResult interface {
	// Label returns the final label of link (i, j) and whether the link
	// was part of the candidate pool.
	Label(i, j int) (float64, bool)
	// WasQueried reports whether (i, j) was labeled by the oracle.
	WasQueried(i, j int) bool
}

// EvaluateAlignment scores a result (monolithic *Result or partitioned
// *PartitionedResult) against labeled test pools. Queried links are
// excluded, matching the paper's evaluation fairness rule (their labels
// came from the oracle, not the model).
func EvaluateAlignment(res AlignmentResult, testPos, testNeg []Anchor) Metrics {
	var c eval.Confusion
	score := func(links []Anchor, truth float64) {
		for _, l := range links {
			if res.WasQueried(l.I, l.J) {
				continue
			}
			pred, ok := res.Label(l.I, l.J)
			if !ok {
				pred = 0 // links outside the pool are predicted negative
			}
			c.Add(pred, truth)
		}
	}
	score(testPos, 1)
	score(testNeg, 0)
	return Metrics{
		F1: c.F1(), Precision: c.Precision(), Recall: c.Recall(), Accuracy: c.Accuracy(),
		TP: c.TP, FP: c.FP, TN: c.TN, FN: c.FN,
	}
}
