package activeiter

import (
	"math/rand"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

func TestCandidatePairsFacade(t *testing.T) {
	pair, trainPos, testPos, _ := testFixture(t)
	aligner, err := New(pair, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := aligner.CandidatePairs(trainPos, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates proposed")
	}
	inCands := make(map[int64]bool)
	for _, a := range cands {
		inCands[hetnet.Key(a.I, a.J)] = true
	}
	found := 0
	for _, a := range testPos {
		if inCands[hetnet.Key(a.I, a.J)] {
			found++
		}
	}
	if float64(found)/float64(len(testPos)) < 0.5 {
		t.Errorf("candidate recall = %d/%d, want ≥ 50%%", found, len(testPos))
	}
	// Proposed candidates can feed Align directly.
	res, err := aligner.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PredictedAnchors()) == 0 {
		t.Error("alignment over proposed candidates found nothing")
	}
}

func TestExtendedFeaturesFacade(t *testing.T) {
	cfg := TinyDataset()
	cfg.Words = 50
	cfg.WordsPerPost = 2
	pair, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aligner, err := New(pair, Options{Features: ExtendedFeatures, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	names := aligner.FeatureNames()
	if len(names) != 59 {
		t.Fatalf("extended feature names = %d, want 59 (58 + bias)", len(names))
	}
	hasP7 := false
	for _, n := range names {
		if n == "P7" {
			hasP7 = true
		}
	}
	if !hasP7 {
		t.Error("P7 missing from extended features")
	}
	// End-to-end run with word features.
	rng := rand.New(rand.NewSource(5))
	trainPos := pair.Anchors[:10]
	testPos := pair.Anchors[10:]
	neg, err := SampleNegatives(pair, 5*len(pair.Anchors), rng)
	if err != nil {
		t.Fatal(err)
	}
	cands := append(append([]Anchor{}, testPos...), neg...)
	res, err := aligner.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluateAlignment(res, testPos, neg)
	if m.F1 <= 0 {
		t.Errorf("extended features F1 = %v, want > 0", m.F1)
	}
}

func TestPredictorFacade(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	aligner, err := New(pair, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands := append(append([]Anchor{}, testPos...), neg...)
	res, err := aligner.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := res.Predictor(0)
	if err != nil {
		t.Fatal(err)
	}
	// Score a known positive vs a known negative through the same
	// feature extractor.
	posVec, err := aligner.FeatureVector(testPos[0].I, testPos[0].J)
	if err != nil {
		t.Fatal(err)
	}
	negVec, err := aligner.FeatureVector(neg[0].I, neg[0].J)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Score(posVec) <= pred.Score(negVec) {
		t.Logf("note: this particular positive (%v) does not outscore negative (%v)",
			pred.Score(posVec), pred.Score(negVec))
	}
	// Aggregate check: mean score of test positives must exceed mean of
	// negatives.
	mean := func(links []Anchor) float64 {
		var s float64
		for _, l := range links {
			v, err := aligner.FeatureVector(l.I, l.J)
			if err != nil {
				t.Fatal(err)
			}
			s += pred.Score(v)
		}
		return s / float64(len(links))
	}
	if mean(testPos) <= mean(neg) {
		t.Errorf("mean positive score %v not above mean negative %v", mean(testPos), mean(neg))
	}
}
