package activeiter

import (
	"fmt"
	"math"
	"time"

	"github.com/activeiter/activeiter/internal/serve"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// Snapshot is a trained alignment persisted as a versioned binary
// artifact: provenance (dataset fingerprints, user ID tables), the
// schema notation set, the trained feature weights, the reconciled
// one-to-one matching, per-user top-k ranked candidates, the full
// candidate pool with the oracle audit, and the queried-label log. It
// is the offline→online bridge: `cmd/alignd` serves match/candidate/
// score queries straight from one. See docs/SNAPSHOT.md for the
// artifact layout and version rules.
type Snapshot = snapshot.Snapshot

// ServeIndex is a read-optimized, concurrency-safe in-memory index over
// a snapshot — the structure alignd serves from. It satisfies
// AlignmentResult, so EvaluateAlignment scores a loaded snapshot
// exactly like the live result it was built from.
type ServeIndex = serve.Index

// ErrSnapshotVersionMismatch reports an artifact of a different format
// version (use errors.Is).
var ErrSnapshotVersionMismatch = snapshot.ErrVersionMismatch

// Facade labels recorded in a snapshot's provenance header.
const (
	SnapshotMonolithic  = "monolithic"
	SnapshotPartitioned = "partitioned"
	SnapshotDistributed = "distributed"
)

// BuildSnapshot freezes a completed alignment for serving. It accepts
// the result of any facade — *Result from Aligner, *PartitionedResult
// from PartitionedAligner or DistributedAligner — together with the
// pair it was trained on and the Options that trained it (the source of
// the recorded notation set and training configuration). facade is the
// provenance label (SnapshotMonolithic, SnapshotPartitioned,
// SnapshotDistributed); empty derives it from the result type, with
// sharded results labeled "partitioned".
func BuildSnapshot(facade string, pair *AlignedPair, res AlignmentResult, opts Options) (*Snapshot, error) {
	if pair == nil {
		return nil, fmt.Errorf("activeiter: nil pair")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	meta := snapshot.Meta{
		CreatedUnix: time.Now().Unix(),
		Notation:    notationOf(opts),
		Features:    featuresName(opts.Features),
		Strategy:    strategyName(opts.Strategy),
		Threshold:   thresholdOf(opts),
		Seed:        opts.Seed,
		Budget:      opts.Budget,
		BatchSize:   opts.BatchSize,
		Partitions:  opts.Partitions,
		Rounds:      opts.Rounds,
	}

	var model snapshot.Model
	var pool []snapshot.PoolLink
	var matches []snapshot.Match
	var labels []snapshot.QueriedLabel

	switch r := res.(type) {
	case *Result:
		if facade == "" {
			facade = SnapshotMonolithic
		}
		if facade != SnapshotMonolithic {
			return nil, fmt.Errorf("activeiter: facade %q cannot produce a monolithic *Result", facade)
		}
		inner := r.Raw()
		model.W = append([]float64(nil), inner.W...)
		for idx, l := range r.links {
			score := inner.Scores[idx]
			pool = append(pool, snapshot.PoolLink{
				I: int32(l.I), J: int32(l.J),
				Label:    inner.Y[idx],
				Score:    score,
				HasScore: !math.IsNaN(score),
				Queried:  inner.WasQueried(l.I, l.J),
			})
			if inner.Y[idx] == 1 {
				matches = append(matches, snapshot.Match{
					I: int32(l.I), J: int32(l.J),
					Score: score, HasScore: !math.IsNaN(score),
				})
			}
		}
		for _, q := range inner.Queried {
			labels = append(labels, snapshot.QueriedLabel{I: int32(q.Link.I), J: int32(q.Link.J), Label: q.Label})
		}
	case *PartitionedResult:
		if facade == "" {
			facade = SnapshotPartitioned
		}
		if facade != SnapshotPartitioned && facade != SnapshotDistributed {
			return nil, fmt.Errorf("activeiter: facade %q cannot produce a sharded *PartitionedResult", facade)
		}
		for shard, w := range r.ShardWeights {
			if len(w) == 0 {
				return nil, fmt.Errorf("activeiter: shard %d carries no trained weights (result predates the weight plumbing?)", shard)
			}
			model.Shards = append(model.Shards, snapshot.ShardModel{Shard: shard, W: append([]float64(nil), w...)})
		}
		for _, e := range r.Entries() {
			pool = append(pool, snapshot.PoolLink{
				I: int32(e.Link.I), J: int32(e.Link.J),
				Label: e.Label, Score: e.Score, HasScore: e.HasScore,
				Queried: e.Queried,
			})
		}
		for _, a := range r.PredictedAnchors() {
			score, hasScore := r.Score(a.I, a.J)
			matches = append(matches, snapshot.Match{I: int32(a.I), J: int32(a.J), Score: score, HasScore: hasScore})
		}
		for _, l := range r.QueriedLabels() {
			labels = append(labels, snapshot.QueriedLabel{I: int32(l.Link.I), J: int32(l.Link.J), Label: l.Label})
		}
	default:
		return nil, fmt.Errorf("activeiter: cannot snapshot a %T (want *Result or *PartitionedResult)", res)
	}
	meta.Facade = facade
	return snapshot.Build(pair, meta, model, pool, matches, labels, snapshot.DefaultTopK)
}

// WriteSnapshot persists the artifact to path (atomic rename, so a
// serving process reloading the same path never reads half a file).
func WriteSnapshot(s *Snapshot, path string) error { return s.WriteFile(path) }

// OpenSnapshot reads and validates an artifact written by
// WriteSnapshot. Version-mismatched artifacts fail with
// ErrSnapshotVersionMismatch; corrupt or truncated ones with explicit
// errors.
func OpenSnapshot(path string) (*Snapshot, error) { return snapshot.OpenFile(path) }

// NewServeIndex builds the serving index from a snapshot.
func NewServeIndex(s *Snapshot) (*ServeIndex, error) { return serve.NewIndex(s) }

// notationOf is the feature vector layout Options trains: the diagram
// IDs in extraction order plus the trailing bias — identical to
// Aligner.FeatureNames(), which is what the persisted weight vectors
// are parallel to.
func notationOf(opts Options) []string {
	feats := opts.features()
	out := make([]string, 0, len(feats)+1)
	for _, f := range feats {
		out = append(out, f.ID)
	}
	return append(out, "BIAS")
}

// featuresName is the wire/provenance name of a feature set.
func featuresName(fs FeatureSet) string {
	switch fs {
	case PathFeatures:
		return "paths"
	case ExtendedFeatures:
		return "extended"
	default:
		return "full"
	}
}

// strategyName is the provenance name of a query strategy.
func strategyName(s StrategyKind) string {
	if s == "" {
		return string(StrategyConflict)
	}
	return string(s)
}

// thresholdOf resolves the effective selection cutoff.
func thresholdOf(opts Options) float64 {
	if opts.Threshold != nil {
		return *opts.Threshold
	}
	return 0.5
}
