package activeiter

import (
	"errors"
	"io"

	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/distrib"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
)

// LabeledLink is one oracle-labeled pool link, as returned by
// PartitionedResult.QueriedLabels and consumed by a multi-round session.
type LabeledLink = partition.LabeledLink

// ShardTransport produces worker connections for distributed alignment.
// Use NewLoopbackTransport, NewWorkerProcessTransport or
// NewTCPTransport — or implement Dial for a custom fabric.
type ShardTransport = distrib.Transport

// DistributedMetrics is a distributed run's transport audit: bytes on
// the wire per shard and in total, oracle round-trips, retries.
type DistributedMetrics = distrib.Metrics

// NewLoopbackTransport serves every shard with an in-process worker
// goroutine speaking the full wire protocol — the zero-setup transport
// for tests and single-machine runs, and the serialization-overhead
// baseline for benchmarks.
func NewLoopbackTransport() ShardTransport { return distrib.Loopback{} }

// NewWorkerProcessTransport spawns one worker subprocess per connection
// and speaks the wire protocol over its stdio. The command must run the
// worker serve loop on stdin/stdout — `activeiter -worker` does.
func NewWorkerProcessTransport(cmd string, args ...string) ShardTransport {
	return &distrib.Exec{Cmd: cmd, Args: args}
}

// NewTCPTransport dials remote workers round-robin across addrs; each
// address should run `activeiter -worker-listen <addr>`.
func NewTCPTransport(addrs ...string) ShardTransport { return distrib.NewTCP(addrs...) }

// ServeWorker runs the distributed-alignment worker protocol over the
// given stream until it closes — the loop behind `activeiter -worker`.
func ServeWorker(conn io.ReadWriter) error { return distrib.Serve(conn) }

// ListenAndServeWorker accepts coordinator connections on addr and
// serves each until the listener fails — the loop behind
// `activeiter -worker-listen`.
func ListenAndServeWorker(addr string) error { return distrib.ListenAndServe(addr, nil) }

// DistributedAligner fans shard alignment out across processes: it
// plans candidate-space shards exactly like PartitionedAligner, ships
// its warm anchor-free count cache once per worker connection so jobs
// reduce to a few kilobytes of pool indices (workers fork the seeded
// counter instead of re-counting; shard extraction remains the
// fallback when seeding is off), answers the workers' oracle queries,
// and reconciles the returned vote streams into one globally one-to-one
// result.
//
// For the same Options (seed, partitions, budget) a distributed run
// produces the same alignment as PartitionedAligner — shard extraction
// preserves features exactly, the workers run the identical per-shard
// pipeline, and the reconciliation is order-independent. The difference
// is where shards execute: forks in one process vs worker processes on
// any number of machines.
type DistributedAligner struct {
	pair      *AlignedPair
	base      *metadiag.Counter
	opts      Options
	transport ShardTransport
	planner   *partition.Planner
	panel     *OraclePanel

	metrics *DistributedMetrics
}

// NewDistributed builds a distributed aligner over the pair. Shard
// count comes from Options.Partitions, worker-connection concurrency
// from Options.Workers.
func NewDistributed(pair *AlignedPair, opts Options, transport ShardTransport) (*DistributedAligner, error) {
	if pair == nil {
		return nil, errors.New("activeiter: nil pair")
	}
	if transport == nil {
		return nil, errors.New("activeiter: nil shard transport")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	base, err := metadiag.NewCounter(pair)
	if err != nil {
		return nil, err
	}
	return &DistributedAligner{pair: pair, base: base, opts: opts, transport: transport}, nil
}

// Align shards the candidate space, dispatches every shard to a worker,
// and reconciles. Semantics match PartitionedAligner.Align, including
// the pure-oracle reproducibility caveat; the oracle stays on this side
// of the wire and is queried through label round-trip frames, so remote
// workers never see ground truth beyond their shard's training anchors.
//
// With Options.Rounds > 1 the active loop lifts to the coordinator: the
// budget splits across that many rounds over one sticky worker session,
// each round's oracle answers are fed back into the stable plan as fixed
// labels, and every round after the first ships only those label deltas
// to the workers already holding the shards warm (see
// Metrics().CacheHits and DeltaBytes for the audit).
func (da *DistributedAligner) Align(trainPos, candidates []Anchor, oracle Oracle) (*PartitionedResult, error) {
	if len(trainPos) == 0 {
		return nil, core.ErrNoPositives
	}
	// The panel stays coordinator-side: workers' label round-trip frames
	// are answered with panel verdicts, and because verdicts are pure
	// per-link functions, session label deltas carry them unchanged
	// across rounds and retries.
	oracle, panel, err := da.opts.wrapOracle(oracle)
	if err != nil {
		return nil, err
	}
	da.panel = panel
	plan, err := planShards(da.base, &da.planner, da.opts, trainPos, candidates)
	if err != nil {
		return nil, err
	}
	if da.opts.Rounds > 1 {
		return da.alignSession(plan, oracle)
	}
	dopts := da.opts.distribOptions()
	// The facade's base counter is already warm from planning; exporting
	// the seed from it costs matrix reads, not recounts.
	dopts.Base = da.base
	coord := &distrib.Coordinator{
		Transport: da.transport,
		Opts:      dopts,
	}
	res, metrics, err := coord.Run(da.pair, plan, oracle)
	if err != nil {
		return nil, err
	}
	da.metrics = metrics
	return res, nil
}

// alignSession drives the multi-round sticky-session protocol: rebudget
// the stable plan per round, run it, feed the round's oracle labels back
// as prelabels for the next. The final round's merged result (which
// carries every queried link across rounds) is the alignment; its
// Reports accumulate one entry per shard per round, so QueryCount spans
// the whole session's oracle spend, matching the single-shot contract.
func (da *DistributedAligner) alignSession(plan *partition.Plan, oracle Oracle) (*PartitionedResult, error) {
	dopts := da.opts.distribOptions()
	dopts.Base = da.base
	sess, err := distrib.NewSession(da.transport, da.pair, dopts)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	rounds := da.opts.Rounds
	var res *PartitionedResult
	var reports []PartitionReport
	for r := 0; r < rounds; r++ {
		plan.Rebudget(partition.RoundBudget(da.opts.Budget, rounds, r))
		res, _, err = sess.Run(plan, oracle)
		if err != nil {
			return nil, err
		}
		reports = append(reports, res.Reports...)
		if r < rounds-1 {
			plan.AppendLabels(res.QueriedLabels())
		}
	}
	res.Reports = reports
	da.metrics = sess.Metrics()
	return res, nil
}

// Metrics returns the transport audit of the last Align call (nil
// before the first).
func (da *DistributedAligner) Metrics() *DistributedMetrics { return da.metrics }

// distribOptions maps the facade options onto the coordinator's,
// carrying the fault-tolerance knobs (retries, deadlines, hedging,
// degradation) alongside the training configuration.
func (o Options) distribOptions() distrib.Options {
	return distrib.Options{
		Train:        o.trainConfig(),
		Workers:      o.Workers,
		Retries:      o.ShardRetries,
		ShardTimeout: o.ShardTimeout,
		HedgeAfter:   o.HedgeAfter,
		NoFallback:   o.NoFallback,
	}
}

// trainConfig flattens the options into the wire-safe training
// configuration workers receive.
func (o Options) trainConfig() distrib.TrainConfig {
	cfg := distrib.TrainConfig{
		C:         o.C,
		Threshold: o.Threshold,
		BatchSize: o.BatchSize,
		Exact:     o.ExactSelection,
		Seed:      o.Seed,
	}
	switch o.Features {
	case PathFeatures:
		cfg.FeatureSet = distrib.FeaturesPaths
	case ExtendedFeatures:
		cfg.FeatureSet = distrib.FeaturesExtended
	default:
		cfg.FeatureSet = distrib.FeaturesFull
	}
	switch o.Strategy {
	case StrategyRandom:
		cfg.Strategy = distrib.StrategyRandom
	case StrategyUncertainty:
		cfg.Strategy = distrib.StrategyUncertainty
	default:
		cfg.Strategy = distrib.StrategyConflict
	}
	return cfg
}
