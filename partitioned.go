package activeiter

import (
	"errors"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
)

// PartitionedResult is a merged partitioned alignment: the globally
// one-to-one predicted anchors plus per-partition audit reports. It
// satisfies the same read-side contract as Result (Label, WasQueried,
// PredictedAnchors), so EvaluateAlignment scores both uniformly.
type PartitionedResult = partition.Result

// PartitionReport is the audit trail of one partition's pipeline.
type PartitionReport = partition.PartReport

// PartitionedAligner scales alignment past one monolithic training loop:
// it shards the candidate space into Options.Partitions overlapping
// partitions (seeded by coarse IsoRank-style similarity plus
// training-anchor locality), runs the counter→extractor→training
// pipeline per partition concurrently on forked counters sharing one
// attribute-only count cache, splits the active-learning budget across
// partitions proportionally to their candidate share, and merges the
// per-partition predictions into one globally one-to-one result via
// score-greedy union-find reconciliation.
//
// With Options.Partitions ≤ 1 the result is identical to Aligner.Align
// — the partitioned pipeline is a strict generalization.
type PartitionedAligner struct {
	pair    *AlignedPair
	base    *metadiag.Counter
	opts    Options
	planner *partition.Planner // lazy; only needed when Partitions > 1
	panel   *OraclePanel
}

// NewPartitioned builds a partitioned aligner over the pair. The number
// of partitions comes from Options.Partitions.
func NewPartitioned(pair *AlignedPair, opts Options) (*PartitionedAligner, error) {
	if pair == nil {
		return nil, errors.New("activeiter: nil pair")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	base, err := metadiag.NewCounter(pair)
	if err != nil {
		return nil, err
	}
	return &PartitionedAligner{pair: pair, base: base, opts: opts}, nil
}

// Align shards candidates into partitions, trains every partition
// concurrently on trainPos ∩ partition, and reconciles. The oracle may
// be nil when Budget is 0. Semantics match Aligner.Align: trainPos links
// join each partition's pool automatically, and the union of partition
// pools covers every candidate.
//
// Reproducibility: with Partitions > 1 oracle queries arrive in
// nondeterministic order across the concurrent shard pipelines. Runs
// remain identical for a fixed Seed as long as the oracle answers as a
// pure function of the queried link — true of NewTruthOracle and the
// hash-seeded NoisyOracle. Supply an order-dependent oracle only with
// Partitions ≤ 1.
func (pa *PartitionedAligner) Align(trainPos []Anchor, candidates []Anchor, oracle Oracle) (*PartitionedResult, error) {
	if len(trainPos) == 0 {
		return nil, core.ErrNoPositives
	}
	// A panel answers as a pure lock-guarded function of the link, so it
	// satisfies the concurrent-pipeline oracle contract below.
	oracle, panel, err := pa.opts.wrapOracle(oracle)
	if err != nil {
		return nil, err
	}
	pa.panel = panel
	plan, err := planShards(pa.base, &pa.planner, pa.opts, trainPos, candidates)
	if err != nil {
		return nil, err
	}
	return partition.Align(pa.base, plan, partition.TrainOptions{
		Features: pa.opts.features(),
		Workers:  pa.opts.Workers,
		Core: core.Config{
			C:              pa.opts.C,
			Threshold:      pa.opts.Threshold,
			Budget:         pa.opts.Budget,
			BatchSize:      pa.opts.BatchSize,
			Strategy:       mustStrategy(pa.opts),
			ExactSelection: pa.opts.ExactSelection,
			Seed:           pa.opts.Seed,
		},
	}, oracle)
}

// planShards is the shard planning shared by PartitionedAligner and
// DistributedAligner — same plan in, same alignment out is the
// property the two paths are tested against, so they must never plan
// differently. Repeated Align calls (cross-validation folds,
// retraining after new labels) reuse one cached planner's
// fold-independent inputs through the *planner slot.
func planShards(base *metadiag.Counter, planner **partition.Planner, opts Options, trainPos, candidates []Anchor) (*partition.Plan, error) {
	if opts.Partitions > 1 && len(trainPos) > 1 {
		if *planner == nil {
			pl, err := partition.NewPlanner(base)
			if err != nil {
				return nil, err
			}
			*planner = pl
		}
		return (*planner).Plan(trainPos, candidates, opts.Budget, partition.Config{K: opts.Partitions})
	}
	return partition.BuildPlan(base, trainPos, candidates, opts.Budget, partition.Config{K: opts.Partitions})
}

// mustStrategy resolves the configured strategy; Options were validated
// in NewPartitioned, so failure is impossible here.
func mustStrategy(opts Options) active.Strategy {
	s, err := opts.strategy()
	if err != nil {
		panic(err)
	}
	return s
}
