package activeiter

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func sortAnchors(in []Anchor) []Anchor {
	out := append([]Anchor{}, in...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Property: a PartitionedAligner with K=1 reproduces the monolithic
// Aligner exactly — same predicted anchors, same labels, same oracle
// audit — with and without active learning.
func TestPartitionedK1IdenticalToMonolithic(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	candidates := append(append([]Anchor{}, testPos...), neg...)
	for _, budget := range []int{0, 10} {
		opts := Options{Budget: budget, Seed: 3, Partitions: 1}
		mono, err := New(pair, opts)
		if err != nil {
			t.Fatal(err)
		}
		var oracle Oracle
		if budget > 0 {
			oracle = NewTruthOracle(pair)
		}
		mRes, err := mono.Align(trainPos, candidates, oracle)
		if err != nil {
			t.Fatal(err)
		}
		part, err := NewPartitioned(pair, opts)
		if err != nil {
			t.Fatal(err)
		}
		pRes, err := part.Align(trainPos, candidates, oracle)
		if err != nil {
			t.Fatal(err)
		}
		want := sortAnchors(mRes.PredictedAnchors())
		got := pRes.PredictedAnchors()
		if len(got) != len(want) {
			t.Fatalf("budget %d: %d predicted vs %d monolithic", budget, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("budget %d: anchor %d = %+v, want %+v", budget, i, got[i], want[i])
			}
		}
		for _, c := range candidates {
			mLab, mOK := mRes.Label(c.I, c.J)
			pLab, pOK := pRes.Label(c.I, c.J)
			if mOK != pOK || mLab != pLab {
				t.Fatalf("budget %d: label (%d,%d) = %v/%v vs %v/%v", budget, c.I, c.J, pLab, pOK, mLab, mOK)
			}
			if mRes.WasQueried(c.I, c.J) != pRes.WasQueried(c.I, c.J) {
				t.Fatalf("budget %d: queried mismatch (%d,%d)", budget, c.I, c.J)
			}
		}
		if mRes.QueryCount() != pRes.QueryCount() {
			t.Fatalf("budget %d: queries %d vs %d", budget, pRes.QueryCount(), mRes.QueryCount())
		}
		// The shared evaluation path scores both result kinds.
		mm := EvaluateAlignment(mRes, testPos, neg)
		pm := EvaluateAlignment(pRes, testPos, neg)
		if mm != pm {
			t.Fatalf("budget %d: metrics diverge: %+v vs %+v", budget, pm, mm)
		}
	}
}

// Property: K>1 output respects the global one-to-one constraint and
// stays within ε of the monolithic F1 on the small dataset.
func TestPartitionedSmallDatasetQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("SmallDataset alignment in -short mode")
	}
	pair, err := GenerateDataset(SmallDataset())
	if err != nil {
		t.Fatal(err)
	}
	anchors := pair.Anchors
	nTrain := len(anchors) / 2
	trainPos := anchors[:nTrain]
	testPos := anchors[nTrain:]
	neg, err := SampleNegatives(pair, 10*len(anchors), rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	candidates := append(append([]Anchor{}, testPos...), neg...)

	mono, err := New(pair, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	mRes, err := mono.Align(trainPos, candidates, nil)
	if err != nil {
		t.Fatal(err)
	}
	mF1 := EvaluateAlignment(mRes, testPos, neg).F1

	part, err := NewPartitioned(pair, Options{Seed: 9, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	pRes, err := part.Align(trainPos, candidates, nil)
	if err != nil {
		t.Fatal(err)
	}
	seenI, seenJ := map[int]bool{}, map[int]bool{}
	for _, a := range pRes.PredictedAnchors() {
		if seenI[a.I] || seenJ[a.J] {
			t.Fatalf("one-to-one violated at (%d,%d)", a.I, a.J)
		}
		seenI[a.I] = true
		seenJ[a.J] = true
	}
	pF1 := EvaluateAlignment(pRes, testPos, neg).F1
	const eps = 0.08
	if math.Abs(pF1-mF1) > eps {
		t.Errorf("partitioned F1 %.4f drifted more than %.2f from monolithic %.4f", pF1, eps, mF1)
	}
	if len(pRes.Reports) != 4 {
		t.Errorf("%d partition reports, want 4", len(pRes.Reports))
	}
}
