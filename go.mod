module github.com/activeiter/activeiter

go 1.21
