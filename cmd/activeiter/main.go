// Command activeiter aligns two social networks: it loads (or generates)
// an aligned pair, hides a fraction of the ground-truth anchors, trains
// the ActiveIter model on the rest, and reports the inferred anchor
// links with evaluation metrics.
//
// Usage:
//
//	activeiter -preset small -budget 50 -train-frac 0.1 -np-ratio 20
//	activeiter -data pair.json -budget 100 -strategy conflict
//
// Worker mode turns the binary into a distributed-alignment shard
// worker (see README §Distributed alignment): `-worker` speaks the wire
// protocol on stdin/stdout for a coordinator that spawned it,
// `-worker-listen addr` accepts coordinator TCP connections instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	activeiter "github.com/activeiter/activeiter"
	"github.com/activeiter/activeiter/internal/telemetry"
)

func main() {
	dataFile := flag.String("data", "", "aligned pair JSON (from cmd/datagen); empty generates from -preset")
	preset := flag.String("preset", "small", "dataset preset when -data is empty: tiny, small, paper, full")
	trainFrac := flag.Float64("train-frac", 0.1, "fraction of ground-truth anchors used as labeled training data")
	npRatio := flag.Int("np-ratio", 20, "negatives sampled per positive (the paper's θ)")
	autoCands := flag.Bool("auto-candidates", false, "propose candidates from meta diagram evidence instead of sampling negatives")
	perUser := flag.Int("per-user", 5, "candidates proposed per user with -auto-candidates")
	budget := flag.Int("budget", 0, "active-learning query budget (0 = Iter-MPMD)")
	batch := flag.Int("batch", 5, "query batch size per round (the paper's k)")
	strategy := flag.String("strategy", "conflict", "query strategy: conflict, random, uncertainty")
	pathsOnly := flag.Bool("paths-only", false, "use meta path features only (no meta diagrams)")
	exact := flag.Bool("exact", false, "use exact Hungarian selection instead of greedy")
	seed := flag.Int64("seed", 1, "random seed")
	showTop := flag.Int("show", 10, "print this many predicted anchors")
	worker := flag.Bool("worker", false, "run as a distributed-alignment worker on stdin/stdout (all other flags ignored)")
	workerListen := flag.String("worker-listen", "", "run as a distributed-alignment worker accepting coordinator TCP connections on this address")
	saveSnapshot := flag.String("save-snapshot", "", "persist the trained alignment as a serving artifact at this path (see docs/SNAPSHOT.md; serve it with alignd)")
	metricsListen := flag.String("metrics-listen", "", "serve Prometheus text metrics on this address at /metricsz (worker modes: shard/seed/cache counters; empty = off)")
	pprofListen := flag.String("pprof-listen", "", "serve net/http/pprof profiles on this address at /debug/pprof/ (off by default; never exposed on the wire-protocol port)")
	logLevel := flag.String("log-level", "", "structured log level: debug, info, warn, error (empty = info)")
	flag.Parse()

	if *logLevel != "" {
		if err := telemetry.SetLogLevel(*logLevel); err != nil {
			fatal(err)
		}
	}
	if *metricsListen != "" {
		addr, err := telemetry.ListenAndServeDebug(*metricsListen, telemetry.MetricsMux(telemetry.Default))
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		fmt.Fprintf(os.Stderr, "activeiter: metrics on http://%s/metricsz\n", addr)
	}
	if *pprofListen != "" {
		addr, err := telemetry.ListenAndServeDebug(*pprofListen, telemetry.PprofMux())
		if err != nil {
			fatal(fmt.Errorf("pprof listener: %w", err))
		}
		fmt.Fprintf(os.Stderr, "activeiter: pprof on http://%s/debug/pprof/\n", addr)
	}

	if *worker {
		// Stdout belongs to the wire protocol in worker mode; anything
		// human-readable goes to stderr.
		err := activeiter.ServeWorker(struct {
			io.Reader
			io.Writer
		}{os.Stdin, os.Stdout})
		if err != nil && err != io.EOF {
			fatal(err)
		}
		return
	}
	if *workerListen != "" {
		fmt.Fprintf(os.Stderr, "activeiter: worker listening on %s\n", *workerListen)
		// A long-lived worker dies by operator signal far more often than
		// by listener failure; turn SIGINT/SIGTERM into a clean exit so
		// process supervisors see an orderly shutdown, not a crash.
		errc := make(chan error, 1)
		go func() { errc <- activeiter.ListenAndServeWorker(*workerListen) }()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		select {
		case err := <-errc:
			fatal(err)
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "activeiter: %v: worker listener shutting down\n", s)
		}
		return
	}

	pair, err := loadPair(*dataFile, *preset)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	anchors := append([]activeiter.Anchor{}, pair.Anchors...)
	rng.Shuffle(len(anchors), func(i, j int) { anchors[i], anchors[j] = anchors[j], anchors[i] })
	nTrain := int(float64(len(anchors)) * *trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	trainPos, testPos := anchors[:nTrain], anchors[nTrain:]
	neg, err := activeiter.SampleNegatives(pair, *npRatio*len(anchors), rng)
	if err != nil {
		fatal(err)
	}

	opts := activeiter.Options{
		Budget:         *budget,
		BatchSize:      *batch,
		Strategy:       activeiter.StrategyKind(*strategy),
		ExactSelection: *exact,
		Seed:           *seed,
	}
	if *pathsOnly {
		opts.Features = activeiter.PathFeatures
	}
	aligner, err := activeiter.New(pair, opts)
	if err != nil {
		fatal(err)
	}
	var cands []activeiter.Anchor
	if *autoCands {
		cands, err = aligner.CandidatePairs(trainPos, *perUser)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pool: %d training anchors, %d hidden anchors, %d diagram-proposed candidates\n",
			len(trainPos), len(testPos), len(cands))
	} else {
		cands = append(append([]activeiter.Anchor{}, testPos...), neg...)
		fmt.Printf("pool: %d training anchors, %d hidden anchors, %d sampled negatives\n",
			len(trainPos), len(testPos), len(neg))
	}
	res, err := aligner.Align(trainPos, cands, activeiter.NewTruthOracle(pair))
	if err != nil {
		fatal(err)
	}
	m := activeiter.EvaluateAlignment(res, testPos, neg)
	fmt.Printf("queries spent: %d\n", res.QueryCount())
	fmt.Printf("F1=%.3f  Precision=%.3f  Recall=%.3f  Accuracy=%.3f  (TP=%d FP=%d FN=%d TN=%d)\n",
		m.F1, m.Precision, m.Recall, m.Accuracy, m.TP, m.FP, m.FN, m.TN)

	if *saveSnapshot != "" {
		snap, err := activeiter.BuildSnapshot(activeiter.SnapshotMonolithic, pair, res, opts)
		if err != nil {
			fatal(err)
		}
		if err := activeiter.WriteSnapshot(snap, *saveSnapshot); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot: wrote %s (%d matches, %d pool links; serve with: alignd -snapshot %s)\n",
			*saveSnapshot, len(snap.Matches), len(snap.Pool), *saveSnapshot)
	}

	pred := res.PredictedAnchors()
	fmt.Printf("predicted %d anchor links; first %d:\n", len(pred), min(*showTop, len(pred)))
	truth := pair.AnchorSet()
	for i, a := range pred {
		if i >= *showTop {
			break
		}
		mark := "✗"
		if truth[key(a)] {
			mark = "✓"
		}
		fmt.Printf("  %s %s ↔ %s\n", mark,
			pair.G1.NodeID(activeiter.User, a.I), pair.G2.NodeID(activeiter.User, a.J))
	}
}

func key(a activeiter.Anchor) int64 { return int64(a.I)<<31 | int64(a.J) }

func loadPair(dataFile, preset string) (*activeiter.AlignedPair, error) {
	if dataFile != "" {
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return activeiter.ReadAlignedJSON(f)
	}
	var cfg activeiter.GeneratorConfig
	switch preset {
	case "tiny":
		cfg = activeiter.TinyDataset()
	case "small":
		cfg = activeiter.SmallDataset()
	case "paper":
		cfg = activeiter.PaperShapeDataset()
	case "full":
		cfg = activeiter.FullScaleDataset()
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	return activeiter.GenerateDataset(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "activeiter:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
