// Command datagen generates a synthetic aligned social network pair and
// writes it as JSON, substituting for the paper's Foursquare–Twitter
// crawl (DESIGN.md §3).
//
// Usage:
//
//	datagen -preset small -seed 7 -out pair.json
//	datagen -preset paper | gzip > pair.json.gz
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	activeiter "github.com/activeiter/activeiter"
)

func main() {
	preset := flag.String("preset", "small", "dataset preset: tiny, small, paper, full, xl")
	seed := flag.Int64("seed", 0, "override the preset's seed when non-zero")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	cfg, err := presetConfig(*preset)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	pair, err := activeiter.GenerateDataset(cfg)
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := activeiter.WriteAlignedJSON(pair, w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated: %s\n", pair.G1.Stats())
	fmt.Fprintf(os.Stderr, "           %s\n", pair.G2.Stats())
	fmt.Fprintf(os.Stderr, "           anchors=%d\n", len(pair.Anchors))
}

func presetConfig(name string) (activeiter.GeneratorConfig, error) {
	switch name {
	case "tiny":
		return activeiter.TinyDataset(), nil
	case "small":
		return activeiter.SmallDataset(), nil
	case "paper":
		return activeiter.PaperShapeDataset(), nil
	case "full":
		return activeiter.FullScaleDataset(), nil
	case "xl":
		return activeiter.XLScaleDataset(), nil
	default:
		return activeiter.GeneratorConfig{}, fmt.Errorf("unknown preset %q (want tiny, small, paper, full or xl)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
