// Command experiments regenerates the paper's tables and figures
// (BENCH_PR*.json record measured outputs and the paper-vs-measured
// comparison).
//
// Usage:
//
//	experiments -exp table3 -preset small
//	experiments -exp all -preset paper -workers 16
//	experiments -exp distributed -preset full -partitions 4 \
//	    -distrib-workers 4 -distrib-rounds 3 -distrib-worker-cmd ./activeiter
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	activeiter "github.com/activeiter/activeiter"
	"github.com/activeiter/activeiter/internal/experiments"
	"github.com/activeiter/activeiter/internal/telemetry"
)

// overrides carries the flag values that may replace preset fields. Each
// value only applies when its flag was explicitly set on the command
// line — sentinel checks like "non-zero means set" would make `-seed 0`
// or `-workers 0` silently keep the preset value.
type overrides struct {
	workers        int
	seed           int64
	partitions     int
	distribWorkers int
	distribRounds  int
	distribChaos   int64
	set            map[string]bool // flag name → explicitly set
}

// apply overwrites the preset fields whose flags were explicitly set.
func (o overrides) apply(pre *experiments.Preset) {
	if o.set["workers"] {
		pre.Workers = o.workers
	}
	if o.set["seed"] {
		pre.Seed = o.seed
	}
	if o.set["partitions"] {
		pre.Partitions = o.partitions
	}
}

// validate rejects flag values that would be silently misread
// downstream; the zero values stay legal because `apply` and
// `distributedConfig` only read explicitly-set flags.
func (o overrides) validate() error {
	if o.set["distrib-workers"] && o.distribWorkers < 0 {
		return fmt.Errorf("negative -distrib-workers %d (use 0 for the preset default)", o.distribWorkers)
	}
	if o.set["distrib-rounds"] && o.distribRounds < 0 {
		return fmt.Errorf("negative -distrib-rounds %d (use 0 or 1 for single-shot dispatch)", o.distribRounds)
	}
	return nil
}

// distributedConfig resolves the distributed experiment's knobs: the
// worker cap only overrides the preset when -distrib-workers was
// explicitly on the command line (flag.Visit detection, like -seed).
func (o overrides) distributedConfig(workerCmd string) experiments.DistributedConfig {
	cfg := experiments.DistributedConfig{}
	if o.set["distrib-workers"] {
		cfg.Workers = o.distribWorkers
	}
	if o.set["distrib-rounds"] {
		cfg.Rounds = o.distribRounds
	}
	if o.set["distrib-chaos"] {
		cfg.ChaosSeed = o.distribChaos
	}
	if workerCmd != "" {
		cfg.WorkerCmd = workerCmd
		cfg.WorkerArgs = []string{"-worker"}
	}
	return cfg
}

func main() {
	exp := flag.String("exp", "all", "experiment: table2, table3, table4, fig3, fig4, fig5, ablation-features, ablation-query, ablation-matching, ablation-noise, ablation-words, oracle-noise, unsupervised, stability, scalability, distributed, all")
	preset := flag.String("preset", "small", "protocol preset: tiny, small, paper, full, xl")
	workers := flag.Int("workers", 0, "override parallel cell workers (0 = serial)")
	seed := flag.Int64("seed", 0, "override the preset seed")
	partitions := flag.Int("partitions", 0, "run the PU family of cell-based experiments (table3/table4/fig5/stability/ablation-query) and scalability through partitioned alignment with this many partitions (≤1 = monolithic; fig3/fig4 and the remaining ablations trace training internals and stay monolithic)")
	distribWorkers := flag.Int("distrib-workers", 0, "distributed experiment: concurrent shard workers (0 = preset default)")
	distribWorkerCmd := flag.String("distrib-worker-cmd", "", "distributed experiment: worker binary to spawn per connection (runs with -worker; empty = in-process loopback transport only)")
	distribRounds := flag.Int("distrib-rounds", 0, "distributed experiment: split the budget across this many sticky-session retrain rounds (≤1 = single-shot dispatch); adds full-reship and delta-shipping session modes")
	distribChaos := flag.Int64("distrib-chaos", 0, "distributed experiment: add a fault-injected loopback mode seeded with this value (refused dials, mid-frame drops, corruption, crashes); the alignment must match the healthy modes, with the retries/fallbacks columns showing the recovery work (0 = off)")
	saveSnapshot := flag.String("save-snapshot", "", "train one alignment on the preset (facade chosen by -partitions/-distrib-* flags) and persist it as a serving artifact at this path instead of running experiments (serve it with alignd)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the distributed experiment's shard spans (coordinator + workers, stitched across processes) to this path; open it at chrome://tracing or ui.perfetto.dev")
	metricsListen := flag.String("metrics-listen", "", "serve Prometheus text metrics on this address at /metricsz while experiments run (empty = off)")
	logLevel := flag.String("log-level", "", "structured log level: debug, info, warn, error (empty = info)")
	flag.Parse()

	if *logLevel != "" {
		if err := telemetry.SetLogLevel(*logLevel); err != nil {
			fatal(err)
		}
	}
	if *metricsListen != "" {
		addr, err := telemetry.ListenAndServeDebug(*metricsListen, telemetry.MetricsMux(telemetry.Default))
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		fmt.Fprintf(os.Stderr, "experiments: metrics on http://%s/metricsz\n", addr)
	}

	pre, err := presetByName(*preset)
	if err != nil {
		fatal(err)
	}
	ov := overrides{workers: *workers, seed: *seed, partitions: *partitions, distribWorkers: *distribWorkers, distribRounds: *distribRounds, distribChaos: *distribChaos, set: map[string]bool{}}
	flag.Visit(func(f *flag.Flag) { ov.set[f.Name] = true })
	if err := ov.validate(); err != nil {
		fatal(err)
	}
	ov.apply(&pre)
	distribCfg := ov.distributedConfig(*distribWorkerCmd)
	if *traceOut != "" {
		distribCfg.Tracer = telemetry.NewTracer("coordinator")
	}

	if *saveSnapshot != "" {
		if err := runSaveSnapshot(pre, distribCfg, *saveSnapshot); err != nil {
			fatal(err)
		}
		return
	}

	type runner struct {
		name string
		run  func(experiments.Preset) (*experiments.Table, error)
	}
	runners := []runner{
		{"table2", experiments.RunTable2},
		{"table3", experiments.RunTable3},
		{"table4", experiments.RunTable4},
		{"fig3", func(p experiments.Preset) (*experiments.Table, error) {
			_, tab, err := experiments.RunFig3(p)
			return tab, err
		}},
		{"fig4", func(p experiments.Preset) (*experiments.Table, error) {
			_, tab, err := experiments.RunFig4(p)
			return tab, err
		}},
		{"fig5", experiments.RunFig5},
		{"ablation-features", experiments.RunFeatureAblation},
		{"ablation-query", experiments.RunQueryAblation},
		{"ablation-matching", experiments.RunMatchingAblation},
		{"ablation-noise", experiments.RunOracleNoiseAblation},
		{"ablation-words", experiments.RunWordFeatureAblation},
		{"oracle-noise", experiments.RunOracleNoiseMatrix},
		{"unsupervised", experiments.RunUnsupervisedComparison},
		{"stability", func(p experiments.Preset) (*experiments.Table, error) {
			return experiments.RunStability(p, 3)
		}},
		{"scalability", experiments.RunScalability},
		{"distributed", func(p experiments.Preset) (*experiments.Table, error) {
			return experiments.RunDistributedWith(p, distribCfg)
		}},
	}
	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		start := time.Now()
		tab, err := r.run(pre)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.name, err))
		}
		tab.Render(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if *traceOut != "" {
		if err := distribCfg.Tracer.WriteChromeFile(*traceOut); err != nil {
			fatal(fmt.Errorf("write trace: %w", err))
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d spans to %s\n", len(distribCfg.Tracer.Spans()), *traceOut)
	}
}

func presetByName(name string) (experiments.Preset, error) {
	switch name {
	case "tiny":
		return experiments.TinyPreset(), nil
	case "small":
		return experiments.SmallPreset(), nil
	case "paper":
		return experiments.PaperPreset(), nil
	case "full":
		return experiments.FullPreset(), nil
	case "xl":
		return experiments.XLPreset(), nil
	default:
		return experiments.Preset{}, fmt.Errorf("unknown preset %q (want tiny, small, paper, full or xl)", name)
	}
}

// snapshotProtocol is the -save-snapshot export's training protocol,
// resolved from the preset: a fixed 25% train split, the preset's
// fixed NP-ratio (capped so crawl-scale presets stay exportable in
// minutes), its largest query budget, and the facade the flags imply.
type snapshotProtocol struct {
	TrainFrac float64
	NPRatio   int
	Budget    int
	Facade    string
}

// snapshotNPRatioCap bounds the sampled negative pool of an export run.
const snapshotNPRatioCap = 20

// snapshotProtocolFor resolves the export protocol. The facade follows
// the same flags the experiments obey: any -distrib-* setting means
// distributed (subprocess workers when a worker command is given,
// loopback otherwise), -partitions > 1 means partitioned, else the
// monolithic aligner.
func snapshotProtocolFor(pre experiments.Preset, cfg experiments.DistributedConfig) snapshotProtocol {
	p := snapshotProtocol{TrainFrac: 0.25, NPRatio: pre.FixedTheta, Facade: activeiter.SnapshotMonolithic}
	if p.NPRatio <= 0 || p.NPRatio > snapshotNPRatioCap {
		p.NPRatio = snapshotNPRatioCap
	}
	if len(pre.Budgets) > 0 {
		p.Budget = pre.Budgets[len(pre.Budgets)-1]
	}
	switch {
	case cfg.WorkerCmd != "" || cfg.Rounds > 1 || cfg.Workers > 0:
		p.Facade = activeiter.SnapshotDistributed
	case pre.Partitions > 1:
		p.Facade = activeiter.SnapshotPartitioned
	}
	return p
}

// runSaveSnapshot trains one alignment on the preset through the
// flag-selected facade and persists it as a serving artifact.
func runSaveSnapshot(pre experiments.Preset, cfg experiments.DistributedConfig, path string) error {
	proto := snapshotProtocolFor(pre, cfg)
	pair, err := activeiter.GenerateDataset(pre.Data)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(pre.Seed))
	anchors := append([]activeiter.Anchor{}, pair.Anchors...)
	rng.Shuffle(len(anchors), func(i, j int) { anchors[i], anchors[j] = anchors[j], anchors[i] })
	nTrain := int(float64(len(anchors)) * proto.TrainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	trainPos, testPos := anchors[:nTrain], anchors[nTrain:]
	neg, err := activeiter.SampleNegatives(pair, proto.NPRatio*len(anchors), rng)
	if err != nil {
		return err
	}
	cands := append(append([]activeiter.Anchor{}, testPos...), neg...)
	opts := activeiter.Options{
		Budget:     proto.Budget,
		Seed:       pre.Seed,
		Partitions: pre.Partitions,
		Workers:    cfg.Workers,
		Rounds:     cfg.Rounds,
	}
	oracle := activeiter.NewTruthOracle(pair)

	var res activeiter.AlignmentResult
	start := time.Now()
	switch proto.Facade {
	case activeiter.SnapshotMonolithic:
		a, err := activeiter.New(pair, opts)
		if err != nil {
			return err
		}
		res, err = a.Align(trainPos, cands, oracle)
		if err != nil {
			return err
		}
	case activeiter.SnapshotPartitioned:
		pa, err := activeiter.NewPartitioned(pair, opts)
		if err != nil {
			return err
		}
		res, err = pa.Align(trainPos, cands, oracle)
		if err != nil {
			return err
		}
	default:
		transport := activeiter.NewLoopbackTransport()
		if cfg.WorkerCmd != "" {
			transport = activeiter.NewWorkerProcessTransport(cfg.WorkerCmd, cfg.WorkerArgs...)
		}
		da, err := activeiter.NewDistributed(pair, opts, transport)
		if err != nil {
			return err
		}
		res, err = da.Align(trainPos, cands, oracle)
		if err != nil {
			return err
		}
	}
	trained := time.Since(start)

	snap, err := activeiter.BuildSnapshot(proto.Facade, pair, res, opts)
	if err != nil {
		return err
	}
	if err := activeiter.WriteSnapshot(snap, path); err != nil {
		return err
	}
	m := activeiter.EvaluateAlignment(res, testPos, neg)
	fmt.Printf("snapshot: %s facade on preset %s: trained in %v, F1=%.4f\n",
		proto.Facade, pre.Name, trained.Round(time.Millisecond), m.F1)
	fmt.Printf("snapshot: wrote %s (%d matches, %d pool links, %d queried labels)\n",
		path, len(snap.Matches), len(snap.Pool), len(snap.Labels))
	fmt.Printf("snapshot: serve with: alignd -snapshot %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
