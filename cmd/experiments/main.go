// Command experiments regenerates the paper's tables and figures
// (BENCH_PR*.json record measured outputs and the paper-vs-measured
// comparison).
//
// Usage:
//
//	experiments -exp table3 -preset small
//	experiments -exp all -preset paper -workers 16
//	experiments -exp distributed -preset full -partitions 4 \
//	    -distrib-workers 4 -distrib-rounds 3 -distrib-worker-cmd ./activeiter
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/activeiter/activeiter/internal/experiments"
)

// overrides carries the flag values that may replace preset fields. Each
// value only applies when its flag was explicitly set on the command
// line — sentinel checks like "non-zero means set" would make `-seed 0`
// or `-workers 0` silently keep the preset value.
type overrides struct {
	workers        int
	seed           int64
	partitions     int
	distribWorkers int
	distribRounds  int
	set            map[string]bool // flag name → explicitly set
}

// apply overwrites the preset fields whose flags were explicitly set.
func (o overrides) apply(pre *experiments.Preset) {
	if o.set["workers"] {
		pre.Workers = o.workers
	}
	if o.set["seed"] {
		pre.Seed = o.seed
	}
	if o.set["partitions"] {
		pre.Partitions = o.partitions
	}
}

// validate rejects flag values that would be silently misread
// downstream; the zero values stay legal because `apply` and
// `distributedConfig` only read explicitly-set flags.
func (o overrides) validate() error {
	if o.set["distrib-workers"] && o.distribWorkers < 0 {
		return fmt.Errorf("negative -distrib-workers %d (use 0 for the preset default)", o.distribWorkers)
	}
	if o.set["distrib-rounds"] && o.distribRounds < 0 {
		return fmt.Errorf("negative -distrib-rounds %d (use 0 or 1 for single-shot dispatch)", o.distribRounds)
	}
	return nil
}

// distributedConfig resolves the distributed experiment's knobs: the
// worker cap only overrides the preset when -distrib-workers was
// explicitly on the command line (flag.Visit detection, like -seed).
func (o overrides) distributedConfig(workerCmd string) experiments.DistributedConfig {
	cfg := experiments.DistributedConfig{}
	if o.set["distrib-workers"] {
		cfg.Workers = o.distribWorkers
	}
	if o.set["distrib-rounds"] {
		cfg.Rounds = o.distribRounds
	}
	if workerCmd != "" {
		cfg.WorkerCmd = workerCmd
		cfg.WorkerArgs = []string{"-worker"}
	}
	return cfg
}

func main() {
	exp := flag.String("exp", "all", "experiment: table2, table3, table4, fig3, fig4, fig5, ablation-features, ablation-query, ablation-matching, ablation-noise, ablation-words, unsupervised, stability, scalability, distributed, all")
	preset := flag.String("preset", "small", "protocol preset: tiny, small, paper, full, xl")
	workers := flag.Int("workers", 0, "override parallel cell workers (0 = serial)")
	seed := flag.Int64("seed", 0, "override the preset seed")
	partitions := flag.Int("partitions", 0, "run the PU family of cell-based experiments (table3/table4/fig5/stability/ablation-query) and scalability through partitioned alignment with this many partitions (≤1 = monolithic; fig3/fig4 and the remaining ablations trace training internals and stay monolithic)")
	distribWorkers := flag.Int("distrib-workers", 0, "distributed experiment: concurrent shard workers (0 = preset default)")
	distribWorkerCmd := flag.String("distrib-worker-cmd", "", "distributed experiment: worker binary to spawn per connection (runs with -worker; empty = in-process loopback transport only)")
	distribRounds := flag.Int("distrib-rounds", 0, "distributed experiment: split the budget across this many sticky-session retrain rounds (≤1 = single-shot dispatch); adds full-reship and delta-shipping session modes")
	flag.Parse()

	pre, err := presetByName(*preset)
	if err != nil {
		fatal(err)
	}
	ov := overrides{workers: *workers, seed: *seed, partitions: *partitions, distribWorkers: *distribWorkers, distribRounds: *distribRounds, set: map[string]bool{}}
	flag.Visit(func(f *flag.Flag) { ov.set[f.Name] = true })
	if err := ov.validate(); err != nil {
		fatal(err)
	}
	ov.apply(&pre)
	distribCfg := ov.distributedConfig(*distribWorkerCmd)

	type runner struct {
		name string
		run  func(experiments.Preset) (*experiments.Table, error)
	}
	runners := []runner{
		{"table2", experiments.RunTable2},
		{"table3", experiments.RunTable3},
		{"table4", experiments.RunTable4},
		{"fig3", func(p experiments.Preset) (*experiments.Table, error) {
			_, tab, err := experiments.RunFig3(p)
			return tab, err
		}},
		{"fig4", func(p experiments.Preset) (*experiments.Table, error) {
			_, tab, err := experiments.RunFig4(p)
			return tab, err
		}},
		{"fig5", experiments.RunFig5},
		{"ablation-features", experiments.RunFeatureAblation},
		{"ablation-query", experiments.RunQueryAblation},
		{"ablation-matching", experiments.RunMatchingAblation},
		{"ablation-noise", experiments.RunOracleNoiseAblation},
		{"ablation-words", experiments.RunWordFeatureAblation},
		{"unsupervised", experiments.RunUnsupervisedComparison},
		{"stability", func(p experiments.Preset) (*experiments.Table, error) {
			return experiments.RunStability(p, 3)
		}},
		{"scalability", experiments.RunScalability},
		{"distributed", func(p experiments.Preset) (*experiments.Table, error) {
			return experiments.RunDistributedWith(p, distribCfg)
		}},
	}
	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		start := time.Now()
		tab, err := r.run(pre)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.name, err))
		}
		tab.Render(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func presetByName(name string) (experiments.Preset, error) {
	switch name {
	case "tiny":
		return experiments.TinyPreset(), nil
	case "small":
		return experiments.SmallPreset(), nil
	case "paper":
		return experiments.PaperPreset(), nil
	case "full":
		return experiments.FullPreset(), nil
	case "xl":
		return experiments.XLPreset(), nil
	default:
		return experiments.Preset{}, fmt.Errorf("unknown preset %q (want tiny, small, paper, full or xl)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
