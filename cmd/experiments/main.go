// Command experiments regenerates the paper's tables and figures (see
// EXPERIMENTS.md for recorded outputs and the paper-vs-measured
// comparison).
//
// Usage:
//
//	experiments -exp table3 -preset small
//	experiments -exp all -preset paper -workers 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/activeiter/activeiter/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, table3, table4, fig3, fig4, fig5, ablation-features, ablation-query, ablation-matching, ablation-noise, ablation-words, unsupervised, stability, all")
	preset := flag.String("preset", "small", "protocol preset: tiny, small, paper")
	workers := flag.Int("workers", 0, "override parallel cell workers when > 0")
	seed := flag.Int64("seed", 0, "override the preset seed when non-zero")
	flag.Parse()

	pre, err := presetByName(*preset)
	if err != nil {
		fatal(err)
	}
	if *workers > 0 {
		pre.Workers = *workers
	}
	if *seed != 0 {
		pre.Seed = *seed
	}

	type runner struct {
		name string
		run  func(experiments.Preset) (*experiments.Table, error)
	}
	runners := []runner{
		{"table2", experiments.RunTable2},
		{"table3", experiments.RunTable3},
		{"table4", experiments.RunTable4},
		{"fig3", func(p experiments.Preset) (*experiments.Table, error) {
			_, tab, err := experiments.RunFig3(p)
			return tab, err
		}},
		{"fig4", func(p experiments.Preset) (*experiments.Table, error) {
			_, tab, err := experiments.RunFig4(p)
			return tab, err
		}},
		{"fig5", experiments.RunFig5},
		{"ablation-features", experiments.RunFeatureAblation},
		{"ablation-query", experiments.RunQueryAblation},
		{"ablation-matching", experiments.RunMatchingAblation},
		{"ablation-noise", experiments.RunOracleNoiseAblation},
		{"ablation-words", experiments.RunWordFeatureAblation},
		{"unsupervised", experiments.RunUnsupervisedComparison},
		{"stability", func(p experiments.Preset) (*experiments.Table, error) {
			return experiments.RunStability(p, 3)
		}},
	}
	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		start := time.Now()
		tab, err := r.run(pre)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.name, err))
		}
		tab.Render(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func presetByName(name string) (experiments.Preset, error) {
	switch name {
	case "tiny":
		return experiments.TinyPreset(), nil
	case "small":
		return experiments.SmallPreset(), nil
	case "paper":
		return experiments.PaperPreset(), nil
	default:
		return experiments.Preset{}, fmt.Errorf("unknown preset %q (want tiny, small or paper)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
