package main

import (
	"testing"

	"github.com/activeiter/activeiter/internal/experiments"
)

// Regression: the old code treated 0 as "flag not set", so `-seed 0` and
// `-workers 0` silently kept the preset values. Overrides must apply
// exactly when the flag was explicitly present on the command line.
func TestOverridesApplyOnlyExplicitFlags(t *testing.T) {
	base := experiments.SmallPreset()

	// Explicit zeros must overwrite the preset values.
	pre := base
	ov := overrides{workers: 0, seed: 0, set: map[string]bool{"workers": true, "seed": true}}
	ov.apply(&pre)
	if pre.Seed != 0 {
		t.Errorf("explicit -seed 0 kept preset seed %d", pre.Seed)
	}
	if pre.Workers != 0 {
		t.Errorf("explicit -workers 0 kept preset workers %d", pre.Workers)
	}

	// Unset flags must not touch the preset, whatever their values.
	pre = base
	ov = overrides{workers: 99, seed: 99, partitions: 99, set: map[string]bool{}}
	ov.apply(&pre)
	if pre.Seed != base.Seed || pre.Workers != base.Workers || pre.Partitions != base.Partitions {
		t.Errorf("unset flags mutated preset: %+v", pre)
	}

	// And a normal non-zero override still works.
	pre = base
	ov = overrides{partitions: 4, set: map[string]bool{"partitions": true}}
	ov.apply(&pre)
	if pre.Partitions != 4 {
		t.Errorf("partitions override = %d, want 4", pre.Partitions)
	}
}

// The distributed flags follow the same explicit-set convention:
// negative worker counts are rejected, `-distrib-workers 0` set
// explicitly means "preset default" (0 passes through), and an unset
// flag leaves the config at the preset-default sentinel regardless of
// the parsed value.
func TestDistributedFlagValidation(t *testing.T) {
	// Negative is only an error when the flag was actually given.
	ov := overrides{distribWorkers: -1, set: map[string]bool{"distrib-workers": true}}
	if err := ov.validate(); err == nil {
		t.Error("explicit -distrib-workers -1 accepted")
	}
	ov = overrides{distribWorkers: -1, set: map[string]bool{}}
	if err := ov.validate(); err != nil {
		t.Errorf("unset distrib-workers validated: %v", err)
	}

	// Explicitly set values reach the config; unset ones do not.
	ov = overrides{distribWorkers: 3, set: map[string]bool{"distrib-workers": true}}
	if got := ov.distributedConfig("").Workers; got != 3 {
		t.Errorf("explicit -distrib-workers 3 resolved to %d", got)
	}
	ov = overrides{distribWorkers: 3, set: map[string]bool{}}
	if got := ov.distributedConfig("").Workers; got != 0 {
		t.Errorf("unset -distrib-workers leaked %d into the config", got)
	}

	// The worker command implies -worker args for the spawned binary.
	cfg := overrides{set: map[string]bool{}}.distributedConfig("/usr/bin/activeiter")
	if cfg.WorkerCmd != "/usr/bin/activeiter" || len(cfg.WorkerArgs) != 1 || cfg.WorkerArgs[0] != "-worker" {
		t.Errorf("worker command config = %+v", cfg)
	}
}

// -distrib-rounds follows the same explicit-set convention as the other
// distributed flags: negative rejected only when given, explicit values
// reach the config, unset values do not leak.
func TestDistribRoundsFlag(t *testing.T) {
	ov := overrides{distribRounds: -1, set: map[string]bool{"distrib-rounds": true}}
	if err := ov.validate(); err == nil {
		t.Error("explicit -distrib-rounds -1 accepted")
	}
	ov = overrides{distribRounds: -1, set: map[string]bool{}}
	if err := ov.validate(); err != nil {
		t.Errorf("unset distrib-rounds validated: %v", err)
	}
	ov = overrides{distribRounds: 3, set: map[string]bool{"distrib-rounds": true}}
	if got := ov.distributedConfig("").Rounds; got != 3 {
		t.Errorf("explicit -distrib-rounds 3 resolved to %d", got)
	}
	ov = overrides{distribRounds: 3, set: map[string]bool{}}
	if got := ov.distributedConfig("").Rounds; got != 0 {
		t.Errorf("unset -distrib-rounds leaked %d into the config", got)
	}
}

// -save-snapshot resolves its facade from the same flags the
// experiments obey: distributed wins whenever any -distrib-* knob is
// set, partitioned when the preset shards, monolithic otherwise — and
// the protocol caps the NP-ratio so crawl presets stay exportable.
func TestSnapshotProtocolResolution(t *testing.T) {
	pre := experiments.SmallPreset()

	p := snapshotProtocolFor(pre, experiments.DistributedConfig{})
	if p.Facade != "monolithic" {
		t.Errorf("plain preset facade = %q", p.Facade)
	}
	if p.Budget != pre.Budgets[len(pre.Budgets)-1] {
		t.Errorf("budget = %d, want the preset's largest (%d)", p.Budget, pre.Budgets[len(pre.Budgets)-1])
	}
	if p.NPRatio != snapshotNPRatioCap {
		t.Errorf("NP-ratio = %d, want capped at %d (preset theta %d)", p.NPRatio, snapshotNPRatioCap, pre.FixedTheta)
	}

	pre.Partitions = 4
	if p := snapshotProtocolFor(pre, experiments.DistributedConfig{}); p.Facade != "partitioned" {
		t.Errorf("sharded preset facade = %q", p.Facade)
	}
	if p := snapshotProtocolFor(pre, experiments.DistributedConfig{WorkerCmd: "/bin/worker"}); p.Facade != "distributed" {
		t.Errorf("worker-cmd facade = %q", p.Facade)
	}
	if p := snapshotProtocolFor(pre, experiments.DistributedConfig{Rounds: 3}); p.Facade != "distributed" {
		t.Errorf("rounds facade = %q", p.Facade)
	}
	if p := snapshotProtocolFor(pre, experiments.DistributedConfig{Workers: 2}); p.Facade != "distributed" {
		t.Errorf("distrib-workers facade = %q", p.Facade)
	}

	// A preset with a small theta keeps it.
	tiny := experiments.TinyPreset()
	if p := snapshotProtocolFor(tiny, experiments.DistributedConfig{}); p.NPRatio != tiny.FixedTheta && tiny.FixedTheta <= snapshotNPRatioCap {
		t.Errorf("tiny NP-ratio = %d, want preset theta %d", p.NPRatio, tiny.FixedTheta)
	}
}
