package main

import (
	"testing"

	"github.com/activeiter/activeiter/internal/experiments"
)

// Regression: the old code treated 0 as "flag not set", so `-seed 0` and
// `-workers 0` silently kept the preset values. Overrides must apply
// exactly when the flag was explicitly present on the command line.
func TestOverridesApplyOnlyExplicitFlags(t *testing.T) {
	base := experiments.SmallPreset()

	// Explicit zeros must overwrite the preset values.
	pre := base
	ov := overrides{workers: 0, seed: 0, set: map[string]bool{"workers": true, "seed": true}}
	ov.apply(&pre)
	if pre.Seed != 0 {
		t.Errorf("explicit -seed 0 kept preset seed %d", pre.Seed)
	}
	if pre.Workers != 0 {
		t.Errorf("explicit -workers 0 kept preset workers %d", pre.Workers)
	}

	// Unset flags must not touch the preset, whatever their values.
	pre = base
	ov = overrides{workers: 99, seed: 99, partitions: 99, set: map[string]bool{}}
	ov.apply(&pre)
	if pre.Seed != base.Seed || pre.Workers != base.Workers || pre.Partitions != base.Partitions {
		t.Errorf("unset flags mutated preset: %+v", pre)
	}

	// And a normal non-zero override still works.
	pre = base
	ov = overrides{partitions: 4, set: map[string]bool{"partitions": true}}
	ov.apply(&pre)
	if pre.Partitions != 4 {
		t.Errorf("partitions override = %d, want 4", pre.Partitions)
	}
}
