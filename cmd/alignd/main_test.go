package main

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/serve"
	"github.com/activeiter/activeiter/internal/setsync"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// writeFixture writes a small valid snapshot and returns its path.
func writeFixture(t *testing.T, dir string) string {
	t.Helper()
	build := func(name string) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < 4; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		return g
	}
	pair := hetnet.NewAlignedPair(build("a"), build("b"))
	s, err := snapshot.Build(pair,
		snapshot.Meta{Facade: "monolithic", Notation: []string{"BIAS"}, Threshold: 0.5},
		snapshot.Model{W: []float64{1}},
		[]snapshot.PoolLink{{I: 0, J: 0, Label: 1, Score: 0.9, HasScore: true}},
		[]snapshot.Match{{I: 0, J: 0, Score: 0.9, HasScore: true}},
		nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fixture.snap")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// corrupt copies the artifact and bumps/garbles it.
func mutateFixture(t *testing.T, src, dst string, mutate func([]byte) []byte) string {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestFlagValidation is the table-driven command-line contract: every
// bad invocation must fail with a message naming the problem (and a
// non-zero exit through main's error path), never serve.
func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	good := writeFixture(t, dir)
	versionBumped := mutateFixture(t, good, filepath.Join(dir, "vnext.snap"), func(raw []byte) []byte {
		out := append([]byte(nil), raw...)
		out[6] = snapshot.Version + 1 // version byte of the first frame
		return out
	})
	truncated := mutateFixture(t, good, filepath.Join(dir, "truncated.snap"), func(raw []byte) []byte {
		return raw[:len(raw)/3]
	})
	garbage := filepath.Join(dir, "garbage.snap")
	if err := os.WriteFile(garbage, []byte("definitely not frames"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the returned error
	}{
		{"missing snapshot flag", nil, "missing -snapshot"},
		{"nonexistent artifact", []string{"-snapshot", filepath.Join(dir, "nope.snap"), "-check"}, "no such file"},
		{"corrupt artifact", []string{"-snapshot", garbage, "-check"}, "snapshot"},
		{"truncated artifact", []string{"-snapshot", truncated, "-check"}, "truncated"},
		{"version mismatch", []string{"-snapshot", versionBumped, "-check"}, "version mismatch"},
		{"bad listen address", []string{"-snapshot", good, "-listen", "256.256.256.256:http"}, "listen"},
		{"negative k", []string{"-snapshot", good, "-k", "-2", "-check"}, "negative -k"},
		{"negative read timeout", []string{"-snapshot", good, "-read-timeout", "-1s", "-check"}, "negative -read-timeout"},
		{"negative write timeout", []string{"-snapshot", good, "-write-timeout", "-5ms", "-check"}, "negative -write-timeout"},
		{"negative idle timeout", []string{"-snapshot", good, "-idle-timeout", "-1m", "-check"}, "negative -idle-timeout"},
		{"stray arguments", []string{"-snapshot", good, "stray"}, "unexpected arguments"},
		{"unknown flag", []string{"-snapshot", good, "-frobnicate"}, "not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("args %q accepted; stdout: %s", tc.args, stdout.String())
			}
			if !strings.Contains(err.Error(), tc.wantErr) && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("args %q: error %q does not mention %q", tc.args, err, tc.wantErr)
			}
		})
	}

	// The version-mismatch error must also name the versions and the fix.
	err := run([]string{"-snapshot", versionBumped, "-check"}, new(bytes.Buffer), new(bytes.Buffer))
	if !errors.Is(err, snapshot.ErrVersionMismatch) {
		t.Errorf("version-bumped artifact: %v is not ErrVersionMismatch", err)
	}
	if err == nil || !strings.Contains(err.Error(), "different release") {
		t.Errorf("version-mismatch error lacks remediation: %v", err)
	}
}

// TestTimeoutFlagParsing: the server-timeout flags default on (a public
// daemon should not ship timeout-less) and 0 explicitly disables.
func TestTimeoutFlagParsing(t *testing.T) {
	cfg, err := parseFlags([]string{"-snapshot", "x.snap"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.readTimeout != 10*time.Second || cfg.writeTimeout != 30*time.Second || cfg.idleTimeout != 2*time.Minute {
		t.Errorf("defaults = read %v write %v idle %v", cfg.readTimeout, cfg.writeTimeout, cfg.idleTimeout)
	}
	cfg, err = parseFlags([]string{"-snapshot", "x.snap", "-read-timeout", "0", "-write-timeout", "1m", "-idle-timeout", "0"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.readTimeout != 0 || cfg.writeTimeout != time.Minute || cfg.idleTimeout != 0 {
		t.Errorf("overrides = read %v write %v idle %v", cfg.readTimeout, cfg.writeTimeout, cfg.idleTimeout)
	}
}

// -check loads, validates, summarizes and exits cleanly without
// binding a port.
func TestCheckMode(t *testing.T) {
	dir := t.TempDir()
	good := writeFixture(t, dir)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-snapshot", good, "-check", "-listen", "definitely:not:an:addr"}, &stdout, &stderr); err != nil {
		t.Fatalf("check mode failed: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"facade=monolithic", "users=4/4", "matches=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("check summary %q missing %q", out, want)
		}
	}
}

// TestSyncFlagValidation covers the delta-sync flag contract.
func TestSyncFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"sync-only without sync-from", []string{"-snapshot", "x.snap", "-sync-only"}, "-sync-only needs -sync-from"},
		{"cutover too big", []string{"-snapshot", "x.snap", "-sync-cutover", "1.5"}, "outside [0,1)"},
		{"cutover negative", []string{"-snapshot", "x.snap", "-sync-cutover", "-0.1"}, "outside [0,1)"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, new(bytes.Buffer))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("args %q: error %v does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestSyncOnly runs the -sync-from/-sync-only path end to end against
// a live sync listener: no local artifact (full pull), then a second
// pull that is already current.
func TestSyncOnly(t *testing.T) {
	dir := t.TempDir()
	srcPath := writeFixture(t, dir)
	src, err := snapshot.OpenFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_ = setsync.Serve(c, src, setsync.Options{})
			}(conn)
		}
	}()

	dst := filepath.Join(dir, "pulled.snap")
	var stdout bytes.Buffer
	if err := run([]string{"-snapshot", dst, "-sync-from", ln.Addr().String(), "-sync-only"}, &stdout, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "setsync mode=full") {
		t.Errorf("first pull not full: %s", stdout.String())
	}
	pulled, err := snapshot.OpenFile(dst)
	if err != nil {
		t.Fatalf("pulled artifact does not load: %v", err)
	}
	sfp, _ := src.Fingerprint()
	pfp, _ := pulled.Fingerprint()
	if sfp != pfp {
		t.Errorf("pulled fingerprint %016x, source %016x", pfp, sfp)
	}

	stdout.Reset()
	if err := run([]string{"-snapshot", dst, "-sync-from", ln.Addr().String(), "-sync-only"}, &stdout, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "setsync mode=none") {
		t.Errorf("repeat pull not a no-op: %s", stdout.String())
	}
}

// TestSyncFromUnreachable: a dead peer is a clean startup error, not a
// hang or a served stale artifact.
func TestSyncFromUnreachable(t *testing.T) {
	dst := filepath.Join(t.TempDir(), "x.snap")
	err := run([]string{"-snapshot", dst, "-sync-from", "127.0.0.1:1", "-sync-only"}, new(bytes.Buffer), new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "sync from") {
		t.Errorf("unreachable peer error = %v", err)
	}
}

// TestHupLoop drives the SIGHUP handler directly through its channel:
// a signal reloads the configured artifact in place (generation 2), a
// second signal over a corrupted file keeps the old generation.
func TestHupLoop(t *testing.T) {
	dir := t.TempDir()
	path := writeFixture(t, dir)
	snap, err := snapshot.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	store := &serve.Store{}
	ix, err := serve.NewIndex(snap)
	if err != nil {
		t.Fatal(err)
	}
	store.Swap(ix)
	handler := serve.NewHandler(store, nil, serve.HandlerOptions{
		SnapshotPath: path,
		Load:         snapshot.OpenFile,
	})

	ch := make(chan os.Signal, 2)
	ch <- syscall.SIGHUP
	close(ch)
	var stdout bytes.Buffer
	hupLoop(ch, handler, &stdout) // synchronous: drains the closed channel
	if !strings.Contains(stdout.String(), "generation 2") {
		t.Errorf("hup reload output: %s", stdout.String())
	}
	if store.Current().Generation != 2 {
		t.Errorf("generation after SIGHUP = %d, want 2", store.Current().Generation)
	}

	if err := os.WriteFile(path, []byte("scribbled over"), 0o644); err != nil {
		t.Fatal(err)
	}
	ch2 := make(chan os.Signal, 1)
	ch2 <- syscall.SIGHUP
	close(ch2)
	stdout.Reset()
	hupLoop(ch2, handler, &stdout)
	if !strings.Contains(stdout.String(), "reload failed") {
		t.Errorf("corrupt hup reload output: %s", stdout.String())
	}
	if store.Current().Generation != 2 {
		t.Errorf("generation disturbed by failed SIGHUP reload: %d", store.Current().Generation)
	}
}
