package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// writeFixture writes a small valid snapshot and returns its path.
func writeFixture(t *testing.T, dir string) string {
	t.Helper()
	build := func(name string) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < 4; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		return g
	}
	pair := hetnet.NewAlignedPair(build("a"), build("b"))
	s, err := snapshot.Build(pair,
		snapshot.Meta{Facade: "monolithic", Notation: []string{"BIAS"}, Threshold: 0.5},
		snapshot.Model{W: []float64{1}},
		[]snapshot.PoolLink{{I: 0, J: 0, Label: 1, Score: 0.9, HasScore: true}},
		[]snapshot.Match{{I: 0, J: 0, Score: 0.9, HasScore: true}},
		nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fixture.snap")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// corrupt copies the artifact and bumps/garbles it.
func mutateFixture(t *testing.T, src, dst string, mutate func([]byte) []byte) string {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestFlagValidation is the table-driven command-line contract: every
// bad invocation must fail with a message naming the problem (and a
// non-zero exit through main's error path), never serve.
func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	good := writeFixture(t, dir)
	versionBumped := mutateFixture(t, good, filepath.Join(dir, "vnext.snap"), func(raw []byte) []byte {
		out := append([]byte(nil), raw...)
		out[6] = snapshot.Version + 1 // version byte of the first frame
		return out
	})
	truncated := mutateFixture(t, good, filepath.Join(dir, "truncated.snap"), func(raw []byte) []byte {
		return raw[:len(raw)/3]
	})
	garbage := filepath.Join(dir, "garbage.snap")
	if err := os.WriteFile(garbage, []byte("definitely not frames"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the returned error
	}{
		{"missing snapshot flag", nil, "missing -snapshot"},
		{"nonexistent artifact", []string{"-snapshot", filepath.Join(dir, "nope.snap"), "-check"}, "no such file"},
		{"corrupt artifact", []string{"-snapshot", garbage, "-check"}, "snapshot"},
		{"truncated artifact", []string{"-snapshot", truncated, "-check"}, "truncated"},
		{"version mismatch", []string{"-snapshot", versionBumped, "-check"}, "version mismatch"},
		{"bad listen address", []string{"-snapshot", good, "-listen", "256.256.256.256:http"}, "listen"},
		{"negative k", []string{"-snapshot", good, "-k", "-2", "-check"}, "negative -k"},
		{"negative read timeout", []string{"-snapshot", good, "-read-timeout", "-1s", "-check"}, "negative -read-timeout"},
		{"negative write timeout", []string{"-snapshot", good, "-write-timeout", "-5ms", "-check"}, "negative -write-timeout"},
		{"negative idle timeout", []string{"-snapshot", good, "-idle-timeout", "-1m", "-check"}, "negative -idle-timeout"},
		{"stray arguments", []string{"-snapshot", good, "stray"}, "unexpected arguments"},
		{"unknown flag", []string{"-snapshot", good, "-frobnicate"}, "not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("args %q accepted; stdout: %s", tc.args, stdout.String())
			}
			if !strings.Contains(err.Error(), tc.wantErr) && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("args %q: error %q does not mention %q", tc.args, err, tc.wantErr)
			}
		})
	}

	// The version-mismatch error must also name the versions and the fix.
	err := run([]string{"-snapshot", versionBumped, "-check"}, new(bytes.Buffer), new(bytes.Buffer))
	if !errors.Is(err, snapshot.ErrVersionMismatch) {
		t.Errorf("version-bumped artifact: %v is not ErrVersionMismatch", err)
	}
	if err == nil || !strings.Contains(err.Error(), "different release") {
		t.Errorf("version-mismatch error lacks remediation: %v", err)
	}
}

// TestTimeoutFlagParsing: the server-timeout flags default on (a public
// daemon should not ship timeout-less) and 0 explicitly disables.
func TestTimeoutFlagParsing(t *testing.T) {
	cfg, err := parseFlags([]string{"-snapshot", "x.snap"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.readTimeout != 10*time.Second || cfg.writeTimeout != 30*time.Second || cfg.idleTimeout != 2*time.Minute {
		t.Errorf("defaults = read %v write %v idle %v", cfg.readTimeout, cfg.writeTimeout, cfg.idleTimeout)
	}
	cfg, err = parseFlags([]string{"-snapshot", "x.snap", "-read-timeout", "0", "-write-timeout", "1m", "-idle-timeout", "0"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.readTimeout != 0 || cfg.writeTimeout != time.Minute || cfg.idleTimeout != 0 {
		t.Errorf("overrides = read %v write %v idle %v", cfg.readTimeout, cfg.writeTimeout, cfg.idleTimeout)
	}
}

// -check loads, validates, summarizes and exits cleanly without
// binding a port.
func TestCheckMode(t *testing.T) {
	dir := t.TempDir()
	good := writeFixture(t, dir)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-snapshot", good, "-check", "-listen", "definitely:not:an:addr"}, &stdout, &stderr); err != nil {
		t.Fatalf("check mode failed: %v", err)
	}
	out := stdout.String()
	for _, want := range []string{"facade=monolithic", "users=4/4", "matches=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("check summary %q missing %q", out, want)
		}
	}
}
