// Command alignd serves a trained alignment snapshot over HTTP — the
// online half of the offline→online bridge. Train with any facade (or
// `experiments -save-snapshot`), point alignd at the artifact, and ask
// it who a user is on the other network:
//
//	alignd -snapshot align.snap -listen :7600
//
//	GET  /v1/match/{net}/{user}          matched partner (net 1 or 2; ID or index)
//	GET  /v1/candidates/{net}/{user}?k=5 top-k ranked candidates
//	POST /v1/score                       {"i","j"} pool lookup, or {"features"[,"shard"]} rescore
//	POST /v1/reload                      atomic snapshot swap ({"path"} optional)
//	GET  /healthz                        liveness (always 200 while the process runs)
//	GET  /readyz                         readiness (503 until a snapshot serves and the last reload succeeded)
//	GET  /statusz                        provenance + per-endpoint QPS/latency
//
// Reload is zero-downtime: the new artifact is decoded and indexed off
// to the side, then swapped in behind an atomic pointer; in-flight
// requests finish on the generation they started on. SIGINT/SIGTERM
// drain gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/activeiter/activeiter/internal/serve"
	"github.com/activeiter/activeiter/internal/setsync"
	"github.com/activeiter/activeiter/internal/snapshot"
	"github.com/activeiter/activeiter/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "alignd:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	snapshotPath    string
	listen          string
	pprofListen     string
	defaultK        int
	check           bool
	allowReloadPath bool
	readTimeout     time.Duration
	writeTimeout    time.Duration
	idleTimeout     time.Duration
	hupReload       bool
	syncListen      string
	syncFrom        string
	syncOnly        bool
	syncCutover     float64
}

// parseFlags validates the command line into a config. Errors are
// user-facing: they name the flag and the fix.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("alignd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.snapshotPath, "snapshot", "", "alignment snapshot artifact to serve (required; see docs/SNAPSHOT.md)")
	fs.StringVar(&cfg.listen, "listen", ":7600", "HTTP listen address")
	fs.StringVar(&cfg.pprofListen, "pprof-listen", "", "serve net/http/pprof profiles on this separate address at /debug/pprof/ (off by default; keep it off the serving port so profiles are never exposed to query clients)")
	fs.IntVar(&cfg.defaultK, "k", 10, "default candidate-list depth when a request has no ?k=")
	fs.BoolVar(&cfg.check, "check", false, "load and validate the snapshot, print a summary, and exit without serving")
	fs.BoolVar(&cfg.allowReloadPath, "allow-reload-path", false, "let /v1/reload bodies name an arbitrary artifact path (off by default: the endpoint is unauthenticated, so only -snapshot's path may be re-opened)")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 10*time.Second, "HTTP read timeout per request (headers + body); a slow-loris client cannot pin a connection past it (0 disables)")
	fs.DurationVar(&cfg.writeTimeout, "write-timeout", 30*time.Second, "HTTP write timeout per response (0 disables)")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout (0 disables)")
	fs.BoolVar(&cfg.hupReload, "hup-reload", true, "re-open -snapshot in place on SIGHUP (the file-swap idiom: rename the new artifact over the old path, signal the process)")
	fs.StringVar(&cfg.syncListen, "sync-listen", "", "serve the current snapshot to reconciling peers over IBLT delta sync on this TCP address (off by default)")
	fs.StringVar(&cfg.syncFrom, "sync-from", "", "before serving, reconcile -snapshot against this peer's sync listener and persist the result (a near-identical local artifact costs O(diff) bytes, not a re-download)")
	fs.BoolVar(&cfg.syncOnly, "sync-only", false, "with -sync-from: exit after the artifact is synced instead of serving")
	fs.Float64Var(&cfg.syncCutover, "sync-cutover", 0, "delta-sync give-up fraction: ship the full artifact once the sketch would cost more than this fraction of it (0 means the 0.25 default)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if cfg.snapshotPath == "" {
		return nil, errors.New("missing -snapshot: alignd serves a trained artifact (write one with experiments -save-snapshot or activeiter.WriteSnapshot)")
	}
	if cfg.syncOnly && cfg.syncFrom == "" {
		return nil, errors.New("-sync-only needs -sync-from: there is nothing to sync")
	}
	if cfg.syncCutover < 0 || cfg.syncCutover >= 1 {
		return nil, fmt.Errorf("-sync-cutover %v outside [0,1)", cfg.syncCutover)
	}
	if cfg.defaultK < 0 {
		return nil, fmt.Errorf("negative -k %d", cfg.defaultK)
	}
	for name, d := range map[string]time.Duration{
		"read-timeout": cfg.readTimeout, "write-timeout": cfg.writeTimeout, "idle-timeout": cfg.idleTimeout,
	} {
		if d < 0 {
			return nil, fmt.Errorf("negative -%s %v (use 0 to disable)", name, d)
		}
	}
	return cfg, nil
}

// run is main minus the exit code, for the flag-validation tests.
func run(args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}

	if cfg.syncFrom != "" {
		if err := syncFromPeer(cfg, stdout); err != nil {
			return err
		}
		if cfg.syncOnly {
			return nil
		}
	}

	snap, err := snapshot.OpenFile(cfg.snapshotPath)
	if err != nil {
		if errors.Is(err, snapshot.ErrVersionMismatch) {
			return fmt.Errorf("open %s: %w (the artifact was written by a different release; re-export it or run a matching alignd)", cfg.snapshotPath, err)
		}
		return fmt.Errorf("open %s: %w", cfg.snapshotPath, err)
	}
	store := &serve.Store{}
	ix, err := serve.NewIndex(snap)
	if err != nil {
		return fmt.Errorf("index %s: %w", cfg.snapshotPath, err)
	}
	store.Swap(ix)
	u1, u2, matches, pool := ix.Counts()
	fmt.Fprintf(stdout, "alignd: loaded %s: facade=%s nets=%s↔%s users=%d/%d matches=%d pool=%d top-k=%d\n",
		cfg.snapshotPath, ix.Meta().Facade, ix.Meta().Net1, ix.Meta().Net2, u1, u2, matches, pool, ix.TopK())
	if cfg.check {
		return nil
	}

	handler := serve.NewHandler(store, nil, serve.HandlerOptions{
		DefaultK:          cfg.defaultK,
		SnapshotPath:      cfg.snapshotPath,
		Load:              snapshot.OpenFile,
		AllowPathOverride: cfg.allowReloadPath,
	})

	if cfg.pprofListen != "" {
		addr, err := telemetry.ListenAndServeDebug(cfg.pprofListen, telemetry.PprofMux())
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Fprintf(stdout, "alignd: pprof on http://%s/debug/pprof/\n", addr)
	}

	// Bind before declaring readiness so a bad -listen is a clean error,
	// not a background surprise.
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", cfg.listen, err)
	}
	// Server-side timeouts: a serving daemon exposed to arbitrary
	// clients must not let one slow (or stuck) connection hold resources
	// forever.
	srv := &http.Server{
		Handler:      handler,
		ReadTimeout:  cfg.readTimeout,
		WriteTimeout: cfg.writeTimeout,
		IdleTimeout:  cfg.idleTimeout,
	}

	if cfg.syncListen != "" {
		syncLn, err := net.Listen("tcp", cfg.syncListen)
		if err != nil {
			return fmt.Errorf("sync listener %s: %w", cfg.syncListen, err)
		}
		defer syncLn.Close()
		go serveSync(syncLn, store, stderr)
		fmt.Fprintf(stdout, "alignd: delta sync on %s\n", syncLn.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.hupReload {
		hupCh := make(chan os.Signal, 1)
		signal.Notify(hupCh, syscall.SIGHUP)
		defer signal.Stop(hupCh)
		go hupLoop(hupCh, handler, stdout)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "alignd: serving on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "alignd: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// syncConnTimeout is the absolute deadline on every sync connection,
// both sides: a peer that connects and then stalls must not pin a
// goroutine — and, on the serving side, a reference to that
// generation's full snapshot — indefinitely.
const syncConnTimeout = 2 * time.Minute

// syncFromPeer reconciles the configured artifact against a peer's
// sync listener and persists the result. A missing or unreadable local
// artifact degrades to a full pull — first boot and corrupt-disk
// recovery are the same code path.
func syncFromPeer(cfg *config, stdout io.Writer) error {
	have, err := snapshot.OpenFile(cfg.snapshotPath)
	if err != nil {
		have = nil
	}
	dial := func() (net.Conn, error) { return net.DialTimeout("tcp", cfg.syncFrom, 10*time.Second) }
	snap, stats, err := setsync.Pull(dial, have, setsync.Options{Cutover: cfg.syncCutover, Timeout: syncConnTimeout})
	if err != nil {
		return fmt.Errorf("sync from %s: %w", cfg.syncFrom, err)
	}
	if stats.Mode != "none" {
		if err := snap.WriteFile(cfg.snapshotPath); err != nil {
			return fmt.Errorf("persist synced artifact: %w", err)
		}
	}
	fmt.Fprintf(stdout, "alignd: setsync mode=%s attempts=%d tx_bytes=%d rx_bytes=%d full_bytes=%d added=%d removed=%d fallback=%q\n",
		stats.Mode, stats.Attempts, stats.TxBytes, stats.RxBytes, stats.FullBytes, stats.Added, stats.Removed, stats.Fallback)
	return nil
}

// serveSync answers reconciling peers: each connection gets the
// snapshot generation current at accept time. Serve errors are a
// peer's problem, not ours — log and keep accepting.
func serveSync(ln net.Listener, store *serve.Store, stderr io.Writer) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			c.SetDeadline(time.Now().Add(syncConnTimeout))
			ix := store.Current()
			if ix == nil {
				return
			}
			if err := setsync.Serve(c, ix.Snapshot(), setsync.Options{}); err != nil {
				fmt.Fprintf(stderr, "alignd: sync peer %s: %v\n", c.RemoteAddr(), err)
			}
		}(conn)
	}
}

// hupLoop re-opens the configured artifact on each SIGHUP and swaps it
// in atomically; a bad artifact is reported and the old generation
// keeps serving. Exits when the channel closes.
func hupLoop(ch <-chan os.Signal, h *serve.Handler, stdout io.Writer) {
	for range ch {
		gen, err := h.ReloadConfigured()
		if err != nil {
			fmt.Fprintf(stdout, "alignd: SIGHUP reload failed: %v\n", err)
			continue
		}
		fmt.Fprintf(stdout, "alignd: SIGHUP reloaded to generation %d\n", gen)
	}
}
