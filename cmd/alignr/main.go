// Command alignr is the fleet routing tier: it fronts a set of alignd
// replicas, each serving one user-range shard of a split snapshot, and
// presents the monolithic alignd HTTP surface — same endpoints, same
// bytes — to clients:
//
//	alignr -listen :7610 -backends http://a:7600,http://b:7600
//
// The router discovers each backend's owned range from its /statusz
// shard block (a backend with no shard block owns the full range), so
// resharding means redeploying alignd processes, not reconfiguring the
// router. Net-1 lookups are routed to the owning shard and proxied
// verbatim; net-2 reverse lookups fan out to one replica per range and
// merge; errors are delegated so even error bodies stay canonical.
// POST /v1/reload rolls the fleet one replica at a time, unhealthy
// first, polling each back to readiness before the next.
//
// alignr also carries the offline splitting tool:
//
//	alignr -split align.snap -split-shards 4 -split-out /srv/shards
//
// writes one shard artifact per range and prints a machine-parseable
// line per shard (path, range, epoch) for deployment scripts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/activeiter/activeiter/internal/fleet"
	"github.com/activeiter/activeiter/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "alignr:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	listen         string
	backends       []string
	timeout        time.Duration
	retries        int
	hedgeAfter     time.Duration
	healthInterval time.Duration
	readTimeout    time.Duration
	writeTimeout   time.Duration
	idleTimeout    time.Duration

	splitPath   string
	splitShards int
	splitRanges string
	splitOut    string
}

// parseFlags validates the command line into a config. Errors are
// user-facing: they name the flag and the fix.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("alignr", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	var backends string
	fs.StringVar(&cfg.listen, "listen", ":7610", "HTTP listen address")
	fs.StringVar(&backends, "backends", "", "comma-separated alignd base URLs to route over (required unless -split)")
	fs.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-backend request deadline")
	fs.IntVar(&cfg.retries, "retries", 3, "attempt budget per request across a range's replicas")
	fs.DurationVar(&cfg.hedgeAfter, "hedge-after", 0, "launch a hedged read on another replica after this delay (0 disables)")
	fs.DurationVar(&cfg.healthInterval, "health-interval", 2*time.Second, "readyz/statusz probe period")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 10*time.Second, "HTTP read timeout per request (0 disables)")
	fs.DurationVar(&cfg.writeTimeout, "write-timeout", 30*time.Second, "HTTP write timeout per response (0 disables)")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout (0 disables)")
	fs.StringVar(&cfg.splitPath, "split", "", "split this parent artifact into shard artifacts and exit (no serving)")
	fs.IntVar(&cfg.splitShards, "split-shards", 0, "with -split: number of even user ranges")
	fs.StringVar(&cfg.splitRanges, "split-ranges", "", `with -split: explicit boundaries "0:6,6:12" (overrides -split-shards)`)
	fs.StringVar(&cfg.splitOut, "split-out", ".", "with -split: directory for the shard artifacts")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	for _, u := range strings.Split(backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			cfg.backends = append(cfg.backends, u)
		}
	}
	if cfg.splitPath == "" {
		if len(cfg.backends) == 0 {
			return nil, errors.New("missing -backends: alignr routes over a fleet of alignd replicas (or use -split to shard an artifact)")
		}
		if cfg.retries < 1 {
			return nil, fmt.Errorf("-retries %d: need at least one attempt", cfg.retries)
		}
		for name, d := range map[string]time.Duration{
			"timeout": cfg.timeout, "hedge-after": cfg.hedgeAfter, "health-interval": cfg.healthInterval,
			"read-timeout": cfg.readTimeout, "write-timeout": cfg.writeTimeout, "idle-timeout": cfg.idleTimeout,
		} {
			if d < 0 {
				return nil, fmt.Errorf("negative -%s %v (use 0 to disable)", name, d)
			}
		}
		if cfg.timeout == 0 || cfg.healthInterval == 0 {
			return nil, errors.New("-timeout and -health-interval must be positive")
		}
	} else {
		if cfg.splitShards <= 0 && cfg.splitRanges == "" {
			return nil, errors.New("-split needs -split-shards N or -split-ranges lo:hi,...")
		}
	}
	return cfg, nil
}

// parseRanges turns "0:6,6:12" into UserRanges (validation of tiling
// is Split's job — it owns the invariant).
func parseRanges(spec string) ([]snapshot.UserRange, error) {
	var out []snapshot.UserRange
	for _, part := range strings.Split(spec, ",") {
		lohi := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(lohi) != 2 {
			return nil, fmt.Errorf("range %q: want lo:hi", part)
		}
		lo, err := strconv.Atoi(lohi[0])
		if err != nil {
			return nil, fmt.Errorf("range %q: %w", part, err)
		}
		hi, err := strconv.Atoi(lohi[1])
		if err != nil {
			return nil, fmt.Errorf("range %q: %w", part, err)
		}
		out = append(out, snapshot.UserRange{Lo: int32(lo), Hi: int32(hi)})
	}
	return out, nil
}

// runSplit shards the parent artifact on disk and prints one
// machine-parseable line per shard for deployment scripts.
func runSplit(cfg *config, stdout io.Writer) error {
	parent, err := snapshot.OpenFile(cfg.splitPath)
	if err != nil {
		return fmt.Errorf("open %s: %w", cfg.splitPath, err)
	}
	var ranges []snapshot.UserRange
	if cfg.splitRanges != "" {
		if ranges, err = parseRanges(cfg.splitRanges); err != nil {
			return err
		}
	} else {
		ranges = snapshot.EvenRanges(len(parent.Meta.Users1), cfg.splitShards)
	}
	shards, err := snapshot.Split(parent, ranges)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(cfg.splitOut, 0o755); err != nil {
		return err
	}
	base := strings.TrimSuffix(filepath.Base(cfg.splitPath), filepath.Ext(cfg.splitPath))
	for i, sh := range shards {
		path := filepath.Join(cfg.splitOut, fmt.Sprintf("%s-shard%02d.snap", base, i))
		if err := sh.WriteFile(path); err != nil {
			return fmt.Errorf("write shard %d: %w", i, err)
		}
		si := sh.Meta.Shard
		fmt.Fprintf(stdout, "shard=%d path=%s lo=%d hi=%d epoch=%d parent_fp=%016x\n",
			i, path, si.Range.Lo, si.Range.Hi, si.Epoch, si.ParentFP)
	}
	return nil
}

// run is main minus the exit code, for the flag-validation tests.
func run(args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	if cfg.splitPath != "" {
		return runSplit(cfg, stdout)
	}

	router, err := fleet.NewRouter(cfg.backends, fleet.Options{
		Timeout:        cfg.timeout,
		Retries:        cfg.retries,
		HedgeAfter:     cfg.hedgeAfter,
		HealthInterval: cfg.healthInterval,
	})
	if err != nil {
		return err
	}
	router.Refresh()
	router.Start()
	defer router.Stop()

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", cfg.listen, err)
	}
	srv := &http.Server{
		Handler:      router,
		ReadTimeout:  cfg.readTimeout,
		WriteTimeout: cfg.writeTimeout,
		IdleTimeout:  cfg.idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "alignr: routing %d backends on %s\n", len(cfg.backends), ln.Addr())

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "alignr: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
