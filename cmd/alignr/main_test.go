package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// writeFixture writes a small valid parent snapshot and returns its
// path.
func writeFixture(t *testing.T, dir string) string {
	t.Helper()
	build := func(name string) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < 8; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		return g
	}
	pair := hetnet.NewAlignedPair(build("a"), build("b"))
	var pool []snapshot.PoolLink
	var matches []snapshot.Match
	for i := int32(0); i < 8; i++ {
		pool = append(pool, snapshot.PoolLink{I: i, J: i, Label: 1, Score: 0.9, HasScore: true})
		matches = append(matches, snapshot.Match{I: i, J: i, Score: 0.9, HasScore: true})
	}
	s, err := snapshot.Build(pair,
		snapshot.Meta{CreatedUnix: 1700000000, Facade: "monolithic", Notation: []string{"BIAS"}, Threshold: 0.5},
		snapshot.Model{W: []float64{1}},
		pool, matches, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fixture.snap")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFlagValidation is the command-line contract: every bad
// invocation must fail with a message naming the problem, never serve.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no backends", []string{}, "missing -backends"},
		{"empty backends", []string{"-backends", " , "}, "missing -backends"},
		{"zero retries", []string{"-backends", "http://x", "-retries", "0"}, "at least one attempt"},
		{"negative hedge", []string{"-backends", "http://x", "-hedge-after", "-1s"}, "negative -hedge-after"},
		{"zero timeout", []string{"-backends", "http://x", "-timeout", "0"}, "must be positive"},
		{"split without shape", []string{"-split", "x.snap"}, "-split-shards N or -split-ranges"},
		{"stray args", []string{"-backends", "http://x", "stray"}, "unexpected arguments"},
		{"unknown flag", []string{"-nope"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			err := run(tc.args, io.Discard, &stderr)
			if err == nil {
				t.Fatal("bad invocation ran")
			}
			if !strings.Contains(err.Error()+stderr.String(), tc.want) {
				t.Errorf("error %q (stderr %q) does not mention %q", err, stderr.String(), tc.want)
			}
		})
	}
}

// TestSplitMode shards a parent artifact on disk, checks the printed
// machine-parseable lines, and round-trips the shards through Merge.
func TestSplitMode(t *testing.T) {
	dir := t.TempDir()
	parentPath := writeFixture(t, dir)
	outDir := filepath.Join(dir, "shards")

	var stdout bytes.Buffer
	err := run([]string{"-split", parentPath, "-split-shards", "3", "-split-out", outDir}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("printed %d lines, want 3:\n%s", len(lines), stdout.String())
	}
	var shards []*snapshot.Snapshot
	for i, line := range lines {
		fields := map[string]string{}
		for _, f := range strings.Fields(line) {
			kv := strings.SplitN(f, "=", 2)
			if len(kv) == 2 {
				fields[kv[0]] = kv[1]
			}
		}
		for _, key := range []string{"shard", "path", "lo", "hi", "epoch", "parent_fp"} {
			if fields[key] == "" {
				t.Fatalf("line %d missing %s: %q", i, key, line)
			}
		}
		sh, err := snapshot.OpenFile(fields["path"])
		if err != nil {
			t.Fatalf("shard %d does not load: %v", i, err)
		}
		si := sh.Meta.Shard
		if si == nil || fmt.Sprint(si.Range.Lo) != fields["lo"] || fmt.Sprint(si.Range.Hi) != fields["hi"] {
			t.Errorf("shard %d stamp %+v does not match printed line %q", i, si, line)
		}
		shards = append(shards, sh)
	}
	merged, err := snapshot.Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := snapshot.OpenFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	pfp, _ := parent.Fingerprint()
	mfp, _ := merged.Fingerprint()
	if pfp != mfp {
		t.Errorf("merge of split shards fingerprints %016x, parent %016x", mfp, pfp)
	}
}

// TestSplitExplicitRanges drives -split-ranges and the lo:hi parser's
// error paths.
func TestSplitExplicitRanges(t *testing.T) {
	dir := t.TempDir()
	parentPath := writeFixture(t, dir)
	var stdout bytes.Buffer
	err := run([]string{"-split", parentPath, "-split-ranges", "0:5,5:8", "-split-out", dir}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "lo=0 hi=5") || !strings.Contains(stdout.String(), "lo=5 hi=8") {
		t.Errorf("range lines wrong:\n%s", stdout.String())
	}

	for _, bad := range []string{"0:5", "nope", "0:x,5:8", "0:5,4:8"} {
		if err := run([]string{"-split", parentPath, "-split-ranges", bad, "-split-out", dir}, io.Discard, io.Discard); err == nil {
			t.Errorf("-split-ranges %q succeeded", bad)
		}
	}
}

// TestSplitMissingParent: a bad parent path is a clean error.
func TestSplitMissingParent(t *testing.T) {
	err := run([]string{"-split", filepath.Join(t.TempDir(), "nope.snap"), "-split-shards", "2"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "open") {
		t.Errorf("missing parent error = %v", err)
	}
}

var _ = os.Getenv
