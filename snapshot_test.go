package activeiter

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/serve"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// liveView is the facade-independent read side of a live result the
// snapshot must reproduce bit-identically.
type liveView struct {
	res     AlignmentResult
	matched map[int]int                    // net1 user → net2 partner (predicted anchors)
	score   func(i, j int) (float64, bool) // live raw score of a pool link
}

// TestSnapshotRoundTripAllFacades is the end-to-end property of the
// offline→online bridge: train on the tiny preset via each facade,
// BuildSnapshot → WriteSnapshot → OpenSnapshot → serve over HTTP, and
// every /v1/match and /v1/score answer must be bit-identical to the
// live in-process result; EvaluateAlignment on the loaded snapshot
// must equal the live metrics exactly.
func TestSnapshotRoundTripAllFacades(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)
	oracle := NewTruthOracle(pair)

	monoOpts := Options{Budget: 10, Seed: 7}
	shardOpts := Options{Budget: 10, Seed: 7, Partitions: 2}

	cases := []struct {
		facade string
		run    func(t *testing.T) (AlignmentResult, Options)
	}{
		{SnapshotMonolithic, func(t *testing.T) (AlignmentResult, Options) {
			a, err := New(pair, monoOpts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Align(trainPos, cands, oracle)
			if err != nil {
				t.Fatal(err)
			}
			return res, monoOpts
		}},
		{SnapshotPartitioned, func(t *testing.T) (AlignmentResult, Options) {
			pa, err := NewPartitioned(pair, shardOpts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pa.Align(trainPos, cands, oracle)
			if err != nil {
				t.Fatal(err)
			}
			return res, shardOpts
		}},
		{SnapshotDistributed, func(t *testing.T) (AlignmentResult, Options) {
			da, err := NewDistributed(pair, shardOpts, NewLoopbackTransport())
			if err != nil {
				t.Fatal(err)
			}
			res, err := da.Align(trainPos, cands, oracle)
			if err != nil {
				t.Fatal(err)
			}
			return res, shardOpts
		}},
	}

	for _, tc := range cases {
		t.Run(tc.facade, func(t *testing.T) {
			res, opts := tc.run(t)

			snap, err := BuildSnapshot(tc.facade, pair, res, opts)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Meta.Facade != tc.facade {
				t.Errorf("facade recorded as %q", snap.Meta.Facade)
			}
			if snap.Meta.FP1 != snapshot.NetworkFingerprint(pair.G1) {
				t.Error("dataset fingerprint missing or wrong")
			}

			path := filepath.Join(t.TempDir(), "align.snap")
			if err := WriteSnapshot(snap, path); err != nil {
				t.Fatal(err)
			}
			loaded, err := OpenSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(loaded, snap) {
				t.Fatal("snapshot did not round-trip the file")
			}
			ix, err := NewServeIndex(loaded)
			if err != nil {
				t.Fatal(err)
			}

			// Property 1: the loaded snapshot IS the result, metric for
			// metric.
			liveM := EvaluateAlignment(res, testPos, neg)
			snapM := EvaluateAlignment(ix, testPos, neg)
			if liveM != snapM {
				t.Errorf("EvaluateAlignment diverged:\n live %+v\n snap %+v", liveM, snapM)
			}

			lv := liveViewOf(t, res)
			serveAndCompare(t, ix, lv, pair, testPos, neg)
		})
	}
}

// liveViewOf adapts either facade result to the comparison shape.
func liveViewOf(t *testing.T, res AlignmentResult) *liveView {
	t.Helper()
	lv := &liveView{res: res, matched: make(map[int]int)}
	switch r := res.(type) {
	case *Result:
		for _, a := range r.PredictedAnchors() {
			lv.matched[a.I] = a.J
		}
		lv.score = func(i, j int) (float64, bool) {
			for idx, l := range r.links {
				if l.I == i && l.J == j {
					return r.inner.Scores[idx], true
				}
			}
			return 0, false
		}
	case *PartitionedResult:
		for _, a := range r.PredictedAnchors() {
			lv.matched[a.I] = a.J
		}
		lv.score = r.Score
	default:
		t.Fatalf("unexpected result type %T", res)
	}
	return lv
}

// serveAndCompare stands the full HTTP surface up over the index and
// checks every /v1/match and a pool-wide sweep of /v1/score against
// the live result.
func serveAndCompare(t *testing.T, ix *ServeIndex, lv *liveView, pair *AlignedPair, testPos, neg []Anchor) {
	t.Helper()
	store := &serve.Store{}
	store.Swap(ix)
	srv := httptest.NewServer(serve.NewHandler(store, nil, serve.HandlerOptions{}))
	defer srv.Close()

	// Every net1 user: a predicted partner must come back exactly; a
	// user with none must 404.
	n1 := pair.G1.NodeCount(hetnet.User)
	for i := 0; i < n1; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/match/1/%d", srv.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Match *struct {
				Index int32 `json:"index"`
			} `json:"match"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		wantJ, wantMatch := lv.matched[i]
		switch {
		case wantMatch && (resp.StatusCode != http.StatusOK || body.Match == nil || int(body.Match.Index) != wantJ):
			t.Fatalf("/v1/match/1/%d: status %d body %+v, want partner %d", i, resp.StatusCode, body.Match, wantJ)
		case !wantMatch && resp.StatusCode != http.StatusNotFound:
			t.Fatalf("/v1/match/1/%d: status %d for unmatched user", i, resp.StatusCode)
		}
	}

	// Every test pool link: /v1/score answers the live label, queried
	// flag and raw score bit-identically (float64 survives the JSON trip
	// by Go's round-trip encoding).
	links := append(append([]Anchor{}, testPos...), neg...)
	for _, l := range links {
		wantLabel, inPool := lv.res.Label(l.I, l.J)
		reqBody := fmt.Sprintf(`{"i":%d,"j":%d}`, l.I, l.J)
		resp, err := http.Post(srv.URL+"/v1/score", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Score    float64 `json:"score"`
			HasScore bool    `json:"has_score"`
			Label    float64 `json:"label"`
			Queried  bool    `json:"queried"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !inPool {
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("/v1/score (%d,%d): status %d for non-pool link", l.I, l.J, resp.StatusCode)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/score (%d,%d): status %d", l.I, l.J, resp.StatusCode)
		}
		if body.Label != wantLabel {
			t.Fatalf("/v1/score (%d,%d): label %v, want %v", l.I, l.J, body.Label, wantLabel)
		}
		if body.Queried != lv.res.WasQueried(l.I, l.J) {
			t.Fatalf("/v1/score (%d,%d): queried %v diverges from live", l.I, l.J, body.Queried)
		}
		if wantScore, ok := lv.score(l.I, l.J); ok && body.HasScore && body.Score != wantScore {
			t.Fatalf("/v1/score (%d,%d): score %v, want %v (bit-identical)", l.I, l.J, body.Score, wantScore)
		}
	}
}

// TestSnapshotPredictorBitIdentical pins the rescoring path: a feature
// vector scored by the live result's Predictor and by the served
// snapshot must produce the same bits.
func TestSnapshotPredictorBitIdentical(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)
	opts := Options{Seed: 3}
	a, err := New(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := BuildSnapshot("", pair, res, opts)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewServeIndex(snap)
	if err != nil {
		t.Fatal(err)
	}
	live, err := res.Predictor(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range testPos[:5] {
		x, err := a.FeatureVector(l.I, l.J)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ix.Rescore(-1, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := live.Score(x); got != want {
			t.Errorf("rescore (%d,%d) = %v, want live %v", l.I, l.J, got, want)
		}
	}
}

// TestSnapshotShardWeightsParity pins the wire plumbing: the per-shard
// weight vectors a distributed run reports over the Done frames must be
// bit-identical to the in-process partitioned run of the same plan.
func TestSnapshotShardWeightsParity(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)
	opts := Options{Budget: 10, Seed: 7, Partitions: 2}
	pa, err := NewPartitioned(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := pa.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}
	da, err := NewDistributed(pair, opts, NewLoopbackTransport())
	if err != nil {
		t.Fatal(err)
	}
	dres, err := da.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.ShardWeights) != opts.Partitions || len(dres.ShardWeights) != opts.Partitions {
		t.Fatalf("shard weights: partitioned %d, distributed %d, want %d each",
			len(pres.ShardWeights), len(dres.ShardWeights), opts.Partitions)
	}
	if !reflect.DeepEqual(pres.ShardWeights, dres.ShardWeights) {
		t.Error("distributed shard weights diverge from the in-process run")
	}
}

// TestBuildSnapshotValidation covers facade/result mismatches.
func TestBuildSnapshotValidation(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)
	a, err := New(pair, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Align(trainPos, cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSnapshot(SnapshotDistributed, pair, res, Options{}); err == nil {
		t.Error("monolithic result accepted under a distributed facade label")
	}
	if _, err := BuildSnapshot("", nil, res, Options{}); err == nil {
		t.Error("nil pair accepted")
	}
}
