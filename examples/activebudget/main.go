// Activebudget: sweep the active-learning query budget and compare the
// paper's conflict-aware strategy against random querying — a miniature
// of the paper's Figure 5. Shows how few labels ActiveIter needs to beat
// a passively trained model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	activeiter "github.com/activeiter/activeiter"
)

func main() {
	pair, err := activeiter.GenerateDataset(activeiter.SmallDataset())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	anchors := append([]activeiter.Anchor{}, pair.Anchors...)
	rng.Shuffle(len(anchors), func(i, j int) { anchors[i], anchors[j] = anchors[j], anchors[i] })
	trainPos, testPos := anchors[:20], anchors[20:]
	negatives, err := activeiter.SampleNegatives(pair, 20*len(anchors), rng)
	if err != nil {
		log.Fatal(err)
	}
	candidates := append(append([]activeiter.Anchor{}, testPos...), negatives...)
	oracle := activeiter.NewTruthOracle(pair)

	run := func(budget int, strategy activeiter.StrategyKind) activeiter.Metrics {
		aligner, err := activeiter.New(pair, activeiter.Options{
			Budget:   budget,
			Strategy: strategy,
			Seed:     3,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := aligner.Align(trainPos, candidates, oracle)
		if err != nil {
			log.Fatal(err)
		}
		return activeiter.EvaluateAlignment(res, testPos, negatives)
	}

	baseline := run(0, activeiter.StrategyConflict)
	fmt.Printf("%-10s %-12s %6s %6s %6s\n", "budget", "strategy", "F1", "prec", "rec")
	fmt.Printf("%-10d %-12s %6.3f %6.3f %6.3f   (Iter-MPMD baseline)\n",
		0, "-", baseline.F1, baseline.Precision, baseline.Recall)
	for _, budget := range []int{10, 25, 50, 75, 100} {
		for _, strategy := range []activeiter.StrategyKind{activeiter.StrategyConflict, activeiter.StrategyRandom} {
			m := run(budget, strategy)
			marker := ""
			if strategy == activeiter.StrategyConflict && m.F1 > baseline.F1 {
				marker = "  ← beats baseline"
			}
			fmt.Printf("%-10d %-12s %6.3f %6.3f %6.3f%s\n",
				budget, strategy, m.F1, m.Precision, m.Recall, marker)
		}
	}
	fmt.Println("\nthe conflict strategy converts each query into label corrections;")
	fmt.Println("random queries mostly hit easy negatives and change little.")
}
