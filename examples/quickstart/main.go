// Quickstart: generate a synthetic aligned network pair, train the
// ActiveIter alignment model with a small query budget, and evaluate the
// inferred anchor links.
package main

import (
	"fmt"
	"log"
	"math/rand"

	activeiter "github.com/activeiter/activeiter"
)

func main() {
	// 1. Data: two attributed heterogeneous social networks sharing 40
	// ground-truth users (the anchors).
	pair, err := activeiter.GenerateDataset(activeiter.TinyDataset())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pair.G1.Stats())
	fmt.Println(pair.G2.Stats())

	// 2. Protocol: 25% of the anchors are known (training labels); the
	// rest are hidden among 10× sampled negatives.
	rng := rand.New(rand.NewSource(1))
	anchors := pair.Anchors
	trainPos, testPos := anchors[:len(anchors)/4], anchors[len(anchors)/4:]
	negatives, err := activeiter.SampleNegatives(pair, 10*len(anchors), rng)
	if err != nil {
		log.Fatal(err)
	}
	candidates := append(append([]activeiter.Anchor{}, testPos...), negatives...)

	// 3. Model: meta diagram features + PU learning + a 25-query active
	// learning budget answered by a ground-truth oracle.
	aligner, err := activeiter.New(pair, activeiter.Options{Budget: 25, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := aligner.Align(trainPos, candidates, activeiter.NewTruthOracle(pair))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Results.
	m := activeiter.EvaluateAlignment(res, testPos, negatives)
	fmt.Printf("inferred %d anchor links with %d oracle queries\n",
		len(res.PredictedAnchors()), res.QueryCount())
	fmt.Printf("F1=%.3f precision=%.3f recall=%.3f accuracy=%.3f\n",
		m.F1, m.Precision, m.Recall, m.Accuracy)
}
