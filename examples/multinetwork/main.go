// Multinetwork: align three social networks at once — the extension the
// paper sketches in Section II. Each pair is aligned with the standard
// machinery; the pairwise predictions are then reconciled into identity
// clusters that are one-to-one per network and transitively consistent,
// including correspondences no pairwise run predicted directly.
package main

import (
	"fmt"
	"log"

	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/multinet"
	"github.com/activeiter/activeiter/internal/schema"
)

func main() {
	// Three networks over one latent population; the first 40 users of
	// each are the same people.
	ds, err := datagen.GenerateMulti(datagen.Tiny(), 3)
	if err != nil {
		log.Fatal(err)
	}
	set := multinet.NewAlignedSet(ds.Nets...)
	for _, row := range ds.SharedUsers {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if err := set.AddAnchor(i, j, row[i], row[j]); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Pairwise alignment: train on 25% of each pair's anchors, infer the
	// rest over diagram-proposed candidates.
	var predictions []multinet.ScoredLink
	for _, ij := range set.Pairs() {
		pair, err := set.Pair(ij[0], ij[1])
		if err != nil {
			log.Fatal(err)
		}
		train := pair.Anchors[:len(pair.Anchors)/4]
		counter, err := metadiag.NewCounter(pair)
		if err != nil {
			log.Fatal(err)
		}
		counter.SetAnchors(train)
		lib := schema.StandardLibrary()
		ext := metadiag.NewExtractor(counter, lib.All(), true)
		cands, err := counter.Candidates(lib.All(), 4)
		if err != nil {
			log.Fatal(err)
		}
		links := append(append([]hetnet.Anchor{}, train...), cands...)
		x, err := ext.FeatureMatrix(links)
		if err != nil {
			log.Fatal(err)
		}
		labeled := make([]int, len(train))
		for k := range labeled {
			labeled[k] = k
		}
		res, err := core.Train(core.Problem{Links: links, X: x, LabeledPos: labeled}, core.Config{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for idx, l := range links {
			if res.Y[idx] == 1 {
				predictions = append(predictions, multinet.ScoredLink{
					NetI: ij[0], NetJ: ij[1], A: l, Score: res.Scores[idx],
				})
				n++
			}
		}
		fmt.Printf("pair (%d,%d): %d predicted links\n", ij[0], ij[1], n)
	}

	// Reconcile into globally consistent identities.
	clusters, rejected := multinet.Reconcile(predictions)
	full := 0
	for _, c := range clusters {
		if len(c.Members) == 3 {
			full++
		}
	}
	fmt.Printf("\nreconciled %d identity clusters (%d spanning all three networks, %d links rejected as inconsistent)\n",
		len(clusters), full, rejected)

	// Transitively inferred links: in clusters spanning all three
	// networks, some pair correspondences were never predicted directly.
	direct := make(map[string]bool)
	for _, p := range predictions {
		direct[fmt.Sprintf("%d:%d-%d:%d", p.NetI, p.A.I, p.NetJ, p.A.J)] = true
	}
	inferred := 0
	for _, ij := range set.Pairs() {
		for _, l := range multinet.PairLinks(clusters, ij[0], ij[1]) {
			if !direct[fmt.Sprintf("%d:%d-%d:%d", ij[0], l.I, ij[1], l.J)] {
				inferred++
			}
		}
	}
	fmt.Printf("transitively inferred correspondences (never predicted pairwise): %d\n", inferred)
}
