// Metafeatures: look inside the feature machinery — parse meta paths
// from the textual DSL, inspect the full diagram library, extract a
// candidate pair's feature vector, and reproduce the paper's
// "dislocated check-ins" motivating example (Section III-B-2), where
// meta paths fire but the meta diagram correctly does not.
package main

import (
	"fmt"
	"log"

	activeiter "github.com/activeiter/activeiter"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

func main() {
	// The meta path DSL: P1 from Table I, "Common Anchored Followee".
	p1, err := schema.ParsePath("user(1) -follow-> user(1) <-anchor-> user(2) <-follow- user(2)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P1 parsed:", p1.Notation())

	// The standard library: 6 paths + 25 diagrams = the 31-dimensional
	// feature space of the paper.
	lib := schema.StandardLibrary()
	fmt.Printf("\nstandard feature library (%d paths, %d diagrams):\n",
		len(lib.Paths), len(lib.Diagrams))
	for _, n := range lib.Paths {
		fmt.Printf("  %-8s %-38s %s\n", n.ID, n.Semantics, n.D.Notation())
	}
	fmt.Printf("  ... plus %d composite diagrams (Ψ^f², Ψ^a², Ψ^{f,a}, Ψ^{f,a²}, Ψ^{f²,a²})\n", len(lib.Diagrams))

	// Covering sets (Definition 7): the diagram Ψ1 = P1 × P2 decomposes
	// into exactly its composing paths.
	psi1 := schema.FollowDiagram(1, 2)
	fmt.Println("\nΨ1 =", psi1.Notation())
	for i, p := range schema.CoveringSet(psi1) {
		fmt.Printf("  covering path %d: %s\n", i+1, p.Notation())
	}

	// The dislocation example. Two users share locations and timestamps
	// marginally — every check-in at the same place happens at a
	// different time. Meta paths P5/P6 see similarity; the meta diagram
	// Ψ^a² requires the *same post pair* to share both and sees none.
	g1 := activeiter.NewSocialNetwork("net1")
	g2 := activeiter.NewSocialNetwork("net2")
	checkin := func(g *activeiter.Network, user, post, loc, ts string) {
		for _, step := range [][3]string{
			{string(activeiter.Write), user, post},
			{string(activeiter.Checkin), post, loc},
			{string(activeiter.At), post, ts},
		} {
			if err := g.AddLinkByID(activeiter.LinkType(step[0]), step[1], step[2]); err != nil {
				log.Fatal(err)
			}
		}
	}
	// u1's trail: (Chicago, Aug16), (NYC, Jan17), (LA, May17) — the
	// paper's own example.
	checkin(g1, "u1", "p1", "chicago", "aug16")
	checkin(g1, "u1", "p2", "nyc", "jan17")
	checkin(g1, "u1", "p3", "la", "may17")
	// u2's trail is "dislocated": same places, same moments, never
	// together: (LA, Aug16), (Chicago, Jan17), (NYC, May17).
	checkin(g2, "u2", "q1", "la", "aug16")
	checkin(g2, "u2", "q2", "chicago", "jan17")
	checkin(g2, "u2", "q3", "nyc", "may17")

	pair := activeiter.NewAlignedPair(g1, g2)
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		log.Fatal(err)
	}
	i, _ := g1.NodeIndex(activeiter.User, "u1")
	j, _ := g2.NodeIndex(activeiter.User, "u2")
	show := func(label string, d schema.Diagram) {
		m, err := counter.Count(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s instances(u1,u2) = %.0f\n", label, m.At(i, j))
	}
	fmt.Println("\ndislocated check-ins (paper's Section III-B-2 example):")
	show("P5 (common timestamp)", schema.AttributePath(activeiter.At).AsDiagram())
	show("P6 (common location)", schema.AttributePath(activeiter.Checkin).AsDiagram())
	show("Ψ^a² (joint attributes)", schema.AttributeDiagram(activeiter.At, activeiter.Checkin))
	fmt.Println("  → the paths suggest u1 ≈ u2; the diagram correctly disagrees.")
}
