// Fullpipeline: build two social networks from raw activity events with
// the data-model API (the "bring your own data" path), persist them as
// JSON, reload, and align — the workflow a practitioner follows with
// real crawl exports instead of the synthetic generator.
package main

import (
	"bytes"
	"fmt"
	"log"

	activeiter "github.com/activeiter/activeiter"
)

// event is a minimal crawl record: a user posted at a place and time.
type event struct {
	user, post, location, timestamp string
}

func main() {
	// Raw inputs, as a crawler would produce them. The two sites share
	// three users (alice, bob, carol) whose check-in routines repeat
	// across sites; dave and erin exist on one site only.
	followsA := [][2]string{{"alice", "bob"}, {"bob", "alice"}, {"carol", "alice"}, {"dave", "bob"}}
	eventsA := []event{
		{"alice", "a1", "blue-bottle", "mon-9am"},
		{"alice", "a2", "city-gym", "tue-7pm"},
		{"bob", "a3", "city-gym", "tue-7pm"},
		{"carol", "a4", "museum", "sat-2pm"},
		{"dave", "a5", "blue-bottle", "mon-9am"},
	}
	followsB := [][2]string{{"al_1ce", "b0b"}, {"b0b", "al_1ce"}, {"kar0l", "al_1ce"}, {"erin", "al_1ce"}}
	eventsB := []event{
		{"al_1ce", "b1", "blue-bottle", "mon-9am"},
		{"b0b", "b2", "city-gym", "tue-7pm"},
		{"kar0l", "b3", "museum", "sat-2pm"},
		{"erin", "b4", "city-gym", "mon-9am"}, // dislocated: right place, wrong time
	}

	// 1. Build the attributed heterogeneous networks. Attribute IDs
	// (locations, timestamps) are shared across networks by value; user
	// and post IDs are site-local.
	g1 := buildNetwork("siteA", followsA, eventsA)
	g2 := buildNetwork("siteB", followsB, eventsB)

	// 2. Couple them with the known anchor links (e.g. from verified
	// profile links). Here: alice↔al_1ce is known; bob↔b0b and
	// carol↔kar0l are what we want the model to find.
	pair := activeiter.NewAlignedPair(g1, g2)
	for _, ids := range [][2]string{{"alice", "al_1ce"}, {"bob", "b0b"}, {"carol", "kar0l"}} {
		i, _ := g1.NodeIndex(activeiter.User, ids[0])
		j, _ := g2.NodeIndex(activeiter.User, ids[1])
		if err := pair.AddAnchor(i, j); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Persist and reload — the JSON round trip a production pipeline
	// would do between crawl and inference jobs.
	var buf bytes.Buffer
	if err := activeiter.WriteAlignedJSON(pair, &buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized pair: %d bytes\n", buf.Len())
	pair, err := activeiter.ReadAlignedJSON(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Align: train on the alice anchor, rank every cross-site user
	// pair as a candidate.
	trainPos := pair.Anchors[:1]
	var candidates []activeiter.Anchor
	for i := 0; i < pair.G1.NodeCount(activeiter.User); i++ {
		for j := 0; j < pair.G2.NodeCount(activeiter.User); j++ {
			if i != trainPos[0].I && j != trainPos[0].J {
				candidates = append(candidates, activeiter.Anchor{I: i, J: j})
			}
		}
	}
	aligner, err := activeiter.New(pair, activeiter.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := aligner.Align(trainPos, candidates, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report the inferred identity mapping.
	fmt.Println("inferred cross-site identities:")
	for _, a := range res.PredictedAnchors() {
		fmt.Printf("  %s ↔ %s\n",
			pair.G1.NodeID(activeiter.User, a.I), pair.G2.NodeID(activeiter.User, a.J))
	}
}

func buildNetwork(name string, follows [][2]string, events []event) *activeiter.Network {
	g := activeiter.NewSocialNetwork(name)
	for _, f := range follows {
		if err := g.AddLinkByID(activeiter.Follow, f[0], f[1]); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range events {
		if err := g.AddLinkByID(activeiter.Write, e.user, e.post); err != nil {
			log.Fatal(err)
		}
		if err := g.AddLinkByID(activeiter.Checkin, e.post, e.location); err != nil {
			log.Fatal(err)
		}
		if err := g.AddLinkByID(activeiter.At, e.post, e.timestamp); err != nil {
			log.Fatal(err)
		}
	}
	return g
}
