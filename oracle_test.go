package activeiter

import (
	"testing"
)

// The honest-panel property, mirroring TestTracingDoesNotPerturbResults:
// an OracleConfig whose pool is entirely honest labelers must be
// invisible — every facade produces a bit-identical alignment to the
// same run querying the truth oracle directly. Majority votes over
// unanimous honest answers are the truth, trust weights stay at their
// prior, and the panel's bookkeeping must never leak into training.

// honestConfig is the panel under test: 5 honest labelers, R=3.
func honestConfig() *OracleConfig {
	return &OracleConfig{Honest: 5, Replicas: 3, Seed: 42}
}

func TestHonestPanelBitIdenticalAligner(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)
	opts := Options{Budget: 20, Seed: 1}

	clean, err := New(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Panel() != nil {
		t.Fatal("Panel() must be nil without OracleConfig")
	}

	opts.OracleConfig = honestConfig()
	panelAl, err := New(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := panelAl.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}

	if got.QueryCount() != want.QueryCount() {
		t.Fatalf("QueryCount %d with panel vs %d clean", got.QueryCount(), want.QueryCount())
	}
	gw, ww := got.Raw(), want.Raw()
	if len(gw.Y) != len(ww.Y) {
		t.Fatalf("pool sizes differ: %d vs %d", len(gw.Y), len(ww.Y))
	}
	for idx := range ww.Y {
		if gw.Y[idx] != ww.Y[idx] {
			t.Fatalf("label %d: %v with panel vs %v clean", idx, gw.Y[idx], ww.Y[idx])
		}
		if gw.Scores[idx] != ww.Scores[idx] {
			t.Fatalf("score %d: %v with panel vs %v clean", idx, gw.Scores[idx], ww.Scores[idx])
		}
	}

	panel := panelAl.Panel()
	if panel == nil {
		t.Fatal("Panel() must expose the run's panel")
	}
	if panel.Queries() != got.QueryCount() {
		t.Fatalf("panel saw %d queries, result reports %d", panel.Queries(), got.QueryCount())
	}
	for _, tr := range panel.TrustScores() {
		if tr.Distrusted || tr.Contradictions != 0 {
			t.Fatalf("honest labeler %s: distrusted=%v contradictions=%d", tr.ID, tr.Distrusted, tr.Contradictions)
		}
	}
}

// assertSamePartitioned bit-compares two partitioned/distributed results
// over the full pool, the distrib suite's assertSameAlignment contract
// at the facade level.
func assertSamePartitioned(t *testing.T, got, want *PartitionedResult, links []Anchor) {
	t.Helper()
	ga, wa := got.PredictedAnchors(), want.PredictedAnchors()
	if len(ga) != len(wa) {
		t.Fatalf("%d predicted anchors with panel vs %d clean", len(ga), len(wa))
	}
	if got.QueryCount() != want.QueryCount() {
		t.Fatalf("QueryCount %d with panel vs %d clean", got.QueryCount(), want.QueryCount())
	}
	for _, l := range links {
		gl, gok := got.Label(l.I, l.J)
		wl, wok := want.Label(l.I, l.J)
		if gok != wok || gl != wl {
			t.Fatalf("label (%d,%d): %v/%v with panel vs %v/%v clean", l.I, l.J, gl, gok, wl, wok)
		}
		gs, _ := got.Score(l.I, l.J)
		ws, _ := want.Score(l.I, l.J)
		if gs != ws {
			t.Fatalf("score (%d,%d): %v with panel vs %v clean", l.I, l.J, gs, ws)
		}
		if got.WasQueried(l.I, l.J) != want.WasQueried(l.I, l.J) {
			t.Fatalf("queried flag (%d,%d) diverges", l.I, l.J)
		}
	}
}

func TestHonestPanelBitIdenticalPartitioned(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)
	links := append(append([]Anchor{}, trainPos...), cands...)
	opts := Options{Budget: 20, Seed: 1, Partitions: 2, Workers: 2}

	clean, err := NewPartitioned(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}

	opts.OracleConfig = honestConfig()
	panelAl, err := NewPartitioned(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := panelAl.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}
	assertSamePartitioned(t, got, want, links)
	if panelAl.Panel() == nil {
		t.Fatal("partitioned Panel() must expose the run's panel")
	}
	// Overlapping partitions may re-query shared links; the panel caches
	// per link, so it sees at most QueryCount distinct queries.
	if q := panelAl.Panel().Queries(); q == 0 || q > got.QueryCount() {
		t.Fatalf("panel saw %d distinct queries, result spent %d", q, got.QueryCount())
	}
}

func TestHonestPanelBitIdenticalDistributed(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)
	links := append(append([]Anchor{}, trainPos...), cands...)
	// Rounds: 2 covers the session path — the panel's answers travel as
	// label deltas to warm workers between rounds.
	opts := Options{Budget: 20, Seed: 1, Partitions: 2, Workers: 2, Rounds: 2}

	clean, err := NewDistributed(pair, opts, NewLoopbackTransport())
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}

	opts.OracleConfig = honestConfig()
	panelAl, err := NewDistributed(pair, opts, NewLoopbackTransport())
	if err != nil {
		t.Fatal(err)
	}
	got, err := panelAl.Align(trainPos, cands, NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}
	assertSamePartitioned(t, got, want, links)
	if panelAl.Panel() == nil {
		t.Fatal("distributed Panel() must expose the run's panel")
	}
	// As in the partitioned case, shard overlap dedups through the
	// panel's answer cache.
	if q := panelAl.Panel().Queries(); q == 0 || q > got.QueryCount() {
		t.Fatalf("panel saw %d distinct queries, result spent %d", q, got.QueryCount())
	}
}

// AlignPrelabeled fixes an earlier panel's weighted labels into the
// pool: the links carry their panel labels, count as queried, and spend
// none of this run's budget.
func TestAlignPrelabeledFixesPanelLabels(t *testing.T) {
	pair, trainPos, testPos, neg := testFixture(t)
	cands := append(append([]Anchor{}, testPos...), neg...)

	// Harvest weighted labels from a standalone honest panel over a few
	// candidate links.
	panel, err := NewOraclePanel(*honestConfig(), NewTruthOracle(pair))
	if err != nil {
		t.Fatal(err)
	}
	asked := cands[:6]
	truth := NewTruthOracle(pair)
	for _, l := range asked {
		panel.Label(l)
	}
	pre := panel.WeightedLabels()
	if len(pre) != len(asked) {
		t.Fatalf("%d weighted labels for %d queries", len(pre), len(asked))
	}

	al, err := New(pair, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := al.AlignPrelabeled(trainPos, cands, nil, pre)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryCount() != 0 {
		t.Fatalf("prelabeled links consumed budget: QueryCount = %d", res.QueryCount())
	}
	for _, wl := range pre {
		if !res.WasQueried(wl.Link.I, wl.Link.J) {
			t.Fatalf("prelabeled link (%d,%d) not flagged as queried", wl.Link.I, wl.Link.J)
		}
		got, ok := res.Label(wl.Link.I, wl.Link.J)
		if !ok || got != truth.Label(wl.Link) {
			t.Fatalf("prelabeled link (%d,%d): label %v, want ground truth %v", wl.Link.I, wl.Link.J, got, truth.Label(wl.Link))
		}
	}
}
