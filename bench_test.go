package activeiter

// Benchmark harness: one benchmark per table and figure of the paper
// (run `go test -bench=. -benchmem`), plus micro-benchmarks for the
// substrates that dominate the pipeline. EXPERIMENTS.md records the
// regenerated artifacts; cmd/experiments produces the full-size runs.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/experiments"
	"github.com/activeiter/activeiter/internal/linalg"
	"github.com/activeiter/activeiter/internal/matching"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/snapshot"
	"github.com/activeiter/activeiter/internal/sparse"
)

// benchPair lazily generates shared fixtures so individual benchmarks
// measure their own work, not dataset generation.
var (
	benchOnce sync.Once
	benchTiny *AlignedPair
)

func tinyPair(b *testing.B) *AlignedPair {
	b.Helper()
	benchOnce.Do(func() {
		p, err := datagen.Generate(datagen.Tiny())
		if err != nil {
			b.Fatal(err)
		}
		benchTiny = p
	})
	return benchTiny
}

// BenchmarkTableII regenerates the dataset-statistics artifact: one full
// synthetic pair generation at the small preset.
func BenchmarkTableII(b *testing.B) {
	cfg := datagen.Small()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		pair, err := datagen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(pair.Anchors) != cfg.AnchorCount {
			b.Fatal("wrong anchor count")
		}
	}
}

// BenchmarkTableIII regenerates one Table III cell (all six methods,
// every fold) at θ = FixedTheta on the tiny preset.
func BenchmarkTableIII(b *testing.B) {
	pre := experiments.TinyPreset()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunTable3(experiments.Preset{
			Name: pre.Name, Data: pre.Data, Folds: pre.Folds,
			ThetaValues: []int{pre.FixedTheta}, GammaValues: pre.GammaValues,
			FixedTheta: pre.FixedTheta, FixedGamma: pre.FixedGamma,
			Budgets: pre.Budgets, Seed: pre.Seed + int64(i), Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Sections) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIV regenerates one Table IV cell (γ sweep point).
func BenchmarkTableIV(b *testing.B) {
	pre := experiments.TinyPreset()
	for i := 0; i < b.N; i++ {
		_, err := experiments.RunTable4(experiments.Preset{
			Name: pre.Name, Data: pre.Data, Folds: pre.Folds,
			ThetaValues: pre.ThetaValues, GammaValues: []float64{pre.FixedGamma},
			FixedTheta: pre.FixedTheta, FixedGamma: pre.FixedGamma,
			Budgets: pre.Budgets, Seed: pre.Seed + int64(i), Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates the convergence trace (Figure 3).
func BenchmarkFig3(b *testing.B) {
	pre := experiments.TinyPreset()
	for i := 0; i < b.N; i++ {
		series, _, err := experiments.RunFig3(pre)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) == 0 {
			b.Fatal("no series")
		}
	}
}

// BenchmarkFig4 measures the quantity Figure 4 plots: one ActiveIter-50
// training run (feature extraction excluded, matching the paper's
// scalability claim about the learning loop).
func BenchmarkFig4(b *testing.B) {
	pair := tinyPair(b)
	prob, truthOracle := benchProblem(b, pair, 10)
	prob.Oracle = truthOracle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Train(prob, core.Config{
			Budget: 50, BatchSize: 5, Strategy: active.Conflict{}, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.QueryCount() == 0 {
			b.Fatal("no queries")
		}
	}
}

// BenchmarkFig5 regenerates one Figure 5 point: ActiveIter at a single
// budget, all folds.
func BenchmarkFig5(b *testing.B) {
	pre := experiments.TinyPreset()
	pre.Budgets = []int{10}
	for i := 0; i < b.N; i++ {
		pre.Seed = int64(i + 1)
		if _, err := experiments.RunFig5(pre); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMatching compares the two selection algorithms on
// identical candidate sets (DESIGN.md E7).
func BenchmarkAblationMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var cands []matching.Candidate
	for k := 0; k < 2000; k++ {
		cands = append(cands, matching.Candidate{
			I: rng.Intn(200), J: rng.Intn(200), Score: rng.Float64(), Payload: k,
		})
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.Greedy(cands, 0.5, nil)
		}
	})
	b.Run("hungarian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.Exact(cands, 0.5, nil)
		}
	})
}

// --- substrate micro-benchmarks ---

func BenchmarkSpGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mk := func(r, c int, density float64) *sparse.CSR {
		bd := sparse.NewBuilder(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if rng.Float64() < density {
					bd.Add(i, j, 1)
				}
			}
		}
		return bd.Build()
	}
	a := mk(500, 500, 0.02)
	c := mk(500, 500, 0.02)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.MatMul(a, c)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.MatMulParallel(a, c)
		}
	})
}

func BenchmarkDiagramCounting(b *testing.B) {
	pair := tinyPair(b)
	lib := schema.StandardLibrary()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			counter, err := metadiag.NewCounter(pair)
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range lib.All() {
				if _, err := counter.Count(n.D); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("warm-lemma2-cache", func(b *testing.B) {
		counter, err := metadiag.NewCounter(pair)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range lib.All() {
			if _, err := counter.Count(n.D); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, n := range lib.All() {
				if _, err := counter.Count(n.D); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// forked-shared-cache measures the cross-fold path the experiment
	// runners now take: each iteration forks a warm base counter (fresh
	// anchor-dependent layer) and recounts the library, reusing the
	// shared attribute-only cache.
	b.Run("forked-shared-cache", func(b *testing.B) {
		base, err := metadiag.NewCounter(pair)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range lib.All() {
			if _, err := base.Count(n.D); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fork := base.Fork()
			fork.SetAnchors(pair.Anchors[:len(pair.Anchors)/2])
			for _, n := range lib.All() {
				if _, err := fork.Count(n.D); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkFeatureExtraction(b *testing.B) {
	pair := tinyPair(b)
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		b.Fatal(err)
	}
	ext := metadiag.NewExtractor(counter, schema.StandardLibrary().All(), true)
	rng := rand.New(rand.NewSource(3))
	links, err := eval.SampleNegatives(pair, 1000, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ext.FeatureMatrix(links); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRidgeSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n, d := 5000, 32
	x := linalg.NewDense(n, d)
	y := make(linalg.Vector, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		if rng.Float64() < 0.1 {
			y[i] = 1
		}
	}
	ridge, err := linalg.NewRidge(x, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("factorize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := linalg.NewRidge(x, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ridge.Solve(x, y)
		}
	})
}

func BenchmarkGreedySelection(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var cands []matching.Candidate
	for k := 0; k < 50000; k++ {
		cands = append(cands, matching.Candidate{
			I: rng.Intn(5000), J: rng.Intn(5000), Score: rng.Float64(), Payload: k,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.Greedy(cands, 0.5, nil)
	}
}

// benchProblem builds a training problem over the tiny pair with real
// meta diagram features.
func benchProblem(b *testing.B, pair *AlignedPair, nTrain int) (core.Problem, Oracle) {
	b.Helper()
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		b.Fatal(err)
	}
	trainPos := pair.Anchors[:nTrain]
	counter.SetAnchors(trainPos)
	ext := metadiag.NewExtractor(counter, schema.StandardLibrary().All(), true)
	rng := rand.New(rand.NewSource(6))
	neg, err := eval.SampleNegatives(pair, 10*len(pair.Anchors), rng)
	if err != nil {
		b.Fatal(err)
	}
	links := append([]Anchor{}, pair.Anchors...)
	links = append(links, neg...)
	x, err := ext.FeatureMatrix(links)
	if err != nil {
		b.Fatal(err)
	}
	labeled := make([]int, nTrain)
	for i := range labeled {
		labeled[i] = i
	}
	return core.Problem{Links: links, X: x, LabeledPos: labeled}, NewTruthOracle(pair)
}

// BenchmarkPartitionedAlignment compares one monolithic alignment pass
// against the partitioned pipeline at several K on the small dataset —
// the PR 2 scalability artifact (BENCH_PR2.json records the large-pair
// runs from cmd/experiments -exp scalability).
func BenchmarkPartitionedAlignment(b *testing.B) {
	pair, err := datagen.Generate(datagen.Small())
	if err != nil {
		b.Fatal(err)
	}
	anchors := pair.Anchors
	trainPos := anchors[:len(anchors)/2]
	rng := rand.New(rand.NewSource(17))
	neg, err := eval.SampleNegatives(pair, 10*len(anchors), rng)
	if err != nil {
		b.Fatal(err)
	}
	candidates := append(append([]Anchor{}, anchors[len(anchors)/2:]...), neg...)
	for _, k := range []int{1, 4} {
		name := "monolithic"
		if k > 1 {
			name = "partitioned-K4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				al, err := NewPartitioned(pair, Options{Seed: 9, Partitions: k})
				if err != nil {
					b.Fatal(err)
				}
				res, err := al.Align(trainPos, candidates, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.PredictedAnchors()) == 0 {
					b.Fatal("no predictions")
				}
			}
		})
	}
}

// BenchmarkDistributedLoopback measures the distributed pipeline's
// transport and serialization overhead against the in-process
// partitioned path it is property-tested equal to: the same K-shard
// plan executed on counter forks vs shipped (extracted, serialized) to
// loopback wire workers — the PR 3 artifact (BENCH_PR3.json records the
// large-pair and subprocess runs from cmd/experiments -exp distributed).
func BenchmarkDistributedLoopback(b *testing.B) {
	pair, err := datagen.Generate(datagen.Small())
	if err != nil {
		b.Fatal(err)
	}
	anchors := pair.Anchors
	trainPos := anchors[:len(anchors)/2]
	rng := rand.New(rand.NewSource(17))
	neg, err := eval.SampleNegatives(pair, 10*len(anchors), rng)
	if err != nil {
		b.Fatal(err)
	}
	candidates := append(append([]Anchor{}, anchors[len(anchors)/2:]...), neg...)
	opts := Options{Seed: 9, Partitions: 4}
	b.Run("in-process-K4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			al, err := NewPartitioned(pair, opts)
			if err != nil {
				b.Fatal(err)
			}
			res, err := al.Align(trainPos, candidates, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.PredictedAnchors()) == 0 {
				b.Fatal("no predictions")
			}
		}
	})
	b.Run("loopback-K4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			al, err := NewDistributed(pair, opts, NewLoopbackTransport())
			if err != nil {
				b.Fatal(err)
			}
			res, err := al.Align(trainPos, candidates, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.PredictedAnchors()) == 0 {
				b.Fatal("no predictions")
			}
			if al.Metrics().JobBytes == 0 {
				b.Fatal("no bytes crossed the wire")
			}
			m := al.Metrics()
			b.ReportMetric(float64(m.JobBytes), "job-bytes")
			b.ReportMetric(float64(m.JobBytes)/float64(len(m.Shards)), "job-bytes/shard")
			b.ReportMetric(float64(m.SeedBytes), "seed-bytes")
		}
	})
}

// BenchmarkDistributedSessionRounds measures the sticky-session active
// loop — the PR 4 artifact: a 3-round retrain over one worker session
// with JobRef delta shipping, against the same rounds re-shipping full
// jobs (what PR 3's dispatch would pay per retrain). The reported
// job-bytes/delta-bytes split is the point: delta rounds move the
// per-retrain wire cost from the shard size to the label delta.
func BenchmarkDistributedSessionRounds(b *testing.B) {
	pair, err := datagen.Generate(datagen.Small())
	if err != nil {
		b.Fatal(err)
	}
	anchors := pair.Anchors
	trainPos := anchors[:len(anchors)/2]
	rng := rand.New(rand.NewSource(17))
	neg, err := eval.SampleNegatives(pair, 10*len(anchors), rng)
	if err != nil {
		b.Fatal(err)
	}
	candidates := append(append([]Anchor{}, anchors[len(anchors)/2:]...), neg...)
	oracle := NewTruthOracle(pair)
	run := func(b *testing.B, opts Options) {
		for i := 0; i < b.N; i++ {
			al, err := NewDistributed(pair, opts, NewLoopbackTransport())
			if err != nil {
				b.Fatal(err)
			}
			res, err := al.Align(trainPos, candidates, oracle)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.PredictedAnchors()) == 0 {
				b.Fatal("no predictions")
			}
			m := al.Metrics()
			b.ReportMetric(float64(m.JobBytes), "job-bytes")
			b.ReportMetric(float64(m.DeltaBytes), "delta-bytes")
			b.ReportMetric(float64(m.CacheHits), "cache-hits")
		}
	}
	b.Run("single-shot-K4", func(b *testing.B) {
		run(b, Options{Seed: 9, Partitions: 4, Budget: 30})
	})
	b.Run("session-3rounds-delta-K4", func(b *testing.B) {
		run(b, Options{Seed: 9, Partitions: 4, Budget: 30, Rounds: 3})
	})
}

// snapshotBenchFixture trains one tiny monolithic alignment and
// serializes its snapshot, shared across the serving benchmarks.
var (
	snapBenchOnce sync.Once
	snapBenchRaw  []byte
	snapBenchErr  error
)

func snapshotBenchBytes(b *testing.B) []byte {
	b.Helper()
	snapBenchOnce.Do(func() {
		pair := tinyPair(b)
		anchors := pair.Anchors
		nTrain := len(anchors) / 4
		trainPos, testPos := anchors[:nTrain], anchors[nTrain:]
		rng := rand.New(rand.NewSource(11))
		neg, err := eval.SampleNegatives(pair, 10*len(anchors), rng)
		if err != nil {
			snapBenchErr = err
			return
		}
		cands := append(append([]Anchor{}, testPos...), neg...)
		opts := Options{Seed: 1}
		a, err := New(pair, opts)
		if err != nil {
			snapBenchErr = err
			return
		}
		res, err := a.Align(trainPos, cands, nil)
		if err != nil {
			snapBenchErr = err
			return
		}
		snap, err := BuildSnapshot(SnapshotMonolithic, pair, res, opts)
		if err != nil {
			snapBenchErr = err
			return
		}
		var buf bytes.Buffer
		if err := snap.Write(&buf); err != nil {
			snapBenchErr = err
			return
		}
		snapBenchRaw = buf.Bytes()
	})
	if snapBenchErr != nil {
		b.Fatal(snapBenchErr)
	}
	return snapBenchRaw
}

// BenchmarkSnapshotLoad measures the serving cold-start path: decode a
// snapshot artifact and build the read-optimized index — the cost of
// an alignd start or reload.
func BenchmarkSnapshotLoad(b *testing.B) {
	raw := snapshotBenchBytes(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := snapshot.Read(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewServeIndex(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeTopK measures the hot query path — matched-partner
// lookup plus top-k candidate ranking — single-goroutine and across
// GOMAXPROCS clients (the index is immutable, so parallel should scale
// near-linearly).
func BenchmarkServeTopK(b *testing.B) {
	raw := snapshotBenchBytes(b)
	snap, err := snapshot.Read(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	ix, err := NewServeIndex(snap)
	if err != nil {
		b.Fatal(err)
	}
	n1 := len(snap.Meta.Users1)
	// A package-level sink keeps the lookups from being optimized away;
	// correctness of MatchFor/CandidatesFor belongs to the tests, not
	// here (b.Fatal is illegal from RunParallel worker goroutines).
	query := func(u int32) int {
		m, _ := ix.MatchFor(1, u)
		return int(m.Index) + len(ix.CandidatesFor(1, u, 5))
	}
	b.Run("single", func(b *testing.B) {
		sum := 0
		for i := 0; i < b.N; i++ {
			sum += query(int32(i % n1))
		}
		benchSink = sum
	})
	b.Run("parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			u := int32(0)
			sum := 0
			for pb.Next() {
				sum += query(u % int32(n1))
				u++
			}
			benchSink = sum
		})
	})
}

// benchSink defeats dead-code elimination in the serving benchmarks.
var benchSink int
