// Package isorank implements an IsoRank-style unsupervised network
// aligner (Singh, Xu, Berger — reference [16] of the paper): the classic
// baseline family the paper's related work positions ActiveIter against.
//
// IsoRank propagates pairwise similarity over the two social graphs,
//
//	R(i,j) = α · Σ_{u∈N(i)} Σ_{v∈N(j)} R(u,v) / (|N(u)|·|N(v)|)
//	         + (1−α) · H(i,j),
//
// where N(·) are (undirected) follow neighborhoods and H is a prior
// similarity — here the normalized joint-attribute proximity Ψ^a², so
// the baseline sees the same attribute evidence as ActiveIter but no
// labels. The fixpoint is found by power iteration; a greedy one-to-one
// matching over R yields the predicted anchors.
//
// Comparing IsoRank against the PU/active family quantifies what the
// paper's supervision buys (see experiments.RunUnsupervisedComparison).
package isorank

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/matching"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/sparse"
)

// Config controls the similarity propagation.
type Config struct {
	// Alpha weighs structural propagation against the attribute prior;
	// default 0.6 (the IsoRank paper's favoured range).
	Alpha float64
	// Iterations caps the power iteration; default 20.
	Iterations int
	// Tol stops early when the max entry change falls below it; default
	// 1e-6.
	Tol float64
	// TopM keeps only the M best-scored counterparts per user when
	// matching; default 10 (bounds the matching problem size).
	TopM int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.6
	}
	if c.Iterations <= 0 {
		c.Iterations = 20
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.TopM <= 0 {
		c.TopM = 10
	}
	return c
}

// Result is a completed unsupervised alignment.
type Result struct {
	// Similarity is the converged |U¹|×|U²| similarity matrix.
	Similarity *sparse.CSR
	// Matches are the greedily selected one-to-one correspondences in
	// descending similarity order.
	Matches []hetnet.Anchor
	// Iterations actually performed.
	Iterations int
}

// Similarity runs the IsoRank power iteration and returns the converged
// |U¹|×|U²| similarity matrix without the matching step — the coarse
// scorer the partitioned aligner seeds its candidate-space shards with.
// hasAttr reports whether the pair carried any joint attribute evidence:
// when false the returned matrix was propagated from the dense uniform
// prior, which large-pair callers should avoid by falling back to
// structure-only seeding instead of calling this at scale.
func Similarity(pair *hetnet.AlignedPair, cfg Config) (r *sparse.CSR, hasAttr bool, iters int, err error) {
	cfg = cfg.withDefaults()
	n1 := pair.G1.NodeCount(hetnet.User)
	n2 := pair.G2.NodeCount(hetnet.User)
	if n1 == 0 || n2 == 0 {
		return nil, false, 0, fmt.Errorf("isorank: empty user sets %d/%d", n1, n2)
	}

	// Symmetrized, degree-normalized follow operators: W = (A ∨ Aᵀ) with
	// rows scaled by 1/degree. Propagation is then R ← α·W1ᵀ? We use
	// R ← α · W1 · R · W2ᵀ with W the *column*-normalized undirected
	// adjacency, which realizes the neighbor-average recurrence.
	w1, err := NormalizedUndirected(pair.G1)
	if err != nil {
		return nil, false, 0, err
	}
	w2, err := NormalizedUndirected(pair.G2)
	if err != nil {
		return nil, false, 0, err
	}

	// Attribute prior: Ψ^a² proximity, normalized to sum 1; uniform when
	// the networks carry no attribute overlap at all.
	prior, hasAttr, err := attributePrior(pair, n1, n2)
	if err != nil {
		return nil, false, 0, err
	}

	r = prior
	for it := 0; it < cfg.Iterations; it++ {
		iters = it + 1
		// R' = α · W1 R W2ᵀ + (1−α) H.
		prop := sparse.MatMulParallel(sparse.MatMulParallel(w1, r), w2.T())
		next := sparse.Add(prop.Scale(cfg.Alpha), prior.Scale(1-cfg.Alpha))
		next = renormalize(next)
		delta := maxAbsDiff(next, r)
		r = next
		if delta < cfg.Tol {
			break
		}
	}
	return r, hasAttr, iters, nil
}

// Align runs IsoRank over the pair. No anchor labels are consulted.
func Align(pair *hetnet.AlignedPair, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r, _, iters, err := Similarity(pair, cfg)
	if err != nil {
		return nil, err
	}

	// Greedy one-to-one matching over the top-M candidates per user.
	top := r.TopKPerRow(cfg.TopM)
	var cands []matching.Candidate
	top.Iterate(func(i, j int, v float64) {
		cands = append(cands, matching.Candidate{I: i, J: j, Score: v})
	})
	selected := matching.Greedy(cands, 0, nil)
	matches := make([]hetnet.Anchor, len(selected))
	for k, c := range selected {
		matches[k] = hetnet.Anchor{I: c.I, J: c.J}
	}
	return &Result{Similarity: r, Matches: matches, Iterations: iters}, nil
}

// NormalizedUndirected returns the symmetrized follow adjacency with
// rows scaled to sum 1 (isolated users keep empty rows) — the neighbor-
// average propagation operator of the IsoRank recurrence. Shared with
// the partition planner's coarse-similarity seed so both propagate with
// identical semantics.
func NormalizedUndirected(g *hetnet.Network) (*sparse.CSR, error) {
	adj, err := g.Adjacency(hetnet.Follow)
	if err != nil {
		return nil, err
	}
	sym := sparse.Add(adj, adj.T()).Binarize()
	rows := sym.RowSums()
	b := sparse.NewBuilder(sym.Rows(), sym.Cols())
	sym.Iterate(func(i, j int, v float64) {
		if rows[i] > 0 {
			b.Add(i, j, v/rows[i])
		}
	})
	return b.Build(), nil
}

// attributePrior builds the Ψ^a² proximity prior, falling back to a
// uniform matrix (hasAttr=false) when no joint attributes exist.
func attributePrior(pair *hetnet.AlignedPair, n1, n2 int) (prior *sparse.CSR, hasAttr bool, err error) {
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		return nil, false, err
	}
	// No anchors are used: clear them so path features cannot leak.
	counter.SetAnchors(nil)
	prox, err := counter.Proximity(schema.AttributeDiagram(hetnet.At, hetnet.Checkin))
	if err != nil {
		return nil, false, err
	}
	sm := prox.ScoreMatrix()
	if sm.NNZ() == 0 {
		// Uniform prior: every pair equally likely.
		b := sparse.NewBuilder(n1, n2)
		u := 1 / float64(n1*n2)
		for i := 0; i < n1; i++ {
			for j := 0; j < n2; j++ {
				b.Add(i, j, u)
			}
		}
		return b.Build(), false, nil
	}
	return renormalize(sm), true, nil
}

// renormalize scales a non-negative matrix to total sum 1.
func renormalize(m *sparse.CSR) *sparse.CSR {
	s := m.Sum()
	if s == 0 {
		return m
	}
	return m.Scale(1 / s)
}

// maxAbsDiff returns the max |a−b| entry difference.
func maxAbsDiff(a, b *sparse.CSR) float64 {
	diff := sparse.Add(a, b.Scale(-1))
	var mx float64
	diff.Iterate(func(i, j int, v float64) {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	})
	return mx
}
