package isorank

import (
	"testing"

	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/hetnet"
)

func TestAlignRecoversAnchorsUnsupervised(t *testing.T) {
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Align(pair, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches")
	}
	truth := pair.AnchorSet()
	correct := 0
	for _, m := range res.Matches {
		if truth[hetnet.Key(m.I, m.J)] {
			correct++
		}
	}
	recallOfAnchors := float64(correct) / float64(len(pair.Anchors))
	// Unsupervised with attribute prior: expect meaningful but imperfect
	// recovery — far above random (1/64 per user) yet below ActiveIter.
	if recallOfAnchors < 0.15 {
		t.Errorf("unsupervised anchor recovery = %.2f (%d/%d), want ≥ 0.15",
			recallOfAnchors, correct, len(pair.Anchors))
	}
	// One-to-one holds.
	seenI, seenJ := map[int]bool{}, map[int]bool{}
	for _, m := range res.Matches {
		if seenI[m.I] || seenJ[m.J] {
			t.Fatal("matching violates one-to-one")
		}
		seenI[m.I] = true
		seenJ[m.J] = true
	}
	if res.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

func TestAlignDefaultsAndConvergence(t *testing.T) {
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Very loose tolerance: must stop well before the cap.
	res, err := Align(pair, Config{Tol: 1, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Errorf("loose tolerance should converge immediately, took %d", res.Iterations)
	}
	// Tight cap is respected.
	res2, err := Align(pair, Config{Iterations: 2, Tol: 1e-30})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations != 2 {
		t.Errorf("iteration cap ignored: %d", res2.Iterations)
	}
}

func TestAlignEmptyNetworksFail(t *testing.T) {
	g1 := hetnet.NewSocialNetwork("a")
	g2 := hetnet.NewSocialNetwork("b")
	pair := hetnet.NewAlignedPair(g1, g2)
	if _, err := Align(pair, Config{}); err == nil {
		t.Error("empty networks should fail")
	}
}

func TestAlignUniformPriorFallback(t *testing.T) {
	// Networks with follows but zero posts: the attribute prior is empty
	// and the uniform fallback must kick in without errors.
	g1 := hetnet.NewSocialNetwork("a")
	g2 := hetnet.NewSocialNetwork("b")
	for _, g := range []*hetnet.Network{g1, g2} {
		for i := 0; i < 5; i++ {
			g.AddNode(hetnet.User, string(rune('a'+i)))
		}
		for i := 0; i < 4; i++ {
			if err := g.AddLink(hetnet.Follow, i, i+1); err != nil {
				t.Fatal(err)
			}
		}
	}
	pair := hetnet.NewAlignedPair(g1, g2)
	res, err := Align(pair, Config{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Similarity.NNZ() == 0 {
		t.Error("similarity empty under uniform prior")
	}
}

func TestSimilarityIsNormalized(t *testing.T) {
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Align(pair, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Similarity.Sum()
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("similarity mass = %v, want ≈ 1", sum)
	}
}
