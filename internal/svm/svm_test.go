package svm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/activeiter/activeiter/internal/linalg"
)

// dataset builds (x, y) with a trailing bias feature.
func dataset(points [][2]float64, labels []float64) (*linalg.Dense, []float64) {
	x := linalg.NewDense(len(points), 3)
	for i, p := range points {
		x.Set(i, 0, p[0])
		x.Set(i, 1, p[1])
		x.Set(i, 2, 1)
	}
	return x, labels
}

func TestTrainSeparable(t *testing.T) {
	// Positives in the upper-right, negatives lower-left: separable.
	x, y := dataset([][2]float64{
		{2, 2}, {3, 2}, {2.5, 3},
		{-2, -2}, {-3, -2}, {-2, -3},
	}, []float64{1, 1, 1, 0, 0, 0})
	m, err := Train(x, y, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	preds := m.PredictBatch(x)
	for i, p := range preds {
		if p != y[i] {
			t.Errorf("row %d: predicted %v, want %v", i, p, y[i])
		}
	}
}

func TestTrainKnownMaxMargin(t *testing.T) {
	// 1-D points at ±1 with bias: max margin separator is w=(1,0),
	// decision boundary at x=0.
	x := linalg.NewDense(2, 2)
	x.Set(0, 0, 1)
	x.Set(0, 1, 1)
	x.Set(1, 0, -1)
	x.Set(1, 1, 1)
	m, err := Train(x, []float64{1, 0}, Config{C: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Margin constraints: w·(1,1) ≥ 1 and w·(-1,1) ≤ -1 with minimal
	// ‖w‖ → w = (1, 0).
	if math.Abs(m.W[0]-1) > 1e-2 || math.Abs(m.W[1]) > 1e-2 {
		t.Errorf("w = %v, want ≈ [1 0]", m.W)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(linalg.NewDense(0, 0), nil, Config{}); err == nil {
		t.Error("empty training set should fail")
	}
	x := linalg.NewDense(2, 2)
	if _, err := Train(x, []float64{1}, Config{}); err == nil {
		t.Error("label length mismatch should fail")
	}
	if _, err := Train(x, []float64{1, 0.5}, Config{}); err == nil {
		t.Error("non-binary label should fail")
	}
}

func TestImbalanceCollapsesRecall(t *testing.T) {
	// The pathology the paper reports for SVM at high NP-ratio: with
	// massively imbalanced, overlapping classes, the unweighted SVM
	// predicts (almost) everything negative.
	rng := rand.New(rand.NewSource(7))
	n := 1000
	x := linalg.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if i < 10 { // 1% positives, weak signal
			x.Set(i, 0, 0.3+rng.NormFloat64())
			y[i] = 1
		} else {
			x.Set(i, 0, rng.NormFloat64())
			y[i] = 0
		}
		x.Set(i, 1, 1)
	}
	m, err := Train(x, y, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	positives := 0
	for _, p := range m.PredictBatch(x) {
		if p == 1 {
			positives++
		}
	}
	if positives > 3 {
		t.Errorf("unweighted SVM predicted %d positives on overlapping 1%% data, expected near-zero", positives)
	}
	// With heavy positive weighting it recovers some recall.
	mw, err := Train(x, y, Config{PosWeight: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for i, p := range mw.PredictBatch(x) {
		if p == 1 && y[i] == 1 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("weighted SVM should recover some positive predictions")
	}
}

func TestDualFeasibility(t *testing.T) {
	// KKT sanity on a small random problem: the learned w must satisfy
	// the representer form with bounded duals — verified indirectly via
	// hinge-objective comparison against perturbations of w.
	rng := rand.New(rand.NewSource(11))
	n, d := 60, 4
	x := linalg.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d-1; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		x.Set(i, d-1, 1)
		if x.At(i, 0)+0.5*x.At(i, 1) > 0 {
			y[i] = 1
		}
	}
	cfg := Config{C: 1, Seed: 3, MaxEpochs: 2000, Tol: 1e-8}
	m, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj := func(w linalg.Vector) float64 {
		v := 0.5 * w.Dot(w)
		for i := 0; i < n; i++ {
			s := 2*y[i] - 1
			margin := 1 - s*w.Dot(x.RowView(i))
			if margin > 0 {
				v += cfg.C * margin
			}
		}
		return v
	}
	base := obj(m.W)
	for trial := 0; trial < 30; trial++ {
		pert := m.W.Clone()
		for j := range pert {
			pert[j] += rng.NormFloat64() * 0.05
		}
		if obj(pert) < base-1e-3 {
			t.Fatalf("perturbed w improves the primal objective: %v < %v (not optimal)", obj(pert), base)
		}
	}
}

func TestTrainDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, d := 40, 3
	x := linalg.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		if rng.Float64() < 0.5 {
			y[i] = 1
		}
	}
	m1, err := Train(x, y, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(x, y, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !m1.W.EqualApprox(m2.W, 0) {
		t.Error("same seed should give identical models")
	}
}

func TestZeroRowsIgnored(t *testing.T) {
	x := linalg.NewDense(3, 2)
	x.Set(0, 0, 1)
	x.Set(0, 1, 1)
	x.Set(1, 0, -1)
	x.Set(1, 1, 1)
	// Row 2 is all zero.
	m, err := Train(x, []float64{1, 0, 0}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(linalg.Vector{1, 1}) != 1 {
		t.Error("zero rows should not break training")
	}
}

func TestDecisionBatchMatchesDecision(t *testing.T) {
	x, y := dataset([][2]float64{{1, 1}, {-1, -1}}, []float64{1, 0})
	m, err := Train(x, y, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := m.DecisionBatch(x)
	for i := range batch {
		if got := m.Decision(x.RowView(i)); got != batch[i] {
			t.Errorf("row %d: %v != %v", i, got, batch[i])
		}
	}
}
