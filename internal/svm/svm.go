// Package svm implements a linear support vector machine trained by dual
// coordinate descent (Hsieh et al., ICML 2008 — the LIBLINEAR algorithm),
// used by the paper's supervised baselines SVM-MP and SVM-MPMD.
//
// The primal problem is
//
//	min_w  ½‖w‖² + C Σᵢ cᵢ · max(0, 1 − yᵢ·w·xᵢ)
//
// with yᵢ ∈ {−1,+1} and optional per-instance cost multipliers cᵢ (class
// weighting). The bias is absorbed into w via the caller's trailing
// constant feature, matching the feature layout produced by
// metadiag.Extractor.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/activeiter/activeiter/internal/linalg"
)

// Config controls training.
type Config struct {
	// C is the misclassification cost. Defaults to 1 when zero.
	C float64
	// PosWeight multiplies C for positive instances; 1 (default) is the
	// unweighted SVM the paper's baselines use, which is what makes their
	// recall collapse under extreme class imbalance (Table III, θ ≥ 25).
	PosWeight float64
	// Tol is the projected-gradient stopping tolerance. Defaults to 1e-4.
	Tol float64
	// MaxEpochs caps the number of passes over the data. Defaults to 200.
	MaxEpochs int
	// Seed drives the per-epoch coordinate shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.C <= 0 {
		c.C = 1
	}
	if c.PosWeight <= 0 {
		c.PosWeight = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 200
	}
	return c
}

// Model is a trained linear SVM.
type Model struct {
	// W is the weight vector, one entry per feature (bias included if the
	// design matrix carried a constant feature).
	W linalg.Vector
	// Epochs is how many passes training used before convergence.
	Epochs int
}

// ErrNoData is returned when the training set is empty.
var ErrNoData = errors.New("svm: empty training set")

// Train fits a linear SVM on design matrix x (n×d) and labels y with
// yᵢ ∈ {0, 1} (converted internally to ±1).
func Train(x *linalg.Dense, y []float64, cfg Config) (*Model, error) {
	n, d := x.Dims()
	if n == 0 || d == 0 {
		return nil, ErrNoData
	}
	if len(y) != n {
		return nil, fmt.Errorf("svm: %d labels for %d rows", len(y), n)
	}
	cfg = cfg.withDefaults()

	sign := make([]float64, n)
	cost := make([]float64, n)
	for i, v := range y {
		switch v {
		case 1:
			sign[i] = 1
			cost[i] = cfg.C * cfg.PosWeight
		case 0:
			sign[i] = -1
			cost[i] = cfg.C
		default:
			return nil, fmt.Errorf("svm: label %v at row %d not in {0,1}", v, i)
		}
	}

	// Q_ii = xᵢ·xᵢ (for L1-loss dual, no diagonal shift).
	qd := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.RowView(i)
		qd[i] = row.Dot(row)
	}

	alpha := make([]float64, n)
	w := make(linalg.Vector, d)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	epochs := 0
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		epochs = epoch + 1
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		maxPG := 0.0
		for _, i := range order {
			if qd[i] == 0 {
				continue // zero row: gradient fixed, no update possible
			}
			xi := x.RowView(i)
			g := sign[i]*w.Dot(xi) - 1
			// Projected gradient respecting 0 ≤ α ≤ cost.
			pg := g
			if alpha[i] == 0 && g > 0 {
				pg = 0
			} else if alpha[i] == cost[i] && g < 0 {
				pg = 0
			}
			if math.Abs(pg) > maxPG {
				maxPG = math.Abs(pg)
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			na := old - g/qd[i]
			if na < 0 {
				na = 0
			} else if na > cost[i] {
				na = cost[i]
			}
			alpha[i] = na
			if delta := (na - old) * sign[i]; delta != 0 {
				w.AXPY(delta, xi)
			}
		}
		if maxPG < cfg.Tol {
			break
		}
	}
	return &Model{W: w, Epochs: epochs}, nil
}

// Decision returns the raw margin w·x.
func (m *Model) Decision(x linalg.Vector) float64 { return m.W.Dot(x) }

// Predict returns the class label in {0, 1}: 1 when the margin is
// positive.
func (m *Model) Predict(x linalg.Vector) float64 {
	if m.Decision(x) > 0 {
		return 1
	}
	return 0
}

// PredictBatch returns predicted labels for every row of x.
func (m *Model) PredictBatch(x *linalg.Dense) []float64 {
	n, _ := x.Dims()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.Predict(x.RowView(i))
	}
	return out
}

// DecisionBatch returns raw margins for every row of x.
func (m *Model) DecisionBatch(x *linalg.Dense) []float64 {
	n, _ := x.Dims()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.Decision(x.RowView(i))
	}
	return out
}
