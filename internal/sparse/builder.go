package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates coordinate-format (COO) triplets and compiles them
// into a CSR matrix. Duplicate coordinates are summed, matching the
// semantics of counting multiple meta path instances over the same node
// pair.
type Builder struct {
	rows, cols int
	is, js     []int
	vs         []float64
}

// NewBuilder returns a builder for an r×c matrix.
func NewBuilder(r, c int) *Builder {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: NewBuilder negative dimension %dx%d", r, c))
	}
	return &Builder{rows: r, cols: c}
}

// Add records value v at (i, j). Zero values are ignored. Adding to the
// same coordinate twice accumulates.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Builder.Add (%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.is = append(b.is, i)
	b.js = append(b.js, j)
	b.vs = append(b.vs, v)
}

// Len returns the number of recorded triplets (before deduplication).
func (b *Builder) Len() int { return len(b.vs) }

// Build compiles the triplets into a CSR matrix. The builder may be
// reused afterwards; further Adds start a fresh accumulation.
func (b *Builder) Build() *CSR {
	m := &CSR{rows: b.rows, cols: b.cols, rowPtr: make([]int, b.rows+1)}
	if len(b.vs) == 0 {
		return m
	}
	// Sort triplets by (row, col) so duplicates become adjacent.
	order := make([]int, len(b.vs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, c := order[x], order[y]
		if b.is[a] != b.is[c] {
			return b.is[a] < b.is[c]
		}
		return b.js[a] < b.js[c]
	})
	colIdx := make([]int, 0, len(b.vs))
	val := make([]float64, 0, len(b.vs))
	prevI, prevJ := -1, -1
	for _, k := range order {
		i, j, v := b.is[k], b.js[k], b.vs[k]
		if i == prevI && j == prevJ {
			val[len(val)-1] += v
			continue
		}
		colIdx = append(colIdx, j)
		val = append(val, v)
		m.rowPtr[i+1]++
		prevI, prevJ = i, j
	}
	// Drop entries that cancelled to exactly zero.
	outIdx := colIdx[:0]
	outVal := val[:0]
	pos := 0
	for i := 0; i < b.rows; i++ {
		n := m.rowPtr[i+1]
		kept := 0
		for k := 0; k < n; k++ {
			if val[pos+k] != 0 {
				outIdx = append(outIdx, colIdx[pos+k])
				outVal = append(outVal, val[pos+k])
				kept++
			}
		}
		pos += n
		m.rowPtr[i+1] = kept
	}
	for i := 0; i < b.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	m.colIdx = outIdx
	m.val = outVal
	b.is, b.js, b.vs = nil, nil, nil
	return m
}

// FromDense builds a CSR matrix from a row-major dense value slice,
// skipping zeros. It panics if len(data) != r*c.
func FromDense(r, c int, data []float64) *CSR {
	if len(data) != r*c {
		panic(fmt.Sprintf("sparse: FromDense needs %d values, got %d", r*c, len(data)))
	}
	b := NewBuilder(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if v := data[i*c+j]; v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// ToDense expands m into a row-major dense value slice of length
// rows·cols.
func (m *CSR) ToDense() []float64 {
	out := make([]float64, m.rows*m.cols)
	m.Iterate(func(i, j int, v float64) {
		out[i*m.cols+j] = v
	})
	return out
}
