package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul returns the sparse product a·b using Gustavson's row-by-row
// algorithm with a pooled dense accumulator. It panics on
// inner-dimension mismatch. For an adjacency chain this computes meta
// path instance counts: (a·b)(i,j) = Σₖ a(i,k)·b(k,j) = number of
// two-hop walks.
func MatMul(a, b *CSR) *CSR {
	if a.cols != b.rows {
		panic(fmt.Sprintf("sparse: MatMul dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := &CSR{rows: a.rows, cols: b.cols, rowPtr: make([]int, a.rows+1)}
	rowLen := make([]int, a.rows)
	out.colIdx, out.val = mulRows(a, b, 0, a.rows, rowLen)
	for i, n := range rowLen {
		out.rowPtr[i+1] = out.rowPtr[i] + n
	}
	return out
}

// MatMulParallel computes a·b splitting row blocks across GOMAXPROCS
// workers. It returns the same result as MatMul; use it for large chains
// such as the post-attribute products in meta path P5/P6.
func MatMulParallel(a, b *CSR) *CSR {
	if a.cols != b.rows {
		panic(fmt.Sprintf("sparse: MatMulParallel dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.rows {
		workers = a.rows
	}
	if workers <= 1 || a.rows < 64 {
		return MatMul(a, b)
	}
	type block struct {
		lo, hi int
		rowLen []int
		colIdx []int
		val    []float64
	}
	blocks := make([]block, workers)
	var wg sync.WaitGroup
	chunk := (a.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		if lo >= hi {
			blocks[w] = block{lo: lo, hi: lo}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			blk := block{lo: lo, hi: hi, rowLen: make([]int, hi-lo)}
			blk.colIdx, blk.val = mulRows(a, b, lo, hi, blk.rowLen)
			blocks[w] = blk
		}(w, lo, hi)
	}
	wg.Wait()
	out := &CSR{rows: a.rows, cols: b.cols, rowPtr: make([]int, a.rows+1)}
	total := 0
	for _, blk := range blocks {
		total += len(blk.val)
	}
	out.colIdx = make([]int, 0, total)
	out.val = make([]float64, 0, total)
	for _, blk := range blocks {
		for i := blk.lo; i < blk.hi; i++ {
			out.rowPtr[i+1] = out.rowPtr[i] + blk.rowLen[i-blk.lo]
		}
		out.colIdx = append(out.colIdx, blk.colIdx...)
		out.val = append(out.val, blk.val...)
	}
	return out
}

// Hadamard returns the elementwise product a ⊙ b. Shapes must match. The
// result stores entries only where both inputs are non-zero — exactly the
// "both path patterns present" semantics of meta diagram stacking.
func Hadamard(a, b *CSR) *CSR {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("sparse: Hadamard shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := &CSR{rows: a.rows, cols: a.cols, rowPtr: make([]int, a.rows+1)}
	var colIdx []int
	var val []float64
	for i := 0; i < a.rows; i++ {
		ka, kb := a.rowPtr[i], b.rowPtr[i]
		endA, endB := a.rowPtr[i+1], b.rowPtr[i+1]
		for ka < endA && kb < endB {
			ja, jb := a.colIdx[ka], b.colIdx[kb]
			switch {
			case ja == jb:
				if v := a.val[ka] * b.val[kb]; v != 0 {
					colIdx = append(colIdx, ja)
					val = append(val, v)
				}
				ka++
				kb++
			case ja < jb:
				ka++
			default:
				kb++
			}
		}
		out.rowPtr[i+1] = len(val)
	}
	out.colIdx = colIdx
	out.val = val
	return out
}

// Add returns a + b. Shapes must match. Entries that cancel exactly are
// dropped.
func Add(a, b *CSR) *CSR {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("sparse: Add shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := &CSR{rows: a.rows, cols: a.cols, rowPtr: make([]int, a.rows+1)}
	var colIdx []int
	var val []float64
	push := func(j int, v float64) {
		if v != 0 {
			colIdx = append(colIdx, j)
			val = append(val, v)
		}
	}
	for i := 0; i < a.rows; i++ {
		ka, kb := a.rowPtr[i], b.rowPtr[i]
		endA, endB := a.rowPtr[i+1], b.rowPtr[i+1]
		for ka < endA || kb < endB {
			switch {
			case kb >= endB || (ka < endA && a.colIdx[ka] < b.colIdx[kb]):
				push(a.colIdx[ka], a.val[ka])
				ka++
			case ka >= endA || b.colIdx[kb] < a.colIdx[ka]:
				push(b.colIdx[kb], b.val[kb])
				kb++
			default:
				push(a.colIdx[ka], a.val[ka]+b.val[kb])
				ka++
				kb++
			}
		}
		out.rowPtr[i+1] = len(val)
	}
	out.colIdx = colIdx
	out.val = val
	return out
}

// MulVec returns the matrix-vector product m·x. It panics on dimension
// mismatch.
func (m *CSR) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch %dx%d · %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns mᵀ·x without materializing the transpose.
func (m *CSR) TMulVec(x []float64) []float64 {
	if m.rows != len(x) {
		panic(fmt.Sprintf("sparse: TMulVec dimension mismatch %dx%d ᵀ· %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[m.colIdx[k]] += m.val[k] * xi
		}
	}
	return out
}

// Chain multiplies a sequence of matrices: Chain(a, b, c) computes
// a·b·c. It panics if the sequence is empty or any inner dimension
// mismatches. Rather than associating blindly left to right, each step
// multiplies the adjacent pair with the smallest exact Gustavson flop
// count (Σ over stored entries (i,k) of the left factor of the right
// factor's row-k length), so a cheap attribute product collapses before
// it is dragged through an expensive follow product. Products are
// evaluated with MatMulParallel.
func Chain(ms ...*CSR) *CSR {
	if len(ms) == 0 {
		panic("sparse: Chain of zero matrices")
	}
	for i := 0; i+1 < len(ms); i++ {
		if ms[i].cols != ms[i+1].rows {
			panic(fmt.Sprintf("sparse: Chain dimension mismatch %dx%d · %dx%d at position %d",
				ms[i].rows, ms[i].cols, ms[i+1].rows, ms[i+1].cols, i))
		}
	}
	work := make([]*CSR, len(ms))
	copy(work, ms)
	for len(work) > 1 {
		best := 0
		bestCost := spgemmFlops(work[0], work[1])
		for i := 1; i+1 < len(work); i++ {
			if c := spgemmFlops(work[i], work[i+1]); c < bestCost {
				best, bestCost = i, c
			}
		}
		// The chosen product's flop count was already computed for the
		// association scan — folding it into the process counter costs
		// one atomic add, no extra matrix pass.
		mSpgemmFlops.Add(int64(bestCost))
		prod := MatMulParallel(work[best], work[best+1])
		work[best] = prod
		work = append(work[:best+1], work[best+2:]...)
	}
	return work[0]
}

// spgemmFlops returns the exact multiply-add count Gustavson SpGEMM
// performs for a·b — the row-length dot product Σₖ |a(·,k)|·|b(k,·)|,
// evaluated as one pass over a's stored column indices.
func spgemmFlops(a, b *CSR) float64 {
	var f float64
	for _, k := range a.colIdx {
		f += float64(b.rowPtr[k+1] - b.rowPtr[k])
	}
	return f
}
