package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseMul is the reference implementation used to validate SpGEMM.
func denseMul(a, b *CSR) []float64 {
	ar, ac := a.Dims()
	_, bc := b.Dims()
	ad, bd := a.ToDense(), b.ToDense()
	out := make([]float64, ar*bc)
	for i := 0; i < ar; i++ {
		for k := 0; k < ac; k++ {
			av := ad[i*ac+k]
			if av == 0 {
				continue
			}
			for j := 0; j < bc; j++ {
				out[i*bc+j] += av * bd[k*bc+j]
			}
		}
	}
	return out
}

func sliceEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMulKnown(t *testing.T) {
	a := FromDense(2, 3, []float64{1, 2, 0, 0, 1, 1})
	b := FromDense(3, 2, []float64{1, 0, 0, 1, 1, 1})
	got := MatMul(a, b)
	want := []float64{1, 2, 1, 2}
	if !sliceEq(got.ToDense(), want, 0) {
		t.Errorf("MatMul = %v, want %v", got.ToDense(), want)
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(Zero(2, 3), Zero(2, 3))
}

func TestMatMulAgainstDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randomCSR(rng, m, k, 0.3)
		b := randomCSR(rng, k, n, 0.3)
		got := MatMul(a, b)
		if !sliceEq(got.ToDense(), denseMul(a, b), 1e-9) {
			t.Fatalf("trial %d: MatMul mismatch", trial)
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, size := range []int{10, 100, 300} {
		a := randomCSR(rng, size, size, 0.05)
		b := randomCSR(rng, size, size, 0.05)
		serial := MatMul(a, b)
		parallel := MatMulParallel(a, b)
		if !serial.Equal(parallel) {
			t.Fatalf("size %d: parallel result differs from serial", size)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomCSR(rng, 8, 8, 0.4)
	if !MatMul(a, Identity(8)).Equal(a) {
		t.Error("A·I != A")
	}
	if !MatMul(Identity(8), a).Equal(a) {
		t.Error("I·A != A")
	}
}

func TestMatMulCountsTwoHopWalks(t *testing.T) {
	// Path graph 0→1→2 plus 0→2: squared adjacency counts 2-walks.
	b := NewBuilder(3, 3)
	b.Add(0, 1, 1)
	b.Add(1, 2, 1)
	b.Add(0, 2, 1)
	adj := b.Build()
	sq := MatMul(adj, adj)
	if got := sq.At(0, 2); got != 1 {
		t.Errorf("two-hop count 0→2 = %v, want 1", got)
	}
	if sq.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", sq.NNZ())
	}
}

func TestHadamardKnown(t *testing.T) {
	a := FromDense(2, 2, []float64{1, 2, 3, 0})
	b := FromDense(2, 2, []float64{5, 0, 2, 7})
	got := Hadamard(a, b)
	want := []float64{5, 0, 6, 0}
	if !sliceEq(got.ToDense(), want, 0) {
		t.Errorf("Hadamard = %v, want %v", got.ToDense(), want)
	}
	if got.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", got.NNZ())
	}
}

func TestHadamardAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(15), 1+rng.Intn(15)
		a := randomCSR(rng, r, c, 0.4)
		b := randomCSR(rng, r, c, 0.4)
		got := Hadamard(a, b).ToDense()
		ad, bd := a.ToDense(), b.ToDense()
		want := make([]float64, len(ad))
		for i := range ad {
			want[i] = ad[i] * bd[i]
		}
		if !sliceEq(got, want, 0) {
			t.Fatalf("trial %d: Hadamard mismatch", trial)
		}
	}
}

func TestAddAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(15), 1+rng.Intn(15)
		a := randomCSR(rng, r, c, 0.4)
		b := randomCSR(rng, r, c, 0.4)
		got := Add(a, b).ToDense()
		ad, bd := a.ToDense(), b.ToDense()
		want := make([]float64, len(ad))
		for i := range ad {
			want[i] = ad[i] + bd[i]
		}
		if !sliceEq(got, want, 0) {
			t.Fatalf("trial %d: Add mismatch", trial)
		}
	}
}

func TestAddCancellation(t *testing.T) {
	a := FromDense(1, 2, []float64{3, 1})
	b := FromDense(1, 2, []float64{-3, 1})
	sum := Add(a, b)
	if sum.NNZ() != 1 {
		t.Errorf("cancelled entry should be dropped, nnz=%d", sum.NNZ())
	}
	if sum.At(0, 1) != 2 {
		t.Errorf("At(0,1) = %v, want 2", sum.At(0, 1))
	}
}

func TestMulVec(t *testing.T) {
	m := FromDense(2, 3, []float64{1, 0, 2, 0, 3, 0})
	got := m.MulVec([]float64{1, 1, 1})
	if got[0] != 3 || got[1] != 3 {
		t.Errorf("MulVec = %v", got)
	}
	gotT := m.TMulVec([]float64{1, 2})
	if gotT[0] != 1 || gotT[1] != 6 || gotT[2] != 2 {
		t.Errorf("TMulVec = %v", gotT)
	}
}

func TestChain(t *testing.T) {
	a := FromDense(2, 2, []float64{1, 1, 0, 1})
	got := Chain(a, a, a) // a³
	want := MatMul(MatMul(a, a), a)
	if !got.Equal(want) {
		t.Errorf("Chain != repeated MatMul")
	}
	single := Chain(a)
	if !single.Equal(a) {
		t.Error("Chain of one should be identity operation")
	}
}

func TestChainPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Chain()
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for sparse matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomCSR(rng, m, k, 0.3)
		b := randomCSR(rng, k, n, 0.3)
		return MatMul(a, b).T().Equal(MatMul(b.T(), a.T()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: row sums of A·B equal A·(row sums of B as weighted by A)
// computed via vectors: rowsums(AB) = A · rowsums(B) when B has
// uniform rows is not generally true, so instead check
// sum(AB) = onesᵀ·A·B·ones via MulVec composition.
func TestMatMulTotalSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomCSR(rng, m, k, 0.3)
		b := randomCSR(rng, k, n, 0.3)
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		bOnes := b.MulVec(ones)
		aBOnes := a.MulVec(bOnes)
		var want float64
		for _, v := range aBOnes {
			want += v
		}
		got := MatMul(a, b).Sum()
		return math.Abs(got-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Hadamard is commutative; Add is commutative and associative.
func TestElementwiseAlgebraProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomCSR(rng, r, c, 0.4)
		b := randomCSR(rng, r, c, 0.4)
		d := randomCSR(rng, r, c, 0.4)
		if !Hadamard(a, b).Equal(Hadamard(b, a)) {
			return false
		}
		if !Add(a, b).Equal(Add(b, a)) {
			return false
		}
		return Add(Add(a, b), d).Equal(Add(a, Add(b, d)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
