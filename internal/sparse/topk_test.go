package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopKPerRowKnown(t *testing.T) {
	m := FromDense(2, 4, []float64{
		5, 1, 3, 2,
		0, 7, 0, 7,
	})
	top2 := m.TopKPerRow(2)
	want := FromDense(2, 4, []float64{
		5, 0, 3, 0,
		0, 7, 0, 7,
	})
	if !top2.Equal(want) {
		t.Errorf("TopK(2) = %v, want %v", top2.ToDense(), want.ToDense())
	}
}

func TestTopKPerRowEdgeCases(t *testing.T) {
	m := FromDense(2, 3, []float64{1, 2, 3, 0, 0, 0})
	if got := m.TopKPerRow(0); got.NNZ() != 0 {
		t.Error("k=0 should be empty")
	}
	if got := m.TopKPerRow(10); !got.Equal(m) {
		t.Error("k beyond row width should keep everything")
	}
	z := Zero(3, 3)
	if got := z.TopKPerRow(2); got.NNZ() != 0 {
		t.Error("empty matrix should stay empty")
	}
}

func TestTopKPerRowTieBreak(t *testing.T) {
	m := FromDense(1, 3, []float64{4, 4, 4})
	got := m.TopKPerRow(2)
	// Ties keep the smaller column indices.
	if got.At(0, 0) != 4 || got.At(0, 1) != 4 || got.At(0, 2) != 0 {
		t.Errorf("tie-break wrong: %v", got.ToDense())
	}
}

// Property: each row of TopK keeps exactly min(k, rowNNZ) entries and
// every kept value is ≥ every dropped value.
func TestTopKPerRowProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(12), 0.5)
		k := 1 + rng.Intn(5)
		top := m.TopKPerRow(k)
		for i := 0; i < m.Rows(); i++ {
			wantN := m.RowNNZ(i)
			if wantN > k {
				wantN = k
			}
			if top.RowNNZ(i) != wantN {
				return false
			}
			minKept := 1e18
			kept := make(map[int]bool)
			top.Row(i, func(j int, v float64) {
				kept[j] = true
				if v < minKept {
					minKept = v
				}
			})
			bad := false
			m.Row(i, func(j int, v float64) {
				if !kept[j] && v > minKept {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
