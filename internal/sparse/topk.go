package sparse

import "sort"

// TopKPerRow returns a copy of m keeping only the k largest-valued
// entries in each row (ties broken toward smaller column indices).
// k ≤ 0 returns an empty matrix of the same shape. Used for candidate
// generation: keeping each user's k best-scored counterparts.
func (m *CSR) TopKPerRow(k int) *CSR {
	out := &CSR{rows: m.rows, cols: m.cols, rowPtr: make([]int, m.rows+1)}
	if k <= 0 {
		return out
	}
	var colIdx []int
	var val []float64
	type entry struct {
		j int
		v float64
	}
	var buf []entry
	for i := 0; i < m.rows; i++ {
		buf = buf[:0]
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			buf = append(buf, entry{j: m.colIdx[p], v: m.val[p]})
		}
		sort.Slice(buf, func(a, b int) bool {
			if buf[a].v != buf[b].v {
				return buf[a].v > buf[b].v
			}
			return buf[a].j < buf[b].j
		})
		keep := buf
		if len(keep) > k {
			keep = keep[:k]
		}
		// Restore column order within the row.
		sort.Slice(keep, func(a, b int) bool { return keep[a].j < keep[b].j })
		for _, e := range keep {
			colIdx = append(colIdx, e.j)
			val = append(val, e.v)
		}
		out.rowPtr[i+1] = len(val)
	}
	out.colIdx = colIdx
	out.val = val
	return out
}
