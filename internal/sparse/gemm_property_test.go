package sparse

import (
	"math/rand"
	"sync"
	"testing"
)

// randCSR builds a random r×c matrix with the given density and values
// in {-2..2}\{0} so products can cancel.
func randCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	b := NewBuilder(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				v := float64(rng.Intn(4) + 1)
				if rng.Intn(2) == 0 {
					v = -v
				}
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// checkWellFormed asserts CSR invariants: strictly increasing columns
// per row and no stored zeros.
func checkWellFormed(t *testing.T, m *CSR) {
	t.Helper()
	for i := 0; i < m.rows; i++ {
		prev := -1
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if m.colIdx[k] <= prev {
				t.Fatalf("row %d: columns not strictly increasing (%d after %d)", i, m.colIdx[k], prev)
			}
			if m.val[k] == 0 {
				t.Fatalf("row %d col %d: explicit zero stored", i, m.colIdx[k])
			}
			prev = m.colIdx[k]
		}
	}
}

// TestMatMulPooledPropertyRandom sweeps shapes and densities, checking
// the pooled Gustavson kernel against the dense reference and the
// parallel variant against the serial one, including ordering
// invariants. The density sweep crosses the dense-span/sorted
// compaction threshold both ways.
func TestMatMulPooledPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 4}, {17, 9, 23}, {64, 64, 64}, {70, 1, 70}, {128, 40, 8}}
	densities := []float64{0.01, 0.1, 0.5, 0.95}
	for _, sh := range shapes {
		for _, d := range densities {
			a := randCSR(rng, sh[0], sh[1], d)
			b := randCSR(rng, sh[1], sh[2], d)
			serial := MatMul(a, b)
			checkWellFormed(t, serial)
			if !sliceEq(serial.ToDense(), denseMul(a, b), 1e-12) {
				t.Fatalf("shape %v density %v: MatMul differs from dense reference", sh, d)
			}
			par := MatMulParallel(a, b)
			checkWellFormed(t, par)
			if !serial.Equal(par) {
				t.Fatalf("shape %v density %v: MatMulParallel differs from MatMul", sh, d)
			}
		}
	}
}

// TestMatMulPoolReuseUnderConcurrency reuses pooled workspaces from
// many goroutines with mixed column counts — generation stamping must
// keep rows independent.
func TestMatMulPoolReuseUnderConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type job struct{ a, b, want *CSR }
	var jobs []job
	for k := 0; k < 24; k++ {
		r, inner, c := 5+rng.Intn(40), 1+rng.Intn(30), 1+rng.Intn(60)
		a := randCSR(rng, r, inner, 0.2)
		b := randCSR(rng, inner, c, 0.2)
		jobs = append(jobs, job{a, b, MatMul(a, b)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				j := jobs[(g*10+rep)%len(jobs)]
				if got := MatMul(j.a, j.b); !got.Equal(j.want) {
					t.Errorf("goroutine %d rep %d: pooled product mismatch", g, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestChainCostAwareMatchesLeftToRight checks that flop-ordered
// association returns exactly the left-to-right product for random
// chains of compatible matrices.
func TestChainCostAwareMatchesLeftToRight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		dims := make([]int, n+1)
		for i := range dims {
			dims[i] = 1 + rng.Intn(30)
		}
		ms := make([]*CSR, n)
		for i := 0; i < n; i++ {
			ms[i] = randCSR(rng, dims[i], dims[i+1], 0.15)
		}
		want := ms[0]
		for _, m := range ms[1:] {
			want = MatMul(want, m)
		}
		got := Chain(ms...)
		checkWellFormed(t, got)
		if !got.Equal(want) {
			t.Fatalf("trial %d dims %v: Chain differs from left-to-right product", trial, dims)
		}
	}
}

// TestChainPrefersCheapAssociation pins the cost model on an
// asymmetric chain: with A dense-ish and B·C tiny, the flop-aware order
// must still produce the correct product (the cost choice is internal,
// correctness is the contract).
func TestChainPrefersCheapAssociation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randCSR(rng, 40, 40, 0.6)
	b := randCSR(rng, 40, 3, 0.1)
	c := randCSR(rng, 3, 50, 0.1)
	if fAB, fBC := spgemmFlops(a, b), spgemmFlops(b, c); fBC >= fAB {
		t.Fatalf("fixture broken: flops(b,c)=%v should undercut flops(a,b)=%v", fBC, fAB)
	}
	want := MatMul(MatMul(a, b), c)
	if got := Chain(a, b, c); !got.Equal(want) {
		t.Fatal("cost-aware Chain changed the product value")
	}
}
