package sparse

import "fmt"

// Raw returns zero-copy views of the CSR internals — shape, row
// pointers, column indices, values — for serialization. The slices
// alias internal storage and must not be mutated.
func (m *CSR) Raw() (rows, cols int, rowPtr, colIdx []int, val []float64) {
	return m.rows, m.cols, m.rowPtr, m.colIdx, m.val
}

// FromRaw builds a CSR directly from its component arrays, taking
// ownership of the slices (no copy). The arrays are validated as
// hostile input — a decoded wire payload must not be able to smuggle an
// index that makes a later multiply read out of bounds: rowPtr must be
// a monotone run from 0 to nnz with rows+1 entries, and each row's
// column indices must be strictly increasing within [0, cols).
// Explicit zero values are accepted (the counting pipeline never emits
// them, but they are harmless).
func FromRaw(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: FromRaw negative shape %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: FromRaw rowPtr len %d, want %d", len(rowPtr), rows+1)
	}
	if len(colIdx) != len(val) {
		return nil, fmt.Errorf("sparse: FromRaw colIdx len %d vs val len %d", len(colIdx), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(val) {
		return nil, fmt.Errorf("sparse: FromRaw rowPtr spans [%d,%d], want [0,%d]", rowPtr[0], rowPtr[rows], len(val))
	}
	for i := 0; i < rows; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		if lo > hi {
			return nil, fmt.Errorf("sparse: FromRaw rowPtr decreases at row %d", i)
		}
		prev := -1
		for k := lo; k < hi; k++ {
			j := colIdx[k]
			if j <= prev || j >= cols {
				return nil, fmt.Errorf("sparse: FromRaw row %d column %d out of order or range %d", i, j, cols)
			}
			prev = j
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}
