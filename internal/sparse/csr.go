// Package sparse implements compressed sparse row (CSR) matrices and the
// operations needed for inter-network meta path and meta diagram instance
// counting: sparse general matrix-matrix products (SpGEMM), Hadamard
// (elementwise) products, transposes, and row/column sums.
//
// Meta path counting reduces to chains of sparse products over typed
// adjacency matrices (Section III-B of the paper); meta diagram counting
// adds Hadamard products at the shared "join" node types. All matrices
// hold float64 counts; adjacency matrices are 0/1 valued.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is an immutable sparse matrix in compressed sparse row format.
// Construct one with a Builder, FromDense, or an operation on existing
// matrices. Column indices within each row are strictly increasing and
// stored values are never explicit zeros.
type CSR struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz
	val        []float64 // len nnz
}

// Dims returns the number of rows and columns.
func (m *CSR) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored (non-zero) entries.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns the value at (i, j), zero when no entry is stored. Lookup is
// a binary search within row i.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// Row calls fn(j, v) for every stored entry in row i in increasing column
// order.
func (m *CSR) Row(i int, fn func(j int, v float64)) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("sparse: row %d out of range %d", i, m.rows))
	}
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.val[k])
	}
}

// RowSlice returns zero-copy views of row i's column indices and
// values, in increasing column order. The slices alias internal storage
// and must not be mutated.
func (m *CSR) RowSlice(i int) (colIdx []int, val []float64) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("sparse: row %d out of range %d", i, m.rows))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("sparse: row %d out of range %d", i, m.rows))
	}
	return m.rowPtr[i+1] - m.rowPtr[i]
}

// Iterate calls fn(i, j, v) for every stored entry in row-major order.
func (m *CSR) Iterate(fn func(i, j int, v float64)) {
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			fn(i, m.colIdx[k], m.val[k])
		}
	}
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: make([]int, len(m.rowPtr)),
		colIdx: make([]int, len(m.colIdx)),
		val:    make([]float64, len(m.val)),
	}
	copy(out.rowPtr, m.rowPtr)
	copy(out.colIdx, m.colIdx)
	copy(out.val, m.val)
	return out
}

// T returns the transpose, built in O(nnz + rows + cols).
func (m *CSR) T() *CSR {
	out := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.colIdx)),
		val:    make([]float64, len(m.val)),
	}
	// Count entries per output row (= input column).
	for _, j := range m.colIdx {
		out.rowPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		out.rowPtr[j+1] += out.rowPtr[j]
	}
	next := make([]int, m.cols)
	copy(next, out.rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			p := next[j]
			out.colIdx[p] = i
			out.val[p] = m.val[k]
			next[j]++
		}
	}
	return out
}

// Scale returns alpha·m as a new matrix. Scaling by zero returns an empty
// matrix of the same shape.
func (m *CSR) Scale(alpha float64) *CSR {
	if alpha == 0 {
		return Zero(m.rows, m.cols)
	}
	out := m.Clone()
	for i := range out.val {
		out.val[i] *= alpha
	}
	return out
}

// RowSums returns the vector of per-row entry sums. For a meta diagram
// count matrix this is |P(uᵢ, ·)| in Definition 6.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		out[i] = s
	}
	return out
}

// ColSums returns the vector of per-column entry sums, |P(·, uⱼ)| in
// Definition 6.
func (m *CSR) ColSums() []float64 {
	out := make([]float64, m.cols)
	for k, j := range m.colIdx {
		out[j] += m.val[k]
	}
	return out
}

// Sum returns the sum of all stored values.
func (m *CSR) Sum() float64 {
	var s float64
	for _, v := range m.val {
		s += v
	}
	return s
}

// Binarize returns a copy with every stored value replaced by 1. Used to
// convert weighted count matrices back into 0/1 adjacency.
func (m *CSR) Binarize() *CSR {
	out := m.Clone()
	for i := range out.val {
		out.val[i] = 1
	}
	return out
}

// Zero returns an empty r×c matrix with no stored entries.
func Zero(r, c int) *CSR {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: Zero negative dimension %dx%d", r, c))
	}
	return &CSR{rows: r, cols: c, rowPtr: make([]int, r+1)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1)
	}
	return b.Build()
}

// Density returns nnz / (rows·cols), or 0 for an empty shape.
func (m *CSR) Density() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.rows) * float64(m.cols))
}

// Equal reports whether two matrices have identical shape and stored
// entries.
func (m *CSR) Equal(b *CSR) bool {
	if m.rows != b.rows || m.cols != b.cols || len(m.val) != len(b.val) {
		return false
	}
	for i := range m.rowPtr {
		if m.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for k := range m.val {
		if m.colIdx[k] != b.colIdx[k] || m.val[k] != b.val[k] {
			return false
		}
	}
	return true
}

// String summarizes the matrix shape and density.
func (m *CSR) String() string {
	return fmt.Sprintf("CSR(%dx%d, nnz=%d)", m.rows, m.cols, m.NNZ())
}
