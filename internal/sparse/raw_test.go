package sparse

import (
	"strings"
	"testing"
)

func TestRawRoundTrip(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1, 2)
	b.Add(0, 3, 1)
	b.Add(2, 0, 5)
	m := b.Build()
	rows, cols, rowPtr, colIdx, val := m.Raw()
	got, err := FromRaw(rows, cols, rowPtr, colIdx, val)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Errorf("round trip mismatch: %v vs %v", got, m)
	}
	// Empty matrix round trip.
	z := Zero(0, 7)
	r2, c2, rp2, ci2, v2 := z.Raw()
	got2, err := FromRaw(r2, c2, rp2, ci2, v2)
	if err != nil || !got2.Equal(z) {
		t.Errorf("empty round trip: %v, %v", got2, err)
	}
}

func TestFromRawRejectsHostileInput(t *testing.T) {
	cases := []struct {
		name           string
		rows, cols     int
		rowPtr, colIdx []int
		val            []float64
		want           string
	}{
		{"negative shape", -1, 2, []int{0}, nil, nil, "negative shape"},
		{"rowPtr len", 2, 2, []int{0, 0}, nil, nil, "rowPtr len"},
		{"colIdx vs val", 1, 2, []int{0, 1}, []int{0}, nil, "vs val len"},
		{"rowPtr span", 1, 2, []int{0, 2}, []int{0}, []float64{1}, "spans"},
		{"rowPtr nonzero start", 1, 2, []int{1, 1}, []int{0}, []float64{1}, "spans"},
		{"rowPtr decreases", 2, 2, []int{0, 2, 1}, nil, nil, "spans"},
		{"column out of range", 1, 2, []int{0, 1}, []int{2}, []float64{1}, "out of order or range"},
		{"negative column", 1, 2, []int{0, 1}, []int{-1}, []float64{1}, "out of order or range"},
		{"unsorted columns", 1, 3, []int{0, 2}, []int{2, 1}, []float64{1, 1}, "out of order or range"},
		{"duplicate columns", 1, 3, []int{0, 2}, []int{1, 1}, []float64{1, 1}, "out of order or range"},
	}
	for _, tc := range cases {
		_, err := FromRaw(tc.rows, tc.cols, tc.rowPtr, tc.colIdx, tc.val)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want %q", tc.name, err, tc.want)
		}
	}
	// A decreasing interior rowPtr with consistent endpoints.
	_, err := FromRaw(3, 2, []int{0, 2, 1, 2}, []int{0, 1}, []float64{1, 1})
	if err == nil || !strings.Contains(err.Error(), "decreases") {
		t.Errorf("decreasing rowPtr: %v", err)
	}
}
