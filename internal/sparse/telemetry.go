package sparse

import "github.com/activeiter/activeiter/internal/telemetry"

// mSpgemmFlops is the process-wide SpGEMM work counter: exact Gustavson
// multiply-add counts of every product Chain evaluates. The per-product
// cost is a byproduct of Chain's association scan, so the accounting
// adds one atomic op per product, not a matrix traversal.
var mSpgemmFlops = telemetry.Default.Counter("activeiter_spgemm_flops_total",
	"Gustavson SpGEMM multiply-adds performed by meta-diagram chain products.")
