package sparse

import (
	"sort"
	"sync"
)

// gemmWorkspace is the per-goroutine scratch state for Gustavson SpGEMM:
// a dense accumulator, a generation-stamped liveness mark, and the list
// of live columns for the current row. Workspaces are pooled so repeated
// products — diagram counting evaluates hundreds of chained products per
// fold — stop re-allocating O(cols) buffers on every multiply.
type gemmWorkspace struct {
	acc  []float64
	mark []int
	live []int
	gen  int
}

var gemmPool = sync.Pool{New: func() any { return new(gemmWorkspace) }}

// getWorkspace returns a workspace with capacity for cols columns. The
// mark array is generation-stamped: row i of a multiply is live where
// mark[j] equals that row's generation, so reusing a pooled workspace
// needs no clearing. Growing the mark array resets the generation, so a
// stale stamp can never alias a live row.
func getWorkspace(cols int) *gemmWorkspace {
	w := gemmPool.Get().(*gemmWorkspace)
	if cap(w.mark) < cols {
		w.acc = make([]float64, cols)
		w.mark = make([]int, cols)
		w.gen = 0
	}
	w.acc = w.acc[:cols]
	w.mark = w.mark[:cols]
	if w.live == nil {
		w.live = make([]int, 0, 256)
	}
	return w
}

func putWorkspace(w *gemmWorkspace) { gemmPool.Put(w) }

// mulRows computes rows [lo, hi) of a·b, returning the concatenated
// column indices and values plus per-row entry counts in rowLen (which
// must have length hi-lo). Surviving entries per row are emitted in
// increasing column order.
//
// Compaction avoids the former unconditional sort.Ints: rows whose live
// columns cover a tight span are emitted by scanning [minJ, maxJ]
// against the mark array (O(span) with no comparison sort), and only
// genuinely scattered rows fall back to sorting, with insertion sort for
// short lists.
func mulRows(a, b *CSR, lo, hi int, rowLen []int) (colIdx []int, val []float64) {
	w := getWorkspace(b.cols)
	defer putWorkspace(w)
	for i := lo; i < hi; i++ {
		w.gen++
		gen := w.gen
		live := w.live[:0]
		minJ, maxJ := b.cols, -1
		for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
			k, av := a.colIdx[ka], a.val[ka]
			for kb := b.rowPtr[k]; kb < b.rowPtr[k+1]; kb++ {
				j := b.colIdx[kb]
				if w.mark[j] != gen {
					w.mark[j] = gen
					w.acc[j] = 0
					live = append(live, j)
					if j < minJ {
						minJ = j
					}
					if j > maxJ {
						maxJ = j
					}
				}
				w.acc[j] += av * b.val[kb]
			}
		}
		w.live = live
		n := 0
		if len(live) > 0 {
			if span := maxJ - minJ + 1; span <= 4*len(live) {
				for j := minJ; j <= maxJ; j++ {
					if w.mark[j] == gen && w.acc[j] != 0 {
						colIdx = append(colIdx, j)
						val = append(val, w.acc[j])
						n++
					}
				}
			} else {
				sortLive(live)
				for _, j := range live {
					if w.acc[j] != 0 {
						colIdx = append(colIdx, j)
						val = append(val, w.acc[j])
						n++
					}
				}
			}
		}
		rowLen[i-lo] = n
	}
	return colIdx, val
}

// sortLive orders a live-column list, using insertion sort below the
// point where sort.Ints' overhead pays off.
func sortLive(xs []int) {
	if len(xs) <= 48 {
		for i := 1; i < len(xs); i++ {
			x := xs[i]
			j := i - 1
			for j >= 0 && xs[j] > x {
				xs[j+1] = xs[j]
				j--
			}
			xs[j+1] = x
		}
		return
	}
	sort.Ints(xs)
}
