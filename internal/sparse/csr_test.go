package sparse

import (
	"math/rand"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1, 2)
	b.Add(2, 3, 5)
	b.Add(0, 0, 1)
	m := b.Build()
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	checks := []struct {
		i, j int
		want float64
	}{
		{0, 0, 1}, {0, 1, 2}, {2, 3, 5}, {1, 1, 0}, {0, 3, 0},
	}
	for _, c := range checks {
		if got := m.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestBuilderAccumulatesDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(1, 1, 3)
	b.Add(1, 1, 4)
	m := b.Build()
	if got := m.At(1, 1); got != 7 {
		t.Errorf("duplicate accumulation: At(1,1) = %v, want 7", got)
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1", m.NNZ())
	}
}

func TestBuilderDropsCancelledEntries(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 5)
	b.Add(0, 0, -5)
	b.Add(0, 1, 1)
	m := b.Build()
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (cancelled entry kept)", m.NNZ())
	}
	if m.At(0, 0) != 0 || m.At(0, 1) != 1 {
		t.Errorf("unexpected values after cancellation")
	}
}

func TestBuilderIgnoresZeros(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 0)
	if b.Len() != 0 {
		t.Error("zero add should be ignored")
	}
	if m := b.Build(); m.NNZ() != 0 {
		t.Error("zero add stored")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	data := []float64{0, 1, 2, 0, 0, 3}
	m := FromDense(2, 3, data)
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	back := m.ToDense()
	for i, v := range data {
		if back[i] != v {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, back[i], v)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromDense(2, 3, []float64{1, 0, 2, 0, 3, 0})
	mt := m.T()
	if r, c := mt.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	want := FromDense(3, 2, []float64{1, 0, 0, 3, 2, 0})
	if !mt.Equal(want) {
		t.Errorf("T = %v, want %v", mt.ToDense(), want.ToDense())
	}
	if !mt.T().Equal(m) {
		t.Error("double transpose should round-trip")
	}
}

func TestRowColSums(t *testing.T) {
	m := FromDense(2, 3, []float64{1, 2, 0, 0, 4, 5})
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 9 {
		t.Errorf("RowSums = %v", rs)
	}
	cs := m.ColSums()
	if cs[0] != 1 || cs[1] != 6 || cs[2] != 5 {
		t.Errorf("ColSums = %v", cs)
	}
	if m.Sum() != 12 {
		t.Errorf("Sum = %v", m.Sum())
	}
}

func TestScaleAndBinarize(t *testing.T) {
	m := FromDense(2, 2, []float64{2, 0, 0, 3})
	s := m.Scale(2)
	if s.At(0, 0) != 4 || s.At(1, 1) != 6 {
		t.Errorf("Scale values wrong: %v", s.ToDense())
	}
	z := m.Scale(0)
	if z.NNZ() != 0 {
		t.Errorf("Scale(0) should be empty, nnz=%d", z.NNZ())
	}
	bin := m.Binarize()
	if bin.At(0, 0) != 1 || bin.At(1, 1) != 1 {
		t.Errorf("Binarize values wrong")
	}
}

func TestIdentityAndZero(t *testing.T) {
	id := Identity(3)
	if id.NNZ() != 3 || id.At(1, 1) != 1 || id.At(0, 1) != 0 {
		t.Errorf("Identity wrong: %v", id.ToDense())
	}
	z := Zero(2, 5)
	if z.NNZ() != 0 {
		t.Error("Zero not empty")
	}
	if r, c := z.Dims(); r != 2 || c != 5 {
		t.Errorf("Zero dims %d,%d", r, c)
	}
}

func TestRowIterationOrder(t *testing.T) {
	b := NewBuilder(1, 5)
	b.Add(0, 4, 1)
	b.Add(0, 0, 1)
	b.Add(0, 2, 1)
	m := b.Build()
	var cols []int
	m.Row(0, func(j int, v float64) { cols = append(cols, j) })
	want := []int{0, 2, 4}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("row order = %v, want %v", cols, want)
		}
	}
	if m.RowNNZ(0) != 3 {
		t.Errorf("RowNNZ = %d", m.RowNNZ(0))
	}
}

func TestDensity(t *testing.T) {
	m := FromDense(2, 2, []float64{1, 0, 0, 1})
	if got := m.Density(); got != 0.5 {
		t.Errorf("Density = %v, want 0.5", got)
	}
	if got := Zero(0, 0).Density(); got != 0 {
		t.Errorf("empty Density = %v", got)
	}
}

func TestEqual(t *testing.T) {
	a := FromDense(2, 2, []float64{1, 2, 0, 3})
	b := FromDense(2, 2, []float64{1, 2, 0, 3})
	if !a.Equal(b) {
		t.Error("identical matrices not Equal")
	}
	c := FromDense(2, 2, []float64{1, 2, 0, 4})
	if a.Equal(c) {
		t.Error("different values reported Equal")
	}
	d := FromDense(2, 2, []float64{1, 2, 3, 0})
	if a.Equal(d) {
		t.Error("different patterns reported Equal")
	}
}

func randomCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	b := NewBuilder(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				b.Add(i, j, float64(1+rng.Intn(5)))
			}
		}
	}
	return b.Build()
}
