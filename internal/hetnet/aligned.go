package hetnet

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/sparse"
)

// Anchor is a ground-truth correspondence between user index I in the
// first network and user index J in the second.
type Anchor struct {
	I, J int
}

// AlignedPair is the multiple-aligned-social-networks container from
// Definition 2 for the two-network case studied in the paper:
// G = ((G¹, G²), A^(1,2)).
type AlignedPair struct {
	G1, G2 *Network
	// AnchorType is the node type the anchors join; always User in the
	// paper's setting but kept explicit so the machinery generalizes to,
	// e.g., aligned PPI networks joining proteins.
	AnchorType NodeType
	Anchors    []Anchor
}

// NewAlignedPair wraps two networks with an empty anchor set over User
// nodes.
func NewAlignedPair(g1, g2 *Network) *AlignedPair {
	return &AlignedPair{G1: g1, G2: g2, AnchorType: User}
}

// AddAnchor appends a ground-truth anchor link (i ↔ j). Indices are
// validated against the networks' user counts.
func (p *AlignedPair) AddAnchor(i, j int) error {
	if i < 0 || i >= p.G1.NodeCount(p.AnchorType) {
		return fmt.Errorf("hetnet: anchor source %d out of range [0,%d)", i, p.G1.NodeCount(p.AnchorType))
	}
	if j < 0 || j >= p.G2.NodeCount(p.AnchorType) {
		return fmt.Errorf("hetnet: anchor target %d out of range [0,%d)", j, p.G2.NodeCount(p.AnchorType))
	}
	p.Anchors = append(p.Anchors, Anchor{I: i, J: j})
	return nil
}

// AnchorMatrix returns the |U¹|×|U²| 0/1 matrix of the given anchors.
// Passing nil uses the pair's full anchor set. ActiveIter calls this with
// only the training-fold positives: the anchor edges that meta paths
// P1–P4 may traverse are the *known* anchors, never test labels.
func (p *AlignedPair) AnchorMatrix(anchors []Anchor) *sparse.CSR {
	if anchors == nil {
		anchors = p.Anchors
	}
	b := sparse.NewBuilder(p.G1.NodeCount(p.AnchorType), p.G2.NodeCount(p.AnchorType))
	for _, a := range anchors {
		b.Add(a.I, a.J, 1)
	}
	return b.Build().Binarize()
}

// Validate checks that both networks validate and that the anchor set
// satisfies the one-to-one cardinality constraint (no user participates
// in two anchors) with in-range indices.
func (p *AlignedPair) Validate() error {
	if err := p.G1.Validate(); err != nil {
		return fmt.Errorf("hetnet: aligned pair network 1: %w", err)
	}
	if err := p.G2.Validate(); err != nil {
		return fmt.Errorf("hetnet: aligned pair network 2: %w", err)
	}
	n1, n2 := p.G1.NodeCount(p.AnchorType), p.G2.NodeCount(p.AnchorType)
	seenI := make(map[int]int, len(p.Anchors))
	seenJ := make(map[int]int, len(p.Anchors))
	for k, a := range p.Anchors {
		if a.I < 0 || a.I >= n1 {
			return fmt.Errorf("hetnet: anchor %d source %d out of range [0,%d)", k, a.I, n1)
		}
		if a.J < 0 || a.J >= n2 {
			return fmt.Errorf("hetnet: anchor %d target %d out of range [0,%d)", k, a.J, n2)
		}
		if prev, ok := seenI[a.I]; ok {
			return fmt.Errorf("hetnet: one-to-one violation: anchors %d and %d share source user %d", prev, k, a.I)
		}
		if prev, ok := seenJ[a.J]; ok {
			return fmt.Errorf("hetnet: one-to-one violation: anchors %d and %d share target user %d", prev, k, a.J)
		}
		seenI[a.I] = k
		seenJ[a.J] = k
	}
	return nil
}

// HasAnchor reports whether (i, j) is a ground-truth anchor. The lookup
// set is built on first use and invalidated by AddAnchor; callers doing
// bulk membership tests should use AnchorSet instead.
func (p *AlignedPair) HasAnchor(i, j int) bool {
	for _, a := range p.Anchors {
		if a.I == i && a.J == j {
			return true
		}
	}
	return false
}

// AnchorSet returns a membership set keyed by packed (i, j) pairs for
// O(1) lookups. The key layout is Key(i, j).
func (p *AlignedPair) AnchorSet() map[int64]bool {
	s := make(map[int64]bool, len(p.Anchors))
	for _, a := range p.Anchors {
		s[Key(a.I, a.J)] = true
	}
	return s
}

// Key packs a user-pair (i, j) into a single comparable int64. Both
// indices must be non-negative and below 2³¹.
func Key(i, j int) int64 { return int64(i)<<31 | int64(j) }

// UnpackKey reverses Key.
func UnpackKey(k int64) (i, j int) { return int(k >> 31), int(k & ((1 << 31) - 1)) }
