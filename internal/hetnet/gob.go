package hetnet

import (
	"encoding/gob"
	"fmt"
	"io"
)

// WriteGob serializes the network in the compact binary gob format —
// roughly 3-5× smaller and faster than JSON for large crawls; use JSON
// for interoperability and gob for checkpointing.
func (g *Network) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(g.toJSON())
}

// ReadNetworkGob deserializes a network written by WriteGob.
func ReadNetworkGob(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	if err := gob.NewDecoder(r).Decode(&jn); err != nil {
		return nil, fmt.Errorf("hetnet: decode network gob: %w", err)
	}
	return networkFromJSON(jn)
}

// WriteGob serializes the aligned pair in gob format.
func (p *AlignedPair) WriteGob(w io.Writer) error {
	ja := jsonAligned{
		G1:         p.G1.toJSON(),
		G2:         p.G2.toJSON(),
		AnchorType: p.AnchorType,
		Anchors:    make([][2]int, len(p.Anchors)),
	}
	for k, a := range p.Anchors {
		ja.Anchors[k] = [2]int{a.I, a.J}
	}
	return gob.NewEncoder(w).Encode(ja)
}

// ReadAlignedGob deserializes and validates an aligned pair written by
// AlignedPair.WriteGob.
func ReadAlignedGob(r io.Reader) (*AlignedPair, error) {
	var ja jsonAligned
	if err := gob.NewDecoder(r).Decode(&ja); err != nil {
		return nil, fmt.Errorf("hetnet: decode aligned pair gob: %w", err)
	}
	return alignedFromInterchange(ja)
}

// alignedFromInterchange rebuilds and validates a pair from the
// interchange form (shared by the JSON and gob decoders).
func alignedFromInterchange(ja jsonAligned) (*AlignedPair, error) {
	g1, err := networkFromJSON(ja.G1)
	if err != nil {
		return nil, err
	}
	g2, err := networkFromJSON(ja.G2)
	if err != nil {
		return nil, err
	}
	p := &AlignedPair{G1: g1, G2: g2, AnchorType: ja.AnchorType}
	if p.AnchorType == "" {
		p.AnchorType = User
	}
	for _, a := range ja.Anchors {
		if err := p.AddAnchor(a[0], a[1]); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
