package hetnet

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadNetworkJSON feeds arbitrary bytes to the JSON loader: it must
// never panic, and any accepted network must Validate and survive a
// write/read round trip.
func FuzzReadNetworkJSON(f *testing.F) {
	var buf bytes.Buffer
	g := NewSocialNetwork("seed")
	g.AddNode(User, "a")
	g.AddNode(User, "b")
	_ = g.AddLink(Follow, 0, 1)
	_ = g.WriteJSON(&buf)
	f.Add(buf.String())
	f.Add(`{"name":"x","nodes":{"user":["a"]},"links":{}}`)
	f.Add(`{"name":"x","nodes":{"user":["a","a"]},"links":{}}`)
	f.Add(`{"name":"x","nodes":{},"links":{"follow":{"src":"user","dst":"user","from":[0],"to":[0]}}}`)
	f.Add(`not json at all`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadNetworkJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted network fails Validate: %v", err)
		}
		var out bytes.Buffer
		if err := g.WriteJSON(&out); err != nil {
			t.Fatalf("accepted network fails WriteJSON: %v", err)
		}
		g2, err := ReadNetworkJSON(&out)
		if err != nil {
			t.Fatalf("round trip of accepted network fails: %v", err)
		}
		for _, lt := range g.LinkTypes() {
			if g.LinkCount(lt) != g2.LinkCount(lt) {
				t.Fatalf("round trip changed %s link count", lt)
			}
		}
	})
}

// FuzzReadCSV feeds arbitrary bytes to the CSV loader: never panic, and
// accepted networks must validate.
func FuzzReadCSV(f *testing.F) {
	f.Add("follow,a,b\nwrite,a,p\n")
	f.Add("node,word,w1\n")
	f.Add("bogus,a,b\n")
	f.Add(",,,\n")
	f.Add("follow,a\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadSocialCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted CSV network fails Validate: %v", err)
		}
	})
}
