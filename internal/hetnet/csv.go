package hetnet

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV streams the network's links as CSV records of the form
//
//	linktype,fromID,toID
//
// in deterministic order (link types sorted, edges in insertion order).
// Node sets are implied by the edges; isolated nodes are appended as
// special "node" records:
//
//	node,nodetype,ID
//
// so the round trip is lossless.
func (g *Network) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	lts := g.LinkTypes()
	sort.Slice(lts, func(a, b int) bool { return lts[a] < lts[b] })
	referenced := make(map[NodeType]map[int]bool)
	mark := func(t NodeType, idx int) {
		m, ok := referenced[t]
		if !ok {
			m = make(map[int]bool)
			referenced[t] = m
		}
		m[idx] = true
	}
	var writeErr error
	for _, lt := range lts {
		src, dst, _ := g.LinkEndpoints(lt)
		g.Links(lt, func(from, to int) {
			if writeErr != nil {
				return
			}
			mark(src, from)
			mark(dst, to)
			writeErr = cw.Write([]string{string(lt), g.NodeID(src, from), g.NodeID(dst, to)})
		})
		if writeErr != nil {
			return writeErr
		}
	}
	// Isolated nodes.
	for _, t := range g.NodeTypes() {
		for idx := 0; idx < g.NodeCount(t); idx++ {
			if !referenced[t][idx] {
				if err := cw.Write([]string{"node", string(t), g.NodeID(t, idx)}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVInto streams CSV records produced by WriteCSV (or any
// crawler's edge list in the same format) into g. Link types must be
// declared on g beforehand — use NewSocialNetwork for the standard
// schema. Unknown link types are an error; node IDs are interned on
// first sight.
func ReadCSVInto(g *Network, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("hetnet: csv line %d: %w", line+1, err)
		}
		line++
		if rec[0] == "node" {
			g.AddNode(NodeType(rec[1]), rec[2])
			continue
		}
		if err := g.AddLinkByID(LinkType(rec[0]), rec[1], rec[2]); err != nil {
			return fmt.Errorf("hetnet: csv line %d: %w", line, err)
		}
	}
}

// ReadSocialCSV reads a CSV edge list into a fresh network with the
// standard social schema.
func ReadSocialCSV(name string, r io.Reader) (*Network, error) {
	g := NewSocialNetwork(name)
	if err := ReadCSVInto(g, r); err != nil {
		return nil, err
	}
	return g, nil
}
