package hetnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	g := NewSocialNetwork("site")
	u1 := g.AddNode(User, "alice")
	u2 := g.AddNode(User, "bob")
	p1 := g.AddNode(Post, "p1")
	mustLink(t, g, Follow, u1, u2)
	mustLink(t, g, Write, u1, p1)
	mustLink(t, g, Checkin, p1, g.AddNode(Location, "L1"))
	g.AddNode(Word, "lonely") // isolated node must survive

	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSocialCSV("site", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NodeCount(User) != 2 || back.NodeCount(Post) != 1 || back.NodeCount(Location) != 1 {
		t.Error("node counts differ after CSV round trip")
	}
	if back.NodeCount(Word) != 1 {
		t.Error("isolated node lost in CSV round trip")
	}
	if back.LinkCount(Follow) != 1 || back.LinkCount(Write) != 1 || back.LinkCount(Checkin) != 1 {
		t.Error("link counts differ after CSV round trip")
	}
	a1, err := g.Adjacency(Follow)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := back.Adjacency(Follow)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Error("follow adjacency differs after CSV round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	// Unknown link type.
	if _, err := ReadSocialCSV("x", strings.NewReader("teleport,a,b\n")); err == nil {
		t.Error("unknown link type should fail")
	}
	// Wrong field count.
	if _, err := ReadSocialCSV("x", strings.NewReader("follow,a\n")); err == nil {
		t.Error("short record should fail")
	}
	// Empty input is a valid empty network.
	g, err := ReadSocialCSV("x", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount(User) != 0 {
		t.Error("empty CSV should give empty network")
	}
}

func TestReadCSVExternalFormat(t *testing.T) {
	// A crawler-style edge list, unordered, with repeated nodes.
	in := strings.Join([]string{
		"follow,u1,u2",
		"follow,u2,u1",
		"write,u1,post9",
		"at,post9,2024-01-01",
		"checkin,post9,paris",
	}, "\n")
	g, err := ReadSocialCSV("crawl", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount(User) != 2 || g.LinkCount(Follow) != 2 {
		t.Errorf("users=%d follows=%d", g.NodeCount(User), g.LinkCount(Follow))
	}
	if idx, ok := g.NodeIndex(Location, "paris"); !ok || idx != 0 {
		t.Error("location not interned from CSV")
	}
}
