package hetnet

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonNetwork is the on-disk interchange form of a Network. Node tables
// are stored as ID lists (index = position); links as declared endpoint
// types plus parallel index arrays.
type jsonNetwork struct {
	Name  string                `json:"name"`
	Nodes map[NodeType][]string `json:"nodes"`
	Links map[LinkType]jsonLink `json:"links"`
}

type jsonLink struct {
	Src  NodeType `json:"src"`
	Dst  NodeType `json:"dst"`
	From []int    `json:"from"`
	To   []int    `json:"to"`
}

// jsonAligned is the on-disk form of an AlignedPair.
type jsonAligned struct {
	G1         jsonNetwork `json:"g1"`
	G2         jsonNetwork `json:"g2"`
	AnchorType NodeType    `json:"anchorType"`
	Anchors    [][2]int    `json:"anchors"`
}

func (g *Network) toJSON() jsonNetwork {
	jn := jsonNetwork{
		Name:  g.name,
		Nodes: make(map[NodeType][]string, len(g.nodes)),
		Links: make(map[LinkType]jsonLink, len(g.links)),
	}
	for t, nt := range g.nodes {
		ids := make([]string, len(nt.ids))
		copy(ids, nt.ids)
		jn.Nodes[t] = ids
	}
	for lt, t := range g.links {
		from := make([]int, len(t.from))
		to := make([]int, len(t.to))
		copy(from, t.from)
		copy(to, t.to)
		jn.Links[lt] = jsonLink{Src: t.src, Dst: t.dst, From: from, To: to}
	}
	return jn
}

func networkFromJSON(jn jsonNetwork) (*Network, error) {
	g := NewNetwork(jn.Name)
	for t, ids := range jn.Nodes {
		for _, id := range ids {
			g.AddNode(t, id)
		}
		if g.NodeCount(t) != len(ids) {
			return nil, fmt.Errorf("hetnet: duplicate node IDs in type %q of %q", t, jn.Name)
		}
	}
	for lt, jl := range jn.Links {
		if len(jl.From) != len(jl.To) {
			return nil, fmt.Errorf("hetnet: link type %q has mismatched from/to lengths", lt)
		}
		if err := g.DeclareLink(lt, jl.Src, jl.Dst); err != nil {
			return nil, err
		}
		for k := range jl.From {
			if err := g.AddLink(lt, jl.From[k], jl.To[k]); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// WriteJSON serializes the network to w.
func (g *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(g.toJSON())
}

// ReadNetworkJSON deserializes a network written by WriteJSON.
func ReadNetworkJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	if err := json.NewDecoder(r).Decode(&jn); err != nil {
		return nil, fmt.Errorf("hetnet: decode network: %w", err)
	}
	return networkFromJSON(jn)
}

// WriteJSON serializes the aligned pair to w.
func (p *AlignedPair) WriteJSON(w io.Writer) error {
	ja := jsonAligned{
		G1:         p.G1.toJSON(),
		G2:         p.G2.toJSON(),
		AnchorType: p.AnchorType,
		Anchors:    make([][2]int, len(p.Anchors)),
	}
	for k, a := range p.Anchors {
		ja.Anchors[k] = [2]int{a.I, a.J}
	}
	return json.NewEncoder(w).Encode(ja)
}

// ReadAlignedJSON deserializes an aligned pair written by
// AlignedPair.WriteJSON and validates it.
func ReadAlignedJSON(r io.Reader) (*AlignedPair, error) {
	var ja jsonAligned
	if err := json.NewDecoder(r).Decode(&ja); err != nil {
		return nil, fmt.Errorf("hetnet: decode aligned pair: %w", err)
	}
	return alignedFromInterchange(ja)
}
