package hetnet

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func twoNets(t *testing.T, n1, n2 int) (*Network, *Network) {
	t.Helper()
	g1 := NewSocialNetwork("net1")
	g2 := NewSocialNetwork("net2")
	for i := 0; i < n1; i++ {
		g1.AddNode(User, strings.Repeat("a", i+1))
	}
	for j := 0; j < n2; j++ {
		g2.AddNode(User, strings.Repeat("b", j+1))
	}
	return g1, g2
}

func TestAlignedPairAnchors(t *testing.T) {
	g1, g2 := twoNets(t, 3, 4)
	p := NewAlignedPair(g1, g2)
	if err := p.AddAnchor(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddAnchor(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddAnchor(5, 0); err == nil {
		t.Error("out-of-range anchor should fail")
	}
	if err := p.AddAnchor(0, 9); err == nil {
		t.Error("out-of-range anchor target should fail")
	}
	if !p.HasAnchor(0, 1) || p.HasAnchor(0, 2) {
		t.Error("HasAnchor lookup wrong")
	}
	set := p.AnchorSet()
	if !set[Key(2, 3)] || set[Key(1, 1)] {
		t.Error("AnchorSet lookup wrong")
	}
}

func TestAnchorMatrix(t *testing.T) {
	g1, g2 := twoNets(t, 3, 3)
	p := NewAlignedPair(g1, g2)
	if err := p.AddAnchor(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddAnchor(1, 0); err != nil {
		t.Fatal(err)
	}
	m := p.AnchorMatrix(nil)
	if r, c := m.Dims(); r != 3 || c != 3 {
		t.Fatalf("dims %dx%d", r, c)
	}
	if m.At(0, 2) != 1 || m.At(1, 0) != 1 || m.NNZ() != 2 {
		t.Errorf("anchor matrix wrong: %v", m.ToDense())
	}
	// Subset form: only the provided anchors appear.
	sub := p.AnchorMatrix([]Anchor{{I: 0, J: 2}})
	if sub.NNZ() != 1 || sub.At(0, 2) != 1 {
		t.Errorf("subset anchor matrix wrong: %v", sub.ToDense())
	}
}

func TestValidateOneToOne(t *testing.T) {
	g1, g2 := twoNets(t, 3, 3)
	p := NewAlignedPair(g1, g2)
	if err := p.AddAnchor(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddAnchor(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid pair failed: %v", err)
	}
	// Duplicate source violates one-to-one.
	p.Anchors = append(p.Anchors, Anchor{I: 0, J: 2})
	if err := p.Validate(); err == nil {
		t.Error("duplicate anchor source should fail validation")
	}
	// Duplicate target violates one-to-one.
	p.Anchors = p.Anchors[:2]
	p.Anchors = append(p.Anchors, Anchor{I: 2, J: 1})
	if err := p.Validate(); err == nil {
		t.Error("duplicate anchor target should fail validation")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(i, j uint16) bool {
		a, b := int(i), int(j)
		x, y := UnpackKey(Key(a, b))
		return x == a && y == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	g := NewSocialNetwork("twitter")
	u1 := g.AddNode(User, "alice")
	u2 := g.AddNode(User, "bob")
	p1 := g.AddNode(Post, "post1")
	l1 := g.AddNode(Location, "nyc")
	mustLink(t, g, Follow, u1, u2)
	mustLink(t, g, Write, u1, p1)
	mustLink(t, g, Checkin, p1, l1)

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNetworkJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != "twitter" {
		t.Errorf("name = %q", g2.Name())
	}
	if g2.NodeCount(User) != 2 || g2.NodeCount(Post) != 1 || g2.NodeCount(Location) != 1 {
		t.Error("node counts differ after round trip")
	}
	if g2.LinkCount(Follow) != 1 || g2.LinkCount(Write) != 1 || g2.LinkCount(Checkin) != 1 {
		t.Error("link counts differ after round trip")
	}
	if id := g2.NodeID(User, u1); id != "alice" {
		t.Errorf("node ID = %q", id)
	}
	a1, err := g.Adjacency(Follow)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := g2.Adjacency(Follow)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Error("adjacency differs after round trip")
	}
}

func TestAlignedJSONRoundTrip(t *testing.T) {
	g1, g2 := twoNets(t, 3, 3)
	mustLink(t, g1, Follow, 0, 1)
	p := NewAlignedPair(g1, g2)
	if err := p.AddAnchor(1, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadAlignedJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Anchors) != 1 || p2.Anchors[0] != (Anchor{I: 1, J: 2}) {
		t.Errorf("anchors = %v", p2.Anchors)
	}
	if p2.G1.LinkCount(Follow) != 1 {
		t.Error("network content lost in round trip")
	}
}

func TestReadAlignedJSONRejectsViolations(t *testing.T) {
	g1, g2 := twoNets(t, 2, 2)
	p := NewAlignedPair(g1, g2)
	if err := p.AddAnchor(0, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt: duplicate the anchor to violate one-to-one.
	s := buf.String()
	s = strings.Replace(s, `"anchors":[[0,0]]`, `"anchors":[[0,0],[0,1]]`, 1)
	if s == buf.String() {
		t.Fatal("test setup failed to inject corruption")
	}
	if _, err := ReadAlignedJSON(strings.NewReader(s)); err == nil {
		t.Error("one-to-one violation should be rejected on read")
	}
}

func TestReadNetworkJSONBadInput(t *testing.T) {
	if _, err := ReadNetworkJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON should fail")
	}
	// Mismatched from/to lengths.
	bad := `{"name":"x","nodes":{"user":["a"]},"links":{"follow":{"src":"user","dst":"user","from":[0],"to":[]}}}`
	if _, err := ReadNetworkJSON(strings.NewReader(bad)); err == nil {
		t.Error("mismatched link arrays should fail")
	}
	// Out-of-range link index.
	bad2 := `{"name":"x","nodes":{"user":["a"]},"links":{"follow":{"src":"user","dst":"user","from":[5],"to":[0]}}}`
	if _, err := ReadNetworkJSON(strings.NewReader(bad2)); err == nil {
		t.Error("out-of-range link index should fail")
	}
}
