package hetnet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestNetworkGobRoundTrip(t *testing.T) {
	g := NewSocialNetwork("twitter")
	u1 := g.AddNode(User, "alice")
	u2 := g.AddNode(User, "bob")
	p1 := g.AddNode(Post, "post1")
	mustLink(t, g, Follow, u1, u2)
	mustLink(t, g, Write, u1, p1)

	var buf bytes.Buffer
	if err := g.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNetworkGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != "twitter" || g2.NodeCount(User) != 2 || g2.LinkCount(Follow) != 1 {
		t.Error("gob round trip lost content")
	}
	a1, err := g.Adjacency(Follow)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := g2.Adjacency(Follow)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Error("adjacency differs after gob round trip")
	}
}

func TestAlignedGobRoundTrip(t *testing.T) {
	g1, g2 := twoNets(t, 3, 3)
	mustLink(t, g1, Follow, 0, 1)
	p := NewAlignedPair(g1, g2)
	if err := p.AddAnchor(1, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadAlignedGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Anchors) != 1 || p2.Anchors[0] != (Anchor{I: 1, J: 2}) {
		t.Errorf("anchors = %v", p2.Anchors)
	}
	if p2.AnchorType != User {
		t.Errorf("anchor type = %q", p2.AnchorType)
	}
}

func TestGobRejectsGarbage(t *testing.T) {
	if _, err := ReadNetworkGob(strings.NewReader("not gob data")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadAlignedGob(strings.NewReader("nope")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestGobSmallerThanJSONOnRepeatedStructure(t *testing.T) {
	g := NewSocialNetwork("big")
	for i := 0; i < 500; i++ {
		g.AddNode(User, fmt.Sprintf("user_%04d", i))
	}
	for i := 0; i+1 < 500; i++ {
		mustLink(t, g, Follow, i, i+1)
	}
	var jsonBuf, gobBuf bytes.Buffer
	if err := g.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteGob(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if gobBuf.Len() >= jsonBuf.Len() {
		t.Logf("note: gob %dB vs json %dB (gob not smaller on this shape)", gobBuf.Len(), jsonBuf.Len())
	}
	// Primary assertion: the round trip is intact.
	back, err := ReadNetworkGob(&gobBuf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NodeCount(User) != g.NodeCount(User) || back.LinkCount(Follow) != g.LinkCount(Follow) {
		t.Error("bulk gob round trip lost content")
	}
}
