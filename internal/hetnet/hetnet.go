// Package hetnet implements the attributed heterogeneous social network
// store from Definition 1 of the paper: a graph G = (V, E, T) with typed
// nodes, typed links and node attributes, plus the multiple-aligned-
// networks container from Definition 2.
//
// Attributes are modelled as first-class nodes of attribute node types
// (Word, Location, Timestamp) connected to posts by association link
// types (contains, checkin, at). This unification is exactly how the
// paper's meta diagrams treat them — attribute types appear as nodes in
// the diagrams of Table I — and it lets the counting engine use one
// adjacency representation for everything.
//
// Node identity is two-level: every node has a dense per-type integer
// index (used by the matrix machinery) and a stable external string ID
// (used for I/O and debugging).
package hetnet

import (
	"fmt"
	"sort"

	"github.com/activeiter/activeiter/internal/sparse"
)

// NodeType names a category of nodes (e.g. "user", "post", "location").
type NodeType string

// LinkType names a category of links (e.g. "follow", "write").
type LinkType string

// Standard node and link types for the Foursquare/Twitter-style schema
// used throughout the paper (Figure 2).
const (
	User      NodeType = "user"
	Post      NodeType = "post"
	Word      NodeType = "word"
	Location  NodeType = "location"
	Timestamp NodeType = "timestamp"

	Follow   LinkType = "follow"   // user → user
	Write    LinkType = "write"    // user → post
	At       LinkType = "at"       // post → timestamp
	Checkin  LinkType = "checkin"  // post → location
	Contains LinkType = "contains" // post → word
)

// AttributeTypes lists the node types the paper treats as attributes.
var AttributeTypes = []NodeType{Word, Location, Timestamp}

// nodeTable maps between external string IDs and dense indices for one
// node type.
type nodeTable struct {
	ids   []string
	index map[string]int
}

// linkTable stores directed edges of one link type as parallel index
// slices plus the endpoint node types.
type linkTable struct {
	src, dst NodeType
	from, to []int
}

// Network is a mutable attributed heterogeneous network. The zero value
// is not usable; create one with NewNetwork.
type Network struct {
	name      string
	nodes     map[NodeType]*nodeTable
	links     map[LinkType]*linkTable
	adjCache  map[LinkType]*sparse.CSR
	nodeOrder []NodeType // registration order, for deterministic iteration
	linkOrder []LinkType
}

// NewNetwork returns an empty network with the given display name.
func NewNetwork(name string) *Network {
	return &Network{
		name:     name,
		nodes:    make(map[NodeType]*nodeTable),
		links:    make(map[LinkType]*linkTable),
		adjCache: make(map[LinkType]*sparse.CSR),
	}
}

// Name returns the network's display name.
func (g *Network) Name() string { return g.name }

// table returns (creating on demand) the node table for t.
func (g *Network) table(t NodeType) *nodeTable {
	nt, ok := g.nodes[t]
	if !ok {
		nt = &nodeTable{index: make(map[string]int)}
		g.nodes[t] = nt
		g.nodeOrder = append(g.nodeOrder, t)
	}
	return nt
}

// AddNode interns a node of type t with external ID id and returns its
// dense index. Adding the same (t, id) twice returns the existing index.
func (g *Network) AddNode(t NodeType, id string) int {
	nt := g.table(t)
	if idx, ok := nt.index[id]; ok {
		return idx
	}
	idx := len(nt.ids)
	nt.ids = append(nt.ids, id)
	nt.index[id] = idx
	return idx
}

// NodeCount returns the number of nodes of type t.
func (g *Network) NodeCount(t NodeType) int {
	if nt, ok := g.nodes[t]; ok {
		return len(nt.ids)
	}
	return 0
}

// NodeID returns the external ID of the node (t, idx). It panics when the
// index is out of range.
func (g *Network) NodeID(t NodeType, idx int) string {
	nt, ok := g.nodes[t]
	if !ok || idx < 0 || idx >= len(nt.ids) {
		panic(fmt.Sprintf("hetnet: node (%s,%d) out of range in %q", t, idx, g.name))
	}
	return nt.ids[idx]
}

// NodeIndex returns the dense index for (t, id) and whether it exists.
func (g *Network) NodeIndex(t NodeType, id string) (int, bool) {
	nt, ok := g.nodes[t]
	if !ok {
		return 0, false
	}
	idx, ok := nt.index[id]
	return idx, ok
}

// NodeTypes returns the node types present, in registration order.
func (g *Network) NodeTypes() []NodeType {
	out := make([]NodeType, len(g.nodeOrder))
	copy(out, g.nodeOrder)
	return out
}

// DeclareLink registers the link type lt with source and destination node
// types. Redeclaring with the same endpoints is a no-op; conflicting
// endpoints return an error.
func (g *Network) DeclareLink(lt LinkType, src, dst NodeType) error {
	if existing, ok := g.links[lt]; ok {
		if existing.src != src || existing.dst != dst {
			return fmt.Errorf("hetnet: link type %q already declared as %s→%s, cannot redeclare as %s→%s",
				lt, existing.src, existing.dst, src, dst)
		}
		return nil
	}
	g.table(src)
	g.table(dst)
	g.links[lt] = &linkTable{src: src, dst: dst}
	g.linkOrder = append(g.linkOrder, lt)
	return nil
}

// LinkEndpoints returns the declared source and destination node types of
// lt, or false when the link type is unknown.
func (g *Network) LinkEndpoints(lt LinkType) (src, dst NodeType, ok bool) {
	t, ok := g.links[lt]
	if !ok {
		return "", "", false
	}
	return t.src, t.dst, true
}

// LinkTypes returns the declared link types in registration order.
func (g *Network) LinkTypes() []LinkType {
	out := make([]LinkType, len(g.linkOrder))
	copy(out, g.linkOrder)
	return out
}

// AddLink appends a directed edge of type lt between the nodes with the
// given dense indices. The link type must have been declared and the
// indices must be in range.
func (g *Network) AddLink(lt LinkType, from, to int) error {
	t, ok := g.links[lt]
	if !ok {
		return fmt.Errorf("hetnet: link type %q not declared in %q", lt, g.name)
	}
	if from < 0 || from >= g.NodeCount(t.src) {
		return fmt.Errorf("hetnet: %s link source index %d out of range [0,%d)", lt, from, g.NodeCount(t.src))
	}
	if to < 0 || to >= g.NodeCount(t.dst) {
		return fmt.Errorf("hetnet: %s link target index %d out of range [0,%d)", lt, to, g.NodeCount(t.dst))
	}
	t.from = append(t.from, from)
	t.to = append(t.to, to)
	delete(g.adjCache, lt)
	return nil
}

// AddLinkByID is AddLink resolving (or interning) nodes by external ID.
func (g *Network) AddLinkByID(lt LinkType, fromID, toID string) error {
	t, ok := g.links[lt]
	if !ok {
		return fmt.Errorf("hetnet: link type %q not declared in %q", lt, g.name)
	}
	return g.AddLink(lt, g.AddNode(t.src, fromID), g.AddNode(t.dst, toID))
}

// LinkCount returns the number of edges of type lt.
func (g *Network) LinkCount(lt LinkType) int {
	if t, ok := g.links[lt]; ok {
		return len(t.from)
	}
	return 0
}

// Adjacency returns the 0/1 adjacency matrix of link type lt, shaped
// |src type| × |dst type|. Parallel edges collapse to a single 1. The
// matrix is cached until the next AddLink of the same type.
func (g *Network) Adjacency(lt LinkType) (*sparse.CSR, error) {
	if m, ok := g.adjCache[lt]; ok {
		return m, nil
	}
	t, ok := g.links[lt]
	if !ok {
		return nil, fmt.Errorf("hetnet: link type %q not declared in %q", lt, g.name)
	}
	b := sparse.NewBuilder(g.NodeCount(t.src), g.NodeCount(t.dst))
	for k := range t.from {
		b.Add(t.from[k], t.to[k], 1)
	}
	m := b.Build().Binarize() // collapse duplicate edges to 1
	g.adjCache[lt] = m
	return m, nil
}

// Links calls fn(from, to) for every edge of type lt in insertion order.
func (g *Network) Links(lt LinkType, fn func(from, to int)) {
	t, ok := g.links[lt]
	if !ok {
		return
	}
	for k := range t.from {
		fn(t.from[k], t.to[k])
	}
}

// Neighbors returns the distinct out-neighbors of node (src-type, idx)
// under link type lt, sorted ascending.
func (g *Network) Neighbors(lt LinkType, idx int) ([]int, error) {
	adj, err := g.Adjacency(lt)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= adj.Rows() {
		return nil, fmt.Errorf("hetnet: Neighbors index %d out of range [0,%d)", idx, adj.Rows())
	}
	var out []int
	adj.Row(idx, func(j int, v float64) { out = append(out, j) })
	return out, nil
}

// Degree returns the out-degree (distinct targets) of node idx under lt.
func (g *Network) Degree(lt LinkType, idx int) (int, error) {
	adj, err := g.Adjacency(lt)
	if err != nil {
		return 0, err
	}
	if idx < 0 || idx >= adj.Rows() {
		return 0, fmt.Errorf("hetnet: Degree index %d out of range [0,%d)", idx, adj.Rows())
	}
	return adj.RowNNZ(idx), nil
}

// Validate checks internal consistency: every edge references in-range
// node indices and every cached adjacency matches the declared shape.
func (g *Network) Validate() error {
	for lt, t := range g.links {
		ns, nd := g.NodeCount(t.src), g.NodeCount(t.dst)
		for k := range t.from {
			if t.from[k] < 0 || t.from[k] >= ns {
				return fmt.Errorf("hetnet: %q edge %d has source %d out of range [0,%d)", lt, k, t.from[k], ns)
			}
			if t.to[k] < 0 || t.to[k] >= nd {
				return fmt.Errorf("hetnet: %q edge %d has target %d out of range [0,%d)", lt, k, t.to[k], nd)
			}
		}
	}
	return nil
}

// Stats summarizes node and link counts, the shape of Table II.
type Stats struct {
	Name      string
	NodeCount map[NodeType]int
	LinkCount map[LinkType]int
}

// Stats returns count summaries for the network.
func (g *Network) Stats() Stats {
	s := Stats{
		Name:      g.name,
		NodeCount: make(map[NodeType]int),
		LinkCount: make(map[LinkType]int),
	}
	for t := range g.nodes {
		s.NodeCount[t] = g.NodeCount(t)
	}
	for lt := range g.links {
		s.LinkCount[lt] = g.LinkCount(lt)
	}
	return s
}

// String renders a one-line summary of the stats for logging.
func (s Stats) String() string {
	nodeTypes := make([]string, 0, len(s.NodeCount))
	for t := range s.NodeCount {
		nodeTypes = append(nodeTypes, string(t))
	}
	sort.Strings(nodeTypes)
	out := fmt.Sprintf("%s:", s.Name)
	for _, t := range nodeTypes {
		out += fmt.Sprintf(" %s=%d", t, s.NodeCount[NodeType(t)])
	}
	linkTypes := make([]string, 0, len(s.LinkCount))
	for t := range s.LinkCount {
		linkTypes = append(linkTypes, string(t))
	}
	sort.Strings(linkTypes)
	for _, t := range linkTypes {
		out += fmt.Sprintf(" %s=%d", t, s.LinkCount[LinkType(t)])
	}
	return out
}

// NewSocialNetwork returns a network pre-declared with the paper's
// Foursquare/Twitter-style schema: users follow users, users write posts,
// posts carry timestamps, locations and words.
func NewSocialNetwork(name string) *Network {
	g := NewNetwork(name)
	must := func(err error) {
		if err != nil {
			panic(err) // unreachable: fresh network, consistent declarations
		}
	}
	must(g.DeclareLink(Follow, User, User))
	must(g.DeclareLink(Write, User, Post))
	must(g.DeclareLink(At, Post, Timestamp))
	must(g.DeclareLink(Checkin, Post, Location))
	must(g.DeclareLink(Contains, Post, Word))
	return g
}
