package hetnet

import (
	"strings"
	"testing"
)

func TestAddNodeInterning(t *testing.T) {
	g := NewNetwork("test")
	a := g.AddNode(User, "alice")
	b := g.AddNode(User, "bob")
	a2 := g.AddNode(User, "alice")
	if a != a2 {
		t.Errorf("re-adding node returned new index %d != %d", a2, a)
	}
	if a == b {
		t.Error("distinct nodes got the same index")
	}
	if g.NodeCount(User) != 2 {
		t.Errorf("NodeCount = %d, want 2", g.NodeCount(User))
	}
	if g.NodeID(User, a) != "alice" {
		t.Errorf("NodeID = %q", g.NodeID(User, a))
	}
	if idx, ok := g.NodeIndex(User, "bob"); !ok || idx != b {
		t.Errorf("NodeIndex(bob) = %d,%v", idx, ok)
	}
	if _, ok := g.NodeIndex(User, "carol"); ok {
		t.Error("NodeIndex should miss unknown node")
	}
	if _, ok := g.NodeIndex(Post, "alice"); ok {
		t.Error("NodeIndex should miss unknown type")
	}
}

func TestNodeIDPanicsOutOfRange(t *testing.T) {
	g := NewNetwork("test")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.NodeID(User, 0)
}

func TestDeclareLinkConflicts(t *testing.T) {
	g := NewNetwork("test")
	if err := g.DeclareLink(Follow, User, User); err != nil {
		t.Fatal(err)
	}
	if err := g.DeclareLink(Follow, User, User); err != nil {
		t.Errorf("idempotent redeclare should succeed: %v", err)
	}
	if err := g.DeclareLink(Follow, User, Post); err == nil {
		t.Error("conflicting redeclare should fail")
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := NewNetwork("test")
	if err := g.AddLink(Follow, 0, 0); err == nil {
		t.Error("AddLink before DeclareLink should fail")
	}
	if err := g.DeclareLink(Follow, User, User); err != nil {
		t.Fatal(err)
	}
	g.AddNode(User, "a")
	if err := g.AddLink(Follow, 0, 1); err == nil {
		t.Error("out-of-range target should fail")
	}
	if err := g.AddLink(Follow, -1, 0); err == nil {
		t.Error("negative source should fail")
	}
	g.AddNode(User, "b")
	if err := g.AddLink(Follow, 0, 1); err != nil {
		t.Errorf("valid link failed: %v", err)
	}
	if g.LinkCount(Follow) != 1 {
		t.Errorf("LinkCount = %d", g.LinkCount(Follow))
	}
}

func TestAddLinkByID(t *testing.T) {
	g := NewSocialNetwork("tw")
	if err := g.AddLinkByID(Write, "u1", "p1"); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount(User) != 1 || g.NodeCount(Post) != 1 {
		t.Error("AddLinkByID should intern endpoint nodes")
	}
	if err := g.AddLinkByID("bogus", "a", "b"); err == nil {
		t.Error("unknown link type should fail")
	}
}

func TestAdjacency(t *testing.T) {
	g := NewSocialNetwork("tw")
	for _, id := range []string{"a", "b", "c"} {
		g.AddNode(User, id)
	}
	mustLink(t, g, Follow, 0, 1)
	mustLink(t, g, Follow, 1, 2)
	mustLink(t, g, Follow, 0, 1) // duplicate edge
	adj, err := g.Adjacency(Follow)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := adj.Dims(); r != 3 || c != 3 {
		t.Fatalf("adjacency dims %dx%d", r, c)
	}
	if adj.At(0, 1) != 1 {
		t.Error("duplicate edges should collapse to 1")
	}
	if adj.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", adj.NNZ())
	}
	// Cache invalidation on mutation.
	mustLink(t, g, Follow, 2, 0)
	adj2, err := g.Adjacency(Follow)
	if err != nil {
		t.Fatal(err)
	}
	if adj2.At(2, 0) != 1 {
		t.Error("adjacency cache not invalidated after AddLink")
	}
}

func TestAdjacencyUnknownType(t *testing.T) {
	g := NewNetwork("test")
	if _, err := g.Adjacency(Follow); err == nil {
		t.Error("expected error for undeclared link type")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := NewSocialNetwork("tw")
	for _, id := range []string{"a", "b", "c"} {
		g.AddNode(User, id)
	}
	mustLink(t, g, Follow, 0, 2)
	mustLink(t, g, Follow, 0, 1)
	nbrs, err := g.Neighbors(Follow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 2 {
		t.Errorf("Neighbors = %v, want [1 2] sorted", nbrs)
	}
	d, err := g.Degree(Follow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Errorf("Degree = %d", d)
	}
	if _, err := g.Neighbors(Follow, 9); err == nil {
		t.Error("out-of-range Neighbors should fail")
	}
	if _, err := g.Degree(Follow, -1); err == nil {
		t.Error("out-of-range Degree should fail")
	}
}

func TestStatsString(t *testing.T) {
	g := NewSocialNetwork("twitter")
	g.AddNode(User, "a")
	g.AddNode(User, "b")
	mustLink(t, g, Follow, 0, 1)
	s := g.Stats()
	if s.NodeCount[User] != 2 || s.LinkCount[Follow] != 1 {
		t.Errorf("Stats = %+v", s)
	}
	str := s.String()
	if !strings.Contains(str, "twitter") || !strings.Contains(str, "user=2") {
		t.Errorf("Stats.String = %q", str)
	}
}

func TestSocialNetworkSchema(t *testing.T) {
	g := NewSocialNetwork("fsq")
	want := map[LinkType][2]NodeType{
		Follow:   {User, User},
		Write:    {User, Post},
		At:       {Post, Timestamp},
		Checkin:  {Post, Location},
		Contains: {Post, Word},
	}
	for lt, ep := range want {
		src, dst, ok := g.LinkEndpoints(lt)
		if !ok || src != ep[0] || dst != ep[1] {
			t.Errorf("LinkEndpoints(%s) = %s,%s,%v want %v", lt, src, dst, ok, ep)
		}
	}
	if len(g.LinkTypes()) != 5 {
		t.Errorf("LinkTypes = %v", g.LinkTypes())
	}
}

func TestValidate(t *testing.T) {
	g := NewSocialNetwork("tw")
	g.AddNode(User, "a")
	g.AddNode(User, "b")
	mustLink(t, g, Follow, 0, 1)
	if err := g.Validate(); err != nil {
		t.Errorf("valid network failed Validate: %v", err)
	}
}

func mustLink(t *testing.T, g *Network, lt LinkType, from, to int) {
	t.Helper()
	if err := g.AddLink(lt, from, to); err != nil {
		t.Fatalf("AddLink(%s,%d,%d): %v", lt, from, to, err)
	}
}
