package setsync

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// fixture builds a deterministic artifact big enough that 1% churn is
// a real diff: n1 users per net, 6 pool links per user.
type fixture struct {
	pair    *hetnet.AlignedPair
	meta    snapshot.Meta
	model   snapshot.Model
	pool    []snapshot.PoolLink
	matches []snapshot.Match
	labels  []snapshot.QueriedLabel
}

func newFixture(t testing.TB, seed int64, n int) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	build := func(name string) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < n; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		return g
	}
	f := &fixture{
		pair: hetnet.NewAlignedPair(build("src"), build("dst")),
		meta: snapshot.Meta{
			CreatedUnix: 1700000000,
			Facade:      "partitioned",
			Notation:    []string{"U→U", "U→P→U", "bias"},
			Threshold:   0.5,
			Seed:        seed,
		},
		model: snapshot.Model{W: []float64{0.5, -0.25, 0.125}},
	}
	seen := map[[2]int32]bool{}
	for len(f.pool) < n*6 {
		i, j := int32(rng.Intn(n)), int32(rng.Intn(n))
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		f.pool = append(f.pool, snapshot.PoolLink{
			I: i, J: j,
			Label:    float64(rng.Intn(2)),
			Score:    float64(rng.Intn(1000)) / 1000,
			HasScore: true,
			Queried:  rng.Intn(5) == 0,
		})
	}
	for i := 0; i < n; i += 2 {
		f.matches = append(f.matches, snapshot.Match{I: int32(i), J: int32(i), Score: 0.9, HasScore: true})
	}
	f.labels = []snapshot.QueriedLabel{{I: 0, J: 0, Label: 1}}
	return f
}

func (f *fixture) snapshot(t testing.TB) *snapshot.Snapshot {
	t.Helper()
	s, err := snapshot.Build(f.pair, f.meta, f.model, f.pool, f.matches, f.labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// churn rebuilds the artifact with frac of the pool link scores
// changed — the "small drift between fleet generations" shape.
func (f *fixture) churn(t testing.TB, frac float64) *snapshot.Snapshot {
	t.Helper()
	changed := int(float64(len(f.pool)) * frac)
	if changed < 1 {
		changed = 1
	}
	pool := append([]snapshot.PoolLink(nil), f.pool...)
	for i := 0; i < changed; i++ {
		pool[i*len(pool)/changed].Score += 0.001
	}
	s, err := snapshot.Build(f.pair, f.meta, f.model, pool, f.matches, f.labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustBytes(t testing.TB, s *snapshot.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecomposeReassembleRoundTrip(t *testing.T) {
	s := newFixture(t, 1, 40).snapshot(t)
	entries, err := Decompose(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3+len(s.Matches)+len(s.Cands)+len(s.Pool)+len(s.Labels) {
		t.Fatalf("%d entries for the section sizes at hand", len(entries))
	}
	// Shuffle to prove reassembly does not depend on entry order.
	rng := rand.New(rand.NewSource(2))
	rng.Shuffle(len(entries), func(a, b int) { entries[a], entries[b] = entries[b], entries[a] })
	got, err := Reassemble(entries)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, s)) {
		t.Error("reassembled artifact serializes differently from the original")
	}
}

func TestDecomposeDeterministic(t *testing.T) {
	a, err := Decompose(newFixture(t, 3, 30).snapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(newFixture(t, 3, 30).snapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	fps := func(es []Entry) map[uint64]bool {
		m := map[uint64]bool{}
		for _, e := range es {
			m[e.FP] = true
		}
		return m
	}
	fa, fb := fps(a), fps(b)
	if len(fa) != len(fb) {
		t.Fatalf("fingerprint set sizes differ: %d vs %d", len(fa), len(fb))
	}
	for fp := range fa {
		if !fb[fp] {
			t.Fatalf("fingerprint %016x only on one side for equal snapshots", fp)
		}
	}
}

func TestReassembleRejectsBrokenSets(t *testing.T) {
	s := newFixture(t, 4, 20).snapshot(t)
	entries, err := Decompose(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reassemble(entries[1:]); err == nil {
		t.Error("entry set missing its meta head reassembled")
	}
	dup := append(append([]Entry(nil), entries...), entries[0])
	if _, err := Reassemble(dup); err == nil {
		t.Error("entry set with two meta heads reassembled")
	}
	bad := append([]Entry(nil), entries...)
	bad[0] = Entry{Kind: 99, Body: []byte{1}, FP: 7}
	if _, err := Reassemble(bad); err == nil {
		t.Error("unknown entry kind reassembled")
	}
}

func TestIBLTSubtractDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	common := make([]uint64, 5000)
	for i := range common {
		common[i] = rng.Uint64() | 1
	}
	aOnly := []uint64{rng.Uint64() | 1, rng.Uint64() | 1, rng.Uint64() | 1}
	bOnly := []uint64{rng.Uint64() | 1, rng.Uint64() | 1}

	a := NewTable(128, numHashes, 42)
	b := NewTable(128, numHashes, 42)
	for _, fp := range common {
		a.Insert(fp)
		b.Insert(fp)
	}
	for _, fp := range aOnly {
		a.Insert(fp)
	}
	for _, fp := range bOnly {
		b.Insert(fp)
	}
	diff, err := a.Subtract(b)
	if err != nil {
		t.Fatal(err)
	}
	plus, minus, ok := diff.Decode()
	if !ok {
		t.Fatal("5-key difference did not peel out of 128 cells")
	}
	if len(plus) != len(aOnly) || len(minus) != len(bOnly) {
		t.Fatalf("decoded %d+/%d−, want %d+/%d−", len(plus), len(minus), len(aOnly), len(bOnly))
	}
	if _, err := a.Subtract(NewTable(64, numHashes, 42)); err == nil {
		t.Error("mismatched-geometry subtraction accepted")
	}
	// Round-trip the wire encoding.
	back, err := decodeTable(a.appendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(a.Cells) || back.Seed != a.Seed || back.K != a.K {
		t.Error("table wire round trip lost geometry")
	}
}

// serveDialer runs Serve over an in-memory pipe per dial.
func serveDialer(t testing.TB, target *snapshot.Snapshot, opts Options) Dialer {
	t.Helper()
	return func() (net.Conn, error) {
		c1, c2 := net.Pipe()
		go func() {
			defer c2.Close()
			Serve(c2, target, opts)
		}()
		return c1, nil
	}
}

func TestPullNoChange(t *testing.T) {
	s := newFixture(t, 6, 40).snapshot(t)
	got, stats, err := Pull(serveDialer(t, s, Options{}), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "none" || got != s {
		t.Errorf("mode %q (stats %+v)", stats.Mode, stats)
	}
	if stats.WireBytes() > 200 {
		t.Errorf("no-change sync moved %d wire bytes", stats.WireBytes())
	}
}

// TestPullDeltaSmallChurn is the acceptance property: at 1% churn the
// reconciliation traffic stays under 10% of the full artifact.
func TestPullDeltaSmallChurn(t *testing.T) {
	f := newFixture(t, 7, 400)
	stale := f.snapshot(t)
	target := f.churn(t, 0.01)
	got, stats, err := Pull(serveDialer(t, target, Options{}), stale, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "delta" {
		t.Fatalf("mode %q, fallback %q", stats.Mode, stats.Fallback)
	}
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, target)) {
		t.Error("delta sync produced a different artifact")
	}
	if stats.Added == 0 || stats.Removed == 0 {
		t.Errorf("stats %+v counted no patched entries", stats)
	}
	if 10*stats.WireBytes() >= stats.FullBytes {
		t.Errorf("delta moved %d wire bytes against a %d-byte artifact (≥10%%)", stats.WireBytes(), stats.FullBytes)
	}
}

func TestPullFullWhenNoLocalSnapshot(t *testing.T) {
	target := newFixture(t, 8, 40).snapshot(t)
	got, stats, err := Pull(serveDialer(t, target, Options{}), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "full" || stats.Fallback != "no local snapshot" {
		t.Errorf("stats %+v", stats)
	}
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, target)) {
		t.Error("full sync produced a different artifact")
	}
}

// A diff near the size of the artifact must cut over to the full
// transfer instead of shipping the artifact piecewise as a patch.
func TestPullLargeDiffCutsOverToFull(t *testing.T) {
	stale := newFixture(t, 9, 60).snapshot(t)
	target := newFixture(t, 10, 60).snapshot(t) // unrelated content
	got, stats, err := Pull(serveDialer(t, target, Options{}), stale, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "full" {
		t.Errorf("mode %q for a ~100%% diff", stats.Mode)
	}
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, target)) {
		t.Error("cutover sync produced a different artifact")
	}
}

// corruptConn flips one byte of server→client traffic, simulating
// in-flight corruption. The CRC trailer must catch it and the client
// must converge by falling back to a full pull on a fresh connection.
type corruptConn struct {
	net.Conn
	seen int
}

func (c *corruptConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	for i := 0; i < n; i++ {
		c.seen++
		if c.seen == 11 {
			p[i] ^= 0x20
		}
	}
	return n, err
}

func TestPullCorruptFrameFallsBackToFull(t *testing.T) {
	f := newFixture(t, 11, 80)
	stale := f.snapshot(t)
	target := f.churn(t, 0.01)
	clean := serveDialer(t, target, Options{})
	dials := 0
	dial := func() (net.Conn, error) {
		dials++
		conn, err := clean()
		if dials == 1 {
			return &corruptConn{Conn: conn}, err
		}
		return conn, err
	}
	got, stats, err := Pull(dial, stale, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "full" || stats.Fallback == "" {
		t.Errorf("stats %+v after injected corruption", stats)
	}
	if dials != 2 {
		t.Errorf("fallback reused the poisoned connection (%d dials)", dials)
	}
	if !bytes.Equal(mustBytes(t, got), mustBytes(t, target)) {
		t.Error("post-corruption sync produced a different artifact")
	}
}

func TestServeRejectsGarbage(t *testing.T) {
	s := newFixture(t, 12, 20).snapshot(t)
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(c2, s, Options{}) }()
	// Write from a goroutine: net.Pipe writes block until read, and the
	// server stops reading the moment the length prefix is hostile.
	go func() {
		c1.Write([]byte("definitely not a framed hello, padded until the reader gives up"))
		c1.Close()
	}()
	if err := <-done; err == nil {
		t.Error("garbage hello accepted")
	}
}

func TestPullDialFailure(t *testing.T) {
	dial := func() (net.Conn, error) { return nil, fmt.Errorf("refused") }
	_, stats, err := Pull(dial, nil, Options{})
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Errorf("err %v stats %+v", err, stats)
	}
}

// growTarget must never ask a client to grow to a size it already has:
// once the ladder hits maxCells, replying Grow would only re-buy an
// identically sized (~14 MiB) sketch each round until the attempt
// budget ran out, so the ladder reports exhaustion (0) instead.
func TestGrowTargetExhaustsAtMaxCells(t *testing.T) {
	cases := []struct{ clientCells, want int }{
		{0, 128},
		{127, 128},
		{128, 256},
		{129, 256},
		{maxCells/2 - 1, maxCells / 2},
		{maxCells / 2, maxCells},
		{maxCells - 1, maxCells},
		{maxCells, 0},     // plateau: no strictly larger level exists
		{maxCells + 7, 0}, // defensive: hostile table sizes decode-reject earlier
	}
	for _, c := range cases {
		if got := growTarget(c.clientCells); got != c.want {
			t.Errorf("growTarget(%d) = %d, want %d", c.clientCells, got, c.want)
		}
	}
	for _, c := range cases {
		if c.want != 0 && c.want <= c.clientCells {
			t.Errorf("growTarget(%d) = %d does not strictly grow", c.clientCells, c.want)
		}
	}
}
