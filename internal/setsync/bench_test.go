package setsync

import (
	"fmt"
	"testing"
)

// BenchmarkPullChurn measures the reconciliation wire cost against
// churn rate: for each fraction of mutated pool links, how many bytes
// a delta pull moves versus the full artifact. wire_frac is the
// headline number (delta bytes / full bytes) at each churn level.
func BenchmarkPullChurn(b *testing.B) {
	for _, frac := range []float64{0.001, 0.01, 0.1} {
		b.Run(fmt.Sprintf("churn=%g", frac), func(b *testing.B) {
			f := newFixture(b, 99, 400)
			have := f.snapshot(b)
			target := f.churn(b, frac)
			var wire, full int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dial := serveDialer(b, target, Options{})
				got, stats, err := Pull(dial, have, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if got == nil {
					b.Fatal("nil snapshot")
				}
				wire = stats.WireBytes()
				full = stats.FullBytes
			}
			b.ReportMetric(float64(wire), "wire_bytes/op")
			b.ReportMetric(float64(wire)/float64(full), "wire_frac")
		})
	}
}
