// Invertible Bloom lookup table over entry fingerprints. An IBLT is a
// fixed-size sketch of a set supporting SUBTRACTION: encode set A into
// a table, subtract set B's same-shaped table, and — when the
// symmetric difference is small relative to the cell count — peel the
// difference back out exactly, split by side. That is precisely the
// delta-sync primitive: the sketch's size is chosen by the expected
// diff, not by the set, so a fleet member reconciles a near-identical
// artifact in O(diff) bytes.
package setsync

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/framing"
)

// Cell is one IBLT bucket: a signed count of keys hashed here, the XOR
// of those keys, and the XOR of their check hashes. A cell holding
// exactly one key (count ±1) is recognizable because its KeySum's
// check hash matches its Check — that recognizability is what makes
// the table invertible. The check hash is 32 bits, not 64: it exists
// only to reject impure cells during peeling, a 2⁻³² false-pure rate
// is caught downstream by the artifact fingerprint verification, and
// halving it cuts every sketch's wire cost by ~20%.
type Cell struct {
	Count  int64
	KeySum uint64
	Check  uint32
}

const (
	// maxCells caps a table's cell count, both for the level ladder and
	// for hostile decoded input (1M cells ≈ 24 MiB — far above any diff
	// the cutover threshold would let reach the wire).
	maxCells = 1 << 20
	// maxHashes bounds the per-key position count accepted off the wire.
	maxHashes = 8
	// numHashes is the position count this side writes. 4 gives the
	// standard ~1.3×diff cell requirement for reliable peeling.
	numHashes = 4
	// checkSalt separates the check-hash domain from the position
	// domain.
	checkSalt = 0x6a09e667f3bcc909
)

func checkOf(fp uint64) uint32 { return uint32(splitmix64(fp ^ checkSalt)) }

// Table is an IBLT. Both sides of a subtraction must agree on the cell
// count, hash count and seed; the wire encoding carries all three.
type Table struct {
	Seed  uint64
	K     int
	Cells []Cell
}

// NewTable returns an empty m-cell table with k hash positions.
func NewTable(m, k int, seed uint64) *Table {
	return &Table{Seed: seed, K: k, Cells: make([]Cell, m)}
}

// positions appends the k cell indices for fp to buf. Positions may
// collide; peeling handles a key XOR-ing into the same cell twice the
// same way classic IBLT treatments do (the double-insert cancels in
// KeySum/Check while Count moves by 2 — the cell just is not pure).
func (t *Table) positions(fp uint64, buf []int) []int {
	m := uint64(len(t.Cells))
	for i := 0; i < t.K; i++ {
		h := splitmix64(fp ^ t.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
		buf = append(buf, int(h%m))
	}
	return buf
}

// Insert adds fp to the table.
func (t *Table) Insert(fp uint64) { t.apply(fp, 1) }

func (t *Table) apply(fp uint64, sign int64) {
	var posBuf [maxHashes]int
	for _, p := range t.positions(fp, posBuf[:0]) {
		c := &t.Cells[p]
		c.Count += sign
		c.KeySum ^= fp
		c.Check ^= checkOf(fp)
	}
}

// Subtract returns t − o cellwise. The shapes must agree exactly —
// different geometry means the two sketches hash keys to different
// cells and the subtraction is meaningless.
func (t *Table) Subtract(o *Table) (*Table, error) {
	if len(t.Cells) != len(o.Cells) || t.K != o.K || t.Seed != o.Seed {
		return nil, fmt.Errorf("setsync: subtracting mismatched tables (%d/%d cells, k %d/%d)", len(t.Cells), len(o.Cells), t.K, o.K)
	}
	out := NewTable(len(t.Cells), t.K, t.Seed)
	for i := range t.Cells {
		out.Cells[i] = Cell{
			Count:  t.Cells[i].Count - o.Cells[i].Count,
			KeySum: t.Cells[i].KeySum ^ o.Cells[i].KeySum,
			Check:  t.Cells[i].Check ^ o.Cells[i].Check,
		}
	}
	return out, nil
}

// Decode peels a subtracted table into the two sides of the symmetric
// difference: plus holds keys present only in the minuend (the table
// Subtract was called on), minus the keys present only in the
// subtrahend. ok reports a complete decode — every cell returned to
// zero. The work and output are bounded by the cell count regardless
// of what the cells claim, so a hostile table cannot make the decoder
// spin or over-allocate; it just fails.
func (t *Table) Decode() (plus, minus []uint64, ok bool) {
	work := NewTable(len(t.Cells), t.K, t.Seed)
	copy(work.Cells, t.Cells)
	queue := make([]int, 0, len(work.Cells))
	for i := range work.Cells {
		if work.pure(i) {
			queue = append(queue, i)
		}
	}
	var posBuf [maxHashes]int
	// Each successful peel removes one key; more peels than cells means
	// the cell contents are lying (hostile input), so stop there.
	for len(queue) > 0 && len(plus)+len(minus) <= len(work.Cells) {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !work.pure(i) {
			continue // a later peel already consumed this cell
		}
		c := work.Cells[i]
		fp, sign := c.KeySum, c.Count
		if sign > 0 {
			plus = append(plus, fp)
		} else {
			minus = append(minus, fp)
		}
		for _, p := range work.positions(fp, posBuf[:0]) {
			w := &work.Cells[p]
			w.Count -= sign
			w.KeySum ^= fp
			w.Check ^= checkOf(fp)
			if work.pure(p) {
				queue = append(queue, p)
			}
		}
	}
	for i := range work.Cells {
		if work.Cells[i] != (Cell{}) {
			return plus, minus, false
		}
	}
	return plus, minus, true
}

func (t *Table) pure(i int) bool {
	c := t.Cells[i]
	return (c.Count == 1 || c.Count == -1) && c.Check == checkOf(c.KeySum)
}

// appendTo encodes the table as a columnar frame body: geometry, then
// the packed cells.
func (t *Table) appendTo(b []byte) []byte {
	b = framing.AppendUvarint(b, uint64(len(t.Cells)))
	b = framing.AppendUvarint(b, uint64(t.K))
	b = framing.AppendUint64(b, t.Seed)
	for _, c := range t.Cells {
		b = framing.AppendVarint(b, c.Count)
		b = framing.AppendUint64(b, c.KeySum)
		b = framing.AppendUint32(b, c.Check)
	}
	return b
}

// decodeTable reads a table off the wire with hostile-input bounds:
// the declared cell count is checked against both maxCells and the
// bytes actually present (a cell costs ≥ 13 bytes) before allocation,
// and the hash count against maxHashes.
func decodeTable(body []byte) (*Table, error) {
	d := framing.NewDec(body)
	m := d.Uvarint()
	k := d.Uvarint()
	seed := d.Uint64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if m == 0 || m > maxCells {
		return nil, fmt.Errorf("setsync: table cell count %d outside [1,%d]", m, maxCells)
	}
	if k == 0 || k > maxHashes {
		return nil, fmt.Errorf("setsync: table hash count %d outside [1,%d]", k, maxHashes)
	}
	if m > uint64(d.Remaining())/13 {
		return nil, fmt.Errorf("setsync: table claims %d cells, body holds %d bytes", m, d.Remaining())
	}
	t := NewTable(int(m), int(k), seed)
	for i := range t.Cells {
		t.Cells[i] = Cell{Count: d.Varint(), KeySum: d.Uint64(), Check: d.Uint32()}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return t, nil
}
