package setsync

import "testing"

// FuzzIBLT feeds hostile bytes to the table decoder and peeler. The
// invariants: no panic, no allocation beyond the declared (and
// bounded) cell count, and a peel that never emits more keys than the
// table has cells (+1 for the in-flight pop) no matter what the cells
// claim.
func FuzzIBLT(f *testing.F) {
	// A valid small table as a seed so the fuzzer starts near the
	// interesting surface.
	valid := NewTable(16, numHashes, 99)
	for fp := uint64(1); fp < 20; fp++ {
		valid.Insert(splitmix64(fp))
	}
	f.Add(valid.appendTo(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, body []byte) {
		tab, err := decodeTable(body)
		if err != nil {
			return
		}
		if len(tab.Cells) > maxCells {
			t.Fatalf("decoder accepted %d cells", len(tab.Cells))
		}
		plus, minus, _ := tab.Decode()
		if len(plus)+len(minus) > len(tab.Cells)+1 {
			t.Fatalf("peeled %d keys out of %d cells", len(plus)+len(minus), len(tab.Cells))
		}
	})
}

// FuzzPatch drives the patch applier with hostile frame bodies over a
// real local entry set: it must error or produce a verified snapshot,
// never panic or over-allocate on lying counts.
func FuzzPatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x05})
	f.Fuzz(func(t *testing.T, body []byte) {
		applyPatch(nil, body, 1)
	})
}
