// The delta-sync wire protocol. One connection, client-driven:
//
//	client → Hello   (wants delta?, local artifact fingerprint, entry count)
//	server → Summary (target fingerprint, entry count, full artifact bytes)
//	                 — equal fingerprints end the exchange here.
//	loop:
//	client → Cells   (its IBLT at the current ladder level)
//	server → Patch   (fingerprints to delete + entries to add)   → done
//	       | Grow    (sketch undecodable; send the next level up)
//	       | Full    (the whole artifact: diff or sketch crossed the
//	                  cutover threshold, or the ladder ran out)
//
// Every frame rides the shared framing codec with CRC-32C trailers, so
// wire corruption surfaces as a detected error; the client responds to
// ANY delta-path failure — corrupt frame, protocol violation, a patch
// that does not reassemble to the target fingerprint — by redialing
// and pulling the full artifact. Delta sync can therefore only ever
// save bytes, never serve a wrong artifact.
package setsync

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"time"

	"github.com/activeiter/activeiter/internal/framing"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// codec is the setsync instance of the shared framing discipline.
// Checksummed: sync peers cross real networks, and an undetected
// flipped byte in a patch would reassemble into a silently different
// artifact (caught later by the fingerprint check, but detected here
// with a much better error).
var codec = framing.Codec{Magic: [2]byte{'S', 'Y'}, Version: 1, MaxFrame: 1 << 30, Checksum: true}

// ErrVersionMismatch is the shared framing sentinel, re-exported.
var ErrVersionMismatch = framing.ErrVersionMismatch

// Frame types.
const (
	tHello byte = iota + 1
	tSummary
	tCells
	tPatch
	tGrow
	tFull
)

// Options tune one side of a sync.
type Options struct {
	// Cutover is the give-up fraction: when the sketch (or the decoded
	// patch) would cost more than Cutover × the full artifact, the
	// server ships the artifact instead. 0 means the 0.25 default.
	Cutover float64
	// MaxLevel caps the sketch ladder (level ℓ has 128·2^ℓ cells).
	// 0 means the default 13 (which reaches the maxCells cap).
	MaxLevel int
	// StartLevel is the first ladder level the client offers.
	StartLevel int
	// Timeout, when set, is applied as an absolute deadline on each
	// dialed connection (client side only).
	Timeout time.Duration
}

const (
	defaultCutover  = 0.25
	defaultMaxLevel = 13
)

func (o Options) withDefaults() Options {
	if o.Cutover <= 0 || o.Cutover > 1 {
		o.Cutover = defaultCutover
	}
	if o.MaxLevel <= 0 {
		o.MaxLevel = defaultMaxLevel
	}
	if o.StartLevel < 0 {
		o.StartLevel = 0
	}
	return o
}

// cellsForLevel is the sketch ladder: ×2 cells per level, capped. The
// doubling is deliberately fine-grained — a retry that overshoots by
// 4× wastes most of what delta sync is supposed to save.
func cellsForLevel(level int) int {
	m := 128 << level
	if m > maxCells || m <= 0 {
		return maxCells
	}
	return m
}

// cellBytesEstimate approximates a level's wire cost for cutover
// decisions (count varint ≈ 1 byte + packed uint64 + uint32).
func cellBytesEstimate(m int) int { return m * 14 }

// growTarget is the server side of the ladder: the smallest ladder
// size STRICTLY larger than the client's current table, or 0 when the
// ladder is exhausted (the client is already at maxCells, so a Grow
// could only elicit the same sketch again).
func growTarget(clientCells int) int {
	next := cellsForLevel(0)
	for next <= clientCells && next < maxCells {
		next *= 2
	}
	if next <= clientCells {
		return 0
	}
	return next
}

// Stats describes how a Pull went, for logs and metrics.
type Stats struct {
	// Mode is "none" (already current), "delta", or "full".
	Mode string
	// Attempts counts sketch levels offered before resolution.
	Attempts int
	// TxBytes/RxBytes are the client's wire bytes, all connections.
	TxBytes, RxBytes int64
	// FullBytes is the full artifact size the server advertised.
	FullBytes int64
	// TargetFP is the artifact fingerprint synced to.
	TargetFP uint64
	// Added/Removed count patched entries (delta mode only).
	Added, Removed int
	// Fallback records why the delta path was abandoned, if it was.
	Fallback string
}

// WireBytes is the total reconciliation traffic.
func (s Stats) WireBytes() int64 { return s.TxBytes + s.RxBytes }

// artifactBytes serializes a snapshot once; the fingerprint is FNV-64a
// over exactly these bytes (matching snapshot.Fingerprint).
func artifactBytes(s *snapshot.Snapshot) ([]byte, uint64, error) {
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		return nil, 0, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return buf.Bytes(), h.Sum64(), nil
}

// Serve answers one sync connection with the given snapshot. The
// caller owns the connection lifecycle (deadlines, close) and the
// accept loop; Serve returns when the exchange completes or fails.
func Serve(conn io.ReadWriter, snap *snapshot.Snapshot, opts Options) error {
	opts = opts.withDefaults()
	if snap == nil {
		return fmt.Errorf("setsync: serving nil snapshot")
	}
	full, fp, err := artifactBytes(snap)
	if err != nil {
		return err
	}
	entries, decompErr := Decompose(snap)

	typ, body, err := codec.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("setsync: read hello: %w", err)
	}
	if typ != tHello {
		return fmt.Errorf("setsync: frame type %d where hello belongs", typ)
	}
	d := framing.NewDec(body)
	wantDelta := d.Bool()
	haveFP := d.Uint64()
	d.Uvarint() // client entry count: informational
	if err := d.Done(); err != nil {
		return fmt.Errorf("setsync: hello body: %w", err)
	}

	sum := framing.AppendUint64(nil, fp)
	sum = framing.AppendUvarint(sum, uint64(len(entries)))
	sum = framing.AppendUvarint(sum, uint64(len(full)))
	if err := codec.WriteFrame(conn, tSummary, sum); err != nil {
		return err
	}
	if wantDelta && haveFP == fp {
		return nil // client is already current; Summary told it so
	}
	if !wantDelta || decompErr != nil {
		return codec.WriteFrame(conn, tFull, full)
	}

	byFP := make(map[uint64]Entry, len(entries))
	for _, e := range entries {
		byFP[e.FP] = e
	}
	attempts := 0
	for {
		typ, body, err := codec.ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("setsync: read cells: %w", err)
		}
		if typ != tCells {
			return fmt.Errorf("setsync: frame type %d where cells belong", typ)
		}
		clientTable, err := decodeTable(body)
		if err != nil {
			return fmt.Errorf("setsync: %w", err)
		}
		attempts++
		mine := NewTable(len(clientTable.Cells), clientTable.K, clientTable.Seed)
		for _, e := range entries {
			mine.Insert(e.FP)
		}
		diff, err := mine.Subtract(clientTable)
		if err != nil {
			return err
		}
		patch, ok := buildPatch(diff, byFP)
		if ok && len(patch) <= int(opts.Cutover*float64(len(full))) {
			return codec.WriteFrame(conn, tPatch, patch)
		}
		// Peeling failed or the patch is not worth it. Grow while a
		// strictly larger sketch exists and is still cheaper than the
		// cutover allows; otherwise ship the artifact. Asking a client
		// already at the ladder's maxCells cap to grow would just re-buy
		// an identically sized sketch every round until the attempt
		// budget ran out.
		next := growTarget(len(clientTable.Cells))
		if ok || attempts > opts.MaxLevel || next == 0 ||
			cellBytesEstimate(next) > int(opts.Cutover*float64(len(full))) {
			return codec.WriteFrame(conn, tFull, full)
		}
		if err := codec.WriteFrame(conn, tGrow, nil); err != nil {
			return err
		}
	}
}

// buildPatch peels the subtracted table and encodes the patch frame:
// the client-only fingerprints to delete, then the server-only entries
// to add. ok is false when the sketch did not decode or decoded to
// keys the server does not hold (a garbage peel).
func buildPatch(diff *Table, byFP map[uint64]Entry) ([]byte, bool) {
	plus, minus, ok := diff.Decode()
	if !ok {
		return nil, false
	}
	body := framing.AppendUint64s(nil, minus)
	body = framing.AppendUvarint(body, uint64(len(plus)))
	for _, fp := range plus {
		e, found := byFP[fp]
		if !found {
			return nil, false
		}
		body = append(body, e.Kind)
		body = framing.AppendBytes(body, e.Body)
	}
	return body, true
}

// Dialer opens a fresh connection to the sync peer. Pull dials once
// for the delta attempt and, if that fails in any way, once more for
// the full pull — a failed delta leaves the first connection in an
// unknowable protocol state, so the fallback never reuses it.
type Dialer func() (net.Conn, error)

// Pull reconciles the local snapshot (nil when there is none) against
// the peer's and returns the peer's artifact. The returned snapshot is
// always fingerprint-verified against what the peer advertised; Stats
// records the mode and byte counts. have is returned unchanged when
// the peer already serves the same artifact.
func Pull(dial Dialer, have *snapshot.Snapshot, opts Options) (*snapshot.Snapshot, Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if have != nil {
		snap, err := pullDelta(dial, have, opts, &stats)
		if err == nil {
			return snap, stats, nil
		}
		stats.Fallback = err.Error()
	} else {
		stats.Fallback = "no local snapshot"
	}
	snap, err := pullFull(dial, opts, &stats)
	if err != nil {
		return nil, stats, err
	}
	stats.Mode = "full"
	return snap, stats, nil
}

// countRW counts wire bytes through an io.ReadWriter.
type countRW struct {
	rw     io.ReadWriter
	tx, rx *int64
}

func (c countRW) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	*c.rx += int64(n)
	return n, err
}

func (c countRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	*c.tx += int64(n)
	return n, err
}

func dialCounted(dial Dialer, opts Options, stats *Stats) (countRW, func(), error) {
	conn, err := dial()
	if err != nil {
		return countRW{}, nil, fmt.Errorf("setsync: dial: %w", err)
	}
	if opts.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(opts.Timeout))
	}
	return countRW{rw: conn, tx: &stats.TxBytes, rx: &stats.RxBytes}, func() { conn.Close() }, nil
}

func writeHello(conn io.Writer, wantDelta bool, haveFP uint64, haveCount int) error {
	body := framing.AppendBool(nil, wantDelta)
	body = framing.AppendUint64(body, haveFP)
	body = framing.AppendUvarint(body, uint64(haveCount))
	return codec.WriteFrame(conn, tHello, body)
}

func readSummary(conn io.Reader) (fp uint64, count, fullBytes int64, err error) {
	typ, body, err := codec.ReadFrame(conn)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("setsync: read summary: %w", err)
	}
	if typ != tSummary {
		return 0, 0, 0, fmt.Errorf("setsync: frame type %d where summary belongs", typ)
	}
	d := framing.NewDec(body)
	fp = d.Uint64()
	count = int64(d.Uvarint())
	fullBytes = int64(d.Uvarint())
	if err := d.Done(); err != nil {
		return 0, 0, 0, fmt.Errorf("setsync: summary body: %w", err)
	}
	return fp, count, fullBytes, nil
}

// verifyArtifact decodes raw bytes and checks them against the
// advertised fingerprint.
func verifyArtifact(raw []byte, wantFP uint64) (*snapshot.Snapshot, error) {
	h := fnv.New64a()
	h.Write(raw)
	if got := h.Sum64(); got != wantFP {
		return nil, fmt.Errorf("setsync: full artifact fingerprints %016x, peer advertised %016x", got, wantFP)
	}
	return snapshot.Read(bytes.NewReader(raw))
}

func pullDelta(dial Dialer, have *snapshot.Snapshot, opts Options, stats *Stats) (*snapshot.Snapshot, error) {
	entries, err := Decompose(have)
	if err != nil {
		return nil, err
	}
	_, haveFP, err := artifactBytes(have)
	if err != nil {
		return nil, err
	}
	conn, closeConn, err := dialCounted(dial, opts, stats)
	if err != nil {
		return nil, err
	}
	defer closeConn()
	if err := writeHello(conn, true, haveFP, len(entries)); err != nil {
		return nil, err
	}
	targetFP, _, fullBytes, err := readSummary(conn)
	if err != nil {
		return nil, err
	}
	stats.TargetFP = targetFP
	stats.FullBytes = fullBytes
	if targetFP == haveFP {
		stats.Mode = "none"
		return have, nil
	}
	for level := opts.StartLevel; ; level++ {
		if stats.Attempts > opts.MaxLevel {
			return nil, fmt.Errorf("setsync: peer kept growing past level %d", opts.MaxLevel)
		}
		stats.Attempts++
		// Reseed per level: a level that fails only because its seed
		// placed the diff unluckily should not drag that seed into the
		// retry. Deriving from the fingerprints keeps it deterministic.
		seed := splitmix64(haveFP ^ targetFP ^ uint64(level)<<56)
		table := NewTable(cellsForLevel(level), numHashes, seed)
		for _, e := range entries {
			table.Insert(e.FP)
		}
		if err := codec.WriteFrame(conn, tCells, table.appendTo(nil)); err != nil {
			return nil, err
		}
		typ, body, err := codec.ReadFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("setsync: read server reply: %w", err)
		}
		switch typ {
		case tGrow:
			continue
		case tFull:
			// Server-initiated fallback on the same connection: the diff
			// (or the sketch) crossed the cutover.
			snap, err := verifyArtifact(body, targetFP)
			if err != nil {
				return nil, err
			}
			stats.Mode = "full"
			return snap, nil
		case tPatch:
			snap, added, removed, err := applyPatch(entries, body, targetFP)
			if err != nil {
				return nil, err
			}
			stats.Mode = "delta"
			stats.Added, stats.Removed = added, removed
			return snap, nil
		default:
			return nil, fmt.Errorf("setsync: unexpected frame type %d after cells", typ)
		}
	}
}

// applyPatch edits the local entry set per the patch frame and
// reassembles, verifying the result against the target fingerprint —
// the end-to-end check that subsumes every protocol-level one.
func applyPatch(local []Entry, body []byte, targetFP uint64) (*snapshot.Snapshot, int, int, error) {
	d := framing.NewDec(body)
	dels := d.Uint64s()
	n := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, 0, 0, err
	}
	// Each added entry costs at least 2 bytes (kind + empty-body count).
	if n > uint64(d.Remaining())/2 {
		return nil, 0, 0, fmt.Errorf("setsync: patch claims %d entries, body holds %d bytes", n, d.Remaining())
	}
	byFP := make(map[uint64]Entry, len(local))
	for _, e := range local {
		byFP[e.FP] = e
	}
	for _, fp := range dels {
		if _, ok := byFP[fp]; !ok {
			return nil, 0, 0, fmt.Errorf("setsync: patch deletes %016x which is not held locally — sketch decoded to garbage", fp)
		}
		delete(byFP, fp)
	}
	for i := uint64(0); i < n; i++ {
		kind := d.Byte()
		entryBody := d.Bytes()
		if err := d.Err(); err != nil {
			return nil, 0, 0, err
		}
		byFP[fingerprintOf(kind, entryBody)] = Entry{Kind: kind, Body: entryBody, FP: fingerprintOf(kind, entryBody)}
	}
	if err := d.Done(); err != nil {
		return nil, 0, 0, err
	}
	merged := make([]Entry, 0, len(byFP))
	for _, e := range byFP {
		merged = append(merged, e)
	}
	snap, err := Reassemble(merged)
	if err != nil {
		return nil, 0, 0, err
	}
	_, gotFP, err := artifactBytes(snap)
	if err != nil {
		return nil, 0, 0, err
	}
	if gotFP != targetFP {
		return nil, 0, 0, fmt.Errorf("setsync: patched artifact fingerprints %016x, peer advertised %016x", gotFP, targetFP)
	}
	return snap, int(n), len(dels), nil
}

func pullFull(dial Dialer, opts Options, stats *Stats) (*snapshot.Snapshot, error) {
	conn, closeConn, err := dialCounted(dial, opts, stats)
	if err != nil {
		return nil, err
	}
	defer closeConn()
	if err := writeHello(conn, false, 0, 0); err != nil {
		return nil, err
	}
	targetFP, _, fullBytes, err := readSummary(conn)
	if err != nil {
		return nil, err
	}
	stats.TargetFP = targetFP
	stats.FullBytes = fullBytes
	typ, body, err := codec.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("setsync: read full artifact: %w", err)
	}
	if typ != tFull {
		return nil, fmt.Errorf("setsync: frame type %d where the full artifact belongs", typ)
	}
	return verifyArtifact(body, targetFP)
}

// errorsIsAny is a tiny helper for tests asserting fallback causes.
func errorsIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
