// Package setsync distributes snapshot artifacts across a serving
// fleet in bytes proportional to what actually changed. A snapshot is
// decomposed into a SET of content-addressed entries (one per match,
// pool link, candidate list, queried label, plus the scalar head
// sections); two replicas holding almost-identical artifacts then
// reconcile with an invertible Bloom lookup table (IBLT) over the
// entry fingerprints: the stale side ships a constant-factor sketch of
// its set, the fresh side subtracts its own sketch and peels out the
// symmetric difference, and only the differing entries cross the wire.
// When the diff is too large for the sketch — or anything at all goes
// wrong: a corrupt frame, an undecodable sketch, a fingerprint
// mismatch after patching — the protocol falls back to shipping the
// full artifact, so delta sync is purely an optimization and never a
// correctness risk.
//
// The wire format rides internal/framing with its own magic ("SY"),
// version byte and CRC-32C trailers; see sync.go for the protocol.
package setsync

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/activeiter/activeiter/internal/framing"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// Entry kinds. The kind byte is hashed into the fingerprint, so a pool
// link and a match with identical column bytes cannot collide.
const (
	kindMeta byte = iota + 1
	kindModel
	kindTopK
	kindMatch
	kindCand
	kindPool
	kindLabel
)

// Entry is one content-addressed piece of a snapshot: a kind, its
// encoded body, and the fingerprint that names it in the IBLT.
type Entry struct {
	Kind byte
	Body []byte
	FP   uint64
}

// splitmix64 is the finalizer used everywhere fingerprints need to be
// spread into independent-looking bits (IBLT positions, check hashes).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fingerprintOf names an entry: FNV-64a over kind and body, finalized
// with splitmix64 so the raw hash's structure cannot leak into the
// table positions. Zero is reserved (a zero key would XOR invisibly
// into KeySum), so it maps to 1.
func fingerprintOf(kind byte, body []byte) uint64 {
	h := fnv.New64a()
	h.Write([]byte{kind})
	h.Write(body)
	fp := splitmix64(h.Sum64())
	if fp == 0 {
		fp = 1
	}
	return fp
}

func entryOf(kind byte, body []byte) Entry {
	return Entry{Kind: kind, Body: body, FP: fingerprintOf(kind, body)}
}

func encMatch(m snapshot.Match) []byte {
	b := framing.AppendVarint(nil, int64(m.I))
	b = framing.AppendVarint(b, int64(m.J))
	b = framing.AppendFloat64(b, m.Score)
	return framing.AppendBool(b, m.HasScore)
}

func decMatch(body []byte) (snapshot.Match, error) {
	d := framing.NewDec(body)
	m := snapshot.Match{I: int32(d.Varint()), J: int32(d.Varint()), Score: d.Float64(), HasScore: d.Bool()}
	return m, d.Done()
}

func encPool(p snapshot.PoolLink) []byte {
	b := framing.AppendVarint(nil, int64(p.I))
	b = framing.AppendVarint(b, int64(p.J))
	b = framing.AppendFloat64(b, p.Label)
	b = framing.AppendFloat64(b, p.Score)
	b = framing.AppendBool(b, p.HasScore)
	return framing.AppendBool(b, p.Queried)
}

func decPool(body []byte) (snapshot.PoolLink, error) {
	d := framing.NewDec(body)
	p := snapshot.PoolLink{I: int32(d.Varint()), J: int32(d.Varint()), Label: d.Float64(), Score: d.Float64(), HasScore: d.Bool(), Queried: d.Bool()}
	return p, d.Done()
}

func encLabel(l snapshot.QueriedLabel) []byte {
	b := framing.AppendVarint(nil, int64(l.I))
	b = framing.AppendVarint(b, int64(l.J))
	return framing.AppendFloat64(b, l.Label)
}

func decLabel(body []byte) (snapshot.QueriedLabel, error) {
	d := framing.NewDec(body)
	l := snapshot.QueriedLabel{I: int32(d.Varint()), J: int32(d.Varint()), Label: d.Float64()}
	return l, d.Done()
}

func encCand(uc snapshot.UserCandidates) []byte {
	b := append([]byte(nil), uc.Net)
	b = framing.AppendVarint(b, int64(uc.User))
	b = framing.AppendUvarint(b, uint64(len(uc.Items)))
	for _, it := range uc.Items {
		b = framing.AppendVarint(b, int64(it.Other))
		b = framing.AppendFloat64(b, it.Score)
	}
	return b
}

func decCand(body []byte) (snapshot.UserCandidates, error) {
	d := framing.NewDec(body)
	uc := snapshot.UserCandidates{Net: d.Byte(), User: int32(d.Varint())}
	n := d.Uvarint()
	// Each item costs at least 9 bytes (1 varint + 8 float); bound the
	// declared count before allocating.
	if n > uint64(d.Remaining())/9 {
		d.Fail("candidate item count")
		return uc, d.Err()
	}
	uc.Items = make([]snapshot.Candidate, n)
	for i := range uc.Items {
		uc.Items[i] = snapshot.Candidate{Other: int32(d.Varint()), Score: d.Float64()}
	}
	return uc, d.Done()
}

func encGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("setsync: %w", err)
	}
	return buf.Bytes(), nil
}

// Decompose breaks a snapshot into its entry set. Entry bodies are
// deterministic for equal snapshots (column encodings and fresh
// slice-only gob encoders, the same discipline the artifact format
// relies on), so two processes holding equal snapshots derive equal
// fingerprint sets. A duplicate fingerprint — two identical entries,
// impossible in a canonical artifact but cheap to check — is an error,
// because a set reconciler cannot represent multiplicity.
func Decompose(s *snapshot.Snapshot) ([]Entry, error) {
	if s == nil {
		return nil, fmt.Errorf("setsync: nil snapshot")
	}
	entries := make([]Entry, 0, 3+len(s.Matches)+len(s.Cands)+len(s.Pool)+len(s.Labels))
	metaBody, err := encGob(&s.Meta)
	if err != nil {
		return nil, err
	}
	modelBody, err := encGob(&s.Model)
	if err != nil {
		return nil, err
	}
	entries = append(entries,
		entryOf(kindMeta, metaBody),
		entryOf(kindModel, modelBody),
		entryOf(kindTopK, framing.AppendVarint(nil, int64(s.TopK))))
	for _, m := range s.Matches {
		entries = append(entries, entryOf(kindMatch, encMatch(m)))
	}
	for _, uc := range s.Cands {
		entries = append(entries, entryOf(kindCand, encCand(uc)))
	}
	for _, p := range s.Pool {
		entries = append(entries, entryOf(kindPool, encPool(p)))
	}
	for _, l := range s.Labels {
		entries = append(entries, entryOf(kindLabel, encLabel(l)))
	}
	seen := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		if seen[e.FP] {
			return nil, fmt.Errorf("setsync: duplicate entry fingerprint %016x (kind %d) — artifact is not a canonical set", e.FP, e.Kind)
		}
		seen[e.FP] = true
	}
	return entries, nil
}

// Reassemble rebuilds a snapshot from an entry set, restoring the
// canonical section orderings the artifact format requires. Exactly
// one of each head entry (meta, model, top-k) must be present. The
// result passes the snapshot's own validation; callers then verify the
// content fingerprint against the expected artifact identity.
func Reassemble(entries []Entry) (*snapshot.Snapshot, error) {
	s := &snapshot.Snapshot{Cands: []snapshot.UserCandidates{}}
	var metaN, modelN, topkN int
	for _, e := range entries {
		switch e.Kind {
		case kindMeta:
			metaN++
			if err := gob.NewDecoder(bytes.NewReader(e.Body)).Decode(&s.Meta); err != nil {
				return nil, fmt.Errorf("setsync: decode meta entry: %w", err)
			}
		case kindModel:
			modelN++
			if err := gob.NewDecoder(bytes.NewReader(e.Body)).Decode(&s.Model); err != nil {
				return nil, fmt.Errorf("setsync: decode model entry: %w", err)
			}
		case kindTopK:
			topkN++
			d := framing.NewDec(e.Body)
			s.TopK = d.Int()
			if err := d.Done(); err != nil {
				return nil, fmt.Errorf("setsync: decode top-k entry: %w", err)
			}
		case kindMatch:
			m, err := decMatch(e.Body)
			if err != nil {
				return nil, fmt.Errorf("setsync: decode match entry: %w", err)
			}
			s.Matches = append(s.Matches, m)
		case kindCand:
			uc, err := decCand(e.Body)
			if err != nil {
				return nil, fmt.Errorf("setsync: decode candidate entry: %w", err)
			}
			s.Cands = append(s.Cands, uc)
		case kindPool:
			p, err := decPool(e.Body)
			if err != nil {
				return nil, fmt.Errorf("setsync: decode pool entry: %w", err)
			}
			s.Pool = append(s.Pool, p)
		case kindLabel:
			l, err := decLabel(e.Body)
			if err != nil {
				return nil, fmt.Errorf("setsync: decode label entry: %w", err)
			}
			s.Labels = append(s.Labels, l)
		default:
			return nil, fmt.Errorf("setsync: unknown entry kind %d", e.Kind)
		}
	}
	if metaN != 1 || modelN != 1 || topkN != 1 {
		return nil, fmt.Errorf("setsync: entry set has %d meta / %d model / %d top-k head entries, want exactly 1 each", metaN, modelN, topkN)
	}
	sort.Slice(s.Matches, func(a, b int) bool { return s.Matches[a].I < s.Matches[b].I })
	sort.Slice(s.Pool, func(a, b int) bool {
		if s.Pool[a].I != s.Pool[b].I {
			return s.Pool[a].I < s.Pool[b].I
		}
		return s.Pool[a].J < s.Pool[b].J
	})
	sort.Slice(s.Labels, func(a, b int) bool {
		if s.Labels[a].I != s.Labels[b].I {
			return s.Labels[a].I < s.Labels[b].I
		}
		return s.Labels[a].J < s.Labels[b].J
	})
	sort.Slice(s.Cands, func(a, b int) bool {
		if s.Cands[a].Net != s.Cands[b].Net {
			return s.Cands[a].Net < s.Cands[b].Net
		}
		return s.Cands[a].User < s.Cands[b].User
	})
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("setsync: reassembled snapshot invalid: %w", err)
	}
	return s, nil
}
