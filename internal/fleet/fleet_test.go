package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/serve"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// randomSnapshot builds an arbitrary-but-valid whole alignment: random
// pool degrees, scores quantized to eighths so cross-shard ties are
// common (the merge order must win on the index tie-break, not luck),
// matches and labels drawn from the pool.
func randomSnapshot(t testing.TB, rng *rand.Rand, n1, n2, topK int) *snapshot.Snapshot {
	t.Helper()
	build := func(name string, n int) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < n; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		return g
	}
	pair := hetnet.NewAlignedPair(build("left", n1), build("right", n2))
	var pool []snapshot.PoolLink
	seen := map[[2]int32]bool{}
	for i := 0; i < n1; i++ {
		deg := 1 + rng.Intn(6)
		for d := 0; d < deg; d++ {
			j := int32(rng.Intn(n2))
			if seen[[2]int32{int32(i), j}] {
				continue
			}
			seen[[2]int32{int32(i), j}] = true
			link := snapshot.PoolLink{
				I:        int32(i),
				J:        j,
				Label:    float64(rng.Intn(2)),
				Score:    float64(rng.Intn(8)) / 8,
				HasScore: rng.Intn(10) > 0, // a few scoreless links
			}
			pool = append(pool, link)
		}
	}
	var matches []snapshot.Match
	var labels []snapshot.QueriedLabel
	for _, p := range pool {
		if len(matches) == 0 || matches[len(matches)-1].I != p.I {
			if rng.Intn(10) < 7 {
				matches = append(matches, snapshot.Match{I: p.I, J: p.J, Score: p.Score, HasScore: p.HasScore})
			}
		}
		if rng.Intn(12) == 0 {
			labels = append(labels, snapshot.QueriedLabel{I: p.I, J: p.J, Label: p.Label})
		}
	}
	meta := snapshot.Meta{
		CreatedUnix: 1700000000,
		Facade:      "fleet-prop",
		Notation:    []string{"f0", "f1", "bias"},
		Threshold:   0.5,
	}
	model := snapshot.Model{W: []float64{0.5, -0.25, 0.125}}
	s, err := snapshot.Build(pair, meta, model, pool, matches, labels, topK)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomRanges tiles [0, n1) with 1–4 random cut points.
func randomRanges(rng *rand.Rand, n1 int) []snapshot.UserRange {
	parts := 1 + rng.Intn(4)
	if parts > n1 {
		parts = n1
	}
	cutSet := map[int32]bool{}
	for len(cutSet) < parts-1 {
		cutSet[int32(1+rng.Intn(n1-1))] = true
	}
	cuts := make([]int32, 0, parts+1)
	cuts = append(cuts, 0)
	for c := range cutSet {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, int32(n1))
	sort.Slice(cuts, func(a, b int) bool { return cuts[a] < cuts[b] })
	var out []snapshot.UserRange
	for i := 0; i+1 < len(cuts); i++ {
		out = append(out, snapshot.UserRange{Lo: cuts[i], Hi: cuts[i+1]})
	}
	return out
}

// backendServer serves one artifact the way cmd/alignd does, with
// reload wired to an on-disk path so rollout tests work end to end.
func backendServer(t testing.TB, s *snapshot.Snapshot, dir string, name string) *httptest.Server {
	t.Helper()
	path := filepath.Join(dir, name+".snap")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	st := &serve.Store{}
	ix, err := serve.NewIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	st.Swap(ix)
	h := serve.NewHandler(st, serve.NewMetrics(), serve.HandlerOptions{
		SnapshotPath: path,
		Load:         snapshot.OpenFile,
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// newFleet splits parent by ranges, serves every shard, and fronts
// them with a started router. Returns the router server and the
// router itself.
func newFleet(t testing.TB, parent *snapshot.Snapshot, ranges []snapshot.UserRange, opts Options) (*httptest.Server, *Router) {
	t.Helper()
	shards, err := snapshot.Split(parent, ranges)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var urls []string
	for i, sh := range shards {
		srv := backendServer(t, sh, dir, fmt.Sprintf("shard%d", i))
		urls = append(urls, srv.URL)
	}
	rt, err := NewRouter(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh()
	srv := httptest.NewServer(rt)
	t.Cleanup(func() { rt.Stop(); srv.Close() })
	return srv, rt
}

// response captures everything bit-identity compares.
type response struct {
	status      int
	contentType string
	body        []byte
}

func do(t testing.TB, base, method, pathAndQuery string, body string) response {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, base+pathAndQuery, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return response{status: resp.StatusCode, contentType: resp.Header.Get("Content-Type"), body: raw}
}

// TestRouterBitIdentical is the fleet acceptance property: for random
// alignments and random range splits, every request answered through
// the router is byte-identical — status, Content-Type and body — to a
// monolithic alignd holding the whole artifact, across /v1/match,
// /v1/candidates (including cross-range net-2 reverse lookups and the
// malformed-k error paths), /v1/score and /v1/resolve.
func TestRouterBitIdentical(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(7907 + trial*131)))
			n1, n2 := 12+rng.Intn(20), 10+rng.Intn(20)
			parent := randomSnapshot(t, rng, n1, n2, 4)
			ranges := randomRanges(rng, n1)

			mono := backendServer(t, parent, t.TempDir(), "mono")
			fleetSrv, _ := newFleet(t, parent, ranges, Options{})

			if r := do(t, fleetSrv.URL, http.MethodGet, "/readyz", ""); r.status != http.StatusOK {
				t.Fatalf("router not ready over %d ranges: %d %s", len(ranges), r.status, r.body)
			}

			var reqs []struct{ method, path, body string }
			addGet := func(path string) {
				reqs = append(reqs, struct{ method, path, body string }{http.MethodGet, path, ""})
			}
			addPost := func(path, body string) {
				reqs = append(reqs, struct{ method, path, body string }{http.MethodPost, path, body})
			}
			// Every user on both nets, by token and by numeric index:
			// match, candidates at several depths, resolve. The net-2
			// side is the cross-range reverse-lookup path.
			for i := 0; i < n1; i++ {
				addGet(fmt.Sprintf("/v1/match/1/left-u%d", i))
				addGet(fmt.Sprintf("/v1/candidates/1/%d", i))
				addGet(fmt.Sprintf("/v1/candidates/1/left-u%d?k=2", i))
				addGet(fmt.Sprintf("/v1/resolve/1/left-u%d", i))
			}
			for j := 0; j < n2; j++ {
				addGet(fmt.Sprintf("/v1/match/2/right-u%d", j))
				addGet(fmt.Sprintf("/v1/candidates/2/%d", j))
				addGet(fmt.Sprintf("/v1/candidates/2/right-u%d?k=1", j))
				addGet(fmt.Sprintf("/v1/candidates/2/right-u%d?k=100", j))
				addGet(fmt.Sprintf("/v1/resolve/2/right-u%d", j))
			}
			// Error shapes must match bytewise too.
			addGet("/v1/match/1/ghost")
			addGet("/v1/match/2/ghost")
			addGet("/v1/match/9/left-u0")
			addGet("/v1/match/1")
			addGet("/v1/candidates/1/left-u0?k=-1")
			addGet("/v1/candidates/2/right-u0?k=abc")
			addGet("/v1/resolve/1/nope")
			// Score: pool hits across every range, misses, out-of-range
			// indices, rescores, malformed bodies.
			for _, p := range parent.Pool {
				if rng.Intn(4) == 0 {
					addPost("/v1/score", fmt.Sprintf(`{"i":%d,"j":%d}`, p.I, p.J))
				}
			}
			addPost("/v1/score", fmt.Sprintf(`{"i":0,"j":%d}`, n2+5))
			addPost("/v1/score", fmt.Sprintf(`{"i":%d,"j":0}`, n1+5))
			addPost("/v1/score", `{"i":-3,"j":0}`)
			addPost("/v1/score", `{"features":[1,0,0]}`)
			addPost("/v1/score", `{"features":[1,0]}`)
			addPost("/v1/score", `{"i":1}`)
			addPost("/v1/score", `not json`)

			for _, rq := range reqs {
				want := do(t, mono.URL, rq.method, rq.path, rq.body)
				got := do(t, fleetSrv.URL, rq.method, rq.path, rq.body)
				if got.status != want.status || got.contentType != want.contentType || !bytes.Equal(got.body, want.body) {
					t.Errorf("%s %s (body %q):\n router: %d %s %s\n mono:   %d %s %s",
						rq.method, rq.path, rq.body, got.status, got.contentType, got.body, want.status, want.contentType, want.body)
				}
			}
		})
	}
}

// TestRouterFailover: with two replicas of the full range and one of
// them dead, the router retries onto the live replica and still
// answers correctly.
func TestRouterFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parent := randomSnapshot(t, rng, 10, 10, 4)
	dir := t.TempDir()
	live := backendServer(t, parent, dir, "live")
	dead := backendServer(t, parent, dir, "dead")

	rt, err := NewRouter([]string{dead.URL, live.URL}, Options{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh()
	dead.Close() // dies after discovery: the router still believes in it
	srv := httptest.NewServer(rt)
	defer srv.Close()

	r := do(t, srv.URL, http.MethodGet, "/v1/match/1/left-u0", "")
	mono := do(t, live.URL, http.MethodGet, "/v1/match/1/left-u0", "")
	if r.status != mono.status || !bytes.Equal(r.body, mono.body) {
		t.Errorf("failover answer diverged: %d %s vs %d %s", r.status, r.body, mono.status, mono.body)
	}
}

// TestRouterHedgedRead: a slow primary plus a fast replica and a tiny
// hedge delay answer well before the slow replica would.
func TestRouterHedgedRead(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	parent := randomSnapshot(t, rng, 10, 10, 4)
	dir := t.TempDir()
	fast := backendServer(t, parent, dir, "fast")

	ix, err := serve.NewIndex(parent)
	if err != nil {
		t.Fatal(err)
	}
	st := &serve.Store{}
	st.Swap(ix)
	inner := serve.NewHandler(st, serve.NewMetrics(), serve.HandlerOptions{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/match/1/left-u0" {
			time.Sleep(2 * time.Second)
		}
		inner.ServeHTTP(w, r)
	}))
	defer slow.Close()

	rt, err := NewRouter([]string{slow.URL, fast.URL}, Options{HedgeAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh()
	srv := httptest.NewServer(rt)
	defer srv.Close()

	start := time.Now()
	r := do(t, srv.URL, http.MethodGet, "/v1/match/1/left-u0", "")
	if r.status != http.StatusOK {
		t.Fatalf("hedged read failed: %d %s", r.status, r.body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedged read took %v; the hedge should have won long before the slow primary", elapsed)
	}
}

// TestRouterRollout: POST /v1/reload on the router rolls every backend
// to the next generation, one at a time, and reports them all.
func TestRouterRollout(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	parent := randomSnapshot(t, rng, 12, 12, 4)
	ranges := []snapshot.UserRange{{Lo: 0, Hi: 6}, {Lo: 6, Hi: 12}}
	fleetSrv, rt := newFleet(t, parent, ranges, Options{})

	r := do(t, fleetSrv.URL, http.MethodPost, "/v1/reload", "{}")
	if r.status != http.StatusOK {
		t.Fatalf("rollout = %d %s", r.status, r.body)
	}
	var resp rolloutResponse
	if err := json.Unmarshal(r.body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Reloaded) != 2 || len(resp.Failed) != 0 {
		t.Errorf("rollout = %+v", resp)
	}
	for _, b := range rt.backends {
		if _, gen, _, _, _, _ := b.snapshotState(); gen != 2 {
			t.Errorf("backend %s at generation %d after rollout, want 2", b.URL, gen)
		}
	}

	// A match through the router now reports the new generation.
	var match struct {
		Generation uint64 `json:"generation"`
	}
	mr := do(t, fleetSrv.URL, http.MethodGet, "/v1/match/2/right-u3", "")
	if mr.status == http.StatusOK {
		if err := json.Unmarshal(mr.body, &match); err != nil {
			t.Fatal(err)
		}
		if match.Generation != 2 {
			t.Errorf("post-rollout generation = %d, want 2", match.Generation)
		}
	}
}

// TestRouterStatusz sanity-checks the router's own status page: ready,
// the discovered ranges in order, every backend listed.
func TestRouterStatusz(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	parent := randomSnapshot(t, rng, 12, 12, 4)
	ranges := []snapshot.UserRange{{Lo: 0, Hi: 4}, {Lo: 4, Hi: 12}}
	fleetSrv, _ := newFleet(t, parent, ranges, Options{})

	r := do(t, fleetSrv.URL, http.MethodGet, "/statusz", "")
	if r.status != http.StatusOK {
		t.Fatalf("statusz = %d", r.status)
	}
	var st routerStatus
	if err := json.Unmarshal(r.body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Users1 != 12 || len(st.Ranges) != 2 || len(st.Backends) != 2 {
		t.Errorf("statusz = %+v", st)
	}
	if st.Ranges[0].Lo != 0 || st.Ranges[0].Hi != 4 || st.Ranges[1].Lo != 4 || st.Ranges[1].Hi != 12 {
		t.Errorf("ranges out of order: %+v", st.Ranges)
	}

	m := do(t, fleetSrv.URL, http.MethodGet, "/metricsz", "")
	if m.status != http.StatusOK || !bytes.Contains(m.body, []byte("activeiter_serve_requests_total")) {
		t.Errorf("metricsz = %d %.120s", m.status, m.body)
	}
}

// TestRouterNotReadyWithGap: a router whose discovered ranges do not
// tile the user space reports not-ready rather than serving holes.
func TestRouterNotReadyWithGap(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	parent := randomSnapshot(t, rng, 12, 12, 4)
	shards, err := snapshot.Split(parent, []snapshot.UserRange{{Lo: 0, Hi: 6}, {Lo: 6, Hi: 12}})
	if err != nil {
		t.Fatal(err)
	}
	// Only shard 0 gets a server: range [6,12) is dark.
	srv0 := backendServer(t, shards[0], t.TempDir(), "s0")
	rt, err := NewRouter([]string{srv0.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh()
	srv := httptest.NewServer(rt)
	defer srv.Close()
	if r := do(t, srv.URL, http.MethodGet, "/readyz", ""); r.status != http.StatusServiceUnavailable {
		t.Errorf("readyz with a dark range = %d, want 503", r.status)
	}
}

// TestRouterFanoutPartialFailureIs502: when a range's every backend is
// unreachable, merged net-2 reads must refuse rather than answer from
// the surviving shards — the dark range could own the match, and its
// candidates would silently vanish from a merged list.
func TestRouterFanoutPartialFailureIs502(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	parent := randomSnapshot(t, rng, 12, 12, 4)
	shards, err := snapshot.Split(parent, []snapshot.UserRange{{Lo: 0, Hi: 6}, {Lo: 6, Hi: 12}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srv0 := backendServer(t, shards[0], dir, "s0")
	srv1 := backendServer(t, shards[1], dir, "s1")
	rt, err := NewRouter([]string{srv0.URL, srv1.URL}, Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh()
	srv1.Close() // range [6,12) goes dark AFTER discovery
	routerSrv := httptest.NewServer(rt)
	defer routerSrv.Close()

	for _, path := range []string{"/v1/match/2/right-u0", "/v1/candidates/2/right-u0"} {
		if r := do(t, routerSrv.URL, http.MethodGet, path, ""); r.status != http.StatusBadGateway {
			t.Errorf("%s with a dark range = %d %s, want 502", path, r.status, r.body)
		}
	}
}

// TestRouterProbeInvalidatesResolveCache: a backend reloaded behind the
// router's back (SIGHUP, direct POST /v1/reload) may renumber users;
// the probe loop must drop the token→index cache when it observes the
// generation change, or stale indices owner-route to the wrong shard.
func TestRouterProbeInvalidatesResolveCache(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	parent := randomSnapshot(t, rng, 12, 12, 4)
	shards, err := snapshot.Split(parent, []snapshot.UserRange{{Lo: 0, Hi: 6}, {Lo: 6, Hi: 12}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srv0 := backendServer(t, shards[0], dir, "s0")
	srv1 := backendServer(t, shards[1], dir, "s1")
	rt, err := NewRouter([]string{srv0.URL, srv1.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh()
	routerSrv := httptest.NewServer(rt)
	defer routerSrv.Close()

	if r := do(t, routerSrv.URL, http.MethodGet, "/v1/match/1/left-u0", ""); r.status >= 500 {
		t.Fatalf("seed lookup = %d %s", r.status, r.body)
	}
	rt.resolveMu.Lock()
	populated := len(rt.resolveCache)
	rt.resolveMu.Unlock()
	if populated == 0 {
		t.Fatal("net-1 token lookup did not populate the resolve cache")
	}

	// Out-of-band reload: straight at the backend, not via the router.
	if r := do(t, srv0.URL, http.MethodPost, "/v1/reload", "{}"); r.status != http.StatusOK {
		t.Fatalf("direct backend reload = %d %s", r.status, r.body)
	}
	rt.Refresh()
	rt.resolveMu.Lock()
	left := len(rt.resolveCache)
	rt.resolveMu.Unlock()
	if left != 0 {
		t.Errorf("resolve cache holds %d entries after an out-of-band backend reload, want 0", left)
	}

	// A steady-state probe (no generation change) must NOT thrash it.
	if r := do(t, routerSrv.URL, http.MethodGet, "/v1/match/1/left-u0", ""); r.status >= 500 {
		t.Fatalf("post-reload lookup = %d %s", r.status, r.body)
	}
	rt.Refresh()
	rt.resolveMu.Lock()
	kept := len(rt.resolveCache)
	rt.resolveMu.Unlock()
	if kept == 0 {
		t.Error("steady-state probe cleared the resolve cache with no generation change")
	}
}

// TestRouterFanoutTopKDisagreementIs502: mid-rollout, shards can hold
// artifacts with different stored top-k depths; a merged candidate
// list capped by a depth no single backend serves is not monolithic,
// so the router must refuse instead.
func TestRouterFanoutTopKDisagreementIs502(t *testing.T) {
	parentDeep := randomSnapshot(t, rand.New(rand.NewSource(49)), 12, 12, 4)
	parentShallow := randomSnapshot(t, rand.New(rand.NewSource(49)), 12, 12, 2)
	ranges := []snapshot.UserRange{{Lo: 0, Hi: 6}, {Lo: 6, Hi: 12}}
	deep, err := snapshot.Split(parentDeep, ranges)
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := snapshot.Split(parentShallow, ranges)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srv0 := backendServer(t, shallow[0], dir, "s0") // top-k 2
	srv1 := backendServer(t, deep[1], dir, "s1")    // top-k 4
	rt, err := NewRouter([]string{srv0.URL, srv1.URL}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh()
	routerSrv := httptest.NewServer(rt)
	defer routerSrv.Close()

	if r := do(t, routerSrv.URL, http.MethodGet, "/v1/candidates/2/right-u0", ""); r.status != http.StatusBadGateway {
		t.Errorf("mixed top-k fan-out = %d %s, want 502", r.status, r.body)
	}
}

var _ = os.Getenv // keep os imported for future fixtures

// Scheme-less -backends entries (host:port) are how operators name a
// local fleet; the router must default them to http:// rather than
// letting url parsing read the port as a path segment.
func TestNewRouterSchemelessBackends(t *testing.T) {
	r, err := NewRouter([]string{"127.0.0.1:7601", "http://127.0.0.1:7602/", " 127.0.0.1:7603 "}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://127.0.0.1:7601", "http://127.0.0.1:7602", "http://127.0.0.1:7603"}
	for i, b := range r.backends {
		if b.URL != want[i] {
			t.Errorf("backend %d URL = %q, want %q", i, b.URL, want[i])
		}
	}
}
