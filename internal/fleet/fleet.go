// Package fleet is the alignr routing tier: one process that fronts a
// fleet of alignd replicas, each serving one user-range shard of a
// split snapshot (internal/snapshot.Split), and presents the exact
// monolithic serving surface to clients. The contract is
// bit-identity: any request answered through the router returns the
// same status, headers and body bytes a single alignd holding the
// whole artifact would return — owner-routed requests are proxied
// verbatim, fan-out merges reconstruct the monolithic answer exactly
// (the global top-k is a subset of the union of per-shard top-k lists
// at equal k, under the same score-desc/index-asc order), and error
// paths are delegated to a real backend so even error bodies stay
// canonical.
//
// The router is configured with backend URLs only. The range table is
// DISCOVERED from each backend's /statusz shard block (a backend with
// no shard block owns the full range), so resharding is a redeploy of
// alignd processes, not a router config change. Per-request resilience
// follows the distrib tier's discipline: bounded retries with
// capped-jitter backoff across same-range replicas, optional hedged
// reads, and health-gated candidate selection fed by a /readyz probe
// loop.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/activeiter/activeiter/internal/serve"
	"github.com/activeiter/activeiter/internal/telemetry"
)

// Options configure a Router.
type Options struct {
	// Timeout bounds each backend request (default 5s).
	Timeout time.Duration
	// Retries is the attempt budget per proxied request across a
	// range's replicas (default 3).
	Retries int
	// HedgeAfter, when > 0, launches a second attempt against another
	// replica of the same range if the first has not answered within
	// this delay; the first response wins.
	HedgeAfter time.Duration
	// HealthInterval is the /readyz probe + /statusz rediscovery
	// period (default 2s). Probing starts with Start.
	HealthInterval time.Duration
	// Metrics receives per-endpoint counters; nil creates a registry.
	Metrics *serve.Metrics
	// Registry receives router counters (retries, hedges, fan-outs);
	// nil uses telemetry.Default.
	Registry *telemetry.Registry
}

const (
	defaultTimeout        = 5 * time.Second
	defaultRetries        = 3
	defaultHealthInterval = 2 * time.Second
	retryBackoffBase      = 25 * time.Millisecond
	retryBackoffCap       = 2 * time.Second
	// resolveCacheMax bounds the token→index cache; eviction is whole-
	// sale (the cache exists to absorb hot keys, not to be complete).
	resolveCacheMax = 1 << 16
)

// shardStat mirrors the statusz shard block alignd exposes.
type shardStat struct {
	Lo       int32  `json:"lo"`
	Hi       int32  `json:"hi"`
	Index    int    `json:"index"`
	Count    int    `json:"count"`
	Epoch    int64  `json:"epoch"`
	ParentFP string `json:"parent_fp"`
}

// backendStatus is the slice of alignd's statusz the router reads.
type backendStatus struct {
	Generation uint64 `json:"generation"`
	Snapshot   *struct {
		Users1 int        `json:"users1"`
		TopK   int        `json:"top_k"`
		Shard  *shardStat `json:"shard"`
	} `json:"snapshot"`
}

// Backend is one alignd replica the router fronts.
type Backend struct {
	URL string

	mu         sync.Mutex
	seen       bool // probed successfully at least once
	ready      bool
	lastErr    string
	generation uint64
	users1     int
	topK       int
	shard      *shardStat // nil: serves the full range
}

func (b *Backend) snapshotState() (ready bool, gen uint64, users1, topK int, shard *shardStat, lastErr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ready, b.generation, b.users1, b.topK, b.shard, b.lastErr
}

// ownedRange returns the net-1 user range the backend owns.
func (b *Backend) ownedRange() (lo, hi int32, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.shard != nil {
		return b.shard.Lo, b.shard.Hi, true
	}
	if b.users1 > 0 {
		return 0, int32(b.users1), true
	}
	return 0, 0, false
}

// Router is the alignr HTTP handler.
type Router struct {
	backends []*Backend
	client   *http.Client
	opts     Options
	metrics  *serve.Metrics

	rngMu sync.Mutex
	rng   *rand.Rand

	resolveMu    sync.Mutex
	resolveCache map[string]int32

	stopOnce sync.Once
	stop     chan struct{}

	cRetry, cHedge, cFanout, cRollout *telemetry.Counter
}

// NewRouter builds a router over the backend base URLs. A bare
// host:port gets an http:// scheme; a trailing slash is trimmed. Call
// Refresh (or Start) before serving so the range table exists.
func NewRouter(backendURLs []string, opts Options) (*Router, error) {
	if len(backendURLs) == 0 {
		return nil, fmt.Errorf("fleet: no backends")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = defaultTimeout
	}
	if opts.Retries <= 0 {
		opts.Retries = defaultRetries
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = defaultHealthInterval
	}
	if opts.Metrics == nil {
		opts.Metrics = serve.NewMetrics()
	}
	if opts.Registry == nil {
		// Share the Metrics registry so the fleet counters ride the
		// same /metricsz exposition as the per-endpoint stats.
		opts.Registry = opts.Metrics.Registry()
	}
	r := &Router{
		client:       &http.Client{Timeout: opts.Timeout},
		opts:         opts,
		metrics:      opts.Metrics,
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
		resolveCache: make(map[string]int32),
		stop:         make(chan struct{}),
		cRetry:       opts.Registry.Counter("fleet_retries_total", "proxy attempts beyond the first"),
		cHedge:       opts.Registry.Counter("fleet_hedges_total", "hedged second requests launched"),
		cFanout:      opts.Registry.Counter("fleet_fanout_total", "reverse-direction fan-out requests"),
		cRollout:     opts.Registry.Counter("fleet_rollouts_total", "rolling reloads executed"),
	}
	for _, u := range backendURLs {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("fleet: empty backend URL")
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		r.backends = append(r.backends, &Backend{URL: u})
	}
	return r, nil
}

// Metrics exposes the per-endpoint registry.
func (rt *Router) Metrics() *serve.Metrics { return rt.metrics }

// Start launches the health/discovery loop; Stop ends it.
func (rt *Router) Start() {
	go func() {
		t := time.NewTicker(rt.opts.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-t.C:
				rt.Refresh()
			}
		}
	}()
}

// Stop ends the health loop.
func (rt *Router) Stop() { rt.stopOnce.Do(func() { close(rt.stop) }) }

// Refresh probes every backend's /readyz and /statusz once,
// concurrently, updating health and the discovered range table.
func (rt *Router) Refresh() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			rt.probe(b)
		}(b)
	}
	wg.Wait()
}

func (rt *Router) probe(b *Backend) {
	setErr := func(err error) {
		b.mu.Lock()
		b.ready = false
		b.lastErr = err.Error()
		b.mu.Unlock()
	}
	resp, err := rt.client.Get(b.URL + "/readyz")
	if err != nil {
		setErr(err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		setErr(fmt.Errorf("readyz answered %d", resp.StatusCode))
		return
	}
	resp, err = rt.client.Get(b.URL + "/statusz")
	if err != nil {
		setErr(err)
		return
	}
	var st backendStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		setErr(fmt.Errorf("statusz: %w", err))
		return
	}
	if st.Snapshot == nil {
		setErr(fmt.Errorf("statusz has no snapshot block"))
		return
	}
	b.mu.Lock()
	reloaded := b.seen && (b.generation != st.Generation || !sameShard(b.shard, st.Snapshot.Shard))
	b.seen = true
	b.ready = true
	b.lastErr = ""
	b.generation = st.Generation
	b.users1 = st.Snapshot.Users1
	b.topK = st.Snapshot.TopK
	b.shard = st.Snapshot.Shard
	b.mu.Unlock()
	if reloaded {
		// The backend swapped artifacts behind the router's back (SIGHUP,
		// direct POST /v1/reload): a new artifact may renumber users, and
		// a stale token→index entry would owner-route net-1 lookups to the
		// wrong shard with no error. The router's own rollout clears the
		// cache too; this catches every out-of-band path the probe can see.
		rt.clearResolveCache()
	}
}

// sameShard reports whether two statusz shard blocks describe the same
// slice of the same parent artifact.
func sameShard(a, b *shardStat) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Lo == b.Lo && a.Hi == b.Hi && a.Epoch == b.Epoch && a.ParentFP == b.ParentFP
}

// tableEntry is one discovered range and the backends owning it.
type tableEntry struct {
	lo, hi   int32
	backends []*Backend
}

// table assembles the current range table from ready backends, plus
// whether it tiles [0, users1) completely (the readiness condition).
func (rt *Router) table() (entries []tableEntry, users1 int, complete bool) {
	byRange := map[[2]int32][]*Backend{}
	for _, b := range rt.backends {
		ready, _, u1, _, _, _ := b.snapshotState()
		if !ready {
			continue
		}
		lo, hi, ok := b.ownedRange()
		if !ok {
			continue
		}
		byRange[[2]int32{lo, hi}] = append(byRange[[2]int32{lo, hi}], b)
		if u1 > users1 {
			users1 = u1
		}
	}
	for k, bs := range byRange {
		entries = append(entries, tableEntry{lo: k[0], hi: k[1], backends: bs})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].lo != entries[b].lo {
			return entries[a].lo < entries[b].lo
		}
		return entries[a].hi < entries[b].hi
	})
	if users1 == 0 || len(entries) == 0 {
		return entries, users1, false
	}
	want := int32(0)
	for _, e := range entries {
		if e.lo != want {
			return entries, users1, false
		}
		want = e.hi
	}
	return entries, users1, want == int32(users1)
}

// ownersOf returns the ready backends owning net-1 index i.
func (rt *Router) ownersOf(i int32) []*Backend {
	entries, _, _ := rt.table()
	for _, e := range entries {
		if i >= e.lo && i < e.hi {
			return e.backends
		}
	}
	return nil
}

// readyBackends returns every ready backend (for any-backend routing
// and fan-out), in configured order.
func (rt *Router) readyBackends() []*Backend {
	var out []*Backend
	for _, b := range rt.backends {
		if ready, _, _, _, _, _ := b.snapshotState(); ready {
			out = append(out, b)
		}
	}
	return out
}

func (rt *Router) backoff(attempt int) time.Duration {
	rt.rngMu.Lock()
	f := rt.rng.Float64()
	rt.rngMu.Unlock()
	d := retryBackoffBase << uint(attempt-1)
	if d > retryBackoffCap || d <= 0 {
		d = retryBackoffCap
	}
	return time.Duration(float64(d) * (0.5 + f))
}

// proxied is a captured backend response, replayable verbatim.
type proxied struct {
	status      int
	contentType string
	body        []byte
}

func (p *proxied) write(w http.ResponseWriter) error {
	if p.contentType != "" {
		w.Header().Set("Content-Type", p.contentType)
	}
	w.WriteHeader(p.status)
	w.Write(p.body)
	if p.status >= 500 {
		// Counted as a router error in metrics, but the response is
		// already on the wire — ServeHTTP must not write a second body.
		return errAlreadyWritten{status: p.status}
	}
	return nil
}

// errAlreadyWritten marks a failure whose response bytes have already
// been sent (a proxied 5xx): metrics should count it, the handler must
// not write again.
type errAlreadyWritten struct{ status int }

func (e errAlreadyWritten) Error() string { return fmt.Sprintf("backend answered %d", e.status) }

// fetch performs one backend request and captures the response.
func (rt *Router) fetch(b *Backend, method, pathAndQuery string, body []byte) (*proxied, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, b.URL+pathAndQuery, rdr)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxied{status: resp.StatusCode, contentType: resp.Header.Get("Content-Type"), body: raw}, nil
}

// retryable reports whether another replica may answer differently: a
// transport failure or a 5xx that signals replica (not request)
// trouble.
func retryable(p *proxied, err error) bool {
	if err != nil {
		return true
	}
	return p.status == http.StatusBadGateway || p.status == http.StatusServiceUnavailable
}

// tryBackends proxies the request across candidates with retries,
// capped-jitter backoff and (when configured and possible) a hedged
// second attempt. The first acceptable response wins; the last
// response of any kind is returned when every attempt fails. The
// second return value names the backend whose response was used.
func (rt *Router) tryBackends(cands []*Backend, method, pathAndQuery string, body []byte) (*proxied, *Backend, error) {
	if len(cands) == 0 {
		return nil, nil, errf(http.StatusServiceUnavailable, "no ready backend for %s", pathAndQuery)
	}
	var last *proxied
	var lastFrom *Backend
	var lastErr error
	for attempt := 1; attempt <= rt.opts.Retries; attempt++ {
		b := cands[(attempt-1)%len(cands)]
		p, from, err := rt.fetchHedged(b, cands, method, pathAndQuery, body)
		if !retryable(p, err) {
			return p, from, nil
		}
		last, lastFrom, lastErr = p, from, err
		if attempt < rt.opts.Retries {
			rt.cRetry.Inc()
			time.Sleep(rt.backoff(attempt))
		}
	}
	if last != nil {
		return last, lastFrom, nil
	}
	return nil, nil, errf(http.StatusBadGateway, "every backend failed for %s: %v", pathAndQuery, lastErr)
}

// fetchHedged races the primary against one delayed hedge on another
// replica when hedging is configured.
func (rt *Router) fetchHedged(primary *Backend, cands []*Backend, method, pathAndQuery string, body []byte) (*proxied, *Backend, error) {
	if rt.opts.HedgeAfter <= 0 || len(cands) < 2 {
		p, err := rt.fetch(primary, method, pathAndQuery, body)
		return p, primary, err
	}
	type result struct {
		p    *proxied
		from *Backend
		err  error
	}
	ch := make(chan result, 2)
	go func() {
		p, err := rt.fetch(primary, method, pathAndQuery, body)
		ch <- result{p, primary, err}
	}()
	timer := time.NewTimer(rt.opts.HedgeAfter)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.p, r.from, r.err
	case <-timer.C:
	}
	var hedge *Backend
	for _, b := range cands {
		if b != primary {
			hedge = b
			break
		}
	}
	rt.cHedge.Inc()
	go func() {
		p, err := rt.fetch(hedge, method, pathAndQuery, body)
		ch <- result{p, hedge, err}
	}()
	// First non-retryable answer wins; if the first arrival is bad,
	// wait for the other.
	r := <-ch
	if !retryable(r.p, r.err) {
		return r.p, r.from, r.err
	}
	r2 := <-ch
	if !retryable(r2.p, r2.err) {
		return r2.p, r2.from, r2.err
	}
	return r.p, r.from, r.err
}

// errf mirrors the alignd error shape so router-origin errors read
// like backend ones.
func errf(status int, format string, args ...any) *routeError {
	return &routeError{status: status, msg: fmt.Sprintf(format, args...)}
}

type routeError struct {
	status int
	msg    string
}

func (e *routeError) Error() string { return e.msg }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	endpoint, err := rt.route(w, r)
	if err != nil {
		if _, written := err.(errAlreadyWritten); !written {
			re, ok := err.(*routeError)
			if !ok {
				re = errf(http.StatusInternalServerError, "%v", err)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(re.status)
			json.NewEncoder(w).Encode(map[string]string{"error": re.msg})
		}
	}
	rt.metrics.Observe(endpoint, time.Since(start), err != nil)
}

func (rt *Router) route(w http.ResponseWriter, r *http.Request) (string, error) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return "healthz", nil
	case path == "/readyz":
		return "readyz", rt.handleReady(w)
	case path == "/statusz":
		return "statusz", rt.handleStatus(w)
	case path == "/metricsz":
		w.Header().Set("Content-Type", telemetry.PromContentType)
		return "metricsz", rt.metrics.WriteProm(w)
	case path == "/v1/rollout" || path == "/v1/reload":
		return "rollout", rt.handleRollout(w, r)
	case path == "/v1/score":
		return "score", rt.handleScore(w, r)
	case strings.HasPrefix(path, "/v1/match/"):
		return "match", rt.handleLookup(w, r, strings.TrimPrefix(path, "/v1/match/"), false)
	case strings.HasPrefix(path, "/v1/candidates/"):
		return "candidates", rt.handleLookup(w, r, strings.TrimPrefix(path, "/v1/candidates/"), true)
	case strings.HasPrefix(path, "/v1/resolve/"):
		return "resolve", rt.proxyAny(w, r, nil)
	default:
		return "unknown", errf(http.StatusNotFound, "no such endpoint %q", path)
	}
}

// handleReady: the router is ready when the discovered table tiles the
// whole net-1 user space with at least one ready backend per range.
func (rt *Router) handleReady(w http.ResponseWriter) error {
	entries, users1, complete := rt.table()
	if !complete {
		return errf(http.StatusServiceUnavailable, "range table incomplete: %d ranges over %d users", len(entries), users1)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
	return nil
}

// routerStatus is the alignr /statusz shape.
type routerStatus struct {
	Ready     bool                   `json:"ready"`
	Users1    int                    `json:"users1"`
	Ranges    []routerRange          `json:"ranges"`
	Backends  []routerBackend        `json:"backends"`
	Endpoints []serve.EndpointReport `json:"endpoints"`
}

type routerRange struct {
	Lo       int32    `json:"lo"`
	Hi       int32    `json:"hi"`
	Backends []string `json:"backends"`
}

type routerBackend struct {
	URL        string `json:"url"`
	Ready      bool   `json:"ready"`
	Error      string `json:"error,omitempty"`
	Generation uint64 `json:"generation"`
	Epoch      int64  `json:"epoch,omitempty"`
	Range      string `json:"range,omitempty"`
}

func (rt *Router) handleStatus(w http.ResponseWriter) error {
	entries, users1, complete := rt.table()
	st := routerStatus{Ready: complete, Users1: users1, Endpoints: rt.metrics.Report()}
	for _, e := range entries {
		rr := routerRange{Lo: e.lo, Hi: e.hi}
		for _, b := range e.backends {
			rr.Backends = append(rr.Backends, b.URL)
		}
		st.Ranges = append(st.Ranges, rr)
	}
	for _, b := range rt.backends {
		ready, gen, _, _, shard, lastErr := b.snapshotState()
		rb := routerBackend{URL: b.URL, Ready: ready, Error: lastErr, Generation: gen}
		if shard != nil {
			rb.Epoch = shard.Epoch
			rb.Range = fmt.Sprintf("[%d,%d)", shard.Lo, shard.Hi)
		}
		st.Backends = append(st.Backends, rb)
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(st)
}

// proxyAny sends the original request to any ready backend — the path
// for requests every backend answers identically (resolve, malformed
// inputs, full-table questions).
func (rt *Router) proxyAny(w http.ResponseWriter, r *http.Request, body []byte) error {
	if body == nil && r.Body != nil {
		body, _ = io.ReadAll(io.LimitReader(r.Body, 1<<20))
	}
	if r.Method == http.MethodGet {
		body = nil
	}
	p, _, err := rt.tryBackends(rt.readyBackends(), r.Method, r.URL.RequestURI(), body)
	if err != nil {
		return err
	}
	return p.write(w)
}

// resolveNet1 maps a net-1 user token to its index via a backend's
// /v1/resolve, through a bounded cache. The proxied error response is
// returned for non-200 outcomes so the caller can decide to replay the
// original request instead.
func (rt *Router) resolveNet1(token string) (int32, bool) {
	rt.resolveMu.Lock()
	idx, ok := rt.resolveCache[token]
	rt.resolveMu.Unlock()
	if ok {
		return idx, true
	}
	p, _, err := rt.tryBackends(rt.readyBackends(), http.MethodGet, "/v1/resolve/1/"+token, nil)
	if err != nil || p.status != http.StatusOK {
		return 0, false
	}
	var res struct {
		Index int32 `json:"index"`
	}
	if json.Unmarshal(p.body, &res) != nil {
		return 0, false
	}
	rt.resolveMu.Lock()
	if len(rt.resolveCache) >= resolveCacheMax {
		rt.resolveCache = make(map[string]int32)
	}
	rt.resolveCache[token] = res.Index
	rt.resolveMu.Unlock()
	return res.Index, true
}

// clearResolveCache drops the token cache (called after rollouts: a
// new artifact may renumber users).
func (rt *Router) clearResolveCache() {
	rt.resolveMu.Lock()
	rt.resolveCache = make(map[string]int32)
	rt.resolveMu.Unlock()
}

// handleLookup routes /v1/match and /v1/candidates. Net-1 requests are
// owner-routed and proxied verbatim; net-2 requests fan out (the
// owning shard is unknowable from the request). Anything that does not
// parse cleanly is replayed against any backend so the error body is
// the canonical alignd one.
func (rt *Router) handleLookup(w http.ResponseWriter, r *http.Request, tail string, candidates bool) error {
	parts := strings.SplitN(tail, "/", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return rt.proxyAny(w, r, nil)
	}
	net, err := strconv.Atoi(parts[0])
	if err != nil || (net != 1 && net != 2) {
		return rt.proxyAny(w, r, nil)
	}
	if net == 1 {
		idx, ok := rt.resolveNet1(parts[1])
		if !ok {
			// Unknown user or resolution trouble: the canonical answer
			// (404 body, or whatever alignd says) comes from a replay.
			return rt.proxyAny(w, r, nil)
		}
		p, _, err := rt.tryBackends(rt.ownersOf(idx), r.Method, r.URL.RequestURI(), nil)
		if err != nil {
			return err
		}
		return p.write(w)
	}
	if candidates {
		return rt.fanoutCandidates(w, r)
	}
	return rt.fanoutMatch(w, r)
}

// fanLeg is one range's fan-out response plus the backend it came from.
type fanLeg struct {
	p    *proxied
	from *Backend
}

// fanout sends the request to one ready backend per range,
// concurrently. complete reports whether the discovered table tiles
// the whole user space AND every leg answered — a merged read must
// fail otherwise, because an answer synthesized from the surviving
// shards can be confidently wrong (a missing candidate list, a 404
// for a match the dark shard owns).
func (rt *Router) fanout(r *http.Request) (legs []fanLeg, complete bool) {
	entries, _, tiled := rt.table()
	rt.cFanout.Inc()
	legs = make([]fanLeg, len(entries))
	var wg sync.WaitGroup
	for i, e := range entries {
		wg.Add(1)
		go func(i int, cands []*Backend) {
			defer wg.Done()
			p, from, err := rt.tryBackends(cands, r.Method, r.URL.RequestURI(), nil)
			if err == nil {
				legs[i] = fanLeg{p: p, from: from}
			}
		}(i, e.backends)
	}
	wg.Wait()
	complete = tiled
	for _, l := range legs {
		if l.p == nil {
			complete = false
		}
	}
	return legs, complete
}

// fanoutMatch answers a net-2 match. Several shards may each hold a
// match ending at the same net-2 user; the monolithic index resolves
// that collision last-write-wins over the I-sorted match list, i.e.
// the HIGHEST net-1 index. Fan-out results arrive in range order, so
// the highest-range 200 is the monolithic answer, verbatim. A miss is
// canonical only when EVERY shard was heard from and said 404: any
// failed or unreachable leg could own the match, so partial failure
// is a 502, never a confident wrong answer.
func (rt *Router) fanoutMatch(w http.ResponseWriter, r *http.Request) error {
	legs, complete := rt.fanout(r)
	if !complete {
		return errf(http.StatusBadGateway, "fan-out incomplete: a range leg failed and could own the answer")
	}
	var miss *proxied
	for i := len(legs) - 1; i >= 0; i-- {
		p := legs[i].p
		switch {
		case p.status == http.StatusOK:
			return p.write(w)
		case p.status == http.StatusNotFound:
			if miss == nil {
				miss = p
			}
		default:
			// A shard that answered something other than hit/miss (e.g. a
			// 503 that survived the retry budget) has not answered the
			// question; merging around it could mis-answer.
			return errf(http.StatusBadGateway, "shard answered %d during fan-out", p.status)
		}
	}
	if miss == nil {
		return errf(http.StatusBadGateway, "every shard failed the fan-out")
	}
	return miss.write(w)
}

// candidatesBody mirrors alignd's candidatesResponse byte-for-byte
// (same field order, same tags, same trailing-newline encoder).
type candidatesBody struct {
	Generation uint64            `json:"generation"`
	Net        int               `json:"net"`
	User       string            `json:"user"`
	Index      int32             `json:"index"`
	K          int               `json:"k"`
	Candidates []serve.Candidate `json:"candidates"`
}

// fanoutCandidates merges per-shard net-2 candidate lists into the
// monolithic answer. Each net-1 candidate lives in exactly one shard,
// so the union has no duplicates; sorting score-desc/index-asc (the
// serving order) and capping at the request's k (or the snapshot's
// precomputed depth) reproduces the monolithic list exactly, because
// the global top-k is a subset of the union of per-shard top-k lists
// at equal k.
func (rt *Router) fanoutCandidates(w http.ResponseWriter, r *http.Request) error {
	legs, complete := rt.fanout(r)
	if !complete {
		return errf(http.StatusBadGateway, "fan-out incomplete: a range leg failed and its candidates would be dropped")
	}
	var merged *candidatesBody
	var all []serve.Candidate
	maxGen := uint64(0)
	storedK, storedKSet := 0, false
	for _, l := range legs {
		p := l.p
		if p.status != http.StatusOK {
			// Bad k, unknown user, not ready: every shard rejects the
			// same way; replay the canonical body.
			return p.write(w)
		}
		var body candidatesBody
		if err := json.Unmarshal(p.body, &body); err != nil {
			return errf(http.StatusBadGateway, "shard answered unparseable candidates: %v", err)
		}
		// The stored-top-k cap must come from the shards that answered
		// THIS fan-out; mid-rollout the fleet can hold mixed artifacts,
		// and a cap borrowed from a bystander backend would give the
		// merged list a depth no single backend would serve.
		_, _, _, k, _, _ := l.from.snapshotState()
		if !storedKSet {
			storedK, storedKSet = k, true
		} else if k != storedK {
			return errf(http.StatusBadGateway, "shards disagree on stored top-k (%d vs %d): mixed-generation fleet, retry after the rollout settles", storedK, k)
		}
		if merged == nil {
			merged = &body
		}
		if body.Generation > maxGen {
			maxGen = body.Generation
		}
		all = append(all, body.Candidates...)
	}
	if merged == nil {
		return errf(http.StatusBadGateway, "every shard failed the fan-out")
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		return all[a].Index < all[b].Index
	})
	// The monolithic list is always capped at the snapshot's stored
	// top-k depth, even when the request asks for more (k only
	// truncates further). Every global top-k candidate ranks within
	// top-k of its own shard, so the sorted union's head IS the
	// monolithic list.
	limit := storedK
	if merged.K > 0 && (limit == 0 || merged.K < limit) {
		limit = merged.K
	}
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	if all == nil {
		all = []serve.Candidate{}
	}
	merged.Generation = maxGen
	merged.Candidates = all
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(merged)
}

// scoreBody is the slice of the /v1/score request the router needs for
// routing; the full body is replayed to the chosen backend untouched.
type scoreBody struct {
	I        *int32          `json:"i"`
	J        *int32          `json:"j"`
	Features json.RawMessage `json:"features"`
}

// handleScore owner-routes pool lookups by their net-1 index and sends
// everything else (rescores, malformed bodies) to any backend.
func (rt *Router) handleScore(w http.ResponseWriter, r *http.Request) error {
	body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	var req scoreBody
	if err := json.Unmarshal(body, &req); err == nil && req.I != nil && req.J != nil && req.Features == nil {
		if owners := rt.ownersOf(*req.I); len(owners) > 0 {
			p, _, err := rt.tryBackends(owners, r.Method, r.URL.RequestURI(), body)
			if err != nil {
				return err
			}
			return p.write(w)
		}
		// An index outside every range is outside the pool everywhere;
		// any backend answers the canonical 404.
	}
	return rt.proxyAny(w, r, body)
}

// rolloutResponse reports a rolling reload.
type rolloutResponse struct {
	Reloaded []string `json:"reloaded"`
	Failed   []string `json:"failed,omitempty"`
}

// handleRollout reloads every backend sequentially, health-ordered:
// not-ready backends first (they serve no traffic, so a bad artifact
// is discovered before any healthy replica is touched), then ready
// ones one at a time, each polled back to readiness before the next —
// a rolling restart that never takes two healthy replicas of a range
// down at once.
func (rt *Router) handleRollout(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return errf(http.StatusMethodNotAllowed, "rollout is POST")
	}
	rt.cRollout.Inc()
	ordered := make([]*Backend, 0, len(rt.backends))
	var healthy []*Backend
	for _, b := range rt.backends {
		if ready, _, _, _, _, _ := b.snapshotState(); ready {
			healthy = append(healthy, b)
		} else {
			ordered = append(ordered, b)
		}
	}
	ordered = append(ordered, healthy...)
	var resp rolloutResponse
	for _, b := range ordered {
		if err := rt.reloadBackend(b); err != nil {
			resp.Failed = append(resp.Failed, fmt.Sprintf("%s: %v", b.URL, err))
			continue
		}
		resp.Reloaded = append(resp.Reloaded, b.URL)
	}
	rt.clearResolveCache()
	rt.Refresh()
	if len(resp.Failed) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		return json.NewEncoder(w).Encode(resp)
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(resp)
}

func (rt *Router) reloadBackend(b *Backend) error {
	p, err := rt.fetch(b, http.MethodPost, "/v1/reload", []byte("{}"))
	if err != nil {
		return err
	}
	if p.status != http.StatusOK {
		return fmt.Errorf("reload answered %d: %s", p.status, strings.TrimSpace(string(p.body)))
	}
	// Poll the replica back to readiness before touching the next one.
	deadline := time.Now().Add(rt.opts.Timeout)
	for {
		rp, err := rt.fetch(b, http.MethodGet, "/readyz", nil)
		if err == nil && rp.status == http.StatusOK {
			rt.probe(b)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("did not return to readiness after reload")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
