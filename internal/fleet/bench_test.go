package fleet

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"testing"

	"github.com/activeiter/activeiter/internal/snapshot"
)

func benchGet(b *testing.B, url string) {
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%s = %d", url, resp.StatusCode)
	}
}

// BenchmarkServeDirect is the baseline: a net-1 candidates lookup against one
// alignd over loopback, no router in the path.
func BenchmarkServeDirect(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	parent := randomSnapshot(b, rng, 64, 64, 4)
	srv := backendServer(b, parent, b.TempDir(), "mono")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, srv.URL+fmt.Sprintf("/v1/candidates/1/left-u%d", i%64))
	}
}

// BenchmarkRouterHop is the same lookup through the alignr tier over a
// 2-shard fleet: resolve (cached) + owner routing + verbatim proxy.
// The delta over BenchmarkServeDirect is the router-hop overhead.
func BenchmarkRouterHop(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	parent := randomSnapshot(b, rng, 64, 64, 4)
	srv, _ := newFleet(b, parent, []snapshot.UserRange{{Lo: 0, Hi: 32}, {Lo: 32, Hi: 64}}, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, srv.URL+fmt.Sprintf("/v1/candidates/1/left-u%d", i%64))
	}
}

// BenchmarkRouterFanout is the expensive path: a net-2 candidates
// lookup that fans out to both shards and merges the lists.
func BenchmarkRouterFanout(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	parent := randomSnapshot(b, rng, 64, 64, 4)
	srv, _ := newFleet(b, parent, []snapshot.UserRange{{Lo: 0, Hi: 32}, {Lo: 32, Hi: 64}}, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, srv.URL+fmt.Sprintf("/v1/candidates/2/right-u%d", i%64))
	}
}
