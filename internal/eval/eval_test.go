package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 6, FP: 2, TN: 90, FN: 2}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Precision = %v, want 0.75", got)
	}
	if got := c.Recall(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Recall = %v, want 0.75", got)
	}
	if got := c.F1(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("F1 = %v, want 0.75", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.96) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.96", got)
	}
	if c.Total() != 100 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.TPR(); got != c.Recall() {
		t.Errorf("TPR = %v, want Recall %v", got, c.Recall())
	}
	if got := c.FPR(); math.Abs(got-2.0/92.0) > 1e-12 {
		t.Errorf("FPR = %v, want 2/92", got)
	}
}

func TestRatesDegenerate(t *testing.T) {
	// No negatives at all: FPR must be 0, not NaN.
	c := Confusion{TP: 3, FN: 1}
	if got := c.FPR(); got != 0 {
		t.Errorf("FPR with no negatives = %v, want 0", got)
	}
	// No positives: TPR 0, FPR counts the false alarms.
	c = Confusion{FP: 1, TN: 3}
	if got := c.TPR(); got != 0 {
		t.Errorf("TPR with no positives = %v, want 0", got)
	}
	if got := c.FPR(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("FPR = %v, want 0.25", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion should yield zeros, not NaN")
	}
	// All negative predictions on all-negative truth: accuracy 1, rest 0.
	c = Evaluate([]float64{0, 0}, []float64{0, 0})
	if c.Accuracy() != 1 || c.F1() != 0 {
		t.Errorf("all-negative: acc=%v f1=%v", c.Accuracy(), c.F1())
	}
}

func TestEvaluatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Evaluate([]float64{1}, []float64{1, 0})
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if got := Summarize(nil); got.Mean != 0 || got.Std != 0 {
		t.Error("empty Summarize should be zero")
	}
	if str := s.String(); !strings.Contains(str, "±") {
		t.Errorf("String = %q", str)
	}
}

func TestSummarizeConfusionsAndGet(t *testing.T) {
	folds := []Confusion{
		{TP: 1, FN: 1},        // recall 0.5, precision 1
		{TP: 1, FN: 1, FP: 1}, // recall 0.5, precision 0.5
	}
	ms := SummarizeConfusions(folds)
	if math.Abs(ms.Recall.Mean-0.5) > 1e-12 {
		t.Errorf("recall mean = %v", ms.Recall.Mean)
	}
	if math.Abs(ms.Precision.Mean-0.75) > 1e-12 {
		t.Errorf("precision mean = %v", ms.Precision.Mean)
	}
	for _, m := range AllMetrics {
		_ = ms.Get(m) // must not panic
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown metric should panic")
		}
	}()
	ms.Get("bogus")
}

func smallPair(t *testing.T, n1, n2 int, anchors [][2]int) *hetnet.AlignedPair {
	t.Helper()
	g1 := hetnet.NewSocialNetwork("a")
	g2 := hetnet.NewSocialNetwork("b")
	for i := 0; i < n1; i++ {
		g1.AddNode(hetnet.User, string(rune('a'+i)))
	}
	for j := 0; j < n2; j++ {
		g2.AddNode(hetnet.User, string(rune('a'+j)))
	}
	p := hetnet.NewAlignedPair(g1, g2)
	for _, a := range anchors {
		if err := p.AddAnchor(a[0], a[1]); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestSampleNegatives(t *testing.T) {
	pair := smallPair(t, 10, 10, [][2]int{{0, 0}, {1, 1}})
	rng := rand.New(rand.NewSource(1))
	neg, err := SampleNegatives(pair, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(neg) != 50 {
		t.Fatalf("sampled %d", len(neg))
	}
	truth := pair.AnchorSet()
	seen := make(map[int64]bool)
	for _, a := range neg {
		k := hetnet.Key(a.I, a.J)
		if truth[k] {
			t.Fatal("sampled a true anchor as negative")
		}
		if seen[k] {
			t.Fatal("sampled a duplicate negative")
		}
		seen[k] = true
	}
}

func TestSampleNegativesCapacity(t *testing.T) {
	pair := smallPair(t, 2, 2, [][2]int{{0, 0}})
	rng := rand.New(rand.NewSource(1))
	// Capacity is 4-1 = 3.
	if _, err := SampleNegatives(pair, 4, rng); err == nil {
		t.Error("oversampling should fail")
	}
	neg, err := SampleNegatives(pair, 3, rng)
	if err != nil || len(neg) != 3 {
		t.Errorf("exact-capacity sampling failed: %v, %d", err, len(neg))
	}
}

func makeAnchors(n, offset int) []hetnet.Anchor {
	out := make([]hetnet.Anchor, n)
	for i := range out {
		out[i] = hetnet.Anchor{I: offset + i, J: offset + i}
	}
	return out
}

func TestKFoldSplitsProtocol(t *testing.T) {
	pos := makeAnchors(20, 0)
	neg := makeAnchors(100, 1000)
	rng := rand.New(rand.NewSource(2))
	splits, err := KFoldSplits(pos, neg, 10, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 10 {
		t.Fatalf("splits = %d", len(splits))
	}
	for _, s := range splits {
		if len(s.TrainPos) != 2 {
			t.Errorf("fold %d: train positives = %d, want 2", s.Fold, len(s.TrainPos))
		}
		if len(s.TrainNeg) != 10 {
			t.Errorf("fold %d: train negatives = %d, want 10", s.Fold, len(s.TrainNeg))
		}
		if len(s.TestPos) != 18 || len(s.TestNeg) != 90 {
			t.Errorf("fold %d: test %d/%d", s.Fold, len(s.TestPos), len(s.TestNeg))
		}
		// Train and test must be disjoint.
		inTrain := make(map[int64]bool)
		for _, a := range append(append([]hetnet.Anchor{}, s.TrainPos...), s.TrainNeg...) {
			inTrain[hetnet.Key(a.I, a.J)] = true
		}
		for _, a := range append(append([]hetnet.Anchor{}, s.TestPos...), s.TestNeg...) {
			if inTrain[hetnet.Key(a.I, a.J)] {
				t.Fatalf("fold %d: train/test overlap", s.Fold)
			}
		}
	}
}

func TestKFoldSampleRatio(t *testing.T) {
	pos := makeAnchors(100, 0)
	neg := makeAnchors(100, 1000)
	rng := rand.New(rand.NewSource(3))
	splits, err := KFoldSplits(pos, neg, 10, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(splits[0].TrainPos); got != 5 {
		t.Errorf("γ=0.5 train positives = %d, want 5", got)
	}
	// γ does not touch the test pools.
	if got := len(splits[0].TestPos); got != 90 {
		t.Errorf("test positives = %d, want 90", got)
	}
}

func TestKFoldValidation(t *testing.T) {
	pos := makeAnchors(20, 0)
	neg := makeAnchors(20, 100)
	rng := rand.New(rand.NewSource(4))
	if _, err := KFoldSplits(pos, neg, 1, 1, rng); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := KFoldSplits(makeAnchors(3, 0), neg, 10, 1, rng); err == nil {
		t.Error("too few positives should fail")
	}
	if _, err := KFoldSplits(pos, neg, 10, 0, rng); err == nil {
		t.Error("γ=0 should fail")
	}
	if _, err := KFoldSplits(pos, neg, 10, 1.5, rng); err == nil {
		t.Error("γ>1 should fail")
	}
}

func TestKFoldDeterministicGivenSeed(t *testing.T) {
	pos := makeAnchors(20, 0)
	neg := makeAnchors(40, 100)
	s1, err := KFoldSplits(pos, neg, 5, 0.6, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := KFoldSplits(pos, neg, 5, 0.6, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for f := range s1 {
		if len(s1[f].TrainPos) != len(s2[f].TrainPos) {
			t.Fatal("nondeterministic split sizes")
		}
		for i := range s1[f].TrainPos {
			if s1[f].TrainPos[i] != s2[f].TrainPos[i] {
				t.Fatal("nondeterministic split contents")
			}
		}
	}
}
