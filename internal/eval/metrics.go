// Package eval implements the paper's experimental protocol (Section
// IV-B): binary classification metrics, NP-ratio negative sampling,
// the 10-fold train/test rotation with sample-ratio subsampling, and
// mean±std aggregation across folds.
package eval

import (
	"fmt"
	"math"
)

// Confusion accumulates binary classification counts. Labels are 1
// (anchor link exists) and 0.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (prediction, truth) pair.
func (c *Confusion) Add(pred, truth float64) {
	switch {
	case pred == 1 && truth == 1:
		c.TP++
	case pred == 1 && truth == 0:
		c.FP++
	case pred == 0 && truth == 0:
		c.TN++
	default:
		c.FN++
	}
}

// Evaluate builds a confusion matrix from parallel slices. It panics on
// length mismatch.
func Evaluate(pred, truth []float64) Confusion {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: %d predictions for %d truths", len(pred), len(truth)))
	}
	var c Confusion
	for i := range pred {
		c.Add(pred[i], truth[i])
	}
	return c
}

// Total returns the number of recorded pairs.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP/(TP+FP), 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, 0 when both are
// 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// TPR returns the true positive rate TP/(TP+FN) — identical to Recall,
// named for ROC-style reporting (the oracle-noise matrix).
func (c Confusion) TPR() float64 { return c.Recall() }

// FPR returns the false positive rate FP/(FP+TN), 0 when there are no
// negatives.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Accuracy returns (TP+TN)/total, 0 on empty input.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Summary is a mean ± standard deviation over repeated runs.
type Summary struct {
	Mean, Std float64
	N         int
}

// Summarize computes the population mean and standard deviation.
func Summarize(vals []float64) Summary {
	n := len(vals)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return Summary{Mean: mean, Std: math.Sqrt(ss / float64(n)), N: n}
}

// String renders in the paper's table style, e.g. "0.631±0.01".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f±%.2f", s.Mean, s.Std)
}

// MetricSet groups the four reported metrics across folds.
type MetricSet struct {
	F1, Precision, Recall, Accuracy Summary
}

// SummarizeConfusions aggregates per-fold confusion matrices into a
// MetricSet.
func SummarizeConfusions(folds []Confusion) MetricSet {
	f1 := make([]float64, len(folds))
	pr := make([]float64, len(folds))
	rc := make([]float64, len(folds))
	ac := make([]float64, len(folds))
	for i, c := range folds {
		f1[i] = c.F1()
		pr[i] = c.Precision()
		rc[i] = c.Recall()
		ac[i] = c.Accuracy()
	}
	return MetricSet{
		F1:        Summarize(f1),
		Precision: Summarize(pr),
		Recall:    Summarize(rc),
		Accuracy:  Summarize(ac),
	}
}

// Metric names a column of MetricSet for table-driven reporting.
type Metric string

// The four metrics the paper reports.
const (
	MetricF1        Metric = "F1"
	MetricPrecision Metric = "Precision"
	MetricRecall    Metric = "Recall"
	MetricAccuracy  Metric = "Accuracy"
)

// AllMetrics lists the metrics in the paper's table order.
var AllMetrics = []Metric{MetricF1, MetricPrecision, MetricRecall, MetricAccuracy}

// Get returns the summary for the named metric.
func (m MetricSet) Get(metric Metric) Summary {
	switch metric {
	case MetricF1:
		return m.F1
	case MetricPrecision:
		return m.Precision
	case MetricRecall:
		return m.Recall
	case MetricAccuracy:
		return m.Accuracy
	default:
		panic(fmt.Sprintf("eval: unknown metric %q", metric))
	}
}
