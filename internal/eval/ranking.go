package eval

import (
	"fmt"
	"sort"
)

// RankingMetrics summarizes threshold-free quality of a scoring
// function: ROC-AUC, area under the precision-recall curve, and
// precision@k. These complement the paper's thresholded metrics — under
// 50:1 imbalance, ROC-AUC in particular shows whether the *scores* rank
// anchors well even when a threshold choice hides it.
type RankingMetrics struct {
	ROCAUC       float64
	PRAUC        float64
	PrecisionAtK float64
	K            int
}

// Ranking computes ranking metrics from parallel score/truth slices
// (truth values 0/1). k caps the precision@k cutoff; k ≤ 0 uses the
// number of positives. It returns an error when either class is absent
// (the AUCs are undefined).
func Ranking(scores, truth []float64, k int) (RankingMetrics, error) {
	if len(scores) != len(truth) {
		return RankingMetrics{}, fmt.Errorf("eval: %d scores for %d truths", len(scores), len(truth))
	}
	nPos, nNeg := 0, 0
	for _, t := range truth {
		switch t {
		case 1:
			nPos++
		case 0:
			nNeg++
		default:
			return RankingMetrics{}, fmt.Errorf("eval: truth value %v not in {0,1}", t)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return RankingMetrics{}, fmt.Errorf("eval: ranking metrics need both classes (pos=%d neg=%d)", nPos, nNeg)
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		// Pessimistic tie-break: negatives first, so ties do not inflate
		// the metrics.
		return truth[order[a]] < truth[order[b]]
	})

	// ROC-AUC via the rank statistic with midrank tie handling:
	// AUC = (Σ ranks of positives − nPos(nPos+1)/2) / (nPos·nNeg),
	// ranks ascending by score.
	ranks := make([]float64, len(scores))
	for pos := 0; pos < len(order); {
		end := pos
		for end < len(order) && scores[order[end]] == scores[order[pos]] {
			end++
		}
		// order is descending; ascending rank of slot i is len-i.
		mid := (float64(len(order)-pos) + float64(len(order)-end+1)) / 2
		for i := pos; i < end; i++ {
			ranks[order[i]] = mid
		}
		pos = end
	}
	var rankSum float64
	for i, t := range truth {
		if t == 1 {
			rankSum += ranks[i]
		}
	}
	rocAUC := (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))

	// PR-AUC by average precision (step-wise integral over recall).
	var ap float64
	tp := 0
	for i, idx := range order {
		if truth[idx] == 1 {
			tp++
			ap += float64(tp) / float64(i+1)
		}
	}
	ap /= float64(nPos)

	if k <= 0 {
		k = nPos
	}
	if k > len(order) {
		k = len(order)
	}
	topPos := 0
	for _, idx := range order[:k] {
		if truth[idx] == 1 {
			topPos++
		}
	}
	return RankingMetrics{
		ROCAUC:       rocAUC,
		PRAUC:        ap,
		PrecisionAtK: float64(topPos) / float64(k),
		K:            k,
	}, nil
}
