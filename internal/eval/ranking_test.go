package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankingPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []float64{1, 1, 0, 0}
	m, err := Ranking(scores, truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.ROCAUC != 1 {
		t.Errorf("ROCAUC = %v, want 1", m.ROCAUC)
	}
	if m.PRAUC != 1 {
		t.Errorf("PRAUC = %v, want 1", m.PRAUC)
	}
	if m.PrecisionAtK != 1 || m.K != 2 {
		t.Errorf("P@K = %v (K=%d), want 1 (K=2)", m.PrecisionAtK, m.K)
	}
}

func TestRankingInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	truth := []float64{1, 1, 0, 0}
	m, err := Ranking(scores, truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.ROCAUC != 0 {
		t.Errorf("ROCAUC = %v, want 0", m.ROCAUC)
	}
	if m.PrecisionAtK != 0 {
		t.Errorf("P@K = %v, want 0", m.PrecisionAtK)
	}
}

func TestRankingKnownAUC(t *testing.T) {
	// One inversion among 2 pos × 2 neg pairs: AUC = 3/4.
	scores := []float64{0.9, 0.3, 0.5, 0.1}
	truth := []float64{1, 1, 0, 0}
	m, err := Ranking(scores, truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ROCAUC-0.75) > 1e-12 {
		t.Errorf("ROCAUC = %v, want 0.75", m.ROCAUC)
	}
}

func TestRankingTiesMidrank(t *testing.T) {
	// All scores equal: AUC must be 0.5 by midrank convention.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	truth := []float64{1, 1, 0, 0}
	m, err := Ranking(scores, truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ROCAUC-0.5) > 1e-12 {
		t.Errorf("tied ROCAUC = %v, want 0.5", m.ROCAUC)
	}
}

func TestRankingValidation(t *testing.T) {
	if _, err := Ranking([]float64{1}, []float64{1, 0}, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Ranking([]float64{1, 2}, []float64{1, 1}, 0); err == nil {
		t.Error("single-class should fail")
	}
	if _, err := Ranking([]float64{1, 2}, []float64{1, 0.5}, 0); err == nil {
		t.Error("non-binary truth should fail")
	}
}

func TestRankingPrecisionAtCustomK(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	truth := []float64{1, 0, 1, 0}
	m, err := Ranking(scores, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.PrecisionAtK-2.0/3.0) > 1e-12 {
		t.Errorf("P@3 = %v, want 2/3", m.PrecisionAtK)
	}
	// k beyond n clamps.
	m, err = Ranking(scores, truth, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 4 {
		t.Errorf("K = %d, want clamped 4", m.K)
	}
}

// Property: AUC equals the empirical probability that a random positive
// outscores a random negative (with ½ credit for ties), computed by
// brute force.
func TestRankingAUCAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		scores := make([]float64, n)
		truth := make([]float64, n)
		nPos := 0
		for i := range scores {
			scores[i] = float64(rng.Intn(8)) / 8 // coarse grid forces ties
			if rng.Float64() < 0.4 {
				truth[i] = 1
				nPos++
			}
		}
		if nPos == 0 || nPos == n {
			return true // Ranking correctly rejects; nothing to compare
		}
		m, err := Ranking(scores, truth, 0)
		if err != nil {
			return false
		}
		var num, den float64
		for i := range scores {
			if truth[i] != 1 {
				continue
			}
			for j := range scores {
				if truth[j] != 0 {
					continue
				}
				den++
				switch {
				case scores[i] > scores[j]:
					num++
				case scores[i] == scores[j]:
					num += 0.5
				}
			}
		}
		return math.Abs(m.ROCAUC-num/den) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: PR-AUC of a perfect ranking is 1; of any ranking it lies in
// (0, 1].
func TestRankingPRAUCBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		scores := make([]float64, n)
		truth := make([]float64, n)
		nPos := 0
		for i := range scores {
			scores[i] = rng.Float64()
			if rng.Float64() < 0.5 {
				truth[i] = 1
				nPos++
			}
		}
		if nPos == 0 || nPos == n {
			return true
		}
		m, err := Ranking(scores, truth, 0)
		if err != nil {
			return false
		}
		return m.PRAUC > 0 && m.PRAUC <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
