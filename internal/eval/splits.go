package eval

import (
	"fmt"
	"math/rand"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// SampleNegatives draws count distinct non-anchor user pairs uniformly
// from H \ L⁺ = U⁽¹⁾×U⁽²⁾ minus the ground-truth anchors — the paper's
// NP-ratio negative pool (count = θ·|L⁺|). Rejection sampling is
// appropriate because |H| vastly exceeds count in every configuration.
func SampleNegatives(pair *hetnet.AlignedPair, count int, rng *rand.Rand) ([]hetnet.Anchor, error) {
	n1 := pair.G1.NodeCount(pair.AnchorType)
	n2 := pair.G2.NodeCount(pair.AnchorType)
	capacity := n1*n2 - len(pair.Anchors)
	if count > capacity {
		return nil, fmt.Errorf("eval: cannot sample %d negatives from %d available non-anchor pairs", count, capacity)
	}
	truth := pair.AnchorSet()
	seen := make(map[int64]bool, count)
	out := make([]hetnet.Anchor, 0, count)
	for len(out) < count {
		i, j := rng.Intn(n1), rng.Intn(n2)
		k := hetnet.Key(i, j)
		if truth[k] || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, hetnet.Anchor{I: i, J: j})
	}
	return out, nil
}

// Split is one train/test partition of the labeled pools under the
// paper's protocol: one fold trains, the remaining k−1 folds test, and
// the sample-ratio γ subsamples the training fold.
type Split struct {
	// Fold is the index of the training fold.
	Fold int
	// TrainPos is L⁺: the labeled positive anchors available to the
	// model (after γ-subsampling).
	TrainPos []hetnet.Anchor
	// TrainNeg is the labeled negative sample available to supervised
	// baselines (after γ-subsampling). PU methods ignore the labels but
	// the links remain in the unlabeled pool.
	TrainNeg []hetnet.Anchor
	// TestPos and TestNeg are the evaluation pools.
	TestPos, TestNeg []hetnet.Anchor
}

// KFoldSplits rotates k folds over the positive and negative pools:
// split f trains on fold f and tests on the others. sampleRatio ∈ (0,1]
// keeps that fraction of the training fold (the paper's γ), preserving
// the positive:negative ratio. Pools are shuffled once with rng before
// folding, so a fixed seed gives a reproducible protocol.
func KFoldSplits(pos, neg []hetnet.Anchor, k int, sampleRatio float64, rng *rand.Rand) ([]Split, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: need k ≥ 2 folds, got %d", k)
	}
	if len(pos) < k {
		return nil, fmt.Errorf("eval: %d positives cannot fill %d folds", len(pos), k)
	}
	if sampleRatio <= 0 || sampleRatio > 1 {
		return nil, fmt.Errorf("eval: sample ratio %v outside (0,1]", sampleRatio)
	}
	posSh := shuffled(pos, rng)
	negSh := shuffled(neg, rng)
	posFolds := partition(posSh, k)
	negFolds := partition(negSh, k)
	splits := make([]Split, k)
	for f := 0; f < k; f++ {
		s := Split{Fold: f}
		for g := 0; g < k; g++ {
			if g == f {
				continue
			}
			s.TestPos = append(s.TestPos, posFolds[g]...)
			s.TestNeg = append(s.TestNeg, negFolds[g]...)
		}
		s.TrainPos = subsample(posFolds[f], sampleRatio)
		s.TrainNeg = subsample(negFolds[f], sampleRatio)
		if len(s.TrainPos) == 0 {
			return nil, fmt.Errorf("eval: fold %d has no training positives after γ=%v", f, sampleRatio)
		}
		splits[f] = s
	}
	return splits, nil
}

func shuffled(in []hetnet.Anchor, rng *rand.Rand) []hetnet.Anchor {
	out := make([]hetnet.Anchor, len(in))
	copy(out, in)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func partition(in []hetnet.Anchor, k int) [][]hetnet.Anchor {
	out := make([][]hetnet.Anchor, k)
	for i, a := range in {
		out[i%k] = append(out[i%k], a)
	}
	return out
}

// subsample keeps the leading ceil(ratio·n) elements (input is already
// shuffled); ratio 1 keeps everything.
func subsample(in []hetnet.Anchor, ratio float64) []hetnet.Anchor {
	if ratio >= 1 {
		return in
	}
	n := int(float64(len(in))*ratio + 0.5)
	if n < 1 && len(in) > 0 {
		n = 1
	}
	return in[:n]
}
