package core

import (
	"fmt"
	"sort"

	"github.com/activeiter/activeiter/internal/linalg"
)

// Predictor scores previously unseen candidate links with a trained
// weight vector — the inductive companion to the transductive training
// loop. Use it to rank new user pairs (e.g. users who joined after
// training) without re-running the optimization.
type Predictor struct {
	w         linalg.Vector
	threshold float64
}

// NewPredictor wraps a trained result. threshold ≤ 0 uses the paper's ½.
func NewPredictor(res *Result, threshold float64) (*Predictor, error) {
	if res == nil || len(res.W) == 0 {
		return nil, fmt.Errorf("core: predictor needs a trained result")
	}
	return NewPredictorFromWeights(res.W, threshold)
}

// NewPredictorFromWeights builds a predictor straight from a persisted
// weight vector — the reload path of a serving process, which holds a
// snapshot's weights but no Result. threshold ≤ 0 uses the paper's ½.
func NewPredictorFromWeights(w []float64, threshold float64) (*Predictor, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("core: predictor needs a non-empty weight vector")
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	return &Predictor{w: linalg.Vector(w).Clone(), threshold: threshold}, nil
}

// Score returns the raw score ŷ = w·x of a feature vector. It panics on
// dimension mismatch.
func (p *Predictor) Score(x linalg.Vector) float64 { return p.w.Dot(x) }

// Predict returns the thresholded label in {0, 1}. Note this ignores the
// one-to-one constraint — for batch inference over a candidate pool use
// PredictBatch, which enforces it.
func (p *Predictor) Predict(x linalg.Vector) float64 {
	if p.Score(x) > p.threshold {
		return 1
	}
	return 0
}

// PredictBatch scores every row of x and returns both the raw scores and
// the constraint-respecting labels obtained by greedy one-to-one
// selection over the given endpoints (endpoints[k] = {i, j} of row k).
// Pass nil endpoints to skip the constraint.
func (p *Predictor) PredictBatch(x *linalg.Dense, endpoints [][2]int) (scores []float64, labels []float64, err error) {
	n, d := x.Dims()
	if d != len(p.w) {
		return nil, nil, fmt.Errorf("core: predictor dimension %d, features %d", len(p.w), d)
	}
	if endpoints != nil && len(endpoints) != n {
		return nil, nil, fmt.Errorf("core: %d endpoint pairs for %d rows", len(endpoints), n)
	}
	scores = x.MulVec(p.w)
	labels = make([]float64, n)
	if endpoints == nil {
		for k, s := range scores {
			if s > p.threshold {
				labels[k] = 1
			}
		}
		return scores, labels, nil
	}
	type cand struct {
		k int
		s float64
	}
	order := make([]cand, 0, n)
	for k, s := range scores {
		if s > p.threshold {
			order = append(order, cand{k: k, s: s})
		}
	}
	// Greedy one-to-one, same semantics as training step (1-2).
	sort.Slice(order, func(a, b int) bool {
		if order[a].s != order[b].s {
			return order[a].s > order[b].s
		}
		return order[a].k < order[b].k
	})
	usedI := make(map[int]bool)
	usedJ := make(map[int]bool)
	for _, c := range order {
		i, j := endpoints[c.k][0], endpoints[c.k][1]
		if usedI[i] || usedJ[j] {
			continue
		}
		usedI[i] = true
		usedJ[j] = true
		labels[c.k] = 1
	}
	return scores, labels, nil
}
