package core

import (
	"testing"

	"github.com/activeiter/activeiter/internal/linalg"
)

func trainedResult(t *testing.T) *Result {
	t.Helper()
	p, _ := separableProblem(10, 3, 30)
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPredictorScoresNewLinks(t *testing.T) {
	res := trainedResult(t)
	pred, err := NewPredictor(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A positive-profile feature vector (feature=1, bias=1) must score
	// above a negative-profile one (feature=0, bias=1).
	pos := linalg.Vector{1, 1}
	neg := linalg.Vector{0, 1}
	if pred.Score(pos) <= pred.Score(neg) {
		t.Errorf("positive profile %v should outscore negative %v", pred.Score(pos), pred.Score(neg))
	}
	if pred.Predict(pos) != 1 {
		t.Errorf("positive profile predicted %v", pred.Predict(pos))
	}
	if pred.Predict(neg) != 0 {
		t.Errorf("negative profile predicted %v", pred.Predict(neg))
	}
}

func TestPredictorBatchConstraint(t *testing.T) {
	res := trainedResult(t)
	pred, err := NewPredictor(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Three positive-profile candidates, two sharing left user 7.
	x := linalg.NewDense(3, 2)
	for r := 0; r < 3; r++ {
		x.Set(r, 0, 1)
		x.Set(r, 1, 1)
	}
	endpoints := [][2]int{{7, 1}, {7, 2}, {8, 3}}
	scores, labels, err := pred.PredictBatch(x, endpoints)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %v", scores)
	}
	if labels[0]+labels[1] != 1 {
		t.Errorf("conflicting candidates selected %v + %v, want exactly one", labels[0], labels[1])
	}
	if labels[2] != 1 {
		t.Errorf("independent candidate not selected")
	}
	// Without endpoints the constraint is skipped: all three positive.
	_, free, err := pred.PredictBatch(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if free[0]+free[1]+free[2] != 3 {
		t.Errorf("unconstrained labels = %v", free)
	}
}

func TestPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(nil, 0); err == nil {
		t.Error("nil result should fail")
	}
	res := trainedResult(t)
	pred, err := NewPredictor(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pred.PredictBatch(linalg.NewDense(2, 5), nil); err == nil {
		t.Error("dimension mismatch should fail")
	}
	x := linalg.NewDense(2, 2)
	if _, _, err := pred.PredictBatch(x, [][2]int{{0, 0}}); err == nil {
		t.Error("endpoint count mismatch should fail")
	}
}

func TestPredictorCustomThreshold(t *testing.T) {
	res := trainedResult(t)
	strict, err := NewPredictor(res, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// With a near-1 threshold even positive profiles may be rejected;
	// the important property is monotonicity vs the default threshold.
	loose, err := NewPredictor(res, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pos := linalg.Vector{1, 1}
	if strict.Predict(pos) == 1 && loose.Predict(pos) == 0 {
		t.Error("stricter threshold accepted what looser rejected")
	}
}
