// Package core implements the ActiveIter training loop of Section III-D:
// the hierarchical alternating optimization over the weight vector w,
// the label vector y, and the query set U_q.
//
//	External round:
//	  Internal iteration, until Δy = ‖yₜ − yₜ₋₁‖₁ converges:
//	    (1-1) w = c(I + cXᵀX)⁻¹Xᵀy      — ridge closed form
//	    (1-2) ŷ = Xw; greedy cardinality-constrained selection flips
//	          unlabeled labels (threshold ½, one-to-one constraint)
//	  (2) query batch: the strategy picks k unlabeled links, the oracle
//	      labels them, and they join U_q with fixed labels
//
// Running with a nil strategy (or zero budget) yields Iter-MPMD, the PU
// baseline of reference [21] with meta-diagram features.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/linalg"
	"github.com/activeiter/activeiter/internal/matching"
)

// Config controls training. The zero value gets the paper's defaults.
type Config struct {
	// C weighs the data fit against the ‖w‖² regularizer; default 1.
	C float64
	// Threshold is the selection cutoff in step (1-2); nil means the
	// paper's 0.5 (the value that makes greedy selection maximize the
	// ‖Xw−y‖² objective). An explicit 0 is honored — it is a real
	// boundary, not "use the default".
	Threshold *float64
	// Budget is the total number of oracle queries allowed (the paper's
	// b). Zero disables querying.
	Budget int
	// BatchSize is the per-round query batch (the paper's k); default 5.
	BatchSize int
	// MaxInternalIters caps each internal convergence loop; default 20
	// (the paper observes convergence within 5).
	MaxInternalIters int
	// ConvergeTol stops the internal loop when Δy ≤ tol; default 0
	// (exact fixpoint, since labels are discrete Δy is integral).
	ConvergeTol float64
	// Strategy picks query candidates; nil with Budget 0 is Iter-MPMD.
	// nil with Budget > 0 is an error.
	Strategy active.Strategy
	// ExactSelection replaces the ½-approximation greedy with the
	// Hungarian optimum in step (1-2) — ablation only.
	ExactSelection bool
	// Seed drives strategy randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.C <= 0 {
		c.C = 1
	}
	if c.Threshold == nil {
		half := 0.5
		c.Threshold = &half
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 5
	}
	if c.MaxInternalIters <= 0 {
		c.MaxInternalIters = 20
	}
	return c
}

// Problem is one alignment instance: the candidate pool H with features,
// the labeled positive indices L⁺, and an oracle for queries.
type Problem struct {
	// Links is the candidate pool H (positives ∪ sampled negatives).
	Links []hetnet.Anchor
	// X is the |H|×d feature matrix, row k describing Links[k].
	X *linalg.Dense
	// LabeledPos are indices into Links forming L⁺.
	LabeledPos []int
	// Prelabeled are indices into Links whose labels were fixed by oracle
	// answers obtained before this run — earlier rounds of a multi-round
	// session re-training over a stable pool. They behave exactly like
	// in-run queried labels: fixed for the whole run, occupying their
	// (i, j) slot when positive, excluded from query selection, and
	// reported by WasQueried so evaluation skips them. They do NOT count
	// toward this run's Budget or QueryCount — the oracle was paid in the
	// round that asked.
	Prelabeled []int
	// PrelabeledY carries the fixed label of each Prelabeled index
	// (parallel slices).
	PrelabeledY []float64
	// Oracle answers queries; required when Budget > 0.
	Oracle active.Oracle
}

// QueryRecord is one oracle interaction.
type QueryRecord struct {
	Index int // index into Problem.Links
	Link  hetnet.Anchor
	Label float64
	Round int
}

// RoundTrace records one external round for convergence analysis
// (Figure 3).
type RoundTrace struct {
	// DeltaY holds ‖yₜ−yₜ₋₁‖₁ per internal iteration.
	DeltaY []float64
	// Queried lists this round's oracle interactions.
	Queried []QueryRecord
}

// Result is a trained model plus its audit trail.
type Result struct {
	// W is the learned weight vector.
	W linalg.Vector
	// Y is the final label vector over Links: 1 for L⁺, queried labels
	// for U_q, inferred labels elsewhere.
	Y linalg.Vector
	// Scores is the final raw score vector ŷ = Xw.
	Scores linalg.Vector
	// Queried lists all oracle interactions in order.
	Queried []QueryRecord
	// Rounds traces every external round.
	Rounds []RoundTrace
	// Elapsed is the total training wall time (Figure 4's quantity).
	Elapsed time.Duration
	// InternalIterations counts all internal iterations performed.
	InternalIterations int

	queriedSet map[int]bool
	linkIndex  map[int64]int
}

// ErrNoPositives is returned when L⁺ is empty — the PU setting is
// meaningless without at least one known positive.
var ErrNoPositives = errors.New("core: no labeled positive links")

// Train runs ActiveIter (or Iter-MPMD when no querying is configured).
func Train(p Problem, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := len(p.Links)
	if n == 0 {
		return nil, errors.New("core: empty candidate pool")
	}
	if rows, _ := p.X.Dims(); rows != n {
		return nil, fmt.Errorf("core: feature matrix has %d rows for %d links", rows, n)
	}
	if len(p.LabeledPos) == 0 {
		return nil, ErrNoPositives
	}
	if cfg.Budget > 0 {
		if cfg.Strategy == nil {
			return nil, errors.New("core: budget > 0 requires a query strategy")
		}
		if p.Oracle == nil {
			return nil, errors.New("core: budget > 0 requires an oracle")
		}
	}

	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))

	ridge, err := linalg.NewRidge(p.X, cfg.C)
	if err != nil {
		return nil, err
	}

	// Label state. kind tracks why a label is fixed.
	const (
		kindUnlabeled = iota
		kindPositive
		kindQueried
	)
	kind := make([]int, n)
	y := make(linalg.Vector, n)
	baseOcc := matching.NewOccupied()
	for _, idx := range p.LabeledPos {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("core: labeled positive index %d out of range [0,%d)", idx, n)
		}
		kind[idx] = kindPositive
		y[idx] = 1
		baseOcc.Take(p.Links[idx].I, p.Links[idx].J)
	}

	res := &Result{queriedSet: make(map[int]bool), linkIndex: make(map[int64]int, n)}
	for idx, l := range p.Links {
		res.linkIndex[hetnet.Key(l.I, l.J)] = idx
	}

	// Prelabeled links enter in the same state an in-run query would have
	// left them: fixed label, occupied slot when positive, flagged as
	// queried. Applied after L⁺ so a conflicting double-listing (caller
	// bug) surfaces as an error rather than silently preferring one side.
	if len(p.Prelabeled) != len(p.PrelabeledY) {
		return nil, fmt.Errorf("core: %d prelabeled indices for %d labels", len(p.Prelabeled), len(p.PrelabeledY))
	}
	for k, idx := range p.Prelabeled {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("core: prelabeled index %d out of range [0,%d)", idx, n)
		}
		if kind[idx] != kindUnlabeled {
			return nil, fmt.Errorf("core: prelabeled index %d already labeled (listed twice, or also in LabeledPos)", idx)
		}
		kind[idx] = kindQueried
		y[idx] = p.PrelabeledY[k]
		if y[idx] == 1 {
			baseOcc.Take(p.Links[idx].I, p.Links[idx].J)
		}
		res.queriedSet[idx] = true
	}

	var scores linalg.Vector
	var w linalg.Vector

	// The very first solve fits w on the fixed-label rows only (L⁺, and
	// later U_q). Solving over all of H with unlabeled y initialized to 0
	// would shrink every score below the ½ selection threshold and the
	// alternating iteration could never lift off; bootstrapping from the
	// discriminative term alone is the natural reading of the paper's
	// initialization (train on L⁺, then infer U).
	firstSolve := true
	solveFixedOnly := func() (linalg.Vector, error) {
		var rows []int
		for idx := 0; idx < n; idx++ {
			if kind[idx] != kindUnlabeled {
				rows = append(rows, idx)
			}
		}
		_, d := p.X.Dims()
		sub := linalg.NewDense(len(rows), d)
		subY := make(linalg.Vector, len(rows))
		for r, idx := range rows {
			copy(sub.RowView(r), p.X.RowView(idx))
			subY[r] = y[idx]
		}
		return linalg.RidgeSolve(sub, subY, cfg.C)
	}

	// Scratch buffers reused across every internal iteration: the
	// candidate list, the score vector, and the next-label vector. The
	// candidate loop runs O(folds × rounds × iterations) times per
	// experiment cell, so per-iteration allocation here was a dominant
	// GC cost.
	scores = make(linalg.Vector, n)
	nextY := make(linalg.Vector, n)
	cands := make([]matching.Candidate, 0, n)

	// internalConverge runs step (1) to a label fixpoint.
	internalConverge := func(trace *RoundTrace) error {
		for it := 0; it < cfg.MaxInternalIters; it++ {
			res.InternalIterations++
			// (1-1) ridge solve.
			if firstSolve {
				var err error
				w, err = solveFixedOnly()
				if err != nil {
					return err
				}
				firstSolve = false
			} else {
				w = ridge.Solve(p.X, y)
			}
			// (1-2) greedy selection over unlabeled links.
			p.X.MulVecInto(scores, w)
			cands = cands[:0]
			for idx := 0; idx < n; idx++ {
				if kind[idx] != kindUnlabeled {
					continue
				}
				cands = append(cands, matching.Candidate{
					I: p.Links[idx].I, J: p.Links[idx].J,
					Score: scores[idx], Payload: idx,
				})
			}
			occ := baseOcc.Clone()
			var selected []matching.Candidate
			if cfg.ExactSelection {
				selected = matching.Exact(cands, *cfg.Threshold, occ)
			} else {
				selected = matching.Greedy(cands, *cfg.Threshold, occ)
			}
			for idx := 0; idx < n; idx++ {
				if kind[idx] == kindUnlabeled {
					nextY[idx] = 0
				} else {
					nextY[idx] = y[idx]
				}
			}
			for _, c := range selected {
				nextY[c.Payload] = 1
			}
			var delta float64
			for idx := 0; idx < n; idx++ {
				d := nextY[idx] - y[idx]
				if d < 0 {
					d = -d
				}
				delta += d
			}
			y, nextY = nextY, y
			trace.DeltaY = append(trace.DeltaY, delta)
			if delta <= cfg.ConvergeTol {
				break
			}
		}
		return nil
	}

	remaining := cfg.Budget
	round := 0
	for {
		trace := RoundTrace{}
		if err := internalConverge(&trace); err != nil {
			return nil, err
		}
		if remaining <= 0 || cfg.Strategy == nil {
			res.Rounds = append(res.Rounds, trace)
			break
		}
		// (2) query batch over the unlabeled links.
		var stLinks []hetnet.Anchor
		var stScores, stLabels []float64
		var stIdx []int
		for idx := 0; idx < n; idx++ {
			if kind[idx] != kindUnlabeled {
				continue
			}
			stLinks = append(stLinks, p.Links[idx])
			stScores = append(stScores, scores[idx])
			stLabels = append(stLabels, y[idx])
			stIdx = append(stIdx, idx)
		}
		k := cfg.BatchSize
		if k > remaining {
			k = remaining
		}
		picks := cfg.Strategy.Select(&active.State{
			Links: stLinks, Scores: stScores, Labels: stLabels,
			Threshold: cfg.Threshold,
		}, k, rng)
		for _, pi := range picks {
			idx := stIdx[pi]
			label := p.Oracle.Label(p.Links[idx])
			kind[idx] = kindQueried
			y[idx] = label
			if label == 1 {
				baseOcc.Take(p.Links[idx].I, p.Links[idx].J)
			}
			rec := QueryRecord{Index: idx, Link: p.Links[idx], Label: label, Round: round}
			trace.Queried = append(trace.Queried, rec)
			res.Queried = append(res.Queried, rec)
			res.queriedSet[idx] = true
			remaining--
		}
		res.Rounds = append(res.Rounds, trace)
		round++
		if len(picks) == 0 {
			break // nothing left to query
		}
	}

	res.W = w
	res.Y = y
	res.Scores = scores
	res.Elapsed = time.Since(start)
	return res, nil
}

// LabelOf returns the final label of link (i, j) and whether the link
// was part of the candidate pool.
func (r *Result) LabelOf(i, j int) (float64, bool) {
	idx, ok := r.linkIndex[hetnet.Key(i, j)]
	if !ok {
		return 0, false
	}
	return r.Y[idx], true
}

// WasQueried reports whether link (i, j) was labeled by the oracle (such
// links are excluded from evaluation for fairness, per Section IV-B-3).
func (r *Result) WasQueried(i, j int) bool {
	idx, ok := r.linkIndex[hetnet.Key(i, j)]
	return ok && r.queriedSet[idx]
}

// QueryCount returns the number of oracle queries spent.
func (r *Result) QueryCount() int { return len(r.Queried) }

// FirstRoundDeltas returns the Δy sequence of the first external round,
// the series Figure 3 plots.
func (r *Result) FirstRoundDeltas() []float64 {
	if len(r.Rounds) == 0 {
		return nil
	}
	return r.Rounds[0].DeltaY
}
