package core

import (
	"math/rand"
	"testing"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/linalg"
)

// separableProblem builds a candidate pool with a perfectly informative
// feature: true positives have feature 1, negatives 0; a bias column is
// appended. Links are (i, i) for positives and (i, j≠i) for negatives so
// the one-to-one structure is realistic.
//
// nPos true positives (the first nLabeled of them labeled), nNeg
// negatives.
func separableProblem(nPos, nLabeled, nNeg int) (Problem, map[int64]float64) {
	links := make([]hetnet.Anchor, 0, nPos+nNeg)
	truth := make(map[int64]float64)
	for i := 0; i < nPos; i++ {
		links = append(links, hetnet.Anchor{I: i, J: i})
		truth[hetnet.Key(i, i)] = 1
	}
	for k := 0; k < nNeg; k++ {
		a := hetnet.Anchor{I: k % nPos, J: (k + 1 + k/nPos) % nPos}
		links = append(links, a)
		truth[hetnet.Key(a.I, a.J)] = 0
	}
	x := linalg.NewDense(len(links), 2)
	for r := range links {
		if r < nPos {
			x.Set(r, 0, 1)
		}
		x.Set(r, 1, 1)
	}
	labeled := make([]int, nLabeled)
	for i := range labeled {
		labeled[i] = i
	}
	return Problem{Links: links, X: x, LabeledPos: labeled}, truth
}

func TestIterMPMDRecoversUnlabeledPositives(t *testing.T) {
	p, truth := separableProblem(10, 3, 30)
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for idx, l := range p.Links {
		want := truth[hetnet.Key(l.I, l.J)]
		if got := res.Y[idx]; got != want {
			t.Errorf("link %v: label %v, want %v", l, got, want)
		}
	}
	if res.QueryCount() != 0 {
		t.Errorf("Iter-MPMD should not query, got %d", res.QueryCount())
	}
}

func TestConvergenceTraceReachesZero(t *testing.T) {
	p, _ := separableProblem(10, 3, 30)
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	deltas := res.FirstRoundDeltas()
	if len(deltas) == 0 {
		t.Fatal("no convergence trace")
	}
	if deltas[0] == 0 {
		t.Error("first iteration should flip labels (Δy > 0)")
	}
	if last := deltas[len(deltas)-1]; last != 0 {
		t.Errorf("final Δy = %v, want 0", last)
	}
	if res.InternalIterations != len(deltas) {
		t.Errorf("InternalIterations = %d, trace length %d", res.InternalIterations, len(deltas))
	}
}

func TestOneToOneConstraintEnforced(t *testing.T) {
	// Two unlabeled candidates share user 1 on the left; both look
	// perfectly positive. Only one may be selected.
	links := []hetnet.Anchor{
		{I: 0, J: 0},               // labeled positive
		{I: 1, J: 1}, {I: 1, J: 2}, // conflicting pair
	}
	x := linalg.NewDense(3, 2)
	for r := 0; r < 3; r++ {
		x.Set(r, 0, 1)
		x.Set(r, 1, 1)
	}
	p := Problem{Links: links, X: x, LabeledPos: []int{0}}
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Y[1]+res.Y[2] > 1 {
		t.Errorf("one-to-one violated: labels %v and %v", res.Y[1], res.Y[2])
	}
	if res.Y[1]+res.Y[2] == 0 {
		t.Error("at least one of the conflicting candidates should be selected")
	}
}

func TestLabeledPositivesBlockConflictingSelection(t *testing.T) {
	// An unlabeled candidate conflicting with a labeled positive must
	// stay negative no matter how strong its features are.
	links := []hetnet.Anchor{
		{I: 0, J: 0}, // labeled positive occupies I=0 and J=0
		{I: 0, J: 1}, // conflicts on I
		{I: 1, J: 0}, // conflicts on J
	}
	x := linalg.NewDense(3, 2)
	for r := 0; r < 3; r++ {
		x.Set(r, 0, 1)
		x.Set(r, 1, 1)
	}
	p := Problem{Links: links, X: x, LabeledPos: []int{0}}
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Y[1] != 0 || res.Y[2] != 0 {
		t.Errorf("conflicting candidates selected: %v %v", res.Y[1], res.Y[2])
	}
}

func TestActiveQueryingCorrectsLabels(t *testing.T) {
	p, truth := separableProblem(10, 3, 30)
	oracle := oracleFromTruth(truth)
	p.Oracle = oracle
	res, err := Train(p, Config{
		Budget:    10,
		BatchSize: 5,
		Strategy:  active.Random{},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryCount() != 10 {
		t.Errorf("queries = %d, want 10", res.QueryCount())
	}
	// Every queried link's label must equal the oracle truth.
	for _, q := range res.Queried {
		if want := truth[hetnet.Key(q.Link.I, q.Link.J)]; q.Label != want {
			t.Errorf("query %v labeled %v, want %v", q.Link, q.Label, want)
		}
		if got := res.Y[q.Index]; got != q.Label {
			t.Errorf("queried label not fixed in Y: %v vs %v", got, q.Label)
		}
		if !res.WasQueried(q.Link.I, q.Link.J) {
			t.Errorf("WasQueried(%v) = false", q.Link)
		}
	}
	// Rounds: 10/5 = 2 query rounds + trailing convergence = 3 traces.
	if len(res.Rounds) != 3 {
		t.Errorf("rounds = %d, want 3", len(res.Rounds))
	}
	_ = oracle
}

func TestBudgetClampedByBatch(t *testing.T) {
	p, truth := separableProblem(10, 3, 30)
	p.Oracle = oracleFromTruth(truth)
	res, err := Train(p, Config{
		Budget:    7, // 5 + 2
		BatchSize: 5,
		Strategy:  active.Random{},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryCount() != 7 {
		t.Errorf("queries = %d, want exactly the budget 7", res.QueryCount())
	}
}

type mapOracle map[int64]float64

func (m mapOracle) Label(a hetnet.Anchor) float64 { return m[hetnet.Key(a.I, a.J)] }

func oracleFromTruth(truth map[int64]float64) active.Oracle { return mapOracle(truth) }

func TestTrainValidation(t *testing.T) {
	p, truth := separableProblem(4, 2, 4)
	cases := []struct {
		name string
		mut  func(*Problem, *Config)
	}{
		{"empty pool", func(p *Problem, c *Config) { p.Links = nil; p.X = linalg.NewDense(0, 2) }},
		{"row mismatch", func(p *Problem, c *Config) { p.X = linalg.NewDense(1, 2) }},
		{"no positives", func(p *Problem, c *Config) { p.LabeledPos = nil }},
		{"bad positive index", func(p *Problem, c *Config) { p.LabeledPos = []int{99} }},
		{"budget without strategy", func(p *Problem, c *Config) { c.Budget = 5 }},
		{"budget without oracle", func(p *Problem, c *Config) {
			c.Budget = 5
			c.Strategy = active.Random{}
			p.Oracle = nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prob := p
			prob.LabeledPos = append([]int{}, p.LabeledPos...)
			cfg := Config{}
			tc.mut(&prob, &cfg)
			if _, err := Train(prob, cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
	_ = truth
}

func TestExactSelectionPath(t *testing.T) {
	p, truth := separableProblem(8, 3, 20)
	res, err := Train(p, Config{ExactSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	for idx, l := range p.Links {
		if want := truth[hetnet.Key(l.I, l.J)]; res.Y[idx] != want {
			t.Errorf("exact selection: link %v label %v, want %v", l, res.Y[idx], want)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p1, truth := separableProblem(10, 3, 30)
	p1.Oracle = oracleFromTruth(truth)
	p2 := p1
	cfg := Config{Budget: 10, BatchSize: 5, Strategy: active.Random{}, Seed: 42}
	r1, err := Train(p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Train(p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Y.EqualApprox(r2.Y, 0) {
		t.Error("same seed should give identical labels")
	}
	for i := range r1.Queried {
		if r1.Queried[i].Link != r2.Queried[i].Link {
			t.Error("same seed should give identical queries")
		}
	}
}

func TestLabelOf(t *testing.T) {
	p, _ := separableProblem(5, 2, 10)
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if lab, ok := res.LabelOf(3, 3); !ok || lab != 1 {
		t.Errorf("LabelOf(3,3) = %v,%v", lab, ok)
	}
	if _, ok := res.LabelOf(999, 999); ok {
		t.Error("unknown link should miss")
	}
}

func TestScoresExposed(t *testing.T) {
	p, _ := separableProblem(5, 2, 10)
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(p.Links) {
		t.Fatalf("scores length %d", len(res.Scores))
	}
	// Positive-profile scores must exceed negative-profile scores.
	if res.Scores[0] <= res.Scores[len(p.Links)-1] {
		t.Errorf("positive score %v not above negative %v", res.Scores[0], res.Scores[len(p.Links)-1])
	}
	if len(res.W) != 2 {
		t.Errorf("W dims %d", len(res.W))
	}
}

// Regression: Config used to treat an explicit Threshold of 0 as "use
// the 0.5 default" (the <= 0 sentinel check). With pointer semantics,
// nil means default and an explicit zero survives withDefaults.
func TestThresholdExplicitZeroSurvivesDefaults(t *testing.T) {
	zero := 0.0
	cfg := (Config{Threshold: &zero}).withDefaults()
	if *cfg.Threshold != 0 {
		t.Errorf("explicit zero threshold became %v", *cfg.Threshold)
	}
	cfg = (Config{}).withDefaults()
	if *cfg.Threshold != 0.5 {
		t.Errorf("default threshold = %v, want 0.5", *cfg.Threshold)
	}
}

// spyStrategy records the State it was handed, to assert the training
// loop plumbs its resolved threshold through to the query strategy.
type spyStrategy struct {
	seen []*float64
}

func (s *spyStrategy) Name() string { return "spy" }

func (s *spyStrategy) Select(st *active.State, k int, rng *rand.Rand) []int {
	thr := st.Threshold
	if thr != nil {
		v := *thr
		thr = &v
	}
	s.seen = append(s.seen, thr)
	return nil // query nothing; one round is enough
}

// Regression: strategies used to see no threshold at all, so
// active.Uncertainty queried around a hardcoded 0.5 even when the
// training loop selected against a different boundary.
func TestTrainPassesThresholdToStrategy(t *testing.T) {
	p, truth := separableProblem(5, 2, 10)
	p.Oracle = oracleFromTruth(truth)
	thr := 0.7
	spy := &spyStrategy{}
	if _, err := Train(p, Config{Budget: 5, Strategy: spy, Threshold: &thr}); err != nil {
		t.Fatal(err)
	}
	if len(spy.seen) == 0 {
		t.Fatal("strategy never consulted")
	}
	for _, got := range spy.seen {
		if got == nil || *got != 0.7 {
			t.Errorf("strategy saw threshold %v, want 0.7", got)
		}
	}
}

// TestPrelabeledActAsFixedQueriedLabels: prelabels (oracle answers
// carried in from earlier session rounds) start fixed, occupy their
// one-to-one slot, report as queried, and spend no budget.
func TestPrelabeledActAsFixedQueriedLabels(t *testing.T) {
	p, _ := separableProblem(10, 3, 30)
	// Fix one unlabeled positive as a prelabeled YES and one negative as
	// a prelabeled NO.
	posIdx, negIdx := 5, 12
	p.Prelabeled = []int{posIdx, negIdx}
	p.PrelabeledY = []float64{1, 0}
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Y[posIdx] != 1 || res.Y[negIdx] != 0 {
		t.Errorf("prelabels not fixed: y[%d]=%v y[%d]=%v", posIdx, res.Y[posIdx], negIdx, res.Y[negIdx])
	}
	for _, idx := range []int{posIdx, negIdx} {
		l := p.Links[idx]
		if !res.WasQueried(l.I, l.J) {
			t.Errorf("prelabel %v not reported as queried", l)
		}
	}
	if res.QueryCount() != 0 {
		t.Errorf("prelabels spent %d budget queries", res.QueryCount())
	}
}

// TestPrelabeledPositiveOccupiesSlot: a prelabeled positive takes its
// (i, j) row/column in the one-to-one constraint exactly like an in-run
// queried positive — a conflicting candidate cannot be selected.
func TestPrelabeledPositiveOccupiesSlot(t *testing.T) {
	links := []hetnet.Anchor{{I: 0, J: 0}, {I: 1, J: 1}, {I: 1, J: 2}}
	x := linalg.NewDense(3, 2)
	for r := 0; r < 3; r++ {
		x.Set(r, 0, 1)
		x.Set(r, 1, 1)
	}
	p := Problem{Links: links, X: x, LabeledPos: []int{0},
		Prelabeled: []int{1}, PrelabeledY: []float64{1}}
	res, err := Train(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Y[1] != 1 {
		t.Fatalf("prelabeled positive lost its label: %v", res.Y)
	}
	if res.Y[2] != 0 {
		t.Errorf("candidate (1,2) selected despite user 1 occupied by a prelabel: %v", res.Y)
	}
}

// TestPrelabeledValidation: ragged slices, out-of-range indices and
// double listings are caller bugs and must error, not silently skew
// training.
func TestPrelabeledValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(p *Problem)
	}{
		{"ragged", func(p *Problem) { p.Prelabeled = []int{1}; p.PrelabeledY = nil }},
		{"out of range", func(p *Problem) { p.Prelabeled = []int{99}; p.PrelabeledY = []float64{1} }},
		{"negative", func(p *Problem) { p.Prelabeled = []int{-1}; p.PrelabeledY = []float64{1} }},
		{"also labeled positive", func(p *Problem) { p.Prelabeled = []int{0}; p.PrelabeledY = []float64{1} }},
		{"listed twice", func(p *Problem) { p.Prelabeled = []int{5, 5}; p.PrelabeledY = []float64{1, 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, _ := separableProblem(10, 3, 30)
			tc.mut(&p)
			if _, err := Train(p, Config{}); err == nil {
				t.Error("invalid prelabels accepted")
			}
		})
	}
}
