// Package multinet extends the two-network alignment of the paper to
// multiple (more than two) aligned social networks — the extension the
// paper's Section II sketches ("simple extensions of the model can be
// applied to multiple aligned social networks as well").
//
// The approach is pairwise-then-reconcile: every network pair is aligned
// with the existing ActiveIter machinery, and the pairwise predictions
// are merged into identity clusters subject to two global constraints:
//
//   - one-to-one per network pair (no cluster holds two users of the
//     same network), and
//   - transitive consistency (if a≡b and b≡c then a≡c — clusters are
//     equivalence classes by construction).
//
// Reconciliation is a score-greedy union-find: predicted links join
// clusters in descending score order, and a join is rejected when the
// merged cluster would contain two distinct users of one network. This
// is the natural generalization of the paper's greedy cardinality-
// constrained link selection to k partite sets.
package multinet

import (
	"fmt"
	"sort"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// AlignedSet couples n ≥ 2 networks with pairwise ground-truth anchor
// sets.
type AlignedSet struct {
	Nets    []*hetnet.Network
	anchors map[[2]int][]hetnet.Anchor // key (i,j) with i < j
}

// NewAlignedSet wraps the networks with empty anchor sets. It panics
// with fewer than two networks.
func NewAlignedSet(nets ...*hetnet.Network) *AlignedSet {
	if len(nets) < 2 {
		panic("multinet: need at least two networks")
	}
	return &AlignedSet{Nets: nets, anchors: make(map[[2]int][]hetnet.Anchor)}
}

// pairKey canonicalizes a network index pair.
func pairKey(i, j int) ([2]int, bool) {
	if i < j {
		return [2]int{i, j}, true
	}
	return [2]int{j, i}, false
}

// AddAnchor records a ground-truth anchor between user a of network i
// and user b of network j.
func (s *AlignedSet) AddAnchor(i, j, a, b int) error {
	if i == j || i < 0 || j < 0 || i >= len(s.Nets) || j >= len(s.Nets) {
		return fmt.Errorf("multinet: invalid network pair (%d,%d) of %d", i, j, len(s.Nets))
	}
	key, ordered := pairKey(i, j)
	if !ordered {
		a, b = b, a
	}
	if a < 0 || a >= s.Nets[key[0]].NodeCount(hetnet.User) {
		return fmt.Errorf("multinet: user %d out of range in network %d", a, key[0])
	}
	if b < 0 || b >= s.Nets[key[1]].NodeCount(hetnet.User) {
		return fmt.Errorf("multinet: user %d out of range in network %d", b, key[1])
	}
	s.anchors[key] = append(s.anchors[key], hetnet.Anchor{I: a, J: b})
	return nil
}

// Anchors returns the ground-truth anchors of pair (i, j) oriented i→j.
func (s *AlignedSet) Anchors(i, j int) []hetnet.Anchor {
	key, ordered := pairKey(i, j)
	src := s.anchors[key]
	out := make([]hetnet.Anchor, len(src))
	copy(out, src)
	if !ordered {
		for k, a := range out {
			out[k] = hetnet.Anchor{I: a.J, J: a.I}
		}
	}
	return out
}

// Pair materializes the aligned pair (i, j) for the two-network
// machinery, with anchors oriented i→j.
func (s *AlignedSet) Pair(i, j int) (*hetnet.AlignedPair, error) {
	if i == j || i < 0 || j < 0 || i >= len(s.Nets) || j >= len(s.Nets) {
		return nil, fmt.Errorf("multinet: invalid network pair (%d,%d)", i, j)
	}
	p := hetnet.NewAlignedPair(s.Nets[i], s.Nets[j])
	for _, a := range s.Anchors(i, j) {
		if err := p.AddAnchor(a.I, a.J); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Pairs enumerates all network index pairs (i < j).
func (s *AlignedSet) Pairs() [][2]int {
	var out [][2]int
	for i := 0; i < len(s.Nets); i++ {
		for j := i + 1; j < len(s.Nets); j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// Validate checks every pairwise anchor set for one-to-one violations.
func (s *AlignedSet) Validate() error {
	for _, ij := range s.Pairs() {
		p, err := s.Pair(ij[0], ij[1])
		if err != nil {
			return err
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("multinet: pair (%d,%d): %w", ij[0], ij[1], err)
		}
	}
	return nil
}

// ScoredLink is one pairwise alignment prediction: user A.I of network
// NetI corresponds to user A.J of network NetJ with the given score.
type ScoredLink struct {
	NetI, NetJ int
	A          hetnet.Anchor
	Score      float64
}

// Cluster is a reconciled identity: at most one user per network.
type Cluster struct {
	// Members maps network index → user index.
	Members map[int]int
}

// member identifies a (network, user) node in the union-find.
type member struct {
	net, user int
}

// Reconciler accumulates pairwise predictions one link (or batch) at a
// time and resolves them into globally consistent identity clusters on
// Finish. It exists for streaming producers — a coordinator receiving
// per-shard link streams feeds every arriving link straight into Add —
// while keeping the exact semantics of the batch Reconcile: the greedy
// union-find needs the full link set in descending score order, so the
// ordering (and all cluster decisions) happen once, at Finish. Add is
// O(1); Finish is O(n log n). The result is independent of Add order.
//
// A Reconciler is single-use: after Finish, further Adds panic. It is
// not safe for concurrent use; serialize access externally.
type Reconciler struct {
	links    []ScoredLink
	finished bool
}

// NewReconciler returns an empty streaming reconciler.
func NewReconciler() *Reconciler {
	return &Reconciler{}
}

// Add appends one pairwise prediction to the stream.
func (r *Reconciler) Add(l ScoredLink) {
	if r.finished {
		panic("multinet: Add after Finish")
	}
	r.links = append(r.links, l)
}

// Len returns the number of links accumulated so far.
func (r *Reconciler) Len() int { return len(r.links) }

// Finish resolves the accumulated stream into identity clusters (see
// the package comment for the algorithm). It returns the clusters with
// ≥ 2 members and the number of links rejected for violating
// cross-network consistency. The links are ordered by a total order —
// score descending, ties by (NetI, NetJ, A.I, A.J) — so the outcome is
// deterministic and identical for any Add order of the same multiset.
func (r *Reconciler) Finish() (clusters []Cluster, rejected int) {
	if r.finished {
		panic("multinet: Finish called twice")
	}
	r.finished = true
	sorted := r.links
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Score != sorted[b].Score {
			return sorted[a].Score > sorted[b].Score
		}
		if sorted[a].NetI != sorted[b].NetI {
			return sorted[a].NetI < sorted[b].NetI
		}
		if sorted[a].NetJ != sorted[b].NetJ {
			return sorted[a].NetJ < sorted[b].NetJ
		}
		if sorted[a].A.I != sorted[b].A.I {
			return sorted[a].A.I < sorted[b].A.I
		}
		return sorted[a].A.J < sorted[b].A.J
	})

	parent := make(map[member]member)
	// size of each cluster's per-network census: root → net → user.
	census := make(map[member]map[int]int)

	var find func(m member) member
	find = func(m member) member {
		p, ok := parent[m]
		if !ok {
			parent[m] = m
			census[m] = map[int]int{m.net: m.user}
			return m
		}
		if p == m {
			return m
		}
		root := find(p)
		parent[m] = root
		return root
	}

	for _, l := range sorted {
		a := member{net: l.NetI, user: l.A.I}
		b := member{net: l.NetJ, user: l.A.J}
		ra, rb := find(a), find(b)
		if ra == rb {
			continue // already together: consistent duplicate
		}
		// A merge is allowed when the censuses do not claim two distinct
		// users of any one network.
		ok := true
		for net, user := range census[rb] {
			if u, exists := census[ra][net]; exists && u != user {
				ok = false
				break
			}
		}
		if !ok {
			rejected++
			continue
		}
		// Union: attach the smaller census to the larger.
		if len(census[ra]) < len(census[rb]) {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		for net, user := range census[rb] {
			census[ra][net] = user
		}
		delete(census, rb)
	}

	for root, c := range census {
		if find(root) != root || len(c) < 2 {
			continue
		}
		members := make(map[int]int, len(c))
		for net, user := range c {
			members[net] = user
		}
		clusters = append(clusters, Cluster{Members: members})
	}
	sort.Slice(clusters, func(a, b int) bool {
		return clusterKey(clusters[a]) < clusterKey(clusters[b])
	})
	return clusters, rejected
}

// Reconcile merges pairwise predictions into globally consistent
// identity clusters in one batch call. It is the one-shot form of
// Reconciler: stream producers use NewReconciler/Add/Finish instead.
func Reconcile(links []ScoredLink) (clusters []Cluster, rejected int) {
	r := NewReconciler()
	for _, l := range links {
		r.Add(l)
	}
	return r.Finish()
}

// clusterKey gives clusters a deterministic order for stable output.
func clusterKey(c Cluster) string {
	nets := make([]int, 0, len(c.Members))
	for n := range c.Members {
		nets = append(nets, n)
	}
	sort.Ints(nets)
	key := ""
	for _, n := range nets {
		key += fmt.Sprintf("%d:%d;", n, c.Members[n])
	}
	return key
}

// PairLinks extracts the (i, j) correspondences implied by the clusters
// — including transitively inferred ones that no pairwise prediction
// stated directly.
func PairLinks(clusters []Cluster, i, j int) []hetnet.Anchor {
	var out []hetnet.Anchor
	for _, c := range clusters {
		a, okA := c.Members[i]
		b, okB := c.Members[j]
		if okA && okB {
			out = append(out, hetnet.Anchor{I: a, J: b})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}
