package multinet

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

func threeNets(t *testing.T, users int) []*hetnet.Network {
	t.Helper()
	nets := make([]*hetnet.Network, 3)
	for k := range nets {
		nets[k] = hetnet.NewSocialNetwork(fmt.Sprintf("n%d", k))
		for u := 0; u < users; u++ {
			nets[k].AddNode(hetnet.User, fmt.Sprintf("u%d", u))
		}
	}
	return nets
}

func TestAlignedSetBasics(t *testing.T) {
	s := NewAlignedSet(threeNets(t, 4)...)
	if err := s.AddAnchor(0, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAnchor(2, 0, 3, 2); err != nil { // reversed order
		t.Fatal(err)
	}
	if err := s.AddAnchor(0, 0, 1, 1); err == nil {
		t.Error("same-network anchor should fail")
	}
	if err := s.AddAnchor(0, 9, 0, 0); err == nil {
		t.Error("out-of-range network should fail")
	}
	if err := s.AddAnchor(0, 1, 99, 0); err == nil {
		t.Error("out-of-range user should fail")
	}
	// Orientation: Anchors(0,2) must give (2, 3), Anchors(2,0) → (3, 2).
	a02 := s.Anchors(0, 2)
	if len(a02) != 1 || a02[0] != (hetnet.Anchor{I: 2, J: 3}) {
		t.Errorf("Anchors(0,2) = %v", a02)
	}
	a20 := s.Anchors(2, 0)
	if len(a20) != 1 || a20[0] != (hetnet.Anchor{I: 3, J: 2}) {
		t.Errorf("Anchors(2,0) = %v", a20)
	}
	if len(s.Pairs()) != 3 {
		t.Errorf("Pairs = %v", s.Pairs())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid set failed: %v", err)
	}
}

func TestAlignedSetPairView(t *testing.T) {
	s := NewAlignedSet(threeNets(t, 4)...)
	if err := s.AddAnchor(0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	p, err := s.Pair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Anchors) != 1 || p.Anchors[0] != (hetnet.Anchor{I: 2, J: 3}) {
		t.Errorf("pair anchors = %v", p.Anchors)
	}
	if _, err := s.Pair(0, 0); err == nil {
		t.Error("self-pair should fail")
	}
}

func TestReconcileTransitivity(t *testing.T) {
	// Links 0-1 and 1-2 imply the 0-2 correspondence transitively.
	links := []ScoredLink{
		{NetI: 0, NetJ: 1, A: hetnet.Anchor{I: 5, J: 6}, Score: 0.9},
		{NetI: 1, NetJ: 2, A: hetnet.Anchor{I: 6, J: 7}, Score: 0.8},
	}
	clusters, rejected := Reconcile(links)
	if rejected != 0 {
		t.Errorf("rejected = %d", rejected)
	}
	if len(clusters) != 1 {
		t.Fatalf("clusters = %v", clusters)
	}
	c := clusters[0]
	if c.Members[0] != 5 || c.Members[1] != 6 || c.Members[2] != 7 {
		t.Errorf("cluster = %v", c.Members)
	}
	inferred := PairLinks(clusters, 0, 2)
	if len(inferred) != 1 || inferred[0] != (hetnet.Anchor{I: 5, J: 7}) {
		t.Errorf("transitive link = %v", inferred)
	}
}

func TestReconcileRejectsConflicts(t *testing.T) {
	// Two strong links claim different net-1 identities for net-0 user 5:
	// the weaker join must be rejected.
	links := []ScoredLink{
		{NetI: 0, NetJ: 1, A: hetnet.Anchor{I: 5, J: 6}, Score: 0.9},
		{NetI: 0, NetJ: 1, A: hetnet.Anchor{I: 5, J: 7}, Score: 0.6},
	}
	clusters, rejected := Reconcile(links)
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
	if len(clusters) != 1 || clusters[0].Members[1] != 6 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestReconcileIndirectConflict(t *testing.T) {
	// a0—b0 and a1—b0? no: indirect: a0≡b0, b0≡c0, and a1≡c0 would put
	// a0 and a1 in one cluster — reject the weakest.
	links := []ScoredLink{
		{NetI: 0, NetJ: 1, A: hetnet.Anchor{I: 0, J: 0}, Score: 0.9},
		{NetI: 1, NetJ: 2, A: hetnet.Anchor{I: 0, J: 0}, Score: 0.8},
		{NetI: 0, NetJ: 2, A: hetnet.Anchor{I: 1, J: 0}, Score: 0.7},
	}
	clusters, rejected := Reconcile(links)
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
	if len(clusters) != 1 {
		t.Fatalf("clusters = %+v", clusters)
	}
	if clusters[0].Members[0] != 0 {
		t.Errorf("cluster kept wrong net-0 user: %v", clusters[0].Members)
	}
}

func TestReconcileDuplicatesAreConsistent(t *testing.T) {
	links := []ScoredLink{
		{NetI: 0, NetJ: 1, A: hetnet.Anchor{I: 1, J: 1}, Score: 0.9},
		{NetI: 0, NetJ: 1, A: hetnet.Anchor{I: 1, J: 1}, Score: 0.5}, // duplicate
	}
	clusters, rejected := Reconcile(links)
	if rejected != 0 {
		t.Errorf("duplicates should not count as rejections, got %d", rejected)
	}
	if len(clusters) != 1 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestReconcileEmpty(t *testing.T) {
	clusters, rejected := Reconcile(nil)
	if len(clusters) != 0 || rejected != 0 {
		t.Errorf("empty input: %v, %d", clusters, rejected)
	}
}

// TestEndToEndTripleAlignment aligns three generated networks pairwise
// with the real model and reconciles: the clusters must recover shared
// users with high precision, and transitive inference must add links no
// pairwise run predicted.
func TestEndToEndTripleAlignment(t *testing.T) {
	cfg := datagen.Tiny()
	ds, err := datagen.GenerateMulti(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := NewAlignedSet(ds.Nets...)
	for _, row := range ds.SharedUsers {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if err := set.AddAnchor(i, j, row[i], row[j]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}

	// Pairwise alignment with 25% training anchors per pair.
	var predictions []ScoredLink
	for _, ij := range set.Pairs() {
		pair, err := set.Pair(ij[0], ij[1])
		if err != nil {
			t.Fatal(err)
		}
		train := pair.Anchors[:len(pair.Anchors)/4]
		counter, err := metadiag.NewCounter(pair)
		if err != nil {
			t.Fatal(err)
		}
		counter.SetAnchors(train)
		ext := metadiag.NewExtractor(counter, schema.StandardLibrary().All(), true)
		cands, err := counter.Candidates(schema.StandardLibrary().All(), 4)
		if err != nil {
			t.Fatal(err)
		}
		links := append(append([]hetnet.Anchor{}, train...), cands...)
		x, err := ext.FeatureMatrix(links)
		if err != nil {
			t.Fatal(err)
		}
		labeled := make([]int, len(train))
		for k := range labeled {
			labeled[k] = k
		}
		res, err := core.Train(core.Problem{Links: links, X: x, LabeledPos: labeled}, core.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for idx, l := range links {
			if res.Y[idx] == 1 {
				predictions = append(predictions, ScoredLink{
					NetI: ij[0], NetJ: ij[1], A: l, Score: res.Scores[idx],
				})
			}
		}
	}

	clusters, _ := Reconcile(predictions)
	if len(clusters) == 0 {
		t.Fatal("no clusters reconciled")
	}
	// Precision of clusters against ground truth: every member pair must
	// be a true shared identity.
	truth := make(map[string]bool)
	for _, row := range ds.SharedUsers {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i != j {
					truth[fmt.Sprintf("%d:%d-%d:%d", i, row[i], j, row[j])] = true
				}
			}
		}
	}
	correct, total := 0, 0
	for _, c := range clusters {
		for ni, ui := range c.Members {
			for nj, uj := range c.Members {
				if ni >= nj {
					continue
				}
				total++
				if truth[fmt.Sprintf("%d:%d-%d:%d", ni, ui, nj, uj)] {
					correct++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("clusters carry no pairs")
	}
	precision := float64(correct) / float64(total)
	if precision < 0.7 {
		t.Errorf("cluster precision = %.2f (%d/%d), want ≥ 0.7", precision, correct, total)
	}
	// One-to-one per network inside the reconciled world.
	for _, ij := range set.Pairs() {
		seen := make(map[int]bool)
		for _, a := range PairLinks(clusters, ij[0], ij[1]) {
			if seen[a.I] {
				t.Fatalf("pair (%d,%d): duplicate left user %d", ij[0], ij[1], a.I)
			}
			seen[a.I] = true
		}
	}
}

func TestGenerateMultiShape(t *testing.T) {
	cfg := datagen.Tiny()
	ds, err := datagen.GenerateMulti(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Nets) != 3 {
		t.Fatalf("nets = %d", len(ds.Nets))
	}
	for k, g := range ds.Nets {
		if got := g.NodeCount(hetnet.User); got != cfg.Users1 {
			t.Errorf("net %d users = %d, want %d", k, got, cfg.Users1)
		}
		if g.NodeCount(hetnet.Post) == 0 || g.LinkCount(hetnet.Follow) == 0 {
			t.Errorf("net %d missing content", k)
		}
	}
	if len(ds.SharedUsers) != cfg.AnchorCount {
		t.Errorf("shared users = %d", len(ds.SharedUsers))
	}
	for _, row := range ds.SharedUsers {
		for k, u := range row {
			if u < 0 {
				t.Fatalf("shared user missing from network %d", k)
			}
		}
	}
	if _, err := datagen.GenerateMulti(cfg, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := datagen.GenerateMulti(cfg, 17); err == nil {
		t.Error("n=17 should fail")
	}
}

// randomLinks generates a scored link multiset over nNets networks with
// deliberate score ties and duplicate links, the inputs where ordering
// bugs would show.
func randomLinks(rng *rand.Rand, nNets, nUsers, n int) []ScoredLink {
	links := make([]ScoredLink, 0, n)
	for len(links) < n {
		i := rng.Intn(nNets)
		j := rng.Intn(nNets)
		if i == j {
			continue
		}
		l := ScoredLink{
			NetI:  i,
			NetJ:  j,
			A:     hetnet.Anchor{I: rng.Intn(nUsers), J: rng.Intn(nUsers)},
			Score: float64(rng.Intn(4)), // few distinct scores: many ties
		}
		links = append(links, l)
		if rng.Intn(4) == 0 { // occasional exact duplicate
			links = append(links, l)
		}
	}
	return links[:n]
}

func clustersEqual(a, b []Cluster) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if clusterKey(a[k]) != clusterKey(b[k]) {
			return false
		}
	}
	return true
}

// TestReconcilerMatchesBatchOnShuffledStreams is the streaming
// reconciler property: feeding any permutation of a link stream into
// Add yields exactly the clusters (and rejection count) of the batch
// Reconcile over the original order.
func TestReconcilerMatchesBatchOnShuffledStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		links := randomLinks(rng, 2+rng.Intn(3), 1+rng.Intn(8), rng.Intn(60))
		wantClusters, wantRejected := Reconcile(links)

		shuffled := make([]ScoredLink, len(links))
		copy(shuffled, links)
		rng.Shuffle(len(shuffled), func(a, b int) {
			shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
		})
		r := NewReconciler()
		for _, l := range shuffled {
			r.Add(l)
		}
		if r.Len() != len(links) {
			t.Fatalf("trial %d: Len=%d want %d", trial, r.Len(), len(links))
		}
		gotClusters, gotRejected := r.Finish()
		if gotRejected != wantRejected {
			t.Errorf("trial %d: rejected=%d want %d", trial, gotRejected, wantRejected)
		}
		if !clustersEqual(gotClusters, wantClusters) {
			t.Errorf("trial %d: clusters diverge from batch Reconcile\n got: %v\nwant: %v",
				trial, gotClusters, wantClusters)
		}
	}
}

// TestReconcilerSingleUse pins the single-use contract: Add or Finish
// after Finish must panic rather than silently corrupt the stream.
func TestReconcilerSingleUse(t *testing.T) {
	r := NewReconciler()
	r.Add(ScoredLink{NetI: 0, NetJ: 1, A: hetnet.Anchor{I: 0, J: 0}, Score: 1})
	r.Finish()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after Finish did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Add", func() { r.Add(ScoredLink{}) })
	mustPanic("Finish", func() { r.Finish() })
}
