// Package datagen synthesizes aligned attributed heterogeneous social
// network pairs with the statistical structure the paper's experiments
// rely on. It substitutes for the proprietary Foursquare–Twitter crawl
// of Table II (see DESIGN.md §3 for the substitution rationale).
//
// The generative model:
//
//   - A latent population hosts every user; the first AnchorCount users
//     exist in both networks (the ground-truth anchors), the rest in one.
//   - A latent directed social graph is grown by preferential attachment
//     (heavy-tailed in-degree, like real follow graphs). Each network
//     keeps a latent edge with probability EdgeKeep1/EdgeKeep2 and adds
//     its own noise edges, so anchored users have correlated — not
//     identical — neighborhoods across networks.
//   - Every user has a routine: a small set of (location, timestamp)
//     combos, mostly personal (uniform draws) with a CommunityShare
//     fraction taken from a shared community pool. Posts sample a combo
//     jointly with probability 1−Dislocation, and otherwise sample
//     location and timestamp independently from Zipf popularity
//     distributions. Anchored users share one routine across both
//     networks — the joint-attribute signal the meta diagram Ψ^a²
//     detects. Popular venues and peak hours give non-aligned pairs
//     marginal-only co-occurrence (the "dislocation" confound of
//     Section III-B-2 that defeats plain meta paths), and community
//     combos give some non-aligned pairs genuine joint overlap — the
//     hard negatives that make the one-to-one constraint and the active
//     query strategy matter.
//
// Everything is driven by a single seed: identical configs generate
// identical pairs.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// Config parameterizes the generator. The zero value is invalid; start
// from a preset.
type Config struct {
	Seed int64

	// Users1 and Users2 are the observed user counts; AnchorCount of
	// them are shared (AnchorCount ≤ min(Users1, Users2)).
	Users1, Users2, AnchorCount int

	// AvgFollows1 and AvgFollows2 are mean follow out-degrees.
	AvgFollows1, AvgFollows2 float64
	// EdgeKeep1 and EdgeKeep2 are the probabilities that a latent edge
	// appears in each network; lower values decorrelate the networks.
	EdgeKeep1, EdgeKeep2 float64
	// NoiseEdgeFrac adds this fraction of per-network random edges on
	// top of the kept latent edges.
	NoiseEdgeFrac float64

	// PostsPerUser1 and PostsPerUser2 are mean post counts (Poisson).
	PostsPerUser1, PostsPerUser2 float64

	// Locations and TimeBuckets size the shared attribute vocabularies.
	Locations, TimeBuckets int
	// Words sizes the optional word vocabulary; 0 disables word
	// generation. WordsPerPost is the mean word count per post.
	Words        int
	WordsPerPost float64

	// RoutineSize is how many (location, timestamp) combos make up a
	// user's routine.
	RoutineSize int
	// Dislocation is the probability that a post ignores the routine and
	// draws location and timestamp independently from the global
	// popularity distributions (the meta-path confound).
	Dislocation float64
	// CommunityCombos sizes a shared pool of (location, timestamp)
	// combos; CommunityShare is the probability that a routine entry is
	// drawn from the pool instead of being personal. Community combos
	// give *non-aligned* users joint attribute overlap — the hard
	// negatives that force alignment models to resolve conflicts rather
	// than threshold a clean score. Zero disables the pool.
	CommunityCombos int
	CommunityShare  float64

	// ZipfS is the Zipf exponent (>1) for attribute popularity.
	ZipfS float64
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	switch {
	case c.Users1 < 1 || c.Users2 < 1:
		return fmt.Errorf("datagen: need at least one user per network, got %d/%d", c.Users1, c.Users2)
	case c.AnchorCount < 0 || c.AnchorCount > c.Users1 || c.AnchorCount > c.Users2:
		return fmt.Errorf("datagen: anchor count %d outside [0, min(%d,%d)]", c.AnchorCount, c.Users1, c.Users2)
	case c.AvgFollows1 < 0 || c.AvgFollows2 < 0:
		return fmt.Errorf("datagen: negative follow degree")
	case c.EdgeKeep1 <= 0 || c.EdgeKeep1 > 1 || c.EdgeKeep2 <= 0 || c.EdgeKeep2 > 1:
		return fmt.Errorf("datagen: edge keep probabilities must be in (0,1]")
	case c.NoiseEdgeFrac < 0:
		return fmt.Errorf("datagen: negative noise edge fraction")
	case c.PostsPerUser1 < 0 || c.PostsPerUser2 < 0:
		return fmt.Errorf("datagen: negative posts per user")
	case c.Locations < 1 || c.TimeBuckets < 1:
		return fmt.Errorf("datagen: need non-empty attribute vocabularies")
	case c.Words < 0 || c.WordsPerPost < 0:
		return fmt.Errorf("datagen: negative word settings")
	case c.RoutineSize < 1:
		return fmt.Errorf("datagen: routine size must be ≥ 1")
	case c.Dislocation < 0 || c.Dislocation > 1:
		return fmt.Errorf("datagen: dislocation %v outside [0,1]", c.Dislocation)
	case c.CommunityCombos < 0:
		return fmt.Errorf("datagen: negative community combo pool")
	case c.CommunityShare < 0 || c.CommunityShare > 1:
		return fmt.Errorf("datagen: community share %v outside [0,1]", c.CommunityShare)
	case c.CommunityShare > 0 && c.CommunityCombos == 0:
		return fmt.Errorf("datagen: community share %v needs a non-empty combo pool", c.CommunityShare)
	case c.ZipfS <= 1:
		return fmt.Errorf("datagen: Zipf exponent must exceed 1, got %v", c.ZipfS)
	}
	return nil
}

// Tiny returns a preset small enough for unit tests (runs in
// milliseconds).
func Tiny() Config {
	return Config{
		Seed: 1, Users1: 60, Users2: 64, AnchorCount: 40,
		AvgFollows1: 6, AvgFollows2: 5,
		EdgeKeep1: 0.75, EdgeKeep2: 0.65, NoiseEdgeFrac: 0.15,
		PostsPerUser1: 4, PostsPerUser2: 3,
		Locations: 60, TimeBuckets: 40,
		Words: 0, WordsPerPost: 0,
		RoutineSize: 3, Dislocation: 0.3, ZipfS: 1.6,
		CommunityCombos: 15, CommunityShare: 0.25,
	}
}

// Small returns the default experiment preset: large enough for the
// paper's relative effects to be visible, small enough for full sweeps
// in seconds.
func Small() Config {
	return Config{
		Seed: 7, Users1: 300, Users2: 312, AnchorCount: 200,
		AvgFollows1: 9, AvgFollows2: 7,
		EdgeKeep1: 0.7, EdgeKeep2: 0.6, NoiseEdgeFrac: 0.2,
		PostsPerUser1: 6, PostsPerUser2: 5,
		Locations: 260, TimeBuckets: 96,
		Words: 0, WordsPerPost: 0,
		RoutineSize: 3, Dislocation: 0.35, ZipfS: 1.5,
		CommunityCombos: 60, CommunityShare: 0.3,
	}
}

// PaperShape mirrors Table II's ratios at roughly 1/5 linear scale:
// user counts, follow densities and the anchor fraction track the
// crawl; posts per user are capped for tractability (Twitter's 1,800
// tweets/user average is I/O volume, not signal).
func PaperShape() Config {
	return Config{
		Seed: 2019, Users1: 1045, Users2: 1078, AnchorCount: 656,
		AvgFollows1: 31.6, AvgFollows2: 14.3,
		EdgeKeep1: 0.7, EdgeKeep2: 0.6, NoiseEdgeFrac: 0.2,
		PostsPerUser1: 6, PostsPerUser2: 5,
		Locations: 900, TimeBuckets: 96,
		Words: 800, WordsPerPost: 2,
		RoutineSize: 3, Dislocation: 0.35, ZipfS: 1.4,
		CommunityCombos: 80, CommunityShare: 0.5,
	}
}

// FullScale reproduces Table II's user and link magnitudes (posts per
// user capped at 20; see DESIGN.md). Generation takes tens of seconds
// and a few GB of memory.
func FullScale() Config {
	return Config{
		Seed: 2019, Users1: 5223, Users2: 5392, AnchorCount: 3282,
		AvgFollows1: 31.6, AvgFollows2: 14.3,
		EdgeKeep1: 0.7, EdgeKeep2: 0.6, NoiseEdgeFrac: 0.2,
		PostsPerUser1: 20, PostsPerUser2: 9,
		Locations: 8000, TimeBuckets: 730,
		Words: 3000, WordsPerPost: 2,
		RoutineSize: 4, Dislocation: 0.35, ZipfS: 1.4,
		CommunityCombos: 800, CommunityShare: 0.3,
	}
}

// XLScale is ~10× FullScale in users, follow links, and anchors — the
// partitioned-alignment stress preset, far past what one monolithic
// training loop handles comfortably. The attribute side is deliberately
// de-skewed relative to the crawl presets: with Zipf-popular venues the
// head venue is visited by a constant fraction of users, so its
// cross-network co-occurrence block grows quadratically with the user
// count — crawl-level skew at 10× the users means hundred-GB count
// matrices before the first training iteration. Flattening the
// popularity head (ZipfS 1.05, Dislocation 0.2) and oversizing the
// vocabularies keeps attribute evidence per user pair at a realistic
// level while bounding count-matrix density — the same tractability
// argument DESIGN.md §3 makes for capping post volume. This preset
// measures scale, not the dislocation confound (the crawl-shaped
// presets keep that). Words are disabled (the evaluation never uses
// them). Generation takes minutes; counting the standard library over
// the pair takes tens of GB.
func XLScale() Config {
	return Config{
		Seed: 2019, Users1: 52230, Users2: 53920, AnchorCount: 32820,
		AvgFollows1: 31.6, AvgFollows2: 14.3,
		EdgeKeep1: 0.7, EdgeKeep2: 0.6, NoiseEdgeFrac: 0.2,
		PostsPerUser1: 12, PostsPerUser2: 6,
		Locations: 200000, TimeBuckets: 20000,
		Words: 0, WordsPerPost: 0,
		RoutineSize: 4, Dislocation: 0.2, ZipfS: 1.05,
		CommunityCombos: 8000, CommunityShare: 0.3,
	}
}

// combo is one (location, timestamp) routine entry.
type combo struct {
	loc, ts int
}

// Generate synthesizes an aligned pair from the configuration.
func Generate(cfg Config) (*hetnet.AlignedPair, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Latent population: [0, AnchorCount) shared, then net1-only, then
	// net2-only.
	only1 := cfg.Users1 - cfg.AnchorCount
	only2 := cfg.Users2 - cfg.AnchorCount
	latentN := cfg.AnchorCount + only1 + only2

	// membership[u] & 1 → in net1; & 2 → in net2.
	membership := make([]byte, latentN)
	for u := 0; u < latentN; u++ {
		switch {
		case u < cfg.AnchorCount:
			membership[u] = 3
		case u < cfg.AnchorCount+only1:
			membership[u] = 1
		default:
			membership[u] = 2
		}
	}

	// Latent social graph by preferential attachment. The latent mean
	// out-degree is inflated so each network reaches its target after
	// subsampling by EdgeKeep.
	latentDeg := cfg.AvgFollows1 / cfg.EdgeKeep1
	if d2 := cfg.AvgFollows2 / cfg.EdgeKeep2; d2 > latentDeg {
		latentDeg = d2
	}
	latent := growLatentGraph(rng, latentN, latentDeg)

	// Attribute popularity and per-user routines. Routine combos are
	// drawn uniformly — a routine is personal, not popular — while the
	// dislocated noise below draws from Zipf popularity. Aligned users
	// therefore share distinctive joint (location, timestamp) combos,
	// and unrelated users co-occur mostly through popular venues and
	// peak hours: the paper's dislocation confound.
	locZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Locations-1))
	tsZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.TimeBuckets-1))
	communityPool := make([]combo, cfg.CommunityCombos)
	for k := range communityPool {
		communityPool[k] = combo{loc: rng.Intn(cfg.Locations), ts: rng.Intn(cfg.TimeBuckets)}
	}
	routines := make([][]combo, latentN)
	for u := range routines {
		r := make([]combo, cfg.RoutineSize)
		for k := range r {
			if len(communityPool) > 0 && rng.Float64() < cfg.CommunityShare {
				r[k] = communityPool[rng.Intn(len(communityPool))]
			} else {
				r[k] = combo{loc: rng.Intn(cfg.Locations), ts: rng.Intn(cfg.TimeBuckets)}
			}
		}
		routines[u] = r
	}

	var wordZipf *rand.Zipf
	if cfg.Words > 0 {
		wordZipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Words-1))
	}

	g1 := hetnet.NewSocialNetwork("net1")
	g2 := hetnet.NewSocialNetwork("net2")

	// User index assignment per network, in latent order: anchored users
	// get the same relative order in both networks, which keeps anchor
	// bookkeeping trivial without leaking identity (IDs differ).
	idx1 := make([]int, latentN)
	idx2 := make([]int, latentN)
	for u := 0; u < latentN; u++ {
		idx1[u], idx2[u] = -1, -1
		if membership[u]&1 != 0 {
			idx1[u] = g1.AddNode(hetnet.User, fmt.Sprintf("t_user_%d", u))
		}
		if membership[u]&2 != 0 {
			idx2[u] = g2.AddNode(hetnet.User, fmt.Sprintf("f_user_%d", u))
		}
	}

	if err := emitFollows(rng, g1, latent, membership, idx1, 1, cfg.EdgeKeep1, cfg.NoiseEdgeFrac); err != nil {
		return nil, err
	}
	if err := emitFollows(rng, g2, latent, membership, idx2, 2, cfg.EdgeKeep2, cfg.NoiseEdgeFrac); err != nil {
		return nil, err
	}

	emit := func(g *hetnet.Network, prefix string, u, userIdx int, meanPosts float64) error {
		n := poisson(rng, meanPosts)
		for p := 0; p < n; p++ {
			postIdx := g.AddNode(hetnet.Post, fmt.Sprintf("%s_post_%d_%d", prefix, u, p))
			if err := g.AddLink(hetnet.Write, userIdx, postIdx); err != nil {
				return err
			}
			var loc, ts int
			if rng.Float64() < cfg.Dislocation {
				loc = int(locZipf.Uint64())
				ts = int(tsZipf.Uint64())
			} else {
				cb := routines[u][rng.Intn(len(routines[u]))]
				loc, ts = cb.loc, cb.ts
			}
			locIdx := g.AddNode(hetnet.Location, fmt.Sprintf("L%d", loc))
			if err := g.AddLink(hetnet.Checkin, postIdx, locIdx); err != nil {
				return err
			}
			tsIdx := g.AddNode(hetnet.Timestamp, fmt.Sprintf("T%d", ts))
			if err := g.AddLink(hetnet.At, postIdx, tsIdx); err != nil {
				return err
			}
			if wordZipf != nil {
				for w := poisson(rng, cfg.WordsPerPost); w > 0; w-- {
					wIdx := g.AddNode(hetnet.Word, fmt.Sprintf("W%d", wordZipf.Uint64()))
					if err := g.AddLink(hetnet.Contains, postIdx, wIdx); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for u := 0; u < latentN; u++ {
		if idx1[u] >= 0 {
			if err := emit(g1, "t", u, idx1[u], cfg.PostsPerUser1); err != nil {
				return nil, err
			}
		}
		if idx2[u] >= 0 {
			if err := emit(g2, "f", u, idx2[u], cfg.PostsPerUser2); err != nil {
				return nil, err
			}
		}
	}

	pair := hetnet.NewAlignedPair(g1, g2)
	for u := 0; u < cfg.AnchorCount; u++ {
		if err := pair.AddAnchor(idx1[u], idx2[u]); err != nil {
			return nil, err
		}
	}
	if err := pair.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: generated pair invalid: %w", err)
	}
	return pair, nil
}

// latentEdge is a directed latent follow edge.
type latentEdge struct {
	from, to int
}

// growLatentGraph grows a directed preferential-attachment graph: each
// user emits Poisson(meanDeg) follows whose targets are drawn
// proportionally to in-degree+1 (the repeated-endpoint-list trick),
// giving heavy-tailed popularity.
func growLatentGraph(rng *rand.Rand, n int, meanDeg float64) []latentEdge {
	var edges []latentEdge
	// Target pool: every node once (the +1 smoothing), plus one entry per
	// received edge.
	pool := make([]int, 0, n*4)
	for u := 0; u < n; u++ {
		pool = append(pool, u)
	}
	seen := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		k := poisson(rng, meanDeg)
		for e := 0; e < k; e++ {
			v := pool[rng.Intn(len(pool))]
			if v == u || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, latentEdge{from: u, to: v})
			pool = append(pool, v)
		}
	}
	return edges
}

// emitFollows projects the latent edges into one network and adds noise
// edges.
func emitFollows(rng *rand.Rand, g *hetnet.Network, latent []latentEdge, membership []byte, idx []int, netBit byte, keep, noiseFrac float64) error {
	kept := 0
	for _, e := range latent {
		if membership[e.from]&netBit == 0 || membership[e.to]&netBit == 0 {
			continue
		}
		if rng.Float64() >= keep {
			continue
		}
		if err := g.AddLink(hetnet.Follow, idx[e.from], idx[e.to]); err != nil {
			return err
		}
		kept++
	}
	users := g.NodeCount(hetnet.User)
	if users < 2 {
		return nil
	}
	for e := int(float64(kept) * noiseFrac); e > 0; e-- {
		a, b := rng.Intn(users), rng.Intn(users)
		if a == b {
			continue
		}
		if err := g.AddLink(hetnet.Follow, a, b); err != nil {
			return err
		}
	}
	return nil
}

// poisson samples a Poisson variate by Knuth's method, adequate for the
// small means used here.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// For large means, fall back to a normal approximation to avoid the
	// O(mean) loop cost dominating generation.
	if mean > 50 {
		v := int(mean + rng.NormFloat64()*math.Sqrt(mean) + 0.5)
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
