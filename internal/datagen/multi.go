package datagen

import (
	"fmt"
	"math/rand"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// MultiDataset is a family of n networks generated from one latent
// population: the first AnchorCount latent users exist in every network
// (the multi-way ground truth), and each network additionally has its
// own exclusive users.
type MultiDataset struct {
	Nets []*hetnet.Network
	// SharedUsers[u][k] is the user index of shared latent user u in
	// network k; every shared user is present in every network.
	SharedUsers [][]int
}

// GenerateMulti synthesizes n ≥ 2 aligned networks with the same
// generative model as Generate: one latent social graph subsampled per
// network (EdgeKeep1 for the first network, EdgeKeep2 for the rest), one
// routine per latent user shared by all of that user's accounts, and
// per-network posts. Every network has Users1 users, AnchorCount of
// which are shared across all n. Supports n ≤ 16.
func GenerateMulti(cfg Config, n int) (*MultiDataset, error) {
	if n < 2 || n > 16 {
		return nil, fmt.Errorf("datagen: GenerateMulti supports 2..16 networks, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	perNetOwn := cfg.Users1 - cfg.AnchorCount
	latentN := cfg.AnchorCount + n*perNetOwn

	membership := make([]uint16, latentN)
	for u := 0; u < latentN; u++ {
		if u < cfg.AnchorCount {
			membership[u] = 1<<uint(n) - 1 // in every network
			continue
		}
		k := (u - cfg.AnchorCount) / perNetOwn
		membership[u] = 1 << uint(k)
	}

	keep := func(k int) float64 {
		if k == 0 {
			return cfg.EdgeKeep1
		}
		return cfg.EdgeKeep2
	}
	latentDeg := 0.0
	for k := 0; k < n; k++ {
		if d := cfg.AvgFollows1 / keep(k); d > latentDeg {
			latentDeg = d
		}
	}
	latent := growLatentGraph(rng, latentN, latentDeg)

	locZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Locations-1))
	tsZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.TimeBuckets-1))
	communityPool := make([]combo, cfg.CommunityCombos)
	for k := range communityPool {
		communityPool[k] = combo{loc: rng.Intn(cfg.Locations), ts: rng.Intn(cfg.TimeBuckets)}
	}
	routines := make([][]combo, latentN)
	for u := range routines {
		r := make([]combo, cfg.RoutineSize)
		for k := range r {
			if len(communityPool) > 0 && rng.Float64() < cfg.CommunityShare {
				r[k] = communityPool[rng.Intn(len(communityPool))]
			} else {
				r[k] = combo{loc: rng.Intn(cfg.Locations), ts: rng.Intn(cfg.TimeBuckets)}
			}
		}
		routines[u] = r
	}

	ds := &MultiDataset{
		Nets:        make([]*hetnet.Network, n),
		SharedUsers: make([][]int, cfg.AnchorCount),
	}
	idx := make([][]int, n) // idx[k][u] = user index of latent u in net k
	for k := 0; k < n; k++ {
		ds.Nets[k] = hetnet.NewSocialNetwork(fmt.Sprintf("net%d", k+1))
		idx[k] = make([]int, latentN)
		for u := 0; u < latentN; u++ {
			idx[k][u] = -1
			if membership[u]&(1<<uint(k)) != 0 {
				idx[k][u] = ds.Nets[k].AddNode(hetnet.User, fmt.Sprintf("n%d_user_%d", k, u))
			}
		}
	}
	for u := 0; u < cfg.AnchorCount; u++ {
		row := make([]int, n)
		for k := 0; k < n; k++ {
			row[k] = idx[k][u]
		}
		ds.SharedUsers[u] = row
	}

	// Follows: project the latent edges into each network. The bitmask
	// byte type of emitFollows is per-pair; inline the projection here.
	for k := 0; k < n; k++ {
		g := ds.Nets[k]
		kept := 0
		for _, e := range latent {
			if membership[e.from]&(1<<uint(k)) == 0 || membership[e.to]&(1<<uint(k)) == 0 {
				continue
			}
			if rng.Float64() >= keep(k) {
				continue
			}
			if err := g.AddLink(hetnet.Follow, idx[k][e.from], idx[k][e.to]); err != nil {
				return nil, err
			}
			kept++
		}
		users := g.NodeCount(hetnet.User)
		for e := int(float64(kept) * cfg.NoiseEdgeFrac); e > 0 && users >= 2; e-- {
			a, b := rng.Intn(users), rng.Intn(users)
			if a == b {
				continue
			}
			if err := g.AddLink(hetnet.Follow, a, b); err != nil {
				return nil, err
			}
		}
	}

	// Posts with shared routines.
	for k := 0; k < n; k++ {
		g := ds.Nets[k]
		for u := 0; u < latentN; u++ {
			if idx[k][u] < 0 {
				continue
			}
			nPosts := poisson(rng, cfg.PostsPerUser1)
			for p := 0; p < nPosts; p++ {
				postIdx := g.AddNode(hetnet.Post, fmt.Sprintf("n%d_post_%d_%d", k, u, p))
				if err := g.AddLink(hetnet.Write, idx[k][u], postIdx); err != nil {
					return nil, err
				}
				var loc, ts int
				if rng.Float64() < cfg.Dislocation {
					loc = int(locZipf.Uint64())
					ts = int(tsZipf.Uint64())
				} else {
					cb := routines[u][rng.Intn(len(routines[u]))]
					loc, ts = cb.loc, cb.ts
				}
				locIdx := g.AddNode(hetnet.Location, fmt.Sprintf("L%d", loc))
				if err := g.AddLink(hetnet.Checkin, postIdx, locIdx); err != nil {
					return nil, err
				}
				tsIdx := g.AddNode(hetnet.Timestamp, fmt.Sprintf("T%d", ts))
				if err := g.AddLink(hetnet.At, postIdx, tsIdx); err != nil {
					return nil, err
				}
			}
		}
	}
	return ds, nil
}
