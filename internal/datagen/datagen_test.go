package datagen

import (
	"math"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

func TestConfigValidation(t *testing.T) {
	base := Tiny()
	if err := base.Validate(); err != nil {
		t.Fatalf("Tiny invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"no users", func(c *Config) { c.Users1 = 0 }},
		{"anchors exceed users", func(c *Config) { c.AnchorCount = c.Users2 + 1 }},
		{"negative follows", func(c *Config) { c.AvgFollows1 = -1 }},
		{"bad keep", func(c *Config) { c.EdgeKeep1 = 0 }},
		{"keep over one", func(c *Config) { c.EdgeKeep2 = 1.5 }},
		{"negative noise", func(c *Config) { c.NoiseEdgeFrac = -0.1 }},
		{"negative posts", func(c *Config) { c.PostsPerUser1 = -1 }},
		{"no locations", func(c *Config) { c.Locations = 0 }},
		{"negative words", func(c *Config) { c.Words = -1 }},
		{"zero routine", func(c *Config) { c.RoutineSize = 0 }},
		{"bad dislocation", func(c *Config) { c.Dislocation = 1.5 }},
		{"bad zipf", func(c *Config) { c.ZipfS = 1 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := base
			m.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Tiny()
	pair, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := pair.G1.NodeCount(hetnet.User); got != cfg.Users1 {
		t.Errorf("net1 users = %d, want %d", got, cfg.Users1)
	}
	if got := pair.G2.NodeCount(hetnet.User); got != cfg.Users2 {
		t.Errorf("net2 users = %d, want %d", got, cfg.Users2)
	}
	if got := len(pair.Anchors); got != cfg.AnchorCount {
		t.Errorf("anchors = %d, want %d", got, cfg.AnchorCount)
	}
	if err := pair.Validate(); err != nil {
		t.Errorf("generated pair invalid: %v", err)
	}
	// Follow volumes should be within a factor of the Poisson target.
	f1 := pair.G1.LinkCount(hetnet.Follow)
	target1 := float64(cfg.Users1) * cfg.AvgFollows1
	if f1 < int(target1*0.4) || f1 > int(target1*2.5) {
		t.Errorf("net1 follows = %d, target ≈ %.0f", f1, target1)
	}
	// Posts exist and carry both attribute links.
	p1 := pair.G1.NodeCount(hetnet.Post)
	if p1 == 0 {
		t.Fatal("no posts generated")
	}
	if pair.G1.LinkCount(hetnet.Checkin) != p1 || pair.G1.LinkCount(hetnet.At) != p1 {
		t.Errorf("posts %d, checkins %d, at %d — want equal",
			p1, pair.G1.LinkCount(hetnet.Checkin), pair.G1.LinkCount(hetnet.At))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Tiny()
	p1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p1.G1.Adjacency(hetnet.Follow)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p2.G1.Adjacency(hetnet.Follow)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Error("same seed produced different follow graphs")
	}
	if len(p1.Anchors) != len(p2.Anchors) {
		t.Error("same seed produced different anchors")
	}
	cfg2 := cfg
	cfg2.Seed = 999
	p3, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := p3.G1.Adjacency(hetnet.Follow)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Equal(a3) {
		t.Error("different seeds produced identical follow graphs")
	}
}

func TestHeavyTailedPopularity(t *testing.T) {
	pair, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	adj, err := pair.G1.Adjacency(hetnet.Follow)
	if err != nil {
		t.Fatal(err)
	}
	// In-degree spread: preferential attachment should give max ≫ mean.
	inDeg := adj.ColSums()
	var sum, max float64
	for _, d := range inDeg {
		sum += d
		if d > max {
			max = d
		}
	}
	mean := sum / float64(len(inDeg))
	if max < 4*mean {
		t.Errorf("max in-degree %v < 4×mean %v: popularity not heavy-tailed", max, mean)
	}
}

// TestAnchoredPairsCarrySignal verifies the generator's core property:
// ground-truth anchored pairs have far more joint-attribute (Ψ^a²) and
// common-anchored-neighbor (P1) support than random non-anchored pairs.
func TestAnchoredPairsCarrySignal(t *testing.T) {
	pair, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	c, err := metadiag.NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	psiA2, err := c.Count(schema.AttributeDiagram(hetnet.At, hetnet.Checkin))
	if err != nil {
		t.Fatal(err)
	}
	var anchorMean, offMean float64
	for _, a := range pair.Anchors {
		anchorMean += psiA2.At(a.I, a.J)
	}
	anchorMean /= float64(len(pair.Anchors))
	truth := pair.AnchorSet()
	n := 0
	for i := 0; i < pair.G1.NodeCount(hetnet.User); i++ {
		for j := 0; j < pair.G2.NodeCount(hetnet.User); j++ {
			if truth[hetnet.Key(i, j)] {
				continue
			}
			offMean += psiA2.At(i, j)
			n++
		}
	}
	offMean /= float64(n)
	if anchorMean <= 2*offMean {
		t.Errorf("Ψ^a² anchored mean %v not well above off-anchor mean %v", anchorMean, offMean)
	}
}

// TestDislocationKnob verifies that raising Dislocation erodes the joint
// attribute signal while marginal co-occurrence (P5) persists.
func TestDislocationKnob(t *testing.T) {
	sharp := Tiny()
	sharp.Dislocation = 0
	blurry := Tiny()
	blurry.Dislocation = 1
	ratio := func(cfg Config) (joint, marginal float64) {
		pair, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := metadiag.NewCounter(pair)
		if err != nil {
			t.Fatal(err)
		}
		psi, err := c.Count(schema.AttributeDiagram(hetnet.At, hetnet.Checkin))
		if err != nil {
			t.Fatal(err)
		}
		p5, err := c.Count(schema.AttributePath(hetnet.At).AsDiagram())
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range pair.Anchors {
			joint += psi.At(a.I, a.J)
			marginal += p5.At(a.I, a.J)
		}
		return joint, marginal
	}
	jSharp, _ := ratio(sharp)
	jBlurry, mBlurry := ratio(blurry)
	if jSharp <= jBlurry {
		t.Errorf("joint signal should shrink with dislocation: sharp=%v blurry=%v", jSharp, jBlurry)
	}
	if mBlurry == 0 {
		t.Error("marginal co-occurrence should survive full dislocation")
	}
}

func TestWordsGeneration(t *testing.T) {
	cfg := Tiny()
	cfg.Words = 30
	cfg.WordsPerPost = 2
	pair, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pair.G1.LinkCount(hetnet.Contains) == 0 {
		t.Error("expected contains links with Words > 0")
	}
	if pair.G1.NodeCount(hetnet.Word) == 0 {
		t.Error("expected word nodes")
	}
}

func TestPresetsValid(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"Tiny", Tiny()},
		{"Small", Small()},
		{"PaperShape", PaperShape()},
		{"FullScale", FullScale()},
	} {
		if err := tc.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestPoisson(t *testing.T) {
	pair, err := Generate(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Indirect check of post volume ≈ users × mean.
	cfg := Tiny()
	want := float64(cfg.Users1) * cfg.PostsPerUser1
	got := float64(pair.G1.NodeCount(hetnet.Post))
	if math.Abs(got-want) > want*0.5 {
		t.Errorf("posts = %v, want ≈ %v", got, want)
	}
}
