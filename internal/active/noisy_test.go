package active

import (
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

type constOracle float64

func (c constOracle) Label(hetnet.Anchor) float64 { return float64(c) }

func TestNoisyOracleFlipRate(t *testing.T) {
	inner := constOracle(1)
	o := &NoisyOracle{Inner: inner, FlipProb: 0.3, Seed: 5}
	flips := 0
	n := 5000
	for i := 0; i < n; i++ {
		if o.Label(hetnet.Anchor{I: i, J: i + 1}) == 0 {
			flips++
		}
	}
	rate := float64(flips) / float64(n)
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("flip rate = %.3f, want ≈ 0.3", rate)
	}
}

func TestNoisyOracleDeterministicPerLink(t *testing.T) {
	o := &NoisyOracle{Inner: constOracle(1), FlipProb: 0.5, Seed: 9}
	a := hetnet.Anchor{I: 3, J: 7}
	first := o.Label(a)
	for i := 0; i < 10; i++ {
		if o.Label(a) != first {
			t.Fatal("repeated queries must agree")
		}
	}
}

func TestNoisyOracleZeroNoise(t *testing.T) {
	o := &NoisyOracle{Inner: constOracle(1), FlipProb: 0, Seed: 1}
	for i := 0; i < 100; i++ {
		if o.Label(hetnet.Anchor{I: i, J: i}) != 1 {
			t.Fatal("zero flip probability must pass truth through")
		}
	}
}

func TestNoisyOracleSeedChangesPattern(t *testing.T) {
	o1 := &NoisyOracle{Inner: constOracle(1), FlipProb: 0.5, Seed: 1}
	o2 := &NoisyOracle{Inner: constOracle(1), FlipProb: 0.5, Seed: 2}
	same := 0
	n := 500
	for i := 0; i < n; i++ {
		a := hetnet.Anchor{I: i, J: i + 1}
		if o1.Label(a) == o2.Label(a) {
			same++
		}
	}
	if same == n {
		t.Error("different seeds should disagree on some links")
	}
}
