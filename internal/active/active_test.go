package active

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// conflictState builds the canonical conflict scenario:
//
//	idx 0: (0,0) score 0.90 label 1   strong positive
//	idx 1: (1,1) score 0.58 label 1   near-tie positive  (l′ for idx 3)
//	idx 2: (2,2) score 0.20 label 1   weak positive      (l″ for idx 3)
//	idx 3: (1,2) score 0.60 label 0   the false negative candidate
//	idx 4: (0,3) score 0.55 label 0   one conflict only → not a candidate
//	idx 5: (3,3) score 0.70 label 0   no conflicts → not a candidate
func conflictState() *State {
	return &State{
		Links: []hetnet.Anchor{
			{I: 0, J: 0}, {I: 1, J: 1}, {I: 2, J: 2},
			{I: 1, J: 2}, {I: 0, J: 3}, {I: 3, J: 3},
		},
		Scores: []float64{0.90, 0.58, 0.20, 0.60, 0.55, 0.70},
		Labels: []float64{1, 1, 1, 0, 0, 0},
	}
}

func TestTruthOracle(t *testing.T) {
	g1 := hetnet.NewSocialNetwork("a")
	g2 := hetnet.NewSocialNetwork("b")
	for i := 0; i < 3; i++ {
		g1.AddNode(hetnet.User, string(rune('a'+i)))
		g2.AddNode(hetnet.User, string(rune('a'+i)))
	}
	pair := hetnet.NewAlignedPair(g1, g2)
	if err := pair.AddAnchor(0, 1); err != nil {
		t.Fatal(err)
	}
	o := NewTruthOracle(pair)
	if o.Label(hetnet.Anchor{I: 0, J: 1}) != 1 {
		t.Error("true anchor should label 1")
	}
	if o.Label(hetnet.Anchor{I: 0, J: 0}) != 0 {
		t.Error("non-anchor should label 0")
	}
	counting := &CountingOracle{Inner: o}
	counting.Label(hetnet.Anchor{I: 0, J: 1})
	counting.Label(hetnet.Anchor{I: 1, J: 1})
	if counting.Queries() != 2 {
		t.Errorf("Queries = %d", counting.Queries())
	}
}

// CountingOracle is shared across concurrent per-partition training
// pipelines; its counter must not race. Run under -race.
func TestCountingOracleConcurrent(t *testing.T) {
	o := &CountingOracle{Inner: constOracle(0)}
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Label(hetnet.Anchor{I: i, J: i})
			}
		}()
	}
	wg.Wait()
	if got := o.Queries(); got != goroutines*per {
		t.Errorf("Queries = %d, want %d", got, goroutines*per)
	}
}

func TestConflictSelectsFalseNegative(t *testing.T) {
	st := conflictState()
	s := Conflict{CloseTol: 0.05, Margin: 0.05}
	picks := s.Select(st, 1, rand.New(rand.NewSource(1)))
	if len(picks) != 1 || picks[0] != 3 {
		t.Errorf("picks = %v, want [3]", picks)
	}
}

func TestConflictFallbackFillsBudget(t *testing.T) {
	st := conflictState()
	s := Conflict{CloseTol: 0.05, Margin: 0.05}
	picks := s.Select(st, 3, rand.New(rand.NewSource(1)))
	if len(picks) != 3 {
		t.Fatalf("picks = %v, want 3 entries", picks)
	}
	if picks[0] != 3 {
		t.Errorf("first pick = %d, want the conflict candidate 3", picks[0])
	}
	// Fallback: highest-scored remaining negatives, 5 (0.70) then 4 (0.55).
	if picks[1] != 5 || picks[2] != 4 {
		t.Errorf("fallback picks = %v, want [5 4]", picks[1:])
	}
}

func TestConflictRequiresWeakBlocker(t *testing.T) {
	st := conflictState()
	// Make the weak positive strong: no l″ with ŷ_l − ŷ_l″ ≥ margin.
	st.Scores[2] = 0.59
	s := Conflict{CloseTol: 0.05, Margin: 0.05}
	picks := s.Select(st, 1, rand.New(rand.NewSource(1)))
	// idx 3 no longer qualifies; fallback gives the top-scored negative 5.
	if len(picks) != 1 || picks[0] == 3 {
		t.Errorf("picks = %v, should not contain 3", picks)
	}
}

func TestConflictRequiresNearTie(t *testing.T) {
	st := conflictState()
	// Push l′ far above l: |ŷ_l′ − ŷ_l| > closeTol on both conflicts.
	st.Scores[1] = 0.90
	s := Conflict{CloseTol: 0.05, Margin: 0.05}
	picks := s.Select(st, 1, rand.New(rand.NewSource(1)))
	if len(picks) == 1 && picks[0] == 3 {
		t.Error("idx 3 should not qualify without a near-tie blocker")
	}
}

func TestConflictSymmetricSides(t *testing.T) {
	// l′ on the J side, l″ on the I side.
	st := &State{
		Links: []hetnet.Anchor{
			{I: 1, J: 1}, // weak positive (l″), shares I=... wait: shares nothing yet
			{I: 2, J: 2}, // near-tie positive (l′)
			{I: 1, J: 2}, // candidate: I=1 hits idx0, J=2 hits idx1
		},
		Scores: []float64{0.15, 0.62, 0.60},
		Labels: []float64{1, 1, 0},
	}
	s := Conflict{CloseTol: 0.05, Margin: 0.05}
	picks := s.Select(st, 1, rand.New(rand.NewSource(1)))
	if len(picks) != 1 || picks[0] != 2 {
		t.Errorf("picks = %v, want [2]", picks)
	}
}

func TestConflictDefaults(t *testing.T) {
	st := conflictState()
	var s Conflict
	picks := s.Select(st, 1, rand.New(rand.NewSource(1)))
	if len(picks) != 1 || picks[0] != 3 {
		t.Errorf("zero-value Conflict should use 0.05 defaults, picks = %v", picks)
	}
	if s.Name() != "conflict" {
		t.Error("Name wrong")
	}
}

func TestRandomStrategy(t *testing.T) {
	st := conflictState()
	r := Random{}
	if r.Name() != "random" {
		t.Error("Name wrong")
	}
	p1 := r.Select(st, 4, rand.New(rand.NewSource(5)))
	p2 := r.Select(st, 4, rand.New(rand.NewSource(5)))
	if len(p1) != 4 {
		t.Fatalf("picks = %v", p1)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed should give same picks")
		}
	}
	// Oversized k clamps.
	if got := r.Select(st, 100, rand.New(rand.NewSource(5))); len(got) != len(st.Links) {
		t.Errorf("oversized k selected %d", len(got))
	}
	// No duplicates.
	seen := map[int]bool{}
	for _, idx := range p1 {
		if seen[idx] {
			t.Fatal("duplicate pick")
		}
		seen[idx] = true
	}
}

func TestUncertaintyStrategy(t *testing.T) {
	st := conflictState()
	u := Uncertainty{}
	if u.Name() != "uncertainty" {
		t.Error("Name wrong")
	}
	picks := u.Select(st, 2, rand.New(rand.NewSource(1)))
	// Distances to 0.5: idx0 .4, idx1 .08, idx2 .3, idx3 .1, idx4 .05, idx5 .2
	if len(picks) != 2 || picks[0] != 4 || picks[1] != 1 {
		t.Errorf("picks = %v, want [4 1]", picks)
	}
}

// Regression: Uncertainty used to hardcode its 0.5 boundary, ignoring
// the training loop's configured threshold. With State.Threshold set it
// must query around the configured boundary instead.
func TestUncertaintyFollowsStateThreshold(t *testing.T) {
	st := conflictState()
	thr := 0.7
	st.Threshold = &thr
	picks := Uncertainty{}.Select(st, 2, rand.New(rand.NewSource(1)))
	// Distances to 0.7: idx0 .2, idx1 .12, idx2 .5, idx3 .1, idx4 .15, idx5 0
	if len(picks) != 2 || picks[0] != 5 || picks[1] != 3 {
		t.Errorf("picks = %v, want [5 3] (nearest 0.7)", picks)
	}
	// An explicit 0 boundary is honored, not replaced by the ½ default.
	zero := 0.0
	st.Threshold = &zero
	picks = Uncertainty{}.Select(st, 1, rand.New(rand.NewSource(1)))
	// Distances to 0: idx2 .2 is the closest score.
	if len(picks) != 1 || picks[0] != 2 {
		t.Errorf("picks = %v, want [2] (nearest 0)", picks)
	}
	// A strategy-level override still wins over the state boundary.
	st.Threshold = &thr
	picks = Uncertainty{Threshold: 0.9}.Select(st, 1, rand.New(rand.NewSource(1)))
	// Distances to 0.9: idx0 0 is the closest score.
	if len(picks) != 1 || picks[0] != 0 {
		t.Errorf("picks = %v, want [0] (nearest 0.9 override)", picks)
	}
}
