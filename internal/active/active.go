// Package active implements the label-query side of ActiveIter: the
// oracle abstraction and the query strategies of Section III-C-3 /
// III-D External Iteration Step (2).
//
// The paper's strategy targets mis-classified false negatives: links
// currently labeled 0 that (a) lost the greedy selection to a
// conflicting positive by a whisker (ŷ_l' ≈ ŷ_l) and (b) block — via
// their other endpoint — a much weaker selected positive (ŷ_l ≫ ŷ_l” >
// 0). Querying such a link pays twice: its own label is corrected, and a
// positive answer evicts the weak conflicting positive l”.
package active

import (
	"math/rand"
	"sort"
	"sync/atomic"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// Oracle answers ground-truth label queries for candidate anchor links.
type Oracle interface {
	// Label returns 1 when the link is a true anchor, 0 otherwise.
	Label(a hetnet.Anchor) float64
}

// TruthOracle answers from a ground-truth anchor set — the experimental
// stand-in for the human labeler.
type TruthOracle struct {
	set map[int64]bool
}

// NewTruthOracle builds an oracle over the pair's full anchor set.
func NewTruthOracle(pair *hetnet.AlignedPair) *TruthOracle {
	return &TruthOracle{set: pair.AnchorSet()}
}

// Label implements Oracle.
func (o *TruthOracle) Label(a hetnet.Anchor) float64 {
	if o.set[hetnet.Key(a.I, a.J)] {
		return 1
	}
	return 0
}

// CountingOracle wraps an oracle and counts queries, for budget audits.
// Safe for concurrent use: the partitioned and distributed paths share
// one oracle across per-shard training pipelines.
type CountingOracle struct {
	Inner   Oracle
	queries atomic.Int64
}

// Label implements Oracle.
func (o *CountingOracle) Label(a hetnet.Anchor) float64 {
	o.queries.Add(1)
	return o.Inner.Label(a)
}

// Queries returns the number of Label calls so far.
func (o *CountingOracle) Queries() int {
	return int(o.queries.Load())
}

// NoisyOracle wraps an oracle and flips each answer independently with
// probability FlipProb — a model of imperfect human labelers. Answers
// are deterministic per link (repeated queries agree), driven by Seed.
type NoisyOracle struct {
	Inner    Oracle
	FlipProb float64
	Seed     int64
}

// Label implements Oracle.
func (o *NoisyOracle) Label(a hetnet.Anchor) float64 {
	truth := o.Inner.Label(a)
	// Per-link deterministic noise: hash the link with the seed.
	h := uint64(hetnet.Key(a.I, a.J)) ^ uint64(o.Seed)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	if float64(h%1_000_000)/1_000_000 < o.FlipProb {
		return 1 - truth
	}
	return truth
}

// State is the model state a strategy inspects when choosing queries:
// the unlabeled links U \ U_q with their current scores ŷ and inferred
// labels y, plus the training loop's resolved selection threshold.
type State struct {
	Links  []hetnet.Anchor
	Scores []float64
	Labels []float64
	// Threshold is the decision boundary the training loop selects
	// against; nil when the caller has no boundary (strategies fall back
	// to the paper's ½). An explicit 0 is a real boundary, not "unset".
	Threshold *float64
}

// Strategy selects up to k unlabeled links (by index into State.Links)
// to query. Implementations must not mutate the state.
type Strategy interface {
	Name() string
	Select(st *State, k int, rng *rand.Rand) []int
}

// Conflict is the paper's query strategy. With U⁺/U⁻ the links inferred
// positive/negative, the candidate set is
//
//	C = { l ∈ U⁻ : ∃ l′,l″ ∈ U⁺ conflicting with l,
//	      |ŷ_l′ − ŷ_l| ≤ CloseTol  ∧  ŷ_l − ŷ_l″ ≥ Margin  ∧  ŷ_l″ > 0 }
//
// sorted by ŷ_l − ŷ_l″ descending; the top k are queried. When C has
// fewer than k members the remaining budget falls back to the
// highest-scored negatives (the "large positive score" false-negative
// intuition without the conflict requirement), so the configured budget
// is always spent.
type Conflict struct {
	// CloseTol is the "∼" threshold; the paper uses 0.05.
	CloseTol float64
	// Margin is the "≫" threshold; defaults to CloseTol when zero.
	Margin float64
}

// Name implements Strategy.
func (c Conflict) Name() string { return "conflict" }

// Select implements Strategy.
func (c Conflict) Select(st *State, k int, rng *rand.Rand) []int {
	closeTol := c.CloseTol
	if closeTol <= 0 {
		closeTol = 0.05
	}
	margin := c.Margin
	if margin <= 0 {
		margin = closeTol
	}
	// Positives form a partial matching: at most one per endpoint.
	posAtI := make(map[int]int)
	posAtJ := make(map[int]int)
	for idx, lab := range st.Labels {
		if lab == 1 {
			posAtI[st.Links[idx].I] = idx
			posAtJ[st.Links[idx].J] = idx
		}
	}
	type cand struct {
		idx  int
		gain float64 // ŷ_l − ŷ_l″, the sort key
	}
	var cands []cand
	taken := make(map[int]bool)
	for idx, lab := range st.Labels {
		if lab != 0 {
			continue
		}
		l := st.Links[idx]
		conflicts := make([]int, 0, 2)
		if p, ok := posAtI[l.I]; ok {
			conflicts = append(conflicts, p)
		}
		if p, ok := posAtJ[l.J]; ok && (len(conflicts) == 0 || conflicts[0] != p) {
			conflicts = append(conflicts, p)
		}
		if len(conflicts) < 2 {
			continue // need both a near-tie blocker l′ and a weak blocker l″
		}
		yl := st.Scores[idx]
		bestGain, found := 0.0, false
		for _, pi := range conflicts {
			for _, pj := range conflicts {
				if pi == pj {
					continue
				}
				yp, yw := st.Scores[pi], st.Scores[pj]
				if yw <= 0 {
					continue
				}
				if absF(yp-yl) <= closeTol && yl-yw >= margin {
					if g := yl - yw; !found || g > bestGain {
						bestGain, found = g, true
					}
				}
			}
		}
		if found {
			cands = append(cands, cand{idx: idx, gain: bestGain})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].gain != cands[b].gain {
			return cands[a].gain > cands[b].gain
		}
		return cands[a].idx < cands[b].idx
	})
	out := make([]int, 0, k)
	for _, c := range cands {
		if len(out) == k {
			break
		}
		out = append(out, c.idx)
		taken[c.idx] = true
	}
	if len(out) < k {
		out = fillTopScoredNegatives(st, k, out, taken)
	}
	return out
}

// fillTopScoredNegatives appends the highest-scored unqueried negatives
// until len(out) == k or candidates run out.
func fillTopScoredNegatives(st *State, k int, out []int, taken map[int]bool) []int {
	type scored struct {
		idx int
		y   float64
	}
	var rest []scored
	for idx, lab := range st.Labels {
		if lab == 0 && !taken[idx] {
			rest = append(rest, scored{idx: idx, y: st.Scores[idx]})
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		if rest[a].y != rest[b].y {
			return rest[a].y > rest[b].y
		}
		return rest[a].idx < rest[b].idx
	})
	for _, s := range rest {
		if len(out) == k {
			break
		}
		out = append(out, s.idx)
	}
	return out
}

// Random queries uniformly among unqueried links — the ActiveIter-Rand
// baseline.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Select implements Strategy.
func (Random) Select(st *State, k int, rng *rand.Rand) []int {
	idxs := rng.Perm(len(st.Links))
	if k > len(idxs) {
		k = len(idxs)
	}
	out := make([]int, k)
	copy(out, idxs[:k])
	return out
}

// Uncertainty queries the links whose scores are closest to the decision
// threshold — the classic active-learning baseline, included as an
// ablation (it ignores the one-to-one constraint entirely).
type Uncertainty struct {
	// Threshold overrides the decision boundary when non-zero. Leave it
	// zero to inherit the training loop's configured threshold from
	// State.Threshold (the usual case); the paper's ½ is the last-resort
	// default when neither is present.
	Threshold float64
}

// Name implements Strategy.
func (Uncertainty) Name() string { return "uncertainty" }

// Select implements Strategy.
func (u Uncertainty) Select(st *State, k int, rng *rand.Rand) []int {
	thr := 0.5
	if st.Threshold != nil {
		thr = *st.Threshold
	}
	if u.Threshold != 0 {
		thr = u.Threshold
	}
	type scored struct {
		idx  int
		dist float64
	}
	all := make([]scored, len(st.Links))
	for idx := range st.Links {
		all[idx] = scored{idx: idx, dist: absF(st.Scores[idx] - thr)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].dist != all[b].dist {
			return all[a].dist < all[b].dist
		}
		return all[a].idx < all[b].idx
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].idx
	}
	return out
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
