package snapshot

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// randomSnapshot builds a dense synthetic artifact over n1×n2 users
// with a seeded random pool, one-to-one matches and a label log — big
// enough that every range of a random split owns real content.
func randomSnapshot(t testing.TB, seed int64, n1, n2 int) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	build := func(name string, n int) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < n; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		return g
	}
	pair := hetnet.NewAlignedPair(build("n1", n1), build("n2", n2))

	seen := make(map[[2]int32]bool)
	var pool []PoolLink
	for len(pool) < n1*4 {
		i, j := int32(rng.Intn(n1)), int32(rng.Intn(n2))
		if seen[[2]int32{i, j}] {
			continue
		}
		seen[[2]int32{i, j}] = true
		pool = append(pool, PoolLink{
			I: i, J: j,
			Label:    float64(rng.Intn(2)),
			Score:    float64(rng.Intn(1000)) / 1000, // discrete scores exercise tie-breaks
			HasScore: rng.Intn(10) > 0,
			Queried:  rng.Intn(4) == 0,
		})
	}
	var matches []Match
	var labels []QueriedLabel
	perm := rng.Perm(n2)
	for i := 0; i < n1 && i < n2; i += 1 + rng.Intn(3) {
		matches = append(matches, Match{I: int32(i), J: int32(perm[i]), Score: rng.Float64(), HasScore: true})
		if rng.Intn(2) == 0 {
			labels = append(labels, QueriedLabel{I: int32(i), J: int32(perm[i]), Label: 1})
		}
	}
	meta := Meta{
		CreatedUnix: 1700000000 + seed,
		Facade:      "partitioned",
		Notation:    []string{"U→U", "U→P→U", "bias"},
		Threshold:   0.5,
		Seed:        seed,
	}
	model := Model{Shards: []ShardModel{
		{Shard: 0, W: []float64{rng.Float64(), rng.Float64(), rng.Float64()}},
		{Shard: 1, W: []float64{rng.Float64(), rng.Float64(), rng.Float64()}},
	}}
	s, err := Build(pair, meta, model, pool, matches, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomRanges cuts [0, n) at 1..4 random interior points.
func randomRanges(rng *rand.Rand, n int) []UserRange {
	cuts := map[int]bool{}
	for len(cuts) < 1+rng.Intn(4) {
		c := 1 + rng.Intn(n-1)
		cuts[c] = true
	}
	points := []int32{0}
	for c := 1; c < n; c++ {
		if cuts[c] {
			points = append(points, int32(c))
		}
	}
	points = append(points, int32(n))
	out := make([]UserRange, 0, len(points)-1)
	for i := 0; i+1 < len(points); i++ {
		out = append(out, UserRange{Lo: points[i], Hi: points[i+1]})
	}
	return out
}

// TestSplitMergeLossless is the round-trip property: for random
// artifacts and random user-range splits, Merge(Split(s)) reproduces s
// exactly — same structures, same serialized bytes.
func TestSplitMergeLossless(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		s := randomSnapshot(t, seed, 20+rng.Intn(20), 18+rng.Intn(20))
		ranges := randomRanges(rng, len(s.Meta.Users1))
		shards, err := Split(s, ranges)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(shards) != len(ranges) {
			t.Fatalf("seed %d: %d shards for %d ranges", seed, len(shards), len(ranges))
		}
		// Shuffle to prove Merge orders by shard index, not input order.
		rng.Shuffle(len(shards), func(a, b int) { shards[a], shards[b] = shards[b], shards[a] })
		got, err := Merge(shards)
		if err != nil {
			t.Fatalf("seed %d: merge: %v", seed, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("seed %d: merge diverged from parent", seed)
		}
		var a, b bytes.Buffer
		if err := s.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := got.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("seed %d: merged artifact serializes differently from the parent", seed)
		}
	}
}

// Every shard must itself be a valid, writable artifact whose net-1
// candidate lists equal the parent's for the users it owns.
func TestSplitShardsServeTheirRange(t *testing.T) {
	s := randomSnapshot(t, 7, 24, 24)
	ranges := EvenRanges(len(s.Meta.Users1), 3)
	shards, err := Split(s, ranges)
	if err != nil {
		t.Fatal(err)
	}
	parentBy1 := map[int32][]Candidate{}
	for _, uc := range s.Cands {
		if uc.Net == 1 {
			parentBy1[uc.User] = uc.Items
		}
	}
	for si, sh := range shards {
		var buf bytes.Buffer
		if err := sh.Write(&buf); err != nil {
			t.Fatalf("shard %d does not serialize: %v", si, err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shard %d does not round-trip: %v", si, err)
		}
		if !reflect.DeepEqual(back, sh) {
			t.Fatalf("shard %d round trip diverged", si)
		}
		info := sh.Meta.Shard
		if info == nil || info.Range != ranges[si] || info.Index != si || info.Count != len(ranges) {
			t.Fatalf("shard %d info = %+v", si, info)
		}
		for _, m := range sh.Matches {
			if !info.Range.Contains(m.I) {
				t.Fatalf("shard %d holds foreign match %d", si, m.I)
			}
		}
		for _, uc := range sh.Cands {
			if uc.Net != 1 {
				continue
			}
			if !info.Range.Contains(uc.User) {
				t.Fatalf("shard %d holds a net-1 candidate list for foreign user %d", si, uc.User)
			}
			if !reflect.DeepEqual(uc.Items, parentBy1[uc.User]) {
				t.Fatalf("shard %d net-1 list for user %d diverges from the parent", si, uc.User)
			}
		}
	}
}

func TestSplitRejectsBadInput(t *testing.T) {
	s := randomSnapshot(t, 3, 12, 12)
	n := int32(len(s.Meta.Users1))
	cases := map[string][]UserRange{
		"empty":       {},
		"gap":         {{0, 4}, {5, n}},
		"overlap":     {{0, 6}, {5, n}},
		"short":       {{0, 6}, {6, n - 1}},
		"inverted":    {{0, 6}, {8, 6}, {6, n}},
		"not-at-zero": {{1, n}},
	}
	for name, ranges := range cases {
		if _, err := Split(s, ranges); err == nil {
			t.Errorf("%s ranges accepted", name)
		}
	}
	shards, err := Split(s, EvenRanges(int(n), 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Split(shards[0], EvenRanges(int(n), 2)); err == nil || !strings.Contains(err.Error(), "already shard") {
		t.Errorf("re-splitting a shard: %v", err)
	}
}

func TestMergeRejectsIncompleteOrMixed(t *testing.T) {
	s := randomSnapshot(t, 4, 16, 16)
	shards, err := Split(s, EvenRanges(16, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(shards[:2]); err == nil {
		t.Error("partial shard set merged")
	}
	if _, err := Merge([]*Snapshot{shards[0], shards[1], shards[1]}); err == nil {
		t.Error("duplicate shard merged")
	}
	if _, err := Merge([]*Snapshot{s}); err == nil {
		t.Error("non-shard artifact merged")
	}
	// A shard from a different parent must be rejected even when the
	// ranges happen to tile.
	other := randomSnapshot(t, 5, 16, 16)
	otherShards, err := Split(other, EvenRanges(16, 3))
	if err != nil {
		t.Fatal(err)
	}
	mixed := []*Snapshot{shards[0], otherShards[1], shards[2]}
	if _, err := Merge(mixed); err == nil {
		t.Error("mixed-parent shard set merged")
	}
	// Tampering with a shard's content must fail the parent-fingerprint
	// check even though every structural invariant still holds.
	tampered, err := Split(s, EvenRanges(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tampered[1].Pool) == 0 {
		t.Fatal("fixture shard has no pool links to tamper with")
	}
	tampered[1].Pool = tampered[1].Pool[:len(tampered[1].Pool)-1]
	tampered[1].Cands = nil
	if _, err := Merge(tampered); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("tampered shard set: %v", err)
	}
}

// TestGoldenShard pins the shard artifact encoding (Meta.Shard ridden
// by a real split) the same way TestGolden pins the whole-artifact
// form. Regenerate with -update after a Version bump.
func TestGoldenShard(t *testing.T) {
	shards, err := Split(fixtureSnapshot(t), EvenRanges(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := shards[1]
	path := filepath.Join("testdata", "snapshot_v2_shard.golden")
	if *update {
		var buf bytes.Buffer
		if err := want.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden shard artifact unreadable — format changed without a Version bump: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("golden shard artifact decodes differently:\n got %+v\nwant %+v", got, want)
	}
}

func TestFingerprintTracksContent(t *testing.T) {
	a := randomSnapshot(t, 9, 10, 10)
	b := randomSnapshot(t, 9, 10, 10)
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Error("equal snapshots fingerprint differently")
	}
	b.Pool[0].Score += 0.25
	if fb2, _ := b.Fingerprint(); fb2 == fa {
		t.Error("changed pool score did not change the fingerprint")
	}
}
