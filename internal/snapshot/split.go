// User-range splitting: the serving-side counterpart of the training
// tier's candidate-space partitioning. A monolithic artifact caps the
// serve tier at what one machine holds; Split cuts it into per-range
// shard artifacts a fleet of alignd replicas serves behind the alignr
// router, and Merge proves the cut lossless by reassembling the exact
// parent.
//
// The partition key is the net-1 user index: every match, pool link and
// queried label hangs off exactly one net-1 user, so a half-open range
// [Lo, Hi) owns an exact, disjoint slice of each section. Reverse-
// direction (net-2) candidate lists are NOT owned by one shard — a
// net-2 user's counterpart candidates cross ranges — so each shard
// keeps the top-k list derivable from its own pool slice, and the
// router merges per-shard lists on reads (the global top-k is always a
// subset of the union of per-shard top-k lists at equal k, so the
// merge is exact).
//
// Every shard keeps the full Meta user tables and the full Model
// section: tables so any replica can resolve external IDs (and answer
// fan-out legs without a second hop), models because weight vectors
// are tiny next to the per-user sections. What marks a shard as a
// shard is Meta.Shard — its range, its position in the split, the
// split epoch, and the parent artifact's content fingerprint — which
// the serving layer surfaces on /statusz so the router can discover
// the fleet's range table instead of being configured with one.
package snapshot

import (
	"fmt"
	"hash/fnv"
)

// UserRange is a half-open interval [Lo, Hi) of net-1 user indices.
type UserRange struct {
	Lo, Hi int32
}

// Contains reports whether net-1 user index i falls in the range.
func (r UserRange) Contains(i int32) bool { return i >= r.Lo && i < r.Hi }

// String renders the range in the [lo,hi) form used in logs, statusz
// and the split tool's output.
func (r UserRange) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// ShardInfo marks an artifact as one shard of a split. It lives in
// Meta so provenance travels with the shard: which slice it owns,
// where it sits in the split, and which parent artifact it came from.
type ShardInfo struct {
	// Range is the net-1 user index slice this shard owns.
	Range UserRange
	// Index/Count position the shard in its split (0 ≤ Index < Count).
	Index, Count int
	// Epoch groups the shards of one split: every shard cut from one
	// parent in one Split call carries the same epoch (the parent's
	// CreatedUnix), so a router can tell a coherent fleet from one
	// mid-rollout with mixed artifact generations.
	Epoch int64
	// ParentFP is the parent artifact's content fingerprint (see
	// Snapshot.Fingerprint): the exact identity of the artifact the
	// shard was cut from.
	ParentFP uint64
}

// Fingerprint hashes the artifact's full serialized content with
// FNV-64a. Write is deterministic for equal snapshots, so equal
// snapshots fingerprint equally across processes — the identity Split
// stamps into each shard and the setsync protocol uses to decide
// whether two artifacts differ at all.
func (s *Snapshot) Fingerprint() (uint64, error) {
	h := fnv.New64a()
	if err := s.Write(h); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// Validate runs the artifact's internal consistency checks — index
// bounds against the user tables, notation/weight dimension agreement
// — the same checks Write enforces before serializing. Exported for
// the layers that reassemble snapshots from parts (setsync) rather
// than decode them from a trusted stream.
func (s *Snapshot) Validate() error { return s.validate() }

// EvenRanges cuts [0, n) into k near-equal contiguous user ranges (the
// first n%k ranges get the extra user). k > n yields n singleton
// ranges.
func EvenRanges(n, k int) []UserRange {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k == 0 {
		return []UserRange{{0, 0}}
	}
	out := make([]UserRange, 0, k)
	base, extra := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < extra {
			hi++
		}
		out = append(out, UserRange{Lo: int32(lo), Hi: int32(hi)})
		lo = hi
	}
	return out
}

// checkRanges validates that ranges tile [0, n1) exactly: sorted,
// non-empty, contiguous, covering. A partial or overlapping tiling
// would make Split silently lossy, so it is an error instead.
func checkRanges(ranges []UserRange, n1 int32) error {
	if len(ranges) == 0 {
		return fmt.Errorf("snapshot: split needs at least one range")
	}
	want := int32(0)
	for i, r := range ranges {
		if r.Lo != want {
			return fmt.Errorf("snapshot: range %d is %s, want Lo=%d (ranges must tile [0,%d) in order)", i, r, want, n1)
		}
		if r.Hi <= r.Lo {
			return fmt.Errorf("snapshot: range %d is %s: empty or inverted", i, r)
		}
		want = r.Hi
	}
	if want != n1 {
		return fmt.Errorf("snapshot: ranges end at %d, want %d (the full net-1 user table)", want, n1)
	}
	return nil
}

// Split partitions the artifact by net-1 user range into one shard
// artifact per range. Ranges must tile [0, len(Users1)) exactly. Each
// shard carries its slice of the matches, pool links and queried
// labels, the top-k candidate lists derivable from that slice (both
// directions — net-2 lists are partial by construction and merged at
// read time), and the full user tables and model section, plus a
// Meta.Shard stamp naming the range, the split epoch and the parent
// fingerprint. Merge of the result reproduces the parent exactly; the
// parent itself must not already be a shard.
func Split(s *Snapshot, ranges []UserRange) ([]*Snapshot, error) {
	if s == nil {
		return nil, fmt.Errorf("snapshot: split of nil snapshot")
	}
	if s.Meta.Shard != nil {
		return nil, fmt.Errorf("snapshot: artifact is already shard %d/%d of epoch %d; split the parent instead",
			s.Meta.Shard.Index, s.Meta.Shard.Count, s.Meta.Shard.Epoch)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := checkRanges(ranges, int32(len(s.Meta.Users1))); err != nil {
		return nil, err
	}
	parentFP, err := s.Fingerprint()
	if err != nil {
		return nil, err
	}

	shards := make([]*Snapshot, len(ranges))
	for si, r := range ranges {
		shard := &Snapshot{
			Meta:  s.Meta,
			Model: s.Model,
			TopK:  s.TopK,
		}
		shard.Meta.Shard = &ShardInfo{
			Range:    r,
			Index:    si,
			Count:    len(ranges),
			Epoch:    s.Meta.CreatedUnix,
			ParentFP: parentFP,
		}
		// The parent's sections are sorted by net-1 index, so each
		// range's slice is a contiguous run; filtering preserves order.
		for _, m := range s.Matches {
			if r.Contains(m.I) {
				shard.Matches = append(shard.Matches, m)
			}
		}
		for _, p := range s.Pool {
			if r.Contains(p.I) {
				shard.Pool = append(shard.Pool, p)
			}
		}
		for _, l := range s.Labels {
			if r.Contains(l.I) {
				shard.Labels = append(shard.Labels, l)
			}
		}
		// Re-derive both-direction top-k from the shard's pool slice: the
		// net-1 lists come out identical to the parent's (a net-1 user's
		// scored links all live in its shard), the net-2 lists are the
		// shard's partial view the router merges.
		shard.Cands = buildTopK(shard.Pool, shard.TopK)
		if err := shard.Validate(); err != nil {
			return nil, fmt.Errorf("snapshot: shard %d %s: %w", si, r, err)
		}
		shards[si] = shard
	}
	return shards, nil
}

// Merge reassembles a full split back into the parent artifact. The
// shards must form one complete split: same epoch, same parent
// fingerprint, same count, ranges tiling the user table, supplied in
// any order. The result is validated against the recorded parent
// fingerprint, so a wrong or stale shard set fails loudly instead of
// producing a silently different artifact.
func Merge(shards []*Snapshot) (*Snapshot, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("snapshot: merge of no shards")
	}
	// Order by shard index without mutating the caller's slice.
	ordered := make([]*Snapshot, len(shards))
	for _, sh := range shards {
		if sh == nil || sh.Meta.Shard == nil {
			return nil, fmt.Errorf("snapshot: merge input is not a shard artifact")
		}
		info := sh.Meta.Shard
		if info.Count != len(shards) {
			return nil, fmt.Errorf("snapshot: shard %d says the split has %d shards, got %d", info.Index, info.Count, len(shards))
		}
		if info.Index < 0 || info.Index >= len(shards) {
			return nil, fmt.Errorf("snapshot: shard index %d outside [0,%d)", info.Index, len(shards))
		}
		if ordered[info.Index] != nil {
			return nil, fmt.Errorf("snapshot: duplicate shard index %d", info.Index)
		}
		ordered[info.Index] = sh
	}
	first := ordered[0].Meta.Shard
	parent := &Snapshot{
		Meta:  ordered[0].Meta,
		Model: ordered[0].Model,
		TopK:  ordered[0].TopK,
	}
	parent.Meta.Shard = nil
	ranges := make([]UserRange, 0, len(ordered))
	for i, sh := range ordered {
		info := sh.Meta.Shard
		if info.Epoch != first.Epoch || info.ParentFP != first.ParentFP {
			return nil, fmt.Errorf("snapshot: shard %d is from epoch %d fp %016x, shard 0 from epoch %d fp %016x — mixed splits",
				i, info.Epoch, info.ParentFP, first.Epoch, first.ParentFP)
		}
		ranges = append(ranges, info.Range)
		// Shards are per-range slices of globally sorted sections, so
		// concatenation in range order restores the canonical sort.
		parent.Matches = append(parent.Matches, sh.Matches...)
		parent.Pool = append(parent.Pool, sh.Pool...)
		parent.Labels = append(parent.Labels, sh.Labels...)
	}
	if err := checkRanges(ranges, int32(len(parent.Meta.Users1))); err != nil {
		return nil, err
	}
	parent.Cands = buildTopK(parent.Pool, parent.TopK)
	if err := parent.Validate(); err != nil {
		return nil, err
	}
	fp, err := parent.Fingerprint()
	if err != nil {
		return nil, err
	}
	if fp != first.ParentFP {
		return nil, fmt.Errorf("snapshot: merged artifact fingerprints %016x, shards claim parent %016x — the shard set is not one lossless split", fp, first.ParentFP)
	}
	return parent, nil
}
