// Package snapshot persists a trained alignment as a versioned binary
// artifact — the offline→online bridge between the training pipelines
// (monolithic, partitioned, distributed) and the alignd query server.
//
// A snapshot freezes everything the read side of an alignment needs,
// detached from the networks and the training machinery:
//
//   - provenance: which facade trained it, when, on what data (network
//     names, user ID tables, structural fingerprints),
//   - the schema notation set (the feature vector layout) and the
//     trained feature weights — the primary model for a monolithic run,
//     one model per shard for partitioned and distributed runs — which
//     rebuild into core.Predictor for inductive rescoring,
//   - the reconciled one-to-one matching with scores,
//   - per-source-user top-k ranked candidates in both directions,
//   - the full candidate pool with final labels, best scores, and the
//     oracle audit (enough to re-run EvaluateAlignment bit-identically),
//   - the queried-label log (what the oracle was asked, and its
//     answers).
//
// # Artifact layout
//
// A snapshot is a sequence of length-prefixed frames in the shared
// internal/framing discipline (magic "AS", one version byte on every
// frame, 1 GiB frame cap). Sections appear exactly once, in fixed
// order, each a self-contained gob document:
//
//	meta → model → matches → candidates → pool → labels → end
//
// The end frame carries the section count and an FNV-64a checksum over
// every preceding section body, so truncation and bit rot fail loudly
// at load time instead of serving corrupt answers. A version bump is a
// compatibility statement: readers reject artifacts of any other
// version with ErrVersionMismatch (see docs/SNAPSHOT.md for the golden
// regeneration workflow).
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/activeiter/activeiter/internal/framing"
	"github.com/activeiter/activeiter/internal/hetnet"
)

// Version is the artifact format version. Bump it on any change to
// section payload shapes; readers reject every other version.
//
// Version history:
//
//	1 — PR 5: meta/model/matches/candidates/pool/labels/end.
//	2 — PR 10: Meta gains Shard (user-range split provenance); a v1
//	    reader would decode a shard artifact and silently serve it as
//	    the whole alignment, so the change is a version bump even
//	    though gob tolerates the new field.
const Version = 2

// maxSectionSize bounds a section's declared length. The pool section
// scales with the candidate pool (tens of bytes per link); 1 GiB is far
// above any realistic alignment and far below pathology.
const maxSectionSize = 1 << 30

// codec is the snapshot instance of the shared framing discipline.
var codec = framing.Codec{Magic: [2]byte{'A', 'S'}, Version: Version, MaxFrame: maxSectionSize}

// ErrVersionMismatch is returned (wrapped, with both versions) when an
// artifact of a different format version is opened. It is the shared
// framing sentinel, re-exported for errors.Is.
var ErrVersionMismatch = framing.ErrVersionMismatch

// Section types, one per frame.
const (
	secMeta byte = iota + 1
	secModel
	secMatches
	secCandidates
	secPool
	secLabels
	secEnd
)

// sectionOrder is the fixed on-disk sequence (excluding end).
var sectionOrder = [...]byte{secMeta, secModel, secMatches, secCandidates, secPool, secLabels}

// Meta is the snapshot's provenance and schema header.
type Meta struct {
	// CreatedUnix is the build time (Unix seconds).
	CreatedUnix int64
	// Facade names the training path: "monolithic", "partitioned" or
	// "distributed".
	Facade string
	// Net1/Net2 are the network names; Users1/Users2 the user ID tables
	// in index order, so the server resolves external IDs without the
	// networks.
	Net1, Net2     string
	Users1, Users2 []string
	// FP1/FP2 fingerprint each network's full structure and AnchorsFP
	// the ground-truth anchor set — recorded so an operator can tell
	// which dataset build an artifact came from, and so a reload onto
	// changed data is detectable.
	FP1, FP2, AnchorsFP uint64
	// Notation is the feature vector layout: the meta diagram notation
	// set in extraction order, plus the trailing bias term. Weight
	// vectors in the model section are parallel to it.
	Notation []string
	// Training configuration, recorded for provenance and for
	// Predictor reconstruction.
	Features   string // "full", "paths", "extended"
	Strategy   string // "conflict", "random", "uncertainty"
	Threshold  float64
	Seed       int64
	Budget     int
	BatchSize  int
	Partitions int
	Rounds     int
	// Shard is nil for a whole-alignment artifact; a split shard (see
	// Split) carries its net-1 user range, split position, epoch and
	// parent fingerprint here.
	Shard *ShardInfo
}

// ShardModel is one partition's trained weight vector (parallel to
// Meta.Notation), keyed by its Part.Index.
type ShardModel struct {
	Shard int
	W     []float64
}

// Model is the model section: the primary weight vector for monolithic
// runs (Shards empty), or one entry per shard for partitioned and
// distributed runs (W empty).
type Model struct {
	W      []float64
	Shards []ShardModel
}

// Match is one reconciled one-to-one matched pair. HasScore is false
// when every partition scored the link NaN (the matching then came from
// ground truth or an oracle answer).
type Match struct {
	I, J     int32
	Score    float64
	HasScore bool
}

// Candidate is one ranked counterpart suggestion.
type Candidate struct {
	Other int32
	Score float64
}

// UserCandidates is one source user's top-k ranked candidate list. Net
// is 1 (user indexes Users1, candidates Users2) or 2 (the reverse).
type UserCandidates struct {
	Net   uint8
	User  int32
	Items []Candidate
}

// candidates is the candidates section payload.
type candidates struct {
	TopK  int
	Users []UserCandidates
}

// PoolLink is one candidate-pool link's final read-side record.
type PoolLink struct {
	I, J     int32
	Label    float64
	Score    float64
	HasScore bool
	Queried  bool
}

// QueriedLabel is one oracle interaction from the queried-label log.
type QueriedLabel struct {
	I, J  int32
	Label float64
}

// Snapshot is a fully decoded artifact.
type Snapshot struct {
	Meta    Meta
	Model   Model
	Matches []Match
	TopK    int
	Cands   []UserCandidates
	Pool    []PoolLink
	Labels  []QueriedLabel
}

// NetworkFingerprint hashes a network's full structure — name, node
// tables in registration order, link tables with every edge — with
// FNV-64a over length-delimited primitives. Two structurally identical
// networks fingerprint identically across processes (no gob type IDs,
// no map iteration).
func NetworkFingerprint(g *hetnet.Network) uint64 {
	h := fnv.New64a()
	var num [8]byte
	writeInt := func(v int64) {
		for i := 0; i < 8; i++ {
			num[i] = byte(v >> (8 * i))
		}
		h.Write(num[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	writeStr(g.Name())
	for _, t := range g.NodeTypes() {
		writeStr(string(t))
		n := g.NodeCount(t)
		writeInt(int64(n))
		for i := 0; i < n; i++ {
			writeStr(g.NodeID(t, i))
		}
	}
	for _, lt := range g.LinkTypes() {
		src, dst, _ := g.LinkEndpoints(lt)
		writeStr(string(lt))
		writeStr(string(src))
		writeStr(string(dst))
		writeInt(int64(g.LinkCount(lt)))
		g.Links(lt, func(from, to int) {
			writeInt(int64(from))
			writeInt(int64(to))
		})
	}
	return h.Sum64()
}

// AnchorsFingerprint hashes a ground-truth anchor set in order.
func AnchorsFingerprint(anchors []hetnet.Anchor) uint64 {
	h := fnv.New64a()
	var num [8]byte
	writeInt := func(v int64) {
		for i := 0; i < 8; i++ {
			num[i] = byte(v >> (8 * i))
		}
		h.Write(num[:])
	}
	writeInt(int64(len(anchors)))
	for _, a := range anchors {
		writeInt(int64(a.I))
		writeInt(int64(a.J))
	}
	return h.Sum64()
}

// DefaultTopK is the per-user candidate list depth built when the
// builder is not told otherwise.
const DefaultTopK = 10

// Build assembles a snapshot from a trained alignment's read side. The
// pair supplies provenance (names, user tables, fingerprints); meta's
// zero-valued provenance fields are filled from it. Pool, matches and
// labels may arrive in any order — Build canonicalizes: pool and labels
// sort by (I, J), matches by I, and the per-user top-k candidate lists
// (topK ≤ 0 means DefaultTopK) are derived from the score-bearing pool
// links, ranked score-descending with index ties ascending.
func Build(pair *hetnet.AlignedPair, meta Meta, model Model, pool []PoolLink, matches []Match, labels []QueriedLabel, topK int) (*Snapshot, error) {
	if pair == nil {
		return nil, fmt.Errorf("snapshot: nil pair")
	}
	if topK <= 0 {
		topK = DefaultTopK
	}
	n1 := pair.G1.NodeCount(hetnet.User)
	n2 := pair.G2.NodeCount(hetnet.User)
	meta.Net1 = pair.G1.Name()
	meta.Net2 = pair.G2.Name()
	meta.Users1 = make([]string, n1)
	for i := range meta.Users1 {
		meta.Users1[i] = pair.G1.NodeID(hetnet.User, i)
	}
	meta.Users2 = make([]string, n2)
	for j := range meta.Users2 {
		meta.Users2[j] = pair.G2.NodeID(hetnet.User, j)
	}
	meta.FP1 = NetworkFingerprint(pair.G1)
	meta.FP2 = NetworkFingerprint(pair.G2)
	meta.AnchorsFP = AnchorsFingerprint(pair.Anchors)

	s := &Snapshot{
		Meta:    meta,
		Model:   model,
		Matches: append([]Match(nil), matches...),
		TopK:    topK,
		Pool:    append([]PoolLink(nil), pool...),
		Labels:  append([]QueriedLabel(nil), labels...),
	}
	// Scoreless entries get a zero placeholder: the serving layer answers
	// JSON, and NaN (the natural in-memory "no score") does not marshal.
	for i := range s.Pool {
		if !s.Pool[i].HasScore {
			s.Pool[i].Score = 0
		}
	}
	for i := range s.Matches {
		if !s.Matches[i].HasScore {
			s.Matches[i].Score = 0
		}
	}
	sort.Slice(s.Pool, func(a, b int) bool {
		if s.Pool[a].I != s.Pool[b].I {
			return s.Pool[a].I < s.Pool[b].I
		}
		return s.Pool[a].J < s.Pool[b].J
	})
	sort.Slice(s.Matches, func(a, b int) bool { return s.Matches[a].I < s.Matches[b].I })
	sort.Slice(s.Labels, func(a, b int) bool {
		if s.Labels[a].I != s.Labels[b].I {
			return s.Labels[a].I < s.Labels[b].I
		}
		return s.Labels[a].J < s.Labels[b].J
	})
	sort.Slice(s.Model.Shards, func(a, b int) bool { return s.Model.Shards[a].Shard < s.Model.Shards[b].Shard })
	s.Cands = buildTopK(s.Pool, topK)
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildTopK derives the per-user ranked candidate lists from the
// score-bearing pool links, both directions, capped at k each.
func buildTopK(pool []PoolLink, k int) []UserCandidates {
	by1 := make(map[int32][]Candidate)
	by2 := make(map[int32][]Candidate)
	for _, p := range pool {
		if !p.HasScore {
			continue
		}
		by1[p.I] = append(by1[p.I], Candidate{Other: p.J, Score: p.Score})
		by2[p.J] = append(by2[p.J], Candidate{Other: p.I, Score: p.Score})
	}
	out := make([]UserCandidates, 0, len(by1)+len(by2))
	emit := func(net uint8, m map[int32][]Candidate) {
		users := make([]int32, 0, len(m))
		for u := range m {
			users = append(users, u)
		}
		sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
		for _, u := range users {
			items := m[u]
			sort.Slice(items, func(a, b int) bool {
				if items[a].Score != items[b].Score {
					return items[a].Score > items[b].Score
				}
				return items[a].Other < items[b].Other
			})
			if len(items) > k {
				items = items[:k]
			}
			out = append(out, UserCandidates{Net: net, User: u, Items: items})
		}
	}
	emit(1, by1)
	emit(2, by2)
	return out
}

// validate checks internal consistency: index bounds against the user
// tables, notation/weight dimension agreement.
func (s *Snapshot) validate() error {
	n1, n2 := int32(len(s.Meta.Users1)), int32(len(s.Meta.Users2))
	checkPair := func(what string, i, j int32) error {
		if i < 0 || i >= n1 || j < 0 || j >= n2 {
			return fmt.Errorf("snapshot: %s (%d,%d) outside the %d×%d user tables", what, i, j, n1, n2)
		}
		return nil
	}
	for _, m := range s.Matches {
		if err := checkPair("match", m.I, m.J); err != nil {
			return err
		}
	}
	for _, p := range s.Pool {
		if err := checkPair("pool link", p.I, p.J); err != nil {
			return err
		}
	}
	for _, l := range s.Labels {
		if err := checkPair("queried label", l.I, l.J); err != nil {
			return err
		}
	}
	dim := len(s.Meta.Notation)
	if len(s.Model.W) > 0 && len(s.Model.W) != dim {
		return fmt.Errorf("snapshot: primary weight vector has %d entries for %d notation terms", len(s.Model.W), dim)
	}
	for _, sm := range s.Model.Shards {
		if len(sm.W) != dim {
			return fmt.Errorf("snapshot: shard %d weight vector has %d entries for %d notation terms", sm.Shard, len(sm.W), dim)
		}
	}
	return nil
}

// end is the end-section payload: the artifact's integrity statement.
type end struct {
	Sections int
	Checksum uint64
}

// Write serializes the snapshot. The byte stream is deterministic for
// equal snapshots: every section is a slice-only gob document written
// by a fresh encoder.
func (s *Snapshot) Write(w io.Writer) error {
	if err := s.validate(); err != nil {
		return err
	}
	sum := fnv.New64a()
	sections := 0
	writeSection := func(typ byte, payload any) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
			return fmt.Errorf("snapshot: encode section %d: %w", typ, err)
		}
		sum.Write(buf.Bytes())
		sections++
		if err := codec.WriteFrame(w, typ, buf.Bytes()); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		return nil
	}
	if err := writeSection(secMeta, &s.Meta); err != nil {
		return err
	}
	if err := writeSection(secModel, &s.Model); err != nil {
		return err
	}
	if err := writeSection(secMatches, &s.Matches); err != nil {
		return err
	}
	if err := writeSection(secCandidates, &candidates{TopK: s.TopK, Users: s.Cands}); err != nil {
		return err
	}
	if err := writeSection(secPool, &s.Pool); err != nil {
		return err
	}
	if err := writeSection(secLabels, &s.Labels); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&end{Sections: sections, Checksum: sum.Sum64()}); err != nil {
		return fmt.Errorf("snapshot: encode end section: %w", err)
	}
	if err := codec.WriteFrame(w, secEnd, buf.Bytes()); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Read decodes and validates an artifact: sections must appear exactly
// once in canonical order, the end checksum must match, and the decoded
// content must pass the same consistency checks Write enforces. A
// truncated stream (missing end frame) and a version-mismatched
// artifact both fail with explicit errors.
func Read(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{}
	sum := fnv.New64a()
	sections := 0
	for _, want := range sectionOrder {
		typ, body, err := codec.ReadFrame(r)
		if err == io.EOF {
			return nil, fmt.Errorf("snapshot: truncated artifact: stream ended before section %d", want)
		}
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		if typ != want {
			return nil, fmt.Errorf("snapshot: section %d out of order (want %d)", typ, want)
		}
		sum.Write(body)
		sections++
		var into any
		switch typ {
		case secMeta:
			into = &s.Meta
		case secModel:
			into = &s.Model
		case secMatches:
			into = &s.Matches
		case secCandidates:
			c := &candidates{}
			if err := gob.NewDecoder(bytes.NewReader(body)).Decode(c); err != nil {
				return nil, fmt.Errorf("snapshot: decode section %d: %w", typ, err)
			}
			s.TopK = c.TopK
			s.Cands = c.Users
			continue
		case secPool:
			into = &s.Pool
		case secLabels:
			into = &s.Labels
		}
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(into); err != nil {
			return nil, fmt.Errorf("snapshot: decode section %d: %w", typ, err)
		}
	}
	typ, body, err := codec.ReadFrame(r)
	if err == io.EOF {
		return nil, fmt.Errorf("snapshot: truncated artifact: missing end section")
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if typ != secEnd {
		return nil, fmt.Errorf("snapshot: trailing section %d where the end frame belongs", typ)
	}
	var e end
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&e); err != nil {
		return nil, fmt.Errorf("snapshot: decode end section: %w", err)
	}
	if e.Sections != sections {
		return nil, fmt.Errorf("snapshot: end frame claims %d sections, read %d", e.Sections, sections)
	}
	if got := sum.Sum64(); got != e.Checksum {
		return nil, fmt.Errorf("snapshot: checksum mismatch: artifact is corrupt (got %016x, want %016x)", got, e.Checksum)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteFile writes the artifact to path atomically-enough for a serving
// reload: the bytes go to a temp file in the same directory first, then
// rename into place, so a reader never opens a half-written artifact.
func (s *Snapshot) WriteFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := s.Write(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// OpenFile reads and validates the artifact at path.
func OpenFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
