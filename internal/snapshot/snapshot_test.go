package snapshot

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

var update = flag.Bool("update", false, "rewrite golden snapshot files")

// fixturePair builds a small deterministic pair, mirroring the distrib
// wire fixtures.
func fixturePair(t testing.TB) *hetnet.AlignedPair {
	t.Helper()
	build := func(name string, shift int) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < 6; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		for u := 0; u < 6; u++ {
			if err := g.AddLinkByID(hetnet.Follow, fmt.Sprintf("%s-u%d", name, u), fmt.Sprintf("%s-u%d", name, (u+1+shift)%6)); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	pair := hetnet.NewAlignedPair(build("net1", 0), build("net2", 1))
	for u := 0; u < 3; u++ {
		if err := pair.AddAnchor(u, u); err != nil {
			t.Fatal(err)
		}
	}
	return pair
}

// fixtureSnapshot is a representative artifact with every section
// populated: a primary model AND shard models never coexist in real
// builds, so this uses the sharded form (the richer one).
func fixtureSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	pair := fixturePair(t)
	meta := Meta{
		CreatedUnix: 1700000000, // fixed: golden bytes must not depend on the clock
		Facade:      "partitioned",
		Notation:    []string{"U→U", "U→P→U", "bias"},
		Features:    "full",
		Strategy:    "conflict",
		Threshold:   0.5,
		Seed:        2019,
		Budget:      6,
		BatchSize:   5,
		Partitions:  2,
	}
	model := Model{Shards: []ShardModel{
		{Shard: 0, W: []float64{0.5, -0.25, 0.125}},
		{Shard: 1, W: []float64{0.4, 0.1, -0.0625}},
	}}
	pool := []PoolLink{
		{I: 3, J: 3, Label: 1, Score: 0.9, HasScore: true},
		{I: 3, J: 4, Label: 0, Score: 0.2, HasScore: true},
		{I: 4, J: 4, Label: 1, Score: 0.8, HasScore: true, Queried: true},
		{I: 5, J: 3, Label: 0, Score: 0.1, HasScore: true, Queried: true},
		{I: 5, J: 5, Label: 0, HasScore: false},
	}
	matches := []Match{
		{I: 3, J: 3, Score: 0.9, HasScore: true},
		{I: 4, J: 4, Score: 0.8, HasScore: true},
	}
	labels := []QueriedLabel{{I: 4, J: 4, Label: 1}, {I: 5, J: 3, Label: 0}}
	s, err := Build(pair, meta, model, pool, matches, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildDerivesTopK(t *testing.T) {
	s := fixtureSnapshot(t)
	// User 3 on net1 has two scored links; both fit in k=2, ranked by
	// score descending.
	var got *UserCandidates
	for i := range s.Cands {
		if s.Cands[i].Net == 1 && s.Cands[i].User == 3 {
			got = &s.Cands[i]
		}
	}
	if got == nil {
		t.Fatal("no candidate list for net1 user 3")
	}
	want := []Candidate{{Other: 3, Score: 0.9}, {Other: 4, Score: 0.2}}
	if !reflect.DeepEqual(got.Items, want) {
		t.Errorf("top-k for net1 user 3 = %+v, want %+v", got.Items, want)
	}
	// The unscored pool link (5,5) must not produce candidates; user 5's
	// only scored link is (5,3).
	for _, uc := range s.Cands {
		if uc.Net == 1 && uc.User == 5 {
			if len(uc.Items) != 1 || uc.Items[0].Other != 3 {
				t.Errorf("net1 user 5 candidates = %+v, want only (3)", uc.Items)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	s := fixtureSnapshot(t)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, s)
	}
}

func TestWriteDeterministic(t *testing.T) {
	s := fixtureSnapshot(t)
	var a, b bytes.Buffer
	if err := s.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of one snapshot produced different bytes")
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := fixtureSnapshot(t)
	path := filepath.Join(t.TempDir(), "fixture.snap")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Error("file round trip diverged")
	}
}

// TestGolden pins artifact compatibility: the golden file holds bytes a
// Version-2 writer actually wrote, and the current reader must still
// decode it into the expected snapshot. Any change that breaks decoding
// forces a deliberate Version bump — regenerate with -update after
// bumping (see docs/SNAPSHOT.md).
func TestGolden(t *testing.T) {
	s := fixtureSnapshot(t)
	path := filepath.Join("testdata", "snapshot_v2.golden")
	if *update {
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden artifact unreadable — format changed without a Version bump: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("golden artifact decodes differently:\n got %+v\nwant %+v", got, s)
	}
}

// A bumped version byte must be rejected with the sentinel, naming both
// versions.
func TestVersionMismatchRejected(t *testing.T) {
	s := fixtureSnapshot(t)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[6] = Version + 1 // version byte of the first frame
	_, err := Read(bytes.NewReader(raw))
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("got %d, want %d", Version+1, Version)) {
		t.Errorf("mismatch error does not name the versions: %v", err)
	}
}

func TestCorruptionRejected(t *testing.T) {
	s := fixtureSnapshot(t)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		// Cutting the stream after the first section loses the end frame.
		if _, err := Read(bytes.NewReader(good[:len(good)/2])); err == nil {
			t.Error("truncated artifact accepted")
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		// Flip one byte inside the pool section's body (far enough in to
		// be past the headers of the early frames, and away from the end
		// frame's own bytes).
		bad[len(bad)/2] ^= 0x40
		_, err := Read(bytes.NewReader(bad))
		if err == nil {
			t.Error("bit-flipped artifact accepted")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if _, err := Read(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
			t.Error("garbage accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		_, err := Read(bytes.NewReader(nil))
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("empty stream: %v", err)
		}
	})
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	pair := fixturePair(t)
	meta := Meta{Notation: []string{"bias"}}
	_, err := Build(pair, meta, Model{}, []PoolLink{{I: 99, J: 0}}, nil, nil, 0)
	if err == nil {
		t.Error("pool link outside the user tables accepted")
	}
	_, err = Build(pair, meta, Model{W: []float64{1, 2}}, nil, nil, nil, 0)
	if err == nil {
		t.Error("weight/notation dimension mismatch accepted")
	}
}

func TestNetworkFingerprint(t *testing.T) {
	a := fixturePair(t)
	b := fixturePair(t)
	if NetworkFingerprint(a.G1) != NetworkFingerprint(b.G1) {
		t.Error("identical networks fingerprint differently")
	}
	if NetworkFingerprint(a.G1) == NetworkFingerprint(a.G2) {
		t.Error("different networks share a fingerprint")
	}
	b.G1.AddNode(hetnet.User, "one-more")
	if NetworkFingerprint(a.G1) == NetworkFingerprint(b.G1) {
		t.Error("adding a node did not change the fingerprint")
	}
	if AnchorsFingerprint(a.Anchors) == AnchorsFingerprint(a.Anchors[:2]) {
		t.Error("anchor subsets share a fingerprint")
	}
}
