// Package telemetry is the shared observability substrate for the
// whole stack: a metrics registry (counters, gauges, log₂ histograms)
// with Prometheus text exposition, a span tracer that dumps Chrome
// trace-event JSON, and runtime hooks (slog setup, pprof muxes).
//
// The package is dependency-free (stdlib only) so every layer — sparse
// kernels, metadiag counting, the distributed fabric, the serving tier
// — can report into it without import cycles. Hot paths are atomic:
// holding a *Counter / *Histogram and observing into it never takes a
// lock; locks guard registration and exposition only.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// uintptr_ converts a stack-local's address for stripe picking; it is
// the only unsafe use in the package and never dereferences.
func uintptr_(p *byte) uintptr { return uintptr(unsafe.Pointer(p)) }

// Label is one key="value" pair attached to a metric series.
type Label struct{ Key, Value string }

// L builds a Label; registry call sites read better with it inline.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// counterStripes is the number of cache-line-padded shards a Counter
// spreads its adds over. Power of two so the stripe pick is a mask.
const counterStripes = 8

type stripe struct {
	n atomic.Int64
	_ [56]byte // pad to a cache line so stripes don't false-share
}

// Counter is a monotonically increasing metric. Adds are striped
// across padded atomics so a hot counter shared by many goroutines
// does not serialize on one cache line; Value folds the stripes.
type Counter struct {
	stripes [counterStripes]stripe
}

// Add increments the counter by n (n must be >= 0; negative adds are
// ignored to keep the counter monotone under buggy callers).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	// Stripe by the address of a stack local: distinct goroutines run
	// on distinct stacks, so this spreads concurrent writers without
	// needing a goroutine ID. The shift skips the always-aligned low
	// bits.
	var pin byte
	i := (uint(uintptr_(&pin)) >> 9) & (counterStripes - 1)
	c.stripes[i].n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value folds all stripes into the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the number of log₂ buckets a Histogram keeps. Bucket
// i counts observations v with 2^i <= v < 2^(i+1) (bucket 0 also takes
// v < 2). 44 buckets cover nanosecond latencies up to ~4.9 hours
// before clamping into the last bucket.
const HistBuckets = 44

// Histogram counts int64 observations into log₂ buckets. All fields
// are atomics; Observe never locks.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// HistBucketOf returns the bucket index observation v lands in.
func HistBucketOf(v int64) int {
	if v < 2 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// HistBucketUpper returns the exclusive upper bound of bucket i
// (inclusive in Prometheus "le" terms: le = 2^(i+1) - 1 rounded up to
// 2^(i+1) for readability; we report le = 2^(i+1)).
func HistBucketUpper(i int) int64 { return int64(1) << uint(i+1) }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[HistBucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     int64
}

// Snapshot copies the histogram counters. Buckets are read without a
// barrier against concurrent Observe calls, so the snapshot is only
// approximately consistent — fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Quantile returns the upper bound of the bucket containing quantile q
// (0 < q <= 1) of the snapshot, or 0 if empty. Like any bucketed
// quantile it overestimates by at most one bucket width.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return HistBucketUpper(i)
		}
	}
	return HistBucketUpper(HistBuckets - 1)
}

// metricKind discriminates family types for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance within a family.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	mu     sync.Mutex
	series map[string]*series
}

// Registry holds named metric families. The zero value is not usable;
// call NewRegistry. A nil *Registry is safe: lookups return nil
// metrics whose methods no-op.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry. Library packages (distrib,
// metadiag, serve) register into it so one /metricsz scrape sees the
// whole process.
var Default = NewRegistry()

func (r *Registry) family(name, help string, kind metricKind) *family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) get(labels []Label) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch f.kind {
		case kindCounter:
			s.c = new(Counter)
		case kindGauge:
			s.g = new(Gauge)
		case kindHistogram:
			s.h = new(Histogram)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns (registering if needed) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter)
	if f == nil {
		return nil
	}
	return f.get(labels).c
}

// Gauge returns (registering if needed) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge)
	if f == nil {
		return nil
	}
	return f.get(labels).g
}

// Histogram returns (registering if needed) the histogram series
// name{labels}.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	f := r.family(name, help, kindHistogram)
	if f == nil {
		return nil
	}
	return f.get(labels).h
}

// Func registers a derived gauge evaluated at scrape time. Re-registering
// the same name+labels replaces the function.
func (r *Registry) Func(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, kindFunc)
	if f == nil {
		return
	}
	s := f.get(labels)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// renderLabels renders sorted k="v" pairs; empty for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// mergeLabels splices extra labels into an already-rendered label set
// (used for histogram le labels).
func spliceLabel(rendered, key, value string) string {
	pair := key + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4). Families and series are emitted in sorted order so
// output is deterministic for golden tests.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, strconv.FormatInt(s.c.Value(), 10))
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, strconv.FormatInt(s.g.Value(), 10))
			case kindFunc:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, strconv.FormatFloat(v, 'g', -1, 64))
			case kindHistogram:
				snap := s.h.Snapshot()
				var cum uint64
				for i, n := range snap.Buckets {
					cum += n
					le := strconv.FormatInt(HistBucketUpper(i), 10)
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, spliceLabel(s.labels, "le", le), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, spliceLabel(s.labels, "le", "+Inf"), snap.Count)
				fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, s.labels, snap.Sum)
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, snap.Count)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PromContentType is the Content-Type for text exposition responses.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves the registry in exposition format; mount it at
// /metricsz.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = r.WriteProm(w)
	})
}
