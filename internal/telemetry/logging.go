package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync/atomic"
)

// logLevel is the process-wide level gate shared by every component
// logger; SetLogLevel (driven by -log-level flags) moves it at runtime.
var logLevel slog.LevelVar

// logHandler is swappable so cmds can redirect (a stdio worker owns
// stderr conventions) and tests can capture output.
var logHandler atomic.Pointer[slog.Handler]

func init() {
	logLevel.Set(slog.LevelInfo)
	h := slog.Handler(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &logLevel}))
	logHandler.Store(&h)
}

// SetLogLevel parses "debug" / "info" / "warn" / "error" and moves the
// shared level gate.
func SetLogLevel(s string) error {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		logLevel.Set(slog.LevelDebug)
	case "info", "":
		logLevel.Set(slog.LevelInfo)
	case "warn", "warning":
		logLevel.Set(slog.LevelWarn)
	case "error":
		logLevel.Set(slog.LevelError)
	default:
		return fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error)", s)
	}
	return nil
}

// SetLogOutput redirects all component loggers to w.
func SetLogOutput(w io.Writer) {
	h := slog.Handler(slog.NewTextHandler(w, &slog.HandlerOptions{Level: &logLevel}))
	logHandler.Store(&h)
}

// Logger returns a component-keyed structured logger (component=name
// on every record). Safe to keep in a package-level var: the handler
// is resolved at log time, so later SetLogOutput/SetLogLevel calls
// still apply.
func Logger(component string) *slog.Logger {
	return slog.New(&lateHandler{attrs: []slog.Attr{slog.String("component", component)}})
}

// lateHandler resolves the current process handler on every record.
type lateHandler struct {
	attrs  []slog.Attr
	groups []string
}

func (h *lateHandler) resolve() slog.Handler {
	cur := *logHandler.Load()
	for _, g := range h.groups {
		cur = cur.WithGroup(g)
	}
	if len(h.attrs) > 0 {
		cur = cur.WithAttrs(h.attrs)
	}
	return cur
}

func (h *lateHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= logLevel.Level()
}

func (h *lateHandler) Handle(ctx context.Context, r slog.Record) error {
	return h.resolve().Handle(ctx, r)
}

func (h *lateHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := &lateHandler{groups: h.groups}
	n.attrs = append(append([]slog.Attr{}, h.attrs...), attrs...)
	return n
}

func (h *lateHandler) WithGroup(name string) slog.Handler {
	n := &lateHandler{attrs: h.attrs}
	n.groups = append(append([]string{}, h.groups...), name)
	return n
}

// PprofMux returns a mux exposing the standard /debug/pprof/ handlers.
// pprof is opt-in (-pprof-listen): nothing is mounted on any serving
// mux unless a cmd asks for it.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsMux returns a mux exposing reg at /metricsz (and nothing
// else) for -metrics-listen sidecar listeners.
func MetricsMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metricsz", MetricsHandler(reg))
	return mux
}

// ListenAndServeDebug binds addr and serves mux in a goroutine,
// returning the bound address (so ":0" works in tests and smoke runs).
func ListenAndServeDebug(addr string, mux *http.ServeMux) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
