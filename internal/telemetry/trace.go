package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one finished span. Times are absolute unix nanoseconds
// so spans recorded in a worker process line up with coordinator spans
// on the same host clock. Proc/Track choose the Chrome trace
// process/thread rows the span renders on; Parent records explicit
// lineage across processes (Chrome "X" events nest by time within a
// track, the parent ID is kept in args for tooling).
type SpanData struct {
	ID     uint64
	Parent uint64
	Name   string
	Proc   string
	Track  string
	Start  int64 // unix nanos
	End    int64 // unix nanos
	Args   []Label
}

// Tracer collects spans. A nil *Tracer is the disabled tracer: Start
// returns nil, (*Span).End no-ops, and the hot path is one pointer
// compare — distributed runs pay nothing unless -trace is set.
type Tracer struct {
	traceID uint64
	nextID  atomic.Uint64
	proc    string

	mu    sync.Mutex
	spans []SpanData
}

// splitmix64 mixes a seed into a well-distributed 64-bit value; used
// to derive trace and span-ID bases without a randomness dependency.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTracer starts a trace rooted in this process. proc labels the
// Chrome process row spans default to (e.g. "coordinator").
func NewTracer(proc string) *Tracer {
	t := &Tracer{
		traceID: splitmix64(uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())),
		proc:    proc,
	}
	t.nextID.Store(t.traceID)
	return t
}

// NewChildTracer continues a trace propagated from another process:
// traceID is the incoming trace ID, base seeds this process's span-ID
// space away from the parent's so IDs don't collide across processes.
func NewChildTracer(proc string, traceID, base uint64) *Tracer {
	t := &Tracer{traceID: traceID, proc: proc}
	t.nextID.Store(splitmix64(base ^ uint64(os.Getpid())<<20 ^ uint64(time.Now().UnixNano())))
	return t
}

// TraceID identifies the trace; zero on a nil tracer means "tracing
// off" on the wire.
func (t *Tracer) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.traceID
}

// Span is an in-flight span; nil when tracing is disabled.
type Span struct {
	t *Tracer
	d SpanData
}

// Start opens a span under parent (0 for a root span). The span is
// recorded when End is called.
func (t *Tracer) Start(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, d: SpanData{
		ID:     t.nextID.Add(1),
		Parent: parent,
		Name:   name,
		Proc:   t.proc,
		Start:  time.Now().UnixNano(),
	}}
}

// ID returns the span's ID (0 when disabled) for propagation to
// children, including across the wire.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.d.ID
}

// SetTrack assigns the Chrome thread row (e.g. "shard 3"). Spans with
// no track render on a per-process default row.
func (s *Span) SetTrack(track string) {
	if s != nil {
		s.d.Track = track
	}
}

// Annotate attaches a key=value arg shown in trace viewers.
func (s *Span) Annotate(key, value string) {
	if s != nil {
		s.d.Args = append(s.d.Args, Label{Key: key, Value: value})
	}
}

// End closes and records the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.d.End = time.Now().UnixNano()
	s.t.Add(s.d)
}

// Add records an already-finished span — the ingestion path for spans
// shipped back from workers, and the deterministic path for tests.
func (t *Tracer) Add(d SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, d)
	t.mu.Unlock()
}

// Spans copies the recorded spans (sorted by start time, then ID).
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// chromeEvent is one entry in the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome dumps the trace as Chrome trace-event JSON (the
// {"traceEvents": [...]} object form), loadable in Perfetto and
// chrome://tracing. Process and thread rows are named with metadata
// events; timestamps are rebased to the earliest span so the numbers
// stay small. Output is deterministic for a fixed span set.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	var t0 int64
	if len(spans) > 0 {
		t0 = spans[0].Start
	}

	// Assign pid/tid numbers in first-appearance order of the sorted
	// spans so the mapping is stable.
	pids := map[string]int{}
	tids := map[string]int{} // keyed proc+"\x00"+track
	var events []chromeEvent
	for _, sp := range spans {
		pid, ok := pids[sp.Proc]
		if !ok {
			pid = len(pids) + 1
			pids[sp.Proc] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]string{"name": sp.Proc},
			})
		}
		track := sp.Track
		if track == "" {
			track = "main"
		}
		tkey := sp.Proc + "\x00" + track
		tid, ok := tids[tkey]
		if !ok {
			tid = len(tids) + 1
			tids[tkey] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": track},
			})
		}
		args := map[string]string{
			"span":   fmt.Sprintf("%#x", sp.ID),
			"parent": fmt.Sprintf("%#x", sp.Parent),
		}
		for _, a := range sp.Args {
			args[a.Key] = a.Value
		}
		end := sp.End
		if end < sp.Start {
			end = sp.Start
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Ph: "X",
			Ts:  float64(sp.Start-t0) / 1e3,
			Dur: float64(end-sp.Start) / 1e3,
			Pid: pid, Tid: tid, Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{TraceEvents: events, Unit: "ms"})
}

// WriteChromeFile writes the trace to path (0644).
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
