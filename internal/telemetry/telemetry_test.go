package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterStriping(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestNilMetricsNoop(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(1)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Counter("x", "") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{-3, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}, {1 << 50, HistBuckets - 1}}
	for _, c := range cases {
		if got := HistBucketOf(c.v); got != c.want {
			t.Errorf("HistBucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	// Median of 1..1000 is ~500, bucket [256,512) → upper bound 512.
	if q := s.Quantile(0.5); q != 512 {
		t.Errorf("p50 = %d, want 512", q)
	}
	if q := s.Quantile(0.99); q != 1024 {
		t.Errorf("p99 = %d, want 1024", q)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile must be 0")
	}
}

func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("x_total", "help", L("k", "w"))
	if a == c {
		t.Fatal("different labels must be a different series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "help")
}

// TestRegistryRace hammers registration and observation from many
// goroutines; run under -race this is the concurrency stress test for
// the registry hot paths.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			lab := L("w", string(rune('a'+w%4)))
			for i := 0; i < 2000; i++ {
				r.Counter("race_total", "h", lab).Inc()
				r.Gauge("race_gauge", "h").Set(int64(i))
				r.Histogram("race_hist", "h").Observe(int64(i % 4096))
				if i%500 == 0 {
					var buf bytes.Buffer
					if err := r.WriteProm(&buf); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	var total int64
	for _, s := range []string{"a", "b", "c", "d"} {
		total += r.Counter("race_total", "h", L("w", s)).Value()
	}
	if want := int64(workers * 2000); total != want {
		t.Fatalf("race_total = %d, want %d", total, want)
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("activeiter_requests_total", "Requests served.", L("endpoint", "match")).Add(42)
	r.Counter("activeiter_requests_total", "Requests served.", L("endpoint", "score")).Add(7)
	r.Gauge("activeiter_inflight", "In-flight requests.").Set(3)
	r.Func("activeiter_uptime_seconds", "Process uptime.", func() float64 { return 12.5 })
	h := r.Histogram("activeiter_latency_ns", "Latency.", L("endpoint", "match"))
	h.Observe(900)
	h.Observe(1500)
	h.Observe(3000)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	// Sanity on the exposition grammar before golden-pinning it.
	out := buf.String()
	for _, want := range []string{
		"# TYPE activeiter_requests_total counter",
		`activeiter_requests_total{endpoint="match"} 42`,
		"# TYPE activeiter_latency_ns histogram",
		`activeiter_latency_ns_bucket{endpoint="match",le="+Inf"} 3`,
		`activeiter_latency_ns_sum{endpoint="match"} 5400`,
		"activeiter_uptime_seconds 12.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	checkGolden(t, "exposition.prom", buf.Bytes())
}

func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer("coordinator")
	// Deterministic spans via the ingestion path (the same path worker
	// spans arrive through), with fixed IDs and times.
	base := int64(1700000000_000000000)
	tr.Add(SpanData{ID: 0x10, Name: "run", Proc: "align", Track: "run", Start: base, End: base + 10e6})
	tr.Add(SpanData{ID: 0x11, Parent: 0x10, Name: "shard 0 attempt 1", Proc: "align", Track: "shard 0", Start: base + 1e6, End: base + 9e6})
	tr.Add(SpanData{ID: 0x900, Parent: 0x11, Name: "train", Proc: "align", Track: "shard 0", Start: base + 2e6, End: base + 8e6,
		Args: []Label{L("origin", "worker")}})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph": "X"`, `"ph": "M"`, `"origin": "worker"`, `"parent": "0x11"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q in:\n%s", want, out)
		}
	}
	checkGolden(t, "trace.json", buf.Bytes())
}

func TestTracerDisabledIsFree(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", 0)
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp.SetTrack("t")
	sp.Annotate("k", "v")
	sp.End()
	if sp.ID() != 0 || tr.TraceID() != 0 {
		t.Fatal("nil tracer IDs must be zero")
	}
	tr.Add(SpanData{})
	if tr.Spans() != nil {
		t.Fatal("nil tracer has no spans")
	}
}

func TestTracerSpanLifecycle(t *testing.T) {
	tr := NewTracer("test")
	if tr.TraceID() == 0 {
		t.Fatal("trace ID must be nonzero")
	}
	root := tr.Start("root", 0)
	child := tr.Start("child", root.ID())
	child.SetTrack("shard 1")
	child.Annotate("attempt", "1")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "root" || spans[1].Parent != spans[0].ID {
		t.Fatalf("bad lineage: %+v", spans)
	}
	if spans[1].End < spans[1].Start {
		t.Fatal("span end before start")
	}
}

func TestSetLogLevel(t *testing.T) {
	defer SetLogLevel("info")
	for _, ok := range []string{"debug", "info", "WARN", "error", ""} {
		if err := SetLogLevel(ok); err != nil {
			t.Errorf("SetLogLevel(%q) = %v", ok, err)
		}
	}
	if err := SetLogLevel("loud"); err == nil {
		t.Error("bogus level must error")
	}
}

func TestComponentLoggerHonorsOutputSwap(t *testing.T) {
	logger := Logger("testcomp")
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(os.Stderr)
	logger.Info("hello", "k", 1)
	out := buf.String()
	if !strings.Contains(out, "component=testcomp") || !strings.Contains(out, "hello") {
		t.Fatalf("log output = %q", out)
	}
	SetLogLevel("error")
	defer SetLogLevel("info")
	buf.Reset()
	logger.Info("suppressed")
	if buf.Len() != 0 {
		t.Fatalf("info record leaked past error level: %q", buf.String())
	}
}
