package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// ErrSingular is returned by LU when the input matrix is numerically
// singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle, full n×n storage
}

// NewCholesky factors the symmetric positive definite matrix a.
// Only the lower triangle of a is read. It returns ErrNotSPD if a pivot
// is non-positive.
func NewCholesky(a *Dense) (*Cholesky, error) {
	r, c := a.Dims()
	if r != c {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", r, c)
	}
	n := r
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotSPD
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// SolveVec solves A·x = b for x, where A is the factored matrix.
// It panics if len(b) does not match the matrix order.
func (ch *Cholesky) SolveVec(b Vector) Vector {
	if len(b) != ch.n {
		panic(fmt.Sprintf("linalg: Cholesky.SolveVec dimension mismatch %d vs %d", len(b), ch.n))
	}
	n, l := ch.n, ch.l
	// Forward substitution: L·z = b.
	z := make(Vector, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * z[k]
		}
		z[i] = sum / l[i*n+i]
	}
	// Backward substitution: Lᵀ·x = z.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	n    int
	lu   []float64 // combined L (unit diag, below) and U (on/above diag)
	piv  []int     // row permutation
	sign int       // determinant sign of the permutation
}

// NewLU factors the square matrix a with partial pivoting. It returns
// ErrSingular when a pivot underflows to zero.
func NewLU(a *Dense) (*LU, error) {
	r, c := a.Dims()
	if r != c {
		return nil, fmt.Errorf("linalg: LU needs a square matrix, got %dx%d", r, c)
	}
	n := r
	lu := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lu[i*n+j] = a.At(i, j)
		}
	}
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at/below row k.
		p, maxAbs := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu[i*n+k] / pivot
			lu[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= f * lu[k*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b for x using the factorization. It panics if
// len(b) does not match the matrix order.
func (f *LU) SolveVec(b Vector) Vector {
	if len(b) != f.n {
		panic(fmt.Sprintf("linalg: LU.SolveVec dimension mismatch %d vs %d", len(b), f.n))
	}
	n, lu := f.n, f.lu
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward: L·z = P·b (unit diagonal).
	for i := 1; i < n; i++ {
		sum := x[i]
		for k := 0; k < i; k++ {
			sum -= lu[i*n+k] * x[k]
		}
		x[i] = sum
	}
	// Backward: U·x = z.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := i + 1; k < n; k++ {
			sum -= lu[i*n+k] * x[k]
		}
		x[i] = sum / lu[i*n+i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveSPD solves A·x = b for a symmetric positive definite A, preferring
// Cholesky and falling back to LU when A is borderline indefinite due to
// rounding.
func SolveSPD(a *Dense, b Vector) (Vector, error) {
	if ch, err := NewCholesky(a); err == nil {
		return ch.SolveVec(b), nil
	}
	lu, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return lu.SolveVec(b), nil
}
