package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
//
// The zero value is an empty 0×0 matrix; use NewDense to allocate storage.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense returns a zeroed r×c matrix. It panics on negative dimensions.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: NewDense negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds an r×c matrix from row-major data. The slice is
// copied. It panics if len(data) != r*c.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: NewDenseFrom needs %d values, got %d", r*c, len(data)))
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Inc adds v to the element at row i, column j.
func (m *Dense) Inc(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a Vector sharing no storage with m.
func (m *Dense) Row(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a Vector aliasing m's storage. Mutating the
// returned vector mutates the matrix.
func (m *Dense) RowView(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	return Vector(m.data[i*m.cols : (i+1)*m.cols])
}

// Col returns column j as a new Vector.
func (m *Dense) Col(j int) Vector {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range %d", j, m.cols))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Add returns m + b as a new matrix. It panics on dimension mismatch.
func (m *Dense) Add(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: Add dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m − b as a new matrix. It panics on dimension mismatch.
func (m *Dense) Sub(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: Sub dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns alpha·m as a new matrix.
func (m *Dense) Scale(alpha float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= alpha
	}
	return out
}

// Mul returns the matrix product m·b. It panics on inner-dimension
// mismatch.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v. It panics on dimension
// mismatch.
func (m *Dense) MulVec(v Vector) Vector {
	return m.MulVecInto(make(Vector, m.rows), v)
}

// MulVecInto writes m·v into dst and returns it, avoiding an allocation
// when the caller holds a reusable buffer (the training loop multiplies
// every internal iteration). It panics on dimension mismatch.
func (m *Dense) MulVecInto(dst, v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", m.rows, m.cols, len(v)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: MulVecInto dst length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
	return dst
}

// TMulVec returns mᵀ·v without materializing the transpose. It panics on
// dimension mismatch.
func (m *Dense) TMulVec(v Vector) Vector {
	if m.rows != len(v) {
		panic(fmt.Sprintf("linalg: TMulVec dimension mismatch %dx%d ᵀ· %d", m.rows, m.cols, len(v)))
	}
	out := make(Vector, m.cols)
	for i := 0; i < m.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, x := range row {
			out[j] += vi * x
		}
	}
	return out
}

// Gram returns the Gram matrix mᵀ·m (cols×cols) without materializing the
// transpose. The result is symmetric positive semi-definite.
func (m *Dense) Gram() *Dense {
	out := NewDense(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a, va := range row {
			if va == 0 {
				continue
			}
			orow := out.data[a*m.cols : (a+1)*m.cols]
			for b, vb := range row {
				orow[b] += va * vb
			}
		}
	}
	return out
}

// EqualApprox reports whether m and b share dimensions and all entries
// differ by at most tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.data[i*m.cols+j])
		}
	}
	b.WriteByte(']')
	return b.String()
}
