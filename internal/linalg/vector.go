// Package linalg provides the dense linear-algebra kernels used by the
// ActiveIter model: vectors, row-major dense matrices, Cholesky and LU
// factorizations, and the ridge-regression closed form
//
//	w = c (I + c XᵀX)⁻¹ Xᵀ y
//
// from Section III-D of the paper. Everything is implemented with the
// standard library only. Feature dimensionality in this system is small
// (tens), so the dense kernels favour clarity and numerical robustness
// over blocking tricks.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product ⟨v, w⟩. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖v‖₂.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the L1 norm ‖v‖₁ = Σ|vᵢ|. The paper's convergence
// criterion (Fig. 3) is Δy = ‖yᵢ − yᵢ₋₁‖₁.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the max-abs norm ‖v‖∞.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes v ← v + alpha·w in place. It panics if lengths differ.
func (v Vector) AXPY(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AXPY dimension mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale multiplies every entry of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sub returns v − w as a new vector. It panics if lengths differ.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Sub dimension mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v + w as a new vector. It panics if lengths differ.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Add dimension mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// EqualApprox reports whether v and w have the same length and every pair
// of entries differs by at most tol.
func (v Vector) EqualApprox(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Sum returns the sum of all entries.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}
