package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float64
	}{
		{"empty", Vector{}, Vector{}, 0},
		{"ones", Vector{1, 1, 1}, Vector{1, 1, 1}, 3},
		{"mixed", Vector{1, -2, 3}, Vector{4, 5, -6}, 4 - 10 - 18},
		{"zeros", Vector{0, 0}, Vector{5, 7}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Dot(tc.b); got != tc.want {
				t.Errorf("Dot(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	Vector{1, 2}.Dot(Vector{1})
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	var empty Vector
	if got := empty.Norm2(); got != 0 {
		t.Errorf("empty Norm2 = %v, want 0", got)
	}
}

func TestVectorAXPY(t *testing.T) {
	v := Vector{1, 2, 3}
	v.AXPY(2, Vector{10, 20, 30})
	want := Vector{21, 42, 63}
	if !v.EqualApprox(want, 0) {
		t.Errorf("AXPY result %v, want %v", v, want)
	}
}

func TestVectorAddSubScale(t *testing.T) {
	a := Vector{1, 2}
	b := Vector{3, 5}
	if got := a.Add(b); !got.EqualApprox(Vector{4, 7}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.EqualApprox(Vector{2, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	c := a.Clone()
	c.Scale(-3)
	if !c.EqualApprox(Vector{-3, -6}, 0) {
		t.Errorf("Scale = %v", c)
	}
	// Clone must not alias.
	if !a.EqualApprox(Vector{1, 2}, 0) {
		t.Errorf("Clone aliased its source: %v", a)
	}
}

func TestVectorSum(t *testing.T) {
	if got := (Vector{1, 2, 3.5}).Sum(); got != 6.5 {
		t.Errorf("Sum = %v, want 6.5", got)
	}
}

func TestVectorEqualApprox(t *testing.T) {
	a := Vector{1, 2}
	if a.EqualApprox(Vector{1}, 1) {
		t.Error("EqualApprox should reject different lengths")
	}
	if !a.EqualApprox(Vector{1.05, 1.95}, 0.1) {
		t.Error("EqualApprox should accept within tolerance")
	}
	if a.EqualApprox(Vector{1.2, 2}, 0.1) {
		t.Error("EqualApprox should reject outside tolerance")
	}
}

// Property: dot product is symmetric and Cauchy–Schwarz holds.
func TestVectorDotProperties(t *testing.T) {
	f := func(raw []float64) bool {
		a := sanitize(raw)
		b := make(Vector, len(a))
		for i := range b {
			b[i] = float64(i%7) - 3
		}
		dotAB := a.Dot(b)
		dotBA := b.Dot(a)
		if math.Abs(dotAB-dotBA) > 1e-9*(1+math.Abs(dotAB)) {
			return false
		}
		return math.Abs(dotAB) <= a.Norm2()*b.Norm2()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Norm1 and Norm2.
func TestVectorNormTriangle(t *testing.T) {
	f := func(raw []float64) bool {
		a := sanitize(raw)
		b := make(Vector, len(a))
		for i := range b {
			b[i] = -a[i] / 2
		}
		sum := a.Add(b)
		return sum.Norm1() <= a.Norm1()+b.Norm1()+1e-9 &&
			sum.Norm2() <= a.Norm2()+b.Norm2()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitize clamps quick-generated floats into a well-behaved range so
// property tests exercise algebraic identities rather than overflow.
func sanitize(raw []float64) Vector {
	const cap = 64
	out := make(Vector, 0, len(raw))
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		if x > cap {
			x = cap
		}
		if x < -cap {
			x = -cap
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		out = Vector{0}
	}
	return out
}
