package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	m.Set(0, 1, 5)
	m.Inc(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Errorf("At(0,1) = %v, want 7", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Errorf("zero value not preserved: %v", got)
	}
}

func TestDenseOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(5) },
		func() { m.Col(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestDenseRowColViews(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := m.Row(1); !got.EqualApprox(Vector{4, 5, 6}, 0) {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(2); !got.EqualApprox(Vector{3, 6}, 0) {
		t.Errorf("Col(2) = %v", got)
	}
	// Row copies; RowView aliases.
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row should copy")
	}
	rv := m.RowView(0)
	rv[0] = 42
	if m.At(0, 0) != 42 {
		t.Error("RowView should alias")
	}
}

func TestDenseTranspose(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	want := NewDenseFrom(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !mt.EqualApprox(want, 0) {
		t.Errorf("T = %v, want %v", mt, want)
	}
	if !mt.T().EqualApprox(m, 0) {
		t.Error("double transpose should round-trip")
	}
}

func TestDenseMul(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := a.Mul(b)
	want := NewDenseFrom(2, 2, []float64{58, 64, 139, 154})
	if !got.EqualApprox(want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestDenseMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 4, 4)
	if !a.Mul(Eye(4)).EqualApprox(a, 1e-12) {
		t.Error("A·I != A")
	}
	if !Eye(4).Mul(a).EqualApprox(a, 1e-12) {
		t.Error("I·A != A")
	}
}

func TestDenseMulVec(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := Vector{1, 0, -1}
	got := a.MulVec(v)
	if !got.EqualApprox(Vector{-2, -2}, 1e-12) {
		t.Errorf("MulVec = %v", got)
	}
	gotT := a.TMulVec(Vector{1, -1})
	if !gotT.EqualApprox(Vector{-3, -3, -3}, 1e-12) {
		t.Errorf("TMulVec = %v", gotT)
	}
}

func TestDenseGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		a := randomDense(rng, 5+trial, 3)
		got := a.Gram()
		want := a.T().Mul(a)
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("Gram != AᵀA (trial %d)", trial)
		}
	}
}

func TestDenseAddSubScale(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{10, 20, 30, 40})
	if got := a.Add(b); !got.EqualApprox(NewDenseFrom(2, 2, []float64{11, 22, 33, 44}), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.EqualApprox(NewDenseFrom(2, 2, []float64{9, 18, 27, 36}), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.EqualApprox(NewDenseFrom(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDenseMaxAbs(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, -9, 3, 4})
	if got := m.MaxAbs(); got != 9 {
		t.Errorf("MaxAbs = %v, want 9", got)
	}
}

func TestNewDenseFromPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseFrom(2, 2, []float64{1, 2, 3})
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ on random matrices.
func TestDenseMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomDense(rng, m, k)
		b := randomDense(rng, k, n)
		left := a.Mul(b).T()
		right := b.T().Mul(a.T())
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestDenseMulDistributesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randomDense(r, m, k)
		b := randomDense(r, k, n)
		c := randomDense(r, k, n)
		left := a.Mul(b.Add(c))
		right := a.Mul(b).Add(a.Mul(c))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, math.Round(rng.NormFloat64()*100)/100)
		}
	}
	return m
}
