package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD returns BᵀB + I which is symmetric positive definite.
func randomSPD(rng *rand.Rand, n int) *Dense {
	b := randomDense(rng, n+2, n)
	g := b.Gram()
	for i := 0; i < n; i++ {
		g.Inc(i, i, 1)
	}
	return g
}

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2].
	a := NewDenseFrom(2, 2, []float64{4, 2, 2, 3})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	x := ch.SolveVec(Vector{10, 9})
	if !x.EqualApprox(Vector{1.5, 2}, 1e-12) {
		t.Errorf("x = %v, want [1.5 2]", x)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{0, 0, 0, -1})
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewDense(2, 3)); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestCholeskySolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 20; n++ {
		a := randomSPD(rng, n)
		want := make(Vector, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := ch.SolveVec(b)
		if !got.EqualApprox(want, 1e-7*float64(n)) {
			t.Fatalf("n=%d: solve mismatch\n got %v\nwant %v", n, got, want)
		}
	}
}

func TestLUSolveKnown(t *testing.T) {
	// Requires pivoting: zero in the (0,0) position.
	a := NewDenseFrom(2, 2, []float64{0, 1, 2, 0})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatalf("NewLU: %v", err)
	}
	x := lu.SolveVec(Vector{3, 4}) // 0·x0+1·x1=3, 2·x0=4 → x=[2,3]
	if !x.EqualApprox(Vector{2, 3}, 1e-12) {
		t.Errorf("x = %v, want [2 3]", x)
	}
	if det := lu.Det(); math.Abs(det-(-2)) > 1e-12 {
		t.Errorf("Det = %v, want -2", det)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLURejectsNonSquare(t *testing.T) {
	if _, err := NewLU(NewDense(3, 2)); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= 20; n++ {
		a := randomDense(rng, n, n)
		for i := 0; i < n; i++ {
			a.Inc(i, i, float64(n)) // diagonally dominant → nonsingular
		}
		want := make(Vector, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		lu, err := NewLU(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := lu.SolveVec(b)
		if !got.EqualApprox(want, 1e-7*float64(n)) {
			t.Fatalf("n=%d: solve mismatch", n)
		}
	}
}

func TestSolveSPDFallsBackToLU(t *testing.T) {
	// Not SPD (negative definite) but nonsingular: Cholesky fails, LU works.
	a := NewDenseFrom(2, 2, []float64{-4, 0, 0, -9})
	x, err := SolveSPD(a, Vector{8, 18})
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	if !x.EqualApprox(Vector{-2, -2}, 1e-12) {
		t.Errorf("x = %v, want [-2 -2]", x)
	}
}

// Property: Cholesky solution satisfies residual ‖Ax−b‖ ≈ 0.
func TestCholeskyResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randomSPD(rng, n)
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := ch.SolveVec(b)
		resid := a.MulVec(x).Sub(b)
		return resid.NormInf() <= 1e-6*(1+b.NormInf())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRidgeMatchesNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randomDense(rng, 40, 6)
	y := make(Vector, 40)
	for i := range y {
		y[i] = rng.Float64()
	}
	for _, c := range []float64{0.1, 1, 10} {
		w, err := RidgeSolve(x, y, c)
		if err != nil {
			t.Fatalf("c=%v: %v", c, err)
		}
		// Verify the stationarity condition c·Xᵀ(Xw−y) + w = 0.
		grad := x.TMulVec(x.MulVec(w).Sub(y))
		grad.Scale(c)
		grad.AXPY(1, w)
		if grad.NormInf() > 1e-8 {
			t.Errorf("c=%v: gradient not zero: %v", c, grad.NormInf())
		}
	}
}

func TestRidgeShrinksWithSmallC(t *testing.T) {
	// As c → 0 the regularizer dominates and ‖w‖ → 0.
	rng := rand.New(rand.NewSource(23))
	x := randomDense(rng, 30, 4)
	y := make(Vector, 30)
	for i := range y {
		y[i] = 1
	}
	wBig, err := RidgeSolve(x, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	wSmall, err := RidgeSolve(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if wSmall.Norm2() >= wBig.Norm2() {
		t.Errorf("‖w(c=1e-6)‖=%v should be < ‖w(c=100)‖=%v", wSmall.Norm2(), wBig.Norm2())
	}
	if wSmall.Norm2() > 1e-3 {
		t.Errorf("‖w‖ = %v, want ≈0 for tiny c", wSmall.Norm2())
	}
}

func TestRidgeRejectsBadC(t *testing.T) {
	x := NewDense(3, 2)
	if _, err := NewRidge(x, 0); err == nil {
		t.Error("expected error for c=0")
	}
	if _, err := NewRidge(x, -1); err == nil {
		t.Error("expected error for c<0")
	}
}

func TestRidgeReusesFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	x := randomDense(rng, 25, 5)
	r, err := NewRidge(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		y := make(Vector, 25)
		for i := range y {
			y[i] = rng.Float64()
		}
		got := r.Solve(x, y)
		want, err := RidgeSolve(x, y, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualApprox(want, 1e-10) {
			t.Fatalf("reused solve differs from fresh solve")
		}
	}
}
