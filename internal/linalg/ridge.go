package linalg

import "fmt"

// Ridge solves the regularized least-squares problem from the paper's
// internal iteration step (1-1),
//
//	min_w  (c/2)·‖X·w − y‖₂² + (1/2)·‖w‖₂² ,
//
// whose closed-form solution is
//
//	w = c (I + c XᵀX)⁻¹ Xᵀ y = (I/c + XᵀX)⁻¹ Xᵀ y .
//
// X is n×d (one row per candidate anchor link), y is the current label
// vector of length n, and c > 0 weighs the fit against the regularizer.
// The d×d system is solved with a Cholesky factorization; I/c + XᵀX is
// symmetric positive definite for any c > 0.
type Ridge struct {
	c    float64
	gram *Dense    // XᵀX + I/c, factored lazily
	chol *Cholesky // cached factorization
}

// NewRidge prepares a ridge solver for the design matrix x with fit
// weight c. The Gram matrix is computed once; repeated Solve calls with
// different label vectors reuse the factorization, which is exactly the
// access pattern of ActiveIter's alternating updates (w depends on y
// through Xᵀy only).
func NewRidge(x *Dense, c float64) (*Ridge, error) {
	if c <= 0 {
		return nil, fmt.Errorf("linalg: ridge weight c must be positive, got %v", c)
	}
	g := x.Gram()
	d := g.Rows()
	for i := 0; i < d; i++ {
		g.Inc(i, i, 1/c)
	}
	chol, err := NewCholesky(g)
	if err != nil {
		return nil, fmt.Errorf("linalg: ridge normal equations not SPD: %w", err)
	}
	return &Ridge{c: c, gram: g, chol: chol}, nil
}

// Solve returns w = (I/c + XᵀX)⁻¹ Xᵀ y for the design matrix given at
// construction. x must be the same matrix (it is only used to form Xᵀy).
func (r *Ridge) Solve(x *Dense, y Vector) Vector {
	xty := x.TMulVec(y)
	return r.chol.SolveVec(xty)
}

// RidgeSolve is a one-shot convenience wrapper around NewRidge + Solve.
func RidgeSolve(x *Dense, y Vector, c float64) (Vector, error) {
	r, err := NewRidge(x, c)
	if err != nil {
		return nil, err
	}
	return r.Solve(x, y), nil
}
