package schema

import (
	"fmt"
	"strings"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// ParsePath parses the textual meta path DSL into a MetaPath. The
// grammar, whitespace-separated:
//
//	path  := node (arrow node)*
//	node  := name [ '(' ('1'|'2') ')' ]      e.g. user(1), timestamp
//	arrow := '-' name '->'                   forward traversal
//	       | '<-' name '-'                   reverse traversal
//	       | '<-' name '->'                  undirected (anchor only)
//
// Example (P1 from Table I):
//
//	user(1) -follow-> user(1) <-anchor-> user(2) <-follow- user(2)
//
// Nodes without a network suffix are shared attribute types. The result
// is syntactic; call Validate against a Schema to type-check it.
func ParsePath(input string) (MetaPath, error) {
	fields := strings.Fields(input)
	if len(fields) == 0 {
		return MetaPath{}, fmt.Errorf("schema: empty meta path")
	}
	if len(fields)%2 == 0 {
		return MetaPath{}, fmt.Errorf("schema: meta path must alternate node arrow node ..., got %d tokens", len(fields))
	}
	nodes := make([]TypedNode, 0, (len(fields)+1)/2)
	type arrow struct {
		rel        hetnet.LinkType
		forward    bool
		undirected bool
	}
	arrows := make([]arrow, 0, len(fields)/2)
	for i, tok := range fields {
		if i%2 == 0 {
			n, err := parseNode(tok)
			if err != nil {
				return MetaPath{}, err
			}
			nodes = append(nodes, n)
			continue
		}
		switch {
		case len(tok) >= 5 && strings.HasPrefix(tok, "<-") && strings.HasSuffix(tok, "->"):
			rel := tok[2 : len(tok)-2]
			if rel == "" {
				return MetaPath{}, fmt.Errorf("schema: empty relation in arrow %q", tok)
			}
			arrows = append(arrows, arrow{rel: hetnet.LinkType(rel), undirected: true})
		case len(tok) >= 4 && strings.HasPrefix(tok, "<-") && strings.HasSuffix(tok, "-"):
			rel := tok[2 : len(tok)-1]
			if rel == "" {
				return MetaPath{}, fmt.Errorf("schema: empty relation in arrow %q", tok)
			}
			arrows = append(arrows, arrow{rel: hetnet.LinkType(rel), forward: false})
		case len(tok) >= 4 && strings.HasPrefix(tok, "-") && strings.HasSuffix(tok, "->"):
			rel := tok[1 : len(tok)-2]
			if rel == "" {
				return MetaPath{}, fmt.Errorf("schema: empty relation in arrow %q", tok)
			}
			arrows = append(arrows, arrow{rel: hetnet.LinkType(rel), forward: true})
		default:
			return MetaPath{}, fmt.Errorf("schema: malformed arrow %q (want -rel->, <-rel- or <-rel->)", tok)
		}
	}
	edges := make([]Edge, len(arrows))
	for k, a := range arrows {
		from, to := nodes[k], nodes[k+1]
		switch {
		case a.undirected:
			if a.rel != Anchor {
				return MetaPath{}, fmt.Errorf("schema: relation %q cannot be undirected; only anchor may use <-rel->", a.rel)
			}
			edges[k] = AnchorEdge(from, to)
		case a.forward:
			edges[k] = Fwd(a.rel, from, to)
		default:
			edges[k] = Rev(a.rel, from, to)
		}
	}
	return MetaPath{Edges: edges}, nil
}

func parseNode(tok string) (TypedNode, error) {
	if open := strings.IndexByte(tok, '('); open >= 0 {
		if !strings.HasSuffix(tok, ")") || open == 0 {
			return TypedNode{}, fmt.Errorf("schema: malformed node %q", tok)
		}
		name := tok[:open]
		ref := tok[open+1 : len(tok)-1]
		switch ref {
		case "1":
			return TypedNode{Type: hetnet.NodeType(name), Net: Net1}, nil
		case "2":
			return TypedNode{Type: hetnet.NodeType(name), Net: Net2}, nil
		default:
			return TypedNode{}, fmt.Errorf("schema: node %q has invalid network ref %q (want 1 or 2)", tok, ref)
		}
	}
	if tok == "" {
		return TypedNode{}, fmt.Errorf("schema: empty node token")
	}
	return TypedNode{Type: hetnet.NodeType(tok), Net: SharedNet}, nil
}

// MustParsePath is ParsePath panicking on error, for static declarations
// in tests and examples.
func MustParsePath(input string) MetaPath {
	p, err := ParsePath(input)
	if err != nil {
		panic(err)
	}
	return p
}
