package schema

import (
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

func TestExtendedLibraryShape(t *testing.T) {
	lib := ExtendedLibrary()
	// 4 follow + 3 attribute paths.
	if len(lib.Paths) != 7 {
		t.Errorf("paths = %d, want 7", len(lib.Paths))
	}
	// 6 f² + 3 a² pairs + 12 f,a + 12 f,a² + 18 f²,a² = 51.
	if len(lib.Diagrams) != 51 {
		t.Errorf("diagrams = %d, want 51", len(lib.Diagrams))
	}
	if got := len(lib.All()); got != 58 {
		t.Errorf("total = %d, want 58", got)
	}
	if err := lib.Validate(SocialSchema()); err != nil {
		t.Errorf("extended library validation: %v", err)
	}
	// IDs unique.
	seen := make(map[string]bool)
	for _, n := range lib.All() {
		if seen[n.ID] {
			t.Errorf("duplicate ID %q", n.ID)
		}
		seen[n.ID] = true
	}
	// P7 present with word semantics.
	var hasP7 bool
	for _, n := range lib.Paths {
		if n.ID == "P7" {
			hasP7 = true
			if !strings.Contains(n.Semantics, "Word") {
				t.Errorf("P7 semantics = %q", n.Semantics)
			}
		}
	}
	if !hasP7 {
		t.Error("P7 missing from extended library")
	}
}

func TestExtendedLibrarySupersetOfStandard(t *testing.T) {
	std := StandardLibrary()
	ext := ExtendedLibrary()
	extNotations := make(map[string]bool)
	for _, n := range ext.All() {
		extNotations[n.D.Notation()] = true
	}
	for _, n := range std.All() {
		if !extNotations[n.D.Notation()] {
			t.Errorf("standard member %s missing from extended library", n.ID)
		}
	}
}

func TestNewLibraryPanics(t *testing.T) {
	assertPanics(t, func() { NewLibrary() })
	assertPanics(t, func() { NewLibrary(hetnet.Follow) })
}

func TestNewLibrarySingleAttribute(t *testing.T) {
	lib := NewLibrary(hetnet.At)
	// 4+1 paths; 6 f² + 0 a² + 4 f,a + 0 f,a² + 0 f²,a² = 10 diagrams.
	if len(lib.Paths) != 5 {
		t.Errorf("paths = %d, want 5", len(lib.Paths))
	}
	if len(lib.Diagrams) != 10 {
		t.Errorf("diagrams = %d, want 10", len(lib.Diagrams))
	}
	if err := lib.Validate(SocialSchema()); err != nil {
		t.Errorf("single-attribute library invalid: %v", err)
	}
}

func TestStandardLibraryIDsStable(t *testing.T) {
	// The feature vector layout is a public contract; pin the ID order
	// prefix.
	lib := StandardLibrary()
	want := []string{"P1", "P2", "P3", "P4", "P5", "P6"}
	for i, id := range want {
		if lib.Paths[i].ID != id {
			t.Fatalf("path %d = %s, want %s", i, lib.Paths[i].ID, id)
		}
	}
	if lib.Diagrams[0].ID != "PSI_F2[P1,P2]" {
		t.Errorf("first diagram = %s", lib.Diagrams[0].ID)
	}
	if lib.Diagrams[6].ID != "PSI_A2[P5,P6]" {
		t.Errorf("a2 diagram = %s", lib.Diagrams[6].ID)
	}
	// Ψ3 of Table I = Ψ^{f,a²} with P1 (single-a² naming).
	found := false
	for _, d := range lib.Diagrams {
		if d.ID == "PSI_FA2[P1]" {
			found = true
		}
	}
	if !found {
		t.Error("PSI_FA2[P1] (Table I's Ψ3) missing")
	}
}
