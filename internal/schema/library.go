package schema

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// Named pairs a diagram with its paper identifier and semantics, e.g.
// P1 / "Common Anchored Followee" from Table I.
type Named struct {
	ID        string
	Semantics string
	D         Diagram
}

// followSegments returns the two follow segments (u1→x1 side, x2→u2
// side) of the follow meta path Pi for i ∈ {1,2,3,4}, encoding Table I:
//
//	P1: U →f U ↔ U ←f U   (followee / followee)
//	P2: U ←f U ↔ U →f U   (follower / follower)
//	P3: U →f U ↔ U →f U   (followee / follower)
//	P4: U ←f U ↔ U ←f U   (follower / followee)
//
// A "→f" on the left segment means the source user follows the anchored
// intermediate (Fwd); "←f" means the intermediate follows the source
// (Rev when traversed source→intermediate). Mirrored on the right.
func followSegments(i int) (left, right Edge) {
	switch i {
	case 1:
		return Fwd(hetnet.Follow, User1(), User1()), Rev(hetnet.Follow, User2(), User2())
	case 2:
		return Rev(hetnet.Follow, User1(), User1()), Fwd(hetnet.Follow, User2(), User2())
	case 3:
		return Fwd(hetnet.Follow, User1(), User1()), Fwd(hetnet.Follow, User2(), User2())
	case 4:
		return Rev(hetnet.Follow, User1(), User1()), Rev(hetnet.Follow, User2(), User2())
	default:
		panic(fmt.Sprintf("schema: follow path index %d out of range 1..4", i))
	}
}

// FollowPath returns the social meta path Pi (i ∈ 1..4) from Table I.
func FollowPath(i int) MetaPath {
	left, right := followSegments(i)
	return MetaPath{Edges: []Edge{left, AnchorEdge(User1(), User2()), right}}
}

// attrSegment returns the attribute round trip post(1)→attr→post(2) for
// the given attribute association relation (at or checkin or contains).
func attrSegment(rel hetnet.LinkType, attr TypedNode) Series {
	return Seq(
		Fwd(rel, Post1(), attr),
		Rev(rel, attr, Post2()),
	)
}

// AttributePath returns P5 (common timestamp), P6 (common check-in
// location) or the extension path P7 (common word) as a meta path
// U →write P →rel attr ←rel P ←write U.
func AttributePath(rel hetnet.LinkType) MetaPath {
	var attr TypedNode
	switch rel {
	case hetnet.At:
		attr = TimestampT()
	case hetnet.Checkin:
		attr = LocationT()
	case hetnet.Contains:
		attr = WordT()
	default:
		panic(fmt.Sprintf("schema: %q is not an attribute association relation", rel))
	}
	return MetaPath{Edges: []Edge{
		Fwd(hetnet.Write, User1(), Post1()),
		Fwd(rel, Post1(), attr),
		Rev(rel, attr, Post2()),
		Rev(hetnet.Write, Post2(), User2()),
	}}
}

// FollowDiagram returns Ψ^f²(Pi×Pj): the two follow paths stacked
// through the same anchored user pair — both follow patterns must hold
// between the same four users. Ψ1 in Table I is FollowDiagram(1, 2).
func FollowDiagram(i, j int) Diagram {
	li, ri := followSegments(i)
	lj, rj := followSegments(j)
	return Seq(
		Par(li, lj),
		AnchorEdge(User1(), User2()),
		Par(ri, rj),
	)
}

// AttributeDiagram returns Ψ^a²(P5×P6): one post from each user sharing
// both a timestamp and a location — the paper's fix for "dislocated"
// check-ins (Ψ2 in Table I). rels selects which attribute associations
// are stacked; the paper uses {at, checkin}.
func AttributeDiagram(rels ...hetnet.LinkType) Diagram {
	if len(rels) < 2 {
		panic("schema: AttributeDiagram needs at least two attribute relations")
	}
	branches := make([]Diagram, len(rels))
	for k, rel := range rels {
		var attr TypedNode
		switch rel {
		case hetnet.At:
			attr = TimestampT()
		case hetnet.Checkin:
			attr = LocationT()
		case hetnet.Contains:
			attr = WordT()
		default:
			panic(fmt.Sprintf("schema: %q is not an attribute association relation", rel))
		}
		branches[k] = attrSegment(rel, attr)
	}
	return Seq(
		Fwd(hetnet.Write, User1(), Post1()),
		Par(branches...),
		Rev(hetnet.Write, Post2(), User2()),
	)
}

// Library is the full feature diagram collection: Φ = P ∪ Ψ^f² ∪ Ψ^a² ∪
// Ψ^{f,a} ∪ Ψ^{f,a²} ∪ Ψ^{f²,a²} from Section III-B-2.
type Library struct {
	// Paths holds P1..P6 in order.
	Paths []Named
	// Diagrams holds the composite diagrams, grouped family by family.
	Diagrams []Named
}

// attrPathName maps an attribute association relation to its Table I
// path name (P5 = timestamps, P6 = locations) and the extension name P7
// for words.
func attrPathName(rel hetnet.LinkType) string {
	switch rel {
	case hetnet.At:
		return "P5"
	case hetnet.Checkin:
		return "P6"
	case hetnet.Contains:
		return "P7"
	default:
		panic(fmt.Sprintf("schema: %q is not an attribute association relation", rel))
	}
}

func attrPathSemantics(rel hetnet.LinkType) string {
	switch rel {
	case hetnet.At:
		return "Common Timestamp"
	case hetnet.Checkin:
		return "Common Checkin"
	case hetnet.Contains:
		return "Common Word"
	default:
		panic(fmt.Sprintf("schema: %q is not an attribute association relation", rel))
	}
}

// StandardLibrary builds the paper's complete feature set: 6 meta paths
// and 25 meta diagrams (6 Ψ^f² pairs + 1 Ψ^a² + 8 Ψ^{f,a} + 4 Ψ^{f,a²} +
// 6 Ψ^{f²,a²}), 31 features in total.
func StandardLibrary() Library {
	return NewLibrary(hetnet.At, hetnet.Checkin)
}

// ExtendedLibrary adds the word attribute the paper's data model
// carries but its evaluation does not use: P7 (common word) and the
// diagram families over all three attribute relations — 58 features.
func ExtendedLibrary() Library {
	return NewLibrary(hetnet.At, hetnet.Checkin, hetnet.Contains)
}

// NewLibrary builds the feature library over the four follow paths and
// an arbitrary set of attribute association relations: the attribute
// paths, all Ψ^f² follow pairs, Ψ^a² for every unordered attribute
// pair, and the endpoint-join families Ψ^{f,a}, Ψ^{f,a²}, Ψ^{f²,a²}.
// It panics on unknown relations or fewer than one attribute relation.
func NewLibrary(attrRels ...hetnet.LinkType) Library {
	if len(attrRels) == 0 {
		panic("schema: NewLibrary needs at least one attribute relation")
	}
	var lib Library

	followSemantics := []string{
		"Common Anchored Followee",
		"Common Anchored Follower",
		"Common Anchored Followee-Follower",
		"Common Anchored Follower-Followee",
	}
	for i := 1; i <= 4; i++ {
		lib.Paths = append(lib.Paths, Named{
			ID:        fmt.Sprintf("P%d", i),
			Semantics: followSemantics[i-1],
			D:         FollowPath(i).AsDiagram(),
		})
	}
	for _, rel := range attrRels {
		lib.Paths = append(lib.Paths, Named{
			ID:        attrPathName(rel),
			Semantics: attrPathSemantics(rel),
			D:         AttributePath(rel).AsDiagram(),
		})
	}

	// Ψ^f²: unordered pairs of distinct follow paths; Pi×Pi degenerates
	// to Pi (binary adjacency), so only i<j is kept.
	for i := 1; i <= 4; i++ {
		for j := i + 1; j <= 4; j++ {
			lib.Diagrams = append(lib.Diagrams, Named{
				ID:        fmt.Sprintf("PSI_F2[P%d,P%d]", i, j),
				Semantics: "Common Aligned Neighbors",
				D:         FollowDiagram(i, j),
			})
		}
	}

	// Ψ^a²: every unordered pair of attribute relations stacked through
	// the same post pair.
	type a2entry struct {
		id string
		d  Diagram
	}
	var a2s []a2entry
	for x := 0; x < len(attrRels); x++ {
		for y := x + 1; y < len(attrRels); y++ {
			e := a2entry{
				id: fmt.Sprintf("PSI_A2[%s,%s]", attrPathName(attrRels[x]), attrPathName(attrRels[y])),
				d:  AttributeDiagram(attrRels[x], attrRels[y]),
			}
			a2s = append(a2s, e)
			lib.Diagrams = append(lib.Diagrams, Named{
				ID:        e.id,
				Semantics: "Common Attributes",
				D:         e.d,
			})
		}
	}

	// Ψ^{f,a}: follow path and attribute path sharing endpoints only.
	for i := 1; i <= 4; i++ {
		for _, rel := range attrRels {
			lib.Diagrams = append(lib.Diagrams, Named{
				ID:        fmt.Sprintf("PSI_FA[P%d,%s]", i, attrPathName(rel)),
				Semantics: "Common Aligned Neighbor & Attribute",
				D:         Par(FollowPath(i).AsDiagram(), AttributePath(rel).AsDiagram()),
			})
		}
	}

	// Ψ^{f,a²}: follow path stacked with each joint attribute diagram.
	// Ψ3 in Table I is the i=1, (P5,P6) member.
	for i := 1; i <= 4; i++ {
		for _, e := range a2s {
			id := fmt.Sprintf("PSI_FA2[P%d]", i)
			if len(a2s) > 1 {
				id = fmt.Sprintf("PSI_FA2[P%d,%s]", i, e.id[len("PSI_A2["):len(e.id)-1])
			}
			lib.Diagrams = append(lib.Diagrams, Named{
				ID:        id,
				Semantics: "Common Aligned Neighbor & Attributes",
				D:         Par(FollowPath(i).AsDiagram(), e.d),
			})
		}
	}

	// Ψ^{f²,a²}: follow pair diagram stacked with each attribute
	// diagram.
	for i := 1; i <= 4; i++ {
		for j := i + 1; j <= 4; j++ {
			for _, e := range a2s {
				id := fmt.Sprintf("PSI_F2A2[P%d,P%d]", i, j)
				if len(a2s) > 1 {
					id = fmt.Sprintf("PSI_F2A2[P%d,P%d,%s]", i, j, e.id[len("PSI_A2["):len(e.id)-1])
				}
				lib.Diagrams = append(lib.Diagrams, Named{
					ID:        id,
					Semantics: "Common Aligned Neighbors & Attributes",
					D:         Par(FollowDiagram(i, j), e.d),
				})
			}
		}
	}

	return lib
}

// All returns paths then diagrams as one slice; its order defines the
// feature vector layout used across the system.
func (l Library) All() []Named {
	out := make([]Named, 0, len(l.Paths)+len(l.Diagrams))
	out = append(out, l.Paths...)
	out = append(out, l.Diagrams...)
	return out
}

// PathsOnly returns just the meta paths (the SVM-MP feature set).
func (l Library) PathsOnly() []Named {
	out := make([]Named, len(l.Paths))
	copy(out, l.Paths)
	return out
}

// Validate checks every member against the schema.
func (l Library) Validate(s *Schema) error {
	for _, n := range l.All() {
		if err := n.D.Validate(s); err != nil {
			return fmt.Errorf("schema: library member %s invalid: %w", n.ID, err)
		}
	}
	return nil
}
