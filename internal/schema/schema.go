// Package schema formalizes the aligned network schema (Definition 3),
// inter-network meta paths (Definition 4) and inter-network meta diagrams
// (Definition 5) of the paper, together with the meta diagram covering
// set machinery of Definition 7.
//
// A meta diagram is represented as a series-parallel composition of typed
// edges between a source and a sink node type. Every diagram in the
// paper's Table I — and every member of the Ψ families in Section
// III-B-2 — is series-parallel:
//
//   - a meta path is a Series of edges;
//   - stacking paths that share all intermediate nodes (Ψ^f² through the
//     anchor pair, Ψ^a² through the post pair) is a Parallel composition
//     of the differing segments inside a Series;
//   - stacking paths that share only the endpoint users (Ψ^{f,a} etc.)
//     is a top-level Parallel composition.
//
// The series-parallel structure is what makes instance counting
// polynomial: Series composes counts by sparse matrix product over the
// shared middle node type, Parallel by elementwise (Hadamard) product
// over the shared endpoints. Package metadiag evaluates these plans.
package schema

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// Anchor is the distinguished inter-network relation connecting the
// shared users (Definition 3's {anchor} component). It is undirected in
// the paper; we canonically orient it from network 1 to network 2 and
// record traversal direction per edge.
const Anchor hetnet.LinkType = "anchor"

// NetworkRef says which side of the aligned pair a node type instance
// belongs to. Attribute node types are shared between the networks
// (SharedNet), matching the paper's convention that attribute types carry
// no network superscript.
type NetworkRef int

const (
	// SharedNet marks attribute node types common to both networks.
	SharedNet NetworkRef = 0
	// Net1 marks node types of the first network (e.g. Twitter).
	Net1 NetworkRef = 1
	// Net2 marks node types of the second network (e.g. Foursquare).
	Net2 NetworkRef = 2
)

func (n NetworkRef) String() string {
	switch n {
	case Net1:
		return "1"
	case Net2:
		return "2"
	default:
		return "s"
	}
}

// TypedNode is a node type tagged with its network: U⁽¹⁾, P⁽²⁾,
// Timestamp, ... — the vertices of meta paths and diagrams.
type TypedNode struct {
	Type hetnet.NodeType
	Net  NetworkRef
}

// String renders e.g. "user(1)" or "timestamp". Plain concatenation:
// this renders inside Notation on the counting hot path, where fmt
// formatting showed up as ~20% of cold-count CPU.
func (t TypedNode) String() string {
	switch t.Net {
	case Net1:
		return string(t.Type) + "(1)"
	case Net2:
		return string(t.Type) + "(2)"
	default:
		return string(t.Type)
	}
}

// Convenience constructors for the standard social schema.
func User1() TypedNode { return TypedNode{Type: hetnet.User, Net: Net1} }
func User2() TypedNode { return TypedNode{Type: hetnet.User, Net: Net2} }
func Post1() TypedNode { return TypedNode{Type: hetnet.Post, Net: Net1} }
func Post2() TypedNode { return TypedNode{Type: hetnet.Post, Net: Net2} }
func TimestampT() TypedNode {
	return TypedNode{Type: hetnet.Timestamp, Net: SharedNet}
}
func LocationT() TypedNode { return TypedNode{Type: hetnet.Location, Net: SharedNet} }
func WordT() TypedNode     { return TypedNode{Type: hetnet.Word, Net: SharedNet} }

// Schema is the aligned social network schema S_G (Definition 3): the
// relation set R with endpoint node types, shared by both networks, plus
// the anchor relation between the user types.
type Schema struct {
	relations map[hetnet.LinkType][2]hetnet.NodeType
	attrTypes map[hetnet.NodeType]bool
}

// NewSchema builds a schema from explicit relation declarations and the
// set of attribute (shared) node types.
func NewSchema(relations map[hetnet.LinkType][2]hetnet.NodeType, attrTypes []hetnet.NodeType) *Schema {
	s := &Schema{
		relations: make(map[hetnet.LinkType][2]hetnet.NodeType, len(relations)),
		attrTypes: make(map[hetnet.NodeType]bool, len(attrTypes)),
	}
	for lt, ep := range relations {
		s.relations[lt] = ep
	}
	for _, t := range attrTypes {
		s.attrTypes[t] = true
	}
	return s
}

// SocialSchema returns the paper's Figure 2 schema: follow, write, at,
// check-in (and contains for words), with Word/Location/Timestamp as
// shared attribute types.
func SocialSchema() *Schema {
	return NewSchema(map[hetnet.LinkType][2]hetnet.NodeType{
		hetnet.Follow:   {hetnet.User, hetnet.User},
		hetnet.Write:    {hetnet.User, hetnet.Post},
		hetnet.At:       {hetnet.Post, hetnet.Timestamp},
		hetnet.Checkin:  {hetnet.Post, hetnet.Location},
		hetnet.Contains: {hetnet.Post, hetnet.Word},
	}, hetnet.AttributeTypes)
}

// FromNetworks derives a schema from two concrete networks, verifying
// that they declare identical relation sets (the paper's setting: both
// Twitter and Foursquare instantiate the same schema).
func FromNetworks(g1, g2 *hetnet.Network, attrTypes []hetnet.NodeType) (*Schema, error) {
	rel := make(map[hetnet.LinkType][2]hetnet.NodeType)
	for _, lt := range g1.LinkTypes() {
		src, dst, _ := g1.LinkEndpoints(lt)
		s2, d2, ok := g2.LinkEndpoints(lt)
		if !ok {
			return nil, fmt.Errorf("schema: relation %q exists in %q but not in %q", lt, g1.Name(), g2.Name())
		}
		if s2 != src || d2 != dst {
			return nil, fmt.Errorf("schema: relation %q has endpoints %s→%s in %q but %s→%s in %q",
				lt, src, dst, g1.Name(), s2, d2, g2.Name())
		}
		rel[lt] = [2]hetnet.NodeType{src, dst}
	}
	for _, lt := range g2.LinkTypes() {
		if _, _, ok := g1.LinkEndpoints(lt); !ok {
			return nil, fmt.Errorf("schema: relation %q exists in %q but not in %q", lt, g2.Name(), g1.Name())
		}
	}
	return NewSchema(rel, attrTypes), nil
}

// Relation returns the declared endpoint node types of lt.
func (s *Schema) Relation(lt hetnet.LinkType) (src, dst hetnet.NodeType, ok bool) {
	ep, ok := s.relations[lt]
	if !ok {
		return "", "", false
	}
	return ep[0], ep[1], true
}

// IsAttribute reports whether t is a shared attribute node type.
func (s *Schema) IsAttribute(t hetnet.NodeType) bool { return s.attrTypes[t] }

// Relations returns the relation names in lexicographic order.
func (s *Schema) Relations() []hetnet.LinkType {
	out := make([]hetnet.LinkType, 0, len(s.relations))
	for lt := range s.relations {
		out = append(out, lt)
	}
	sortLinkTypes(out)
	return out
}

func sortLinkTypes(ls []hetnet.LinkType) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// validateEdgeNet checks the network-consistency rule for a non-anchor
// edge: both endpoints live in the same network, where shared attribute
// endpoints adopt the network of their partner.
func validateEdgeNet(from, to TypedNode) error {
	if from.Net == SharedNet && to.Net == SharedNet {
		return fmt.Errorf("schema: edge between two shared attribute types %s and %s", from, to)
	}
	if from.Net != SharedNet && to.Net != SharedNet && from.Net != to.Net {
		return fmt.Errorf("schema: non-anchor edge crosses networks: %s to %s", from, to)
	}
	return nil
}

// edgeNet returns the network an edge belongs to (the non-shared
// endpoint's network).
func edgeNet(from, to TypedNode) NetworkRef {
	if from.Net != SharedNet {
		return from.Net
	}
	return to.Net
}
