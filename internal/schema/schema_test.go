package schema

import (
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

func TestSocialSchemaRelations(t *testing.T) {
	s := SocialSchema()
	src, dst, ok := s.Relation(hetnet.Follow)
	if !ok || src != hetnet.User || dst != hetnet.User {
		t.Errorf("follow = %s→%s,%v", src, dst, ok)
	}
	src, dst, ok = s.Relation(hetnet.Checkin)
	if !ok || src != hetnet.Post || dst != hetnet.Location {
		t.Errorf("checkin = %s→%s,%v", src, dst, ok)
	}
	if _, _, ok := s.Relation("bogus"); ok {
		t.Error("unknown relation should miss")
	}
	if !s.IsAttribute(hetnet.Location) || s.IsAttribute(hetnet.User) {
		t.Error("IsAttribute wrong")
	}
	rels := s.Relations()
	if len(rels) != 5 {
		t.Errorf("Relations = %v", rels)
	}
	for i := 1; i < len(rels); i++ {
		if rels[i] < rels[i-1] {
			t.Errorf("Relations not sorted: %v", rels)
		}
	}
}

func TestFromNetworks(t *testing.T) {
	g1 := hetnet.NewSocialNetwork("a")
	g2 := hetnet.NewSocialNetwork("b")
	s, err := FromNetworks(g1, g2, hetnet.AttributeTypes)
	if err != nil {
		t.Fatalf("FromNetworks: %v", err)
	}
	if _, _, ok := s.Relation(hetnet.Write); !ok {
		t.Error("write relation missing")
	}

	// Relation missing from g2.
	g3 := hetnet.NewNetwork("c")
	if err := g3.DeclareLink(hetnet.Follow, hetnet.User, hetnet.User); err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetworks(g1, g3, nil); err == nil {
		t.Error("mismatched relation sets should fail")
	}
	if _, err := FromNetworks(g3, g1, nil); err == nil {
		t.Error("mismatched relation sets should fail (other side)")
	}

	// Conflicting endpoints.
	g4 := hetnet.NewNetwork("d")
	if err := g4.DeclareLink(hetnet.Follow, hetnet.User, hetnet.Post); err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetworks(g3, g4, nil); err == nil {
		t.Error("conflicting endpoints should fail")
	}
}

func TestTypedNodeString(t *testing.T) {
	if got := User1().String(); got != "user(1)" {
		t.Errorf("User1 = %q", got)
	}
	if got := LocationT().String(); got != "location" {
		t.Errorf("LocationT = %q", got)
	}
}

func TestEdgeValidation(t *testing.T) {
	s := SocialSchema()
	tests := []struct {
		name string
		e    Edge
		ok   bool
	}{
		{"follow fwd", Fwd(hetnet.Follow, User1(), User1()), true},
		{"follow rev", Rev(hetnet.Follow, User2(), User2()), true},
		{"write fwd", Fwd(hetnet.Write, User1(), Post1()), true},
		{"write wrong direction types", Fwd(hetnet.Write, Post1(), User1()), false},
		{"write rev", Rev(hetnet.Write, Post2(), User2()), true},
		{"at fwd", Fwd(hetnet.At, Post1(), TimestampT()), true},
		{"at rev", Rev(hetnet.At, TimestampT(), Post2()), true},
		{"anchor fwd", AnchorEdge(User1(), User2()), true},
		{"anchor rev", AnchorEdge(User2(), User1()), true},
		{"anchor bad types", Edge{Rel: Anchor, From: Post1(), To: Post2(), Forward: true}, false},
		{"unknown relation", Fwd("bogus", User1(), User1()), false},
		{"cross-network follow", Fwd(hetnet.Follow, User1(), User2()), false},
		{"attr with net tag", Fwd(hetnet.At, Post1(), TypedNode{Type: hetnet.Timestamp, Net: Net1}), false},
		{"user tagged shared", Fwd(hetnet.Follow, TypedNode{Type: hetnet.User, Net: SharedNet}, User1()), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.e.Validate(s)
			if (err == nil) != tc.ok {
				t.Errorf("Validate(%s) err=%v, want ok=%v", tc.e.Notation(), err, tc.ok)
			}
		})
	}
}

func TestSeriesValidation(t *testing.T) {
	s := SocialSchema()
	good := Seq(
		Fwd(hetnet.Write, User1(), Post1()),
		Fwd(hetnet.At, Post1(), TimestampT()),
	)
	if err := good.Validate(s); err != nil {
		t.Errorf("valid series failed: %v", err)
	}
	broken := Seq(
		Fwd(hetnet.Write, User1(), Post1()),
		Fwd(hetnet.Follow, User1(), User1()), // discontinuous
	)
	if err := broken.Validate(s); err == nil {
		t.Error("discontinuous series should fail")
	}
}

func TestParallelValidation(t *testing.T) {
	s := SocialSchema()
	good := Par(FollowPath(1).AsDiagram(), FollowPath(2).AsDiagram())
	if err := good.Validate(s); err != nil {
		t.Errorf("valid parallel failed: %v", err)
	}
	// Branch endpoints differ: P1 is user(1)→user(2), write edge is not.
	bad := Par(FollowPath(1).AsDiagram(), Seq(Fwd(hetnet.Write, User1(), Post1())))
	if err := bad.Validate(s); err == nil {
		t.Error("mismatched parallel endpoints should fail")
	}
}

func TestSeqParPanics(t *testing.T) {
	assertPanics(t, func() { Seq() })
	assertPanics(t, func() { Par(FollowPath(1).AsDiagram()) })
	assertPanics(t, func() { FollowPath(9) })
	assertPanics(t, func() { AttributePath(hetnet.Follow) })
	assertPanics(t, func() { AttributeDiagram(hetnet.At) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestFollowPathsMatchTableI(t *testing.T) {
	s := SocialSchema()
	// Spot-check directions per Table I. P1: U→U↔U←U; P2: U←U↔U→U.
	p1 := FollowPath(1)
	if err := p1.Validate(s); err != nil {
		t.Fatalf("P1: %v", err)
	}
	if !p1.Edges[0].Forward || p1.Edges[2].Forward {
		t.Errorf("P1 directions wrong: %s", p1.Notation())
	}
	p2 := FollowPath(2)
	if p2.Edges[0].Forward || !p2.Edges[2].Forward {
		t.Errorf("P2 directions wrong: %s", p2.Notation())
	}
	p3 := FollowPath(3)
	if !p3.Edges[0].Forward || !p3.Edges[2].Forward {
		t.Errorf("P3 directions wrong: %s", p3.Notation())
	}
	p4 := FollowPath(4)
	if p4.Edges[0].Forward || p4.Edges[2].Forward {
		t.Errorf("P4 directions wrong: %s", p4.Notation())
	}
	for i := 1; i <= 4; i++ {
		p := FollowPath(i)
		if !p.IsInterNetwork() {
			t.Errorf("P%d should be inter-network", i)
		}
		if p.Len() != 3 {
			t.Errorf("P%d length = %d, want 3", i, p.Len())
		}
	}
}

func TestAttributePaths(t *testing.T) {
	s := SocialSchema()
	p5 := AttributePath(hetnet.At)
	if err := p5.Validate(s); err != nil {
		t.Fatalf("P5: %v", err)
	}
	if p5.Len() != 4 || !p5.IsInterNetwork() {
		t.Errorf("P5 shape wrong: %s", p5.Notation())
	}
	if p5.Edges[1].To != TimestampT() {
		t.Errorf("P5 middle node = %s, want timestamp", p5.Edges[1].To)
	}
	p6 := AttributePath(hetnet.Checkin)
	if p6.Edges[1].To != LocationT() {
		t.Errorf("P6 middle node = %s", p6.Edges[1].To)
	}
	p7 := AttributePath(hetnet.Contains)
	if err := p7.Validate(s); err != nil {
		t.Errorf("P7 word path: %v", err)
	}
}

func TestStandardLibraryShape(t *testing.T) {
	lib := StandardLibrary()
	if len(lib.Paths) != 6 {
		t.Errorf("paths = %d, want 6", len(lib.Paths))
	}
	if len(lib.Diagrams) != 25 {
		t.Errorf("diagrams = %d, want 25 (6 f² + 1 a² + 8 f,a + 4 f,a² + 6 f²,a²)", len(lib.Diagrams))
	}
	if len(lib.All()) != 31 {
		t.Errorf("total = %d, want 31", len(lib.All()))
	}
	if err := lib.Validate(SocialSchema()); err != nil {
		t.Errorf("library validation: %v", err)
	}
	// All IDs unique.
	seen := make(map[string]bool)
	for _, n := range lib.All() {
		if seen[n.ID] {
			t.Errorf("duplicate feature ID %q", n.ID)
		}
		seen[n.ID] = true
	}
	if got := len(lib.PathsOnly()); got != 6 {
		t.Errorf("PathsOnly = %d", got)
	}
}

func TestCoveringSetOfPathIsSingleton(t *testing.T) {
	p1 := FollowPath(1)
	cover := CoveringSet(p1.AsDiagram())
	if len(cover) != 1 {
		t.Fatalf("cover size = %d, want 1", len(cover))
	}
	if cover[0].Notation() != p1.Notation() {
		t.Errorf("cover = %s, want %s", cover[0].Notation(), p1.Notation())
	}
}

func TestCoveringSetFollowDiagram(t *testing.T) {
	// C(Ψ^f²(P1×P2)) must be exactly {P1, P2} (Definition 7: the covering
	// set recovers the composing meta paths).
	d := FollowDiagram(1, 2)
	cover := CoveringSet(d)
	if len(cover) != 2 {
		t.Fatalf("cover size = %d, want 2", len(cover))
	}
	want := map[string]bool{
		FollowPath(1).Notation(): true,
		FollowPath(2).Notation(): true,
	}
	for _, p := range cover {
		if !want[p.Notation()] {
			t.Errorf("unexpected covering path %s", p.Notation())
		}
	}
}

func TestCoveringSetAttributeDiagram(t *testing.T) {
	d := AttributeDiagram(hetnet.At, hetnet.Checkin)
	cover := CoveringSet(d)
	if len(cover) != 2 {
		t.Fatalf("cover size = %d, want 2", len(cover))
	}
	want := map[string]bool{
		AttributePath(hetnet.At).Notation():      true,
		AttributePath(hetnet.Checkin).Notation(): true,
	}
	for _, p := range cover {
		if !want[p.Notation()] {
			t.Errorf("unexpected covering path %s", p.Notation())
		}
	}
}

func TestCoveringSetFullStack(t *testing.T) {
	// Ψ^{f²,a²}(P1×P2×P5×P6) covers exactly {P1, P2, P5, P6}.
	d := Par(FollowDiagram(1, 2), AttributeDiagram(hetnet.At, hetnet.Checkin))
	cover := CoveringSet(d)
	if len(cover) != 4 {
		t.Fatalf("cover size = %d, want 4", len(cover))
	}
}

func TestCoversSubsetLemma2Premise(t *testing.T) {
	p1 := FollowPath(1).AsDiagram()
	psi12 := FollowDiagram(1, 2)
	if !CoversSubset(p1, psi12) {
		t.Error("C(P1) should be ⊆ C(Ψ^f²(P1×P2))")
	}
	if CoversSubset(FollowPath(3).AsDiagram(), psi12) {
		t.Error("C(P3) should not be ⊆ C(Ψ^f²(P1×P2))")
	}
	psiFull := Par(psi12, AttributeDiagram(hetnet.At, hetnet.Checkin))
	if !CoversSubset(psi12, psiFull) {
		t.Error("C(Ψ^f²) should be ⊆ C(Ψ^{f²,a²})")
	}
}

func TestEdgeCountAndIsPath(t *testing.T) {
	if got := EdgeCount(FollowPath(1).AsDiagram()); got != 3 {
		t.Errorf("EdgeCount(P1) = %d, want 3", got)
	}
	d := FollowDiagram(1, 2)
	if got := EdgeCount(d); got != 5 {
		t.Errorf("EdgeCount(Ψ1) = %d, want 5 (2+1+2)", got)
	}
	if !IsPath(FollowPath(1).AsDiagram()) {
		t.Error("P1 should be a path")
	}
	if IsPath(d) {
		t.Error("Ψ1 should not be a path")
	}
}

func TestNotationMentionsStructure(t *testing.T) {
	d := FollowDiagram(1, 2)
	n := d.Notation()
	if !strings.Contains(n, "{") || !strings.Contains(n, "|") {
		t.Errorf("parallel notation missing braces: %s", n)
	}
	if !strings.Contains(n, "anchor") {
		t.Errorf("notation missing anchor: %s", n)
	}
}
