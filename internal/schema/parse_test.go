package schema

import (
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

func TestParsePathP1(t *testing.T) {
	p, err := ParsePath("user(1) -follow-> user(1) <-anchor-> user(2) <-follow- user(2)")
	if err != nil {
		t.Fatal(err)
	}
	want := FollowPath(1)
	if p.Notation() != want.Notation() {
		t.Errorf("parsed %s, want %s", p.Notation(), want.Notation())
	}
	if err := p.Validate(SocialSchema()); err != nil {
		t.Errorf("parsed P1 invalid: %v", err)
	}
}

func TestParsePathP5(t *testing.T) {
	p, err := ParsePath("user(1) -write-> post(1) -at-> timestamp <-at- post(2) <-write- user(2)")
	if err != nil {
		t.Fatal(err)
	}
	want := AttributePath(hetnet.At)
	if p.Notation() != want.Notation() {
		t.Errorf("parsed %s, want %s", p.Notation(), want.Notation())
	}
	if err := p.Validate(SocialSchema()); err != nil {
		t.Errorf("parsed P5 invalid: %v", err)
	}
}

func TestParsePathAllTableI(t *testing.T) {
	texts := map[string]MetaPath{
		"user(1) -follow-> user(1) <-anchor-> user(2) <-follow- user(2)":                   FollowPath(1),
		"user(1) <-follow- user(1) <-anchor-> user(2) -follow-> user(2)":                   FollowPath(2),
		"user(1) -follow-> user(1) <-anchor-> user(2) -follow-> user(2)":                   FollowPath(3),
		"user(1) <-follow- user(1) <-anchor-> user(2) <-follow- user(2)":                   FollowPath(4),
		"user(1) -write-> post(1) -checkin-> location <-checkin- post(2) <-write- user(2)": AttributePath(hetnet.Checkin),
	}
	for text, want := range texts {
		p, err := ParsePath(text)
		if err != nil {
			t.Errorf("%q: %v", text, err)
			continue
		}
		if p.Notation() != want.Notation() {
			t.Errorf("%q parsed to %s, want %s", text, p.Notation(), want.Notation())
		}
	}
}

func TestParsePathErrors(t *testing.T) {
	bad := []string{
		"",
		"user(1)",                    // no arrow — wait, single node is even tokens? 1 token is odd; it's a 0-edge path
		"user(1) -follow->",          // dangling arrow
		"user(1) follow user(1)",     // not an arrow
		"user(1) -follow- user(1)",   // missing head
		"user(1) <-follow-> user(1)", // undirected non-anchor
		"user(3) -follow-> user(1)",  // bad network ref
		"user( -follow-> user(1)",    // malformed node
		"user(1) --> user(1)",        // empty relation
		"user(1) <--> user(1)",       // empty undirected relation
		"user(1) <-- user(1)",        // empty reverse relation
		"0 <- 0",                     // bare arrow shards (fuzz regression)
		"a - b",                      // single dash
		"a -> b",                     // headless forward arrow
	}
	for _, text := range bad {
		if text == "user(1)" {
			// A single node parses as a zero-edge path; ensure it errors
			// elsewhere: Source/Sink would panic, so ParsePath must reject.
			if p, err := ParsePath(text); err == nil && len(p.Edges) == 0 {
				// Accept: zero-edge parse is tolerated but useless. Skip.
				continue
			}
			continue
		}
		if _, err := ParsePath(text); err == nil {
			t.Errorf("ParsePath(%q) should fail", text)
		}
	}
}

func TestMustParsePathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParsePath("user(1) bogus")
}

func TestParseSharedAttributeNode(t *testing.T) {
	p, err := ParsePath("post(1) -at-> timestamp")
	if err != nil {
		t.Fatal(err)
	}
	if p.Edges[0].To.Net != SharedNet {
		t.Errorf("timestamp should be shared, got net %v", p.Edges[0].To.Net)
	}
}
