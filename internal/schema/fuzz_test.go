package schema

import (
	"strings"
	"testing"
)

// FuzzParsePath exercises the meta path DSL parser with arbitrary
// inputs: it must never panic, and accepted inputs must round-trip
// through Notation → ParsePath to an identical path.
func FuzzParsePath(f *testing.F) {
	seeds := []string{
		"user(1) -follow-> user(1) <-anchor-> user(2) <-follow- user(2)",
		"user(1) -write-> post(1) -at-> timestamp <-at- post(2) <-write- user(2)",
		"user(1) <-follow- user(1)",
		"post(1) -at-> timestamp",
		"",
		"user(1)",
		"user(3) -x-> y",
		"a <-b-> c",
		"a -- b",
		"x( -q-> z)",
		"user(1) -follow-> user(1) extra",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePath(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(p.Edges) == 0 {
			return // degenerate single-node parse
		}
		// Round trip: the notation must re-parse to the same path. The
		// notation uses " ; " separators between edges; normalize to the
		// DSL's node-arrow-node stream by re-rendering each edge.
		var parts []string
		for k, e := range p.Edges {
			n := e.Notation()
			if k > 0 {
				// Drop the repeated source node.
				fields := strings.Fields(n)
				n = strings.Join(fields[1:], " ")
			}
			parts = append(parts, n)
		}
		rendered := strings.Join(parts, " ")
		p2, err := ParsePath(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered notation %q failed: %v", rendered, err)
		}
		if p2.Notation() != p.Notation() {
			t.Fatalf("round trip changed path: %q vs %q", p2.Notation(), p.Notation())
		}
	})
}
