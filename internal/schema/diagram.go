package schema

import (
	"fmt"
	"strings"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// Diagram is an inter-network meta diagram (Definition 5): a typed
// pattern with a source and a sink node type, built from atomic edges by
// series and parallel composition. A meta path (Definition 4) is the
// special case with no Parallel nodes; the paper deliberately "misuses
// meta diagram to refer to both" and so do we.
type Diagram interface {
	// Source and Sink return the endpoint node types of the pattern.
	Source() TypedNode
	Sink() TypedNode
	// Validate checks the pattern against a schema.
	Validate(s *Schema) error
	// Notation renders the pattern in a compact algebraic form.
	Notation() string
}

// Edge is an atomic diagram: a single traversal of a relation. Forward
// traverses the relation in its declared direction (e.g. user→post for
// write); backward traverses it in reverse (post→user). The anchor
// relation is canonically oriented network 1 → network 2.
type Edge struct {
	Rel      hetnet.LinkType
	From, To TypedNode
	Forward  bool
}

// Fwd builds a forward edge traversal.
func Fwd(rel hetnet.LinkType, from, to TypedNode) Edge {
	return Edge{Rel: rel, From: from, To: to, Forward: true}
}

// Rev builds a backward (reverse) edge traversal.
func Rev(rel hetnet.LinkType, from, to TypedNode) Edge {
	return Edge{Rel: rel, From: from, To: to, Forward: false}
}

// AnchorEdge builds the undirected anchor traversal between user types.
// dir must be Net1→Net2 (forward) or Net2→Net1 (backward).
func AnchorEdge(from, to TypedNode) Edge {
	return Edge{Rel: Anchor, From: from, To: to, Forward: from.Net == Net1}
}

// Source implements Diagram.
func (e Edge) Source() TypedNode { return e.From }

// Sink implements Diagram.
func (e Edge) Sink() TypedNode { return e.To }

// Net returns which network's adjacency realizes this edge; anchor edges
// return SharedNet.
func (e Edge) Net() NetworkRef {
	if e.Rel == Anchor {
		return SharedNet
	}
	return edgeNet(e.From, e.To)
}

// Validate implements Diagram.
func (e Edge) Validate(s *Schema) error {
	if e.Rel == Anchor {
		okFwd := e.From == User1() && e.To == User2()
		okRev := e.From == User2() && e.To == User1()
		if !okFwd && !okRev {
			return fmt.Errorf("schema: anchor edge must join user(1) and user(2), got %s ↔ %s", e.From, e.To)
		}
		if okFwd != e.Forward {
			return fmt.Errorf("schema: anchor edge %s ↔ %s has inconsistent orientation flag", e.From, e.To)
		}
		return nil
	}
	src, dst, ok := s.Relation(e.Rel)
	if !ok {
		return fmt.Errorf("schema: unknown relation %q", e.Rel)
	}
	wantFrom, wantTo := src, dst
	if !e.Forward {
		wantFrom, wantTo = dst, src
	}
	if e.From.Type != wantFrom || e.To.Type != wantTo {
		return fmt.Errorf("schema: relation %q traversed %s→%s but declares %s→%s (forward=%v)",
			e.Rel, e.From.Type, e.To.Type, src, dst, e.Forward)
	}
	// Shared attribute endpoints must be flagged shared, concrete ones not.
	for _, n := range []TypedNode{e.From, e.To} {
		if s.IsAttribute(n.Type) != (n.Net == SharedNet) {
			return fmt.Errorf("schema: node %s has wrong network tag for attribute status", n)
		}
	}
	return validateEdgeNet(e.From, e.To)
}

// Notation implements Diagram.
func (e Edge) Notation() string {
	if e.Rel == Anchor {
		return e.From.String() + " <-anchor-> " + e.To.String()
	}
	if e.Forward {
		return e.From.String() + " -" + string(e.Rel) + "-> " + e.To.String()
	}
	return e.From.String() + " <-" + string(e.Rel) + "- " + e.To.String()
}

// Series is the sequential composition of diagrams: the sink of each part
// is the source of the next. Counting composes by sparse matrix product
// over the shared intermediate node type.
type Series struct {
	Parts []Diagram
}

// Seq builds a Series. It panics when called with no parts; endpoint
// consistency is checked by Validate.
func Seq(parts ...Diagram) Series {
	if len(parts) == 0 {
		panic("schema: Seq requires at least one part")
	}
	return Series{Parts: parts}
}

// Source implements Diagram.
func (d Series) Source() TypedNode { return d.Parts[0].Source() }

// Sink implements Diagram.
func (d Series) Sink() TypedNode { return d.Parts[len(d.Parts)-1].Sink() }

// Validate implements Diagram.
func (d Series) Validate(s *Schema) error {
	for i, p := range d.Parts {
		if err := p.Validate(s); err != nil {
			return err
		}
		if i > 0 && d.Parts[i-1].Sink() != p.Source() {
			return fmt.Errorf("schema: series break at part %d: %s does not continue from %s",
				i, p.Source(), d.Parts[i-1].Sink())
		}
	}
	return nil
}

// Notation implements Diagram.
func (d Series) Notation() string {
	parts := make([]string, len(d.Parts))
	for i, p := range d.Parts {
		parts[i] = p.Notation()
	}
	return strings.Join(parts, " ; ")
}

// Parallel is the parallel composition of diagrams sharing both source
// and sink: all branch patterns must be realized simultaneously between
// the same endpoint nodes. This is the paper's "stacking" operator ×.
// Counting composes by Hadamard product.
type Parallel struct {
	Parts []Diagram
}

// Par builds a Parallel composition. It panics when called with fewer
// than two parts.
func Par(parts ...Diagram) Parallel {
	if len(parts) < 2 {
		panic("schema: Par requires at least two parts")
	}
	return Parallel{Parts: parts}
}

// Source implements Diagram.
func (d Parallel) Source() TypedNode { return d.Parts[0].Source() }

// Sink implements Diagram.
func (d Parallel) Sink() TypedNode { return d.Parts[0].Sink() }

// Validate implements Diagram.
func (d Parallel) Validate(s *Schema) error {
	src, snk := d.Source(), d.Sink()
	for i, p := range d.Parts {
		if err := p.Validate(s); err != nil {
			return err
		}
		if p.Source() != src || p.Sink() != snk {
			return fmt.Errorf("schema: parallel branch %d has endpoints %s→%s, want %s→%s",
				i, p.Source(), p.Sink(), src, snk)
		}
	}
	return nil
}

// Notation implements Diagram.
func (d Parallel) Notation() string {
	parts := make([]string, len(d.Parts))
	for i, p := range d.Parts {
		parts[i] = p.Notation()
	}
	return "{" + strings.Join(parts, " | ") + "}"
}

// MetaPath is a diagram that is a pure path: a sequence of edges. It is
// the unit of the covering set decomposition.
type MetaPath struct {
	Edges []Edge
}

// Source returns the path's first node type.
func (p MetaPath) Source() TypedNode { return p.Edges[0].From }

// Sink returns the path's last node type.
func (p MetaPath) Sink() TypedNode { return p.Edges[len(p.Edges)-1].To }

// Validate checks each edge and continuity.
func (p MetaPath) Validate(s *Schema) error {
	return p.toSeries().Validate(s)
}

// Notation renders the path edge by edge.
func (p MetaPath) Notation() string { return p.toSeries().Notation() }

// Len returns the path length (edge count), the paper's "length n−1".
func (p MetaPath) Len() int { return len(p.Edges) }

// IsInterNetwork reports whether the path connects users across networks
// (the paper restricts attention to N1, Nn ∈ {U(1),U(2)}, N1 ≠ Nn).
func (p MetaPath) IsInterNetwork() bool {
	s, t := p.Source(), p.Sink()
	return s.Type == hetnet.User && t.Type == hetnet.User && s.Net != t.Net && s.Net != SharedNet && t.Net != SharedNet
}

func (p MetaPath) toSeries() Series {
	parts := make([]Diagram, len(p.Edges))
	for i, e := range p.Edges {
		parts[i] = e
	}
	return Series{Parts: parts}
}

// AsDiagram converts the path to its Series form.
func (p MetaPath) AsDiagram() Diagram { return p.toSeries() }

// CoveringSet returns the meta diagram covering set C(Ψ) of Definition 7:
// the set of source→sink meta paths whose union covers every edge of the
// diagram. For a series-parallel pattern the minimum covering set is
// obtained by distributing parallel branches over series contexts, which
// is what this computes; for a pure path it is the singleton {path}.
func CoveringSet(d Diagram) []MetaPath {
	switch v := d.(type) {
	case Edge:
		return []MetaPath{{Edges: []Edge{v}}}
	case MetaPath:
		return []MetaPath{v}
	case Series:
		// Cross-product concatenation would enumerate all combinations;
		// the *minimum* cover instead zips branch paths positionally,
		// padding with the first branch. Example: Seq(a, Par(x,y), b) has
		// cover {a;x;b, a;y;b} (2 paths), not 1·2·1 enumerated combos —
		// both already cover every edge.
		partCovers := make([][]MetaPath, len(v.Parts))
		width := 1
		for i, p := range v.Parts {
			partCovers[i] = CoveringSet(p)
			if len(partCovers[i]) > width {
				width = len(partCovers[i])
			}
		}
		out := make([]MetaPath, width)
		for k := 0; k < width; k++ {
			var edges []Edge
			for i := range v.Parts {
				cover := partCovers[i]
				pick := cover[k%len(cover)]
				edges = append(edges, pick.Edges...)
			}
			out[k] = MetaPath{Edges: edges}
		}
		return dedupePaths(out)
	case Parallel:
		var out []MetaPath
		for _, p := range v.Parts {
			out = append(out, CoveringSet(p)...)
		}
		return dedupePaths(out)
	default:
		panic(fmt.Sprintf("schema: CoveringSet of unknown diagram type %T", d))
	}
}

func dedupePaths(ps []MetaPath) []MetaPath {
	seen := make(map[string]bool, len(ps))
	out := ps[:0]
	for _, p := range ps {
		key := p.Notation()
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}

// CoversSubset reports whether every path in C(a) also appears in C(b),
// i.e. C(a) ⊆ C(b) — the premise of Lemma 2: instances of the larger
// diagram b imply instances of the smaller diagram a.
func CoversSubset(a, b Diagram) bool {
	cb := make(map[string]bool)
	for _, p := range CoveringSet(b) {
		cb[p.Notation()] = true
	}
	for _, p := range CoveringSet(a) {
		if !cb[p.Notation()] {
			return false
		}
	}
	return true
}

// EdgeCount returns the number of atomic edges in the diagram.
func EdgeCount(d Diagram) int {
	switch v := d.(type) {
	case Edge:
		return 1
	case MetaPath:
		return len(v.Edges)
	case Series:
		n := 0
		for _, p := range v.Parts {
			n += EdgeCount(p)
		}
		return n
	case Parallel:
		n := 0
		for _, p := range v.Parts {
			n += EdgeCount(p)
		}
		return n
	default:
		panic(fmt.Sprintf("schema: EdgeCount of unknown diagram type %T", d))
	}
}

// IsPath reports whether the diagram contains no Parallel composition.
func IsPath(d Diagram) bool {
	switch v := d.(type) {
	case Edge, MetaPath:
		return true
	case Series:
		for _, p := range v.Parts {
			if !IsPath(p) {
				return false
			}
		}
		return true
	case Parallel:
		return false
	default:
		panic(fmt.Sprintf("schema: IsPath of unknown diagram type %T", d))
	}
}
