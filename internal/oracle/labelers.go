// Package oracle models the unreliable labeler pools of production
// crowdsourcing behind the active.Oracle interface the training loop
// queries. The paper assumes a perfect oracle for every anchor-link
// question; real labelers err, and some lie. This package provides the
// pluggable labeler models (honest, independently noisy, adversarial,
// colluding), a Panel that replicates each query across R labelers and
// resolves by majority vote, a contradiction ledger that flags
// one-to-one-constraint violations, and per-labeler Beta-posterior
// trust scores that downweight suspect labelers when emitting
// confidence-weighted labels (consumed via core.Problem.Prelabeled).
//
// Every labeler answers as a pure deterministic function of the queried
// link — the property the concurrent shard pipelines and the
// distributed retry machinery rely on for reproducible runs (see
// PartitionedAligner's oracle caveat). All mutable state (the ledger,
// trust posteriors) lives in the Panel, is lock-guarded, and never
// influences the binary answer a query returns, so answer streams stay
// order-independent.
package oracle

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/hetnet"
)

// Labeler is one member of a labeling pool: an oracle with an identity
// the trust ledger can score. Label must be a pure deterministic
// function of the link.
type Labeler interface {
	// ID names the labeler in ledgers, trust reports and logs.
	ID() string
	// Label answers 1 when the labeler claims the link is an anchor.
	Label(a hetnet.Anchor) float64
}

// mix is a splitmix64-style finalizer: avalanches a 64-bit key so that
// per-link pseudo-randomness is deterministic yet uncorrelated across
// links, labelers and seeds.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// linkHash folds a link and a seed into one avalanche-mixed word.
func linkHash(a hetnet.Anchor, seed int64) uint64 {
	return mix(uint64(hetnet.Key(a.I, a.J)) ^ uint64(seed)*0x9e3779b97f4a7c15)
}

// unitFloat maps a hash to [0, 1) with enough resolution for flip-rate
// thresholds.
func unitFloat(h uint64) float64 {
	return float64(h%1_000_000) / 1_000_000
}

// Honest answers every query truthfully from the ground-truth oracle.
type Honest struct {
	Name  string
	Truth active.Oracle
}

// ID implements Labeler.
func (h *Honest) ID() string { return h.Name }

// Label implements Labeler.
func (h *Honest) Label(a hetnet.Anchor) float64 { return h.Truth.Label(a) }

// Flipper errs independently: it flips the true answer with probability
// FlipProb, deterministically per (link, Seed) — the NoisyOracle model
// with a per-labeler seed, so two flippers in one pool err on different
// links.
type Flipper struct {
	Name     string
	Truth    active.Oracle
	FlipProb float64
	Seed     int64
}

// ID implements Labeler.
func (f *Flipper) ID() string { return f.Name }

// Label implements Labeler.
func (f *Flipper) Label(a hetnet.Anchor) float64 {
	truth := f.Truth.Label(a)
	if unitFloat(linkHash(a, f.Seed)) < f.FlipProb {
		return 1 - truth
	}
	return truth
}

// Adversary always lies: every answer is the negation of the truth. A
// lone adversary is the worst-case independent labeler; majority vote
// over honest peers absorbs it.
type Adversary struct {
	Name  string
	Truth active.Oracle
}

// ID implements Labeler.
func (ad *Adversary) ID() string { return ad.Name }

// Label implements Labeler.
func (ad *Adversary) Label(a hetnet.Anchor) float64 { return 1 - ad.Truth.Label(a) }

// defaultColluderModulus spreads the fabricated matching's yes-answers
// to roughly 1/17 of queried links — dense enough to collide on shared
// endpoints (feeding the contradiction ledger), sparse enough to look
// like a deliberate target rather than noise.
const defaultColluderModulus = 17

// Colluder pushes a fabricated alignment: every colluder sharing a
// GroupSeed claims user i's counterpart is any j with
// j ≡ t(i) (mod Modulus) — a consistent wrong target — and denies
// everything else, true anchors included. Colluders agree with each
// other perfectly, which is exactly what makes them dangerous to
// majority vote and visible to the contradiction ledger (their claimed
// matching is many-to-one on both sides).
type Colluder struct {
	Name      string
	GroupSeed int64
	// Modulus controls the density of the fabricated matching;
	// 0 means the default.
	Modulus int
}

// ID implements Labeler.
func (c *Colluder) ID() string { return c.Name }

// Label implements Labeler.
func (c *Colluder) Label(a hetnet.Anchor) float64 {
	m := c.Modulus
	if m <= 1 {
		m = defaultColluderModulus
	}
	t := mix(uint64(a.I)*0x9e3779b97f4a7c15^uint64(c.GroupSeed)) % uint64(m)
	if uint64(a.J)%uint64(m) == t {
		return 1
	}
	return 0
}

// Config describes a simulated labeler pool. The zero value is invalid
// (an empty pool); experiments and the facade build panels from it via
// Build.
type Config struct {
	// Honest labelers always answer the truth.
	Honest int
	// Noisy labelers flip each answer with probability FlipProb,
	// independently per labeler (distinct per-labeler seeds).
	Noisy int
	// FlipProb is the noisy labelers' per-answer flip probability.
	FlipProb float64
	// Adversarial labelers always lie.
	Adversarial int
	// Colluding labelers jointly push one fabricated wrong matching.
	Colluding int
	// Replicas is R, the number of labelers consulted per query; 0 (or
	// anything ≥ the pool size) consults the whole pool.
	Replicas int
	// Seed drives per-labeler noise, the colluders' fabricated target
	// and the per-link replica choice.
	Seed int64
	// DistrustBelow is the trust score under which a labeler's votes
	// stop counting toward confidence; 0 means the default (0.25).
	DistrustBelow float64
}

// Validate rejects configurations that would be silently misread.
func (c Config) Validate() error {
	switch {
	case c.Honest < 0 || c.Noisy < 0 || c.Adversarial < 0 || c.Colluding < 0:
		return fmt.Errorf("oracle: negative labeler count in %+v", c)
	case c.Honest+c.Noisy+c.Adversarial+c.Colluding == 0:
		return fmt.Errorf("oracle: empty labeler pool")
	case c.FlipProb < 0 || c.FlipProb >= 1:
		return fmt.Errorf("oracle: flip probability %v outside [0, 1)", c.FlipProb)
	case c.Replicas < 0:
		return fmt.Errorf("oracle: negative replicas %d", c.Replicas)
	case c.DistrustBelow < 0 || c.DistrustBelow >= 1:
		return fmt.Errorf("oracle: distrust threshold %v outside [0, 1)", c.DistrustBelow)
	}
	return nil
}

// Pool materializes the configured labelers around a ground-truth
// oracle. Labeler IDs are stable ("honest-0", "noisy-1", ...), ordered
// honest, noisy, adversarial, colluding.
func (c Config) Pool(truth active.Oracle) []Labeler {
	pool := make([]Labeler, 0, c.Honest+c.Noisy+c.Adversarial+c.Colluding)
	for i := 0; i < c.Honest; i++ {
		pool = append(pool, &Honest{Name: fmt.Sprintf("honest-%d", len(pool)), Truth: truth})
	}
	for i := 0; i < c.Noisy; i++ {
		pool = append(pool, &Flipper{
			Name: fmt.Sprintf("noisy-%d", len(pool)), Truth: truth,
			FlipProb: c.FlipProb, Seed: c.Seed + int64(len(pool))*7919,
		})
	}
	for i := 0; i < c.Adversarial; i++ {
		pool = append(pool, &Adversary{Name: fmt.Sprintf("adversary-%d", len(pool)), Truth: truth})
	}
	for i := 0; i < c.Colluding; i++ {
		pool = append(pool, &Colluder{Name: fmt.Sprintf("colluder-%d", len(pool)), GroupSeed: c.Seed})
	}
	return pool
}

// Build validates the config and assembles a Panel over the pool. The
// truth oracle backs the honest, noisy and adversarial labelers; it is
// required because a pool without a ground-truth source cannot answer.
func (c Config) Build(truth active.Oracle) (*Panel, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if truth == nil {
		return nil, fmt.Errorf("oracle: nil ground-truth oracle behind the labeler pool")
	}
	return NewPanel(c.Pool(truth), PanelOptions{
		Replicas:      c.Replicas,
		Seed:          c.Seed,
		DistrustBelow: c.DistrustBelow,
	})
}
