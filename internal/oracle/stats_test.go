package oracle

import (
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// Statistical properties of the panel, tolerance-banded like
// TestNoisyOracleFlipRate: majority vote must beat a single labeler,
// and trust must separate honest labelers from adversaries.

// errRate counts how often an oracle diverges from constant truth 1
// over n fresh links offset by base (distinct per seed so panels never
// share link hashes).
func errRate(o interface {
	Label(hetnet.Anchor) float64
}, base, n int) float64 {
	errs := 0
	for i := 0; i < n; i++ {
		if o.Label(hetnet.Anchor{I: base + i, J: base + i + 1}) != 1 {
			errs++
		}
	}
	return float64(errs) / float64(n)
}

func TestMajorityVoteBeatsSingleLabeler(t *testing.T) {
	// A panel of 5 independent flippers at p=0.3 has majority error
	// Σ_{k≥3} C(5,k) p^k (1-p)^{5-k} ≈ 0.163 — about half the single
	// flipper's 0.3. Check the separation across seeds with a band wide
	// enough for n=2000 sampling noise.
	const p, n = 0.3, 2000
	for _, seed := range []int64{1, 7, 42, 2019} {
		single := &Flipper{Name: "solo", Truth: constTruth(1), FlipProb: p, Seed: seed}
		panel, err := Config{Noisy: 5, FlipProb: p, Seed: seed}.Build(constTruth(1))
		if err != nil {
			t.Fatal(err)
		}
		base := int(seed) * 10 * n
		singleErr := errRate(single, base, n)
		panelErr := errRate(panel, base, n)
		if singleErr < 0.25 || singleErr > 0.35 {
			t.Errorf("seed %d: single flipper error %.3f outside the p=0.3 band", seed, singleErr)
		}
		if panelErr < 0.10 || panelErr > 0.22 {
			t.Errorf("seed %d: 5-way majority error %.3f outside the ≈0.163 band", seed, panelErr)
		}
		if panelErr >= singleErr {
			t.Errorf("seed %d: majority error %.3f not below single-labeler %.3f", seed, panelErr, singleErr)
		}
	}
}

func TestMajorityErrorShrinksWithReplicas(t *testing.T) {
	const p, n = 0.3, 2000
	prev := 1.0
	for _, r := range []int{1, 3, 5} {
		panel, err := Config{Noisy: 7, FlipProb: p, Replicas: r, Seed: 11}.Build(constTruth(1))
		if err != nil {
			t.Fatal(err)
		}
		e := errRate(panel, 0, n)
		if e >= prev {
			t.Errorf("R=%d error %.3f did not shrink from %.3f", r, e, prev)
		}
		prev = e
	}
}

func TestTrustSeparatesAdversariesFromHonest(t *testing.T) {
	for _, seed := range []int64{1, 9, 2019} {
		panel, err := Config{Honest: 3, Noisy: 1, FlipProb: 0.2, Adversarial: 1, Seed: seed}.Build(constTruth(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			panel.Label(hetnet.Anchor{I: i, J: i + 1})
		}
		var honestMin, advTrust, noisyTrust float64 = 1, -1, -1
		for _, lt := range panel.TrustScores() {
			switch lt.ID {
			case "adversary-4":
				advTrust = lt.Trust
				if !lt.Distrusted {
					t.Errorf("seed %d: always-lying labeler not distrusted (trust %.3f)", seed, lt.Trust)
				}
			case "noisy-3":
				noisyTrust = lt.Trust
			default:
				if lt.Trust < honestMin {
					honestMin = lt.Trust
				}
				if lt.Distrusted {
					t.Errorf("seed %d: honest labeler %s distrusted", seed, lt.ID)
				}
			}
		}
		// Converged ordering: honest ≈ 1 > noisy ≈ 0.8 > adversary ≈ 0,
		// banded for 300-query evidence.
		if honestMin < 0.9 {
			t.Errorf("seed %d: honest trust %.3f below 0.9", seed, honestMin)
		}
		if noisyTrust < 0.7 || noisyTrust > 0.9 {
			t.Errorf("seed %d: p=0.2 flipper trust %.3f outside [0.7, 0.9]", seed, noisyTrust)
		}
		if advTrust > 0.1 {
			t.Errorf("seed %d: adversary trust %.3f above 0.1", seed, advTrust)
		}
		if !(advTrust < noisyTrust && noisyTrust < honestMin) {
			t.Errorf("seed %d: trust ordering broken: adv %.3f, noisy %.3f, honest %.3f",
				seed, advTrust, noisyTrust, honestMin)
		}
	}
}

func TestColluderPoolFeedsContradictionLedger(t *testing.T) {
	// Colluders fabricate a many-to-one matching; querying across a grid
	// of links must trip the one-to-one check on their claims.
	panel, err := Config{Honest: 3, Colluding: 2, Seed: 3}.Build(constTruth(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			panel.Label(hetnet.Anchor{I: i, J: j})
		}
	}
	rep := panel.Report()
	if rep.Contradictions == 0 {
		t.Fatal("colluding pool produced no ledger entries over a 30×30 grid")
	}
	colluderFlagged := false
	for _, lt := range rep.Trust {
		if (lt.ID == "colluder-3" || lt.ID == "colluder-4") && lt.Contradictions > 0 {
			colluderFlagged = true
		}
	}
	if !colluderFlagged {
		t.Error("no colluder carries ledger contradictions")
	}
	// Honest majority (3 of 5) holds the verdicts at truth, so the
	// panel-level matching stays clean.
	if rep.PanelViolation != 0 {
		t.Errorf("honest majority let %d fabricated matches through", rep.PanelViolation)
	}
}
