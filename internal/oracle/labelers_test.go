package oracle

import (
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// constTruth is a ground-truth stand-in answering the same label for
// every link.
type constTruth float64

func (c constTruth) Label(hetnet.Anchor) float64 { return float64(c) }

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"honest pool", Config{Honest: 3}, true},
		{"mixed pool", Config{Honest: 2, Noisy: 2, FlipProb: 0.3, Adversarial: 1, Colluding: 2, Replicas: 5}, true},
		{"empty pool", Config{}, false},
		{"negative count", Config{Honest: -1, Noisy: 2}, false},
		{"flip prob 1", Config{Noisy: 2, FlipProb: 1}, false},
		{"negative flip prob", Config{Noisy: 2, FlipProb: -0.1}, false},
		{"negative replicas", Config{Honest: 2, Replicas: -1}, false},
		{"distrust out of range", Config{Honest: 2, DistrustBelow: 1}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

func TestPoolIDsStableAndOrdered(t *testing.T) {
	cfg := Config{Honest: 1, Noisy: 2, FlipProb: 0.2, Adversarial: 1, Colluding: 2, Seed: 9}
	pool := cfg.Pool(constTruth(1))
	want := []string{"honest-0", "noisy-1", "noisy-2", "adversary-3", "colluder-4", "colluder-5"}
	if len(pool) != len(want) {
		t.Fatalf("pool size %d, want %d", len(pool), len(want))
	}
	for i, w := range want {
		if pool[i].ID() != w {
			t.Errorf("pool[%d].ID() = %q, want %q", i, pool[i].ID(), w)
		}
	}
}

func TestBuildRejectsNilTruth(t *testing.T) {
	if _, err := (Config{Honest: 1}).Build(nil); err == nil {
		t.Fatal("Build with nil truth must fail")
	}
	if _, err := (Config{}).Build(constTruth(1)); err == nil {
		t.Fatal("Build with empty pool must fail")
	}
}

func TestFlipperFlipRate(t *testing.T) {
	f := &Flipper{Name: "noisy-0", Truth: constTruth(1), FlipProb: 0.3, Seed: 5}
	flips, n := 0, 5000
	for i := 0; i < n; i++ {
		if f.Label(hetnet.Anchor{I: i, J: i + 1}) == 0 {
			flips++
		}
	}
	rate := float64(flips) / float64(n)
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("flip rate = %.3f, want ≈ 0.3", rate)
	}
}

func TestFlipperDeterministicPerLink(t *testing.T) {
	f := &Flipper{Name: "noisy-0", Truth: constTruth(1), FlipProb: 0.5, Seed: 9}
	a := hetnet.Anchor{I: 3, J: 7}
	first := f.Label(a)
	for i := 0; i < 10; i++ {
		if f.Label(a) != first {
			t.Fatal("repeated queries must agree")
		}
	}
}

func TestFlipperSeedsDecorrelate(t *testing.T) {
	// Two flippers from one Config get distinct seeds and must err on
	// different links — that independence is what majority vote buys
	// its error reduction with.
	cfg := Config{Noisy: 2, FlipProb: 0.5, Seed: 3}
	pool := cfg.Pool(constTruth(1))
	same, n := 0, 1000
	for i := 0; i < n; i++ {
		a := hetnet.Anchor{I: i, J: i + 1}
		if pool[0].Label(a) == pool[1].Label(a) {
			same++
		}
	}
	if same == n {
		t.Error("sibling flippers answered identically on every link")
	}
}

func TestAdversaryAlwaysLies(t *testing.T) {
	ad := &Adversary{Name: "adversary-0", Truth: constTruth(1)}
	for i := 0; i < 50; i++ {
		if ad.Label(hetnet.Anchor{I: i, J: i}) != 0 {
			t.Fatal("adversary must negate the truth")
		}
	}
}

func TestColludersAgreeWithEachOther(t *testing.T) {
	a := &Colluder{Name: "colluder-0", GroupSeed: 11}
	b := &Colluder{Name: "colluder-1", GroupSeed: 11}
	other := &Colluder{Name: "stranger", GroupSeed: 12}
	yes, diverged := 0, 0
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			l := hetnet.Anchor{I: i, J: j}
			if a.Label(l) != b.Label(l) {
				t.Fatalf("same-group colluders disagree at (%d,%d)", i, j)
			}
			if a.Label(l) == 1 {
				yes++
			}
			if a.Label(l) != other.Label(l) {
				diverged++
			}
		}
	}
	if yes == 0 {
		t.Error("colluders never pushed their fabricated matching")
	}
	if diverged == 0 {
		t.Error("different group seeds should fabricate different matchings")
	}
}

func TestColluderMatchingIsManyToOne(t *testing.T) {
	// The fabricated matching claims every j ≡ t(i) (mod m) for user i —
	// many-to-one on both sides, which is what the contradiction ledger
	// catches.
	c := &Colluder{Name: "colluder-0", GroupSeed: 7}
	multi := false
	for i := 0; i < 20 && !multi; i++ {
		claims := 0
		for j := 0; j < 100; j++ {
			if c.Label(hetnet.Anchor{I: i, J: j}) == 1 {
				claims++
			}
		}
		multi = claims > 1
	}
	if !multi {
		t.Error("colluder's matching is one-to-one; ledger has nothing to catch")
	}
}

func TestPoolIDsDisjointAcrossKinds(t *testing.T) {
	cfg := Config{Honest: 2, Noisy: 2, FlipProb: 0.1, Adversarial: 2, Colluding: 2, Seed: 1}
	seen := map[string]bool{}
	for _, l := range cfg.Pool(constTruth(0)) {
		if seen[l.ID()] {
			t.Fatalf("duplicate labeler ID %q", l.ID())
		}
		if strings.TrimSpace(l.ID()) == "" {
			t.Fatal("empty labeler ID")
		}
		seen[l.ID()] = true
	}
}
