package oracle

import (
	"fmt"
	"sort"
	"sync"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// PanelOptions tunes a Panel beyond its labeler pool.
type PanelOptions struct {
	// Replicas is R, the labelers consulted per query; 0 or anything
	// ≥ the pool size consults every labeler.
	Replicas int
	// Seed drives the deterministic per-link replica choice.
	Seed int64
	// DistrustBelow is the trust score under which a labeler's votes
	// stop counting toward confidence; 0 means DefaultDistrustBelow.
	DistrustBelow float64
}

// DefaultDistrustBelow is the trust cutoff under which a labeler's
// votes are zero-weighted in confidence computation. A fresh labeler
// starts at the Beta(1,1) mean 0.5; an always-lying labeler converges
// toward 0 and crosses this line within a handful of queries.
const DefaultDistrustBelow = 0.25

// contradictionPenalty is the pseudo-count of disagreement evidence one
// flagged one-to-one violation adds to a labeler's Beta posterior — a
// contradiction is stronger evidence of unreliability than a single
// outvoted answer, because it is provably wrong regardless of ground
// truth (two "yes" answers claiming the same user cannot both hold).
const contradictionPenalty = 2

// vote records one resolved query: the consulted labelers, their raw
// answers, and the majority verdict.
type vote struct {
	link    hetnet.Anchor
	voters  []int // indices into Panel.labelers
	answers []float64
	verdict float64
}

// labelerStats is the per-labeler ledger entry: the Beta-posterior
// evidence counts, contradiction tally, and the first-claim maps the
// one-to-one check runs against.
type labelerStats struct {
	agree          float64 // consensus agreements (Beta α evidence)
	disagree       float64 // consensus disagreements + penalties (Beta β evidence)
	contradictions int
	yesByI         map[int]int // I → first J this labeler claimed
	yesByJ         map[int]int // J → first I this labeler claimed
	distrustLatch  bool        // counted once in the distrusted telemetry
}

// Contradiction is one flagged one-to-one violation: a "yes" answer
// whose endpoint was already claimed for a different partner.
type Contradiction struct {
	// Labeler is the violator's ID; "panel" when the majority verdicts
	// themselves collide.
	Labeler string
	// Link is the later claim; Prior is the earlier claim sharing an
	// endpoint with it.
	Link, Prior hetnet.Anchor
}

// LabelerTrust is one labeler's scored ledger row.
type LabelerTrust struct {
	ID             string
	Trust          float64 // Beta posterior mean in (0, 1)
	Votes          int     // queries this labeler was consulted on
	Contradictions int
	Distrusted     bool // trust below the panel's cutoff
}

// WeightedLabel is one panel-resolved link with its trust-weighted
// confidence: Label is the majority verdict, Confidence the
// trust-weighted fraction of the consulted pool that agreed with it.
// Value folds both into the soft anchor probability consumed via
// core.Problem.Prelabeled.
type WeightedLabel struct {
	Link       hetnet.Anchor
	Label      float64 // majority verdict, 0 or 1
	Confidence float64 // trust-weighted agreement, in [0, 1]
}

// Value returns the confidence-weighted soft label in [0, 1]: the
// panel's probability that the link is an anchor. A unanimous trusted
// "yes" is exactly 1 and a unanimous trusted "no" exactly 0, so honest
// panels reproduce hard labels bit for bit.
func (w WeightedLabel) Value() float64 {
	if w.Label == 1 {
		return w.Confidence
	}
	return 1 - w.Confidence
}

// Panel replicates every oracle query across R labelers and resolves by
// majority vote. It implements active.Oracle and is safe for concurrent
// use: answers are pure deterministic functions of the link (replica
// choice, labeler answers and the vote are all hash-driven), repeated
// queries return the cached verdict without re-spending ledger updates,
// and the mutable trust/ledger state never influences a verdict — so
// concurrent shard pipelines and distributed retries see exactly the
// answer stream a serial run would.
type Panel struct {
	labelers []Labeler
	r        int // resolved replicas per query
	seed     int64
	distrust float64

	mu             sync.Mutex
	answered       map[int64]*vote
	stats          []labelerStats
	yesByI         map[int]int // majority-level first-claim maps
	yesByJ         map[int]int
	contradictions []Contradiction
	panelViolation int // majority-verdict one-to-one violations
}

// NewPanel assembles a panel over the labeler pool.
func NewPanel(pool []Labeler, opts PanelOptions) (*Panel, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("oracle: empty labeler pool")
	}
	r := opts.Replicas
	if r <= 0 || r > len(pool) {
		r = len(pool)
	}
	distrust := opts.DistrustBelow
	if distrust <= 0 {
		distrust = DefaultDistrustBelow
	}
	p := &Panel{
		labelers: pool,
		r:        r,
		seed:     opts.Seed,
		distrust: distrust,
		answered: make(map[int64]*vote),
		stats:    make([]labelerStats, len(pool)),
		yesByI:   make(map[int]int),
		yesByJ:   make(map[int]int),
	}
	for i := range p.stats {
		p.stats[i].yesByI = make(map[int]int)
		p.stats[i].yesByJ = make(map[int]int)
	}
	return p, nil
}

// Replicas returns the resolved per-query replication factor R.
func (p *Panel) Replicas() int { return p.r }

// Label implements active.Oracle: replicate the query across R
// labelers, resolve by majority vote (ties resolve to 0 — the
// conservative "not an anchor"), update the ledger, and return the
// verdict. Re-queries of an answered link return the cached verdict
// and leave the ledger untouched, so distributed retries neither flip
// answers nor double-count evidence.
func (p *Panel) Label(a hetnet.Anchor) float64 {
	key := hetnet.Key(a.I, a.J)
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.answered[key]; ok {
		return v.verdict
	}
	v := &vote{link: a, voters: p.pickVoters(a)}
	yes := 0
	for _, li := range v.voters {
		ans := p.labelers[li].Label(a)
		if ans != 0 {
			ans = 1
			yes++
		}
		v.answers = append(v.answers, ans)
	}
	if 2*yes > len(v.voters) {
		v.verdict = 1
	}
	p.answered[key] = v
	mReplicas.Add(int64(len(v.voters)))
	p.settle(v)
	return v.verdict
}

// pickVoters chooses the R labelers consulted for a link: the pool
// indices ranked by a per-(link, labeler) hash, so the choice is
// deterministic per link, unbiased across the pool, and independent of
// query order.
func (p *Panel) pickVoters(a hetnet.Anchor) []int {
	n := len(p.labelers)
	if p.r >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	type ranked struct {
		idx int
		h   uint64
	}
	rs := make([]ranked, n)
	lh := linkHash(a, p.seed)
	for i := range rs {
		rs[i] = ranked{idx: i, h: mix(lh ^ uint64(i)*0x9e3779b97f4a7c15)}
	}
	sort.Slice(rs, func(x, y int) bool {
		if rs[x].h != rs[y].h {
			return rs[x].h < rs[y].h
		}
		return rs[x].idx < rs[y].idx
	})
	out := make([]int, p.r)
	for i := 0; i < p.r; i++ {
		out[i] = rs[i].idx
	}
	sort.Ints(out)
	return out
}

// settle folds one fresh vote into the ledger: per-labeler consensus
// agreement/disagreement evidence, per-labeler and panel-level
// one-to-one contradiction checks, and the distrust latch. Called with
// the panel lock held. Every update is a per-(link, labeler) pure
// increment, so ledger totals are independent of query order.
func (p *Panel) settle(v *vote) {
	for k, li := range v.voters {
		st := &p.stats[li]
		if v.answers[k] == v.verdict {
			st.agree++
		} else {
			st.disagree++
		}
		if v.answers[k] == 1 {
			p.flagViolations(st.yesByI, st.yesByJ, v.link, p.labelers[li].ID(), st)
		}
		if trust := st.trust(); trust < p.distrust && !st.distrustLatch {
			st.distrustLatch = true
			mDistrusted.Inc()
		}
	}
	if v.verdict == 1 {
		p.flagViolations(p.yesByI, p.yesByJ, v.link, "panel", nil)
	}
}

// flagViolations runs the one-to-one check for a "yes" claim against
// the first-claim maps: a second distinct partner on either endpoint is
// a contradiction — two "yes" answers claiming the same user cannot
// both hold. st is nil for the panel-level majority ledger.
func (p *Panel) flagViolations(byI, byJ map[int]int, link hetnet.Anchor, who string, st *labelerStats) {
	flag := func(prior hetnet.Anchor) {
		p.contradictions = append(p.contradictions, Contradiction{Labeler: who, Link: link, Prior: prior})
		mContradictions.Inc()
		if st != nil {
			st.contradictions++
			st.disagree += contradictionPenalty
		} else {
			p.panelViolation++
		}
	}
	if j, ok := byI[link.I]; ok {
		if j != link.J {
			flag(hetnet.Anchor{I: link.I, J: j})
		}
	} else {
		byI[link.I] = link.J
	}
	if i, ok := byJ[link.J]; ok {
		if i != link.I {
			flag(hetnet.Anchor{I: i, J: link.J})
		}
	} else {
		byJ[link.J] = link.I
	}
}

// trust is the Beta(1+agree, 1+disagree) posterior mean — the
// probability the labeler's next answer matches consensus, shrunk
// toward ½ under little evidence.
func (st *labelerStats) trust() float64 {
	return (1 + st.agree) / (2 + st.agree + st.disagree)
}

// Queries returns the number of distinct links answered.
func (p *Panel) Queries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.answered)
}

// TrustScores returns every labeler's scored ledger row, in pool order.
func (p *Panel) TrustScores() []LabelerTrust {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]LabelerTrust, len(p.labelers))
	for i := range p.labelers {
		st := &p.stats[i]
		trust := st.trust()
		out[i] = LabelerTrust{
			ID:             p.labelers[i].ID(),
			Trust:          trust,
			Votes:          int(st.agree + st.disagree - contradictionPenalty*float64(st.contradictions)),
			Contradictions: st.contradictions,
			Distrusted:     trust < p.distrust,
		}
	}
	return out
}

// Contradictions returns the flagged one-to-one violations in flag
// order. The count (labeler-level + panel-level) is deterministic for a
// given set of queried links; the pair ordering inside each record may
// reflect query order.
func (p *Panel) Contradictions() []Contradiction {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Contradiction(nil), p.contradictions...)
}

// PanelViolations returns how many majority verdicts themselves
// violated the one-to-one constraint — noise that survived voting.
func (p *Panel) PanelViolations() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.panelViolation
}

// Distrusted returns the IDs of labelers currently below the trust
// cutoff, in pool order.
func (p *Panel) Distrusted() []string {
	var out []string
	for _, lt := range p.TrustScores() {
		if lt.Distrusted {
			out = append(out, lt.ID)
		}
	}
	return out
}

// WeightedLabels returns every answered link with its confidence under
// the final trust posteriors, in canonical (I, J) order. Votes are
// weighted by each voter's trust, with distrusted labelers
// zero-weighted; confidence is the weighted fraction that agreed with
// the majority verdict (½ when every voter is distrusted — an answer
// with no credible support carries no information). Computing against
// the final posteriors, not the mid-run ones, keeps the output a pure
// function of the queried link set.
func (p *Panel) WeightedLabels() []WeightedLabel {
	p.mu.Lock()
	defer p.mu.Unlock()
	weights := make([]float64, len(p.labelers))
	for i := range p.stats {
		if t := p.stats[i].trust(); t >= p.distrust {
			weights[i] = t
		}
	}
	out := make([]WeightedLabel, 0, len(p.answered))
	for _, v := range p.answered {
		var total, agreeing float64
		for k, li := range v.voters {
			total += weights[li]
			if v.answers[k] == v.verdict {
				agreeing += weights[li]
			}
		}
		conf := 0.5
		if total > 0 {
			conf = agreeing / total
		}
		out = append(out, WeightedLabel{Link: v.link, Label: v.verdict, Confidence: conf})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Link.I != out[b].Link.I {
			return out[a].Link.I < out[b].Link.I
		}
		return out[a].Link.J < out[b].Link.J
	})
	return out
}

// Report is a panel run's audit summary.
type Report struct {
	Labelers       int
	Replicas       int
	Queries        int
	Contradictions int // flagged one-to-one violations, labeler + panel level
	PanelViolation int // majority verdicts violating one-to-one
	Distrusted     []string
	Trust          []LabelerTrust
}

// Report summarizes the panel's ledger.
func (p *Panel) Report() Report {
	trust := p.TrustScores()
	var distrusted []string
	contradictions := 0
	for _, lt := range trust {
		if lt.Distrusted {
			distrusted = append(distrusted, lt.ID)
		}
		contradictions += lt.Contradictions
	}
	p.mu.Lock()
	queries := len(p.answered)
	panelViolation := p.panelViolation
	p.mu.Unlock()
	return Report{
		Labelers:       len(p.labelers),
		Replicas:       p.r,
		Queries:        queries,
		Contradictions: contradictions + panelViolation,
		PanelViolation: panelViolation,
		Distrusted:     distrusted,
		Trust:          trust,
	}
}
