package oracle

import (
	"math"
	"sync"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// scripted answers from a fixed per-link bit function — a hostile
// labeler whose vote pattern the test controls exactly.
type scripted struct {
	name string
	f    func(hetnet.Anchor) float64
}

func (s *scripted) ID() string                     { return s.name }
func (s *scripted) Label(a hetnet.Anchor) float64  { return s.f(a) }
func always(v float64) func(hetnet.Anchor) float64 { return func(hetnet.Anchor) float64 { return v } }
func mustPanel(t *testing.T, pool []Labeler, opts PanelOptions) *Panel {
	t.Helper()
	p, err := NewPanel(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPanelHonestMatchesTruth(t *testing.T) {
	truth := constTruth(1)
	p, err := Config{Honest: 5, Replicas: 3, Seed: 2}.Build(truth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a := hetnet.Anchor{I: i, J: i + 1}
		if p.Label(a) != truth.Label(a) {
			t.Fatalf("honest panel diverged from truth at %v", a)
		}
	}
}

func TestPanelMajorityAbsorbsMinorityLiars(t *testing.T) {
	p, err := Config{Honest: 3, Adversarial: 2, Seed: 4}.Build(constTruth(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if p.Label(hetnet.Anchor{I: i, J: i + 1}) != 1 {
			t.Fatal("3 honest voices must outvote 2 adversaries")
		}
	}
}

func TestPanelTieResolvesToZero(t *testing.T) {
	p := mustPanel(t, []Labeler{
		&scripted{name: "yes", f: always(1)},
		&scripted{name: "no", f: always(0)},
	}, PanelOptions{})
	if got := p.Label(hetnet.Anchor{I: 1, J: 2}); got != 0 {
		t.Fatalf("1–1 tie resolved to %v, want the conservative 0", got)
	}
}

func TestPanelCachesRepeatQueries(t *testing.T) {
	p, err := Config{Honest: 2, Noisy: 1, FlipProb: 0.4, Seed: 6}.Build(constTruth(1))
	if err != nil {
		t.Fatal(err)
	}
	a := hetnet.Anchor{I: 5, J: 9}
	first := p.Label(a)
	for i := 0; i < 10; i++ {
		if p.Label(a) != first {
			t.Fatal("repeat query flipped the cached verdict")
		}
	}
	if p.Queries() != 1 {
		t.Fatalf("Queries() = %d after one distinct link", p.Queries())
	}
	// The ledger must not double-count evidence on retries: total votes
	// stay at one consultation of the whole pool.
	votes := 0
	for _, lt := range p.TrustScores() {
		votes += lt.Votes
	}
	if votes != 3 {
		t.Fatalf("ledger recorded %d votes for 1 query over 3 labelers", votes)
	}
}

func TestPanelReplicaSubsetSize(t *testing.T) {
	p, err := Config{Honest: 5, Replicas: 3, Seed: 8}.Build(constTruth(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		p.Label(hetnet.Anchor{I: i, J: i + 1})
	}
	votes := 0
	for _, lt := range p.TrustScores() {
		votes += lt.Votes
	}
	if votes != 3*n {
		t.Fatalf("%d total votes for %d queries at R=3", votes, n)
	}
	// R must spread across the pool, not pin the same 3 labelers.
	idle := 0
	for _, lt := range p.TrustScores() {
		if lt.Votes == 0 {
			idle++
		}
	}
	if idle > 0 {
		t.Errorf("%d labelers never consulted across %d queries", idle, n)
	}
}

func TestPanelVoterChoiceDeterministic(t *testing.T) {
	build := func() *Panel {
		p, err := Config{Honest: 2, Noisy: 3, FlipProb: 0.5, Replicas: 3, Seed: 12}.Build(constTruth(1))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(), build()
	// Query in different orders; per-link verdicts must agree exactly.
	const n = 100
	for i := 0; i < n; i++ {
		a.Label(hetnet.Anchor{I: i, J: i + 1})
	}
	for i := n - 1; i >= 0; i-- {
		b.Label(hetnet.Anchor{I: i, J: i + 1})
	}
	for i := 0; i < n; i++ {
		l := hetnet.Anchor{I: i, J: i + 1}
		if a.Label(l) != b.Label(l) {
			t.Fatalf("verdict at %v depends on query order", l)
		}
	}
	// Ledger totals are order-independent too.
	at, bt := a.TrustScores(), b.TrustScores()
	for i := range at {
		if at[i] != bt[i] {
			t.Errorf("trust row %d differs across query orders: %+v vs %+v", i, at[i], bt[i])
		}
	}
	if ac, bc := len(a.Contradictions()), len(b.Contradictions()); ac != bc {
		t.Errorf("contradiction count differs across query orders: %d vs %d", ac, bc)
	}
}

func TestContradictionLedgerFlagsDoubleClaims(t *testing.T) {
	// One labeler says yes to (1,2) and (1,3): user 1 claimed twice.
	p := mustPanel(t, []Labeler{&scripted{name: "greedy", f: always(1)}}, PanelOptions{})
	p.Label(hetnet.Anchor{I: 1, J: 2})
	if len(p.Contradictions()) != 0 {
		t.Fatal("first claim is not a contradiction")
	}
	p.Label(hetnet.Anchor{I: 1, J: 3})
	got := p.Contradictions()
	// The labeler-level and the panel-level (majority verdict) ledgers
	// both flag the violation.
	if len(got) != 2 {
		t.Fatalf("contradictions = %d, want 2 (labeler + panel)", len(got))
	}
	if got[0].Labeler != "greedy" || got[0].Link != (hetnet.Anchor{I: 1, J: 3}) || got[0].Prior != (hetnet.Anchor{I: 1, J: 2}) {
		t.Errorf("labeler-level record = %+v", got[0])
	}
	if got[1].Labeler != "panel" {
		t.Errorf("panel-level record attributed to %q", got[1].Labeler)
	}
	if p.PanelViolations() != 1 {
		t.Errorf("PanelViolations = %d, want 1", p.PanelViolations())
	}
	// The other side of the constraint: (4,2) claims user-2-on-B again.
	p.Label(hetnet.Anchor{I: 4, J: 2})
	if len(p.Contradictions()) != 4 {
		t.Errorf("J-side double claim not flagged: %d records", len(p.Contradictions()))
	}
}

func TestContradictionsPenalizeTrust(t *testing.T) {
	clean := mustPanel(t, []Labeler{&scripted{name: "a", f: always(0)}}, PanelOptions{})
	dirty := mustPanel(t, []Labeler{&scripted{name: "a", f: always(1)}}, PanelOptions{})
	for i := 0; i < 5; i++ {
		clean.Label(hetnet.Anchor{I: 1, J: i})
		dirty.Label(hetnet.Anchor{I: 1, J: i}) // four one-to-one violations
	}
	ct, dt := clean.TrustScores()[0], dirty.TrustScores()[0]
	if dt.Contradictions == 0 {
		t.Fatal("violating labeler shows no contradictions")
	}
	if dt.Trust >= ct.Trust {
		t.Errorf("contradicting labeler trust %.3f not below clean %.3f", dt.Trust, ct.Trust)
	}
}

func TestWeightedLabelsHonestPanelExact(t *testing.T) {
	truth := func(a hetnet.Anchor) float64 {
		if a.I == a.J {
			return 1
		}
		return 0
	}
	p, err := Config{Honest: 3, Seed: 1}.Build(&scripted{name: "truth", f: truth})
	if err != nil {
		t.Fatal(err)
	}
	links := []hetnet.Anchor{{I: 2, J: 2}, {I: 0, J: 1}, {I: 1, J: 1}, {I: 0, J: 0}}
	for _, l := range links {
		p.Label(l)
	}
	wls := p.WeightedLabels()
	if len(wls) != len(links) {
		t.Fatalf("%d weighted labels for %d queries", len(wls), len(links))
	}
	for i := 1; i < len(wls); i++ {
		a, b := wls[i-1].Link, wls[i].Link
		if a.I > b.I || (a.I == b.I && a.J >= b.J) {
			t.Fatalf("weighted labels not in canonical order: %v before %v", a, b)
		}
	}
	for _, wl := range wls {
		if wl.Confidence != 1 {
			t.Errorf("unanimous honest confidence = %v at %v, want exactly 1", wl.Confidence, wl.Link)
		}
		if v := wl.Value(); v != truth(wl.Link) {
			t.Errorf("Value() = %v at %v, want the exact truth %v", v, wl.Link, truth(wl.Link))
		}
	}
}

func TestWeightedLabelsZeroWeightDistrusted(t *testing.T) {
	// Two always-liars outvote one honest labeler, but after enough
	// queries their trust collapses below the cutoff and confidence must
	// fall back to ½ — no credible support either way.
	pool := []Labeler{
		&scripted{name: "liar-1", f: always(1)},
		&scripted{name: "liar-2", f: always(1)},
		&scripted{name: "honest", f: always(0)},
	}
	p := mustPanel(t, []Labeler{pool[0], pool[1], pool[2]}, PanelOptions{})
	for i := 0; i < 40; i++ {
		p.Label(hetnet.Anchor{I: i, J: i + 1})
	}
	// The "liars" win every vote, so consensus brands the honest one the
	// outlier; its weight must be zero and every verdict's confidence
	// the full weight of the agreeing majority.
	for _, wl := range p.WeightedLabels() {
		if wl.Confidence < 0 || wl.Confidence > 1 || math.IsNaN(wl.Confidence) {
			t.Fatalf("confidence %v out of [0,1]", wl.Confidence)
		}
	}
	ts := p.TrustScores()
	if !ts[2].Distrusted {
		t.Errorf("perpetual outlier not distrusted: trust %.3f", ts[2].Trust)
	}
	if ts[0].Distrusted || ts[1].Distrusted {
		t.Error("consensus winners marked distrusted")
	}
}

// Run under -race: concurrent queries from shard pipelines must neither
// corrupt the ledger nor perturb verdicts relative to a serial run.
func TestPanelConcurrentMatchesSerial(t *testing.T) {
	build := func() *Panel {
		p, err := Config{Honest: 2, Noisy: 2, FlipProb: 0.3, Adversarial: 1, Replicas: 3, Seed: 77}.Build(constTruth(1))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	serial, concurrent := build(), build()
	const n = 400
	for i := 0; i < n; i++ {
		serial.Label(hetnet.Anchor{I: i, J: i + 1})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				concurrent.Label(hetnet.Anchor{I: i, J: i + 1})
			}
			for i := 0; i < n; i += 7 { // overlapping re-queries
				concurrent.Label(hetnet.Anchor{I: i, J: i + 1})
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		l := hetnet.Anchor{I: i, J: i + 1}
		if serial.Label(l) != concurrent.Label(l) {
			t.Fatalf("concurrent verdict at %v diverged from serial", l)
		}
	}
	if serial.Queries() != concurrent.Queries() {
		t.Fatalf("distinct-query counts diverged: %d vs %d", serial.Queries(), concurrent.Queries())
	}
	st, ct := serial.TrustScores(), concurrent.TrustScores()
	for i := range st {
		if st[i] != ct[i] {
			t.Errorf("trust row %d diverged: serial %+v concurrent %+v", i, st[i], ct[i])
		}
	}
	if a, b := len(serial.Contradictions()), len(concurrent.Contradictions()); a != b {
		t.Errorf("contradiction counts diverged: %d vs %d", a, b)
	}
}

func TestReportSummarizesLedger(t *testing.T) {
	p, err := Config{Honest: 3, Adversarial: 1, Replicas: 3, Seed: 5}.Build(constTruth(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p.Label(hetnet.Anchor{I: i, J: i + 1})
	}
	rep := p.Report()
	if rep.Labelers != 4 || rep.Replicas != 3 || rep.Queries != 60 {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Trust) != 4 {
		t.Fatalf("%d trust rows", len(rep.Trust))
	}
}
