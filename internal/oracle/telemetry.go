// Telemetry bridge: the labeler-pool subsystem's process-wide counters.
// The per-panel Report stays the API for one run's exact numbers; these
// are the scrapeable lifetime totals a fleet monitor reads off
// /metricsz.
package oracle

import (
	"github.com/activeiter/activeiter/internal/telemetry"
)

var (
	mReplicas       = telemetry.Default.Counter("activeiter_oracle_replicas_total", "Labeler answers collected across all panel queries (R per fresh query).")
	mContradictions = telemetry.Default.Counter("activeiter_oracle_contradictions_total", "One-to-one constraint violations flagged by the contradiction ledger.")
	mDistrusted     = telemetry.Default.Counter("activeiter_oracle_distrusted_total", "Labelers whose trust score first dropped below the distrust cutoff.")
)
