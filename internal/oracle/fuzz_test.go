package oracle

import (
	"math"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// FuzzTrust drives the trust-score update and vote aggregation with
// hostile vote sequences: an arbitrary pool of bit-scripted labelers
// answering an arbitrary query stream over a tiny ID space (maximal
// endpoint collisions, so the contradiction ledger and its trust
// penalties fire constantly). Whatever the votes, the panel must keep
// every derived number finite and in range: verdicts binary, trust in
// (0,1), confidence and Value in [0,1], ledger counts consistent.
func FuzzTrust(f *testing.F) {
	f.Add([]byte{0x00}, []byte{0x01, 0x02})
	f.Add([]byte{0xff, 0x00, 0xaa}, []byte{0x00, 0x11, 0x12, 0x21, 0x22})
	f.Add([]byte{0x5a, 0x5a, 0x5a, 0x5a, 0x5a}, []byte{0x77, 0x77, 0x13, 0x31, 0x13})
	f.Fuzz(func(t *testing.T, script, queries []byte) {
		if len(script) == 0 || len(script) > 16 || len(queries) > 256 {
			t.Skip()
		}
		// One labeler per script byte; labeler k answers query (i,j)
		// from bit (i*7+j) of its byte — adversarial, colluding and
		// self-contradictory patterns all reachable.
		pool := make([]Labeler, len(script))
		for k := range script {
			b := script[k]
			pool[k] = &scripted{
				name: string(rune('a' + k)),
				f: func(a hetnet.Anchor) float64 {
					return float64((b >> ((uint(a.I)*7 + uint(a.J)) % 8)) & 1)
				},
			}
		}
		r := 0
		if len(queries) > 0 {
			r = int(queries[0]) % (len(pool) + 1)
		}
		p, err := NewPanel(pool, PanelOptions{Replicas: r, Seed: int64(len(queries))})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			// 4-bit endpoints: collisions on both sides are the norm.
			a := hetnet.Anchor{I: int(q >> 4), J: int(q & 0x0f)}
			v := p.Label(a)
			if v != 0 && v != 1 {
				t.Fatalf("non-binary verdict %v", v)
			}
			if got := p.Label(a); got != v {
				t.Fatalf("repeat query flipped verdict %v -> %v", v, got)
			}
		}
		for _, lt := range p.TrustScores() {
			if math.IsNaN(lt.Trust) || math.IsInf(lt.Trust, 0) || lt.Trust <= 0 || lt.Trust >= 1 {
				t.Fatalf("trust %v outside (0,1) for %s", lt.Trust, lt.ID)
			}
			if lt.Votes < 0 || lt.Contradictions < 0 {
				t.Fatalf("negative ledger counts %+v", lt)
			}
		}
		wls := p.WeightedLabels()
		if len(wls) != p.Queries() {
			t.Fatalf("%d weighted labels for %d distinct queries", len(wls), p.Queries())
		}
		for _, wl := range wls {
			if math.IsNaN(wl.Confidence) || wl.Confidence < 0 || wl.Confidence > 1 {
				t.Fatalf("confidence %v outside [0,1] at %v", wl.Confidence, wl.Link)
			}
			if v := wl.Value(); math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("Value() %v outside [0,1] at %v", v, wl.Link)
			}
			if wl.Label != 0 && wl.Label != 1 {
				t.Fatalf("non-binary stored label %v", wl.Label)
			}
		}
		rep := p.Report()
		if rep.Contradictions < 0 || rep.PanelViolation < 0 || rep.Contradictions < rep.PanelViolation {
			t.Fatalf("inconsistent report %+v", rep)
		}
	})
}
