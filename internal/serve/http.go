package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/activeiter/activeiter/internal/snapshot"
	"github.com/activeiter/activeiter/internal/telemetry"
)

// HandlerOptions configures the HTTP surface.
type HandlerOptions struct {
	// DefaultK is the candidate-list depth when a request has no ?k=;
	// 0 means the snapshot's precomputed depth.
	DefaultK int
	// SnapshotPath is the artifact a parameterless /v1/reload re-opens.
	SnapshotPath string
	// Load opens and decodes an artifact for /v1/reload. nil disables
	// the endpoint (it answers 501).
	Load func(path string) (*snapshot.Snapshot, error)
	// AllowPathOverride lets a /v1/reload body name an arbitrary
	// artifact path. Off by default: the endpoint is unauthenticated,
	// and a client that can name any filesystem path can swap the
	// served model (or grind the disk) on a server bound to all
	// interfaces — so out of the box reload only re-opens SnapshotPath.
	AllowPathOverride bool
}

// Handler is the alignd HTTP surface over a Store:
//
//	GET  /healthz                      — liveness (always 200: the process is up)
//	GET  /readyz                       — readiness (503 until a snapshot is loaded, or after a failed reload)
//	GET  /statusz                      — snapshot provenance + per-endpoint QPS/latency
//	GET  /v1/match/{net}/{user}        — O(1) matched-partner lookup
//	GET  /v1/candidates/{net}/{user}   — top-k ranked candidates (?k= caps the list)
//	POST /v1/score                     — pool-link lookup {"i","j"} or predictor rescore {"features",["shard"]}
//	POST /v1/reload                    — atomic snapshot swap {"path"} (optional)
//
// {net} is 1 or 2; {user} is an external user ID or a numeric index.
// Every JSON answer carries the serving generation, and each request
// resolves the Store pointer exactly once, so a response is wholly one
// snapshot generation even while a reload swaps underneath.
type Handler struct {
	store   *Store
	metrics *Metrics
	opts    HandlerOptions

	// Last reload outcome, for /readyz and /statusz: a failed reload
	// keeps the old generation serving (the swap never happens) but
	// flips readiness so orchestrators stop routing new traffic to a
	// replica whose artifact on disk is bad.
	reloadMu       sync.Mutex
	lastReloadErr  string
	lastReloadUnix int64
}

// NewHandler wraps the store. metrics may be nil (a fresh registry is
// created).
func NewHandler(store *Store, metrics *Metrics, opts HandlerOptions) *Handler {
	if metrics == nil {
		metrics = NewMetrics()
	}
	return &Handler{store: store, metrics: metrics, opts: opts}
}

// Metrics exposes the registry (for tests and for recording bench
// figures).
func (h *Handler) Metrics() *Metrics { return h.metrics }

// httpError is the uniform JSON error shape.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	endpoint, err := h.route(w, r)
	isErr := err != nil
	if err != nil {
		he, ok := err.(*httpError)
		if !ok {
			he = errf(http.StatusInternalServerError, "%v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(he.status)
		json.NewEncoder(w).Encode(map[string]string{"error": he.msg})
	}
	h.metrics.Observe(endpoint, time.Since(start), isErr)
}

// route dispatches one request and returns the endpoint label to
// account it under. Go 1.21's ServeMux has no method/wildcard patterns,
// so the two-segment paths parse by hand.
func (h *Handler) route(w http.ResponseWriter, r *http.Request) (string, error) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		return "healthz", h.handleHealth(w, r)
	case path == "/readyz":
		return "readyz", h.handleReady(w, r)
	case path == "/statusz":
		return "statusz", h.handleStatus(w, r)
	case path == "/metricsz":
		return "metricsz", h.handleMetrics(w, r)
	case path == "/v1/score":
		return "score", h.handleScore(w, r)
	case path == "/v1/reload":
		return "reload", h.handleReload(w, r)
	case strings.HasPrefix(path, "/v1/match/"):
		return "match", h.handleLookup(w, r, strings.TrimPrefix(path, "/v1/match/"), false)
	case strings.HasPrefix(path, "/v1/candidates/"):
		return "candidates", h.handleLookup(w, r, strings.TrimPrefix(path, "/v1/candidates/"), true)
	case strings.HasPrefix(path, "/v1/resolve/"):
		return "resolve", h.handleResolve(w, r, strings.TrimPrefix(path, "/v1/resolve/"))
	default:
		return "unknown", errf(http.StatusNotFound, "no such endpoint %q", path)
	}
}

// current resolves the served index once per request.
func (h *Handler) current() (*Index, error) {
	ix := h.store.Current()
	if ix == nil {
		return nil, errf(http.StatusServiceUnavailable, "no snapshot loaded")
	}
	return ix, nil
}

func (h *Handler) writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// handleHealth is pure liveness: it answers 200 whenever the process
// can serve HTTP at all. Restart-on-unhealthy orchestration keys off
// this; a replica that is up but not yet (or no longer) serviceable is
// readyz's business, not a reason to kill the process.
func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return errf(http.StatusMethodNotAllowed, "healthz is GET")
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	return nil
}

// handleReady is readiness: a snapshot is loaded AND the last reload
// (if any) succeeded. Load balancers key traffic off this.
func (h *Handler) handleReady(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return errf(http.StatusMethodNotAllowed, "readyz is GET")
	}
	if h.store.Current() == nil {
		return errf(http.StatusServiceUnavailable, "no snapshot loaded")
	}
	h.reloadMu.Lock()
	reloadErr := h.lastReloadErr
	h.reloadMu.Unlock()
	if reloadErr != "" {
		return errf(http.StatusServiceUnavailable, "last reload failed: %s", reloadErr)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
	return nil
}

// recordReload notes a reload outcome for readyz/statusz.
func (h *Handler) recordReload(err error) {
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	h.lastReloadUnix = time.Now().Unix()
	if err != nil {
		h.lastReloadErr = err.Error()
	} else {
		h.lastReloadErr = ""
	}
}

// statusResponse is the statusz JSON shape.
type statusResponse struct {
	Generation uint64          `json:"generation"`
	UptimeSec  float64         `json:"uptime_sec"`
	Snapshot   *statusSnapshot `json:"snapshot,omitempty"`
	// LastReloadError is the most recent /v1/reload failure (empty after
	// a success); LastReloadUnix stamps the most recent attempt either
	// way.
	LastReloadError string           `json:"last_reload_error,omitempty"`
	LastReloadUnix  int64            `json:"last_reload_unix,omitempty"`
	Endpoints       []EndpointReport `json:"endpoints"`
}

type statusSnapshot struct {
	Facade      string       `json:"facade"`
	CreatedUnix int64        `json:"created_unix"`
	Net1        string       `json:"net1"`
	Net2        string       `json:"net2"`
	FP1         string       `json:"fp1"`
	FP2         string       `json:"fp2"`
	Users1      int          `json:"users1"`
	Users2      int          `json:"users2"`
	Matches     int          `json:"matches"`
	Pool        int          `json:"pool"`
	TopK        int          `json:"top_k"`
	Shards      []int        `json:"shards,omitempty"`
	Primary     bool         `json:"primary_model"`
	Shard       *statusShard `json:"shard,omitempty"`
}

// statusShard is the split provenance block a shard artifact exposes:
// the alignr router discovers the fleet's range table from it instead
// of being configured with one.
type statusShard struct {
	Lo       int32  `json:"lo"`
	Hi       int32  `json:"hi"`
	Index    int    `json:"index"`
	Count    int    `json:"count"`
	Epoch    int64  `json:"epoch"`
	ParentFP string `json:"parent_fp"`
}

// handleMetrics serves the Prometheus text exposition: this server's
// per-endpoint counters plus the process-wide telemetry registry.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return errf(http.StatusMethodNotAllowed, "metricsz is GET")
	}
	w.Header().Set("Content-Type", telemetry.PromContentType)
	return h.metrics.WriteProm(w)
}

func (h *Handler) handleStatus(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return errf(http.StatusMethodNotAllowed, "statusz is GET")
	}
	resp := statusResponse{UptimeSec: h.metrics.Uptime().Seconds(), Endpoints: h.metrics.Report()}
	h.reloadMu.Lock()
	resp.LastReloadError = h.lastReloadErr
	resp.LastReloadUnix = h.lastReloadUnix
	h.reloadMu.Unlock()
	if ix := h.store.Current(); ix != nil {
		meta := ix.Meta()
		u1, u2, matches, pool := ix.Counts()
		resp.Generation = ix.Generation
		resp.Snapshot = &statusSnapshot{
			Facade:      meta.Facade,
			CreatedUnix: meta.CreatedUnix,
			Net1:        meta.Net1,
			Net2:        meta.Net2,
			FP1:         fmt.Sprintf("%016x", meta.FP1),
			FP2:         fmt.Sprintf("%016x", meta.FP2),
			Users1:      u1,
			Users2:      u2,
			Matches:     matches,
			Pool:        pool,
			TopK:        ix.TopK(),
			Shards:      ix.Shards(),
			Primary:     len(ix.snap.Model.W) > 0,
		}
		if si := meta.Shard; si != nil {
			resp.Snapshot.Shard = &statusShard{
				Lo:       si.Range.Lo,
				Hi:       si.Range.Hi,
				Index:    si.Index,
				Count:    si.Count,
				Epoch:    si.Epoch,
				ParentFP: fmt.Sprintf("%016x", si.ParentFP),
			}
		}
	}
	return h.writeJSON(w, resp)
}

// parseNetUser splits the "{net}/{user}" tail of a lookup path.
func parseNetUser(ix *Index, tail string) (int, int32, error) {
	parts := strings.SplitN(tail, "/", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return 0, 0, errf(http.StatusBadRequest, "path must be /v1/.../{net}/{user}")
	}
	net, err := strconv.Atoi(parts[0])
	if err != nil || (net != 1 && net != 2) {
		return 0, 0, errf(http.StatusBadRequest, "net must be 1 or 2, got %q", parts[0])
	}
	user, ok := ix.ResolveUser(net, parts[1])
	if !ok {
		return 0, 0, errf(http.StatusNotFound, "unknown user %q on net %d", parts[1], net)
	}
	return net, user, nil
}

// matchResponse answers /v1/match.
type matchResponse struct {
	Generation uint64 `json:"generation"`
	Net        int    `json:"net"`
	User       string `json:"user"`
	Index      int32  `json:"index"`
	Match      *struct {
		Index    int32   `json:"index"`
		ID       string  `json:"id"`
		Score    float64 `json:"score"`
		HasScore bool    `json:"has_score"`
	} `json:"match"`
}

// candidatesResponse answers /v1/candidates.
type candidatesResponse struct {
	Generation uint64      `json:"generation"`
	Net        int         `json:"net"`
	User       string      `json:"user"`
	Index      int32       `json:"index"`
	K          int         `json:"k"`
	Candidates []Candidate `json:"candidates"`
}

func (h *Handler) handleLookup(w http.ResponseWriter, r *http.Request, tail string, candidates bool) error {
	if r.Method != http.MethodGet {
		return errf(http.StatusMethodNotAllowed, "lookup endpoints are GET")
	}
	ix, err := h.current()
	if err != nil {
		return err
	}
	net, user, err := parseNetUser(ix, tail)
	if err != nil {
		return err
	}
	if candidates {
		k := h.opts.DefaultK
		if kq := r.URL.Query().Get("k"); kq != "" {
			k, err = strconv.Atoi(kq)
			if err != nil || k < 0 {
				// Explicit rejection, not a silent fall back to the default
				// depth: a client that sent k=-3 or k=1e3 would otherwise
				// read a differently sized answer with no hint why.
				return errf(http.StatusBadRequest, "bad k %q: must be a non-negative integer", kq)
			}
		}
		items := ix.CandidatesFor(net, user, k)
		return h.writeJSON(w, candidatesResponse{
			Generation: ix.Generation,
			Net:        net,
			User:       ix.UserID(net, user),
			Index:      user,
			K:          k,
			Candidates: items,
		})
	}
	m, ok := ix.MatchFor(net, user)
	if !ok {
		return errf(http.StatusNotFound, "no matched partner for user %d on net %d (generation %d)", user, net, ix.Generation)
	}
	resp := matchResponse{Generation: ix.Generation, Net: net, User: ix.UserID(net, user), Index: user}
	resp.Match = &struct {
		Index    int32   `json:"index"`
		ID       string  `json:"id"`
		Score    float64 `json:"score"`
		HasScore bool    `json:"has_score"`
	}{m.Index, m.ID, m.Score, m.HasScore}
	return h.writeJSON(w, resp)
}

// resolveResponse answers /v1/resolve: the index a user token maps to,
// without the cost of a full lookup. The alignr router leans on it —
// shard ownership is decided by net-1 index, and any replica can
// resolve because every shard carries the full user tables.
type resolveResponse struct {
	Generation uint64 `json:"generation"`
	Net        int    `json:"net"`
	User       string `json:"user"`
	Index      int32  `json:"index"`
	Users      int    `json:"users"`
}

func (h *Handler) handleResolve(w http.ResponseWriter, r *http.Request, tail string) error {
	if r.Method != http.MethodGet {
		return errf(http.StatusMethodNotAllowed, "resolve is GET")
	}
	ix, err := h.current()
	if err != nil {
		return err
	}
	net, user, err := parseNetUser(ix, tail)
	if err != nil {
		return err
	}
	users1, users2, _, _ := ix.Counts()
	users := users1
	if net == 2 {
		users = users2
	}
	return h.writeJSON(w, resolveResponse{
		Generation: ix.Generation,
		Net:        net,
		User:       ix.UserID(net, user),
		Index:      user,
		Users:      users,
	})
}

// scoreRequest is the /v1/score body: a pool-link lookup when I/J are
// set, a predictor rescore when Features is set.
type scoreRequest struct {
	I        *int32    `json:"i"`
	J        *int32    `json:"j"`
	Features []float64 `json:"features"`
	Shard    *int      `json:"shard"`
}

// scoreResponse answers both /v1/score forms; Source says which path
// produced it ("pool" or "predictor").
type scoreResponse struct {
	Generation uint64  `json:"generation"`
	Source     string  `json:"source"`
	Score      float64 `json:"score"`
	HasScore   bool    `json:"has_score"`
	Label      float64 `json:"label"`
	Queried    bool    `json:"queried,omitempty"`
	Shard      *int    `json:"shard,omitempty"`
}

func (h *Handler) handleScore(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return errf(http.StatusMethodNotAllowed, "score is POST")
	}
	ix, err := h.current()
	if err != nil {
		return err
	}
	var req scoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return errf(http.StatusBadRequest, "bad score request: %v", err)
	}
	switch {
	case req.I != nil && req.J != nil && req.Features == nil:
		p, ok := ix.PoolScore(*req.I, *req.J)
		if !ok {
			return errf(http.StatusNotFound, "link (%d,%d) not in the candidate pool", *req.I, *req.J)
		}
		return h.writeJSON(w, scoreResponse{
			Generation: ix.Generation, Source: "pool",
			Score: p.Score, HasScore: p.HasScore, Label: p.Label, Queried: p.Queried,
		})
	case req.Features != nil && req.I == nil && req.J == nil:
		shard := -1
		if req.Shard != nil {
			shard = *req.Shard
		}
		score, label, err := ix.Rescore(shard, req.Features)
		if err != nil {
			return errf(http.StatusBadRequest, "%v", err)
		}
		resp := scoreResponse{Generation: ix.Generation, Source: "predictor", Score: score, HasScore: true, Label: label}
		if req.Shard != nil {
			resp.Shard = req.Shard
		}
		return h.writeJSON(w, resp)
	default:
		return errf(http.StatusBadRequest, `score wants {"i","j"} (pool lookup) or {"features"[,"shard"]} (rescore), not both`)
	}
}

// reloadRequest is the /v1/reload body; an empty body (or empty path)
// re-opens the handler's configured snapshot path.
type reloadRequest struct {
	Path string `json:"path"`
}

// reloadResponse reports the freshly served generation.
type reloadResponse struct {
	Generation uint64 `json:"generation"`
	Path       string `json:"path"`
	Matches    int    `json:"matches"`
	Pool       int    `json:"pool"`
}

func (h *Handler) handleReload(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return errf(http.StatusMethodNotAllowed, "reload is POST")
	}
	if h.opts.Load == nil {
		return errf(http.StatusNotImplemented, "reload is not configured")
	}
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return errf(http.StatusBadRequest, "bad reload request: %v", err)
		}
	}
	path := req.Path
	if path == "" {
		path = h.opts.SnapshotPath
	}
	if path == "" {
		return errf(http.StatusBadRequest, "no snapshot path configured or supplied")
	}
	if path != h.opts.SnapshotPath && !h.opts.AllowPathOverride {
		return errf(http.StatusForbidden, "reload path override is disabled (serve with -allow-reload-path to enable)")
	}
	ix, err := h.reloadPath(path)
	if err != nil {
		return errf(http.StatusUnprocessableEntity, "%v", err)
	}
	_, _, matches, pool := ix.Counts()
	return h.writeJSON(w, reloadResponse{Generation: ix.Generation, Path: path, Matches: matches, Pool: pool})
}

// reloadPath is the reload mechanism shared by the HTTP endpoint and
// SIGHUP: decode and index off to the side, record the outcome for
// readyz/statusz, and only swap on success — a corrupt or unindexable
// artifact never reaches the store, so the old generation keeps
// serving while the failure is visible until a reload succeeds.
func (h *Handler) reloadPath(path string) (*Index, error) {
	if h.opts.Load == nil {
		return nil, fmt.Errorf("reload is not configured")
	}
	snap, err := h.opts.Load(path)
	if err != nil {
		err = fmt.Errorf("reload %s: %w", path, err)
		h.recordReload(err)
		return nil, err
	}
	ix, err := NewIndex(snap)
	if err != nil {
		err = fmt.Errorf("reload %s: %w", path, err)
		h.recordReload(err)
		return nil, err
	}
	h.recordReload(nil)
	h.store.Swap(ix)
	return ix, nil
}

// ReloadConfigured re-opens the handler's configured snapshot path and
// swaps it in — the SIGHUP path, equivalent to a parameterless
// POST /v1/reload. It returns the freshly served generation.
func (h *Handler) ReloadConfigured() (uint64, error) {
	if h.opts.SnapshotPath == "" {
		return 0, fmt.Errorf("no snapshot path configured")
	}
	ix, err := h.reloadPath(h.opts.SnapshotPath)
	if err != nil {
		return 0, err
	}
	return ix.Generation, nil
}
