package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// fixtureUsers is the user-table size of the test snapshots.
const fixtureUsers = 8

// fixturePair builds a minimal pair whose user tables are what the
// snapshot records; graph structure beyond users is irrelevant here.
func fixturePair(t testing.TB) *hetnet.AlignedPair {
	t.Helper()
	build := func(name string) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < fixtureUsers; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		return g
	}
	return hetnet.NewAlignedPair(build("left"), build("right"))
}

// fixtureSnapshot builds a deterministic artifact parameterized by a
// marker: every match score equals marker and user i matches user
// (i+shift)%n — the shape the reload stress test uses to detect a
// response mixing two generations.
func fixtureSnapshot(t testing.TB, marker float64, shift int) *snapshot.Snapshot {
	t.Helper()
	pair := fixturePair(t)
	var pool []snapshot.PoolLink
	var matches []snapshot.Match
	for i := 0; i < fixtureUsers; i++ {
		j := int32((i + shift) % fixtureUsers)
		pool = append(pool, snapshot.PoolLink{I: int32(i), J: j, Label: 1, Score: marker, HasScore: true})
		pool = append(pool, snapshot.PoolLink{I: int32(i), J: (j + 1) % fixtureUsers, Label: 0, Score: marker / 2, HasScore: true})
		matches = append(matches, snapshot.Match{I: int32(i), J: j, Score: marker, HasScore: true})
	}
	labels := []snapshot.QueriedLabel{{I: 0, J: int32(shift % fixtureUsers), Label: 1}}
	pool[0].Queried = true
	meta := snapshot.Meta{
		CreatedUnix: 1700000000,
		Facade:      "monolithic",
		Notation:    []string{"f0", "f1", "bias"},
		Threshold:   0.5,
	}
	model := snapshot.Model{W: []float64{marker, 0, 1}}
	s, err := snapshot.Build(pair, meta, model, pool, matches, labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestIndex(t testing.TB, marker float64, shift int) *Index {
	t.Helper()
	ix, err := NewIndex(fixtureSnapshot(t, marker, shift))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexLookups(t *testing.T) {
	ix := newTestIndex(t, 1.0, 0)

	m, ok := ix.MatchFor(1, 3)
	if !ok || m.Index != 3 || m.ID != "right-u3" || m.Score != 1.0 {
		t.Errorf("MatchFor(1,3) = %+v ok=%v", m, ok)
	}
	// Reverse direction resolves through match2.
	m, ok = ix.MatchFor(2, 3)
	if !ok || m.Index != 3 || m.ID != "left-u3" {
		t.Errorf("MatchFor(2,3) = %+v ok=%v", m, ok)
	}

	// Top-k ranking: user 0's best counterpart is its match (score 1.0),
	// then the decoy (0.5).
	cands := ix.CandidatesFor(1, 0, 2)
	if len(cands) != 2 || cands[0].Score < cands[1].Score {
		t.Errorf("CandidatesFor(1,0,2) = %+v", cands)
	}
	if got := ix.CandidatesFor(1, 0, 1); len(got) != 1 {
		t.Errorf("k=1 returned %d candidates", len(got))
	}

	p, ok := ix.PoolScore(0, 0)
	if !ok || p.Label != 1 || !p.Queried {
		t.Errorf("PoolScore(0,0) = %+v ok=%v", p, ok)
	}
	if _, ok := ix.PoolScore(7, 3); ok {
		t.Error("PoolScore invented a link outside the pool")
	}

	// AlignmentResult contract.
	if l, ok := ix.Label(0, 0); !ok || l != 1 {
		t.Errorf("Label(0,0) = %v ok=%v", l, ok)
	}
	if !ix.WasQueried(0, 0) || ix.WasQueried(1, 1) {
		t.Error("WasQueried wrong")
	}

	// ID and numeric resolution.
	if idx, ok := ix.ResolveUser(1, "left-u5"); !ok || idx != 5 {
		t.Errorf("ResolveUser by ID = %d ok=%v", idx, ok)
	}
	if idx, ok := ix.ResolveUser(2, "6"); !ok || idx != 6 {
		t.Errorf("ResolveUser by index = %d ok=%v", idx, ok)
	}
	if _, ok := ix.ResolveUser(1, "nope"); ok {
		t.Error("unknown user resolved")
	}
	if _, ok := ix.ResolveUser(1, "99"); ok {
		t.Error("out-of-range numeric user resolved")
	}
}

func TestIndexRescore(t *testing.T) {
	ix := newTestIndex(t, 2.0, 0) // W = {2, 0, 1}
	score, label, err := ix.Rescore(-1, []float64{0.5, 9, 1})
	if err != nil {
		t.Fatal(err)
	}
	if score != 2.0 { // 2*0.5 + 0*9 + 1*1
		t.Errorf("score = %v, want 2.0", score)
	}
	if label != 1 { // 2.0 > 0.5
		t.Errorf("label = %v, want 1", label)
	}
	if _, _, err := ix.Rescore(-1, []float64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, _, err := ix.Rescore(7, []float64{1, 2, 3}); err == nil {
		t.Error("unknown shard accepted")
	}
}

func TestStoreSwapGenerations(t *testing.T) {
	var st Store
	if st.Current() != nil {
		t.Fatal("empty store served an index")
	}
	a := newTestIndex(t, 1, 0)
	if gen := st.Swap(a); gen != 1 || a.Generation != 1 {
		t.Errorf("first swap gen = %d (index %d)", gen, a.Generation)
	}
	b := newTestIndex(t, 2, 1)
	if gen := st.Swap(b); gen != 2 {
		t.Errorf("second swap gen = %d", gen)
	}
	if st.Current() != b {
		t.Error("Current is not the last swapped index")
	}
}

// newTestServer wires a handler over two on-disk snapshots so reload
// works end to end.
func newTestServer(t *testing.T) (*httptest.Server, *Store, string, string) {
	t.Helper()
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.snap")
	pathB := filepath.Join(dir, "b.snap")
	if err := fixtureSnapshot(t, 1.0, 0).WriteFile(pathA); err != nil {
		t.Fatal(err)
	}
	if err := fixtureSnapshot(t, 2.0, 1).WriteFile(pathB); err != nil {
		t.Fatal(err)
	}
	st := &Store{}
	ixA, err := NewIndex(fixtureSnapshot(t, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	st.Swap(ixA)
	h := NewHandler(st, nil, HandlerOptions{
		SnapshotPath:      pathA,
		Load:              snapshot.OpenFile,
		AllowPathOverride: true,
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, st, pathA, pathB
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPEndpoints(t *testing.T) {
	srv, _, _, pathB := newTestServer(t)

	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusOK {
		t.Errorf("readyz = %d", code)
	}

	var match matchResponse
	if code := getJSON(t, srv.URL+"/v1/match/1/left-u2", &match); code != http.StatusOK {
		t.Fatalf("match = %d", code)
	}
	if match.Match == nil || match.Match.ID != "right-u2" || match.Match.Score != 1.0 {
		t.Errorf("match body = %+v", match)
	}
	// Numeric user token resolves too.
	if code := getJSON(t, srv.URL+"/v1/match/2/2", &match); code != http.StatusOK || match.Match.ID != "left-u2" {
		t.Errorf("numeric match = %d %+v", 0, match)
	}

	var cands candidatesResponse
	if code := getJSON(t, srv.URL+"/v1/candidates/1/left-u0?k=1", &cands); code != http.StatusOK {
		t.Fatalf("candidates = %d", code)
	}
	if len(cands.Candidates) != 1 || cands.Candidates[0].ID != "right-u0" {
		t.Errorf("candidates body = %+v", cands)
	}

	var score scoreResponse
	if code := postJSON(t, srv.URL+"/v1/score", `{"i":0,"j":0}`, &score); code != http.StatusOK {
		t.Fatalf("pool score = %d", code)
	}
	if score.Source != "pool" || score.Label != 1 || score.Score != 1.0 {
		t.Errorf("pool score body = %+v", score)
	}
	if code := postJSON(t, srv.URL+"/v1/score", `{"features":[1,0,0]}`, &score); code != http.StatusOK {
		t.Fatalf("rescore = %d", code)
	}
	if score.Source != "predictor" || score.Score != 1.0 {
		t.Errorf("rescore body = %+v", score)
	}

	// Error shapes.
	if code := getJSON(t, srv.URL+"/v1/match/3/left-u0", nil); code != http.StatusBadRequest {
		t.Errorf("bad net = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/match/1/ghost", nil); code != http.StatusNotFound {
		t.Errorf("unknown user = %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/score", `{"i":1}`, nil); code != http.StatusBadRequest {
		t.Errorf("half-pair score = %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/score", `{"i":0,"j":0,"features":[1]}`, nil); code != http.StatusBadRequest {
		t.Errorf("both-form score = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown endpoint = %d", code)
	}

	// Reload onto snapshot B shifts every match by one and bumps the
	// generation.
	var rel reloadResponse
	if code := postJSON(t, srv.URL+"/v1/reload", fmt.Sprintf(`{"path":%q}`, pathB), &rel); code != http.StatusOK {
		t.Fatalf("reload = %d", code)
	}
	if rel.Generation != 2 {
		t.Errorf("reload generation = %d", rel.Generation)
	}
	if code := getJSON(t, srv.URL+"/v1/match/1/left-u2", &match); code != http.StatusOK {
		t.Fatalf("post-reload match = %d", code)
	}
	if match.Generation != 2 || match.Match.ID != "right-u3" || match.Match.Score != 2.0 {
		t.Errorf("post-reload match body = %+v", match)
	}
	// Reload of a missing artifact must not disturb the served model —
	// but it flips readiness (liveness stays green: the process is fine)
	// and surfaces on statusz until a reload succeeds.
	if code := postJSON(t, srv.URL+"/v1/reload", `{"path":"/nonexistent.snap"}`, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("bad reload = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/match/1/left-u2", &match); code != http.StatusOK || match.Generation != 2 {
		t.Errorf("serving disturbed by failed reload: %d gen %d", code, match.Generation)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after failed reload = %d, want 503", code)
	}
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz after failed reload = %d, want 200", code)
	}

	var status statusResponse
	if code := getJSON(t, srv.URL+"/statusz", &status); code != http.StatusOK {
		t.Fatalf("statusz = %d", code)
	}
	if status.Generation != 2 || status.Snapshot == nil || status.Snapshot.Matches != fixtureUsers {
		t.Errorf("statusz body = %+v", status)
	}
	if status.LastReloadError == "" || !strings.Contains(status.LastReloadError, "nonexistent") {
		t.Errorf("statusz last_reload_error = %q, want the failed reload's error", status.LastReloadError)
	}

	// A successful reload clears the readiness latch.
	if code := postJSON(t, srv.URL+"/v1/reload", fmt.Sprintf(`{"path":%q}`, pathB), nil); code != http.StatusOK {
		t.Fatalf("recovery reload = %d", code)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusOK {
		t.Errorf("readyz after recovery reload = %d", code)
	}
	found := false
	for _, ep := range status.Endpoints {
		if ep.Endpoint == "match" && ep.Requests > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("statusz endpoints missing match traffic: %+v", status.Endpoints)
	}
}

// Without AllowPathOverride a reload body may not point the server at
// an arbitrary file — the endpoint is unauthenticated.
func TestHTTPReloadPathOverrideForbidden(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.snap")
	pathB := filepath.Join(dir, "b.snap")
	if err := fixtureSnapshot(t, 1.0, 0).WriteFile(pathA); err != nil {
		t.Fatal(err)
	}
	if err := fixtureSnapshot(t, 2.0, 1).WriteFile(pathB); err != nil {
		t.Fatal(err)
	}
	st := &Store{}
	ix, err := NewIndex(fixtureSnapshot(t, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	st.Swap(ix)
	srv := httptest.NewServer(NewHandler(st, nil, HandlerOptions{
		SnapshotPath: pathA,
		Load:         snapshot.OpenFile,
	}))
	defer srv.Close()

	if code := postJSON(t, srv.URL+"/v1/reload", fmt.Sprintf(`{"path":%q}`, pathB), nil); code != http.StatusForbidden {
		t.Errorf("foreign reload path = %d, want 403", code)
	}
	// Re-opening the configured path stays allowed: parameterless and
	// explicit-same-path both work.
	var rel reloadResponse
	if code := postJSON(t, srv.URL+"/v1/reload", "", &rel); code != http.StatusOK || rel.Path != pathA {
		t.Errorf("parameterless reload = %d %+v", code, rel)
	}
	if code := postJSON(t, srv.URL+"/v1/reload", fmt.Sprintf(`{"path":%q}`, pathA), nil); code != http.StatusOK {
		t.Errorf("same-path reload = %d", code)
	}
}

// TestHTTPReloadCorruptArtifact: a reload pointed at a corrupt artifact
// keeps the old generation serving, answers 422, drops readiness, and
// surfaces the decode error on statusz.
func TestHTTPReloadCorruptArtifact(t *testing.T) {
	srv, _, pathA, _ := newTestServer(t)
	if err := os.WriteFile(pathA, []byte("not a snapshot artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, srv.URL+"/v1/reload", "", nil); code != http.StatusUnprocessableEntity {
		t.Errorf("corrupt reload = %d, want 422", code)
	}
	var match matchResponse
	if code := getJSON(t, srv.URL+"/v1/match/1/left-u2", &match); code != http.StatusOK || match.Generation != 1 {
		t.Errorf("old generation not serving after corrupt reload: %d gen %d", code, match.Generation)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after corrupt reload = %d, want 503", code)
	}
	var status statusResponse
	if code := getJSON(t, srv.URL+"/statusz", &status); code != http.StatusOK {
		t.Fatalf("statusz = %d", code)
	}
	if status.LastReloadError == "" {
		t.Error("statusz does not surface the corrupt-reload error")
	}
	if status.Generation != 1 {
		t.Errorf("statusz generation = %d, want the surviving 1", status.Generation)
	}
}

func TestHTTPEmptyStore(t *testing.T) {
	st := &Store{}
	srv := httptest.NewServer(NewHandler(st, nil, HandlerOptions{}))
	defer srv.Close()
	// Liveness is about the process, readiness about the model: an empty
	// store is alive but not ready.
	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz on empty store = %d, want 200 (liveness)", code)
	}
	if code := getJSON(t, srv.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz on empty store = %d, want 503", code)
	}
	if code := getJSON(t, srv.URL+"/v1/match/1/0", nil); code != http.StatusServiceUnavailable {
		t.Errorf("match on empty store = %d", code)
	}
	// Reload unconfigured.
	if code := postJSON(t, srv.URL+"/v1/reload", "", nil); code != http.StatusNotImplemented {
		t.Errorf("unconfigured reload = %d", code)
	}
}

// Regression: a malformed ?k= must be rejected with a 400 and the
// uniform {"error": ...} body naming the bad value — not silently
// served at the default depth.
func TestHTTPCandidatesBadK(t *testing.T) {
	srv, _, _, _ := newTestServer(t)
	for _, kq := range []string{"-1", "abc", "1.5", "", "0x10"} {
		url := srv.URL + "/v1/candidates/1/left-u0?k=" + kq
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body := map[string]string{}
		code := resp.StatusCode
		decodeErr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if kq == "" {
			// An empty k is the no-k case: default depth, not an error.
			if code != http.StatusOK {
				t.Errorf("k=<empty> = %d, want 200", code)
			}
			continue
		}
		if code != http.StatusBadRequest {
			t.Errorf("k=%q = %d, want 400", kq, code)
		}
		if decodeErr != nil {
			t.Fatalf("k=%q: error body is not JSON: %v", kq, decodeErr)
		}
		if msg := body["error"]; !strings.Contains(msg, fmt.Sprintf("bad k %q", kq)) || !strings.Contains(msg, "non-negative integer") {
			t.Errorf("k=%q error body = %q, want the value and the constraint named", kq, msg)
		}
	}
	// Valid edges stay valid: k=0 means the full precomputed list.
	if code := getJSON(t, srv.URL+"/v1/candidates/1/left-u0?k=0", nil); code != http.StatusOK {
		t.Errorf("k=0 = %d, want 200", code)
	}
}

func TestHTTPResolve(t *testing.T) {
	srv, _, _, _ := newTestServer(t)
	var res resolveResponse
	if code := getJSON(t, srv.URL+"/v1/resolve/1/left-u5", &res); code != http.StatusOK {
		t.Fatalf("resolve = %d", code)
	}
	if res.Net != 1 || res.Index != 5 || res.User != "left-u5" || res.Users != fixtureUsers {
		t.Errorf("resolve body = %+v", res)
	}
	// Numeric tokens resolve positionally, like the lookup endpoints.
	if code := getJSON(t, srv.URL+"/v1/resolve/2/3", &res); code != http.StatusOK || res.Index != 3 || res.User != "right-u3" {
		t.Errorf("numeric resolve = %+v", res)
	}
	if code := getJSON(t, srv.URL+"/v1/resolve/1/ghost", nil); code != http.StatusNotFound {
		t.Errorf("unknown user resolve = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/resolve/9/left-u0", nil); code != http.StatusBadRequest {
		t.Errorf("bad net resolve = %d", code)
	}
}

// A shard artifact's statusz must expose its split provenance — the
// block the alignr router discovers the fleet range table from.
func TestHTTPStatusShardBlock(t *testing.T) {
	parent := fixtureSnapshot(t, 1.0, 0)
	shards, err := snapshot.Split(parent, snapshot.EvenRanges(fixtureUsers, 2))
	if err != nil {
		t.Fatal(err)
	}
	st := &Store{}
	ix, err := NewIndex(shards[1])
	if err != nil {
		t.Fatal(err)
	}
	st.Swap(ix)
	srv := httptest.NewServer(NewHandler(st, nil, HandlerOptions{}))
	defer srv.Close()

	var status statusResponse
	if code := getJSON(t, srv.URL+"/statusz", &status); code != http.StatusOK {
		t.Fatalf("statusz = %d", code)
	}
	sh := status.Snapshot.Shard
	if sh == nil {
		t.Fatal("statusz has no shard block for a shard artifact")
	}
	want := shards[1].Meta.Shard
	if sh.Lo != want.Range.Lo || sh.Hi != want.Range.Hi || sh.Index != 1 || sh.Count != 2 || sh.Epoch != want.Epoch {
		t.Errorf("shard block = %+v, want %+v", sh, want)
	}
	if sh.ParentFP != fmt.Sprintf("%016x", want.ParentFP) {
		t.Errorf("shard parent_fp = %q", sh.ParentFP)
	}
	// A whole-alignment artifact keeps the block absent. Decode into a
	// fresh struct: omitempty would leave the stale pointer in place.
	srvWhole, _, _, _ := newTestServer(t)
	status = statusResponse{}
	if code := getJSON(t, srvWhole.URL+"/statusz", &status); code != http.StatusOK {
		t.Fatal("statusz on whole artifact")
	}
	if status.Snapshot.Shard != nil {
		t.Error("whole-alignment statusz grew a shard block")
	}
}

func TestReloadConfigured(t *testing.T) {
	srv, _, pathA, _ := newTestServer(t)
	_ = srv
	// Build a second handler around the same path to exercise the
	// non-HTTP reload path directly.
	st := &Store{}
	ix, err := NewIndex(fixtureSnapshot(t, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	st.Swap(ix)
	h := NewHandler(st, nil, HandlerOptions{SnapshotPath: pathA, Load: snapshot.OpenFile})
	gen, err := h.ReloadConfigured()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Errorf("reload generation = %d, want 2", gen)
	}
	// A corrupt artifact keeps the old generation and reports the error.
	if err := os.WriteFile(pathA, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReloadConfigured(); err == nil {
		t.Error("corrupt ReloadConfigured succeeded")
	}
	if st.Current().Generation != 2 {
		t.Error("corrupt ReloadConfigured disturbed the served generation")
	}
}

func TestMetricsPercentiles(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 98; i++ {
		m.Observe("x", 10*time.Microsecond, false)
	}
	// Two slow outliers put the 99th-of-100 request in the slow bucket.
	m.Observe("x", 5*time.Millisecond, true)
	m.Observe("x", 5*time.Millisecond, false)
	rep := m.Report()
	if len(rep) != 1 || rep[0].Requests != 100 || rep[0].Errors != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// p50 sits in the 10µs bucket (upper bound ≤ 16µs); p99 must reach
	// the 5ms outlier's bucket (upper bound ≥ 5ms).
	if rep[0].P50 > 16*time.Microsecond {
		t.Errorf("p50 = %v", rep[0].P50)
	}
	if rep[0].P99 < 5*time.Millisecond {
		t.Errorf("p99 = %v", rep[0].P99)
	}
	if rep[0].QPS <= 0 {
		t.Errorf("qps = %v", rep[0].QPS)
	}
}
