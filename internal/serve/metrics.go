package serve

import (
	"io"
	"sort"
	"sync"
	"time"

	"github.com/activeiter/activeiter/internal/telemetry"
)

// qpsWindowSecs is the sliding window Report computes QPS over. A
// fixed one-minute window means a server that sat idle overnight still
// reports its current load, not requests-since-boot divided by the
// night (the old behavior, which decayed toward zero forever).
const qpsWindowSecs = 60

// endpointStats is one endpoint's telemetry handles plus its QPS ring.
// The counters and histogram live in the per-Metrics telemetry
// registry (atomic hot paths, Prometheus-expositable); the ring is a
// lazy-advancing per-second circular buffer guarded by Metrics.mu.
type endpointStats struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram // microseconds, log₂ buckets

	ring     [qpsWindowSecs]uint64
	ringTick int64 // unix second the ring head corresponds to
}

// Metrics tracks per-endpoint request counts, error counts and latency
// distributions for the statusz page, backed by a telemetry registry
// so the same numbers serve /metricsz in Prometheus exposition format.
// Endpoints register lazily on first observation.
type Metrics struct {
	start time.Time
	now   func() time.Time // injectable for the QPS window tests
	reg   *telemetry.Registry

	mu  sync.Mutex
	eps map[string]*endpointStats
}

// NewMetrics returns an empty metrics registry; the QPS clock starts
// now. Each Metrics owns a private telemetry registry so separate
// servers in one process (tests, embedding) don't cross-count.
func NewMetrics() *Metrics {
	m := &Metrics{
		start: time.Now(),
		now:   time.Now,
		reg:   telemetry.NewRegistry(),
		eps:   make(map[string]*endpointStats),
	}
	m.reg.Func("activeiter_serve_uptime_seconds", "Seconds since the server's metrics clock started.",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// Registry exposes the backing telemetry registry (the /metricsz
// handler writes it out).
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

func (m *Metrics) endpoint(name string) *endpointStats {
	ep := m.eps[name]
	if ep == nil {
		lab := telemetry.L("endpoint", name)
		ep = &endpointStats{
			requests: m.reg.Counter("activeiter_serve_requests_total", "Requests served, by endpoint.", lab),
			errors:   m.reg.Counter("activeiter_serve_errors_total", "Requests that failed, by endpoint.", lab),
			latency:  m.reg.Histogram("activeiter_serve_latency_microseconds", "Request latency in microseconds (log2 buckets).", lab),
		}
		m.eps[name] = ep
	}
	return ep
}

// advance rotates the QPS ring forward to second sec, zeroing slots
// for the seconds that passed with no traffic.
func (ep *endpointStats) advance(sec int64) {
	if ep.ringTick == 0 {
		ep.ringTick = sec
		return
	}
	if gap := sec - ep.ringTick; gap >= qpsWindowSecs {
		ep.ring = [qpsWindowSecs]uint64{}
	} else {
		for s := ep.ringTick + 1; s <= sec; s++ {
			ep.ring[s%qpsWindowSecs] = 0
		}
	}
	if sec > ep.ringTick {
		ep.ringTick = sec
	}
}

// Observe records one request.
func (m *Metrics) Observe(endpoint string, d time.Duration, isErr bool) {
	m.mu.Lock()
	ep := m.endpoint(endpoint)
	sec := m.now().Unix()
	ep.advance(sec)
	ep.ring[sec%qpsWindowSecs]++
	m.mu.Unlock()

	ep.requests.Inc()
	if isErr {
		ep.errors.Inc()
	}
	ep.latency.Observe(d.Microseconds())
}

// EndpointReport is one endpoint's statusz row. Percentiles are bucket
// upper bounds (within 2× of true, by construction of the log₂
// histogram). QPS is measured over the trailing one-minute window.
type EndpointReport struct {
	Endpoint string        `json:"endpoint"`
	Requests uint64        `json:"requests"`
	Errors   uint64        `json:"errors"`
	QPS      float64       `json:"qps"`
	Mean     time.Duration `json:"mean_ns"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
}

// quantileDuration converts a histogram-of-microseconds quantile to a
// duration.
func quantileDuration(s telemetry.HistSnapshot, q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Quantile(q)) * time.Microsecond
}

// Report snapshots every endpoint's counters, sorted by endpoint name.
func (m *Metrics) Report() []EndpointReport {
	now := m.now()
	windowSecs := float64(qpsWindowSecs)
	if up := now.Sub(m.start).Seconds(); up < windowSecs {
		// Young server: don't dilute QPS by window seconds that never
		// existed.
		if windowSecs = up; windowSecs < 1 {
			windowSecs = 1
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EndpointReport, 0, len(m.eps))
	for name, ep := range m.eps {
		ep.advance(now.Unix())
		var windowed uint64
		for _, n := range ep.ring {
			windowed += n
		}
		snap := ep.latency.Snapshot()
		r := EndpointReport{
			Endpoint: name,
			Requests: uint64(ep.requests.Value()),
			Errors:   uint64(ep.errors.Value()),
			QPS:      float64(windowed) / windowSecs,
			P50:      quantileDuration(snap, 0.50),
			P99:      quantileDuration(snap, 0.99),
		}
		if snap.Count > 0 {
			r.Mean = time.Duration(snap.Sum/int64(snap.Count)) * time.Microsecond
		}
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Endpoint < out[b].Endpoint })
	return out
}

// Uptime reports how long the metrics clock has been running.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// WriteProm writes this server's metrics followed by the process-wide
// telemetry.Default registry (distrib, metadiag, sparse counters when
// those layers ran in-process) in Prometheus text exposition format.
func (m *Metrics) WriteProm(w io.Writer) error {
	if err := m.reg.WriteProm(w); err != nil {
		return err
	}
	return telemetry.Default.WriteProm(w)
}
