package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyBuckets is the fixed log₂-spaced latency histogram: bucket i
// counts requests in [2ⁱ µs, 2ⁱ⁺¹ µs); the last bucket is unbounded.
// 24 buckets span 1 µs to ~16 s, plenty for an in-memory lookup server,
// and a fixed array keeps observation lock-free-cheap (one mutex-less
// increment would need atomics per bucket; a short critical section is
// simpler and still nanoseconds).
const latencyBuckets = 24

// endpointStats accumulates one endpoint's counters. Guarded by
// Metrics.mu — the critical sections are a handful of integer ops, far
// cheaper than the request work around them.
type endpointStats struct {
	requests uint64
	errors   uint64
	sumNanos uint64
	buckets  [latencyBuckets]uint64
}

// Metrics tracks per-endpoint request counts, error counts and latency
// distributions for the statusz page. Endpoints register lazily on
// first observation.
type Metrics struct {
	start time.Time

	mu  sync.Mutex
	eps map[string]*endpointStats
}

// NewMetrics returns an empty metrics registry; the QPS clock starts
// now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), eps: make(map[string]*endpointStats)}
}

// bucketOf maps a duration to its histogram bucket.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < latencyBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one request.
func (m *Metrics) Observe(endpoint string, d time.Duration, isErr bool) {
	m.mu.Lock()
	ep := m.eps[endpoint]
	if ep == nil {
		ep = &endpointStats{}
		m.eps[endpoint] = ep
	}
	ep.requests++
	if isErr {
		ep.errors++
	}
	ep.sumNanos += uint64(d.Nanoseconds())
	ep.buckets[bucketOf(d)]++
	m.mu.Unlock()
}

// EndpointReport is one endpoint's statusz row. Percentiles are bucket
// upper bounds (within 2× of true, by construction of the log₂
// histogram).
type EndpointReport struct {
	Endpoint string        `json:"endpoint"`
	Requests uint64        `json:"requests"`
	Errors   uint64        `json:"errors"`
	QPS      float64       `json:"qps"`
	Mean     time.Duration `json:"mean_ns"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
}

// percentile returns the upper bound of the bucket containing the q-th
// quantile request.
func (ep *endpointStats) percentile(q float64) time.Duration {
	if ep.requests == 0 {
		return 0
	}
	rank := uint64(q * float64(ep.requests))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b := 0; b < latencyBuckets; b++ {
		seen += ep.buckets[b]
		if seen >= rank {
			return time.Duration(1<<uint(b+1)) * time.Microsecond
		}
	}
	return time.Duration(1<<latencyBuckets) * time.Microsecond
}

// Report snapshots every endpoint's counters, sorted by endpoint name.
func (m *Metrics) Report() []EndpointReport {
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EndpointReport, 0, len(m.eps))
	for name, ep := range m.eps {
		r := EndpointReport{
			Endpoint: name,
			Requests: ep.requests,
			Errors:   ep.errors,
			QPS:      float64(ep.requests) / elapsed,
			P50:      ep.percentile(0.50),
			P99:      ep.percentile(0.99),
		}
		if ep.requests > 0 {
			r.Mean = time.Duration(ep.sumNanos / ep.requests)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Endpoint < out[b].Endpoint })
	return out
}

// Uptime reports how long the metrics clock has been running.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }
