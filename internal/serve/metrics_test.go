package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricszEndpoint scrapes /metricsz off a live server and checks
// the exposition includes the traffic the scrape itself generated
// counters for.
func TestMetricszEndpoint(t *testing.T) {
	srv, _, _, _ := newTestServer(t)
	defer srv.Close()
	if _, err := http.Get(srv.URL + "/v1/match/1/0"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE activeiter_serve_requests_total counter",
		`activeiter_serve_requests_total{endpoint="match"} 1`,
		"activeiter_serve_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metricsz missing %q:\n%s", want, out)
		}
	}
}

// TestQPSSlidingWindow is the regression test for the old QPS formula,
// which divided lifetime requests by uptime: a server idle for an hour
// then bursting 120 req/s reported ~0.03 QPS. The windowed report must
// reflect the burst, and traffic older than the window must stop
// counting.
func TestQPSSlidingWindow(t *testing.T) {
	m := NewMetrics()
	clock := m.start
	m.now = func() time.Time { return clock }

	// An early burst right after boot...
	for i := 0; i < 50; i++ {
		m.Observe("x", time.Millisecond, false)
	}
	// ...then a long idle hour.
	clock = clock.Add(time.Hour)

	// Fresh load: 120 requests spread over the last 2 seconds.
	for i := 0; i < 120; i++ {
		m.Observe("x", time.Millisecond, false)
		if i == 59 {
			clock = clock.Add(time.Second)
		}
	}
	rep := m.Report()
	if len(rep) != 1 || rep[0].Requests != 170 {
		t.Fatalf("report = %+v", rep)
	}
	qps := rep[0].QPS
	// 120 windowed requests over the 60s window = 2 QPS. The old
	// uptime formula would report 170/3601 ≈ 0.05.
	if qps < 1.5 || qps > 3 {
		t.Errorf("windowed QPS = %v, want ≈2", qps)
	}

	// Another idle hour: the window drains and QPS returns to zero
	// even though lifetime requests stay at 170.
	clock = clock.Add(time.Hour)
	rep = m.Report()
	if rep[0].QPS != 0 {
		t.Errorf("QPS after idle hour = %v, want 0", rep[0].QPS)
	}
	if rep[0].Requests != 170 {
		t.Errorf("lifetime requests = %d, want 170", rep[0].Requests)
	}
}

// TestQPSYoungServer: a server alive for less than the window divides
// by its actual age, not by window seconds that never existed.
func TestQPSYoungServer(t *testing.T) {
	m := NewMetrics()
	clock := m.start
	m.now = func() time.Time { return clock }
	for i := 0; i < 30; i++ {
		m.Observe("x", time.Millisecond, false)
	}
	clock = clock.Add(2 * time.Second)
	for i := 0; i < 30; i++ {
		m.Observe("x", time.Millisecond, false)
	}
	rep := m.Report()
	// 60 requests over ~2s of life ≈ 30 QPS; dividing by the full 60s
	// window would claim 1 QPS.
	if rep[0].QPS < 10 {
		t.Errorf("young-server QPS = %v, want ≈30", rep[0].QPS)
	}
}

func TestMetricsProm(t *testing.T) {
	m := NewMetrics()
	m.Observe("match", 100*time.Microsecond, false)
	m.Observe("match", 200*time.Microsecond, true)
	var sb strings.Builder
	if err := m.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`activeiter_serve_requests_total{endpoint="match"} 2`,
		`activeiter_serve_errors_total{endpoint="match"} 1`,
		`activeiter_serve_latency_microseconds_count{endpoint="match"} 2`,
		"# TYPE activeiter_serve_latency_microseconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
