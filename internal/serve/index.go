// Package serve is the online half of the offline→online bridge: it
// loads an alignment snapshot (internal/snapshot) into a read-optimized
// in-memory index and answers the query shapes a production alignment
// service needs — O(1) matched-partner lookup, per-user top-k candidate
// ranking, pool-link score lookup, and inductive rescoring of unseen
// feature vectors through core.Predictor.
//
// An Index is immutable once built; concurrent readers share it without
// locks. Store holds the current Index behind an atomic pointer so a
// zero-downtime reload is one pointer swap: in-flight requests finish
// on the generation they started on, new requests see the new one, and
// no request ever observes a mix (the -race stress test pins exactly
// this property). Handler wraps a Store in the alignd HTTP surface with
// per-endpoint QPS/latency counters.
package serve

import (
	"fmt"
	"strconv"

	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/snapshot"
)

// Match is one answered matched-partner lookup.
type Match struct {
	Index    int32
	ID       string
	Score    float64
	HasScore bool
}

// Candidate is one ranked counterpart suggestion (JSON-tagged: it is
// serialized directly into /v1/candidates responses).
type Candidate struct {
	Index int32   `json:"index"`
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// PoolAnswer is a pool-link score lookup: the frozen training-time
// verdict on one candidate link.
type PoolAnswer struct {
	Label    float64
	Score    float64
	HasScore bool
	Queried  bool
}

// Index is a read-optimized, immutable view of one snapshot. Build it
// once with NewIndex; every method is safe for unbounded concurrent
// use because nothing mutates after construction.
type Index struct {
	// Generation is the Store-assigned reload counter (0 until the
	// index is swapped in). Every HTTP answer carries it so a client —
	// and the reload stress test — can tell which model generation
	// produced the response.
	Generation uint64

	snap           *snapshot.Snapshot
	match1, match2 map[int32]snapshot.Match
	cands1, cands2 map[int32][]snapshot.Candidate
	pool           map[int64]snapshot.PoolLink
	users1, users2 map[string]int32
	primary        *core.Predictor
	shards         map[int]*core.Predictor
	defaultShard   int // -1 when the primary model serves rescoring
}

// NewIndex builds the lookup structures from a decoded snapshot.
func NewIndex(s *snapshot.Snapshot) (*Index, error) {
	if s == nil {
		return nil, fmt.Errorf("serve: nil snapshot")
	}
	ix := &Index{
		snap:         s,
		match1:       make(map[int32]snapshot.Match, len(s.Matches)),
		match2:       make(map[int32]snapshot.Match, len(s.Matches)),
		cands1:       make(map[int32][]snapshot.Candidate),
		cands2:       make(map[int32][]snapshot.Candidate),
		pool:         make(map[int64]snapshot.PoolLink, len(s.Pool)),
		users1:       make(map[string]int32, len(s.Meta.Users1)),
		users2:       make(map[string]int32, len(s.Meta.Users2)),
		shards:       make(map[int]*core.Predictor, len(s.Model.Shards)),
		defaultShard: -1,
	}
	for _, m := range s.Matches {
		ix.match1[m.I] = m
		ix.match2[m.J] = m
	}
	for _, uc := range s.Cands {
		switch uc.Net {
		case 1:
			ix.cands1[uc.User] = uc.Items
		case 2:
			ix.cands2[uc.User] = uc.Items
		default:
			return nil, fmt.Errorf("serve: candidate list for unknown net %d", uc.Net)
		}
	}
	for _, p := range s.Pool {
		ix.pool[hetnet.Key(int(p.I), int(p.J))] = p
	}
	for i, id := range s.Meta.Users1 {
		ix.users1[id] = int32(i)
	}
	for j, id := range s.Meta.Users2 {
		ix.users2[id] = int32(j)
	}
	if len(s.Model.W) > 0 {
		p, err := core.NewPredictorFromWeights(s.Model.W, s.Meta.Threshold)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		ix.primary = p
	}
	for _, sm := range s.Model.Shards {
		p, err := core.NewPredictorFromWeights(sm.W, s.Meta.Threshold)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", sm.Shard, err)
		}
		ix.shards[sm.Shard] = p
		if ix.defaultShard < 0 || sm.Shard < ix.defaultShard {
			ix.defaultShard = sm.Shard
		}
	}
	if ix.primary != nil {
		ix.defaultShard = -1
	}
	return ix, nil
}

// Meta exposes the snapshot's provenance header.
func (ix *Index) Meta() snapshot.Meta { return ix.snap.Meta }

// Snapshot exposes the decoded artifact the index was built from. The
// snapshot is immutable by the same contract as the index; the setsync
// listener serves it to reconciling fleet members.
func (ix *Index) Snapshot() *snapshot.Snapshot { return ix.snap }

// TopK returns the snapshot's precomputed candidate-list depth.
func (ix *Index) TopK() int { return ix.snap.TopK }

// Counts summarizes the index for statusz.
func (ix *Index) Counts() (users1, users2, matches, pool int) {
	return len(ix.snap.Meta.Users1), len(ix.snap.Meta.Users2), len(ix.snap.Matches), len(ix.snap.Pool)
}

// ResolveUser maps an external user token on net (1 or 2) to an index:
// an exact ID-table hit first, else a numeric index in range. The
// boolean reports success.
func (ix *Index) ResolveUser(net int, token string) (int32, bool) {
	users, table := ix.users1, ix.snap.Meta.Users1
	if net == 2 {
		users, table = ix.users2, ix.snap.Meta.Users2
	}
	if idx, ok := users[token]; ok {
		return idx, true
	}
	if n, err := strconv.Atoi(token); err == nil && n >= 0 && n < len(table) {
		return int32(n), true
	}
	return 0, false
}

// UserID returns the external ID of a user index on net (1 or 2).
func (ix *Index) UserID(net int, idx int32) string {
	if net == 2 {
		return ix.snap.Meta.Users2[idx]
	}
	return ix.snap.Meta.Users1[idx]
}

// MatchFor answers the O(1) matched-partner lookup: the reconciled
// one-to-one counterpart of user on net (1 or 2), if any.
func (ix *Index) MatchFor(net int, user int32) (Match, bool) {
	if net == 2 {
		m, ok := ix.match2[user]
		if !ok {
			return Match{}, false
		}
		return Match{Index: m.I, ID: ix.UserID(1, m.I), Score: m.Score, HasScore: m.HasScore}, true
	}
	m, ok := ix.match1[user]
	if !ok {
		return Match{}, false
	}
	return Match{Index: m.J, ID: ix.UserID(2, m.J), Score: m.Score, HasScore: m.HasScore}, true
}

// CandidatesFor returns user's ranked counterpart candidates, at most k
// (k ≤ 0 or beyond the snapshot's precomputed depth returns the full
// precomputed list).
func (ix *Index) CandidatesFor(net int, user int32, k int) []Candidate {
	src := ix.cands1
	other := 2
	if net == 2 {
		src = ix.cands2
		other = 1
	}
	items := src[user]
	if k > 0 && k < len(items) {
		items = items[:k]
	}
	out := make([]Candidate, len(items))
	for i, c := range items {
		out[i] = Candidate{Index: c.Other, ID: ix.UserID(other, c.Other), Score: c.Score}
	}
	return out
}

// PoolScore looks up the frozen training-time verdict on link (i, j).
func (ix *Index) PoolScore(i, j int32) (PoolAnswer, bool) {
	p, ok := ix.pool[hetnet.Key(int(i), int(j))]
	if !ok {
		return PoolAnswer{}, false
	}
	return PoolAnswer{Label: p.Label, Score: p.Score, HasScore: p.HasScore, Queried: p.Queried}, true
}

// Rescore scores an unseen feature vector with the snapshot's trained
// model: shard ≥ 0 picks that shard's model, shard < 0 the default (the
// primary model when present, else the lowest shard index). The feature
// vector must match Meta.Notation's layout.
func (ix *Index) Rescore(shard int, x []float64) (score, label float64, err error) {
	var p *core.Predictor
	switch {
	case shard < 0 && ix.primary != nil:
		p = ix.primary
	case shard < 0:
		p = ix.shards[ix.defaultShard]
	default:
		p = ix.shards[shard]
	}
	if p == nil {
		return 0, 0, fmt.Errorf("serve: no model for shard %d (snapshot has %s)", shard, ix.modelInventory())
	}
	if dim := len(ix.snap.Meta.Notation); len(x) != dim {
		return 0, 0, fmt.Errorf("serve: feature vector has %d entries, notation expects %d", len(x), dim)
	}
	return p.Score(x), p.Predict(x), nil
}

// Shards lists the shard indices with models, for statusz and errors.
func (ix *Index) Shards() []int {
	out := make([]int, 0, len(ix.shards))
	for _, sm := range ix.snap.Model.Shards {
		out = append(out, sm.Shard)
	}
	return out
}

func (ix *Index) modelInventory() string {
	if ix.primary != nil {
		return "a primary model"
	}
	if len(ix.shards) == 0 {
		return "no models"
	}
	return fmt.Sprintf("shard models %v", ix.Shards())
}

// Label returns the final label of link (i, j) and whether the link was
// in the candidate pool. Together with WasQueried this satisfies the
// facade's AlignmentResult contract, so EvaluateAlignment scores a
// loaded snapshot exactly like the live result it was built from.
func (ix *Index) Label(i, j int) (float64, bool) {
	p, ok := ix.pool[hetnet.Key(i, j)]
	if !ok {
		return 0, false
	}
	return p.Label, true
}

// WasQueried reports whether (i, j) was labeled by the oracle.
func (ix *Index) WasQueried(i, j int) bool {
	p, ok := ix.pool[hetnet.Key(i, j)]
	return ok && p.Queried
}
