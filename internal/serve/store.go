package serve

import "sync/atomic"

// Store holds the currently served Index behind an atomic pointer. A
// reload builds the new Index off to the side (seconds of work, no
// lock held) and Swap publishes it in one pointer store: requests
// already running keep the generation they loaded, new requests see
// the new one, and nobody ever observes half of each.
type Store struct {
	cur atomic.Pointer[Index]
	gen atomic.Uint64
}

// Swap publishes ix as the served index, stamping it with the next
// generation number, and returns that generation. The first Swap is
// generation 1.
func (st *Store) Swap(ix *Index) uint64 {
	gen := st.gen.Add(1)
	ix.Generation = gen
	st.cur.Store(ix)
	return gen
}

// Current returns the served index (nil before the first Swap). The
// caller must use the returned pointer for the whole request — calling
// Current twice may straddle a reload.
func (st *Store) Current() *Index { return st.cur.Load() }
