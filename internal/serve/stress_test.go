package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// markerOfShift ties the stress fixtures together: generation markers
// and match shifts come in pairs, so any response mixing one
// generation's score with the other's matching is detectable.
var stressGens = []struct {
	marker float64
	shift  int
}{
	{1.0, 0},
	{2.0, 1},
}

// TestConcurrentQueriesDuringReload is the -race reload stress: N
// goroutines hammer match/top-k/score lookups on the Store while a
// swapper flips the index between two snapshot generations underneath.
// Every answer must be internally consistent with exactly ONE
// generation — the marker score, the match shift, and the stamped
// generation number must all agree — which fails if a request ever
// observes a half-swapped index (and the race detector additionally
// flags any unsynchronized access).
func TestConcurrentQueriesDuringReload(t *testing.T) {
	st := &Store{}
	indexes := make([]*Index, len(stressGens))
	for k, g := range stressGens {
		indexes[k] = newTestIndex(t, g.marker, g.shift)
	}
	// genMarker records, per published generation, which fixture it
	// serves. Only the swapper writes; readers look up generations they
	// observed AFTER the swap published them, so a plain sync.Map is
	// race-free by construction.
	var genMarker sync.Map
	publish := func(k int) {
		// Each swap builds a fresh Index (generations are stamped at
		// swap time, and sharing one Index across swaps would mutate
		// .Generation under readers).
		ix := newTestIndex(t, stressGens[k].marker, stressGens[k].shift)
		gen := st.Swap(ix)
		genMarker.Store(gen, k)
	}
	publish(0)

	const (
		readers    = 8
		iterations = 3000
		swaps      = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < swaps; s++ {
			publish((s + 1) % len(stressGens))
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				u := int32((r + it) % fixtureUsers)
				ix := st.Current()
				k, ok := genMarker.Load(ix.Generation)
				if !ok {
					errs <- fmt.Errorf("generation %d served before publication", ix.Generation)
					return
				}
				want := stressGens[k.(int)]
				wantJ := int32((int(u) + want.shift) % fixtureUsers)

				m, ok := ix.MatchFor(1, u)
				if !ok {
					errs <- fmt.Errorf("gen %d: no match for %d", ix.Generation, u)
					return
				}
				if m.Index != wantJ || m.Score != want.marker {
					errs <- fmt.Errorf("gen %d: torn match for %d: got (%d, %v), want (%d, %v)",
						ix.Generation, u, m.Index, m.Score, wantJ, want.marker)
					return
				}
				cands := ix.CandidatesFor(1, u, 1)
				if len(cands) != 1 || cands[0].Score != want.marker {
					errs <- fmt.Errorf("gen %d: torn candidates for %d: %+v", ix.Generation, u, cands)
					return
				}
				p, ok := ix.PoolScore(u, wantJ)
				if !ok || p.Score != want.marker {
					errs <- fmt.Errorf("gen %d: torn pool score for (%d,%d): %+v ok=%v", ix.Generation, u, wantJ, p, ok)
					return
				}
				score, _, err := ix.Rescore(-1, []float64{1, 0, 0})
				if err != nil || score != want.marker {
					errs <- fmt.Errorf("gen %d: torn rescore: %v %v", ix.Generation, score, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHTTPConcurrentReload repeats the consistency property through the
// full HTTP surface: concurrent clients against a live server while
// /v1/reload alternates the artifact on disk. Every JSON response must
// be wholly one generation.
func TestHTTPConcurrentReload(t *testing.T) {
	srv, _, pathA, pathB := newTestServer(t)
	paths := []string{pathA, pathB}

	// Generation 1 is snapshot A (marker 1.0, shift 0); each reload k
	// (1-based) publishes generation k+1 serving paths[k%2]. Responses
	// carry the generation, so the expected marker/shift is derivable
	// from it alone: generation g serves stressGens[(g-1)%2].
	const (
		clients  = 6
		requests = 120
		reloads  = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 1; k <= reloads; k++ {
			body := fmt.Sprintf(`{"path":%q}`, paths[k%2])
			resp, err := http.Post(srv.URL+"/v1/reload", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("reload %d: status %d", k, resp.StatusCode)
				return
			}
		}
	}()

	client := srv.Client()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; it < requests; it++ {
				u := (c + it) % fixtureUsers
				resp, err := client.Get(fmt.Sprintf("%s/v1/match/1/%d", srv.URL, u))
				if err != nil {
					errs <- err
					return
				}
				var m matchResponse
				err = json.NewDecoder(resp.Body).Decode(&m)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("match %d: status %d err %v", u, resp.StatusCode, err)
					return
				}
				want := stressGens[int(m.Generation-1)%len(stressGens)]
				wantJ := int32((u + want.shift) % fixtureUsers)
				if m.Match == nil || m.Match.Index != wantJ || m.Match.Score != want.marker {
					errs <- fmt.Errorf("generation %d answered with foreign data: %+v (want j=%d score=%v)",
						m.Generation, m.Match, wantJ, want.marker)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
