// Package matching implements cardinality-constrained link selection:
// choosing a set of anchor links that respects the one-to-one constraint
// (each user incident to at most one selected link) while maximizing the
// selection objective.
//
// The internal iteration step (1-2) of the paper minimizes ‖ŷ − y‖² over
// binary y subject to the degree constraints. Selecting link l
// contributes (ŷ_l−1)² instead of ŷ_l², a gain of 2ŷ_l−1 — positive
// exactly when ŷ_l > ½. The problem is therefore a maximum-weight
// bipartite matching with weights 2ŷ_l−1 restricted to links with
// ŷ_l > ½. The paper adopts the greedy algorithm of Zhang et al. (WSDM
// 2017, reference [21]), which achieves a ½-approximation; this package
// provides both that greedy (Greedy) and an exact Hungarian solver
// (Exact) used by the ablation benchmarks to quantify the gap.
package matching

import (
	"math"
	"sort"
)

// Candidate is a scored candidate anchor link. Payload carries the
// caller's identifier (e.g. the index into the candidate pool H) through
// the selection untouched.
type Candidate struct {
	I, J    int
	Score   float64
	Payload int
}

// Occupied tracks endpoint usage across both networks, pre-seeded with
// the endpoints of known positive links (labeled and queried-positive
// anchors occupy their users before any inference happens).
type Occupied struct {
	left  map[int]bool
	right map[int]bool
}

// NewOccupied builds an endpoint-usage tracker.
func NewOccupied() *Occupied {
	return &Occupied{left: make(map[int]bool), right: make(map[int]bool)}
}

// Take marks both endpoints of (i, j) as used.
func (o *Occupied) Take(i, j int) {
	o.left[i] = true
	o.right[j] = true
}

// Free reports whether both endpoints of (i, j) are unused.
func (o *Occupied) Free(i, j int) bool {
	return !o.left[i] && !o.right[j]
}

// Clone deep-copies the tracker.
func (o *Occupied) Clone() *Occupied {
	c := NewOccupied()
	for k := range o.left {
		c.left[k] = true
	}
	for k := range o.right {
		c.right[k] = true
	}
	return c
}

// finite reports whether a score can participate in selection. NaN
// scores make the sort comparator intransitive (and compare false
// against any threshold), and ±Inf corrupts the selection objective, so
// non-finite candidates are dropped before ordering.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Greedy selects candidates in descending score order, keeping a
// candidate when its score exceeds threshold and both endpoints are
// free (including endpoints consumed by occ, which is mutated). Ties
// break deterministically by (I, J). Candidates with non-finite scores
// are skipped. The returned slice preserves the descending-score pick
// order. This is the ½-approximation greedy of reference [21]; with
// threshold ½ it greedily maximizes Σ(2ŷ−1).
func Greedy(cands []Candidate, threshold float64, occ *Occupied) []Candidate {
	if occ == nil {
		occ = NewOccupied()
	}
	order := make([]int, 0, len(cands))
	for i, c := range cands {
		if finite(c.Score) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		if ca.Score != cb.Score {
			return ca.Score > cb.Score
		}
		if ca.I != cb.I {
			return ca.I < cb.I
		}
		return ca.J < cb.J
	})
	var out []Candidate
	for _, k := range order {
		c := cands[k]
		if c.Score <= threshold {
			break // sorted: everything after is below threshold too
		}
		if !occ.Free(c.I, c.J) {
			continue
		}
		occ.Take(c.I, c.J)
		out = append(out, c)
	}
	return out
}

// TotalGain returns the selection objective Σ (2·score − 1) of a
// selected set, the quantity the ½-approximation bound refers to when
// threshold = ½.
func TotalGain(selected []Candidate) float64 {
	var g float64
	for _, c := range selected {
		g += 2*c.Score - 1
	}
	return g
}
