package matching

import "math"

// Exact solves the same selection problem as Greedy optimally: it
// returns the maximum-weight one-to-one subset of candidates where each
// candidate's weight is (2·score − 1) and only candidates with
// score > threshold participate. Endpoints present in occ are excluded.
//
// The solver compacts the involved endpoints, pads the weight matrix to
// allow leaving any endpoint unmatched (the doubling construction), and
// runs the O(n³) Hungarian algorithm with potentials. Intended for
// ablation studies and tests; use Greedy in the training loop.
func Exact(cands []Candidate, threshold float64, occ *Occupied) []Candidate {
	if occ == nil {
		occ = NewOccupied()
	}
	// Compact eligible candidates and endpoints.
	type edge struct {
		li, rj int // compact endpoint ids
		w      float64
		orig   int
	}
	leftIDs := make(map[int]int)
	rightIDs := make(map[int]int)
	var edges []edge
	for idx, c := range cands {
		if !finite(c.Score) || c.Score <= threshold || !occ.Free(c.I, c.J) {
			continue
		}
		li, ok := leftIDs[c.I]
		if !ok {
			li = len(leftIDs)
			leftIDs[c.I] = li
		}
		rj, ok := rightIDs[c.J]
		if !ok {
			rj = len(rightIDs)
			rightIDs[c.J] = rj
		}
		edges = append(edges, edge{li: li, rj: rj, w: 2*c.Score - 1, orig: idx})
	}
	nl, nr := len(leftIDs), len(rightIDs)
	if len(edges) == 0 {
		return nil
	}
	// Doubling construction: size nl+nr on each side. Real left i may
	// match dummy column nr+i (weight 0 = unmatched); dummy row nl+j may
	// match real column j (weight 0 = right j unmatched); dummy rows and
	// dummy columns match each other at 0.
	n := nl + nr
	// weight matrix, default 0.
	w := make([][]float64, n)
	best := make([][]int, n) // best[i][j] = candidate index or -1
	for i := range w {
		w[i] = make([]float64, n)
		best[i] = make([]int, n)
		for j := range best[i] {
			best[i][j] = -1
		}
	}
	for _, e := range edges {
		if e.w > w[e.li][e.rj] {
			w[e.li][e.rj] = e.w
			best[e.li][e.rj] = e.orig
		}
	}
	match := hungarianMax(w)
	var out []Candidate
	for i := 0; i < nl; i++ {
		j := match[i]
		if j >= 0 && j < nr && best[i][j] >= 0 && w[i][j] > 0 {
			out = append(out, cands[best[i][j]])
		}
	}
	return out
}

// hungarianMax solves the max-weight perfect assignment on a square
// matrix and returns match[row] = column. Implementation: Hungarian
// algorithm with potentials on the negated (min-cost) matrix, the
// standard O(n³) shortest-augmenting-path formulation.
func hungarianMax(w [][]float64) []int {
	n := len(w)
	// cost = -weight; potentials initialized to zero.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (1-based; 0 = none)
	way := make([]int, n+1) // augmenting path back-pointers
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := -w[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			match[p[j]-1] = j - 1
		}
	}
	return match
}
