package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyBasic(t *testing.T) {
	cands := []Candidate{
		{I: 0, J: 0, Score: 0.9, Payload: 0},
		{I: 0, J: 1, Score: 0.8, Payload: 1}, // conflicts with first on I=0
		{I: 1, J: 1, Score: 0.7, Payload: 2}, // conflicts with second on J=1
		{I: 2, J: 2, Score: 0.6, Payload: 3},
		{I: 3, J: 3, Score: 0.4, Payload: 4}, // below threshold
	}
	got := Greedy(cands, 0.5, nil)
	if len(got) != 3 {
		t.Fatalf("selected %d, want 3", len(got))
	}
	wantPayloads := []int{0, 2, 3}
	for k, c := range got {
		if c.Payload != wantPayloads[k] {
			t.Errorf("pick %d payload = %d, want %d", k, c.Payload, wantPayloads[k])
		}
	}
}

func TestGreedyRespectsOccupied(t *testing.T) {
	occ := NewOccupied()
	occ.Take(0, 5) // user 0 (left) and user 5 (right) already anchored
	cands := []Candidate{
		{I: 0, J: 1, Score: 0.9}, // left endpoint occupied
		{I: 1, J: 5, Score: 0.9}, // right endpoint occupied
		{I: 1, J: 1, Score: 0.8},
	}
	got := Greedy(cands, 0.5, occ)
	if len(got) != 1 || got[0].I != 1 || got[0].J != 1 {
		t.Errorf("selection = %+v, want only (1,1)", got)
	}
	if occ.Free(1, 1) {
		t.Error("Greedy should mutate occ with its picks")
	}
}

func TestGreedyThresholdBoundary(t *testing.T) {
	cands := []Candidate{
		{I: 0, J: 0, Score: 0.5},  // exactly at threshold: excluded
		{I: 1, J: 1, Score: 0.51}, // above: included
	}
	got := Greedy(cands, 0.5, nil)
	if len(got) != 1 || got[0].I != 1 {
		t.Errorf("selection = %+v, want only score > 0.5", got)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	cands := []Candidate{
		{I: 2, J: 2, Score: 0.9},
		{I: 1, J: 1, Score: 0.9},
		{I: 1, J: 2, Score: 0.9},
	}
	got := Greedy(cands, 0.5, nil)
	// Ties break by (I,J): (1,1) first, then (1,2) conflicts, then (2,2).
	if len(got) != 2 || got[0].I != 1 || got[0].J != 1 || got[1].I != 2 || got[1].J != 2 {
		t.Errorf("selection = %+v", got)
	}
}

func TestGreedyEmpty(t *testing.T) {
	if got := Greedy(nil, 0.5, nil); len(got) != 0 {
		t.Errorf("empty input selected %d", len(got))
	}
}

// Regression: a NaN score is not ≤ threshold (every comparison with NaN
// is false), so pre-fix Greedy could select NaN-scored candidates and —
// when the intransitive sort floated the NaN to the front — break out of
// the loop before ever seeing valid candidates. Non-finite scores must
// be skipped entirely, by Greedy and Exact alike.
func TestSelectionSkipsNonFiniteScores(t *testing.T) {
	nan := math.NaN()
	if got := Greedy([]Candidate{{I: 0, J: 0, Score: nan}}, 0.5, nil); len(got) != 0 {
		t.Errorf("Greedy selected NaN-scored candidate: %+v", got)
	}
	if got := Exact([]Candidate{{I: 0, J: 0, Score: nan}}, 0.5, nil); len(got) != 0 {
		t.Errorf("Exact selected NaN-scored candidate: %+v", got)
	}
	// Finite candidates must survive NaN and ±Inf neighbours, wherever
	// the intransitive comparator would have placed them.
	cands := []Candidate{
		{I: 0, J: 0, Score: nan, Payload: 0},
		{I: 1, J: 1, Score: 0.9, Payload: 1},
		{I: 2, J: 2, Score: math.Inf(1), Payload: 2},
		{I: 3, J: 3, Score: 0.7, Payload: 3},
		{I: 4, J: 4, Score: math.Inf(-1), Payload: 4},
	}
	for name, sel := range map[string][]Candidate{
		"Greedy": Greedy(cands, 0.5, nil),
		"Exact":  Exact(cands, 0.5, nil),
	} {
		if len(sel) != 2 {
			t.Fatalf("%s selected %d candidates (%+v), want the 2 finite ones", name, len(sel), sel)
		}
		for _, c := range sel {
			if !finite(c.Score) {
				t.Errorf("%s selected non-finite candidate %+v", name, c)
			}
		}
	}
}

// Regression: with a NaN sorted first (intransitivity permitting), the
// sorted-early-break in Greedy must not hide real candidates behind it.
func TestGreedyNaNDoesNotTriggerEarlyBreak(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands := randomCandidates(rng, 2+rng.Intn(20), 1+rng.Intn(8), 1+rng.Intn(8))
		want := TotalGain(Greedy(cands, 0.5, nil))
		// Splice NaNs throughout; the finite selection must be unchanged.
		withNaN := make([]Candidate, 0, 2*len(cands))
		for k, c := range cands {
			withNaN = append(withNaN, Candidate{I: 100 + k, J: 100 + k, Score: math.NaN()})
			withNaN = append(withNaN, c)
		}
		return TotalGain(Greedy(withNaN, 0.5, nil)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOccupiedClone(t *testing.T) {
	occ := NewOccupied()
	occ.Take(1, 2)
	c := occ.Clone()
	c.Take(3, 4)
	if !occ.Free(3, 4) {
		t.Error("Clone should not share state")
	}
	if c.Free(1, 2) {
		t.Error("Clone should copy existing state")
	}
}

func TestExactBasic(t *testing.T) {
	// Greedy picks (0,0)@0.9 blocking two 0.8s; exact prefers the pair.
	cands := []Candidate{
		{I: 0, J: 0, Score: 0.9, Payload: 0},
		{I: 0, J: 1, Score: 0.8, Payload: 1},
		{I: 1, J: 0, Score: 0.8, Payload: 2},
	}
	greedy := Greedy(cands, 0.5, nil)
	exact := Exact(cands, 0.5, nil)
	if len(greedy) != 1 {
		t.Fatalf("greedy selected %d, want 1", len(greedy))
	}
	if len(exact) != 2 {
		t.Fatalf("exact selected %d, want 2", len(exact))
	}
	gGain, eGain := TotalGain(greedy), TotalGain(exact)
	if eGain <= gGain {
		t.Errorf("exact gain %v should exceed greedy gain %v here", eGain, gGain)
	}
}

func TestExactRespectsOccupiedAndThreshold(t *testing.T) {
	occ := NewOccupied()
	occ.Take(0, 9)
	cands := []Candidate{
		{I: 0, J: 1, Score: 0.99}, // blocked by occ
		{I: 1, J: 1, Score: 0.4},  // below threshold
		{I: 2, J: 2, Score: 0.7},
	}
	got := Exact(cands, 0.5, occ)
	if len(got) != 1 || got[0].I != 2 {
		t.Errorf("exact = %+v, want only (2,2)", got)
	}
}

func TestExactEmpty(t *testing.T) {
	if got := Exact(nil, 0.5, nil); got != nil {
		t.Errorf("exact on empty = %+v", got)
	}
}

func TestExactIsOneToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cands := randomCandidates(rng, 40, 10, 10)
	got := Exact(cands, 0.5, nil)
	seenI, seenJ := map[int]bool{}, map[int]bool{}
	for _, c := range got {
		if seenI[c.I] || seenJ[c.J] {
			t.Fatalf("exact selection violates one-to-one: %+v", got)
		}
		seenI[c.I] = true
		seenJ[c.J] = true
		if c.Score <= 0.5 {
			t.Fatalf("exact selected below-threshold candidate %+v", c)
		}
	}
}

// Property: greedy achieves at least half the exact objective (the
// ½-approximation bound of reference [21]), and exact is an upper bound.
func TestGreedyHalfApproximation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands := randomCandidates(rng, 2+rng.Intn(30), 1+rng.Intn(8), 1+rng.Intn(8))
		g := TotalGain(Greedy(cands, 0.5, nil))
		e := TotalGain(Exact(cands, 0.5, nil))
		if e < g-1e-9 {
			return false // exact must dominate greedy
		}
		return g >= e/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: exact solution gain is invariant to candidate order.
func TestExactOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands := randomCandidates(rng, 2+rng.Intn(20), 1+rng.Intn(6), 1+rng.Intn(6))
		e1 := TotalGain(Exact(cands, 0.5, nil))
		shuffled := make([]Candidate, len(cands))
		copy(shuffled, cands)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		e2 := TotalGain(Exact(shuffled, 0.5, nil))
		return math.Abs(e1-e2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func randomCandidates(rng *rand.Rand, n, maxI, maxJ int) []Candidate {
	seen := make(map[[2]int]bool)
	var out []Candidate
	for k := 0; k < n; k++ {
		i, j := rng.Intn(maxI), rng.Intn(maxJ)
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		out = append(out, Candidate{I: i, J: j, Score: rng.Float64(), Payload: k})
	}
	return out
}

func TestHungarianMaxKnown(t *testing.T) {
	// Classic 3x3 assignment.
	w := [][]float64{
		{7, 4, 3},
		{6, 8, 5},
		{9, 4, 4},
	}
	match := hungarianMax(w)
	// Optimal: row0→col1 (4), row1→col2 (5), row2→col0 (9) = 18? Check
	// alternatives: 7+8+4=19, 7+5+4=16, 4+6+4=14, 3+8+9=20 ← best.
	total := 0.0
	for i, j := range match {
		total += w[i][j]
	}
	if total != 20 {
		t.Errorf("assignment total = %v, want 20", total)
	}
}
