// Package partition scales alignment past one monolithic training loop
// by sharding a large AlignedPair's candidate space into K overlapping
// partitions, running the existing counter→extractor→core.Train pipeline
// per partition concurrently on forked counters, and merging the
// per-partition predictions into one globally one-to-one result via the
// score-greedy union-find reconciliation of internal/multinet.
//
// The approach follows "Scalable Heterogeneous Social Network Alignment
// through Synergistic Graph Partition" (Ren, Meng, Zhang): alignment
// quality is dominated by local evidence — a candidate link (i, j) is
// decided by the meta-diagram instances in the neighborhoods of i and j
// — so the candidate space can be cut along neighborhood boundaries and
// each shard aligned independently, as long as a global reconciliation
// restores the one-to-one constraint across shard borders. Partitions
// are seeded two ways at once:
//
//   - training-anchor locality: the labeled anchors are clustered by
//     farthest-point seeding over the follow graph, and every candidate
//     gravitates to the partition whose anchors are closest (BFS hops on
//     both networks), and
//   - coarse IsoRank-style similarity: a few truncated power-iteration
//     rounds of the isorank recurrence (counted on the shared base
//     counter's attribute prior) give every user a soft affinity to each
//     anchor cluster, which places candidates whose graph neighborhoods
//     are uninformative (sparse followers, isolated users).
//
// A candidate whose second-best partition affinity is within
// Config.Overlap of its best joins both shards — the overlap is what
// lets reconciliation undo a bad hard assignment at a shard border.
//
// A Plan is also the stable substrate of a multi-round active-learning
// session: the shard assignment is computed once, and between retrain
// rounds the driver appends the new oracle answers (Plan.AppendLabels —
// routed to every part whose pool contains the link) and re-splits the
// budget (Plan.Rebudget). Parts carry those answers as Prelabeled
// links, which train as fixed queried labels; PreparePart/Prepared
// split the per-shard pipeline so its label-independent half (counting,
// feature extraction) is computed once and only training re-runs as the
// label log grows.
package partition

import (
	"fmt"
	"sort"
	"sync"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/isorank"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/sparse"
)

// Config controls partition planning. The zero value of every field gets
// a usable default; K ≤ 1 plans a single monolithic partition.
type Config struct {
	// K is the number of candidate-space partitions. It is clamped to
	// the training-anchor count (every partition needs at least one
	// labeled positive for PU training to be well-posed).
	K int
	// Overlap ∈ [0,1) assigns a candidate to its runner-up partition too
	// when the runner-up affinity is at least Overlap × the best
	// affinity; default 0.85. Negative disables overlapping entirely.
	Overlap float64
	// LocalityWeight ∈ [0,1] blends BFS anchor-locality against coarse
	// similarity in the candidate affinity; default 0.7.
	LocalityWeight float64
	// CoarseIters caps the truncated IsoRank-style power iteration used
	// for the similarity half of the affinity; default 2 (coarse by
	// design — the fine-grained signal comes from per-partition
	// training, and every extra round costs two crawl-scale SpGEMMs).
	CoarseIters int
}

func (c Config) withDefaults() Config {
	if c.K < 1 {
		c.K = 1
	}
	if c.Overlap == 0 {
		c.Overlap = 0.85
	} else if c.Overlap < 0 {
		c.Overlap = 1.1 // unattainable ratio: no overlap
	}
	if c.LocalityWeight <= 0 || c.LocalityWeight > 1 {
		c.LocalityWeight = 0.7
	}
	if c.CoarseIters <= 0 {
		c.CoarseIters = 2
	}
	return c
}

// Part is one candidate-space shard: the training anchors that seed it,
// the candidate links it decides, and its slice of the query budget.
type Part struct {
	Index      int
	TrainPos   []hetnet.Anchor
	Candidates []hetnet.Anchor
	Budget     int
	// Prelabeled carries oracle labels obtained in earlier rounds of a
	// multi-round session over a stable plan (see Plan.AppendLabels);
	// they train as fixed queried labels. Empty on a fresh plan.
	Prelabeled []LabeledLink
}

// Plan is a complete sharding of one alignment problem.
type Plan struct {
	Parts []Part
	// Overlapped counts candidates assigned to two partitions.
	Overlapped int
	// SimilaritySeeded reports whether the coarse similarity signal was
	// available (pairs without joint attribute evidence fall back to
	// locality-only affinity rather than paying for a dense prior).
	SimilaritySeeded bool
}

// Candidates returns the total candidate assignments across parts
// (overlapping candidates counted once per shard).
func (p *Plan) Candidates() int {
	n := 0
	for _, part := range p.Parts {
		n += len(part.Candidates)
	}
	return n
}

// WithBudget returns a copy of the plan with totalBudget re-split
// across the shards. The shard assignment itself is budget-independent,
// so callers running several methods over one fold plan once and
// re-split per method instead of re-running clustering, BFS fields, and
// the affinity scan. Anchor and candidate slices are shared (read-only)
// with the receiver.
func (p *Plan) WithBudget(totalBudget int) *Plan {
	out := &Plan{
		Parts:            make([]Part, len(p.Parts)),
		Overlapped:       p.Overlapped,
		SimilaritySeeded: p.SimilaritySeeded,
	}
	copy(out.Parts, p.Parts)
	for i := range out.Parts {
		out.Parts[i].Budget = 0
	}
	splitBudget(out.Parts, totalBudget)
	return out
}

// Planner caches the plan inputs that do not depend on the training
// fold: the symmetrized follow graphs of both networks, their
// row-normalized propagation operators, and the truncated coarse
// similarity propagation. One planner shards any number of folds,
// methods, and partition counts over the same pair without re-deriving
// them — the dominant planning cost at crawl scale. Safe for concurrent
// Plan calls.
type Planner struct {
	base       *metadiag.Counter
	adj1, adj2 [][]int32
	w1, w2     *sparse.CSR
	prior      *sparse.CSR // truncated Ψ^a² scores; nil = no attribute evidence

	mu   sync.Mutex
	sims map[int]*sparse.CSR // CoarseIters → propagated similarity
}

// NewPlanner derives the fold-independent plan inputs from the base
// counter. The Ψ^a² prior is counted on the counter's SHARED
// attribute-only layer, so the per-partition pipelines that follow
// reuse the count for free. A pair without joint attribute evidence is
// not an error — such planners seed by locality alone — but a counting
// failure is.
func NewPlanner(base *metadiag.Counter) (*Planner, error) {
	if base == nil {
		return nil, fmt.Errorf("partition: nil base counter")
	}
	pair := base.Pair()
	adj1, w1, err := undirectedNeighbors(pair.G1)
	if err != nil {
		return nil, err
	}
	adj2, w2, err := undirectedNeighbors(pair.G2)
	if err != nil {
		return nil, err
	}
	prox, err := base.Proximity(schema.AttributeDiagram(hetnet.At, hetnet.Checkin))
	if err != nil {
		return nil, fmt.Errorf("partition: coarse similarity prior: %w", err)
	}
	prior := truncatedScores(prox, coarseTopM)
	if prior.NNZ() == 0 {
		prior = nil
	} else if s := prior.Sum(); s > 0 {
		prior = prior.Scale(1 / s)
	}
	return &Planner{
		base: base,
		adj1: adj1, adj2: adj2,
		w1: w1, w2: w2,
		prior: prior,
		sims:  make(map[int]*sparse.CSR),
	}, nil
}

// BuildPlan is the one-shot convenience wrapper: derive the planner
// inputs and shard once. Callers planning repeatedly over the same pair
// (per fold, per method, per K) should hold a Planner instead. A K ≤ 1
// request skips input derivation entirely — the monolithic plan needs
// none of it.
func BuildPlan(base *metadiag.Counter, trainPos, candidates []hetnet.Anchor, totalBudget int, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if base == nil {
		return nil, fmt.Errorf("partition: nil base counter")
	}
	if err := validatePlanInputs(trainPos, totalBudget); err != nil {
		return nil, err
	}
	if cfg.K == 1 || len(trainPos) == 1 {
		return monolithicPlan(trainPos, candidates, totalBudget), nil
	}
	pl, err := NewPlanner(base)
	if err != nil {
		return nil, err
	}
	return pl.Plan(trainPos, candidates, totalBudget, cfg)
}

func validatePlanInputs(trainPos []hetnet.Anchor, totalBudget int) error {
	if len(trainPos) == 0 {
		return fmt.Errorf("partition: no training anchors to seed partitions with")
	}
	if totalBudget < 0 {
		return fmt.Errorf("partition: negative budget %d", totalBudget)
	}
	return nil
}

func monolithicPlan(trainPos, candidates []hetnet.Anchor, totalBudget int) *Plan {
	return &Plan{Parts: []Part{{
		Index: 0, TrainPos: trainPos, Candidates: candidates, Budget: totalBudget,
	}}}
}

// Plan shards the candidate space into cfg.K overlapping partitions and
// splits totalBudget proportionally to shard size. trainPos must be
// non-empty; every partition is guaranteed at least one training
// anchor. Candidate order is preserved within each partition, so a K=1
// plan reproduces the monolithic pipeline exactly.
func (pl *Planner) Plan(trainPos, candidates []hetnet.Anchor, totalBudget int, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if err := validatePlanInputs(trainPos, totalBudget); err != nil {
		return nil, err
	}
	k := cfg.K
	if k > len(trainPos) {
		k = len(trainPos)
	}
	if k == 1 {
		return monolithicPlan(trainPos, candidates, totalBudget), nil
	}

	groups := clusterAnchors(trainPos, pl.adj1, k)
	// clusterAnchors can return fewer groups than requested (duplicate
	// anchor endpoints make farthest-point seeding run out of distinct
	// seeds); every index below must follow the realized count.
	k = len(groups)
	if k == 1 {
		return monolithicPlan(trainPos, candidates, totalBudget), nil
	}

	// Per-partition hop distances on both networks from the group's
	// anchor endpoints.
	d1 := make([][]int, k)
	d2 := make([][]int, k)
	for p, g := range groups {
		var src1, src2 []int
		for _, ai := range g {
			src1 = append(src1, trainPos[ai].I)
			src2 = append(src2, trainPos[ai].J)
		}
		d1[p] = multiSourceBFS(pl.adj1, src1)
		d2[p] = multiSourceBFS(pl.adj2, src2)
	}

	simLeft, simRight, seeded := pl.foldSimilarity(trainPos, groups, cfg.CoarseIters)

	parts := make([]Part, k)
	for p := range parts {
		parts[p].Index = p
		for _, ai := range groups[p] {
			parts[p].TrainPos = append(parts[p].TrainPos, trainPos[ai])
		}
	}

	overlapped := 0
	wLoc := cfg.LocalityWeight
	if !seeded {
		wLoc = 1 // locality is the only signal
	}
	for ci, c := range candidates {
		best, second := -1, -1
		var bestAff, secondAff float64
		for p := 0; p < k; p++ {
			aff := wLoc * (invHop(d1[p], c.I) + invHop(d2[p], c.J)) / 2
			if seeded {
				aff += (1 - wLoc) * (simAt(simLeft, c.I, p, k) + simAt(simRight, c.J, p, k)) / 2
			}
			if best == -1 || aff > bestAff {
				second, secondAff = best, bestAff
				best, bestAff = p, aff
			} else if second == -1 || aff > secondAff {
				second, secondAff = p, aff
			}
		}
		if bestAff == 0 {
			// No signal at all (isolated endpoints, no similarity mass):
			// spread deterministically so coverage is preserved.
			best = ci % k
		}
		parts[best].Candidates = append(parts[best].Candidates, c)
		if second >= 0 && bestAff > 0 && secondAff >= cfg.Overlap*bestAff && secondAff > 0 {
			parts[second].Candidates = append(parts[second].Candidates, c)
			overlapped++
		}
	}

	splitBudget(parts, totalBudget)
	return &Plan{Parts: parts, Overlapped: overlapped, SimilaritySeeded: seeded}, nil
}

// undirectedNeighbors materializes the symmetrized follow adjacency of a
// network twice over: the row-normalized propagation operator shared
// with isorank (so the coarse-similarity seed propagates with identical
// semantics to the IsoRank scorer it mirrors) and neighbor lists for BFS
// derived from the operator's pattern.
func undirectedNeighbors(g *hetnet.Network) ([][]int32, *sparse.CSR, error) {
	norm, err := isorank.NormalizedUndirected(g)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]int32, norm.Rows())
	for i := range out {
		cols, _ := norm.RowSlice(i)
		row := make([]int32, len(cols))
		for k, j := range cols {
			row[k] = int32(j)
		}
		out[i] = row
	}
	return out, norm, nil
}

// multiSourceBFS returns hop distances from the source set; -1 marks
// unreachable users.
func multiSourceBFS(adj [][]int32, sources []int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, len(sources))
	for _, s := range sources {
		if s >= 0 && s < len(dist) && dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return dist
}

// clusterAnchors groups the training anchors into k balanced clusters by
// farthest-point seeding plus capacity-bounded nearest-seed assignment
// over the network-1 follow graph. It returns anchor indices per group;
// every group is non-empty.
func clusterAnchors(trainPos []hetnet.Anchor, adj1 [][]int32, k int) [][]int {
	// Farthest-point seed selection, deterministic from trainPos[0].
	seeds := []int{0}
	for len(seeds) < k {
		var src []int
		for _, s := range seeds {
			src = append(src, trainPos[s].I)
		}
		dist := multiSourceBFS(adj1, src)
		bestIdx, bestDist := -1, -2
		taken := make(map[int]bool, len(seeds))
		for _, s := range seeds {
			taken[s] = true
		}
		for ai := range trainPos {
			if taken[ai] {
				continue
			}
			d := dist[trainPos[ai].I] // -1 (unreachable) sorts above all finite
			score := d
			if d == -1 {
				score = len(adj1) + 1
			}
			if score > bestDist {
				bestIdx, bestDist = ai, score
			}
		}
		if bestIdx == -1 {
			break // fewer distinct anchors than k; clamp below
		}
		seeds = append(seeds, bestIdx)
	}
	k = len(seeds)

	// Distance fields from each seed.
	fields := make([][]int, k)
	for s, ai := range seeds {
		fields[s] = multiSourceBFS(adj1, []int{trainPos[ai].I})
	}
	groups := make([][]int, k)
	capacity := (len(trainPos) + k - 1) / k
	for ai := range trainPos {
		type opt struct {
			seed, d int
		}
		opts := make([]opt, 0, k)
		for s := 0; s < k; s++ {
			d := fields[s][trainPos[ai].I]
			if d == -1 {
				d = len(adj1) + 1
			}
			opts = append(opts, opt{seed: s, d: d})
		}
		// Nearest seed with free capacity; ties break toward the lower
		// seed index (opts are seed-ordered, first win keeps it). If all
		// groups are at capacity — possible through ceil rounding — relax
		// the cap and retry.
		assigned := -1
		for assigned == -1 {
			best := -1
			for oi, o := range opts {
				if len(groups[o.seed]) >= capacity {
					continue
				}
				if best == -1 || o.d < opts[best].d {
					best = oi
				}
			}
			if best >= 0 {
				assigned = opts[best].seed
			} else {
				capacity++
			}
		}
		groups[assigned] = append(groups[assigned], ai)
	}
	// Drop empty groups (possible when k was clamped by reachability).
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// coarseAlpha and coarseTopM bound the similarity seed: the IsoRank
// recurrence weight, and the per-row truncation that keeps every
// propagation product linear in the user count (a planner needs coarse
// mass on anchor groups, not a converged similarity).
const (
	coarseAlpha = 0.6
	coarseTopM  = 16
)

// similarity returns the propagated, truncated coarse similarity for
// the given iteration count, computing it once per planner:
// R ← α·W1·R·W2ᵀ + (1−α)·H with H the truncated Ψ^a² prior, every
// product truncated to coarseTopM entries per row. nil when the pair
// carries no joint attribute evidence.
func (pl *Planner) similarity(iters int) *sparse.CSR {
	if pl.prior == nil {
		return nil
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if r, ok := pl.sims[iters]; ok {
		return r
	}
	r := pl.prior
	for it := 0; it < iters; it++ {
		// Truncate between the two products too: without it the second
		// SpGEMM's output is near-dense (every neighbor of a neighbor),
		// which at crawl scale costs tens of seconds per iteration.
		prop := sparse.MatMulParallel(pl.w1, r).TopKPerRow(coarseTopM)
		prop = sparse.MatMulParallel(prop, pl.w2.T()).TopKPerRow(coarseTopM)
		r = sparse.Add(prop.Scale(coarseAlpha), pl.prior.Scale(1-coarseAlpha)).TopKPerRow(coarseTopM)
		if s := r.Sum(); s > 0 {
			r = r.Scale(1 / s)
		}
	}
	pl.sims[iters] = r
	return r
}

// foldSimilarity folds the propagated similarity mass onto the anchor
// groups: simLeft[u*k+p] accumulates the similarity of network-1 user u
// to partition p's network-2 anchor endpoints (symmetrically for
// simRight). Both are normalized to [0,1] by their global maxima.
// seeded=false when the pair carries no joint attribute evidence — the
// caller then uses locality alone.
func (pl *Planner) foldSimilarity(trainPos []hetnet.Anchor, groups [][]int, iters int) (simLeft, simRight []float64, seeded bool) {
	r := pl.similarity(iters)
	if r == nil {
		return nil, nil, false
	}
	n1 := pl.base.Pair().G1.NodeCount(hetnet.User)
	n2 := pl.base.Pair().G2.NodeCount(hetnet.User)
	k := len(groups)
	groupOfI := make(map[int]int)
	groupOfJ := make(map[int]int)
	for p, g := range groups {
		for _, ai := range g {
			groupOfI[trainPos[ai].I] = p
			groupOfJ[trainPos[ai].J] = p
		}
	}
	simLeft = make([]float64, n1*k)
	simRight = make([]float64, n2*k)
	var maxL, maxR float64
	r.Iterate(func(u, v int, val float64) {
		if p, ok := groupOfJ[v]; ok {
			simLeft[u*k+p] += val
			if simLeft[u*k+p] > maxL {
				maxL = simLeft[u*k+p]
			}
		}
		if p, ok := groupOfI[u]; ok {
			simRight[v*k+p] += val
			if simRight[v*k+p] > maxR {
				maxR = simRight[v*k+p]
			}
		}
	})
	if maxL > 0 {
		for i := range simLeft {
			simLeft[i] /= maxL
		}
	}
	if maxR > 0 {
		for i := range simRight {
			simRight[i] /= maxR
		}
	}
	return simLeft, simRight, true
}

// truncatedScores builds the top-M-per-row proximity score matrix
// straight from the cached count matrix — Proximity.ScoreMatrix would
// materialize every score first, which at crawl scale means pushing
// ~10⁸ entries through a builder only to throw almost all of them away.
func truncatedScores(p *metadiag.Proximity, topM int) *sparse.CSR {
	rows, cols := p.Counts.Dims()
	b := sparse.NewBuilder(rows, cols)
	type entry struct {
		j int
		s float64
	}
	var scratch []entry
	for i := 0; i < rows; i++ {
		colIdx, vals := p.Counts.RowSlice(i)
		scratch = scratch[:0]
		for k, j := range colIdx {
			denom := p.RowSums[i] + p.ColSums[j]
			if denom > 0 {
				scratch = append(scratch, entry{j: j, s: 2 * vals[k] / denom})
			}
		}
		if len(scratch) > topM {
			sort.Slice(scratch, func(a, b int) bool {
				if scratch[a].s != scratch[b].s {
					return scratch[a].s > scratch[b].s
				}
				return scratch[a].j < scratch[b].j
			})
			scratch = scratch[:topM]
		}
		for _, e := range scratch {
			b.Add(i, e.j, e.s)
		}
	}
	return b.Build()
}

// invHop maps a BFS distance to a (0,1] affinity; unreachable → 0.
func invHop(dist []int, u int) float64 {
	if u < 0 || u >= len(dist) || dist[u] < 0 {
		return 0
	}
	return 1 / float64(1+dist[u])
}

// simAt reads the folded similarity of user u to partition p.
func simAt(sim []float64, u, p, k int) float64 {
	idx := u*k + p
	if sim == nil || idx < 0 || idx >= len(sim) {
		return 0
	}
	return sim[idx]
}

// splitBudget distributes the oracle budget proportionally to shard
// candidate counts; the rounding remainder goes to the largest shards
// first (ties by index), one unit each. A shard with no candidates gets
// no budget (there is nothing to query there).
func splitBudget(parts []Part, total int) {
	if total <= 0 {
		return
	}
	sum := 0
	for i := range parts {
		sum += len(parts[i].Candidates)
	}
	if sum == 0 {
		parts[0].Budget = total
		return
	}
	assigned := 0
	order := make([]int, 0, len(parts))
	for i := range parts {
		parts[i].Budget = total * len(parts[i].Candidates) / sum
		assigned += parts[i].Budget
		if len(parts[i].Candidates) > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(parts[order[a]].Candidates) > len(parts[order[b]].Candidates)
	})
	for rem, k := total-assigned, 0; rem > 0; rem, k = rem-1, k+1 {
		parts[order[k%len(order)]].Budget++
	}
}
