package partition

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// Shard is one partition packaged for transport-agnostic execution: the
// (possibly extracted) sub-pair a worker trains on, the Part remapped
// into the sub-pair's index space, and the inverse user maps that
// translate the worker's votes back to original indices.
type Shard struct {
	// Pair is the network pair the shard pipeline runs on. Its anchor
	// set is Part.TrainPos (the only ground truth a worker may see).
	Pair *hetnet.AlignedPair
	// Part carries the shard's training anchors, candidates and budget
	// slice in Pair's index space; Index and Budget are preserved from
	// the source Part, so the per-shard seed offset and query budget
	// match the in-process pipeline exactly.
	Part Part
	// InvUsers1 and InvUsers2 map a Pair user index back to the original
	// pair's index (InvUsers1[sub] = orig). For an unextracted shard
	// they are identity maps.
	InvUsers1, InvUsers2 []int32

	// fwd1/fwd2 are the forward user maps (orig → sub, -1 = dropped);
	// nil means identity (FullShard). They serve RemapLabels — labels
	// accumulate in original indices round over round while the shard
	// stays cached in sub-pair space.
	fwd1, fwd2 []int

	extracted bool
}

// RemapLabels translates labels from original pair indices into the
// shard's sub-pair index space — the per-round companion of the one-time
// pool remap ExtractShard performs. A label whose endpoint extraction
// dropped is an error: session labels come from the shard's own pool, so
// a miss means the caller routed a label to the wrong shard.
func (s *Shard) RemapLabels(labels []LabeledLink) ([]LabeledLink, error) {
	if len(labels) == 0 {
		return nil, nil
	}
	out := make([]LabeledLink, len(labels))
	for k, l := range labels {
		i, j := l.Link.I, l.Link.J
		if s.fwd1 != nil {
			if i < 0 || i >= len(s.fwd1) || s.fwd1[i] < 0 {
				return nil, fmt.Errorf("partition: label endpoint %d not in shard %d's sub-network 1", i, s.Part.Index)
			}
			i = s.fwd1[i]
		}
		if s.fwd2 != nil {
			if j < 0 || j >= len(s.fwd2) || s.fwd2[j] < 0 {
				return nil, fmt.Errorf("partition: label endpoint %d not in shard %d's sub-network 2", j, s.Part.Index)
			}
			j = s.fwd2[j]
		}
		out[k] = LabeledLink{Link: hetnet.Anchor{I: i, J: j}, Label: l.Label}
	}
	return out, nil
}

// Extracted reports whether the shard pair went through neighborhood
// extraction (a FullShard ships the full pair untouched). Extraction
// may still keep every node when the shard's closure covers the whole
// pair — small dense datasets, K=1 plans.
func (s *Shard) Extracted() bool { return s.extracted }

// FullShard packages a part with the full pair and identity maps — the
// no-extraction baseline used to measure what extraction saves, and the
// fallback for schemas the extractor does not understand.
func FullShard(pair *hetnet.AlignedPair, part *Part) *Shard {
	n1 := pair.G1.NodeCount(pair.AnchorType)
	n2 := pair.G2.NodeCount(pair.AnchorType)
	inv1 := make([]int32, n1)
	for i := range inv1 {
		inv1[i] = int32(i)
	}
	inv2 := make([]int32, n2)
	for i := range inv2 {
		inv2[i] = int32(i)
	}
	sub := hetnet.NewAlignedPair(pair.G1, pair.G2)
	sub.AnchorType = pair.AnchorType
	sub.Anchors = append([]hetnet.Anchor(nil), part.TrainPos...)
	return &Shard{Pair: sub, Part: *part, InvUsers1: inv1, InvUsers2: inv2}
	// Part is copied by value: identity index space, so Prelabeled (and
	// everything else) carries over untranslated.
}

// ExtractShard cuts the pair down to the closed neighborhood the part's
// pipeline actually reads, remapping node indices densely (and
// monotonically, so index-based tie-breaks downstream are preserved).
//
// The closure is exact for the meta diagram feature space: every
// proximity feature of a pool link (i, j) is 2·C(i,j)/(rowSum_i +
// colSum_j), so the sub-pair must preserve not only the instances
// connecting pool endpoints but every instance incident to a pool
// endpoint on either side — the marginals range over the whole other
// network. The diagram templates bound that closure and make it
// non-recursive (a BFS on the instance graph to the template depth):
//
//   - follow segments are single hops whose intermediate user is an
//     anchor endpoint, so the only follow edges any instance traverses
//     are those incident to a training anchor — keep exactly them (and
//     their far endpoints);
//   - attribute segments are post→attribute round trips, so instances
//     incident to a pool user involve the pool users' own posts, posts
//     of the other network sharing an attribute value with them, and
//     those posts' writers — keep exactly them, with all attribute
//     edges of kept posts.
//
// Everything else — users far from the shard's anchors, their posts,
// unshared attribute values — is dropped, which is what shrinks bytes
// on the wire and per-worker memory. The extracted features are
// bit-identical to the full-pair pipeline's (counts are small integers,
// so the reordered marginal sums are exact), which the property tests
// assert.
//
// Link types are classified by their declared endpoints (anchor→anchor
// = social, anchor→T = authorship, T→attribute for an authored T). A
// link type outside that shape makes the network opaque to the closure
// argument; ExtractShard then refuses rather than risk silently wrong
// features — callers fall back to FullShard.
func ExtractShard(pair *hetnet.AlignedPair, part *Part) (*Shard, error) {
	ex1, err := newSideExtractor(pair.G1, pair.AnchorType)
	if err != nil {
		return nil, fmt.Errorf("partition: extract %s: %w", pair.G1.Name(), err)
	}
	ex2, err := newSideExtractor(pair.G2, pair.AnchorType)
	if err != nil {
		return nil, fmt.Errorf("partition: extract %s: %w", pair.G2.Name(), err)
	}

	for _, a := range part.TrainPos {
		ex1.markPool(a.I)
		ex2.markPool(a.J)
	}
	for _, c := range part.Candidates {
		ex1.markPool(c.I)
		ex2.markPool(c.J)
	}
	anchors1 := make([]bool, ex1.userCount)
	anchors2 := make([]bool, ex2.userCount)
	for _, a := range part.TrainPos {
		anchors1[a.I] = true
		anchors2[a.J] = true
	}

	ex1.closeSocial(anchors1)
	ex2.closeSocial(anchors2)
	ex1.markPoolContent()
	ex2.markPoolContent()

	// Cross-network attribute sharing: a post of the other side joins
	// the shard when it carries an attribute value (same association
	// relation, same external ID) of a pool post — it hosts instances
	// incident to a pool endpoint.
	ex2.markSharedContent(ex1.poolAttrIDs())
	ex1.markSharedContent(ex2.poolAttrIDs())
	ex1.includeWritersAndAttrs()
	ex2.includeWritersAndAttrs()

	sub1, userMap1, inv1 := ex1.build()
	sub2, userMap2, inv2 := ex2.build()

	remap := func(links []hetnet.Anchor) ([]hetnet.Anchor, error) {
		out := make([]hetnet.Anchor, len(links))
		for k, l := range links {
			i, j := userMap1[l.I], userMap2[l.J]
			if i < 0 || j < 0 {
				return nil, fmt.Errorf("partition: pool link (%d,%d) dropped by extraction", l.I, l.J)
			}
			out[k] = hetnet.Anchor{I: i, J: j}
		}
		return out, nil
	}
	trainPos, err := remap(part.TrainPos)
	if err != nil {
		return nil, err
	}
	cands, err := remap(part.Candidates)
	if err != nil {
		return nil, err
	}

	sub := hetnet.NewAlignedPair(sub1, sub2)
	sub.AnchorType = pair.AnchorType
	for _, a := range trainPos {
		if err := sub.AddAnchor(a.I, a.J); err != nil {
			return nil, fmt.Errorf("partition: remapped anchor: %w", err)
		}
	}
	sh := &Shard{
		Pair: sub,
		Part: Part{
			Index:      part.Index,
			TrainPos:   trainPos,
			Candidates: cands,
			Budget:     part.Budget,
		},
		InvUsers1: inv1,
		InvUsers2: inv2,
		fwd1:      userMap1,
		fwd2:      userMap2,
		extracted: true,
	}
	if len(part.Prelabeled) > 0 {
		pre, err := sh.RemapLabels(part.Prelabeled)
		if err != nil {
			return nil, err
		}
		sh.Part.Prelabeled = pre
	}
	return sh, nil
}

// linkRole classifies a link type for the closure argument.
type linkRole int

const (
	roleSocial    linkRole = iota // anchor → anchor (follow)
	roleAuthor                    // anchor → content (write)
	roleAttribute                 // content → attribute (at/checkin/contains)
)

// sideExtractor accumulates the per-network closure state.
type sideExtractor struct {
	g          *hetnet.Network
	anchorType hetnet.NodeType
	userCount  int

	roles map[hetnet.LinkType]linkRole
	// contentTypes are the node types reachable by authorship links.
	contentTypes map[hetnet.NodeType]bool

	users map[hetnet.NodeType][]bool // per node type: included nodes
	pool  []bool                     // pool users (feature endpoints)
	// poolContent marks content nodes written by pool users, the posts
	// whose attribute values recruit the other side's shared posts.
	poolContent map[hetnet.NodeType][]bool

	// keepSocial[lt] marks kept edge positions of a social link type.
	keepSocial map[hetnet.LinkType][]bool
}

func newSideExtractor(g *hetnet.Network, anchorType hetnet.NodeType) (*sideExtractor, error) {
	ex := &sideExtractor{
		g:            g,
		anchorType:   anchorType,
		userCount:    g.NodeCount(anchorType),
		roles:        make(map[hetnet.LinkType]linkRole),
		contentTypes: make(map[hetnet.NodeType]bool),
		users:        make(map[hetnet.NodeType][]bool),
		poolContent:  make(map[hetnet.NodeType][]bool),
		keepSocial:   make(map[hetnet.LinkType][]bool),
	}
	// Two passes: authorship first so attribute links can recognize
	// their content-typed source.
	for _, lt := range g.LinkTypes() {
		src, dst, _ := g.LinkEndpoints(lt)
		switch {
		case src == anchorType && dst == anchorType:
			ex.roles[lt] = roleSocial
		case src == anchorType:
			ex.roles[lt] = roleAuthor
			ex.contentTypes[dst] = true
		}
	}
	for _, lt := range g.LinkTypes() {
		if _, done := ex.roles[lt]; done {
			continue
		}
		src, dst, _ := g.LinkEndpoints(lt)
		if ex.contentTypes[src] && dst != anchorType && !ex.contentTypes[dst] {
			ex.roles[lt] = roleAttribute
			continue
		}
		return nil, fmt.Errorf("link type %q (%s→%s) does not fit the social/authorship/attribute shape", lt, src, dst)
	}
	for _, t := range g.NodeTypes() {
		ex.users[t] = make([]bool, g.NodeCount(t))
	}
	ex.pool = make([]bool, ex.userCount)
	for t := range ex.contentTypes {
		ex.poolContent[t] = make([]bool, g.NodeCount(t))
	}
	return ex, nil
}

func (ex *sideExtractor) markPool(u int) {
	if u >= 0 && u < ex.userCount {
		ex.pool[u] = true
		ex.users[ex.anchorType][u] = true
	}
}

// closeSocial keeps every social edge incident to a training anchor
// endpoint — the only social edges any diagram instance traverses — and
// includes their far endpoints.
func (ex *sideExtractor) closeSocial(anchors []bool) {
	inc := ex.users[ex.anchorType]
	for lt, role := range ex.roles {
		if role != roleSocial {
			continue
		}
		keep := make([]bool, ex.g.LinkCount(lt))
		k := 0
		ex.g.Links(lt, func(from, to int) {
			if anchors[from] || anchors[to] {
				keep[k] = true
				inc[from] = true
				inc[to] = true
			}
			k++
		})
		ex.keepSocial[lt] = keep
	}
}

// markPoolContent marks the content nodes authored by pool users.
func (ex *sideExtractor) markPoolContent() {
	for lt, role := range ex.roles {
		if role != roleAuthor {
			continue
		}
		_, dst, _ := ex.g.LinkEndpoints(lt)
		marks := ex.poolContent[dst]
		ex.g.Links(lt, func(from, to int) {
			if ex.pool[from] {
				marks[to] = true
				ex.users[dst][to] = true
			}
		})
	}
}

// poolAttrIDs collects, per attribute link type, the external IDs of
// attribute values carried by pool content — the join keys the other
// network matches against.
func (ex *sideExtractor) poolAttrIDs() map[hetnet.LinkType]map[string]bool {
	out := make(map[hetnet.LinkType]map[string]bool)
	for lt, role := range ex.roles {
		if role != roleAttribute {
			continue
		}
		src, dst, _ := ex.g.LinkEndpoints(lt)
		poolSrc := ex.poolContent[src]
		ids := make(map[string]bool)
		ex.g.Links(lt, func(from, to int) {
			if poolSrc[from] {
				ids[ex.g.NodeID(dst, to)] = true
			}
		})
		out[lt] = ids
	}
	return out
}

// markSharedContent includes content nodes that carry an attribute
// value (matching association relation and external ID) of the other
// side's pool content — the posts hosting cross-network attribute
// instances incident to pool endpoints.
func (ex *sideExtractor) markSharedContent(otherPoolIDs map[hetnet.LinkType]map[string]bool) {
	for lt, ids := range otherPoolIDs {
		if len(ids) == 0 {
			continue
		}
		role, ok := ex.roles[lt]
		if !ok || role != roleAttribute {
			continue // relation absent here: no joint instances through it
		}
		src, dst, _ := ex.g.LinkEndpoints(lt)
		marks := ex.users[src]
		ex.g.Links(lt, func(from, to int) {
			if ids[ex.g.NodeID(dst, to)] {
				marks[from] = true
			}
		})
	}
}

// includeWritersAndAttrs closes authorship and attribute incidence over
// the included content: every writer of an included content node joins
// (it is the far endpoint of instances through that node), and every
// attribute value of an included content node joins (attribute edges of
// kept posts are kept whole).
func (ex *sideExtractor) includeWritersAndAttrs() {
	for lt, role := range ex.roles {
		if role != roleAuthor {
			continue
		}
		_, dst, _ := ex.g.LinkEndpoints(lt)
		incContent := ex.users[dst]
		incUser := ex.users[ex.anchorType]
		ex.g.Links(lt, func(from, to int) {
			if incContent[to] {
				incUser[from] = true
			}
		})
	}
	for lt, role := range ex.roles {
		if role != roleAttribute {
			continue
		}
		src, dst, _ := ex.g.LinkEndpoints(lt)
		incSrc := ex.users[src]
		incAttr := ex.users[dst]
		ex.g.Links(lt, func(from, to int) {
			if incSrc[from] {
				incAttr[to] = true
			}
		})
	}
}

// build materializes the sub-network. Node indices are assigned in
// ascending original order per type (monotone remap), so every
// index-based tie-break downstream orders sub and original space
// identically. Returns the user forward map (orig → sub, -1 = dropped)
// and inverse map (sub → orig).
func (ex *sideExtractor) build() (*hetnet.Network, []int, []int32) {
	sub := hetnet.NewNetwork(ex.g.Name())
	for _, lt := range ex.g.LinkTypes() {
		src, dst, _ := ex.g.LinkEndpoints(lt)
		if err := sub.DeclareLink(lt, src, dst); err != nil {
			panic(err) // unreachable: fresh network, consistent declarations
		}
	}
	maps := make(map[hetnet.NodeType][]int)
	for _, t := range ex.g.NodeTypes() {
		inc := ex.users[t]
		m := make([]int, len(inc))
		for i := range m {
			m[i] = -1
		}
		for i, in := range inc {
			if in {
				m[i] = sub.AddNode(t, ex.g.NodeID(t, i))
			}
		}
		maps[t] = m
	}
	for _, lt := range ex.g.LinkTypes() {
		src, dst, _ := ex.g.LinkEndpoints(lt)
		srcMap, dstMap := maps[src], maps[dst]
		role := ex.roles[lt]
		keep := ex.keepSocial[lt]
		k := 0
		ex.g.Links(lt, func(from, to int) {
			kept := false
			switch role {
			case roleSocial:
				kept = keep[k]
			case roleAuthor:
				kept = ex.users[dst][to] // content included ⇒ writer included
			case roleAttribute:
				kept = ex.users[src][from] // content included ⇒ attr included
			}
			k++
			if !kept {
				return
			}
			if err := sub.AddLink(lt, srcMap[from], dstMap[to]); err != nil {
				panic(fmt.Sprintf("partition: extraction closure broken for %s edge (%d,%d): %v", lt, from, to, err))
			}
		})
	}
	userMap := maps[ex.anchorType]
	inv := make([]int32, sub.NodeCount(ex.anchorType))
	for orig, s := range userMap {
		if s >= 0 {
			inv[s] = int32(orig)
		}
	}
	return sub, userMap, inv
}
