package partition

import (
	"sort"

	"github.com/activeiter/activeiter/internal/hetnet"
)

// LabeledLink is one oracle-labeled pool link: the unit of the label
// deltas a stable plan accumulates between active-learning rounds.
type LabeledLink struct {
	Link  hetnet.Anchor
	Label float64
}

// sortLabels orders labels by (I, J) — the canonical delta order, so two
// drivers that observed the same label set ship byte-identical deltas
// regardless of the completion order the labels streamed in.
func sortLabels(labels []LabeledLink) {
	sort.Slice(labels, func(a, b int) bool {
		if labels[a].Link.I != labels[b].Link.I {
			return labels[a].Link.I < labels[b].Link.I
		}
		return labels[a].Link.J < labels[b].Link.J
	})
}

// AppendLabels routes newly obtained oracle labels into the plan: each
// label is appended to the Prelabeled list of every part whose pool
// (TrainPos ∪ Candidates) contains the link, in canonical (I, J) order.
// Labels already present in a part — as a training anchor or from an
// earlier append — are skipped there, so repeated appends of overlapping
// batches stay idempotent. Returns the number of (part, label)
// assignments made.
//
// This is the label-delta computation of a multi-round session: the plan
// stays stable (same shards, same candidate assignment), only the
// Prelabeled suffixes grow, and a delta-shipping coordinator sends each
// worker exactly the suffix its shard has not seen.
func (p *Plan) AppendLabels(labels []LabeledLink) int {
	if len(labels) == 0 {
		return 0
	}
	sorted := append([]LabeledLink(nil), labels...)
	sortLabels(sorted)
	assigned := 0
	for pi := range p.Parts {
		part := &p.Parts[pi]
		seen := make(map[int64]bool, len(part.TrainPos)+len(part.Prelabeled))
		pool := make(map[int64]bool, len(part.TrainPos)+len(part.Candidates))
		for _, a := range part.TrainPos {
			seen[hetnet.Key(a.I, a.J)] = true
			pool[hetnet.Key(a.I, a.J)] = true
		}
		for _, l := range part.Prelabeled {
			seen[hetnet.Key(l.Link.I, l.Link.J)] = true
		}
		for _, c := range part.Candidates {
			pool[hetnet.Key(c.I, c.J)] = true
		}
		for _, l := range sorted {
			key := hetnet.Key(l.Link.I, l.Link.J)
			if !pool[key] || seen[key] {
				continue
			}
			seen[key] = true
			part.Prelabeled = append(part.Prelabeled, l)
			assigned++
		}
	}
	return assigned
}

// Rebudget re-splits a new total query budget across the plan's parts in
// place, proportionally to candidate counts (the same rule planning
// uses). A multi-round driver calls this once per round with the round's
// budget slice; everything else about the plan — shards, candidates,
// accumulated prelabels — stays put.
func (p *Plan) Rebudget(total int) {
	for i := range p.Parts {
		p.Parts[i].Budget = 0
	}
	splitBudget(p.Parts, total)
}

// RoundBudget is the canonical per-round split of a session's total
// query budget: even across rounds, earlier rounds taking the remainder
// (labels bought early inform more retraining). Every driver of a
// multi-round plan — the facade's Options.Rounds path, the experiment
// harness — must use this same split so their runs stay comparable.
func RoundBudget(total, rounds, r int) int {
	if total <= 0 || rounds <= 0 {
		return 0
	}
	b := total / rounds
	if r < total%rounds {
		b++
	}
	return b
}
