package partition

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/linalg"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

// seedStride separates the per-partition training seeds. Partition 0
// keeps the configured seed unchanged, so a single-partition plan is
// bit-identical to the monolithic training loop.
const seedStride = 1_000_003

// TrainOptions configures the per-partition training pipelines.
type TrainOptions struct {
	// Features is the meta diagram feature list every partition extracts.
	Features []schema.Named
	// Core is the training configuration. Core.Budget is the TOTAL query
	// budget — each partition runs with its plan-assigned slice of it —
	// and Core.Seed is the base seed, offset per partition.
	Core core.Config
	// Workers caps concurrent partition pipelines; default
	// min(K, GOMAXPROCS). Callers stacking Align under their own worker
	// pools (one cell per worker, say) should pass 1 to avoid
	// multiplying heavy pipelines.
	Workers int
}

// PartReport is the audit trail of one partition's pipeline.
type PartReport struct {
	Index      int
	TrainPos   int
	Candidates int
	Budget     int
	Queries    int
	Elapsed    time.Duration
}

// Result is a merged partitioned alignment. It satisfies the same
// read-side contract as core's result (Label / WasQueried / predicted
// anchors), so evaluation code treats both uniformly.
type Result struct {
	anchors      []hetnet.Anchor
	labels       map[int64]float64
	scores       map[int64]float64
	queried      map[int64]bool
	queriedLinks map[int64]LabeledLink

	// Rejected counts positive predictions dropped by the global
	// one-to-one reconciliation (cross-partition conflicts).
	Rejected int
	// ShardWeights holds each partition's trained feature weight vector,
	// keyed by Part.Index (layout: the run's feature set followed by the
	// bias term). There is deliberately no single global weight vector —
	// each shard trained its own ridge model on its own pool — so
	// snapshot/serving consumers persist all of them and pick per query.
	// For a multi-round session result these are the FINAL round's
	// models.
	ShardWeights map[int][]float64
	// Reports holds one entry per partition, in partition order — and,
	// for a result returned by a multi-round session driver, one entry
	// per partition per round, so QueryCount spans the whole session.
	Reports []PartReport
	// Elapsed is the wall time of Align: fork, extract, train, merge
	// (planning time is the caller's, via BuildPlan).
	Elapsed time.Duration
}

// PredictedAnchors returns the merged positive links, sorted by (I, J).
func (r *Result) PredictedAnchors() []hetnet.Anchor {
	out := make([]hetnet.Anchor, len(r.anchors))
	copy(out, r.anchors)
	return out
}

// Label returns the final label of link (i, j) and whether the link was
// part of any partition's candidate pool.
func (r *Result) Label(i, j int) (float64, bool) {
	v, ok := r.labels[hetnet.Key(i, j)]
	return v, ok
}

// Score returns the best per-partition raw score of link (i, j).
func (r *Result) Score(i, j int) (float64, bool) {
	v, ok := r.scores[hetnet.Key(i, j)]
	return v, ok
}

// WasQueried reports whether any partition labeled (i, j) by the oracle.
func (r *Result) WasQueried(i, j int) bool {
	return r.queried[hetnet.Key(i, j)]
}

// QueriedLabels returns every oracle-labeled pool link with its answer,
// in canonical (I, J) order — including prelabels carried in from
// earlier rounds. A multi-round driver feeds these back into the stable
// plan (Plan.AppendLabels) so the next round trains on them as fixed
// labels; AppendLabels dedups, so re-feeding old labels is harmless.
func (r *Result) QueriedLabels() []LabeledLink {
	out := make([]LabeledLink, 0, len(r.queriedLinks))
	for _, l := range r.queriedLinks {
		out = append(out, l)
	}
	sortLabels(out)
	return out
}

// Entry is one pool link's merged read-side record — the unit a
// snapshot of a partitioned alignment persists.
type Entry struct {
	Link hetnet.Anchor
	// Label is the merged final label (1 for reconciled positives).
	Label float64
	// Score is the best per-partition raw score; HasScore is false for
	// links every partition scored NaN.
	Score    float64
	HasScore bool
	// Queried reports an oracle-labeled link (including prelabels of
	// earlier session rounds).
	Queried bool
}

// Entries returns every pool link's merged record in canonical (I, J)
// order — the full read side of the result, for persistence.
func (r *Result) Entries() []Entry {
	out := make([]Entry, 0, len(r.labels))
	for key, label := range r.labels {
		i, j := hetnet.UnpackKey(key)
		e := Entry{Link: hetnet.Anchor{I: i, J: j}, Label: label, Queried: r.queried[key]}
		e.Score, e.HasScore = r.scores[key]
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Link.I != out[b].Link.I {
			return out[a].Link.I < out[b].Link.I
		}
		return out[a].Link.J < out[b].Link.J
	})
	return out
}

// QueryCount returns the total oracle queries spent across partitions.
func (r *Result) QueryCount() int {
	n := 0
	for _, rep := range r.Reports {
		n += rep.Queries
	}
	return n
}

// lockedOracle serializes oracle access across partition pipelines —
// the Oracle contract does not require thread safety (CountingOracle,
// for one, keeps a counter).
type lockedOracle struct {
	mu    sync.Mutex
	inner active.Oracle
}

func (o *lockedOracle) Label(a hetnet.Anchor) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.Label(a)
}

// partOutput is one partition pipeline's raw result.
type partOutput struct {
	part  *Part
	links []hetnet.Anchor
	res   *core.Result
}

// Align runs the counter→extractor→core.Train pipeline for every
// partition of the plan concurrently — each on a Fork of base, so the
// attribute-only count layer is shared while anchor-dependent counts
// stay partition-local — and merges the per-partition predictions into
// one globally one-to-one result via score-greedy union-find
// reconciliation. The oracle may be nil when the total budget is zero.
// Oracle calls are serialized but arrive in nondeterministic order
// across partitions; every oracle in this module answers as a pure
// function of the link (TruthOracle, hash-seeded NoisyOracle), which
// keeps multi-partition runs reproducible — an oracle whose answers
// depend on CALL ORDER would not be.
func Align(base *metadiag.Counter, plan *Plan, opts TrainOptions, oracle active.Oracle) (*Result, error) {
	if base == nil {
		return nil, fmt.Errorf("partition: nil base counter")
	}
	if plan == nil || len(plan.Parts) == 0 {
		return nil, fmt.Errorf("partition: empty plan")
	}
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan.Parts) {
		workers = len(plan.Parts)
	}
	if oracle != nil && len(plan.Parts) > 1 {
		oracle = &lockedOracle{inner: oracle}
	}

	outs := make([]partOutput, len(plan.Parts))
	errs := make([]error, len(plan.Parts))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for p := range plan.Parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[p], errs[p] = runPart(base, &plan.Parts[p], opts, oracle)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", p, err)
		}
	}
	res := merge(outs)
	res.Elapsed = time.Since(start)
	return res, nil
}

// runPart executes one partition's pipeline on a fresh fork of base.
func runPart(base *metadiag.Counter, part *Part, opts TrainOptions, oracle active.Oracle) (partOutput, error) {
	t0 := time.Now()
	counter := base.Fork()
	counter.SetAnchors(part.TrainPos)
	links, res, err := TrainPart(counter, part, opts, oracle)
	if err != nil {
		return partOutput{}, err
	}
	out := partOutput{part: part, links: links, res: res}
	out.res.Elapsed = time.Since(t0) // include fork+extract, the real per-partition cost
	return out, nil
}

// TrainPart runs one shard's counter→extractor→training pipeline on a
// counter whose anchors are already restricted to part.TrainPos. The
// body deliberately mirrors the monolithic Aligner.Align: recompute
// features, assemble the deduplicated pool (TrainPos first, then
// candidates in order), and train on the part's budget slice with the
// part-offset seed. It is shared by the in-process path (on a Fork of
// the base counter) and the distributed worker (on a fresh counter over
// the shard's extracted sub-pair) — any divergence between the two
// pipelines would break their property-tested equality.
func TrainPart(counter *metadiag.Counter, part *Part, opts TrainOptions, oracle active.Oracle) ([]hetnet.Anchor, *core.Result, error) {
	prep, err := PreparePart(counter, part, opts.Features)
	if err != nil {
		return nil, nil, err
	}
	res, err := prep.Train(part, opts.Core, oracle)
	if err != nil {
		return nil, nil, err
	}
	return prep.Links, res, nil
}

// Prepared is the label-independent half of a shard pipeline: the
// recomputed features and the assembled pool. Labels — the budget slice,
// the seed, the prelabeled answers of earlier rounds — only enter at
// Train time, so a session worker that keeps a shard's Prepared warm
// across rounds pays counting and feature extraction once and re-runs
// only the training loop as labels accumulate.
type Prepared struct {
	// Links is the deduplicated pool: TrainPos first, then candidates in
	// order (the contract every vote/label index downstream relies on).
	Links []hetnet.Anchor

	x        *linalg.Dense
	poolIdx  map[int64]int
	trainPos int
}

// PreparePart runs the counting and feature-extraction half of TrainPart
// and returns the reusable Prepared state. The counter's anchors must
// already be restricted to part.TrainPos.
func PreparePart(counter *metadiag.Counter, part *Part, features []schema.Named) (*Prepared, error) {
	ext := metadiag.NewExtractor(counter, features, true)
	if err := ext.Recompute(); err != nil {
		return nil, err
	}
	links := make([]hetnet.Anchor, 0, len(part.TrainPos)+len(part.Candidates))
	links = append(links, part.TrainPos...)
	seen := make(map[int64]int, len(links))
	for i, l := range part.TrainPos {
		seen[hetnet.Key(l.I, l.J)] = i
	}
	for _, l := range part.Candidates {
		if _, ok := seen[hetnet.Key(l.I, l.J)]; !ok {
			seen[hetnet.Key(l.I, l.J)] = len(links)
			links = append(links, l)
		}
	}
	x, err := ext.FeatureMatrix(links)
	if err != nil {
		return nil, err
	}
	return &Prepared{Links: links, x: x, poolIdx: seen, trainPos: len(part.TrainPos)}, nil
}

// Train runs the training half on the prepared pool: the part supplies
// this round's budget slice and accumulated prelabels, cfg the shared
// training configuration (cfg.Seed is the base seed, offset by the
// part's index here). Train may be called repeatedly on one Prepared —
// nothing in it is mutated.
func (pp *Prepared) Train(part *Part, cfg core.Config, oracle active.Oracle) (*core.Result, error) {
	cfg.Budget = part.Budget
	cfg.Seed += int64(part.Index) * seedStride
	if cfg.Budget == 0 {
		cfg.Strategy = nil
	}
	labeled := make([]int, pp.trainPos)
	for i := range labeled {
		labeled[i] = i
	}
	var preIdx []int
	var preY []float64
	for _, l := range part.Prelabeled {
		idx, ok := pp.poolIdx[hetnet.Key(l.Link.I, l.Link.J)]
		if !ok {
			return nil, fmt.Errorf("partition: prelabeled link (%d,%d) not in part %d's pool", l.Link.I, l.Link.J, part.Index)
		}
		preIdx = append(preIdx, idx)
		preY = append(preY, l.Label)
	}
	return core.Train(core.Problem{
		Links:       pp.Links,
		X:           pp.x,
		LabeledPos:  labeled,
		Prelabeled:  preIdx,
		PrelabeledY: preY,
		Oracle:      oracle,
	}, cfg)
}

// merge reconciles the per-partition predictions into one globally
// one-to-one label assignment by streaming every pool link's vote
// through a Merger (see merger.go for the precedence rules).
func merge(outs []partOutput) *Result {
	m := NewMerger()
	var reports []PartReport
	weights := make(map[int][]float64, len(outs))
	for _, out := range outs {
		reports = append(reports, PartReport{
			Index:      out.part.Index,
			TrainPos:   len(out.part.TrainPos),
			Candidates: len(out.part.Candidates),
			Budget:     out.part.Budget,
			Queries:    out.res.QueryCount(),
			Elapsed:    out.res.Elapsed,
		})
		weights[out.part.Index] = append([]float64(nil), out.res.W...)
		for _, v := range PartVotes(out.part, out.links, out.res) {
			m.Add(v)
		}
	}
	res := m.Finish()
	res.Reports = reports
	res.ShardWeights = weights
	return res
}

// PartVotes extracts one shard pipeline's votes from its training
// result: one vote per pool link, in pool order. The distributed worker
// streams exactly these votes (translated to original indices) back to
// the coordinator, so the in-process and remote merge inputs coincide.
func PartVotes(part *Part, links []hetnet.Anchor, res *core.Result) []Vote {
	votes := make([]Vote, len(links))
	for idx, l := range links {
		votes[idx] = Vote{
			Link:    l,
			Label:   res.Y[idx],
			Score:   res.Scores[idx],
			Queried: res.WasQueried(l.I, l.J),
			Fixed:   idx < len(part.TrainPos),
		}
	}
	return votes
}
