package partition

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/multinet"
	"github.com/activeiter/activeiter/internal/schema"
)

// seedStride separates the per-partition training seeds. Partition 0
// keeps the configured seed unchanged, so a single-partition plan is
// bit-identical to the monolithic training loop.
const seedStride = 1_000_003

// TrainOptions configures the per-partition training pipelines.
type TrainOptions struct {
	// Features is the meta diagram feature list every partition extracts.
	Features []schema.Named
	// Core is the training configuration. Core.Budget is the TOTAL query
	// budget — each partition runs with its plan-assigned slice of it —
	// and Core.Seed is the base seed, offset per partition.
	Core core.Config
	// Workers caps concurrent partition pipelines; default
	// min(K, GOMAXPROCS). Callers stacking Align under their own worker
	// pools (one cell per worker, say) should pass 1 to avoid
	// multiplying heavy pipelines.
	Workers int
}

// PartReport is the audit trail of one partition's pipeline.
type PartReport struct {
	Index      int
	TrainPos   int
	Candidates int
	Budget     int
	Queries    int
	Elapsed    time.Duration
}

// Result is a merged partitioned alignment. It satisfies the same
// read-side contract as core's result (Label / WasQueried / predicted
// anchors), so evaluation code treats both uniformly.
type Result struct {
	anchors []hetnet.Anchor
	labels  map[int64]float64
	scores  map[int64]float64
	queried map[int64]bool

	// Rejected counts positive predictions dropped by the global
	// one-to-one reconciliation (cross-partition conflicts).
	Rejected int
	// Reports holds one entry per partition, in partition order.
	Reports []PartReport
	// Elapsed is the wall time of Align: fork, extract, train, merge
	// (planning time is the caller's, via BuildPlan).
	Elapsed time.Duration
}

// PredictedAnchors returns the merged positive links, sorted by (I, J).
func (r *Result) PredictedAnchors() []hetnet.Anchor {
	out := make([]hetnet.Anchor, len(r.anchors))
	copy(out, r.anchors)
	return out
}

// Label returns the final label of link (i, j) and whether the link was
// part of any partition's candidate pool.
func (r *Result) Label(i, j int) (float64, bool) {
	v, ok := r.labels[hetnet.Key(i, j)]
	return v, ok
}

// Score returns the best per-partition raw score of link (i, j).
func (r *Result) Score(i, j int) (float64, bool) {
	v, ok := r.scores[hetnet.Key(i, j)]
	return v, ok
}

// WasQueried reports whether any partition labeled (i, j) by the oracle.
func (r *Result) WasQueried(i, j int) bool {
	return r.queried[hetnet.Key(i, j)]
}

// QueryCount returns the total oracle queries spent across partitions.
func (r *Result) QueryCount() int {
	n := 0
	for _, rep := range r.Reports {
		n += rep.Queries
	}
	return n
}

// lockedOracle serializes oracle access across partition pipelines —
// the Oracle contract does not require thread safety (CountingOracle,
// for one, keeps a counter).
type lockedOracle struct {
	mu    sync.Mutex
	inner active.Oracle
}

func (o *lockedOracle) Label(a hetnet.Anchor) float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.Label(a)
}

// partOutput is one partition pipeline's raw result.
type partOutput struct {
	part  *Part
	links []hetnet.Anchor
	res   *core.Result
}

// Align runs the counter→extractor→core.Train pipeline for every
// partition of the plan concurrently — each on a Fork of base, so the
// attribute-only count layer is shared while anchor-dependent counts
// stay partition-local — and merges the per-partition predictions into
// one globally one-to-one result via score-greedy union-find
// reconciliation. The oracle may be nil when the total budget is zero.
// Oracle calls are serialized but arrive in nondeterministic order
// across partitions; every oracle in this module answers as a pure
// function of the link (TruthOracle, hash-seeded NoisyOracle), which
// keeps multi-partition runs reproducible — an oracle whose answers
// depend on CALL ORDER would not be.
func Align(base *metadiag.Counter, plan *Plan, opts TrainOptions, oracle active.Oracle) (*Result, error) {
	if base == nil {
		return nil, fmt.Errorf("partition: nil base counter")
	}
	if plan == nil || len(plan.Parts) == 0 {
		return nil, fmt.Errorf("partition: empty plan")
	}
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan.Parts) {
		workers = len(plan.Parts)
	}
	if oracle != nil && len(plan.Parts) > 1 {
		oracle = &lockedOracle{inner: oracle}
	}

	outs := make([]partOutput, len(plan.Parts))
	errs := make([]error, len(plan.Parts))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for p := range plan.Parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[p], errs[p] = runPart(base, &plan.Parts[p], opts, oracle)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", p, err)
		}
	}
	res := merge(outs)
	res.Elapsed = time.Since(start)
	return res, nil
}

// runPart executes one partition's pipeline on a fresh fork of base.
// The body deliberately mirrors the monolithic Aligner.Align: restrict
// the counter to the partition's training anchors, recompute features,
// assemble the deduplicated pool, and train.
func runPart(base *metadiag.Counter, part *Part, opts TrainOptions, oracle active.Oracle) (partOutput, error) {
	t0 := time.Now()
	counter := base.Fork()
	counter.SetAnchors(part.TrainPos)
	ext := metadiag.NewExtractor(counter, opts.Features, true)
	if err := ext.Recompute(); err != nil {
		return partOutput{}, err
	}
	links := make([]hetnet.Anchor, 0, len(part.TrainPos)+len(part.Candidates))
	links = append(links, part.TrainPos...)
	seen := make(map[int64]bool, len(links))
	for _, l := range part.TrainPos {
		seen[hetnet.Key(l.I, l.J)] = true
	}
	for _, l := range part.Candidates {
		if !seen[hetnet.Key(l.I, l.J)] {
			seen[hetnet.Key(l.I, l.J)] = true
			links = append(links, l)
		}
	}
	x, err := ext.FeatureMatrix(links)
	if err != nil {
		return partOutput{}, err
	}
	labeled := make([]int, len(part.TrainPos))
	for i := range labeled {
		labeled[i] = i
	}
	cfg := opts.Core
	cfg.Budget = part.Budget
	cfg.Seed += int64(part.Index) * seedStride
	if cfg.Budget == 0 {
		cfg.Strategy = nil
	}
	res, err := core.Train(core.Problem{
		Links:      links,
		X:          x,
		LabeledPos: labeled,
		Oracle:     oracle,
	}, cfg)
	if err != nil {
		return partOutput{}, err
	}
	out := partOutput{part: part, links: links, res: res}
	out.res.Elapsed = time.Since(t0) // include fork+extract, the real per-partition cost
	return out, nil
}

// linkVote is one partition's verdict on one pool link, the unit the
// merge decision works on.
type linkVote struct {
	link    hetnet.Anchor
	label   float64
	score   float64
	queried bool // oracle-labeled in that partition
	fixed   bool // training anchor (ground-truth positive)
}

// merge reconciles the per-partition predictions into one globally
// one-to-one label assignment via mergeVotes.
func merge(outs []partOutput) *Result {
	res := &Result{}
	var votes []linkVote
	for _, out := range outs {
		res.Reports = append(res.Reports, PartReport{
			Index:      out.part.Index,
			TrainPos:   len(out.part.TrainPos),
			Candidates: len(out.part.Candidates),
			Budget:     out.part.Budget,
			Queries:    out.res.QueryCount(),
			Elapsed:    out.res.Elapsed,
		})
		for idx, l := range out.links {
			votes = append(votes, linkVote{
				link:    l,
				label:   out.res.Y[idx],
				score:   out.res.Scores[idx],
				queried: out.res.WasQueried(l.I, l.J),
				fixed:   idx < len(out.part.TrainPos),
			})
		}
	}
	res.labels, res.scores, res.queried, res.anchors, res.Rejected = mergeVotes(votes)
	return res
}

// mergeVotes folds per-partition votes into one globally one-to-one
// label assignment. Ground truth outranks inference in both directions:
// training anchors and queried positives enter the union-find at +Inf
// score so they always win, while a link the oracle answered NEGATIVE
// in any partition never enters at all — an overlapping partition that
// merely inferred it positive must not overrule a paid-for oracle
// answer. Remaining inferred positives compete at their best
// per-partition raw score; conflicting inferred links across partition
// borders lose to the higher-scored side and are counted in rejected.
func mergeVotes(votes []linkVote) (labels, scores map[int64]float64, queried map[int64]bool, anchors []hetnet.Anchor, rejected int) {
	labels = make(map[int64]float64)
	scores = make(map[int64]float64)
	queried = make(map[int64]bool)
	queriedNeg := make(map[int64]bool)
	for _, v := range votes {
		key := hetnet.Key(v.link.I, v.link.J)
		if _, ok := labels[key]; !ok {
			labels[key] = 0
		}
		if !math.IsNaN(v.score) {
			if old, ok := scores[key]; !ok || v.score > old {
				scores[key] = v.score
			}
		}
		if v.queried {
			queried[key] = true
			if v.label == 0 {
				queriedNeg[key] = true
			}
		}
	}
	posScore := make(map[int64]float64)
	posLink := make(map[int64]hetnet.Anchor)
	for _, v := range votes {
		if v.label != 1 {
			continue
		}
		key := hetnet.Key(v.link.I, v.link.J)
		score := v.score
		if v.fixed || (v.queried && v.label == 1) {
			score = math.Inf(1)
		} else if queriedNeg[key] {
			continue // the oracle said no somewhere: inference is overruled
		}
		if old, ok := posScore[key]; !ok || score > old {
			posScore[key] = score
			posLink[key] = v.link
		}
	}
	scored := make([]multinet.ScoredLink, 0, len(posScore))
	for key, s := range posScore {
		scored = append(scored, multinet.ScoredLink{NetI: 0, NetJ: 1, A: posLink[key], Score: s})
	}
	clusters, rejected := multinet.Reconcile(scored)
	anchors = multinet.PairLinks(clusters, 0, 1)
	for _, a := range anchors {
		labels[hetnet.Key(a.I, a.J)] = 1
	}
	return labels, scores, queried, anchors, rejected
}
