package partition

import (
	"testing"

	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
)

// TestAppendLabelsRoutesDedupsAndSorts: a label lands in every part
// whose pool contains it, in canonical order, exactly once — training
// anchors and already-appended labels are skipped, and re-appending a
// batch is a no-op.
func TestAppendLabelsRoutesDedupsAndSorts(t *testing.T) {
	plan := &Plan{Parts: []Part{
		{
			Index:      0,
			TrainPos:   []hetnet.Anchor{{I: 0, J: 0}},
			Candidates: []hetnet.Anchor{{I: 5, J: 5}, {I: 3, J: 4}, {I: 9, J: 9}},
		},
		{
			Index:      1,
			TrainPos:   []hetnet.Anchor{{I: 1, J: 1}},
			Candidates: []hetnet.Anchor{{I: 9, J: 9}, {I: 7, J: 7}},
		},
	}}
	labels := []LabeledLink{
		{Link: hetnet.Anchor{I: 9, J: 9}, Label: 1},   // both pools
		{Link: hetnet.Anchor{I: 3, J: 4}, Label: 0},   // part 0 only
		{Link: hetnet.Anchor{I: 1, J: 1}, Label: 1},   // part 1's anchor: skipped there
		{Link: hetnet.Anchor{I: 42, J: 42}, Label: 1}, // nobody's pool
	}
	if got := plan.AppendLabels(labels); got != 3 {
		t.Fatalf("assigned %d labels, want 3", got)
	}
	p0 := plan.Parts[0].Prelabeled
	if len(p0) != 2 || p0[0].Link != (hetnet.Anchor{I: 3, J: 4}) || p0[1].Link != (hetnet.Anchor{I: 9, J: 9}) {
		t.Fatalf("part 0 prelabels wrong (want canonical order): %+v", p0)
	}
	p1 := plan.Parts[1].Prelabeled
	if len(p1) != 1 || p1[0].Link != (hetnet.Anchor{I: 9, J: 9}) {
		t.Fatalf("part 1 prelabels wrong: %+v", p1)
	}
	// Idempotence: the same batch again assigns nothing.
	if got := plan.AppendLabels(labels); got != 0 {
		t.Fatalf("re-append assigned %d labels, want 0", got)
	}
	// A later batch appends AFTER the earlier one — the suffix a
	// delta-shipping coordinator relies on.
	more := []LabeledLink{{Link: hetnet.Anchor{I: 5, J: 5}, Label: 0}}
	if got := plan.AppendLabels(more); got != 1 {
		t.Fatalf("second batch assigned %d, want 1", got)
	}
	p0 = plan.Parts[0].Prelabeled
	if len(p0) != 3 || p0[2].Link != (hetnet.Anchor{I: 5, J: 5}) {
		t.Fatalf("second batch did not append as a suffix: %+v", p0)
	}
}

// TestRebudgetResplits: Rebudget reassigns a new total proportionally in
// place without touching anything else.
func TestRebudgetResplits(t *testing.T) {
	plan := &Plan{Parts: []Part{
		{Index: 0, Candidates: make([]hetnet.Anchor, 30), Budget: 99},
		{Index: 1, Candidates: make([]hetnet.Anchor, 10), Budget: 99},
	}}
	plan.Rebudget(8)
	if plan.Parts[0].Budget+plan.Parts[1].Budget != 8 {
		t.Fatalf("budgets sum to %d, want 8", plan.Parts[0].Budget+plan.Parts[1].Budget)
	}
	if plan.Parts[0].Budget <= plan.Parts[1].Budget {
		t.Errorf("larger shard got budget %d ≤ smaller's %d", plan.Parts[0].Budget, plan.Parts[1].Budget)
	}
	plan.Rebudget(0)
	if plan.Parts[0].Budget != 0 || plan.Parts[1].Budget != 0 {
		t.Errorf("zero rebudget left budgets %d/%d", plan.Parts[0].Budget, plan.Parts[1].Budget)
	}
}

// TestShardRemapLabels: identity on full shards, forward-mapped on
// extracted ones, and an error for endpoints extraction dropped.
func TestShardRemapLabels(t *testing.T) {
	pair, trainPos, candidates := fixture(t)
	part := &Part{Index: 0, TrainPos: trainPos, Candidates: candidates[:4]}

	full := FullShard(pair, part)
	in := []LabeledLink{{Link: candidates[0], Label: 1}}
	out, err := full.RemapLabels(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != in[0] {
		t.Fatalf("full shard remap is not identity: %+v", out[0])
	}

	ex, err := ExtractShard(pair, part)
	if err != nil {
		t.Fatal(err)
	}
	out, err = ex.RemapLabels(in)
	if err != nil {
		t.Fatal(err)
	}
	// The remapped label must point at the same user IDs in the
	// sub-networks.
	if ex.InvUsers1[out[0].Link.I] != int32(in[0].Link.I) || ex.InvUsers2[out[0].Link.J] != int32(in[0].Link.J) {
		t.Fatalf("remapped label (%d,%d) does not invert to (%d,%d)",
			out[0].Link.I, out[0].Link.J, in[0].Link.I, in[0].Link.J)
	}
	if len(ex.InvUsers1) < pair.G1.NodeCount(hetnet.User) {
		// Extraction dropped some users; a label on a dropped endpoint
		// must refuse rather than mistranslate.
		dropped := -1
		seen := make(map[int32]bool)
		for _, o := range ex.InvUsers1 {
			seen[o] = true
		}
		for u := 0; u < pair.G1.NodeCount(hetnet.User); u++ {
			if !seen[int32(u)] {
				dropped = u
				break
			}
		}
		if dropped >= 0 {
			if _, err := ex.RemapLabels([]LabeledLink{{Link: hetnet.Anchor{I: dropped, J: in[0].Link.J}}}); err == nil {
				t.Error("label on an extraction-dropped endpoint remapped without error")
			}
		}
	}
}

// TestTrainPartPrelabeled: prelabels train as fixed queried labels — the
// result reports them queried without spending budget — and a prelabel
// outside the pool is an error, not a silent drop.
func TestTrainPartPrelabeled(t *testing.T) {
	pair, trainPos, candidates := fixture(t)
	base := newBase(t, pair)
	counter := base.Fork()
	counter.SetAnchors(trainPos)

	pre := LabeledLink{Link: candidates[0], Label: 1}
	part := &Part{
		Index: 0, TrainPos: trainPos, Candidates: candidates,
		Prelabeled: []LabeledLink{pre},
	}
	links, res, err := TrainPart(counter, part, TrainOptions{
		Features: schema.StandardLibrary().All(),
		Core:     core.Config{Seed: 7},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WasQueried(pre.Link.I, pre.Link.J) {
		t.Error("prelabel not reported as queried")
	}
	if res.QueryCount() != 0 {
		t.Errorf("prelabels consumed %d budget queries", res.QueryCount())
	}
	if lab, ok := res.LabelOf(pre.Link.I, pre.Link.J); !ok || lab != 1 {
		t.Errorf("prelabel label = %v/%v, want fixed 1", lab, ok)
	}
	votes := PartVotes(part, links, res)
	found := false
	for _, v := range votes {
		if v.Link == pre.Link {
			found = true
			if !v.Queried || v.Label != 1 {
				t.Errorf("prelabel vote = %+v, want queried positive", v)
			}
		}
	}
	if !found {
		t.Error("prelabel missing from the vote stream")
	}

	bad := &Part{
		Index: 0, TrainPos: trainPos, Candidates: candidates,
		Prelabeled: []LabeledLink{{Link: hetnet.Anchor{I: 10_000, J: 10_000}, Label: 1}},
	}
	if _, _, err := TrainPart(counter, bad, TrainOptions{
		Features: schema.StandardLibrary().All(),
		Core:     core.Config{Seed: 7},
	}, nil); err == nil {
		t.Error("prelabel outside the pool accepted")
	}
}
