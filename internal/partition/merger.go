package partition

import (
	"math"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/multinet"
)

// Vote is one shard pipeline's verdict on one pool link — the unit the
// global merge decision works on. Votes carry original (pre-extraction)
// user indices; a shard that trained on an extracted sub-network
// translates back before voting.
type Vote struct {
	Link    hetnet.Anchor
	Label   float64
	Score   float64
	Queried bool // oracle-labeled in that shard
	Fixed   bool // training anchor (ground-truth positive)
}

// Merger folds per-shard votes into one globally one-to-one label
// assignment, incrementally: Add updates order-independent state (best
// score per link, queried/fixed flags, oracle-negative overrules) as
// votes stream in — from in-process pipelines or from remote workers —
// and Finish resolves the accumulated positives through multinet's
// score-greedy union-find. The outcome is identical for any Add order
// of the same vote multiset.
//
// Ground truth outranks inference in both directions: training anchors
// and queried positives enter the reconciliation at +Inf score so they
// always win, while a link the oracle answered NEGATIVE in any shard
// never enters at all — an overlapping shard that merely inferred it
// positive must not overrule a paid-for oracle answer. Remaining
// inferred positives compete at their best per-shard raw score;
// conflicting inferred links across shard borders lose to the
// higher-scored side and are counted in Result.Rejected.
//
// A Merger is single-use and not safe for concurrent use; serialize
// Add calls externally.
type Merger struct {
	labels      map[int64]float64
	scores      map[int64]float64
	queried     map[int64]bool
	queriedNeg  map[int64]bool
	queriedLink map[int64]LabeledLink
	posScore    map[int64]float64
	posLink     map[int64]hetnet.Anchor
}

// NewMerger returns an empty vote merger.
func NewMerger() *Merger {
	return &Merger{
		labels:      make(map[int64]float64),
		scores:      make(map[int64]float64),
		queried:     make(map[int64]bool),
		queriedNeg:  make(map[int64]bool),
		queriedLink: make(map[int64]LabeledLink),
		posScore:    make(map[int64]float64),
		posLink:     make(map[int64]hetnet.Anchor),
	}
}

// Add folds one vote into the merge state.
func (m *Merger) Add(v Vote) {
	key := hetnet.Key(v.Link.I, v.Link.J)
	if _, ok := m.labels[key]; !ok {
		m.labels[key] = 0
	}
	if !math.IsNaN(v.Score) {
		if old, ok := m.scores[key]; !ok || v.Score > old {
			m.scores[key] = v.Score
		}
	}
	if v.Queried {
		m.queried[key] = true
		m.queriedLink[key] = LabeledLink{Link: v.Link, Label: v.Label}
		if v.Label == 0 {
			m.queriedNeg[key] = true
		}
	}
	if v.Label == 1 {
		score := v.Score
		if v.Fixed || v.Queried {
			score = math.Inf(1)
		} else if math.IsNaN(score) {
			// A NaN-scored inferred positive still counts as a positive
			// vote, but NaN compares false both ways — it would win or
			// lose the max below depending on ARRIVAL order, and shards
			// commit in nondeterministic completion order. Pin it to the
			// bottom of the competition instead: deterministic, and safely
			// ordered by the reconciler's sort.
			score = math.Inf(-1)
		}
		if old, ok := m.posScore[key]; !ok || score > old {
			m.posScore[key] = score
			m.posLink[key] = v.Link
		}
	}
}

// Finish reconciles the accumulated votes and returns the merged
// result. Reports and Elapsed are left for the caller to fill.
func (m *Merger) Finish() *Result {
	rec := multinet.NewReconciler()
	for key, s := range m.posScore {
		// An oracle NO overrules inference — but never ground truth: a
		// +Inf entry is a training anchor or queried positive, and a pure
		// oracle cannot have answered the same link both ways.
		if m.queriedNeg[key] && !math.IsInf(s, 1) {
			continue
		}
		rec.Add(multinet.ScoredLink{NetI: 0, NetJ: 1, A: m.posLink[key], Score: s})
	}
	clusters, rejected := rec.Finish()
	anchors := multinet.PairLinks(clusters, 0, 1)
	for _, a := range anchors {
		m.labels[hetnet.Key(a.I, a.J)] = 1
	}
	return &Result{
		anchors:      anchors,
		labels:       m.labels,
		scores:       m.scores,
		queried:      m.queried,
		queriedLinks: m.queriedLink,
		Rejected:     rejected,
	}
}
