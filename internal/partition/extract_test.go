package partition

import (
	"fmt"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

// shardPlan builds a K=3 plan over the tiny fixture — the shard set the
// extraction tests run against.
func shardPlan(t *testing.T) (*hetnet.AlignedPair, *metadiag.Counter, *Plan) {
	t.Helper()
	pair, trainPos, candidates := fixture(t)
	base := newBase(t, pair)
	plan, err := BuildPlan(base, trainPos, candidates, 20, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Parts) < 2 {
		t.Fatalf("fixture plan has %d parts, want ≥ 2", len(plan.Parts))
	}
	return pair, base, plan
}

// TestExtractShardPreservesFeatures is the extraction exactness
// property: for every pool link of every shard, the feature vector
// computed on the extracted sub-pair equals — bit for bit — the vector
// the in-process pipeline computes on the full pair. This is the
// invariant that makes distributed and in-process alignment identical.
func TestExtractShardPreservesFeatures(t *testing.T) {
	pair, base, plan := shardPlan(t)
	feats := schema.StandardLibrary().All()
	for p := range plan.Parts {
		part := &plan.Parts[p]
		shard, err := ExtractShard(pair, part)
		if err != nil {
			t.Fatalf("part %d: %v", p, err)
		}
		if !shard.Extracted() {
			t.Errorf("part %d: extraction kept the full pair", p)
		}

		// Full-pair reference: fork of the base, anchors restricted.
		ref := base.Fork()
		ref.SetAnchors(part.TrainPos)
		refExt := metadiag.NewExtractor(ref, feats, true)
		if err := refExt.Recompute(); err != nil {
			t.Fatal(err)
		}
		// Extracted pipeline: fresh counter over the sub-pair.
		sub, err := metadiag.NewCounter(shard.Pair)
		if err != nil {
			t.Fatalf("part %d: counter on sub-pair: %v", p, err)
		}
		sub.SetAnchors(shard.Part.TrainPos)
		subExt := metadiag.NewExtractor(sub, feats, true)
		if err := subExt.Recompute(); err != nil {
			t.Fatalf("part %d: recompute on sub-pair: %v", p, err)
		}

		pool := append(append([]hetnet.Anchor{}, part.TrainPos...), part.Candidates...)
		subPool := append(append([]hetnet.Anchor{}, shard.Part.TrainPos...), shard.Part.Candidates...)
		want := make([]float64, refExt.Dim())
		got := make([]float64, subExt.Dim())
		for k := range pool {
			if err := refExt.FeatureVector(pool[k].I, pool[k].J, want); err != nil {
				t.Fatal(err)
			}
			if err := subExt.FeatureVector(subPool[k].I, subPool[k].J, got); err != nil {
				t.Fatal(err)
			}
			for f := range want {
				if got[f] != want[f] {
					t.Fatalf("part %d link (%d,%d) feature %d: extracted %v, full %v",
						p, pool[k].I, pool[k].J, f, got[f], want[f])
				}
			}
		}
	}
}

// TestExtractShardMaps checks the remap bookkeeping: monotone index
// assignment, inverse maps that round-trip every pool endpoint, and a
// strictly smaller sub-network.
func TestExtractShardMaps(t *testing.T) {
	pair, _, plan := shardPlan(t)
	fullNodes := 0
	for _, tp := range pair.G1.NodeTypes() {
		fullNodes += pair.G1.NodeCount(tp)
	}
	for _, tp := range pair.G2.NodeTypes() {
		fullNodes += pair.G2.NodeCount(tp)
	}
	shrank := false
	for p := range plan.Parts {
		part := &plan.Parts[p]
		shard, err := ExtractShard(pair, part)
		if err != nil {
			t.Fatalf("part %d: %v", p, err)
		}
		// Inverse maps are strictly increasing (monotone remap) and
		// round-trip external IDs.
		for s := 1; s < len(shard.InvUsers1); s++ {
			if shard.InvUsers1[s] <= shard.InvUsers1[s-1] {
				t.Fatalf("part %d: InvUsers1 not monotone at %d", p, s)
			}
		}
		for s, orig := range shard.InvUsers2 {
			if shard.Pair.G2.NodeID(pair.AnchorType, s) != pair.G2.NodeID(pair.AnchorType, int(orig)) {
				t.Fatalf("part %d: InvUsers2[%d]=%d maps to a different external ID", p, s, orig)
			}
		}
		// Pool links translate back to the originals.
		for k, a := range shard.Part.TrainPos {
			back := hetnet.Anchor{I: int(shard.InvUsers1[a.I]), J: int(shard.InvUsers2[a.J])}
			if back != part.TrainPos[k] {
				t.Fatalf("part %d: train anchor %d maps back to %v, want %v", p, k, back, part.TrainPos[k])
			}
		}
		for k, c := range shard.Part.Candidates {
			back := hetnet.Anchor{I: int(shard.InvUsers1[c.I]), J: int(shard.InvUsers2[c.J])}
			if back != part.Candidates[k] {
				t.Fatalf("part %d: candidate %d maps back to %v, want %v", p, k, back, part.Candidates[k])
			}
		}
		if shard.Part.Index != part.Index || shard.Part.Budget != part.Budget {
			t.Errorf("part %d: Index/Budget not preserved", p)
		}
		subNodes := 0
		for _, tp := range shard.Pair.G1.NodeTypes() {
			subNodes += shard.Pair.G1.NodeCount(tp)
		}
		for _, tp := range shard.Pair.G2.NodeTypes() {
			subNodes += shard.Pair.G2.NodeCount(tp)
		}
		if subNodes > fullNodes {
			t.Errorf("part %d: extraction grew the pair (%d > %d nodes)", p, subNodes, fullNodes)
		}
		if subNodes < fullNodes {
			shrank = true
		}
		if err := shard.Pair.Validate(); err != nil {
			t.Errorf("part %d: extracted pair invalid: %v", p, err)
		}
	}
	// A dense tiny closure may cover the whole pair for SOME part, but a
	// K=3 plan where NO shard shrinks would mean extraction does nothing.
	if !shrank {
		t.Error("no shard shrank under extraction")
	}
}

// TestFullShardIdentity checks the no-extraction baseline: identity
// maps, shared networks, and Extracted() = false.
func TestFullShardIdentity(t *testing.T) {
	pair, _, plan := shardPlan(t)
	part := &plan.Parts[0]
	shard := FullShard(pair, part)
	if shard.Extracted() {
		t.Error("FullShard reports Extracted")
	}
	if len(shard.InvUsers1) != pair.G1.NodeCount(pair.AnchorType) {
		t.Errorf("InvUsers1 length %d, want %d", len(shard.InvUsers1), pair.G1.NodeCount(pair.AnchorType))
	}
	for k, a := range shard.Part.TrainPos {
		if a != part.TrainPos[k] {
			t.Fatalf("FullShard remapped anchor %d", k)
		}
	}
	if shard.Pair.G1 != pair.G1 || shard.Pair.G2 != pair.G2 {
		t.Error("FullShard copied the networks")
	}
}

// TestExtractShardRejectsUnknownShape pins the refusal contract: a link
// type outside the social/authorship/attribute shape must error rather
// than extract silently wrong features.
func TestExtractShardRejectsUnknownShape(t *testing.T) {
	g1 := hetnet.NewSocialNetwork("g1")
	g2 := hetnet.NewSocialNetwork("g2")
	for u := 0; u < 4; u++ {
		g1.AddNode(hetnet.User, fmt.Sprintf("u%d", u))
		g2.AddNode(hetnet.User, fmt.Sprintf("u%d", u))
	}
	// A location→location link type fits no closure role.
	if err := g1.DeclareLink("near", hetnet.Location, hetnet.Location); err != nil {
		t.Fatal(err)
	}
	pair := hetnet.NewAlignedPair(g1, g2)
	part := &Part{TrainPos: []hetnet.Anchor{{I: 0, J: 0}}, Candidates: []hetnet.Anchor{{I: 1, J: 1}}}
	if _, err := ExtractShard(pair, part); err == nil {
		t.Fatal("unknown link shape extracted without error")
	}
}
