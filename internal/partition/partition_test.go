package partition

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

// fixture generates the tiny pair and a train/candidate split shaped
// like the experiment protocol.
func fixture(t *testing.T) (pair *hetnet.AlignedPair, trainPos, candidates []hetnet.Anchor) {
	t.Helper()
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	n := len(pair.Anchors) / 2
	trainPos = pair.Anchors[:n]
	testPos := pair.Anchors[n:]
	rng := rand.New(rand.NewSource(5))
	neg, err := eval.SampleNegatives(pair, 8*len(pair.Anchors), rng)
	if err != nil {
		t.Fatal(err)
	}
	candidates = append(append([]hetnet.Anchor{}, testPos...), neg...)
	return pair, trainPos, candidates
}

func newBase(t *testing.T, pair *hetnet.AlignedPair) *metadiag.Counter {
	t.Helper()
	base, err := metadiag.NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestPlanK1IsMonolithic(t *testing.T) {
	pair, trainPos, candidates := fixture(t)
	plan, err := BuildPlan(newBase(t, pair), trainPos, candidates, 42, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Parts) != 1 {
		t.Fatalf("K=1 produced %d parts", len(plan.Parts))
	}
	p := plan.Parts[0]
	if len(p.TrainPos) != len(trainPos) || len(p.Candidates) != len(candidates) || p.Budget != 42 {
		t.Errorf("monolithic part lost inputs: %d anchors, %d candidates, budget %d",
			len(p.TrainPos), len(p.Candidates), p.Budget)
	}
	for i, c := range p.Candidates {
		if c != candidates[i] {
			t.Fatalf("candidate order changed at %d", i)
		}
	}
}

func TestPlanCoverageBalanceAndBudget(t *testing.T) {
	pair, trainPos, candidates := fixture(t)
	const k, budget = 3, 50
	plan, err := BuildPlan(newBase(t, pair), trainPos, candidates, budget, Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Parts) != k {
		t.Fatalf("got %d parts, want %d", len(plan.Parts), k)
	}
	// Every partition needs at least one training anchor (PU training is
	// meaningless without positives) and the anchor groups partition the
	// training set.
	seenAnchor := make(map[int64]int)
	totalAnchors := 0
	for _, p := range plan.Parts {
		if len(p.TrainPos) == 0 {
			t.Errorf("partition %d has no training anchors", p.Index)
		}
		totalAnchors += len(p.TrainPos)
		for _, a := range p.TrainPos {
			seenAnchor[hetnet.Key(a.I, a.J)]++
		}
	}
	if totalAnchors != len(trainPos) {
		t.Errorf("anchor groups cover %d anchors, want %d", totalAnchors, len(trainPos))
	}
	for key, n := range seenAnchor {
		if n != 1 {
			i, j := hetnet.UnpackKey(key)
			t.Errorf("anchor (%d,%d) in %d groups", i, j, n)
		}
	}
	// Every candidate must appear in at least one partition; overlap in
	// at most two.
	seenCand := make(map[int64]int)
	for _, p := range plan.Parts {
		for _, c := range p.Candidates {
			seenCand[hetnet.Key(c.I, c.J)]++
		}
	}
	for _, c := range candidates {
		n := seenCand[hetnet.Key(c.I, c.J)]
		if n < 1 || n > 2 {
			t.Errorf("candidate (%d,%d) assigned to %d partitions", c.I, c.J, n)
		}
	}
	if plan.Candidates() != len(candidates)+plan.Overlapped {
		t.Errorf("assignment count %d ≠ candidates %d + overlapped %d",
			plan.Candidates(), len(candidates), plan.Overlapped)
	}
	// Budgets split the total exactly, proportional enough that no
	// non-empty shard is starved while another holds everything.
	sum := 0
	for _, p := range plan.Parts {
		sum += p.Budget
		if p.Budget < 0 {
			t.Errorf("partition %d has negative budget %d", p.Index, p.Budget)
		}
	}
	if sum != budget {
		t.Errorf("budgets sum to %d, want %d", sum, budget)
	}
}

func TestPlanValidation(t *testing.T) {
	pair, trainPos, candidates := fixture(t)
	base := newBase(t, pair)
	if _, err := BuildPlan(nil, trainPos, candidates, 0, Config{K: 2}); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := BuildPlan(base, nil, candidates, 0, Config{K: 2}); err == nil {
		t.Error("empty training anchors accepted")
	}
	if _, err := BuildPlan(base, trainPos, candidates, -1, Config{K: 2}); err == nil {
		t.Error("negative budget accepted")
	}
	// K above the anchor count clamps rather than failing.
	plan, err := BuildPlan(base, trainPos[:2], candidates, 0, Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Parts) > 2 {
		t.Errorf("K not clamped to anchor count: %d parts", len(plan.Parts))
	}
}

// monolithicTrain runs the exact pipeline Aligner.Align runs, for
// equivalence checks.
func monolithicTrain(t *testing.T, pair *hetnet.AlignedPair, trainPos, candidates []hetnet.Anchor, cfg core.Config, oracle active.Oracle) (*core.Result, []hetnet.Anchor) {
	t.Helper()
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	counter.SetAnchors(trainPos)
	ext := metadiag.NewExtractor(counter, schema.StandardLibrary().All(), true)
	if err := ext.Recompute(); err != nil {
		t.Fatal(err)
	}
	links := append([]hetnet.Anchor{}, trainPos...)
	seen := make(map[int64]bool)
	for _, l := range trainPos {
		seen[hetnet.Key(l.I, l.J)] = true
	}
	for _, l := range candidates {
		if !seen[hetnet.Key(l.I, l.J)] {
			seen[hetnet.Key(l.I, l.J)] = true
			links = append(links, l)
		}
	}
	x, err := ext.FeatureMatrix(links)
	if err != nil {
		t.Fatal(err)
	}
	labeled := make([]int, len(trainPos))
	for i := range labeled {
		labeled[i] = i
	}
	if cfg.Budget == 0 {
		cfg.Strategy = nil
	}
	res, err := core.Train(core.Problem{Links: links, X: x, LabeledPos: labeled, Oracle: oracle}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, links
}

func sortedAnchors(in []hetnet.Anchor) []hetnet.Anchor {
	out := append([]hetnet.Anchor{}, in...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// The K=1 partitioned pipeline must reproduce the monolithic training
// loop exactly: same positive set, same labels, same query sequence.
func TestAlignK1MatchesMonolithic(t *testing.T) {
	pair, trainPos, candidates := fixture(t)
	for _, budget := range []int{0, 15} {
		cfg := core.Config{Budget: budget, Strategy: active.Conflict{}, Seed: 7}
		var oracle active.Oracle
		if budget > 0 {
			oracle = active.NewTruthOracle(pair)
		}
		mono, monoLinks := monolithicTrain(t, pair, trainPos, candidates, cfg, oracle)
		var monoPos []hetnet.Anchor
		for idx, l := range monoLinks {
			if mono.Y[idx] == 1 {
				monoPos = append(monoPos, l)
			}
		}

		base, err := metadiag.NewCounter(pair)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := BuildPlan(base, trainPos, candidates, budget, Config{K: 1})
		if err != nil {
			t.Fatal(err)
		}
		part, err := Align(base, plan, TrainOptions{
			Features: schema.StandardLibrary().All(),
			Core:     cfg,
		}, oracle)
		if err != nil {
			t.Fatal(err)
		}

		want := sortedAnchors(monoPos)
		got := part.PredictedAnchors()
		if len(got) != len(want) {
			t.Fatalf("budget %d: K=1 predicted %d anchors, monolithic %d", budget, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("budget %d: anchor %d = %+v, want %+v", budget, i, got[i], want[i])
			}
		}
		// Labels agree on every pool link, and the oracle audit matches.
		for _, l := range monoLinks {
			mLab, _ := mono.LabelOf(l.I, l.J)
			pLab, ok := part.Label(l.I, l.J)
			if !ok || mLab != pLab {
				t.Fatalf("budget %d: label of (%d,%d) = %v/%v (ok=%v)", budget, l.I, l.J, pLab, mLab, ok)
			}
			if mono.WasQueried(l.I, l.J) != part.WasQueried(l.I, l.J) {
				t.Fatalf("budget %d: queried mismatch at (%d,%d)", budget, l.I, l.J)
			}
		}
		if mono.QueryCount() != part.QueryCount() {
			t.Fatalf("budget %d: query count %d vs %d", budget, part.QueryCount(), mono.QueryCount())
		}
		if part.Rejected != 0 {
			t.Errorf("budget %d: K=1 reconciliation rejected %d links", budget, part.Rejected)
		}
	}
}

// K>1 output must respect the global one-to-one constraint, label every
// candidate, and spend no more than the configured budget.
func TestAlignMultiPartitionOneToOne(t *testing.T) {
	pair, trainPos, candidates := fixture(t)
	base, err := metadiag.NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 12
	plan, err := BuildPlan(base, trainPos, candidates, budget, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	oracle := &active.CountingOracle{Inner: active.NewTruthOracle(pair)}
	res, err := Align(base, plan, TrainOptions{
		Features: schema.StandardLibrary().All(),
		Core:     core.Config{Budget: budget, Strategy: active.Conflict{}, Seed: 7},
	}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	seenI, seenJ := map[int]bool{}, map[int]bool{}
	for _, a := range res.PredictedAnchors() {
		if seenI[a.I] || seenJ[a.J] {
			t.Fatalf("one-to-one violated at (%d,%d)", a.I, a.J)
		}
		seenI[a.I] = true
		seenJ[a.J] = true
	}
	// Training anchors always survive reconciliation (they are ground
	// truth, queued at +Inf).
	for _, a := range trainPos {
		if lab, ok := res.Label(a.I, a.J); !ok || lab != 1 {
			t.Errorf("training anchor (%d,%d) lost: label %v ok=%v", a.I, a.J, lab, ok)
		}
	}
	// Every candidate is labeled.
	for _, c := range candidates {
		if _, ok := res.Label(c.I, c.J); !ok {
			t.Errorf("candidate (%d,%d) unlabeled", c.I, c.J)
		}
	}
	if oracle.Queries() > budget {
		t.Errorf("spent %d queries over budget %d", oracle.Queries(), budget)
	}
	if got := res.QueryCount(); got != oracle.Queries() {
		t.Errorf("QueryCount %d ≠ oracle count %d", got, oracle.Queries())
	}
	if len(res.Reports) != len(plan.Parts) {
		t.Errorf("%d reports for %d parts", len(res.Reports), len(plan.Parts))
	}
}

// Concurrent partition pipelines share the base counter's attribute-only
// cache; run a K=4 alignment twice to exercise the forked concurrent
// path under -race.
func TestAlignConcurrentForksRace(t *testing.T) {
	pair, trainPos, candidates := fixture(t)
	base, err := metadiag.NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		plan, err := BuildPlan(base, trainPos, candidates, 0, Config{K: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Align(base, plan, TrainOptions{
			Features: schema.StandardLibrary().All(),
			Core:     core.Config{Seed: 3},
			Workers:  4,
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// Regression: clusterAnchors drops empty groups, so it can return fewer
// groups than requested — training anchors sharing one network-1
// endpoint give farthest-point seeding no distinct seeds to pick.
// BuildPlan used to index d1/d2/parts by the requested K and panic.
func TestPlanDegenerateAnchorEndpoints(t *testing.T) {
	pair, _, candidates := fixture(t)
	// Five anchors, all incident to network-1 user 0: one seed location.
	degenerate := []hetnet.Anchor{{I: 0, J: 0}, {I: 0, J: 1}, {I: 0, J: 2}, {I: 0, J: 3}, {I: 0, J: 4}}
	plan, err := BuildPlan(newBase(t, pair), degenerate, candidates, 10, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range plan.Parts {
		if len(p.TrainPos) == 0 {
			t.Errorf("partition %d has no training anchors", p.Index)
		}
		total += p.Budget
	}
	if total != 10 {
		t.Errorf("budgets sum to %d, want 10", total)
	}
	seen := make(map[int64]bool)
	for _, p := range plan.Parts {
		for _, c := range p.Candidates {
			seen[hetnet.Key(c.I, c.J)] = true
		}
	}
	if len(seen) != len(candidates) {
		t.Errorf("plan covers %d distinct candidates, want %d", len(seen), len(candidates))
	}
}

// Regression: a NaN-scored positive vote must not make the merge
// depend on vote arrival order — shards commit in nondeterministic
// completion order under the distributed coordinator, and NaN compares
// false against everything, so an unguarded max would keep whichever
// vote arrived first. The NaN vote still counts as a positive, pinned
// deterministically below every real score.
func TestMergerNaNScoreOrderIndependent(t *testing.T) {
	link := hetnet.Anchor{I: 2, J: 3}
	votes := []Vote{
		{Link: link, Label: 1, Score: math.NaN()},
		{Link: link, Label: 1, Score: 0.8},
		// A competing link forces the reconciler to order by score.
		{Link: hetnet.Anchor{I: 2, J: 4}, Label: 1, Score: 0.5},
	}
	var ref *Result
	for shift := range votes {
		m := NewMerger()
		for k := range votes {
			m.Add(votes[(k+shift)%len(votes)])
		}
		res := m.Finish()
		if s, _ := res.Score(link.I, link.J); s != 0.8 {
			t.Errorf("shift %d: best score %v, want 0.8", shift, s)
		}
		if ref == nil {
			ref = res
			continue
		}
		got, want := res.PredictedAnchors(), ref.PredictedAnchors()
		if len(got) != len(want) {
			t.Fatalf("shift %d: %d anchors vs %d in reference order", shift, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shift %d: anchor %d = %v, reference %v", shift, i, got[i], want[i])
			}
		}
	}
}

// Regression: on an overlapped candidate, one partition's INFERRED
// positive must not overrule another partition's oracle-answered
// negative — the system paid a query for that 0. Queried positives and
// training anchors still outrank everything.
func TestMergeVotesOracleNegativeWins(t *testing.T) {
	cand := hetnet.Anchor{I: 5, J: 7}
	votes := []Vote{
		// Partition A inferred the candidate positive with a high score.
		{Link: cand, Label: 1, Score: 0.93},
		// Partition B queried it; the oracle said no.
		{Link: cand, Label: 0, Score: 0.88, Queried: true},
		// An unrelated inferred positive must survive.
		{Link: hetnet.Anchor{I: 1, J: 1}, Label: 1, Score: 0.7},
		// A queried positive enters at +Inf.
		{Link: hetnet.Anchor{I: 2, J: 2}, Label: 1, Score: 0.1, Queried: true},
		// A training anchor enters at +Inf.
		{Link: hetnet.Anchor{I: 3, J: 3}, Label: 1, Score: 0.2, Fixed: true},
	}
	// The merge must be order-independent: every rotation of the vote
	// stream — in particular the oracle NO arriving before AND after the
	// conflicting inferred positive — merges identically.
	for shift := range votes {
		m := NewMerger()
		for k := range votes {
			m.Add(votes[(k+shift)%len(votes)])
		}
		res := m.Finish()
		if lab, _ := res.Label(cand.I, cand.J); lab != 0 {
			t.Errorf("shift %d: oracle-refuted candidate merged with label %v, want 0", shift, lab)
		}
		if !res.WasQueried(cand.I, cand.J) {
			t.Errorf("shift %d: queried flag lost in merge", shift)
		}
		anchors := res.PredictedAnchors()
		want := []hetnet.Anchor{{I: 1, J: 1}, {I: 2, J: 2}, {I: 3, J: 3}}
		if len(anchors) != len(want) {
			t.Fatalf("shift %d: merged anchors %v, want %v", shift, anchors, want)
		}
		for i := range want {
			if anchors[i] != want[i] {
				t.Fatalf("shift %d: merged anchors %v, want %v", shift, anchors, want)
			}
		}
	}
}
