package metadiag

import (
	"math"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
)

func TestProximityDefinition(t *testing.T) {
	c := newTestCounter(t)
	prox, err := c.Proximity(schema.AttributePath(hetnet.At).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	// Fixture P5 counts: (0,0)=1,(0,2)=1,(1,0)=1,(1,2)=1.
	// Row sums: [2,2,0]; col sums: [2,0,2].
	// s(0,0) = 2·1/(2+2) = 0.5.
	if got := prox.Score(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Score(0,0) = %v, want 0.5", got)
	}
	if got := prox.Score(0, 1); got != 0 {
		t.Errorf("Score(0,1) = %v, want 0", got)
	}
	if got := prox.Score(2, 2); got != 0 {
		t.Errorf("Score(2,2) = %v, want 0 (no instances)", got)
	}
	sm := prox.ScoreMatrix()
	if got := sm.At(1, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ScoreMatrix(1,2) = %v, want 0.5", got)
	}
	if sm.NNZ() != prox.Counts.NNZ() {
		t.Errorf("ScoreMatrix pattern differs: %d vs %d", sm.NNZ(), prox.Counts.NNZ())
	}
}

func TestProximityBounded(t *testing.T) {
	// s = 2c/(r+c') with c ≤ min(r, c') implies s ≤ 1.
	c := newTestCounter(t)
	lib := schema.StandardLibrary()
	for _, n := range lib.All() {
		prox, err := c.Proximity(n.D)
		if err != nil {
			t.Fatal(err)
		}
		sm := prox.ScoreMatrix()
		sm.Iterate(func(i, j int, v float64) {
			if v < 0 || v > 1+1e-12 {
				t.Errorf("%s: score(%d,%d) = %v outside [0,1]", n.ID, i, j, v)
			}
		})
	}
}

func TestExtractorShape(t *testing.T) {
	c := newTestCounter(t)
	lib := schema.StandardLibrary()
	e := NewExtractor(c, lib.All(), true)
	if e.Dim() != 32 {
		t.Errorf("Dim = %d, want 32 (31 diagrams + bias)", e.Dim())
	}
	names := e.Names()
	if len(names) != 32 || names[0] != "P1" || names[31] != "BIAS" {
		t.Errorf("Names = %v", names[:2])
	}
	noBias := NewExtractor(c, lib.PathsOnly(), false)
	if noBias.Dim() != 6 {
		t.Errorf("paths-only Dim = %d, want 6", noBias.Dim())
	}
}

func TestExtractorFeatureVector(t *testing.T) {
	c := newTestCounter(t)
	lib := schema.StandardLibrary()
	e := NewExtractor(c, lib.All(), true)
	out := make([]float64, e.Dim())
	if err := e.FeatureVector(0, 0, out); err != nil {
		t.Fatal(err)
	}
	if out[len(out)-1] != 1 {
		t.Error("bias feature should be 1")
	}
	// Feature k must equal the proximity score of diagram k.
	for k, n := range lib.All() {
		prox, err := c.Proximity(n.D)
		if err != nil {
			t.Fatal(err)
		}
		if want := prox.Score(0, 0); math.Abs(out[k]-want) > 1e-12 {
			t.Errorf("feature %s = %v, want %v", n.ID, out[k], want)
		}
	}
	// Wrong buffer size errors.
	if err := e.FeatureVector(0, 0, make([]float64, 3)); err == nil {
		t.Error("wrong buffer length should fail")
	}
}

func TestExtractorFeatureMatrix(t *testing.T) {
	c := newTestCounter(t)
	lib := schema.StandardLibrary()
	e := NewExtractor(c, lib.All(), true)
	pairs := []hetnet.Anchor{{I: 0, J: 0}, {I: 0, J: 2}, {I: 2, J: 2}}
	x, err := e.FeatureMatrix(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r, cc := x.Dims(); r != 3 || cc != 32 {
		t.Fatalf("FeatureMatrix dims %dx%d", r, cc)
	}
	want := make([]float64, e.Dim())
	for k, pr := range pairs {
		if err := e.FeatureVector(pr.I, pr.J, want); err != nil {
			t.Fatal(err)
		}
		for col := range want {
			if math.Abs(x.At(k, col)-want[col]) > 1e-12 {
				t.Fatalf("row %d col %d: %v != %v", k, col, x.At(k, col), want[col])
			}
		}
	}
}

func TestExtractorRecomputeAfterAnchorChange(t *testing.T) {
	c := newTestCounter(t)
	lib := schema.StandardLibrary()
	e := NewExtractor(c, lib.All(), false)
	out1 := make([]float64, e.Dim())
	if err := e.FeatureVector(0, 0, out1); err != nil {
		t.Fatal(err)
	}
	// Removing anchor (u1,v1) kills P1(0,0)'s only instance.
	c.SetAnchors([]hetnet.Anchor{{I: 0, J: 0}})
	if err := e.Recompute(); err != nil {
		t.Fatal(err)
	}
	out2 := make([]float64, e.Dim())
	if err := e.FeatureVector(0, 0, out2); err != nil {
		t.Fatal(err)
	}
	if out1[0] == 0 {
		t.Fatal("precondition: P1 feature should be nonzero with both anchors")
	}
	if out2[0] != 0 {
		t.Errorf("P1 feature after anchor restriction = %v, want 0", out2[0])
	}
}
