// Process-wide meta-diagram cache telemetry: the scrapeable lifetime
// view of what Counter.Stats reports per instance.
package metadiag

import "github.com/activeiter/activeiter/internal/telemetry"

var (
	mCacheHits = telemetry.Default.Counter("activeiter_metadiag_cache_hits_total",
		"Meta-diagram count-matrix cache hits (shared and anchored layers).")
	mCacheMisses = telemetry.Default.Counter("activeiter_metadiag_cache_misses_total",
		"Meta-diagram count evaluations — cache misses that ran the SpGEMM chain.")
)
