// Package metadiag counts inter-network meta diagram instances and
// derives the meta diagram proximity features of Definition 6.
//
// Counting exploits the series-parallel structure of the schema package's
// diagrams: a Series composes counts by sparse matrix product over the
// shared intermediate node type, a Parallel by Hadamard product over the
// shared endpoints. The result for diagram Ψ is the |U⁽¹⁾|×|U⁽²⁾| matrix
// whose (i,j) entry is the number of Ψ instances connecting u⁽¹⁾ᵢ and
// u⁽²⁾ⱼ.
//
// Sub-diagram results are memoized by notation, which realizes the
// paper's Lemma 2 covering-set reuse: when Ψₖ' is a sub-pattern of Ψₖ
// (C(Ψₖ') ⊆ C(Ψₖ)), the computation of Ψₖ starts from the cached Ψₖ'
// matrices rather than recounting. Anchor-dependent entries are dropped
// when the training anchor set changes; attribute-only entries survive
// across folds.
package metadiag

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/sparse"
)

// vocabulary is a joint index space for one shared attribute type,
// merging the attribute values of both networks by external ID. Two
// posts in different networks "share an attribute" exactly when their
// attribute nodes carry the same external ID.
type vocabulary struct {
	ids   []string
	index map[string]int
}

func (v *vocabulary) intern(id string) int {
	if idx, ok := v.index[id]; ok {
		return idx
	}
	idx := len(v.ids)
	v.ids = append(v.ids, id)
	v.index[id] = idx
	return idx
}

// Stats reports cache behaviour of a Counter, used by the Lemma-2
// ablation bench.
type Stats struct {
	Evaluations int // sub-diagram evaluations performed
	CacheHits   int // sub-diagram evaluations answered from cache
}

// Counter evaluates diagram count matrices over an aligned network pair.
// It is not safe for concurrent use.
type Counter struct {
	pair   *hetnet.AlignedPair
	sch    *schema.Schema
	vocabs map[hetnet.NodeType]*vocabulary

	anchor  *sparse.CSR
	anchorT *sparse.CSR

	adjCache   map[string]*sparse.CSR // per (net, rel, orientation)
	countCache map[string]*sparse.CSR // per diagram notation
	anchored   map[string]bool        // which cache entries depend on anchors

	stats Stats
}

// NewCounter builds a counter over the pair using its full anchor set as
// the traversable anchor edges. Call SetAnchors to restrict to a
// training fold. The schema is derived from the two networks and the
// standard attribute types.
func NewCounter(pair *hetnet.AlignedPair) (*Counter, error) {
	sch, err := schema.FromNetworks(pair.G1, pair.G2, hetnet.AttributeTypes)
	if err != nil {
		return nil, err
	}
	c := &Counter{
		pair:       pair,
		sch:        sch,
		vocabs:     make(map[hetnet.NodeType]*vocabulary),
		adjCache:   make(map[string]*sparse.CSR),
		countCache: make(map[string]*sparse.CSR),
		anchored:   make(map[string]bool),
	}
	for _, t := range hetnet.AttributeTypes {
		v := &vocabulary{index: make(map[string]int)}
		for i := 0; i < pair.G1.NodeCount(t); i++ {
			v.intern(pair.G1.NodeID(t, i))
		}
		for i := 0; i < pair.G2.NodeCount(t); i++ {
			v.intern(pair.G2.NodeID(t, i))
		}
		c.vocabs[t] = v
	}
	c.SetAnchors(pair.Anchors)
	return c, nil
}

// Schema returns the derived aligned network schema.
func (c *Counter) Schema() *schema.Schema { return c.sch }

// Pair returns the underlying aligned pair.
func (c *Counter) Pair() *hetnet.AlignedPair { return c.pair }

// Stats returns cumulative evaluation statistics.
func (c *Counter) Stats() Stats { return c.stats }

// SetAnchors replaces the traversable anchor edge set (the *known*
// positive anchor links; Section III-B counts paths through labeled
// anchors only) and invalidates every cached count that traversed them.
func (c *Counter) SetAnchors(anchors []hetnet.Anchor) {
	c.anchor = c.pair.AnchorMatrix(anchors)
	c.anchorT = c.anchor.T()
	for key, dep := range c.anchored {
		if dep {
			delete(c.countCache, key)
			delete(c.anchored, key)
		}
	}
}

// VocabSize returns the joint vocabulary size of attribute type t.
func (c *Counter) VocabSize(t hetnet.NodeType) int {
	if v, ok := c.vocabs[t]; ok {
		return len(v.ids)
	}
	return 0
}

// dim returns the index-space size of a typed node.
func (c *Counter) dim(n schema.TypedNode) int {
	switch n.Net {
	case schema.Net1:
		return c.pair.G1.NodeCount(n.Type)
	case schema.Net2:
		return c.pair.G2.NodeCount(n.Type)
	default:
		return c.VocabSize(n.Type)
	}
}

// net returns the concrete network for a reference.
func (c *Counter) net(r schema.NetworkRef) *hetnet.Network {
	if r == schema.Net1 {
		return c.pair.G1
	}
	return c.pair.G2
}

// adjacency returns the (possibly attribute-remapped) adjacency of rel in
// network ref, oriented source→target of the declared relation. Results
// are cached.
func (c *Counter) adjacency(ref schema.NetworkRef, rel hetnet.LinkType) (*sparse.CSR, error) {
	key := fmt.Sprintf("%v/%s", ref, rel)
	if m, ok := c.adjCache[key]; ok {
		return m, nil
	}
	g := c.net(ref)
	srcType, dstType, ok := g.LinkEndpoints(rel)
	if !ok {
		return nil, fmt.Errorf("metadiag: relation %q not declared in %q", rel, g.Name())
	}
	var m *sparse.CSR
	if vocab, shared := c.vocabs[dstType]; shared {
		// Attribute association: remap destination indices onto the joint
		// vocabulary so both networks' matrices share a column space.
		b := sparse.NewBuilder(g.NodeCount(srcType), len(vocab.ids))
		var buildErr error
		g.Links(rel, func(from, to int) {
			id := g.NodeID(dstType, to)
			j, ok := vocab.index[id]
			if !ok {
				buildErr = fmt.Errorf("metadiag: attribute %q of type %s missing from joint vocabulary", id, dstType)
				return
			}
			b.Add(from, j, 1)
		})
		if buildErr != nil {
			return nil, buildErr
		}
		m = b.Build().Binarize()
	} else {
		var err error
		m, err = g.Adjacency(rel)
		if err != nil {
			return nil, err
		}
	}
	c.adjCache[key] = m
	return m, nil
}

// adjacencyOriented returns the adjacency oriented along the traversal
// direction of e (transposed for reverse traversals), cached.
func (c *Counter) adjacencyOriented(e schema.Edge) (*sparse.CSR, error) {
	if e.Rel == schema.Anchor {
		if e.Forward {
			return c.anchor, nil
		}
		return c.anchorT, nil
	}
	ref := e.Net()
	base, err := c.adjacency(ref, e.Rel)
	if err != nil {
		return nil, err
	}
	if e.Forward {
		return base, nil
	}
	key := fmt.Sprintf("%v/%s/T", ref, e.Rel)
	if m, ok := c.adjCache[key]; ok {
		return m, nil
	}
	mt := base.T()
	c.adjCache[key] = mt
	return mt, nil
}

// UsesAnchor reports whether the diagram traverses the anchor relation
// (and therefore depends on the training anchor set).
func UsesAnchor(d schema.Diagram) bool {
	switch v := d.(type) {
	case schema.Edge:
		return v.Rel == schema.Anchor
	case schema.MetaPath:
		for _, e := range v.Edges {
			if e.Rel == schema.Anchor {
				return true
			}
		}
		return false
	case schema.Series:
		for _, p := range v.Parts {
			if UsesAnchor(p) {
				return true
			}
		}
		return false
	case schema.Parallel:
		for _, p := range v.Parts {
			if UsesAnchor(p) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("metadiag: UsesAnchor of unknown diagram type %T", d))
	}
}

// Count returns the instance count matrix of diagram d, validated
// against the schema, with memoized sub-diagram reuse.
func (c *Counter) Count(d schema.Diagram) (*sparse.CSR, error) {
	if err := d.Validate(c.sch); err != nil {
		return nil, err
	}
	return c.eval(d)
}

func (c *Counter) eval(d schema.Diagram) (*sparse.CSR, error) {
	key := d.Notation()
	if m, ok := c.countCache[key]; ok {
		c.stats.CacheHits++
		return m, nil
	}
	c.stats.Evaluations++
	var m *sparse.CSR
	var err error
	switch v := d.(type) {
	case schema.Edge:
		m, err = c.adjacencyOriented(v)
	case schema.MetaPath:
		m, err = c.eval(v.AsDiagram())
	case schema.Series:
		parts := make([]*sparse.CSR, len(v.Parts))
		for i, p := range v.Parts {
			parts[i], err = c.eval(p)
			if err != nil {
				return nil, err
			}
		}
		m = sparse.Chain(parts...)
	case schema.Parallel:
		var acc *sparse.CSR
		for _, p := range v.Parts {
			pm, perr := c.eval(p)
			if perr != nil {
				return nil, perr
			}
			if acc == nil {
				acc = pm
			} else {
				acc = sparse.Hadamard(acc, pm)
			}
		}
		m = acc
	default:
		return nil, fmt.Errorf("metadiag: cannot evaluate diagram type %T", d)
	}
	if err != nil {
		return nil, err
	}
	c.countCache[key] = m
	c.anchored[key] = UsesAnchor(d)
	return m, nil
}
