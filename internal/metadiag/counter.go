// Package metadiag counts inter-network meta diagram instances and
// derives the meta diagram proximity features of Definition 6.
//
// Counting exploits the series-parallel structure of the schema package's
// diagrams: a Series composes counts by sparse matrix product over the
// shared intermediate node type, a Parallel by Hadamard product over the
// shared endpoints. The result for diagram Ψ is the |U⁽¹⁾|×|U⁽²⁾| matrix
// whose (i,j) entry is the number of Ψ instances connecting u⁽¹⁾ᵢ and
// u⁽²⁾ⱼ.
//
// Sub-diagram results are memoized by notation, which realizes the
// paper's Lemma 2 covering-set reuse: when Ψₖ' is a sub-pattern of Ψₖ
// (C(Ψₖ') ⊆ C(Ψₖ)), the computation of Ψₖ starts from the cached Ψₖ'
// matrices rather than recounting. The cache is two-layered: anchor-free
// (attribute-only) counts live in a layer shared by every Fork of a
// counter and survive anchor changes, while anchor-dependent counts live
// in a per-counter layer that SetAnchors invalidates. Both layers are
// safe for concurrent use, with per-notation single-flight so concurrent
// callers never duplicate an evaluation.
package metadiag

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/sparse"
)

// vocabulary is a joint index space for one shared attribute type,
// merging the attribute values of both networks by external ID. Two
// posts in different networks "share an attribute" exactly when their
// attribute nodes carry the same external ID.
type vocabulary struct {
	ids   []string
	index map[string]int
}

func (v *vocabulary) intern(id string) int {
	if idx, ok := v.index[id]; ok {
		return idx
	}
	idx := len(v.ids)
	v.ids = append(v.ids, id)
	v.index[id] = idx
	return idx
}

// Stats reports cache behaviour of a Counter, used by the Lemma-2
// ablation bench.
type Stats struct {
	Evaluations int // sub-diagram evaluations performed
	CacheHits   int // sub-diagram evaluations answered from cache
}

// inflight is one in-progress sub-diagram evaluation; waiters block on
// done and then read m/err.
type inflight struct {
	done chan struct{}
	m    *sparse.CSR
	err  error
}

// sharedState is the fold-independent half of a counter: the pair, the
// derived schema, joint vocabularies, adjacency matrices, and the
// attribute-only (anchor-free) count cache. Every Fork of a counter
// points at the same sharedState, so Lemma-2 reuse crosses fold and
// worker boundaries.
type sharedState struct {
	pair   *hetnet.AlignedPair
	sch    *schema.Schema
	vocabs map[hetnet.NodeType]*vocabulary

	adjMu    sync.RWMutex
	adjCache map[string]*sparse.CSR // per (net, rel, orientation)

	mu     sync.Mutex
	counts map[string]*sparse.CSR // anchor-free counts, per notation
	flight map[string]*inflight
}

// Counter evaluates diagram count matrices over an aligned network pair.
// It is safe for concurrent use: concurrent Counts share cached
// sub-results and coalesce duplicate evaluations. SetAnchors must not
// run concurrently with Count on the same counter — use Fork to give
// each fold or worker its own anchor-dependent layer instead.
type Counter struct {
	sh *sharedState

	mu        sync.Mutex
	anchor    *sparse.CSR
	anchorT   *sparse.CSR
	anchorGen int
	counts    map[string]*sparse.CSR // anchor-dependent counts, per notation
	flight    map[string]*inflight

	evals atomic.Int64
	hits  atomic.Int64
}

// NewCounter builds a counter over the pair using its full anchor set as
// the traversable anchor edges. Call SetAnchors to restrict to a
// training fold. The schema is derived from the two networks and the
// standard attribute types.
func NewCounter(pair *hetnet.AlignedPair) (*Counter, error) {
	sch, err := schema.FromNetworks(pair.G1, pair.G2, hetnet.AttributeTypes)
	if err != nil {
		return nil, err
	}
	sh := &sharedState{
		pair:     pair,
		sch:      sch,
		vocabs:   make(map[hetnet.NodeType]*vocabulary),
		adjCache: make(map[string]*sparse.CSR),
		counts:   make(map[string]*sparse.CSR),
		flight:   make(map[string]*inflight),
	}
	for _, t := range hetnet.AttributeTypes {
		v := &vocabulary{index: make(map[string]int)}
		for i := 0; i < pair.G1.NodeCount(t); i++ {
			v.intern(pair.G1.NodeID(t, i))
		}
		for i := 0; i < pair.G2.NodeCount(t); i++ {
			v.intern(pair.G2.NodeID(t, i))
		}
		sh.vocabs[t] = v
	}
	c := &Counter{
		sh:     sh,
		counts: make(map[string]*sparse.CSR),
		flight: make(map[string]*inflight),
	}
	c.SetAnchors(pair.Anchors)
	return c, nil
}

// Fork returns a counter sharing the fold-independent state — schema,
// vocabularies, adjacency matrices, and the attribute-only count cache
// of Lemma 2 — while keeping an independent anchor-dependent layer
// initialized to the parent's current anchor set. Forks are safe to use
// concurrently with each other and with the parent; give each fold or
// worker its own fork so SetAnchors never invalidates a sibling.
func (c *Counter) Fork() *Counter {
	c.mu.Lock()
	a, at := c.anchor, c.anchorT
	c.mu.Unlock()
	return &Counter{
		sh:      c.sh,
		anchor:  a,
		anchorT: at,
		counts:  make(map[string]*sparse.CSR),
		flight:  make(map[string]*inflight),
	}
}

// Schema returns the derived aligned network schema.
func (c *Counter) Schema() *schema.Schema { return c.sh.sch }

// Pair returns the underlying aligned pair.
func (c *Counter) Pair() *hetnet.AlignedPair { return c.sh.pair }

// Stats returns cumulative evaluation statistics for this counter (a
// fork's statistics start at zero; hits against the shared layer are
// credited to the counter that asked).
func (c *Counter) Stats() Stats {
	return Stats{Evaluations: int(c.evals.Load()), CacheHits: int(c.hits.Load())}
}

// SetAnchors replaces the traversable anchor edge set (the *known*
// positive anchor links; Section III-B counts paths through labeled
// anchors only) and invalidates every cached count that traversed them.
// Attribute-only counts in the shared layer survive. SetAnchors must be
// externally synchronized with Count on the same counter.
func (c *Counter) SetAnchors(anchors []hetnet.Anchor) {
	am := c.sh.pair.AnchorMatrix(anchors)
	amT := am.T()
	c.mu.Lock()
	c.anchor = am
	c.anchorT = amT
	c.anchorGen++
	clear(c.counts)
	c.mu.Unlock()
}

// VocabSize returns the joint vocabulary size of attribute type t.
func (c *Counter) VocabSize(t hetnet.NodeType) int {
	if v, ok := c.sh.vocabs[t]; ok {
		return len(v.ids)
	}
	return 0
}

// dim returns the index-space size of a typed node.
func (c *Counter) dim(n schema.TypedNode) int {
	switch n.Net {
	case schema.Net1:
		return c.sh.pair.G1.NodeCount(n.Type)
	case schema.Net2:
		return c.sh.pair.G2.NodeCount(n.Type)
	default:
		return c.VocabSize(n.Type)
	}
}

// net returns the concrete network for a reference.
func (c *Counter) net(r schema.NetworkRef) *hetnet.Network {
	if r == schema.Net1 {
		return c.sh.pair.G1
	}
	return c.sh.pair.G2
}

// adjacency returns the (possibly attribute-remapped) adjacency of rel in
// network ref, oriented source→target of the declared relation. Results
// are cached in the shared layer; a concurrent miss may compute the
// matrix twice, but both results are identical and one wins the cache.
func (c *Counter) adjacency(ref schema.NetworkRef, rel hetnet.LinkType) (*sparse.CSR, error) {
	key := fmt.Sprintf("%v/%s", ref, rel)
	c.sh.adjMu.RLock()
	m, ok := c.sh.adjCache[key]
	c.sh.adjMu.RUnlock()
	if ok {
		return m, nil
	}
	g := c.net(ref)
	srcType, dstType, ok := g.LinkEndpoints(rel)
	if !ok {
		return nil, fmt.Errorf("metadiag: relation %q not declared in %q", rel, g.Name())
	}
	if vocab, shared := c.sh.vocabs[dstType]; shared {
		// Attribute association: remap destination indices onto the joint
		// vocabulary so both networks' matrices share a column space.
		b := sparse.NewBuilder(g.NodeCount(srcType), len(vocab.ids))
		var buildErr error
		g.Links(rel, func(from, to int) {
			id := g.NodeID(dstType, to)
			j, ok := vocab.index[id]
			if !ok {
				buildErr = fmt.Errorf("metadiag: attribute %q of type %s missing from joint vocabulary", id, dstType)
				return
			}
			b.Add(from, j, 1)
		})
		if buildErr != nil {
			return nil, buildErr
		}
		m = b.Build().Binarize()
	} else {
		var err error
		m, err = g.Adjacency(rel)
		if err != nil {
			return nil, err
		}
	}
	return c.storeAdjacency(key, m), nil
}

// storeAdjacency publishes m under key, returning the first stored
// matrix when a concurrent computation won the race.
func (c *Counter) storeAdjacency(key string, m *sparse.CSR) *sparse.CSR {
	c.sh.adjMu.Lock()
	defer c.sh.adjMu.Unlock()
	if prev, ok := c.sh.adjCache[key]; ok {
		return prev
	}
	c.sh.adjCache[key] = m
	return m
}

// adjacencyOriented returns the adjacency oriented along the traversal
// direction of e (transposed for reverse traversals), cached.
func (c *Counter) adjacencyOriented(e schema.Edge) (*sparse.CSR, error) {
	if e.Rel == schema.Anchor {
		c.mu.Lock()
		a, at := c.anchor, c.anchorT
		c.mu.Unlock()
		if e.Forward {
			return a, nil
		}
		return at, nil
	}
	ref := e.Net()
	base, err := c.adjacency(ref, e.Rel)
	if err != nil {
		return nil, err
	}
	if e.Forward {
		return base, nil
	}
	key := fmt.Sprintf("%v/%s/T", ref, e.Rel)
	c.sh.adjMu.RLock()
	m, ok := c.sh.adjCache[key]
	c.sh.adjMu.RUnlock()
	if ok {
		return m, nil
	}
	return c.storeAdjacency(key, base.T()), nil
}

// UsesAnchor reports whether the diagram traverses the anchor relation
// (and therefore depends on the training anchor set).
func UsesAnchor(d schema.Diagram) bool {
	switch v := d.(type) {
	case schema.Edge:
		return v.Rel == schema.Anchor
	case schema.MetaPath:
		for _, e := range v.Edges {
			if e.Rel == schema.Anchor {
				return true
			}
		}
		return false
	case schema.Series:
		for _, p := range v.Parts {
			if UsesAnchor(p) {
				return true
			}
		}
		return false
	case schema.Parallel:
		for _, p := range v.Parts {
			if UsesAnchor(p) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("metadiag: UsesAnchor of unknown diagram type %T", d))
	}
}

// Count returns the instance count matrix of diagram d, validated
// against the schema, with memoized sub-diagram reuse.
func (c *Counter) Count(d schema.Diagram) (*sparse.CSR, error) {
	if err := d.Validate(c.sh.sch); err != nil {
		return nil, err
	}
	return c.eval(d)
}

// eval routes a sub-diagram to the appropriate cache layer: anchor-free
// diagrams to the shared layer (reused across every fork and anchor
// set), anchor-dependent ones to this counter's private layer.
func (c *Counter) eval(d schema.Diagram) (*sparse.CSR, error) {
	// Normalize wrappers that share their notation with their content — a
	// MetaPath with its Series form, a single-part Series or Parallel
	// with its part — before keying, so the single-flight never waits on
	// an entry registered by its own evaluation.
	for {
		switch v := d.(type) {
		case schema.MetaPath:
			d = v.AsDiagram()
			continue
		case schema.Series:
			if len(v.Parts) == 1 {
				d = v.Parts[0]
				continue
			}
		case schema.Parallel:
			if len(v.Parts) == 1 {
				d = v.Parts[0]
				continue
			}
		}
		break
	}
	key := d.Notation()
	if UsesAnchor(d) {
		return c.evalIn(d, key, &c.mu, c.counts, c.flight, &c.anchorGen)
	}
	return c.evalIn(d, key, &c.sh.mu, c.sh.counts, c.sh.flight, nil)
}

// evalIn answers key from one cache layer with per-notation
// single-flight: the first caller computes, concurrent callers for the
// same notation wait and share the result. genPtr, when non-nil, is read
// under mu and the result is only cached if the generation is unchanged
// at store time (SetAnchors bumps it, so a racing stale evaluation is
// returned to its caller but never poisons the fresh cache).
func (c *Counter) evalIn(d schema.Diagram, key string, mu *sync.Mutex, counts map[string]*sparse.CSR, flights map[string]*inflight, genPtr *int) (*sparse.CSR, error) {
	mu.Lock()
	if m, ok := counts[key]; ok {
		mu.Unlock()
		c.hits.Add(1)
		mCacheHits.Inc()
		return m, nil
	}
	if f, ok := flights[key]; ok {
		mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		c.hits.Add(1)
		mCacheHits.Inc()
		return f.m, nil
	}
	startGen := 0
	if genPtr != nil {
		startGen = *genPtr
	}
	f := &inflight{done: make(chan struct{})}
	flights[key] = f
	mu.Unlock()

	c.evals.Add(1)
	mCacheMisses.Inc()
	f.m, f.err = c.compute(d)

	mu.Lock()
	if f.err == nil && (genPtr == nil || *genPtr == startGen) {
		counts[key] = f.m
	}
	delete(flights, key)
	mu.Unlock()
	close(f.done)
	return f.m, f.err
}

// compute evaluates one diagram node, recursing through eval so every
// sub-diagram passes the cache.
func (c *Counter) compute(d schema.Diagram) (*sparse.CSR, error) {
	switch v := d.(type) {
	case schema.Edge:
		return c.adjacencyOriented(v)
	case schema.MetaPath:
		// Unreachable via eval (which normalizes paths), kept for direct
		// callers.
		return c.eval(v.AsDiagram())
	case schema.Series:
		parts := make([]*sparse.CSR, len(v.Parts))
		for i, p := range v.Parts {
			m, err := c.eval(p)
			if err != nil {
				return nil, err
			}
			parts[i] = m
		}
		return sparse.Chain(parts...), nil
	case schema.Parallel:
		var acc *sparse.CSR
		for _, p := range v.Parts {
			pm, err := c.eval(p)
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = pm
			} else {
				acc = sparse.Hadamard(acc, pm)
			}
		}
		return acc, nil
	default:
		return nil, fmt.Errorf("metadiag: cannot evaluate diagram type %T", d)
	}
}
