package metadiag

import (
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
)

// buildTestPair constructs a small aligned pair with hand-checkable
// counts.
//
// Network 1: users u0,u1,u2; follows u0→u1, u1→u0, u2→u0, u0→u2.
// Posts: p0 (by u0, at T0, checkin L0), p1 (by u1, at T0, checkin L1).
//
// Network 2: users v0,v1,v2; follows v0→v1, v1→v0, v2→v0.
// Posts: q1 (by v2, at T1, checkin L0), q2 (by v2, at T0, checkin L2),
// q0 (by v0, at T0, checkin L0) — inserted in this order so the two
// networks intern locations differently, exercising the joint-vocabulary
// remap.
//
// Anchors: (u0,v0), (u1,v1).
func buildTestPair(t *testing.T) *hetnet.AlignedPair {
	t.Helper()
	g1 := hetnet.NewSocialNetwork("net1")
	for _, u := range []string{"u0", "u1", "u2"} {
		g1.AddNode(hetnet.User, u)
	}
	for _, e := range [][2]string{{"u0", "u1"}, {"u1", "u0"}, {"u2", "u0"}, {"u0", "u2"}} {
		if err := g1.AddLinkByID(hetnet.Follow, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	addPost := func(g *hetnet.Network, user, post, ts, loc string) {
		t.Helper()
		for _, step := range []struct {
			lt       hetnet.LinkType
			from, to string
		}{
			{hetnet.Write, user, post},
			{hetnet.At, post, ts},
			{hetnet.Checkin, post, loc},
		} {
			if err := g.AddLinkByID(step.lt, step.from, step.to); err != nil {
				t.Fatal(err)
			}
		}
	}
	addPost(g1, "u0", "p0", "T0", "L0")
	addPost(g1, "u1", "p1", "T0", "L1")

	g2 := hetnet.NewSocialNetwork("net2")
	for _, v := range []string{"v0", "v1", "v2"} {
		g2.AddNode(hetnet.User, v)
	}
	for _, e := range [][2]string{{"v0", "v1"}, {"v1", "v0"}, {"v2", "v0"}} {
		if err := g2.AddLinkByID(hetnet.Follow, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	addPost(g2, "v2", "q1", "T1", "L0")
	addPost(g2, "v2", "q2", "T0", "L2")
	addPost(g2, "v0", "q0", "T0", "L0")

	pair := hetnet.NewAlignedPair(g1, g2)
	for _, a := range [][2]int{{0, 0}, {1, 1}} {
		if err := pair.AddAnchor(a[0], a[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pair.Validate(); err != nil {
		t.Fatal(err)
	}
	return pair
}

func newTestCounter(t *testing.T) *Counter {
	t.Helper()
	c, err := NewCounter(buildTestPair(t))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFollowPathCounts(t *testing.T) {
	c := newTestCounter(t)
	tests := []struct {
		name string
		d    schema.Diagram
		i, j int
		want float64
	}{
		// P1(i,j) = Σ_(x1,x2)∈A F1(i,x1)·F2(j,x2).
		{"P1(2,2) via (u0,v0)", schema.FollowPath(1).AsDiagram(), 2, 2, 1},
		{"P1(0,1) no instance", schema.FollowPath(1).AsDiagram(), 0, 1, 0},
		{"P1(0,0) via (u1,v1)", schema.FollowPath(1).AsDiagram(), 0, 0, 1},
		// P2(i,j) = Σ F1(x1,i)·F2(x2,j): u2 has follower u0 but v2 has none.
		{"P2(2,2) v2 has no anchored follower", schema.FollowPath(2).AsDiagram(), 2, 2, 0},
		{"P2(0,0) via (u1,v1) mutual", schema.FollowPath(2).AsDiagram(), 0, 0, 1},
		// P3(i,j) = Σ F1(i,x1)·F2(x2,j).
		{"P3(2,1) u2→u0, v0→v1", schema.FollowPath(3).AsDiagram(), 2, 1, 1},
		// P4(i,j) = Σ F1(x1,i)·F2(j,x2).
		{"P4(2,2) u0→u2 and v2→v0", schema.FollowPath(4).AsDiagram(), 2, 2, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m, err := c.Count(tc.d)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.At(tc.i, tc.j); got != tc.want {
				t.Errorf("count(%d,%d) = %v, want %v", tc.i, tc.j, got, tc.want)
			}
		})
	}
}

func TestAttributePathCounts(t *testing.T) {
	c := newTestCounter(t)
	p5, err := c.Count(schema.AttributePath(hetnet.At).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	// Hand-enumerated common-timestamp pairs (see fixture comment).
	wantP5 := map[[2]int]float64{
		{0, 0}: 1, {0, 2}: 1, {1, 0}: 1, {1, 2}: 1,
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := wantP5[[2]int{i, j}]
			if got := p5.At(i, j); got != want {
				t.Errorf("P5(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}

	p6, err := c.Count(schema.AttributePath(hetnet.Checkin).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	wantP6 := map[[2]int]float64{
		{0, 0}: 1, // p0(L0) with q0(L0)
		{0, 2}: 1, // p0(L0) with q1(L0)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := wantP6[[2]int{i, j}]
			if got := p6.At(i, j); got != want {
				t.Errorf("P6(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestFollowDiagramRequiresMutualPattern(t *testing.T) {
	c := newTestCounter(t)
	// Ψ^f²(P1×P2): both follow directions through the same anchor pair.
	m, err := c.Count(schema.FollowDiagram(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 1 {
		t.Errorf("Ψ(0,0) = %v, want 1 (mutual u0↔u1, v0↔v1 via anchor (1,1))", got)
	}
	// u2↔u0 is mutual in net1 but v2→v0 is one-way: diagram must reject.
	if got := m.At(2, 2); got != 0 {
		t.Errorf("Ψ(2,2) = %v, want 0 (v2↔v0 not mutual)", got)
	}
	// Sanity: the single paths DO connect (2,2) — the diagram is stricter.
	p1, err := c.Count(schema.FollowPath(1).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	if p1.At(2, 2) != 1 {
		t.Error("setup broken: P1(2,2) should be 1")
	}
}

func TestAttributeDiagramCatchesDislocation(t *testing.T) {
	c := newTestCounter(t)
	// The paper's motivating confound: u0 and v2 share a timestamp (p0/q2
	// both at T0) and share a location (p0/q1 both at L0) — but never in
	// the same post pair. Paths P5 and P6 both fire; Ψ^a² must not.
	psiA2, err := c.Count(schema.AttributeDiagram(hetnet.At, hetnet.Checkin))
	if err != nil {
		t.Fatal(err)
	}
	if got := psiA2.At(0, 2); got != 0 {
		t.Errorf("Ψ^a²(0,2) = %v, want 0 (dislocated attributes)", got)
	}
	// u0 and v0 share both through the same post pair (p0, q0).
	if got := psiA2.At(0, 0); got != 1 {
		t.Errorf("Ψ^a²(0,0) = %v, want 1", got)
	}
}

func TestEndpointJoinIsElementwiseProduct(t *testing.T) {
	c := newTestCounter(t)
	p1, err := c.Count(schema.FollowPath(1).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	p5, err := c.Count(schema.AttributePath(hetnet.At).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	joined, err := c.Count(schema.Par(schema.FollowPath(1).AsDiagram(), schema.AttributePath(hetnet.At).AsDiagram()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := p1.At(i, j) * p5.At(i, j)
			if got := joined.At(i, j); got != want {
				t.Errorf("Ψ^{f,a}(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestJointVocabularyRemap(t *testing.T) {
	c := newTestCounter(t)
	// Locations: net1 interns L0,L1; net2 interns L0,L2 (different local
	// orders). Joint vocabulary must have 3 locations.
	if got := c.VocabSize(hetnet.Location); got != 3 {
		t.Errorf("location vocab = %d, want 3", got)
	}
	if got := c.VocabSize(hetnet.Timestamp); got != 2 {
		t.Errorf("timestamp vocab = %d, want 2", got)
	}
	if got := c.VocabSize(hetnet.Word); got != 0 {
		t.Errorf("word vocab = %d, want 0", got)
	}
	// P6(0,2) = 1 relies on cross-network identity of "L0": if the remap
	// were positional instead of by ID this would break.
	p6, err := c.Count(schema.AttributePath(hetnet.Checkin).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	if got := p6.At(0, 2); got != 1 {
		t.Errorf("P6(0,2) = %v, want 1 via shared L0", got)
	}
}

func TestSetAnchorsInvalidatesAnchorCounts(t *testing.T) {
	c := newTestCounter(t)
	psi := schema.FollowDiagram(1, 2)
	m, err := c.Count(psi)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 {
		t.Fatal("precondition: Ψ(0,0) = 1 with both anchors")
	}
	// Restrict to the (u0,v0) anchor only: the (0,0) instance used anchor
	// (u1,v1) and must disappear.
	c.SetAnchors([]hetnet.Anchor{{I: 0, J: 0}})
	m2, err := c.Count(psi)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.At(0, 0); got != 0 {
		t.Errorf("Ψ(0,0) after anchor restriction = %v, want 0", got)
	}
}

func TestAttributeCountsSurviveAnchorChange(t *testing.T) {
	c := newTestCounter(t)
	d := schema.AttributeDiagram(hetnet.At, hetnet.Checkin)
	if _, err := c.Count(d); err != nil {
		t.Fatal(err)
	}
	evalsBefore := c.Stats().Evaluations
	c.SetAnchors([]hetnet.Anchor{{I: 0, J: 0}})
	if _, err := c.Count(d); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Evaluations != evalsBefore {
		t.Errorf("attribute-only diagram was re-evaluated after SetAnchors: %d → %d evaluations",
			evalsBefore, after.Evaluations)
	}
	if after.CacheHits == 0 {
		t.Error("expected cache hit for attribute-only recount")
	}
}

func TestLemma2SubtreeReuse(t *testing.T) {
	c := newTestCounter(t)
	// Counting Ψ^a² first, then Ψ^{f,a²} containing it, must reuse the
	// cached Ψ^a² sub-result instead of recounting it.
	psiA2 := schema.AttributeDiagram(hetnet.At, hetnet.Checkin)
	if _, err := c.Count(psiA2); err != nil {
		t.Fatal(err)
	}
	statsBefore := c.Stats()
	big := schema.Par(schema.FollowPath(1).AsDiagram(), psiA2)
	if _, err := c.Count(big); err != nil {
		t.Fatal(err)
	}
	statsAfter := c.Stats()
	if statsAfter.CacheHits <= statsBefore.CacheHits {
		t.Error("expected subtree cache hits when counting the containing diagram")
	}
}

func TestUsesAnchor(t *testing.T) {
	if !UsesAnchor(schema.FollowPath(1).AsDiagram()) {
		t.Error("P1 uses the anchor")
	}
	if UsesAnchor(schema.AttributePath(hetnet.At).AsDiagram()) {
		t.Error("P5 does not use the anchor")
	}
	if !UsesAnchor(schema.Par(schema.FollowPath(1).AsDiagram(), schema.AttributePath(hetnet.At).AsDiagram())) {
		t.Error("parallel with anchored branch uses the anchor")
	}
}

func TestCountRejectsInvalidDiagram(t *testing.T) {
	c := newTestCounter(t)
	bad := schema.Fwd("bogus", schema.User1(), schema.User1())
	if _, err := c.Count(bad); err == nil {
		t.Error("invalid diagram should fail")
	}
}

func TestStandardLibraryCountsAll(t *testing.T) {
	c := newTestCounter(t)
	lib := schema.StandardLibrary()
	for _, n := range lib.All() {
		m, err := c.Count(n.D)
		if err != nil {
			t.Fatalf("%s: %v", n.ID, err)
		}
		if r, cc := m.Dims(); r != 3 || cc != 3 {
			t.Fatalf("%s: dims %dx%d, want 3x3", n.ID, r, cc)
		}
	}
}
