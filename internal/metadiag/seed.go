package metadiag

import (
	"fmt"
	"sort"

	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/sparse"
)

// SeedEntry is one anchor-free count matrix in raw CSR form, keyed by
// its diagram notation — the unit of the warm-counter seed a
// coordinator ships to workers. The slices alias the counter's cached
// matrices on export (zero copy); SeedInto validates them structurally
// before trusting them.
type SeedEntry struct {
	Key            string
	Rows, Cols     int
	RowPtr, ColIdx []int
	Val            []float64
}

// Seed is a compact export of a counter's shared attribute-only cache
// layer: the count matrices of every maximal anchor-free sub-diagram of
// a feature library. A worker that installs the seed into a fresh
// counter (SeedInto) forks and counts exactly as if it had derived the
// shared layer itself — the matrices are bit-identical, so downstream
// features and votes are too — but skips the expensive attribute-path
// products (the post×post intermediates never ship; only the final
// user×user matrices a warm fork actually reads do). Entries are sorted
// by key, so the same counter exports byte-identical seeds.
type Seed struct {
	Entries []SeedEntry
}

// NNZ returns the total stored entries across the seed's matrices.
func (s *Seed) NNZ() int {
	n := 0
	for i := range s.Entries {
		n += len(s.Entries[i].Val)
	}
	return n
}

// collectSeedDiagrams walks a diagram exactly as eval would — the same
// wrapper normalization, the same notation keys — and records the
// maximal anchor-free subtrees: an anchor-free node is recorded whole
// (its own sub-diagrams are interior to the cached matrix), an
// anchor-dependent Series/Parallel recurses into its parts. Bare Edge
// units are skipped — adjacency matrices re-derive from the pair in
// O(links) and live in the adjacency cache, not the count cache.
func collectSeedDiagrams(d schema.Diagram, seen map[string]schema.Diagram) {
	for {
		switch v := d.(type) {
		case schema.MetaPath:
			d = v.AsDiagram()
			continue
		case schema.Series:
			if len(v.Parts) == 1 {
				d = v.Parts[0]
				continue
			}
		case schema.Parallel:
			if len(v.Parts) == 1 {
				d = v.Parts[0]
				continue
			}
		}
		break
	}
	if !UsesAnchor(d) {
		if _, isEdge := d.(schema.Edge); isEdge {
			return
		}
		seen[d.Notation()] = d
		return
	}
	switch v := d.(type) {
	case schema.Series:
		for _, p := range v.Parts {
			collectSeedDiagrams(p, seen)
		}
	case schema.Parallel:
		for _, p := range v.Parts {
			collectSeedDiagrams(p, seen)
		}
	}
}

// ExportSeed computes (or fetches from the shared cache) the count
// matrix of every maximal anchor-free sub-diagram of feats and packages
// them as a deterministic, re-derivable seed. The counter's anchor set
// is irrelevant — nothing exported traverses an anchor edge — so a
// coordinator can export from a counter mid-plan without coordination.
func (c *Counter) ExportSeed(feats []schema.Named) (*Seed, error) {
	seen := make(map[string]schema.Diagram)
	for _, f := range feats {
		collectSeedDiagrams(f.D, seen)
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := &Seed{Entries: make([]SeedEntry, 0, len(keys))}
	for _, k := range keys {
		m, err := c.Count(seen[k])
		if err != nil {
			return nil, fmt.Errorf("metadiag: export seed %q: %w", k, err)
		}
		rows, cols, rowPtr, colIdx, val := m.Raw()
		s.Entries = append(s.Entries, SeedEntry{
			Key: k, Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val,
		})
	}
	return s, nil
}

// SeedInto installs the seed's matrices into the counter's shared
// anchor-free cache layer, skipping keys already present (a resident
// matrix was derived locally and is already correct). Each entry is
// structurally validated — a corrupt or hostile seed fails here rather
// than deep inside a later multiply. Entries whose keys no feature ever
// asks for are harmless dead weight; entries a feature does ask for are
// trusted to be that notation's true counts, the same trust a Job's
// networks get.
func (c *Counter) SeedInto(s *Seed) error {
	for i := range s.Entries {
		e := &s.Entries[i]
		m, err := sparse.FromRaw(e.Rows, e.Cols, e.RowPtr, e.ColIdx, e.Val)
		if err != nil {
			return fmt.Errorf("metadiag: seed entry %q: %w", e.Key, err)
		}
		c.sh.mu.Lock()
		if _, ok := c.sh.counts[e.Key]; !ok {
			c.sh.counts[e.Key] = m
		}
		c.sh.mu.Unlock()
	}
	return nil
}
