package metadiag

import (
	"sync"

	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/sparse"
)

// Proximity holds the meta diagram proximity structure of Definition 6
// for one diagram Φₖ: the instance count matrix plus the out-going and
// in-coming instance totals used for normalization,
//
//	s_Φₖ(u⁽¹⁾ᵢ, u⁽²⁾ⱼ) = 2·|P(i,j)| / (|P(i,·)| + |P(·,j)|) .
type Proximity struct {
	Counts  *sparse.CSR
	RowSums []float64
	ColSums []float64

	// lookup maps packed (i,j) coordinates to counts for O(1) point
	// queries through Score. It is built lazily on the first Score call:
	// the batch path (Extractor.FeatureMatrix) streams the CSR directly
	// and never needs it, so proximities that only feed feature matrices
	// skip the O(NNZ) map entirely.
	lookupOnce sync.Once
	lookup     map[int64]float64
}

func pairKey(i, j int) int64 { return int64(i)<<32 | int64(uint32(j)) }

// NewProximity wraps a count matrix with its marginals.
func NewProximity(counts *sparse.CSR) *Proximity {
	return &Proximity{
		Counts:  counts,
		RowSums: counts.RowSums(),
		ColSums: counts.ColSums(),
	}
}

// Score returns s_Φₖ(i, j). Pairs with no instances score 0, as do pairs
// whose normalizer is 0 (neither user participates in any instance).
// Safe for concurrent use.
func (p *Proximity) Score(i, j int) float64 {
	p.lookupOnce.Do(func() {
		lookup := make(map[int64]float64, p.Counts.NNZ())
		p.Counts.Iterate(func(i, j int, v float64) {
			lookup[pairKey(i, j)] = v
		})
		p.lookup = lookup
	})
	cnt := p.lookup[pairKey(i, j)]
	if cnt == 0 {
		return 0
	}
	denom := p.RowSums[i] + p.ColSums[j]
	if denom == 0 {
		return 0
	}
	return 2 * cnt / denom
}

// ScoreMatrix materializes all proximity scores as a sparse matrix with
// the same pattern as the count matrix.
func (p *Proximity) ScoreMatrix() *sparse.CSR {
	r, c := p.Counts.Dims()
	b := sparse.NewBuilder(r, c)
	p.Counts.Iterate(func(i, j int, v float64) {
		denom := p.RowSums[i] + p.ColSums[j]
		if denom > 0 {
			b.Add(i, j, 2*v/denom)
		}
	})
	return b.Build()
}

// Proximity computes the proximity structure for diagram d.
func (c *Counter) Proximity(d schema.Diagram) (*Proximity, error) {
	counts, err := c.Count(d)
	if err != nil {
		return nil, err
	}
	return NewProximity(counts), nil
}
