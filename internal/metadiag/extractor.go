package metadiag

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/linalg"
	"github.com/activeiter/activeiter/internal/schema"
)

// Extractor turns a diagram library into per-candidate-link feature
// vectors: one proximity score per diagram, in library order, with an
// optional trailing bias feature fixed at 1 (the paper's "dummy feature"
// absorbing the intercept b into w).
type Extractor struct {
	counter *Counter
	feats   []schema.Named
	prox    []*Proximity
	bias    bool
}

// NewExtractor prepares an extractor for the given features. Proximity
// matrices are computed on first use; call Recompute after changing the
// counter's anchor set.
func NewExtractor(counter *Counter, feats []schema.Named, bias bool) *Extractor {
	return &Extractor{counter: counter, feats: feats, bias: bias}
}

// Dim returns the feature vector length (diagram count plus bias).
func (e *Extractor) Dim() int {
	if e.bias {
		return len(e.feats) + 1
	}
	return len(e.feats)
}

// Names returns the feature names in vector order.
func (e *Extractor) Names() []string {
	out := make([]string, 0, e.Dim())
	for _, f := range e.feats {
		out = append(out, f.ID)
	}
	if e.bias {
		out = append(out, "BIAS")
	}
	return out
}

// Recompute (re)evaluates every diagram's proximity structure against
// the counter's current anchor set. Attribute-only diagrams are answered
// from the counter's cache; anchor-dependent ones are recounted.
func (e *Extractor) Recompute() error {
	prox := make([]*Proximity, len(e.feats))
	for k, f := range e.feats {
		p, err := e.counter.Proximity(f.D)
		if err != nil {
			return fmt.Errorf("metadiag: feature %s: %w", f.ID, err)
		}
		prox[k] = p
	}
	e.prox = prox
	return nil
}

// ready lazily computes proximities on first access.
func (e *Extractor) ready() error {
	if e.prox == nil {
		return e.Recompute()
	}
	return nil
}

// FeatureVector writes the feature vector of candidate link (i, j) into
// out, which must have length Dim().
func (e *Extractor) FeatureVector(i, j int, out []float64) error {
	if err := e.ready(); err != nil {
		return err
	}
	if len(out) != e.Dim() {
		return fmt.Errorf("metadiag: FeatureVector buffer length %d, want %d", len(out), e.Dim())
	}
	for k, p := range e.prox {
		out[k] = p.Score(i, j)
	}
	if e.bias {
		out[len(out)-1] = 1
	}
	return nil
}

// FeatureMatrix builds the design matrix X for a candidate link list:
// row k holds the features of pairs[k]. This is the matrix the ridge
// step (1-1) and the SVM baselines consume.
func (e *Extractor) FeatureMatrix(pairs []hetnet.Anchor) (*linalg.Dense, error) {
	if err := e.ready(); err != nil {
		return nil, err
	}
	x := linalg.NewDense(len(pairs), e.Dim())
	for k, pr := range pairs {
		row := x.RowView(k)
		if err := e.FeatureVector(pr.I, pr.J, row); err != nil {
			return nil, err
		}
	}
	return x, nil
}
