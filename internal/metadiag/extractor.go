package metadiag

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/linalg"
	"github.com/activeiter/activeiter/internal/schema"
)

// Extractor turns a diagram library into per-candidate-link feature
// vectors: one proximity score per diagram, in library order, with an
// optional trailing bias feature fixed at 1 (the paper's "dummy feature"
// absorbing the intercept b into w).
//
// After Recompute (or the first lazy computation), FeatureVector and
// FeatureMatrix are safe for concurrent use; Recompute itself must be
// externally synchronized with readers.
type Extractor struct {
	counter *Counter
	feats   []schema.Named
	prox    []*Proximity
	bias    bool
}

// NewExtractor prepares an extractor for the given features. Proximity
// matrices are computed on first use; call Recompute after changing the
// counter's anchor set.
func NewExtractor(counter *Counter, feats []schema.Named, bias bool) *Extractor {
	return &Extractor{counter: counter, feats: feats, bias: bias}
}

// Dim returns the feature vector length (diagram count plus bias).
func (e *Extractor) Dim() int {
	if e.bias {
		return len(e.feats) + 1
	}
	return len(e.feats)
}

// Names returns the feature names in vector order.
func (e *Extractor) Names() []string {
	out := make([]string, 0, e.Dim())
	for _, f := range e.feats {
		out = append(out, f.ID)
	}
	if e.bias {
		out = append(out, "BIAS")
	}
	return out
}

// Recompute (re)evaluates every diagram's proximity structure against
// the counter's current anchor set, fanning the diagrams out across
// GOMAXPROCS workers — the counter's single-flight cache deduplicates
// shared sub-diagrams between them. Attribute-only diagrams are
// answered from the counter's shared cache; anchor-dependent ones are
// recounted.
func (e *Extractor) Recompute() error {
	prox := make([]*Proximity, len(e.feats))
	errs := make([]error, len(e.feats))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(e.feats) {
		workers = len(e.feats)
	}
	if workers <= 1 {
		for k, f := range e.feats {
			p, err := e.counter.Proximity(f.D)
			if err != nil {
				return fmt.Errorf("metadiag: feature %s: %w", f.ID, err)
			}
			prox[k] = p
		}
		e.prox = prox
		return nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for k := range e.feats {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			prox[k], errs[k] = e.counter.Proximity(e.feats[k].D)
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return fmt.Errorf("metadiag: feature %s: %w", e.feats[k].ID, err)
		}
	}
	e.prox = prox
	return nil
}

// ready lazily computes proximities on first access.
func (e *Extractor) ready() error {
	if e.prox == nil {
		return e.Recompute()
	}
	return nil
}

// FeatureVector writes the feature vector of candidate link (i, j) into
// out, which must have length Dim().
func (e *Extractor) FeatureVector(i, j int, out []float64) error {
	if err := e.ready(); err != nil {
		return err
	}
	if len(out) != e.Dim() {
		return fmt.Errorf("metadiag: FeatureVector buffer length %d, want %d", len(out), e.Dim())
	}
	for k, p := range e.prox {
		out[k] = p.Score(i, j)
	}
	if e.bias {
		out[len(out)-1] = 1
	}
	return nil
}

// featureMatrixParallelThreshold is the candidate count below which the
// per-goroutine overhead outweighs feature-level fan-out.
const featureMatrixParallelThreshold = 512

// FeatureMatrix builds the design matrix X for a candidate link list:
// row k holds the features of pairs[k]. This is the matrix the ridge
// step (1-1) and the SVM baselines consume.
//
// Rather than issuing one point lookup per (diagram × link), the pool
// is sorted by (i, j) once and each proximity's count rows are streamed
// with a two-pointer merge — no hashing or binary search on the hot
// path. Large pools additionally fan the proximities out across
// GOMAXPROCS workers. The result is identical to row-by-row
// FeatureVector construction.
func (e *Extractor) FeatureMatrix(pairs []hetnet.Anchor) (*linalg.Dense, error) {
	if err := e.ready(); err != nil {
		return nil, err
	}
	x := linalg.NewDense(len(pairs), e.Dim())
	if len(pairs) == 0 {
		return x, nil
	}
	order := make([]int, len(pairs))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pairs[order[a]], pairs[order[b]]
		if pa.I != pb.I {
			return pa.I < pb.I
		}
		return pa.J < pb.J
	})
	if e.bias {
		bias := e.Dim() - 1
		for k := range pairs {
			x.Set(k, bias, 1)
		}
	}
	fill := func(feat int) {
		p := e.prox[feat]
		lastI := -1
		var cols []int
		var vals []float64
		kb := 0
		for _, idx := range order {
			l := pairs[idx]
			if l.I != lastI {
				cols, vals = p.Counts.RowSlice(l.I)
				kb = 0
				lastI = l.I
			}
			for kb < len(cols) && cols[kb] < l.J {
				kb++
			}
			if kb < len(cols) && cols[kb] == l.J {
				if denom := p.RowSums[l.I] + p.ColSums[l.J]; denom > 0 {
					x.Set(idx, feat, 2*vals[kb]/denom)
				}
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(e.feats) {
		workers = len(e.feats)
	}
	if workers <= 1 || len(pairs) < featureMatrixParallelThreshold {
		for feat := range e.prox {
			fill(feat)
		}
		return x, nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for feat := range e.prox {
		wg.Add(1)
		go func(feat int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fill(feat)
		}(feat)
	}
	wg.Wait()
	return x, nil
}
