package metadiag

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
)

// bruteEnv is an independent, map-based view of an aligned pair used to
// cross-check the matrix counting engine. It stores raw directed edges
// per (network, relation) with attribute endpoints identified by string
// ID, and enumerates diagram instances by explicit recursion over node
// assignments.
type bruteEnv struct {
	pair   *hetnet.AlignedPair
	edges  map[string]map[[2]int]bool // "net/rel" → set of (from,to) index pairs in joint spaces
	dims   map[string]int             // typed-node string → index-space size
	vocabs map[hetnet.NodeType]map[string]int
}

func newBruteEnv(t *testing.T, pair *hetnet.AlignedPair, anchors []hetnet.Anchor) *bruteEnv {
	t.Helper()
	env := &bruteEnv{
		pair:   pair,
		edges:  make(map[string]map[[2]int]bool),
		dims:   make(map[string]int),
		vocabs: make(map[hetnet.NodeType]map[string]int),
	}
	for _, at := range hetnet.AttributeTypes {
		vocab := make(map[string]int)
		for _, g := range []*hetnet.Network{pair.G1, pair.G2} {
			for i := 0; i < g.NodeCount(at); i++ {
				id := g.NodeID(at, i)
				if _, ok := vocab[id]; !ok {
					vocab[id] = len(vocab)
				}
			}
		}
		env.vocabs[at] = vocab
	}
	nets := []struct {
		ref schema.NetworkRef
		g   *hetnet.Network
	}{{schema.Net1, pair.G1}, {schema.Net2, pair.G2}}
	for _, n := range nets {
		for _, lt := range n.g.LinkTypes() {
			_, dstType, _ := n.g.LinkEndpoints(lt)
			key := fmt.Sprintf("%v/%s", n.ref, lt)
			set := make(map[[2]int]bool)
			vocab, isAttr := env.vocabs[dstType]
			g := n.g
			g.Links(lt, func(from, to int) {
				if isAttr {
					to = vocab[g.NodeID(dstType, to)]
				}
				set[[2]int{from, to}] = true
			})
			env.edges[key] = set
		}
	}
	anchorSet := make(map[[2]int]bool)
	for _, a := range anchors {
		anchorSet[[2]int{a.I, a.J}] = true
	}
	env.edges["anchor"] = anchorSet
	return env
}

func (env *bruteEnv) dim(n schema.TypedNode) int {
	switch n.Net {
	case schema.Net1:
		return env.pair.G1.NodeCount(n.Type)
	case schema.Net2:
		return env.pair.G2.NodeCount(n.Type)
	default:
		return len(env.vocabs[n.Type])
	}
}

func (env *bruteEnv) hasEdge(e schema.Edge, from, to int) bool {
	if e.Rel == schema.Anchor {
		if e.Forward {
			return env.edges["anchor"][[2]int{from, to}]
		}
		return env.edges["anchor"][[2]int{to, from}]
	}
	key := fmt.Sprintf("%v/%s", e.Net(), e.Rel)
	if e.Forward {
		return env.edges[key][[2]int{from, to}]
	}
	return env.edges[key][[2]int{to, from}]
}

// count enumerates instances of d between fixed endpoint nodes src and
// dst by explicit recursion — no matrix algebra involved.
func (env *bruteEnv) count(d schema.Diagram, src, dst int) int {
	switch v := d.(type) {
	case schema.Edge:
		if env.hasEdge(v, src, dst) {
			return 1
		}
		return 0
	case schema.MetaPath:
		return env.count(v.AsDiagram(), src, dst)
	case schema.Series:
		if len(v.Parts) == 1 {
			return env.count(v.Parts[0], src, dst)
		}
		mid := v.Parts[0].Sink()
		rest := schema.Series{Parts: v.Parts[1:]}
		total := 0
		for k := 0; k < env.dim(mid); k++ {
			c1 := env.count(v.Parts[0], src, k)
			if c1 == 0 {
				continue
			}
			total += c1 * env.count(rest, k, dst)
		}
		return total
	case schema.Parallel:
		prod := 1
		for _, p := range v.Parts {
			prod *= env.count(p, src, dst)
			if prod == 0 {
				return 0
			}
		}
		return prod
	default:
		panic(fmt.Sprintf("bruteEnv: unknown diagram type %T", d))
	}
}

// randomPair generates a random aligned pair for cross-checking.
func randomPair(t *testing.T, rng *rand.Rand) *hetnet.AlignedPair {
	t.Helper()
	build := func(name string, users, posts, locs, stamps int) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < users; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("u%d", u))
		}
		for a := 0; a < users; a++ {
			for b := 0; b < users; b++ {
				if a != b && rng.Float64() < 0.3 {
					if err := g.AddLink(hetnet.Follow, a, b); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		for p := 0; p < posts; p++ {
			pid := fmt.Sprintf("p%d", p)
			author := fmt.Sprintf("u%d", rng.Intn(users))
			if err := g.AddLinkByID(hetnet.Write, author, pid); err != nil {
				t.Fatal(err)
			}
			// Shared attribute IDs so cross-network overlap occurs.
			if err := g.AddLinkByID(hetnet.At, pid, fmt.Sprintf("T%d", rng.Intn(stamps))); err != nil {
				t.Fatal(err)
			}
			if err := g.AddLinkByID(hetnet.Checkin, pid, fmt.Sprintf("L%d", rng.Intn(locs))); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	users := 4 + rng.Intn(3)
	g1 := build("r1", users, 6, 3, 3)
	g2 := build("r2", users, 6, 3, 3)
	pair := hetnet.NewAlignedPair(g1, g2)
	perm := rng.Perm(users)
	for i := 0; i < users/2+1; i++ {
		if err := pair.AddAnchor(i, perm[i]); err != nil {
			t.Fatal(err)
		}
	}
	return pair
}

func TestCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	lib := schema.StandardLibrary()
	for trial := 0; trial < 5; trial++ {
		pair := randomPair(t, rng)
		c, err := NewCounter(pair)
		if err != nil {
			t.Fatal(err)
		}
		env := newBruteEnv(t, pair, pair.Anchors)
		n1 := pair.G1.NodeCount(hetnet.User)
		n2 := pair.G2.NodeCount(hetnet.User)
		for _, named := range lib.All() {
			m, err := c.Count(named.D)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, named.ID, err)
			}
			for i := 0; i < n1; i++ {
				for j := 0; j < n2; j++ {
					want := float64(env.count(named.D, i, j))
					if got := m.At(i, j); got != want {
						t.Fatalf("trial %d %s(%d,%d) = %v, brute force = %v",
							trial, named.ID, i, j, got, want)
					}
				}
			}
		}
	}
}

// TestLemma1ForwardDirection verifies the sound direction of the paper's
// Lemma 1 on random graphs: a diagram instance between (i,j) implies
// instances of every covering-set path between (i,j).
func TestLemma1ForwardDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	lib := schema.StandardLibrary()
	pair := randomPair(t, rng)
	c, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	for _, named := range lib.Diagrams {
		m, err := c.Count(named.D)
		if err != nil {
			t.Fatal(err)
		}
		cover := schema.CoveringSet(named.D)
		coverCounts := make([]map[[2]int]bool, len(cover))
		for k, p := range cover {
			pm, err := c.Count(p.AsDiagram())
			if err != nil {
				t.Fatal(err)
			}
			set := make(map[[2]int]bool)
			pm.Iterate(func(i, j int, v float64) { set[[2]int{i, j}] = true })
			coverCounts[k] = set
		}
		violations := 0
		m.Iterate(func(i, j int, v float64) {
			for k := range cover {
				if !coverCounts[k][[2]int{i, j}] {
					violations++
				}
			}
		})
		if violations > 0 {
			t.Errorf("%s: %d diagram instances without covering-path instances (Lemma 1 ⇒ violated)",
				named.ID, violations)
		}
	}
}

// TestLemma1ConverseCounterexample documents that the ⇐ direction of
// Lemma 1 does not hold for diagrams whose covering paths share interior
// nodes: the fixture's (u0, v2) pair is connected by both P5 and P6
// instances yet has no Ψ^a² instance.
func TestLemma1ConverseCounterexample(t *testing.T) {
	c := newTestCounter(t)
	p5, err := c.Count(schema.AttributePath(hetnet.At).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	p6, err := c.Count(schema.AttributePath(hetnet.Checkin).AsDiagram())
	if err != nil {
		t.Fatal(err)
	}
	psi, err := c.Count(schema.AttributeDiagram(hetnet.At, hetnet.Checkin))
	if err != nil {
		t.Fatal(err)
	}
	if p5.At(0, 2) == 0 || p6.At(0, 2) == 0 {
		t.Fatal("fixture should connect (0,2) by both covering paths")
	}
	if psi.At(0, 2) != 0 {
		t.Fatal("fixture should have no Ψ^a² instance at (0,2)")
	}
}
