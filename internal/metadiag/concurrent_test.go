package metadiag

import (
	"sync"
	"testing"
	"time"

	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
)

// genPair builds a non-trivial pair so concurrent evaluations overlap
// long enough for the race detector to interleave them.
func genPair(t *testing.T) *hetnet.AlignedPair {
	t.Helper()
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

// TestCounterConcurrentCount hammers one shared Counter from many
// goroutines and checks every result matches a serial reference
// counter. Run under -race this exercises the cache layers and the
// per-notation single-flight.
func TestCounterConcurrentCount(t *testing.T) {
	pair := genPair(t)
	ref, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	lib := schema.StandardLibrary().All()
	want := make(map[string]float64, len(lib))
	for _, n := range lib {
		m, err := ref.Count(n.D)
		if err != nil {
			t.Fatal(err)
		}
		want[n.ID] = m.Sum()
	}

	shared, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Stagger starting positions so goroutines collide on
			// different diagrams.
			for k := 0; k < len(lib); k++ {
				n := lib[(k+g)%len(lib)]
				m, err := shared.Count(n.D)
				if err != nil {
					errCh <- err
					return
				}
				if got := m.Sum(); got != want[n.ID] {
					t.Errorf("goroutine %d: %s total = %v, want %v", g, n.ID, got, want[n.ID])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSingleEdgeWrappersDoNotDeadlock is a regression test: a one-edge
// MetaPath (or single-part Series/Parallel) shares its notation with
// its content, and the per-notation single-flight used to wait on the
// entry its own evaluation registered.
func TestSingleEdgeWrappersDoNotDeadlock(t *testing.T) {
	pair := genPair(t)
	c, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	writeEdge := schema.Fwd(hetnet.Write, schema.User1(), schema.Post1())
	want, err := c.Count(writeEdge)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, d := range []schema.Diagram{
			schema.MetaPath{Edges: []schema.Edge{writeEdge}},
			schema.Series{Parts: []schema.Diagram{writeEdge}},
			schema.Parallel{Parts: []schema.Diagram{writeEdge}},
		} {
			m, err := c.Count(d)
			if err != nil {
				t.Errorf("%s: %v", d.Notation(), err)
				return
			}
			if !m.Equal(want) {
				t.Errorf("%s: wrapper count differs from bare edge", d.Notation())
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("single-edge wrapper count deadlocked")
	}
}

// TestForkSharesAttributeCache verifies the Lemma-2 cross-fold layer: a
// fork answers attribute-only diagrams entirely from the shared cache
// without a single evaluation of its own.
func TestForkSharesAttributeCache(t *testing.T) {
	pair := genPair(t)
	base, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	attr := schema.AttributeDiagram(hetnet.At, hetnet.Checkin)
	if _, err := base.Count(attr); err != nil {
		t.Fatal(err)
	}
	fork := base.Fork()
	if _, err := fork.Count(attr); err != nil {
		t.Fatal(err)
	}
	st := fork.Stats()
	if st.Evaluations != 0 {
		t.Errorf("fork evaluated %d sub-diagrams for a cached attribute diagram, want 0", st.Evaluations)
	}
	if st.CacheHits == 0 {
		t.Error("fork recorded no cache hits against the shared layer")
	}
}

// TestForkIndependentAnchors checks that forks with different anchor
// sets produce the counts a fresh counter with those anchors would,
// without cross-contamination.
func TestForkIndependentAnchors(t *testing.T) {
	pair := genPair(t)
	base, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	d := schema.FollowDiagram(1, 2)
	if _, err := base.Count(d); err != nil {
		t.Fatal(err)
	}
	half := len(pair.Anchors) / 2
	folds := [][]hetnet.Anchor{pair.Anchors[:half], pair.Anchors[half:]}

	var wg sync.WaitGroup
	results := make([]float64, len(folds))
	errs := make([]error, len(folds))
	for i, anchors := range folds {
		wg.Add(1)
		go func(i int, anchors []hetnet.Anchor) {
			defer wg.Done()
			fork := base.Fork()
			fork.SetAnchors(anchors)
			m, err := fork.Count(d)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = m.Sum()
		}(i, anchors)
	}
	wg.Wait()
	for i, anchors := range folds {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		fresh, err := NewCounter(pair)
		if err != nil {
			t.Fatal(err)
		}
		fresh.SetAnchors(anchors)
		m, err := fresh.Count(d)
		if err != nil {
			t.Fatal(err)
		}
		if want := m.Sum(); results[i] != want {
			t.Errorf("fold %d: forked count total = %v, fresh counter = %v", i, results[i], want)
		}
	}
	// The base counter still answers with the full anchor set.
	m, err := base.Count(d)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Count(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sum() != want.Sum() {
		t.Errorf("base counter contaminated by forks: total %v, want %v", m.Sum(), want.Sum())
	}
}

// TestConcurrentExtractorRecompute runs many fold workers, each with a
// forked counter and its own extractor, all recomputing concurrently —
// the access pattern of the experiment runners' Workers fan-out.
func TestConcurrentExtractorRecompute(t *testing.T) {
	pair := genPair(t)
	base, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	lib := schema.StandardLibrary().All()
	for _, n := range lib {
		if _, err := base.Count(n.D); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fork := base.Fork()
			fork.SetAnchors(pair.Anchors[:1+w%len(pair.Anchors)])
			ext := NewExtractor(fork, lib, true)
			if err := ext.Recompute(); err != nil {
				errs[w] = err
				return
			}
			out := make([]float64, ext.Dim())
			if err := ext.FeatureVector(0, 0, out); err != nil {
				errs[w] = err
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestFeatureMatrixParallelMatchesSerial checks the row-parallel
// FeatureMatrix against serial row-by-row construction on a pool large
// enough to cross the fan-out threshold.
func TestFeatureMatrixParallelMatchesSerial(t *testing.T) {
	pair := genPair(t)
	counter, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	ext := NewExtractor(counter, schema.StandardLibrary().All(), true)
	n1 := pair.G1.NodeCount(hetnet.User)
	n2 := pair.G2.NodeCount(hetnet.User)
	var pool []hetnet.Anchor
	for k := 0; len(pool) < 2*featureMatrixParallelThreshold; k++ {
		pool = append(pool, hetnet.Anchor{I: k % n1, J: (k * 7) % n2})
	}
	x, err := ext.FeatureMatrix(pool)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, ext.Dim())
	for k, pr := range pool {
		if err := ext.FeatureVector(pr.I, pr.J, row); err != nil {
			t.Fatal(err)
		}
		for j, v := range row {
			if x.At(k, j) != v {
				t.Fatalf("row %d col %d: parallel %v, serial %v", k, j, x.At(k, j), v)
			}
		}
	}
}
