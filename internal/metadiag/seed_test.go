package metadiag

import (
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/schema"
)

// A counter seeded from another counter's export must count every
// feature bit-identically to a cold one — the property the distributed
// warm-fork path rests on — while evaluating strictly fewer
// sub-diagrams (the shared attribute-only layer arrives precomputed).
func TestSeedBitIdenticalAndWarm(t *testing.T) {
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	feats := schema.StandardLibrary().All()
	exporter, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := exporter.ExportSeed(feats)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed.Entries) == 0 || seed.NNZ() == 0 {
		t.Fatalf("empty seed: %d entries, %d nnz", len(seed.Entries), seed.NNZ())
	}

	cold, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.SeedInto(seed); err != nil {
		t.Fatal(err)
	}
	anchors := pair.Anchors[:len(pair.Anchors)/2]
	cold.SetAnchors(anchors)
	warm.SetAnchors(anchors)
	for _, f := range feats {
		a, err := cold.Count(f.D)
		if err != nil {
			t.Fatal(err)
		}
		b, err := warm.Count(f.D)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("feature %s: seeded count differs from cold count", f.ID)
		}
	}
	if we, ce := warm.Stats().Evaluations, cold.Stats().Evaluations; we >= ce {
		t.Errorf("seeded counter evaluated %d sub-diagrams, cold %d — seed did not warm anything", we, ce)
	}
}

// The same counter must export byte-identical seeds (sorted keys,
// cached matrices) — the wire fingerprint and golden frames rely on it.
func TestSeedDeterministic(t *testing.T) {
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	feats := schema.StandardLibrary().All()
	s1, err := c.ExportSeed(feats)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.ExportSeed(feats)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Entries) != len(s2.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(s1.Entries), len(s2.Entries))
	}
	for i := range s1.Entries {
		a, b := &s1.Entries[i], &s2.Entries[i]
		if a.Key != b.Key || a.Rows != b.Rows || a.Cols != b.Cols || len(a.Val) != len(b.Val) {
			t.Fatalf("entry %d differs: %q vs %q", i, a.Key, b.Key)
		}
	}
	// Every exported subtree must be anchor-free: exporting from a
	// counter with a different anchor set yields identical entries.
	c.SetAnchors(pair.Anchors[:len(pair.Anchors)/3])
	s3, err := c.ExportSeed(feats)
	if err != nil {
		t.Fatal(err)
	}
	if len(s3.Entries) != len(s1.Entries) {
		t.Fatalf("anchor set changed the seed: %d vs %d entries", len(s3.Entries), len(s1.Entries))
	}
	for i := range s1.Entries {
		if s1.Entries[i].Key != s3.Entries[i].Key || len(s1.Entries[i].Val) != len(s3.Entries[i].Val) {
			t.Fatalf("anchor set changed seed entry %d (%q)", i, s1.Entries[i].Key)
		}
	}
}

// SeedInto treats entries as hostile: structural corruption fails the
// install instead of poisoning the cache.
func TestSeedIntoRejectsCorruptEntry(t *testing.T) {
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Seed{Entries: []SeedEntry{{
		Key: "X", Rows: 2, Cols: 2,
		RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 5}, Val: []float64{1, 1},
	}}}
	err = c.SeedInto(bad)
	if err == nil || !strings.Contains(err.Error(), `seed entry "X"`) {
		t.Fatalf("corrupt entry accepted: %v", err)
	}
}
