package metadiag

import (
	"fmt"
	"sort"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/sparse"
)

// Candidates proposes candidate anchor links without enumerating the
// full |U⁽¹⁾|×|U⁽²⁾| pair space: it sums the proximity score matrices
// of the given diagrams and keeps the perUser best-scored counterparts
// of every user on both sides. Pairs with no diagram instance at all
// can never score and are never proposed — the sparsity of meta diagram
// evidence is what makes alignment tractable at scale.
//
// The returned candidates are deduplicated and sorted by descending
// total score (ties by index), and exclude the counter's current anchor
// set (those are already known).
func (c *Counter) Candidates(feats []schema.Named, perUser int) ([]hetnet.Anchor, error) {
	if perUser < 1 {
		return nil, fmt.Errorf("metadiag: perUser must be ≥ 1, got %d", perUser)
	}
	if len(feats) == 0 {
		return nil, fmt.Errorf("metadiag: no feature diagrams given")
	}
	var total *sparse.CSR
	for _, f := range feats {
		prox, err := c.Proximity(f.D)
		if err != nil {
			return nil, fmt.Errorf("metadiag: candidates via %s: %w", f.ID, err)
		}
		sm := prox.ScoreMatrix()
		if total == nil {
			total = sm
		} else {
			total = sparse.Add(total, sm)
		}
	}
	known := make(map[int64]bool)
	c.anchor.Iterate(func(i, j int, v float64) { known[hetnet.Key(i, j)] = true })

	type scored struct {
		a hetnet.Anchor
		v float64
	}
	seen := make(map[int64]bool)
	var out []scored
	add := func(i, j int, v float64) {
		k := hetnet.Key(i, j)
		if known[k] || seen[k] {
			return
		}
		seen[k] = true
		out = append(out, scored{a: hetnet.Anchor{I: i, J: j}, v: v})
	}
	total.TopKPerRow(perUser).Iterate(add)
	// Column side: transpose, take top-k rows there, map back.
	total.T().TopKPerRow(perUser).Iterate(func(j, i int, v float64) { add(i, j, v) })

	sort.Slice(out, func(a, b int) bool {
		if out[a].v != out[b].v {
			return out[a].v > out[b].v
		}
		if out[a].a.I != out[b].a.I {
			return out[a].a.I < out[b].a.I
		}
		return out[a].a.J < out[b].a.J
	})
	anchors := make([]hetnet.Anchor, len(out))
	for k, s := range out {
		anchors[k] = s.a
	}
	return anchors, nil
}
