package metadiag

import (
	"testing"

	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/schema"
)

func TestCandidatesProposesTrueAnchors(t *testing.T) {
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	// Train on the first quarter of anchors; the rest should surface
	// among the proposals.
	train := pair.Anchors[:10]
	hidden := pair.Anchors[10:]
	c.SetAnchors(train)
	cands, err := c.Candidates(schema.StandardLibrary().All(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates proposed")
	}
	inCands := make(map[int64]bool, len(cands))
	for _, a := range cands {
		inCands[hetnet.Key(a.I, a.J)] = true
	}
	// Training anchors must be excluded.
	for _, a := range train {
		if inCands[hetnet.Key(a.I, a.J)] {
			t.Errorf("training anchor %v proposed as candidate", a)
		}
	}
	// Recall of the candidate set over hidden anchors should be high.
	found := 0
	for _, a := range hidden {
		if inCands[hetnet.Key(a.I, a.J)] {
			found++
		}
	}
	recall := float64(found) / float64(len(hidden))
	if recall < 0.6 {
		t.Errorf("candidate recall = %.2f (%d/%d), want ≥ 0.6", recall, found, len(hidden))
	}
	// Candidate volume is bounded by ~2 sides × perUser × users.
	maxSize := 5 * (pair.G1.NodeCount(hetnet.User) + pair.G2.NodeCount(hetnet.User))
	if len(cands) > maxSize {
		t.Errorf("candidate count %d exceeds bound %d", len(cands), maxSize)
	}
}

func TestCandidatesSortedAndDeduplicated(t *testing.T) {
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAnchors(pair.Anchors[:10])
	cands, err := c.Candidates(schema.StandardLibrary().All(), 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, a := range cands {
		k := hetnet.Key(a.I, a.J)
		if seen[k] {
			t.Fatal("duplicate candidate")
		}
		seen[k] = true
	}
}

func TestCandidatesValidation(t *testing.T) {
	c := newTestCounter(t)
	if _, err := c.Candidates(schema.StandardLibrary().All(), 0); err == nil {
		t.Error("perUser 0 should fail")
	}
	if _, err := c.Candidates(nil, 3); err == nil {
		t.Error("empty feature list should fail")
	}
}
