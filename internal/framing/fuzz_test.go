package framing

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzCodec mirrors the distrib wire codec's shape (checksummed) so the
// fuzzer exercises the CRC trailer path.
var fuzzCodec = Codec{Magic: [2]byte{'T', 'C'}, Version: 3, MaxFrame: 1 << 16, Checksum: true}

// fuzzFrame builds one valid frame as raw bytes for seeding.
func fuzzFrame(typ byte, body []byte) []byte {
	var buf bytes.Buffer
	if err := fuzzCodec.WriteFrame(&buf, typ, body); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame feeds arbitrary streams to the frame reader: it must
// never panic or over-allocate, and anything it does accept must
// re-encode to the identical bytes (the codec has one canonical form).
func FuzzReadFrame(f *testing.F) {
	good := fuzzFrame(2, []byte("columnar payload"))
	f.Add(good)
	f.Add(fuzzFrame(1, nil))

	// Truncated length prefix.
	f.Add(good[:2])
	// Truncated mid-body.
	f.Add(good[:len(good)-3])
	// Flipped CRC trailer.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	// Flipped body byte (CRC must catch it).
	corrupt := append([]byte(nil), good...)
	corrupt[9] ^= 0x80
	f.Add(corrupt)
	// Oversized declared length.
	huge := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(huge[0:4], uint32(fuzzCodec.MaxFrame)+1)
	f.Add(huge)
	// Undersized declared length (below header + trailer).
	tiny := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(tiny[0:4], 5)
	f.Add(tiny)
	// Wrong magic, wrong version.
	f.Add([]byte{0, 0, 0, 9, 'X', 'Y', 3, 1, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 9, 'T', 'C', 9, 1, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		typ, body, err := fuzzCodec.ReadFrame(r)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := fuzzCodec.WriteFrame(&out, typ, body); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		consumed := raw[:len(raw)-r.Len()]
		if !bytes.Equal(out.Bytes(), consumed) {
			t.Fatalf("non-canonical frame accepted:\n in %x\nout %x", consumed, out.Bytes())
		}
	})
}

// FuzzDec drives the columnar cursor over arbitrary bodies with every
// getter: no panic, no over-allocation, sticky errors only.
func FuzzDec(f *testing.F) {
	var seed []byte
	seed = AppendString(seed, "net")
	seed = AppendInts(seed, []int{1, -2, 3})
	seed = AppendFloat64s(seed, []float64{0.5})
	f.Add(seed, uint8(0))
	f.Add(AppendUvarint(nil, 1<<62), uint8(3))

	f.Fuzz(func(t *testing.T, body []byte, order uint8) {
		d := NewDec(body)
		for i := 0; i < 16 && d.Err() == nil; i++ {
			switch (int(order) + i) % 10 {
			case 0:
				d.Uvarint()
			case 1:
				d.Varint()
			case 2:
				d.Byte()
			case 3:
				d.Bool()
			case 4:
				_ = d.String() // vet: String() results must be used
			case 5:
				d.Strings()
			case 6:
				d.Ints()
			case 7:
				d.Int32s()
			case 8:
				d.Uint32s()
			case 9:
				d.Float64s()
			}
		}
	})
}
