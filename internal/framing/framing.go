// Package framing is the shared length-prefixed frame codec under the
// repository's binary formats: the distrib wire protocol and the
// alignment snapshot artifact both speak it with their own magic bytes
// and version numbers. A frame is
//
//	┌─────────────┬─────────┬──────────┬──────────────────┐
//	│ length u32  │ magic   │ ver  typ │ payload          │
//	│ big endian  │ 2 bytes │ 1B   1B  │ length − 4 bytes │
//	└─────────────┴─────────┴──────────┴──────────────────┘
//
// The codec owns exactly the header discipline every format needs and
// nothing else — payload encoding stays with the caller:
//
//   - the magic bytes reject foreign streams before any payload work,
//   - the version byte is an all-or-nothing compatibility statement
//     (readers reject every other version with ErrVersionMismatch
//     rather than guess at field semantics),
//   - the length prefix is treated as hostile input: it is bounded by
//     MaxFrame and the fixed header bytes are validated BEFORE the
//     declared body size is allocated, so an unauthenticated peer
//     cannot make a reader allocate a gigabyte with a 4-byte probe,
//   - on a header error the body is still drained (into the void, no
//     allocation) so the frame is fully consumed either way — a peer
//     mid-Write on a fully synchronous link (net.Pipe) would otherwise
//     block forever on the bytes nobody reads,
//   - a codec with Checksum set appends a CRC-32C of the type byte and
//     body as a 4-byte trailer (inside the length prefix), so payload
//     corruption in transit is a detected, retryable error instead of
//     silently different data.
package framing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrVersionMismatch is returned (wrapped, with both versions) when a
// frame of a different format version arrives. Callers re-export it so
// their users can errors.Is against a package-local name.
var ErrVersionMismatch = errors.New("framing: version mismatch")

// ErrChecksum is returned (wrapped, with both sums) when a checksummed
// frame's body does not hash to its trailer — the stream was corrupted
// in transit. The frame was fully consumed, but a reader cannot trust
// anything after an undetected desync, so callers should treat the
// connection as dead and retry on a fresh one.
var ErrChecksum = errors.New("framing: checksum mismatch")

// castagnoli is the CRC-32C table shared by every checksummed codec.
// Castagnoli rather than IEEE for its better burst-error detection (and
// hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Codec is one binary format's framing discipline. The zero value is
// not usable; fill every field.
type Codec struct {
	// Magic guards against feeding one format's stream into another's
	// decoder (or any non-framed stream into either).
	Magic [2]byte
	// Version is the format version written on every frame; frames of
	// any other version are rejected with ErrVersionMismatch.
	Version byte
	// MaxFrame bounds a frame's declared length (header + body bytes
	// after the length prefix) so a corrupt or hostile length prefix
	// cannot OOM the reader.
	MaxFrame int
	// Checksum appends a CRC-32C of the type byte and body to every
	// frame (4 trailer bytes, included in the length prefix) and makes
	// the reader verify it, returning ErrChecksum on mismatch. Without
	// it a single flipped payload byte decodes as silently different
	// data; with it corruption downgrades to a detected, retryable
	// transport failure. Both sides of a format must agree — enabling it
	// is a wire-version bump.
	Checksum bool
}

// trailerLen is the per-frame overhead beyond the 4 header bytes when
// Checksum is on.
func (c Codec) trailerLen() int {
	if c.Checksum {
		return 4
	}
	return 0
}

// sum hashes what the trailer covers: the type byte, then the body. The
// magic/version bytes are validated structurally and the length prefix
// is validated by ReadFull, so the sum covers exactly the bytes whose
// corruption would otherwise go unnoticed.
func (c Codec) sum(typ byte, body []byte) uint32 {
	crc := crc32.Update(0, castagnoli, []byte{typ})
	return crc32.Update(crc, castagnoli, body)
}

// WriteFrame writes one frame: the 8-byte header followed by body.
// Oversized bodies are rejected at the writer — shipping gigabytes only
// for the reader to refuse the length prefix (and, past 2³²−4, silently
// wrapping it into a corrupt stream) wastes the whole transfer once per
// retry.
func (c Codec) WriteFrame(w io.Writer, typ byte, body []byte) error {
	if len(body)+4+c.trailerLen() > c.MaxFrame {
		return fmt.Errorf("framing: frame type %d is %d bytes, over the %d limit", typ, len(body)+4+c.trailerLen(), c.MaxFrame)
	}
	header := make([]byte, 8)
	binary.BigEndian.PutUint32(header[0:4], uint32(4+len(body)+c.trailerLen()))
	header[4], header[5] = c.Magic[0], c.Magic[1]
	header[6] = c.Version
	header[7] = typ
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("framing: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("framing: write frame body: %w", err)
	}
	if c.Checksum {
		var trailer [4]byte
		binary.BigEndian.PutUint32(trailer[:], c.sum(typ, body))
		if _, err := w.Write(trailer[:]); err != nil {
			return fmt.Errorf("framing: write frame checksum: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame and returns its type byte and raw body.
// io.EOF is returned untouched on a clean end-of-stream boundary (no
// bytes read); a stream that dies mid-frame is an error.
func (c Codec) ReadFrame(r io.Reader) (byte, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("framing: read frame length: %w", err)
	}
	length := binary.BigEndian.Uint32(lenBuf[:])
	minLen := uint32(4 + c.trailerLen())
	if length < minLen || length > uint32(c.MaxFrame) {
		return 0, nil, fmt.Errorf("framing: frame length %d outside [%d,%d]", length, minLen, c.MaxFrame)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("framing: read frame header: %w", err)
	}
	hdrErr := error(nil)
	switch {
	case hdr[0] != c.Magic[0] || hdr[1] != c.Magic[1]:
		hdrErr = fmt.Errorf("framing: bad frame magic %q, want %q", hdr[0:2], c.Magic[:])
	case hdr[2] != c.Version:
		hdrErr = fmt.Errorf("%w: got %d, want %d", ErrVersionMismatch, hdr[2], c.Version)
	}
	if hdrErr != nil {
		io.CopyN(io.Discard, r, int64(length-4))
		return 0, nil, hdrErr
	}
	body := make([]byte, length-4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("framing: read frame body: %w", err)
	}
	if c.Checksum {
		body, trailer := body[:len(body)-4], body[len(body)-4:]
		want := binary.BigEndian.Uint32(trailer)
		if got := c.sum(hdr[3], body); got != want {
			return 0, nil, fmt.Errorf("%w: frame type %d sums to %08x, trailer says %08x", ErrChecksum, hdr[3], got, want)
		}
		return hdr[3], body, nil
	}
	return hdr[3], body, nil
}
