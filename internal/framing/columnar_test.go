package framing

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestColumnarRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40)
	b = AppendVarint(b, -7)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendString(b, "héllo")
	b = AppendString(b, "")
	b = AppendStrings(b, []string{"a", "", "bc"})
	b = AppendInts(b, []int{0, -1, 1 << 30})
	b = AppendUvarints(b, []uint64{3, 0, 1 << 50})
	b = AppendInt32s(b, []int32{-2, 0, math.MaxInt32})
	b = AppendUint32s(b, []uint32{0, 42, math.MaxUint32})
	b = AppendFloat64s(b, []float64{0, -1.5, math.Pi, math.Inf(1)})
	b = AppendFloat64(b, -math.MaxFloat64)
	b = AppendBytes(b, []byte{9, 0, 7})

	d := NewDec(b)
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint: %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint: %d", got)
	}
	if got := d.Varint(); got != -7 {
		t.Errorf("varint: %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool column mangled")
	}
	if got := d.String(); got != "héllo" {
		t.Errorf("string: %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty string: %q", got)
	}
	if got := d.Strings(); !reflect.DeepEqual(got, []string{"a", "", "bc"}) {
		t.Errorf("strings: %v", got)
	}
	if got := d.Ints(); !reflect.DeepEqual(got, []int{0, -1, 1 << 30}) {
		t.Errorf("ints: %v", got)
	}
	if got := d.Uvarints(); !reflect.DeepEqual(got, []uint64{3, 0, 1 << 50}) {
		t.Errorf("uvarints: %v", got)
	}
	if got := d.Int32s(); !reflect.DeepEqual(got, []int32{-2, 0, math.MaxInt32}) {
		t.Errorf("int32s: %v", got)
	}
	if got := d.Uint32s(); !reflect.DeepEqual(got, []uint32{0, 42, math.MaxUint32}) {
		t.Errorf("uint32s: %v", got)
	}
	if got := d.Float64s(); !reflect.DeepEqual(got, []float64{0, -1.5, math.Pi, math.Inf(1)}) {
		t.Errorf("float64s: %v", got)
	}
	if got := d.Float64(); got != -math.MaxFloat64 {
		t.Errorf("float64: %v", got)
	}
	if got := d.Bytes(); !reflect.DeepEqual(got, []byte{9, 0, 7}) {
		t.Errorf("bytes: %v", got)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// A declared element count larger than the remaining bytes must fail
// before allocating — the count is hostile input.
func TestDecBoundsCountsBeforeAlloc(t *testing.T) {
	cases := map[string]func(*Dec) any{
		"string":   func(d *Dec) any { return d.String() },
		"strings":  func(d *Dec) any { return d.Strings() },
		"ints":     func(d *Dec) any { return d.Ints() },
		"uvarints": func(d *Dec) any { return d.Uvarints() },
		"int32s":   func(d *Dec) any { return d.Int32s() },
		"uint32s":  func(d *Dec) any { return d.Uint32s() },
		"float64s": func(d *Dec) any { return d.Float64s() },
		"bytes":    func(d *Dec) any { return d.Bytes() },
	}
	// Body declares 2^62 elements and carries two bytes of payload.
	body := AppendUvarint(nil, 1<<62)
	body = append(body, 0, 0)
	for name, get := range cases {
		d := NewDec(body)
		get(d)
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Errorf("%s: absurd count not rejected: %v", name, d.Err())
		}
	}
}

func TestDecStickyError(t *testing.T) {
	d := NewDec(nil)
	if d.Uvarint() != 0 || d.Err() == nil {
		t.Fatal("empty body should fail the first read")
	}
	first := d.Err()
	// Every later getter stays zero-valued and keeps the first error.
	if d.Varint() != 0 || d.Byte() != 0 || d.Bool() || d.String() != "" ||
		d.Ints() != nil || d.Float64s() != nil {
		t.Error("getter after error returned non-zero")
	}
	if d.Err() != first {
		t.Errorf("error overwritten: %v", d.Err())
	}
}

func TestDecDoneRejectsTrailingBytes(t *testing.T) {
	b := AppendUvarint(nil, 9)
	b = append(b, 0xEE)
	d := NewDec(b)
	if d.Uvarint() != 9 {
		t.Fatal("bad value")
	}
	if err := d.Done(); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestDecBoolRejectsGarbage(t *testing.T) {
	d := NewDec([]byte{7})
	if d.Bool(); d.Err() == nil {
		t.Error("bool byte 7 accepted")
	}
}
