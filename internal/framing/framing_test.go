package framing

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

var testCodec = Codec{Magic: [2]byte{'T', 'C'}, Version: 3, MaxFrame: 1 << 16}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 1000)}
	for i, body := range bodies {
		if err := testCodec.WriteFrame(&buf, byte(i+1), body); err != nil {
			t.Fatal(err)
		}
	}
	for i, body := range bodies {
		typ, got, err := testCodec.ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Errorf("frame %d: type %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, body) {
			t.Errorf("frame %d: body %q, want %q", i, got, body)
		}
	}
	if _, _, err := testCodec.ReadFrame(&buf); err != io.EOF {
		t.Errorf("drained stream: err %v, want io.EOF", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := testCodec.WriteFrame(&buf, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[6] = testCodec.Version + 1
	_, _, err := testCodec.ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}
	// Both versions must appear in the message so the operator knows
	// which side is stale.
	if !strings.Contains(err.Error(), "got 4") || !strings.Contains(err.Error(), "want 3") {
		t.Errorf("unhelpful mismatch message: %v", err)
	}
}

// A header error must still consume the frame's declared body so a
// fully synchronous peer (net.Pipe) is never left blocked mid-Write.
func TestHeaderErrorDrainsBody(t *testing.T) {
	var buf bytes.Buffer
	if err := testCodec.WriteFrame(&buf, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()
	bad[4] = 'X' // corrupt the magic of frame one
	if err := testCodec.WriteFrame(&buf, 2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	if _, _, err := testCodec.ReadFrame(r); err == nil {
		t.Fatal("bad magic accepted")
	}
	typ, body, err := testCodec.ReadFrame(r)
	if err != nil || typ != 2 || string(body) != "second" {
		t.Fatalf("frame after a header error: typ=%d body=%q err=%v", typ, body, err)
	}
}

func TestRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := testCodec.WriteFrame(&buf, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	huge := append([]byte(nil), good...)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := testCodec.ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Error("oversized length accepted")
	}

	tiny := append([]byte(nil), good...)
	tiny[0], tiny[1], tiny[2], tiny[3] = 0, 0, 0, 3 // below the 4 header bytes
	if _, _, err := testCodec.ReadFrame(bytes.NewReader(tiny)); err == nil {
		t.Error("undersized length accepted")
	}

	if _, _, err := testCodec.ReadFrame(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Error("truncated body accepted")
	}

	if _, _, err := testCodec.ReadFrame(bytes.NewReader(good[:2])); err == nil || err == io.EOF {
		t.Error("truncated length prefix should be a non-EOF error")
	}

	if _, _, err := testCodec.ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Error("empty stream should be io.EOF")
	}
}

func TestWriterRejectsOversizedBody(t *testing.T) {
	small := Codec{Magic: [2]byte{'T', 'C'}, Version: 1, MaxFrame: 16}
	var buf bytes.Buffer
	if err := small.WriteFrame(&buf, 1, make([]byte, 13)); err == nil {
		t.Error("body over MaxFrame accepted by the writer")
	}
	if err := small.WriteFrame(&buf, 1, make([]byte, 12)); err != nil {
		t.Errorf("body exactly at MaxFrame rejected: %v", err)
	}
}

// Two codecs must refuse each other's streams on the magic byte.
func TestForeignMagicRejected(t *testing.T) {
	other := Codec{Magic: [2]byte{'X', 'Y'}, Version: 3, MaxFrame: 1 << 16}
	var buf bytes.Buffer
	if err := other.WriteFrame(&buf, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := testCodec.ReadFrame(&buf); err == nil || errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("foreign magic not rejected as magic error: %v", err)
	}
}
